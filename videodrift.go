// Package videodrift is a pure-Go reproduction of "Coping With Data Drift
// in Online Video Analytics" (Xarchakos & Koudas, EDBT 2025): lightweight
// conformal-martingale drift detection for video streams (the Drift
// Inspector), model selection after a drift (MSBI and MSBO), and the
// drift-aware end-to-end processing pipeline that ties them together.
//
// The package is a thin facade over the implementation in internal/…; it
// exposes the vocabulary a stream-processing application needs:
//
//	models := []*videodrift.Model{
//	    videodrift.BuildModel("day", dayFrames, labeler, videodrift.Defaults(frameDim, numClasses)),
//	    videodrift.BuildModel("night", nightFrames, labeler, videodrift.Defaults(frameDim, numClasses)),
//	}
//	mon := videodrift.NewMonitor(models, labeler, videodrift.Defaults(frameDim, numClasses))
//	for frame := range stream {
//	    ev := mon.Process(frame)
//	    use(ev.Prediction)
//	    if ev.SwitchedTo != "" { log.Printf("deployed %s", ev.SwitchedTo) }
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured evaluation.
package videodrift

import (
	"fmt"

	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/forensics"
	"videodrift/internal/query"
	"videodrift/internal/stats"
	"videodrift/internal/telemetry"
	"videodrift/internal/vidsim"
)

// Frame is one video frame: flattened grayscale pixels plus scene
// metadata. Applications adapting real video should fill W, H and Pixels
// (row-major, values in [0,1]).
type Frame = vidsim.Frame

// Condition parameterizes a synthetic scene distribution (used by the
// bundled stream simulator).
type Condition = vidsim.Condition

// Dataset is a scripted evaluation stream with known drift points.
type Dataset = dataset.Dataset

// Model is a provisioned model entry: the query classifier plus
// everything the drift machinery needs (reference sample, calibration
// scores, uncertainty ensemble).
type Model = core.ModelEntry

// Labeler annotates a frame with its query label (e.g. a car-count
// bucket); the bundled Annotator wraps the detector oracle.
type Labeler = core.Labeler

// Annotator derives query labels from the built-in object detector (the
// Mask R-CNN stand-in).
type Annotator = query.Annotator

// QueryKind selects which of the paper's two queries a model answers.
type QueryKind = query.Kind

// The paper's two queries.
const (
	CountQuery   = query.Count
	SpatialQuery = query.Spatial
)

// Event reports what the monitor did with one frame.
type Event = core.Outcome

// Metrics summarizes a monitor's activity (frames, invocations, drifts,
// selections, trainings).
type Metrics = core.Metrics

// Selector picks the model-selection algorithm the monitor runs on a
// drift (set Options.Pipeline.Selector).
type Selector = core.SelectorKind

// The paper's two model-selection algorithms: MSBO (output/uncertainty
// based, needs labels for the post-drift window) and MSBI (input based,
// fully unsupervised).
const (
	MSBO = core.SelectorMSBO
	MSBI = core.SelectorMSBI
)

// Tracer is the telemetry collector: a ring-buffered structured event
// sink (drifts, selections, trainings, deployments), per-stage latency
// histograms and JSON/Prometheus exporters. All methods are nil-safe
// no-ops, so tracing off (the default) costs one pointer compare per
// instrumented call site.
type Tracer = telemetry.Tracer

// TracerConfig parameterizes NewTracer (ring size, per-frame events).
type TracerConfig = telemetry.Config

// TelemetryEvent is one structured trace record.
type TelemetryEvent = telemetry.Event

// TelemetrySnapshot is a consistent point-in-time export of a tracer's
// counters, gauges, stage latencies and retained events.
type TelemetrySnapshot = telemetry.Snapshot

// NewTracer builds a telemetry tracer to set as Options.Tracer.
func NewTracer(cfg TracerConfig) *Tracer { return telemetry.New(cfg) }

// Health is a monitor's degradation state: HealthOK (normal operation),
// HealthDegraded (serving continues on the deployed model while
// post-drift training retries with backoff, or a worker is wedged) or
// HealthFailed (a shard's crash-loop breaker tripped; its frames are
// dropped).
type Health = telemetry.Health

// The degradation states, ordered by severity.
const (
	HealthOK       = telemetry.HealthOK
	HealthDegraded = telemetry.HealthDegraded
	HealthFailed   = telemetry.HealthFailed
)

// ForensicsConfig sizes the drift-forensics recorder (see
// Options.Forensics): pre-roll window length and how many declarations
// to retain.
type ForensicsConfig = forensics.Config

// ForensicsRecorder captures drift declarations with their evidence and
// enough pipeline state to replay them (see internal/forensics).
type ForensicsRecorder = forensics.Recorder

// DriftDeclaration is one captured drift declaration: evidence,
// attribution and replayable pre-roll.
type DriftDeclaration = forensics.Declaration

// DriftReport is the full forensic explanation of one declaration —
// what `drifttool explain` renders and driftserve's /drift/<id> serves.
type DriftReport = forensics.Report

// DimShift is one dimension's entry in a drift's attribution ranking.
type DimShift = telemetry.DimShift

// Options bundles the tunables of provisioning and monitoring. The zero
// value is not usable; start from Defaults.
type Options struct {
	Provision core.ProvisionConfig
	Pipeline  core.PipelineConfig
	// Tracer enables telemetry when non-nil (see NewTracer); it is
	// wired into the monitor's pipeline and drift inspector.
	Tracer *Tracer
	// Forensics enables the drift-forensics recorder when
	// Forensics.Enabled is true: every drift declaration is captured
	// with its attribution and a replayable pre-roll, at the cost of
	// retaining up to 2×Window frames plus Keep declarations per shard.
	Forensics ForensicsConfig
}

// Defaults returns paper-parameter options for frames with frameDim
// pixels and query labels in [0, numClasses).
func Defaults(frameDim, numClasses int) Options {
	return Options{
		Provision: core.DefaultProvisionConfig(frameDim, numClasses),
		Pipeline:  core.DefaultPipelineConfig(frameDim, numClasses),
	}
}

// BuildModel trains a model entry from labeled training frames: the query
// classifier, the MSBO uncertainty ensemble, and the conformal reference
// sample and calibration the Drift Inspector monitors against. A nil
// labeler builds an unsupervised entry (drift detection and MSBI only).
func BuildModel(name string, frames []Frame, labeler Labeler, opts Options) *Model {
	return core.Provision(name, frames, labeler, opts.Provision)
}

// Monitor is the drift-aware processing loop of the paper's Figure 1.
type Monitor struct {
	pipe *core.Pipeline
	rec  *forensics.Recorder
}

// NewMonitor deploys the first model and starts monitoring. The labeler
// is consulted when MSBO evaluates a post-drift window and when a novel
// distribution forces a new model to be trained.
func NewMonitor(models []*Model, labeler Labeler, opts Options) *Monitor {
	reg := core.NewRegistry(models...)
	opts.Pipeline.Provision = opts.Provision
	if opts.Tracer != nil {
		opts.Pipeline.Tracer = opts.Tracer
	}
	m := &Monitor{pipe: core.NewPipeline(reg, labeler, opts.Pipeline)}
	if opts.Forensics.Enabled {
		m.rec = forensics.NewRecorder(opts.Forensics, opts.Pipeline.Tracer, m.pipe)
	}
	return m
}

// Process runs one frame through the deployed model and the drift
// machinery.
func (m *Monitor) Process(f Frame) Event {
	out := m.pipe.Process(f)
	m.rec.Record(m.pipe, f, out)
	return out
}

// ProcessBatch runs a micro-batch of consecutive frames through the
// monitor and returns one event per frame. It is exactly equivalent to
// calling Process on each frame in order — batching changes call
// granularity, never results.
func (m *Monitor) ProcessBatch(frames []Frame) []Event {
	events := make([]Event, len(frames))
	for i, f := range frames {
		events[i] = m.Process(f)
	}
	return events
}

// Forensics returns the monitor's drift-forensics recorder, nil when
// Options.Forensics was not enabled. The recorder is safe to read
// (Declarations, Get, State) from other goroutines while the monitor
// processes frames.
func (m *Monitor) Forensics() *ForensicsRecorder { return m.rec }

// Entries returns the monitor's model entries in registry order
// (forensics replay needs the live objects, not just their names).
func (m *Monitor) Entries() []*Model { return m.pipe.Registry().Entries() }

// Explain replays the retained drift declaration with the given ID (see
// telemetry drift_declared events or Forensics().Declarations()) and
// returns its full forensic report.
func (m *Monitor) Explain(id string) (DriftReport, error) {
	d, ok := m.rec.Get(id)
	if !ok {
		return DriftReport{}, fmt.Errorf("videodrift: no retained declaration %q (forensics disabled, or evicted past Keep)", id)
	}
	return forensics.BuildReport(m.pipe.Registry().Entries(), m.pipe.Config(), d)
}

// Current returns the name of the deployed model.
func (m *Monitor) Current() string { return m.pipe.Current().Name }

// Models returns the names of all provisioned models (including any
// trained during monitoring).
func (m *Monitor) Models() []string { return m.pipe.Registry().Names() }

// Stats summarizes the monitor's activity so far.
func (m *Monitor) Stats() core.Metrics { return m.pipe.Metrics() }

// Health returns the monitor's degradation state as reported through its
// tracer: HealthDegraded while post-drift training is retrying or the
// pipeline is serving without a replacement model, HealthOK otherwise.
// Always HealthOK when tracing is off.
func (m *Monitor) Health() Health { return m.pipe.Tracer().Health() }

// Telemetry returns the monitor's tracer (nil when Options.Tracer was
// not set). The tracer is safe for concurrent use: snapshot or export it
// from other goroutines while the monitor processes frames.
func (m *Monitor) Telemetry() *Tracer { return m.pipe.Tracer() }

// Detector is a standalone Drift Inspector for one model — use it when
// only drift detection is needed.
type Detector struct {
	di *core.DriftInspector
}

// NewDetector builds a Drift Inspector monitoring the distribution
// captured by model, with the paper's default parameters.
func NewDetector(model *Model, seed int64) *Detector {
	return &Detector{di: core.NewDriftInspector(model, core.DefaultDIConfig(), stats.NewRNG(seed))}
}

// Observe folds one frame into the detector and reports whether a drift
// is declared.
func (d *Detector) Observe(f Frame) bool { return d.di.ObserveFrame(f) }

// SetTracer attaches a telemetry tracer to the standalone detector
// (martingale updates, stage latencies, drift events).
func (d *Detector) SetTracer(tr *Tracer) { d.di.SetTracer(tr) }

// Reset clears the detector's state (after handling a drift).
func (d *Detector) Reset() { d.di.Reset() }

// NewAnnotator returns the built-in annotation oracle with count labels
// capped at maxCount.
func NewAnnotator(maxCount int) *Annotator { return query.NewAnnotator(maxCount) }

// The bundled dataset analogs of the paper's evaluation streams.
var (
	// BDD builds the Berkeley-Deep-Drive analog (night/rain/snow/day).
	BDD = dataset.BDD
	// Detrac builds the 5-camera-angle traffic analog.
	Detrac = dataset.Detrac
	// Tokyo builds the 3-angle intersection analog.
	Tokyo = dataset.Tokyo
	// SlowDrift builds the gradual day→night live-camera analog.
	SlowDrift = dataset.SlowDrift
)
