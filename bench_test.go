package videodrift

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (driving the runners in internal/experiments at a reduced
// scale — `go run ./cmd/driftbench` regenerates the committed full-scale
// numbers in EXPERIMENTS.md), plus micro-benchmarks for the hot paths
// behind the per-frame cost tables.

import (
	"fmt"
	"testing"

	"videodrift/internal/classifier"
	"videodrift/internal/conformal"
	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/detect"
	"videodrift/internal/experiments"
	"videodrift/internal/odin"
	"videodrift/internal/query"
	"videodrift/internal/stats"
	"videodrift/internal/telemetry"
	"videodrift/internal/tensor"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

func benchConfig() experiments.Config { return experiments.QuickConfig() }

// BenchmarkTable5DatasetStats regenerates Table 5 (dataset characteristics).
func BenchmarkTable5DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable5(benchConfig())
	}
}

// BenchmarkFig3DriftDetectionLag regenerates Figure 3 / Table 6 (drift
// detection lag and monitoring time, DI vs ODIN-Detect) per dataset.
func BenchmarkFig3DriftDetectionLag(b *testing.B) {
	cfg := benchConfig()
	for _, ds := range dataset.All(cfg.Scale) {
		b.Run(ds.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.RunFig3(ds, cfg)
			}
		})
	}
}

// BenchmarkTable6DriftDetectionTime isolates the Table 6 monitoring-time
// comparison on the Detrac analog.
func BenchmarkTable6DriftDetectionTime(b *testing.B) {
	cfg := benchConfig()
	ds := dataset.Detrac(cfg.Scale)
	env := experiments.BuildEnvUnsupervised(ds, cfg)
	frames := ds.TransitionStream(1, 300, 300).Collect(-1)
	b.Run("DI", func(b *testing.B) {
		di := core.NewDriftInspector(env.Registry.Entries()[0], core.DefaultDIConfig(), stats.NewRNG(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			di.ObserveFrame(frames[i%len(frames)])
		}
	})
	b.Run("ODIN-Detect", func(b *testing.B) {
		od := odin.NewDetector(odin.DefaultConfig(), ds.W, ds.H)
		od.Bootstrap(ds.TrainingFrames(0, cfg.TrainFrames))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			od.Observe(frames[i%len(frames)])
		}
	})
}

// BenchmarkFig4SlowDrift regenerates Figure 4 (slow-drift detection).
func BenchmarkFig4SlowDrift(b *testing.B) {
	cfg := benchConfig()
	cfg.Scale = 0.05
	for i := 0; i < b.N; i++ {
		experiments.RunFig4(cfg)
	}
}

// BenchmarkFig5BrierVsAccuracy regenerates Figure 5 (accuracy vs Brier
// separation on BDD).
func BenchmarkFig5BrierVsAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig5(benchConfig())
	}
}

// BenchmarkFig6ModelInvocations regenerates Figure 6 (model invocations
// per frame) on the Tokyo analog.
func BenchmarkFig6ModelInvocations(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.RunFig6(dataset.Tokyo(cfg.Scale), cfg)
	}
}

// BenchmarkTable7PerFrameSelection measures the per-frame cost of the
// three selection mechanisms (Table 7).
func BenchmarkTable7PerFrameSelection(b *testing.B) {
	cfg := benchConfig()
	ds := dataset.BDD(cfg.Scale)
	env := experiments.BuildEnv(ds, cfg, query.Count)
	window := ds.TransitionStream(1, 5, 64).Collect(-1)[5:]
	labeler := env.Labeler()
	th := core.CalibrateMSBO(env.Registry.Entries())
	rng := stats.NewRNG(3)

	b.Run("MSBO", func(b *testing.B) {
		msboCfg := core.DefaultMSBOConfig()
		for i := 0; i < b.N; i++ {
			// Labeling the window is part of MSBO's cost (the paper's
			// Table 7 numbers include Mask R-CNN annotation).
			samplesWin := makeLabeledWindow(env, window[:msboCfg.WT], labeler)
			core.MSBO(samplesWin, env.Registry.Entries(), th, msboCfg)
		}
	})
	b.Run("MSBI", func(b *testing.B) {
		msbiCfg := core.DefaultMSBIConfig()
		for i := 0; i < b.N; i++ {
			core.MSBI(window, env.Registry.Entries(), msbiCfg, rng.Split())
		}
	})
	b.Run("ODIN-Select", func(b *testing.B) {
		sys := env.NewODIN()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Process(window[i%len(window)])
		}
	})
}

// BenchmarkTable8SelectionTime regenerates the full Table 7/8 measurement.
func BenchmarkTable8SelectionTime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.RunTable8(dataset.BDD(cfg.Scale), cfg)
	}
}

// BenchmarkTable9EndToEnd regenerates Table 9 / Figure 7 on the BDD analog.
func BenchmarkTable9EndToEnd(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.RunEndToEnd(dataset.BDD(cfg.Scale), cfg, query.Count)
	}
}

// BenchmarkFig7CountAccuracy regenerates the count-query accuracy series
// (Figure 7) on the Detrac analog.
func BenchmarkFig7CountAccuracy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.RunEndToEnd(dataset.Detrac(cfg.Scale), cfg, query.Count)
	}
}

// BenchmarkFig8SpatialAccuracy regenerates the spatial-query accuracy
// series (Figure 8) on the BDD analog.
func BenchmarkFig8SpatialAccuracy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.RunEndToEnd(dataset.BDD(cfg.Scale), cfg, query.Spatial)
	}
}

// --- Micro-benchmarks for the hot paths ---

func benchFrame() vidsim.Frame {
	g := vidsim.NewSceneGenerator(vidsim.Day(), 32, 32, stats.NewRNG(9))
	return g.Next()
}

// BenchmarkFeaturize measures the drift-feature extraction per frame.
func BenchmarkFeaturize(b *testing.B) {
	f := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vision.Featurize(f.Pixels, f.W, f.H)
	}
}

// BenchmarkQueryFeatures measures the classifier front-end per frame.
func BenchmarkQueryFeatures(b *testing.B) {
	f := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vision.QueryFeatures(f.Pixels, f.W, f.H)
	}
}

// BenchmarkDriftInspectorObserve measures Algorithm 1 per sampled frame.
func BenchmarkDriftInspectorObserve(b *testing.B) {
	frames := vidsim.GenerateTraining(vidsim.Day(), 32, 32, 300, 10)
	p := core.DefaultProvisionConfig(1024, 2)
	entry := core.Provision("day", frames, nil, p)
	cfg := core.DefaultDIConfig()
	cfg.SampleEvery = 1 // measure the full update, not the skip path
	di := core.NewDriftInspector(entry, cfg, stats.NewRNG(11))
	f := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		di.Observe(f.Pixels)
	}
}

// BenchmarkMartingaleUpdate measures the CUSUM update alone.
func BenchmarkMartingaleUpdate(b *testing.B) {
	c := conformal.NewCUSUM(conformal.ShiftedOdd(4), 2, 4)
	rng := stats.NewRNG(12)
	ps := rng.UniformVec(1024, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(ps[i%len(ps)])
	}
}

// BenchmarkDetectorsPerFrame measures the two detector baselines (the
// Table 9 per-frame costs).
func BenchmarkDetectorsPerFrame(b *testing.B) {
	f := benchFrame()
	b.Run("maskrcnn-sim", func(b *testing.B) {
		det := detect.NewMaskRCNNSim()
		for i := 0; i < b.N; i++ {
			det.Detect(f)
		}
	})
	b.Run("yolo-sim", func(b *testing.B) {
		det := detect.NewYOLOSim()
		for i := 0; i < b.N; i++ {
			det.Detect(f)
		}
	})
}

// BenchmarkAblationSampleSource compares the two Σ sources (held-out real
// frames vs VAE-decoded samples) on one DI update — the DESIGN.md §2
// substitution ablation.
func BenchmarkAblationSampleSource(b *testing.B) {
	frames := vidsim.GenerateTraining(vidsim.Day(), 32, 32, 200, 13)
	f := benchFrame()
	for _, src := range []struct {
		name string
		s    core.SampleSource
	}{{"heldout", core.SourceHeldOut}, {"vae", core.SourceVAE}} {
		b.Run(src.name, func(b *testing.B) {
			p := core.DefaultProvisionConfig(1024, 2)
			p.Source = src.s
			p.VAEEpochs = 2
			entry := core.Provision("day", frames, nil, p)
			cfg := core.DefaultDIConfig()
			cfg.SampleEvery = 1
			di := core.NewDriftInspector(entry, cfg, stats.NewRNG(14))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				di.Observe(f.Pixels)
			}
		})
	}
}

// benchTracingPipeline builds a one-model pipeline fed in-distribution
// frames (no drift ever fires), isolating the steady-state monitoring
// path that telemetry instruments.
func benchTracingPipeline(tr *telemetry.Tracer) (*core.Pipeline, []vidsim.Frame) {
	cfg := benchConfig()
	ds := dataset.BDD(cfg.Scale)
	env := experiments.BuildEnvUnsupervised(ds, cfg)
	frames := ds.TrainingFrames(0, 256)
	pcfg := core.DefaultPipelineConfig(ds.FrameDim(), 2)
	pcfg.Selector = core.SelectorMSBI // unsupervised env has no labeler
	pcfg.Provision = env.Provision
	pcfg.Tracer = tr
	reg := core.NewRegistry(env.Registry.Entries()[0])
	return core.NewPipeline(reg, nil, pcfg), frames
}

// BenchmarkPipelineTracingOff measures the per-frame monitoring cost with
// the nil tracer — the default. BenchmarkPipelineTracingOn is the same
// loop with a live tracer; the delta is the telemetry overhead (measured
// <2% — the nil path costs one pointer compare per instrumented site, the
// live path four time.Now calls plus a mutex on sampled frames).
func BenchmarkPipelineTracingOff(b *testing.B) {
	pipe, frames := benchTracingPipeline(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Process(frames[i%len(frames)])
	}
}

// BenchmarkPipelineTracingOn is the tracing-enabled counterpart of
// BenchmarkPipelineTracingOff.
func BenchmarkPipelineTracingOn(b *testing.B) {
	tr := telemetry.New(telemetry.Config{RingSize: 1024})
	pipe, frames := benchTracingPipeline(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Process(frames[i%len(frames)])
	}
}

// makeLabeledWindow mirrors the pipeline's MSBO window construction.
func makeLabeledWindow(env *experiments.Env, frames []vidsim.Frame, labeler core.Labeler) []classifier.Sample {
	out := make([]classifier.Sample, len(frames))
	e := env.Registry.Entries()[0]
	for i, f := range frames {
		out[i] = e.QuerySample(f, labeler(f))
	}
	return out
}

// BenchmarkAblationDetectors regenerates the drift-detector design-choice
// ablation (DESIGN.md §2).
func BenchmarkAblationDetectors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunAblation(benchConfig())
	}
}

// --- kNN kernel + parallel selection engine ---

// BenchmarkKNNScore compares the retained brute-force non-conformity
// scorer against the flattened-matrix fast path, at the default Σ shape
// (SampleCount × AppearanceDim) and in the blocked-kernel regime of
// larger reference sets. The fast path must stay at 0 allocs/op.
func BenchmarkKNNScore(b *testing.B) {
	for _, shape := range []struct {
		name   string
		n, dim int
	}{
		{"sigma100x4", 100, 4},   // the default Σ the Drift Inspector scores against
		{"sigma512x64", 512, 64}, // bounded-kernel regime (dim > inline cutoff)
	} {
		// Reference samples of one provisioned condition concentrate, so
		// generate Σ as clusters — the regime the bounded kernel's
		// early-exit is built for — with the probe near one cluster.
		rng := stats.NewRNG(17)
		centers := make([]tensor.Vector, 8)
		for i := range centers {
			centers[i] = tensor.Vector(rng.UniformVec(shape.dim, 0, 1))
		}
		refs := make([]tensor.Vector, shape.n)
		for i := range refs {
			c := centers[i%len(centers)]
			noise := rng.UniformVec(shape.dim, -0.05, 0.05)
			v := c.Clone()
			for j := range v {
				v[j] += noise[j]
			}
			refs[i] = v
		}
		probe := centers[0].Clone()
		b.Run(shape.name+"/brute", func(b *testing.B) {
			m := conformal.KNN{K: 5}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.BruteScore(probe, refs)
			}
		})
		b.Run(shape.name+"/fast", func(b *testing.B) {
			s := conformal.NewKNNScorer(5, tensor.FlattenVectors(refs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Score(probe)
			}
		})
	}
}

// BenchmarkMSBIParallel measures Algorithm 2 as the registry grows, at
// increasing worker counts — the near-linear-scaling contract of the
// parallel selection engine. Every sub-benchmark computes the identical
// result (see TestMSBIParallelDeterminism); only wall clock may differ.
func BenchmarkMSBIParallel(b *testing.B) {
	for _, models := range []int{4, 8, 16} {
		entries := make([]*core.ModelEntry, models)
		for i := range entries {
			frames := vidsim.GenerateTraining(vidsim.Angle(i, 5.5, -1), 16, 16, 150, int64(40+i))
			entries[i] = core.Provision(fmt.Sprintf("angle%d", i), frames, nil, core.DefaultProvisionConfig(16*16, 2))
		}
		window := vidsim.GenerateTraining(vidsim.Angle(1, 5.5, -1), 16, 16, 40, 99)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("models%d/workers%d", models, workers), func(b *testing.B) {
				cfg := core.DefaultMSBIConfig()
				cfg.Workers = workers
				rng := stats.NewRNG(7)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					core.MSBI(window, entries, cfg, rng.Split())
				}
			})
		}
	}
}

// BenchmarkShardedThroughput measures aggregate monitoring throughput as
// shards (concurrent camera streams over the shared registry) are added:
// one ProcessBatch per iteration, steady-state in-distribution frames so
// no drift machinery beyond Algorithm 1 runs. The ns/frame metric is the
// per-stream cost; flat ns/frame across shard counts means linear
// aggregate throughput.
func BenchmarkShardedThroughput(b *testing.B) {
	opts := Defaults(facadeDim, facadeClasses)
	opts.Pipeline.Selector = MSBI
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 51), nil, opts)
	night := BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 52), nil, opts)
	models := []*Model{day, night}
	frames := facadeFrames(facadeCond(vidsim.Day()), 256, 53)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			sm := NewShardedMonitor(models, nil, ShardedOptions{Options: opts, Shards: shards})
			batch := make([]Frame, shards)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := range batch {
					batch[s] = frames[(i+s)%len(frames)]
				}
				mustBatch(sm, batch)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*shards), "ns/frame")
		})
	}
}

// BenchmarkShardedThroughputBatched measures the same steady-state
// monitoring fan-out fed through ProcessBatches at growing micro-batch
// sizes. Supervision is batch-granular — one pipeline snapshot per batch
// instead of per frame — so ns/frame falls as the batch grows; batch1 is
// the ProcessBatch cadence of BenchmarkShardedThroughput.
func BenchmarkShardedThroughputBatched(b *testing.B) {
	opts := Defaults(facadeDim, facadeClasses)
	opts.Pipeline.Selector = MSBI
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 51), nil, opts)
	night := BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 52), nil, opts)
	models := []*Model{day, night}
	frames := facadeFrames(facadeCond(vidsim.Day()), 256, 53)
	const shards = 4
	for _, size := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("shards%d/batch%d", shards, size), func(b *testing.B) {
			sm := NewShardedMonitor(models, nil, ShardedOptions{Options: opts, Shards: shards})
			batches := make([][]Frame, shards)
			for s := range batches {
				batches[s] = make([]Frame, size)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := range batches {
					for j := range batches[s] {
						batches[s][j] = frames[(i*size+j+s)%len(frames)]
					}
				}
				mustBatches(sm, batches)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*shards*size), "ns/frame")
		})
	}
}
