module videodrift

go 1.24
