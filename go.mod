module videodrift

go 1.22
