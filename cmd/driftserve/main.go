// Command driftserve runs the drift-aware monitor over a simulated video
// stream while serving live telemetry over HTTP — the operational view
// of the paper's Figure 1: watch the martingale climb, the drift fire,
// the selector resolve and the per-stage latency distribution move, all
// without stopping the stream.
//
// With -shards N it drives N concurrent camera streams over one shared
// set of provisioned models (the multi-camera deployment shape): each
// shard is an independent monitor with its own seed, drift state and
// telemetry tracer, and the expensive read-only state — reference
// feature matrices, calibration scores, classifier weights — is shared.
//
// Endpoints:
//
//	/metrics   Prometheus text-exposition format (counters, gauges,
//	           per-stage latency quantiles); ?shard=k selects a shard
//	/snapshot  the same state as one indented JSON document (?shard=k)
//	/events    the retained structured events (drifts, selections,
//	           trainings, deployments), optionally ?kind=drift_declared,
//	           ?since=<seq> (events with sequence numbers strictly
//	           greater, for incremental polling) and/or ?shard=k
//	/drift/    the drift declarations the forensics recorder retains
//	           (?shard=k): ID, frame, evidence and attribution
//	/drift/<id>  the full forensic report of one declaration — evidence,
//	           attribution ranking, and the bit-identically replayed
//	           martingale trajectory plus selection outcome; 404 when
//	           the ID is unknown or evicted
//	/healthz   liveness plus degradation state: frames-processed
//	           progress, shard count, per-shard health (quarantines,
//	           worker restarts, dropped frames) and checkpoint
//	           freshness. Returns 503 when a shard's crash-loop
//	           breaker has tripped, a worker is wedged past the stall
//	           timeout, or checkpointing is enabled and the last
//	           checkpoint is more than 3 intervals old.
//	/ingest    (ingest mode) the HTTP POST fallback of the wire
//	           protocol: the body is one complete frame message,
//	           verdicts map to 200/400/409/429/503
//	/debug/pprof/…  the standard net/http/pprof profiles
//
// Usage:
//
//	driftserve [-addr :9090] [-dataset bdd|detrac|tokyo|slow] [-scale 0.02]
//	           [-selector msbo|msbi] [-train 300] [-shards 1] [-workers 0]
//	           [-batch 1] [-fps 240] [-frames 0] [-ring 4096] [-perframe] [-v]
//	           [-state-dir dir] [-checkpoint-every 30s]
//	           [-chaos seed] [-stall-timeout 10s]
//	           [-ingest-addr host:port] [-max-tenants 64] [-tenant-queue 256]
//	           [-idle-evict 2m]
//	           [-replicate-to host:port,...] [-replicate-every 1s]
//	           [-replica-faults seed]
//	driftserve -standby-of primaryhost:9090 -replica-addr host:port
//	           [-probe-every 500ms] [-probe-fails 3] [-ingest-addr host:port]
//
// Streams loop forever (a fresh seed per lap keeps drifts coming) unless
// -frames bounds the total; -fps throttles each shard's rate (0 runs
// unthrottled).
//
// With -ingest-addr the synthetic self-feed is replaced by the network
// ingestion tier (internal/ingest): external tenants connect over the
// length-prefixed binary wire protocol (or POST to /ingest), each
// tenant's first frame attaches a shard over the shared models, frames
// flow through per-tenant bounded queues with explicit backpressure
// NACKs, and tenants idle past -idle-evict detach to free their shard.
// /healthz gains a per-tenant "ingest" section and /metrics the
// ingest_* series; `drifttool health <addr>` renders both. Feed it with
// cmd/driftfeed. Ingest mode excludes -state-dir and -chaos.
//
// With -chaos, a seeded fault schedule is replayed against the run:
// pixel corruption (quarantined at the admission gate), injected worker
// panics (recovered by the supervisor, which restarts the shard from
// its last snapshot) and one injected training failure per shard
// (retried with frame-count backoff while the deployed model keeps
// serving). Only lockstep-preserving faults are generated — no frame
// drops or duplications — so every shard still advances one frame per
// batch. The schedule is replayed relative to process start, so a warm
// restart begins it again from frame zero. Checkpoint writes always go
// through a capped-backoff retry policy; failures are counted in
// telemetry.
//
// With -replicate-to, driftserve is a replication primary: every
// -replicate-every it captures a consistent checkpoint between batches
// and streams it to each listed standby over the internal/replica wire
// protocol — a full snapshot to establish the standby's base, then
// compact CRC-chained deltas while the standby keeps pace, with
// resume-from-generation on reconnect. SIGTERM flushes a final delta
// before exit. Every stream carries the primary's fencing epoch; once
// any standby answers with a newer epoch (it promoted while this
// primary was partitioned), the primary stops replicating permanently
// and /healthz reports 503 "fenced" — the stale side of a split brain
// takes itself out of service.
//
// With -standby-of, driftserve is a hot standby: it skips provisioning,
// accepts the primary's replication stream on -replica-addr into a warm
// in-memory checkpoint, and health-probes the primary's HTTP address.
// After -probe-fails consecutive connection failures it promotes: the
// fencing epoch is bumped past everything seen, a live fleet is built
// from the replicated models and shard states, and the stream resumes
// where the primary's last acknowledged generation left off. With
// -ingest-addr the promoted standby opens the ingestion tier instead
// (failed-over tenants resume mid-stream); until promotion /healthz
// answers 200 "standby". Standby mode excludes -state-dir, -chaos and
// -replicate-to.
//
// With -replica-faults, a seeded fault schedule (torn writes, dropped
// connections) is replayed against the outgoing replication stream —
// the chaos harness for the failover path.
//
// With -state-dir, driftserve periodically persists a full checkpoint —
// every model (weights, reference samples, calibration) plus each
// shard's exact stream position — and flushes a final one on SIGTERM or
// SIGINT. On startup it warm-restarts from the newest intact checkpoint
// in that directory: provisioning is skipped, each shard's stream is
// fast-forwarded to where it left off, and the resumed run emits exactly
// the drift declarations and selections the uninterrupted run would
// have. Damaged checkpoint files (truncation, bit flips, version
// mismatches) are detected by checksum and skipped in favor of the
// previous good generation.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"videodrift"
	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/experiments"
	"videodrift/internal/faults"
	"videodrift/internal/ingest"
	"videodrift/internal/query"
	"videodrift/internal/replica"
	"videodrift/internal/telemetry"
	"videodrift/internal/vidsim"
)

// chaosHorizon is the per-shard frame window the -chaos schedule covers;
// faults land within the first chaosHorizon frames of each shard.
const chaosHorizon = 5000

// replicaFaultHorizon is the transmission window the -replica-faults
// schedule covers.
const replicaFaultHorizon = 1000

// fleet bundles the live serving state the HTTP handlers read. It is
// published through an atomic pointer because a standby starts with no
// fleet (mon nil) and installs one at promotion, concurrently with
// requests in flight.
type fleet struct {
	mon     *videodrift.ShardedMonitor
	router  *ingest.Router
	isrv    *ingest.Server
	tracers []*telemetry.Tracer
}

func main() {
	addr := flag.String("addr", ":9090", "HTTP listen address")
	dsName := flag.String("dataset", "bdd", "stream to monitor: bdd, detrac, tokyo, slow")
	scale := flag.Float64("scale", 0.02, "dataset stream scale (1.0 = paper sizes)")
	selector := flag.String("selector", "msbo", "model selector: msbo or msbi")
	train := flag.Int("train", 300, "training frames per provisioned condition")
	shards := flag.Int("shards", 1, "concurrent camera streams over the shared models")
	workers := flag.Int("workers", 0, "goroutines processing shard frames (0 = GOMAXPROCS)")
	batchN := flag.Int("batch", 1, "frames per shard per supervised micro-batch (1 = per-frame supervision)")
	fps := flag.Float64("fps", 240, "per-shard rate limit in frames/second (0 = unthrottled)")
	frames := flag.Int("frames", 0, "stop after this many frames across all shards (0 = loop forever)")
	ring := flag.Int("ring", 4096, "telemetry event-ring capacity per shard")
	perFrame := flag.Bool("perframe", false, "also ring per-frame FrameObserved/MartingaleUpdate events")
	verbose := flag.Bool("v", false, "log drift/selection events to stderr as they happen")
	stateDir := flag.String("state-dir", "", "checkpoint directory for persistence and warm restart (empty = off)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "background checkpoint interval (needs -state-dir)")
	chaosSeed := flag.Int64("chaos", 0, "replay a seeded fault schedule: pixel corruption, worker panics, training failures (0 = off)")
	stallTimeout := flag.Duration("stall-timeout", 10*time.Second, "how long a shard may sit on one frame before /healthz reports it stalled")
	forensicsOn := flag.Bool("forensics", true, "record drift declarations with replayable pre-rolls for /drift and checkpoints")
	ingestAddr := flag.String("ingest-addr", "", "TCP listen address for the network ingestion tier; replaces the synthetic self-feed (also serves HTTP POST /ingest)")
	maxTenants := flag.Int("max-tenants", 64, "max concurrently attached ingestion tenants (needs -ingest-addr)")
	tenantQueue := flag.Int("tenant-queue", 256, "per-tenant bounded ingestion queue capacity (needs -ingest-addr)")
	idleEvict := flag.Duration("idle-evict", 2*time.Minute, "detach ingestion tenants idle this long, freeing their shard (0 = never; needs -ingest-addr)")
	replicateTo := flag.String("replicate-to", "", "comma-separated standby replication addresses to stream checkpoints to")
	replicateEvery := flag.Duration("replicate-every", time.Second, "steady-state replication cadence (needs -replicate-to)")
	replicaFaults := flag.Int64("replica-faults", 0, "replay a seeded fault schedule against the outgoing replication stream: torn writes, dropped connections (0 = off; needs -replicate-to)")
	standbyOf := flag.String("standby-of", "", "run as a hot standby of the primary at this HTTP address (health-probed for automatic promotion)")
	replicaAddr := flag.String("replica-addr", "", "TCP listen address for the inbound replication stream (needs -standby-of)")
	probeEvery := flag.Duration("probe-every", 500*time.Millisecond, "primary health-probe interval (needs -standby-of)")
	probeFails := flag.Int("probe-fails", 3, "consecutive failed probes before the standby promotes itself (needs -standby-of)")
	flag.Parse()
	standby := *standbyOf != ""

	// Flag validation: a bad value dies here with a usage error, not as
	// undefined behavior deep in the pipeline.
	usageErr := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "driftserve: "+format+"\n\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *shards < 1 {
		usageErr("-shards must be >= 1, got %d", *shards)
	}
	if *batchN < 1 {
		usageErr("-batch must be >= 1, got %d", *batchN)
	}
	if *ring < 1 {
		usageErr("-ring must be >= 1, got %d", *ring)
	}
	if *fps < 0 || math.IsNaN(*fps) || math.IsInf(*fps, 0) {
		usageErr("-fps must be a finite rate >= 0, got %v", *fps)
	}
	if *frames < 0 {
		usageErr("-frames must be >= 0, got %d", *frames)
	}
	if *train < 1 {
		usageErr("-train must be >= 1, got %d", *train)
	}
	if *ingestAddr != "" {
		if *stateDir != "" {
			usageErr("-state-dir does not combine with -ingest-addr: a dynamic tenant fleet has no warm-restart path yet")
		}
		if *chaosSeed != 0 {
			usageErr("-chaos drives the synthetic self-feed; with -ingest-addr, inject network faults from the driftfeed side")
		}
		if *maxTenants < 1 {
			usageErr("-max-tenants must be >= 1, got %d", *maxTenants)
		}
		if *tenantQueue < 1 {
			usageErr("-tenant-queue must be >= 1, got %d", *tenantQueue)
		}
		if *idleEvict < 0 {
			usageErr("-idle-evict must be >= 0, got %v", *idleEvict)
		}
	}
	if standby {
		if *replicaAddr == "" {
			usageErr("-standby-of needs -replica-addr to accept the primary's replication stream")
		}
		if *replicateTo != "" {
			usageErr("-standby-of and -replicate-to are exclusive: a standby becomes a primary only by promotion")
		}
		if *stateDir != "" {
			usageErr("-state-dir does not combine with -standby-of yet: the standby's state is the replicated stream")
		}
		if *chaosSeed != 0 {
			usageErr("-chaos drives a live fleet; a standby has none until promotion")
		}
		if *probeEvery <= 0 {
			usageErr("-probe-every must be > 0, got %v", *probeEvery)
		}
		if *probeFails < 1 {
			usageErr("-probe-fails must be >= 1, got %d", *probeFails)
		}
	} else if *replicaAddr != "" {
		usageErr("-replica-addr needs -standby-of")
	}
	if *replicateTo != "" && *replicateEvery <= 0 {
		usageErr("-replicate-every must be > 0, got %v", *replicateEvery)
	}
	if *replicaFaults != 0 && *replicateTo == "" {
		usageErr("-replica-faults needs -replicate-to")
	}

	var ds *dataset.Dataset
	switch *dsName {
	case "bdd":
		ds = dataset.BDD(*scale)
	case "detrac":
		ds = dataset.Detrac(*scale)
	case "tokyo":
		ds = dataset.Tokyo(*scale)
	case "slow":
		ds = dataset.SlowDrift(*scale)
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}
	sel := core.SelectorMSBO
	if *selector == "msbi" {
		sel = core.SelectorMSBI
	}
	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.TrainFrames = *train

	// With -state-dir, try a warm restart from the newest intact
	// checkpoint before paying for provisioning. LoadLatest already skips
	// damaged generations; if every generation is damaged we cold-start
	// rather than refuse to serve.
	var st *videodrift.CheckpointStore
	var cp *videodrift.Checkpoint
	if *stateDir != "" {
		var err error
		st, err = videodrift.OpenStore(*stateDir)
		if err != nil {
			log.Fatalf("opening state dir: %v", err)
		}
		var path string
		cp, path, err = st.LoadLatest()
		switch {
		case err == nil:
			fmt.Fprintf(os.Stderr, "warm restart from %s: frame %d, %d models, %d shards\n",
				path, cp.Frames, len(cp.Entries), len(cp.Shards))
		case errors.Is(err, videodrift.ErrNoCheckpoint):
			cp = nil // cold start, persistence on
		default:
			log.Printf("no usable checkpoint (%v); cold-starting", err)
			cp = nil
		}
	}
	if cp != nil && len(cp.Shards) != *shards {
		log.Printf("checkpoint holds %d shards; overriding -shards %d", len(cp.Shards), *shards)
		*shards = len(cp.Shards)
	}

	var env *experiments.Env
	if cp != nil || standby {
		// A standby's models arrive over the replication stream; a warm
		// restart's come off disk. Either way, skip provisioning.
		env = experiments.BuildEnvShell(ds, cfg, query.Count)
	} else {
		fmt.Fprintf(os.Stderr, "provisioning %d models for %s (%d training frames each)...\n",
			len(ds.Sequences), ds.Name, cfg.TrainFrames)
		env = experiments.BuildEnv(ds, cfg, query.Count)
	}

	// One tracer per shard so each stream's drift history and latency
	// distribution stay separable; shard 0 is the default view. In
	// ingest mode slots appear dynamically, so there is one base tracer
	// and every tenant gets its own at attach time.
	nTracers := *shards
	if *ingestAddr != "" || standby {
		nTracers = 1
	}
	tracers := make([]*telemetry.Tracer, nTracers)
	for i := range tracers {
		tracers[i] = telemetry.New(telemetry.Config{RingSize: *ring, PerFrame: *perFrame})
	}
	// With -chaos, generate a lockstep-preserving fault schedule (no
	// drops or duplications: every shard must keep advancing one frame
	// per batch) and replay it deterministically against the run.
	var inj *faults.Injector
	if *chaosSeed != 0 {
		sched := faults.Generate(*chaosSeed, faults.GenConfig{
			Shards: *shards, Frames: chaosHorizon,
			CorruptRate:   0.002,
			Panics:        *shards,
			TrainFailures: 1,
		})
		inj = faults.NewInjector(sched)
		fmt.Fprintf(os.Stderr, "chaos seed %d: %d scheduled faults over the first %d frames/shard\n",
			*chaosSeed, len(sched.Faults), chaosHorizon)
	}

	pcfg := env.PipelineConfig(sel)
	sopts := videodrift.ShardedOptions{
		Options: videodrift.Options{
			// Keep the experiment env's recovery-path provisioning (fewer
			// epochs, smaller ensemble) rather than the registry defaults.
			Provision: pcfg.Provision,
			Pipeline:  pcfg,
			Forensics: videodrift.ForensicsConfig{Enabled: *forensicsOn},
		},
		Shards:       *shards,
		Workers:      *workers,
		Tracers:      tracers,
		Faults:       inj,
		StallTimeout: *stallTimeout,
	}
	var processed atomic.Int64
	var done atomic.Bool

	// The checkpoint scheduler (and the replication primary) may not
	// touch the monitor while a batch is in flight; they ask the stream
	// loop for a snapshot through ckptReq and the loop answers between
	// batches (the ingest pump answers the same way between pumps). Once
	// the loop exits, streamDone unblocks direct captures.
	ckptReq := make(chan chan *videodrift.Checkpoint)
	streamDone := make(chan struct{})

	// shutdown is closed once on SIGTERM/SIGINT; every periodic
	// goroutine (ingest pump, checkpoint scheduler, replication loop,
	// standby probe) selects on it so the process stops pumping before
	// it flushes the final checkpoint.
	shutdown := make(chan struct{})
	pumpDone := make(chan struct{})

	// startIngest opens the network ingestion tier over a fleet: the TCP
	// wire server accepts tenant streams, the router queues them with
	// backpressure, and a pump goroutine drains the queues through the
	// fleet on a steady cadence. resume marks a promoted standby, whose
	// tenants fail over mid-stream. Runs at boot or at promotion.
	startIngest := func(mon *videodrift.ShardedMonitor, resume bool) (*ingest.Router, *ingest.Server) {
		router := ingest.NewRouter(mon, ingest.Config{
			MaxTenants:    *maxTenants,
			QueueCap:      *tenantQueue,
			BatchSize:     *batchN,
			IdleEvict:     *idleEvict,
			ResumeStreams: resume,
			NewTracer: func(tenant string) *telemetry.Tracer {
				return telemetry.New(telemetry.Config{RingSize: *ring, PerFrame: *perFrame})
			},
		})
		isrv := ingest.NewServer(router, ingest.ServerConfig{Logf: log.Printf})
		ln, err := net.Listen("tcp", *ingestAddr)
		if err != nil {
			log.Fatalf("ingest listen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "ingesting frames on %s (wire protocol over TCP; HTTP fallback at POST /ingest)\n", ln.Addr())
		go func() {
			if err := isrv.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Fatalf("ingest serve: %v", err)
			}
		}()
		go func() {
			defer close(pumpDone)
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-shutdown:
					return
				case reply := <-ckptReq:
					// Between pumps the fleet is quiescent: a consistent
					// capture point for the replication primary.
					reply <- mon.Checkpoint()
				case <-tick.C:
					n, err := router.Pump()
					if err != nil {
						log.Printf("ingest pump: %v", err)
					}
					processed.Add(int64(n))
				}
			}
		}()
		return router, isrv
	}

	// startSelfFeed drives the classic synthetic self-feed over a fleet.
	// Runs at boot or at promotion; the warm-restart fast-forward below
	// also lands a promoted standby's streams on the right frame.
	startSelfFeed := func(mon *videodrift.ShardedMonitor) {
		nshards := mon.Shards()
		go func() {
			defer close(streamDone)
			defer done.Store(true)
			var throttle *time.Ticker
			if *fps > 0 {
				throttle = time.NewTicker(time.Duration(float64(time.Second) / *fps))
				defer throttle.Stop()
			}
			// Each shard loops its own copy of the dataset on an independent
			// lap-seed schedule, so the shards drift at different times — the
			// realistic multi-camera load. All shards advance in lockstep, one
			// frame per shard per batch.
			streams := make([]*vidsim.Stream, nshards)
			laps := make([]int, nshards)
			newStream := func(s, lap int) *vidsim.Stream {
				lapDS := *ds
				lapDS.Seed = ds.Seed + int64(s)*104729 + int64(lap)*7907
				stream := lapDS.Stream()
				if *verbose {
					fmt.Fprintf(os.Stderr, "shard %d lap %d: %d frames, ground-truth drifts at %v\n",
						s, lap, stream.TotalLength(), stream.DriftPoints())
				}
				return stream
			}
			for s := range streams {
				streams[s] = newStream(s, 0)
				// After a warm restart, fast-forward to where the shard left
				// off: the lap-seed schedule is deterministic, so regenerating
				// and discarding the already-processed frames lands the stream
				// on exactly the frame the interrupted run would have seen next.
				for skip := mon.Shard(s).Stats().Frames; skip > 0; skip-- {
					if _, ok := streams[s].Next(); !ok {
						laps[s]++
						streams[s] = newStream(s, laps[s])
						skip++ // this iteration consumed no frame
					}
				}
			}
			// Frames accumulate into per-shard micro-batches of -batch frames
			// and reach the supervisor in one ProcessBatches call; -batch 1 is
			// the classic lockstep one-frame-per-shard cadence. The chaos and
			// lap-seed schedules key on the per-shard stream index, so batching
			// never moves a fault or a drift.
			batches := make([][]vidsim.Frame, nshards)
			for step := 0; ; {
				select {
				case reply := <-ckptReq:
					reply <- mon.Checkpoint()
				default:
				}
				for s := range batches {
					batches[s] = batches[s][:0]
				}
				for b := 0; b < *batchN; b++ {
					for s := range streams {
						f, ok := streams[s].Next()
						for !ok {
							laps[s]++
							streams[s] = newStream(s, laps[s])
							f, ok = streams[s].Next()
						}
						// The chaos schedule holds no drop/dup faults, so Apply
						// yields exactly one (possibly corrupted) frame; the
						// admission gate quarantines the corrupted ones.
						if out := inj.Apply(s, step, f); len(out) == 1 {
							f = out[0]
						}
						batches[s] = append(batches[s], f)
					}
					step++
					// Tick per frame-per-shard, not per flush, so -fps means the
					// same stream rate at any batch size.
					if throttle != nil && b < *batchN-1 {
						<-throttle.C
					}
				}
				events, err := mon.ProcessBatches(batches)
				if err != nil {
					// The self-feed drives a fixed fleet; a shape mismatch here
					// is a bug, not an operational condition.
					log.Fatalf("processing batches: %v", err)
				}
				total := 0
				for s, evs := range events {
					total += len(evs)
					if *verbose {
						for j, out := range evs {
							at := step - len(evs) + j
							if out.Drift {
								fmt.Fprintf(os.Stderr, "shard %d frame %d [%s]: drift declared\n", s, at, batches[s][j].Condition)
							}
							if out.SwitchedTo != "" {
								fmt.Fprintf(os.Stderr, "shard %d frame %d [%s]: deployed %q (trained=%v)\n",
									s, at, batches[s][j].Condition, out.SwitchedTo, out.TrainedNew)
							}
						}
					}
				}
				n := processed.Add(int64(total))
				if *frames > 0 && n >= int64(*frames) {
					fmt.Fprintf(os.Stderr, "frame budget reached (%d); streams stopped, still serving\n", n)
					return
				}
				if throttle != nil {
					<-throttle.C
				}
			}
		}()
	}

	// Build the live fleet — except in standby mode, where the fleet
	// appears at promotion from the replicated checkpoint.
	var flt atomic.Pointer[fleet]
	if standby {
		flt.Store(&fleet{tracers: tracers})
	} else {
		var mon *videodrift.ShardedMonitor
		switch {
		case *ingestAddr != "":
			// The ingestion tier owns the tenant↔slot lifecycle: the fleet
			// starts empty and shards attach on each tenant's first frame.
			sopts.Shards = 0
			sopts.Tracers = nil
			sopts.Options.Tracer = tracers[0]
			mon = videodrift.NewDynamicSharded(env.Registry.Entries(), env.Labeler(), sopts)
		case cp != nil:
			var err error
			mon, err = videodrift.ResumeSharded(cp, env.Labeler(), sopts)
			if err != nil {
				log.Fatalf("resuming from checkpoint: %v", err)
			}
		default:
			mon = videodrift.NewShardedMonitor(env.Registry.Entries(), env.Labeler(), sopts)
		}
		processed.Store(int64(mon.Stats().Frames)) // nonzero after a warm restart
		f := &fleet{mon: mon, tracers: tracers}
		if *ingestAddr != "" {
			f.router, f.isrv = startIngest(mon, false)
		} else {
			startSelfFeed(mon)
		}
		flt.Store(f)
	}

	// capture obtains a consistent checkpoint: through the stream loop's
	// handshake while it is running, directly once it has exited.
	capture := func() *videodrift.Checkpoint {
		f := flt.Load()
		if f.mon == nil {
			return nil
		}
		reply := make(chan *videodrift.Checkpoint, 1)
		select {
		case ckptReq <- reply:
			return <-reply
		case <-streamDone:
			return f.mon.Checkpoint()
		}
	}

	// The replication primary, wired below once capture-dependent state
	// exists; declared here so saveCheckpoint stamps its generation and
	// fencing epoch on persisted checkpoints.
	var prim *replica.Primary
	var primDone chan struct{}
	var fencedEpoch atomic.Uint64

	var lastCkpt atomic.Int64
	lastCkpt.Store(time.Now().UnixNano()) // freshness clock starts at boot
	var saveMu sync.Mutex
	var framesAtSave atomic.Int64
	framesAtSave.Store(-1)
	retry := faults.DefaultRetry()
	saveCheckpoint := func(reason string) {
		saveMu.Lock()
		defer saveMu.Unlock()
		n := processed.Load()
		if n == framesAtSave.Load() {
			return // nothing happened since the last save
		}
		start := time.Now()
		cp := capture()
		if cp == nil {
			return
		}
		if prim != nil {
			// A warm restart of a replicating primary must resume the same
			// fencing epoch (and generation counter) it streamed under.
			cp.Gen, cp.Epoch = prim.Gen(), prim.Epoch()
		}
		var path string
		// A failed write never loses state: the store's atomic
		// temp+rename leaves the previous generation intact, so retrying
		// with capped backoff is always safe.
		err := retry.Do(func() error {
			var serr error
			path, serr = st.Save(cp)
			return serr
		}, func(attempt int, serr error) {
			log.Printf("checkpoint (%s) attempt %d: %v", reason, attempt, serr)
			for _, tr := range tracers {
				tr.CheckpointFailed(attempt, serr.Error())
			}
		})
		if err != nil {
			log.Printf("checkpoint (%s): giving up after %d attempts: %v", reason, retry.Attempts, err)
			return
		}
		d := time.Since(start)
		lastCkpt.Store(time.Now().UnixNano())
		framesAtSave.Store(n)
		size := 0
		if fi, err := os.Stat(path); err == nil {
			size = int(fi.Size())
		}
		for _, tr := range tracers {
			tr.CheckpointSaved(path, size, d)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "checkpoint (%s): %s, %d bytes in %v\n", reason, path, size, d)
		}
	}
	if st != nil {
		go func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-shutdown:
					return
				case <-tick.C:
					saveCheckpoint("interval")
				}
			}
		}()
	}

	// With -replicate-to, this process is a replication primary: capture
	// a generation every -replicate-every and stream it (delta where
	// possible) to each standby, under a fencing epoch resumed from the
	// warm-restart checkpoint when there is one.
	if *replicateTo != "" {
		epoch := uint64(1)
		if cp != nil && cp.Epoch > epoch {
			epoch = cp.Epoch
		}
		var addrs []string
		for _, a := range strings.Split(*replicateTo, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		rcfg := replica.PrimaryConfig{
			Addrs:    addrs,
			Epoch:    epoch,
			Capture:  capture,
			Interval: *replicateEvery,
			Tracer:   tracers[0],
			Logf:     log.Printf,
			OnFenced: func(e uint64) { fencedEpoch.Store(e) },
		}
		if *replicaFaults != 0 {
			sched := faults.GenerateReplica(*replicaFaults, replicaFaultHorizon, 0.05, 0.02)
			rinj := faults.NewReplicaInjector(sched)
			rcfg.TxFault = rinj.Tx
			fmt.Fprintf(os.Stderr, "replica faults seed %d: %d scheduled over the first %d transmissions\n",
				*replicaFaults, len(sched.Faults), replicaFaultHorizon)
		}
		prim = replica.NewPrimary(rcfg)
		primDone = make(chan struct{})
		fmt.Fprintf(os.Stderr, "replicating to %s every %v (fencing epoch %d)\n",
			strings.Join(addrs, ", "), *replicateEvery, epoch)
		go func() {
			prim.Run(shutdown)
			close(primDone)
		}()
	}

	// With -standby-of, this process is a hot standby: accept the
	// primary's replication stream into a warm checkpoint and probe the
	// primary's health, promoting after -probe-fails consecutive
	// connection failures. Promotion is terminal: the fencing epoch is
	// bumped, a live fleet is built from the replicated state, and any
	// reconnecting stale primary is answered with Fenced.
	var sb *replica.Standby
	var rln net.Listener
	if standby {
		sb = replica.NewStandby(replica.StandbyConfig{
			Tracer: tracers[0],
			Logf:   log.Printf,
		})
		var err error
		rln, err = net.Listen("tcp", *replicaAddr)
		if err != nil {
			log.Fatalf("replica listen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "standby of %s: accepting replication on %s\n", *standbyOf, rln.Addr())
		go func() {
			if err := sb.Serve(rln); err != nil {
				log.Printf("replica serve: %v", err)
			}
		}()

		promote := func(reason string) {
			pcp, epoch, err := sb.Promote(reason)
			if err != nil {
				log.Printf("promote: %v", err)
				return
			}
			log.Printf("promoted to primary at generation %d, epoch %d (%s): %d models, %d shards",
				pcp.Gen, epoch, reason, len(pcp.Entries), len(pcp.Shards))
			if *ingestAddr != "" {
				// Serve failed-over tenants: a dynamic fleet over the
				// replicated models, with mid-stream sequence adoption.
				iopts := sopts
				iopts.Shards = 0
				iopts.Tracers = nil
				iopts.Options.Tracer = tracers[0]
				mon := videodrift.NewDynamicSharded(pcp.Entries, env.Labeler(), iopts)
				f := &fleet{mon: mon, tracers: tracers}
				f.router, f.isrv = startIngest(mon, true)
				flt.Store(f)
				return
			}
			// Resume the synthetic self-feed exactly where the replicated
			// state left off, one tracer per shard (the standby's tracer
			// keeps shard 0 so the replication history stays visible).
			ropts := sopts
			ropts.Shards = len(pcp.Shards)
			rtr := make([]*telemetry.Tracer, len(pcp.Shards))
			rtr[0] = tracers[0]
			for i := 1; i < len(rtr); i++ {
				rtr[i] = telemetry.New(telemetry.Config{RingSize: *ring, PerFrame: *perFrame})
			}
			ropts.Tracers = rtr
			mon, err := videodrift.ResumeSharded(pcp, env.Labeler(), ropts)
			if err != nil {
				log.Printf("promote: resuming fleet: %v", err)
				return
			}
			processed.Store(int64(mon.Stats().Frames))
			flt.Store(&fleet{mon: mon, tracers: rtr})
			startSelfFeed(mon)
		}

		go func() {
			probeURL := *standbyOf
			if !strings.Contains(probeURL, "://") {
				probeURL = "http://" + probeURL
			}
			probeURL = strings.TrimSuffix(probeURL, "/") + "/healthz"
			client := &http.Client{Timeout: *probeEvery}
			tick := time.NewTicker(*probeEvery)
			defer tick.Stop()
			fails := 0
			for {
				select {
				case <-shutdown:
					return
				case <-tick.C:
					resp, err := client.Get(probeURL)
					if err == nil {
						// Any HTTP answer — even 503 — proves the primary is
						// alive; promotion is for a dead peer, not a degraded
						// one (a degraded primary still owns its stream).
						resp.Body.Close()
						fails = 0
						continue
					}
					fails++
					if fails < *probeFails {
						continue
					}
					if sb.Gen() == 0 {
						// Nothing replicated yet: nothing to promote.
						continue
					}
					promote(fmt.Sprintf("primary unreachable after %d probes", fails))
					return
				}
			}
		}()
	}

	// shardTracer resolves the ?shard=k query parameter (default 0)
	// against the live fleet's tracers (which a promotion may replace).
	shardTracer := func(w http.ResponseWriter, r *http.Request) *telemetry.Tracer {
		trs := flt.Load().tracers
		q := r.URL.Query().Get("shard")
		if q == "" {
			return trs[0]
		}
		k, err := strconv.Atoi(q)
		if err != nil || k < 0 || k >= len(trs) {
			http.Error(w, fmt.Sprintf("shard must be in [0,%d)", len(trs)), http.StatusBadRequest)
			return nil
		}
		return trs[k]
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		tr := shardTracer(w, r)
		if tr == nil {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := tr.WritePrometheusTo(w); err != nil {
			log.Printf("/metrics: %v", err)
		}
		if router := flt.Load().router; router != nil {
			if err := router.WritePrometheus(w); err != nil {
				log.Printf("/metrics (ingest): %v", err)
			}
		}
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		tr := shardTracer(w, r)
		if tr == nil {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteJSONTo(w); err != nil {
			log.Printf("/snapshot: %v", err)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		tr := shardTracer(w, r)
		if tr == nil {
			return
		}
		events := tr.Events()
		if kind := r.URL.Query().Get("kind"); kind != "" {
			filtered := events[:0:0]
			for _, e := range events {
				if e.Kind.String() == kind {
					filtered = append(filtered, e)
				}
			}
			events = filtered
		}
		if sinceQ := r.URL.Query().Get("since"); sinceQ != "" {
			since, err := strconv.ParseUint(sinceQ, 10, 64)
			if err != nil {
				http.Error(w, "since must be an event sequence number", http.StatusBadRequest)
				return
			}
			// Events ring oldest-first with monotonic Seq; serve only what
			// the poller has not seen yet.
			filtered := events[:0:0]
			for _, e := range events {
				if e.Seq > since {
					filtered = append(filtered, e)
				}
			}
			events = filtered
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]interface{}{"events": events}); err != nil {
			log.Printf("/events: %v", err)
		}
	})
	// shardMonitor resolves ?shard=k to the shard's Monitor (default 0)
	// for the forensic endpoints; reads on a Monitor's recorder and
	// registry are safe while batches run.
	shardMonitor := func(w http.ResponseWriter, r *http.Request) *videodrift.Monitor {
		mon := flt.Load().mon
		if mon == nil {
			http.Error(w, "standby: no fleet until promotion", http.StatusServiceUnavailable)
			return nil
		}
		k := 0
		if q := r.URL.Query().Get("shard"); q != "" {
			var err error
			if k, err = strconv.Atoi(q); err != nil {
				http.Error(w, "shard must be an integer", http.StatusBadRequest)
				return nil
			}
		}
		if k < 0 || k >= mon.Shards() {
			http.Error(w, fmt.Sprintf("shard must be in [0,%d)", mon.Shards()), http.StatusBadRequest)
			return nil
		}
		// A dynamic fleet can have detached slots (idle-evicted tenants).
		m := mon.Shard(k)
		if m == nil {
			http.Error(w, fmt.Sprintf("shard %d is detached", k), http.StatusNotFound)
		}
		return m
	}
	mux.HandleFunc("/drift/", func(w http.ResponseWriter, r *http.Request) {
		m := shardMonitor(w, r)
		if m == nil {
			return
		}
		id := strings.TrimPrefix(r.URL.Path, "/drift/")
		if id == "" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]interface{}{"declarations": m.Forensics().Declarations()}); err != nil {
				log.Printf("/drift/: %v", err)
			}
			return
		}
		rep, err := m.Explain(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Printf("/drift/%s: %v", id, err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		f := flt.Load()
		if f.mon == nil {
			// Un-promoted standby: alive and warming, no fleet yet.
			resp := map[string]interface{}{
				"status":    "standby",
				"mode":      "standby",
				"streaming": false,
				"shards":    0,
				"frames":    int64(0),
				"replication": map[string]interface{}{
					"role":       "standby",
					"primary":    *standbyOf,
					"epoch":      sb.Epoch(),
					"generation": sb.Gen(),
					"applied":    sb.Applied(),
				},
			}
			w.WriteHeader(http.StatusOK)
			if err := json.NewEncoder(w).Encode(resp); err != nil {
				log.Printf("/healthz: %v", err)
			}
			return
		}
		mon, router := f.mon, f.router
		h := mon.Health()
		stats := mon.Stats()
		shardHealth := make([]map[string]interface{}, len(h.Shards))
		for i, sh := range h.Shards {
			shardHealth[i] = map[string]interface{}{
				"state":    sh.State.String(),
				"stalled":  sh.Stalled,
				"restarts": sh.Restarts,
				"dropped":  sh.DroppedFrames,
			}
		}
		mode := "selfdrive"
		if router != nil {
			mode = "ingest"
		}
		resp := map[string]interface{}{
			"status":             h.State.String(),
			"mode":               mode,
			"streaming":          !done.Load(),
			"shards":             mon.Shards(),
			"active_shards":      mon.Active(),
			"frames":             processed.Load(),
			"quarantined_frames": stats.QuarantinedFrames,
			"training_failures":  stats.TrainingFailures,
			"shard_health":       shardHealth,
		}
		if router != nil {
			resp["ingest"] = router.Stats()
		}
		code := http.StatusOK
		// A tripped crash-loop breaker or a wedged worker means the fleet
		// is no longer answering every stream: fail readiness. Degraded
		// (training retries on the still-serving deployed model) stays 200.
		if !h.Serving() {
			if h.Stalled {
				resp["status"] = "stalled"
			}
			code = http.StatusServiceUnavailable
		}
		if prim != nil {
			rep := map[string]interface{}{
				"role":            "primary",
				"epoch":           prim.Epoch(),
				"generation":      prim.Gen(),
				"lag_generations": prim.Lag(),
			}
			if e := fencedEpoch.Load(); e != 0 {
				// A standby promoted past us: this primary is the stale side
				// of a partition and must not be treated as live.
				rep["fenced_by_epoch"] = e
				resp["status"] = "fenced"
				code = http.StatusServiceUnavailable
			}
			resp["replication"] = rep
		}
		if sb != nil {
			resp["replication"] = map[string]interface{}{
				"role":       "promoted",
				"epoch":      sb.Epoch(),
				"generation": sb.Gen(),
				"applied":    sb.Applied(),
			}
		}
		if st != nil {
			age := time.Since(time.Unix(0, lastCkpt.Load()))
			resp["state_dir"] = st.Dir()
			resp["last_checkpoint_age_seconds"] = age.Seconds()
			resp["checkpoint_interval_seconds"] = ckptEvery.Seconds()
			// A stopped stream stops producing checkpoints by design; only
			// fail health when checkpoints should be flowing and are not.
			if !done.Load() && age > 3*(*ckptEvery) {
				resp["status"] = "degraded"
				code = http.StatusServiceUnavailable
			}
		}
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		if err := enc.Encode(resp); err != nil {
			log.Printf("/healthz: %v", err)
		}
	})
	if *ingestAddr != "" {
		// In standby mode the ingest server only exists after promotion,
		// so the route resolves through the fleet pointer per request.
		mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
			isrv := flt.Load().isrv
			if isrv == nil {
				http.Error(w, "standby: ingestion tier opens at promotion", http.StatusServiceUnavailable)
				return
			}
			isrv.HTTPHandler().ServeHTTP(w, r)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		f := flt.Load()
		if f.mon == nil {
			fmt.Fprintf(w, "driftserve: hot standby of %s (replication on %s)\nendpoints: /metrics /snapshot /events /healthz /debug/pprof/\n",
				*standbyOf, *replicaAddr)
			return
		}
		if f.router != nil {
			fmt.Fprintf(w, "driftserve: %s models, network ingestion on %s (%d max tenants), %s selector\nendpoints: /metrics /snapshot /events /drift/ /drift/<id> /healthz /ingest (POST) /debug/pprof/ (?shard=k)\n",
				ds.Name, *ingestAddr, *maxTenants, sel)
			return
		}
		fmt.Fprintf(w, "driftserve: %s stream ×%d shards, %s selector\nendpoints: /metrics /snapshot /events /drift/ /drift/<id> /healthz /debug/pprof/ (?shard=k)\n",
			ds.Name, len(f.tracers), sel)
	})

	fmt.Fprintf(os.Stderr, "serving telemetry on %s (endpoints: /metrics /snapshot /events /healthz /debug/pprof/)\n", *addr)
	hsrv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		if err := hsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	// Block until SIGTERM/SIGINT, then stop the periodic goroutines and
	// the telemetry listener before the final flush: the pump must have
	// drained its last batch into the fleet so that, with persistence
	// on, the final checkpoint captures the exact kill point.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	close(shutdown)
	f := flt.Load()
	if f.router != nil {
		<-pumpDone
		if n, err := f.router.Pump(); err != nil {
			log.Printf("ingest final drain: %v", err)
		} else {
			processed.Add(int64(n))
		}
		if prim != nil {
			// The pump has exited, so replication captures can no longer go
			// through the handshake; open the direct path for the flush.
			close(streamDone)
		}
	}
	if prim != nil {
		<-primDone
		// Flush the last generation so the standby holds the exact kill
		// point — in self-feed mode the stream loop still answers the
		// capture handshake between batches.
		fmt.Fprintf(os.Stderr, "%v: flushing final generation to standbys...\n", s)
		if err := prim.Cycle(); err != nil && !errors.Is(err, replica.ErrFenced) {
			log.Printf("replica: final flush: %v", err)
		}
		prim.Close()
	}
	hsrv.Close()
	if f.isrv != nil {
		f.isrv.Close()
	}
	if sb != nil {
		rln.Close()
		sb.Close()
	}
	if st != nil {
		fmt.Fprintf(os.Stderr, "%v: flushing final checkpoint to %s...\n", s, st.Dir())
		saveCheckpoint("shutdown")
	}
	fmt.Fprintf(os.Stderr, "%v: exiting\n", s)
}
