// Command driftserve runs the drift-aware monitor over a simulated video
// stream while serving live telemetry over HTTP — the operational view
// of the paper's Figure 1: watch the martingale climb, the drift fire,
// the selector resolve and the per-stage latency distribution move, all
// without stopping the stream.
//
// Endpoints:
//
//	/metrics   Prometheus text-exposition format (counters, gauges,
//	           per-stage latency quantiles)
//	/snapshot  the same state as one indented JSON document
//	/events    the retained structured events (drifts, selections,
//	           trainings, deployments), optionally ?kind=drift_declared
//	/healthz   liveness plus frames-processed progress
//	/debug/pprof/…  the standard net/http/pprof profiles
//
// Usage:
//
//	driftserve [-addr :9090] [-dataset bdd|detrac|tokyo|slow] [-scale 0.02]
//	           [-selector msbo|msbi] [-train 300] [-fps 240] [-frames 0]
//	           [-ring 4096] [-perframe] [-v]
//
// The stream loops forever (a fresh seed per lap keeps drifts coming)
// unless -frames bounds it; -fps 0 runs unthrottled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"sync/atomic"
	"time"

	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/experiments"
	"videodrift/internal/query"
	"videodrift/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":9090", "HTTP listen address")
	dsName := flag.String("dataset", "bdd", "stream to monitor: bdd, detrac, tokyo, slow")
	scale := flag.Float64("scale", 0.02, "dataset stream scale (1.0 = paper sizes)")
	selector := flag.String("selector", "msbo", "model selector: msbo or msbi")
	train := flag.Int("train", 300, "training frames per provisioned condition")
	fps := flag.Float64("fps", 240, "stream rate limit in frames/second (0 = unthrottled)")
	frames := flag.Int("frames", 0, "stop the stream after this many frames (0 = loop forever)")
	ring := flag.Int("ring", 4096, "telemetry event-ring capacity")
	perFrame := flag.Bool("perframe", false, "also ring per-frame FrameObserved/MartingaleUpdate events")
	verbose := flag.Bool("v", false, "log drift/selection events to stderr as they happen")
	flag.Parse()

	var ds *dataset.Dataset
	switch *dsName {
	case "bdd":
		ds = dataset.BDD(*scale)
	case "detrac":
		ds = dataset.Detrac(*scale)
	case "tokyo":
		ds = dataset.Tokyo(*scale)
	case "slow":
		ds = dataset.SlowDrift(*scale)
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}
	sel := core.SelectorMSBO
	if *selector == "msbi" {
		sel = core.SelectorMSBI
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.TrainFrames = *train

	fmt.Fprintf(os.Stderr, "provisioning %d models for %s (%d training frames each)...\n",
		len(ds.Sequences), ds.Name, cfg.TrainFrames)
	env := experiments.BuildEnv(ds, cfg, query.Count)

	tracer := telemetry.New(telemetry.Config{RingSize: *ring, PerFrame: *perFrame})
	pcfg := env.PipelineConfig(sel)
	pcfg.Tracer = tracer
	pipe := core.NewPipeline(env.Registry, env.Labeler(), pcfg)

	var processed atomic.Int64
	var done atomic.Bool
	go func() {
		defer done.Store(true)
		var throttle *time.Ticker
		if *fps > 0 {
			throttle = time.NewTicker(time.Duration(float64(time.Second) / *fps))
			defer throttle.Stop()
		}
		for lap := 0; ; lap++ {
			lapDS := *ds
			lapDS.Seed = ds.Seed + int64(lap)*7907
			stream := lapDS.Stream()
			if *verbose {
				fmt.Fprintf(os.Stderr, "lap %d: %d frames, ground-truth drifts at %v\n",
					lap, stream.TotalLength(), stream.DriftPoints())
			}
			for {
				f, ok := stream.Next()
				if !ok {
					break
				}
				out := pipe.Process(f)
				n := processed.Add(1)
				if *verbose && out.Drift {
					fmt.Fprintf(os.Stderr, "frame %d [%s]: drift declared\n", n-1, f.Condition)
				}
				if *verbose && out.SwitchedTo != "" {
					fmt.Fprintf(os.Stderr, "frame %d [%s]: deployed %q (trained=%v)\n", n-1, f.Condition, out.SwitchedTo, out.TrainedNew)
				}
				if *frames > 0 && n >= int64(*frames) {
					fmt.Fprintf(os.Stderr, "frame budget reached (%d); stream stopped, still serving\n", n)
					return
				}
				if throttle != nil {
					<-throttle.C
				}
			}
		}
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := tracer.WritePrometheusTo(w); err != nil {
			log.Printf("/metrics: %v", err)
		}
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := tracer.WriteJSONTo(w); err != nil {
			log.Printf("/snapshot: %v", err)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		events := tracer.Events()
		if kind := r.URL.Query().Get("kind"); kind != "" {
			filtered := events[:0:0]
			for _, e := range events {
				if e.Kind.String() == kind {
					filtered = append(filtered, e)
				}
			}
			events = filtered
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]interface{}{"events": events}); err != nil {
			log.Printf("/events: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"streaming\":%v,\"frames\":%d}\n", !done.Load(), processed.Load())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "driftserve: %s stream, %s selector\nendpoints: /metrics /snapshot /events /healthz /debug/pprof/\n",
			ds.Name, sel)
	})

	fmt.Fprintf(os.Stderr, "serving telemetry on %s (endpoints: /metrics /snapshot /events /healthz /debug/pprof/)\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
