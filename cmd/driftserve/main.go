// Command driftserve runs the drift-aware monitor over a simulated video
// stream while serving live telemetry over HTTP — the operational view
// of the paper's Figure 1: watch the martingale climb, the drift fire,
// the selector resolve and the per-stage latency distribution move, all
// without stopping the stream.
//
// With -shards N it drives N concurrent camera streams over one shared
// set of provisioned models (the multi-camera deployment shape): each
// shard is an independent monitor with its own seed, drift state and
// telemetry tracer, and the expensive read-only state — reference
// feature matrices, calibration scores, classifier weights — is shared.
//
// Endpoints:
//
//	/metrics   Prometheus text-exposition format (counters, gauges,
//	           per-stage latency quantiles); ?shard=k selects a shard
//	/snapshot  the same state as one indented JSON document (?shard=k)
//	/events    the retained structured events (drifts, selections,
//	           trainings, deployments), optionally ?kind=drift_declared
//	           and/or ?shard=k
//	/healthz   liveness plus frames-processed progress and shard count
//	/debug/pprof/…  the standard net/http/pprof profiles
//
// Usage:
//
//	driftserve [-addr :9090] [-dataset bdd|detrac|tokyo|slow] [-scale 0.02]
//	           [-selector msbo|msbi] [-train 300] [-shards 1] [-workers 0]
//	           [-fps 240] [-frames 0] [-ring 4096] [-perframe] [-v]
//
// Streams loop forever (a fresh seed per lap keeps drifts coming) unless
// -frames bounds the total; -fps throttles each shard's rate (0 runs
// unthrottled).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"videodrift"
	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/experiments"
	"videodrift/internal/query"
	"videodrift/internal/telemetry"
	"videodrift/internal/vidsim"
)

func main() {
	addr := flag.String("addr", ":9090", "HTTP listen address")
	dsName := flag.String("dataset", "bdd", "stream to monitor: bdd, detrac, tokyo, slow")
	scale := flag.Float64("scale", 0.02, "dataset stream scale (1.0 = paper sizes)")
	selector := flag.String("selector", "msbo", "model selector: msbo or msbi")
	train := flag.Int("train", 300, "training frames per provisioned condition")
	shards := flag.Int("shards", 1, "concurrent camera streams over the shared models")
	workers := flag.Int("workers", 0, "goroutines processing shard frames (0 = GOMAXPROCS)")
	fps := flag.Float64("fps", 240, "per-shard rate limit in frames/second (0 = unthrottled)")
	frames := flag.Int("frames", 0, "stop after this many frames across all shards (0 = loop forever)")
	ring := flag.Int("ring", 4096, "telemetry event-ring capacity per shard")
	perFrame := flag.Bool("perframe", false, "also ring per-frame FrameObserved/MartingaleUpdate events")
	verbose := flag.Bool("v", false, "log drift/selection events to stderr as they happen")
	flag.Parse()

	var ds *dataset.Dataset
	switch *dsName {
	case "bdd":
		ds = dataset.BDD(*scale)
	case "detrac":
		ds = dataset.Detrac(*scale)
	case "tokyo":
		ds = dataset.Tokyo(*scale)
	case "slow":
		ds = dataset.SlowDrift(*scale)
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}
	sel := core.SelectorMSBO
	if *selector == "msbi" {
		sel = core.SelectorMSBI
	}
	if *shards < 1 {
		log.Fatalf("-shards must be >= 1, got %d", *shards)
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.TrainFrames = *train

	fmt.Fprintf(os.Stderr, "provisioning %d models for %s (%d training frames each)...\n",
		len(ds.Sequences), ds.Name, cfg.TrainFrames)
	env := experiments.BuildEnv(ds, cfg, query.Count)

	// One tracer per shard so each stream's drift history and latency
	// distribution stay separable; shard 0 is the default view.
	tracers := make([]*telemetry.Tracer, *shards)
	for i := range tracers {
		tracers[i] = telemetry.New(telemetry.Config{RingSize: *ring, PerFrame: *perFrame})
	}
	pcfg := env.PipelineConfig(sel)
	mon := videodrift.NewShardedMonitor(env.Registry.Entries(), env.Labeler(), videodrift.ShardedOptions{
		Options: videodrift.Options{
			// Keep the experiment env's recovery-path provisioning (fewer
			// epochs, smaller ensemble) rather than the registry defaults.
			Provision: pcfg.Provision,
			Pipeline:  pcfg,
		},
		Shards:  *shards,
		Workers: *workers,
		Tracers: tracers,
	})

	var processed atomic.Int64
	var done atomic.Bool
	go func() {
		defer done.Store(true)
		var throttle *time.Ticker
		if *fps > 0 {
			throttle = time.NewTicker(time.Duration(float64(time.Second) / *fps))
			defer throttle.Stop()
		}
		// Each shard loops its own copy of the dataset on an independent
		// lap-seed schedule, so the shards drift at different times — the
		// realistic multi-camera load. All shards advance in lockstep, one
		// frame per shard per batch.
		streams := make([]*vidsim.Stream, *shards)
		laps := make([]int, *shards)
		newStream := func(s, lap int) *vidsim.Stream {
			lapDS := *ds
			lapDS.Seed = ds.Seed + int64(s)*104729 + int64(lap)*7907
			stream := lapDS.Stream()
			if *verbose {
				fmt.Fprintf(os.Stderr, "shard %d lap %d: %d frames, ground-truth drifts at %v\n",
					s, lap, stream.TotalLength(), stream.DriftPoints())
			}
			return stream
		}
		for s := range streams {
			streams[s] = newStream(s, 0)
		}
		batch := make([]vidsim.Frame, *shards)
		for {
			for s := range streams {
				f, ok := streams[s].Next()
				for !ok {
					laps[s]++
					streams[s] = newStream(s, laps[s])
					f, ok = streams[s].Next()
				}
				batch[s] = f
			}
			events := mon.ProcessBatch(batch)
			n := processed.Add(int64(len(events)))
			if *verbose {
				for s, out := range events {
					if out.Drift {
						fmt.Fprintf(os.Stderr, "shard %d frame %d [%s]: drift declared\n", s, n-1, batch[s].Condition)
					}
					if out.SwitchedTo != "" {
						fmt.Fprintf(os.Stderr, "shard %d frame %d [%s]: deployed %q (trained=%v)\n",
							s, n-1, batch[s].Condition, out.SwitchedTo, out.TrainedNew)
					}
				}
			}
			if *frames > 0 && n >= int64(*frames) {
				fmt.Fprintf(os.Stderr, "frame budget reached (%d); streams stopped, still serving\n", n)
				return
			}
			if throttle != nil {
				<-throttle.C
			}
		}
	}()

	// shardTracer resolves the ?shard=k query parameter (default 0).
	shardTracer := func(w http.ResponseWriter, r *http.Request) *telemetry.Tracer {
		q := r.URL.Query().Get("shard")
		if q == "" {
			return tracers[0]
		}
		k, err := strconv.Atoi(q)
		if err != nil || k < 0 || k >= len(tracers) {
			http.Error(w, fmt.Sprintf("shard must be in [0,%d)", len(tracers)), http.StatusBadRequest)
			return nil
		}
		return tracers[k]
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		tr := shardTracer(w, r)
		if tr == nil {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := tr.WritePrometheusTo(w); err != nil {
			log.Printf("/metrics: %v", err)
		}
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		tr := shardTracer(w, r)
		if tr == nil {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteJSONTo(w); err != nil {
			log.Printf("/snapshot: %v", err)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		tr := shardTracer(w, r)
		if tr == nil {
			return
		}
		events := tr.Events()
		if kind := r.URL.Query().Get("kind"); kind != "" {
			filtered := events[:0:0]
			for _, e := range events {
				if e.Kind.String() == kind {
					filtered = append(filtered, e)
				}
			}
			events = filtered
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]interface{}{"events": events}); err != nil {
			log.Printf("/events: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"streaming\":%v,\"shards\":%d,\"frames\":%d}\n",
			!done.Load(), len(tracers), processed.Load())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "driftserve: %s stream ×%d shards, %s selector\nendpoints: /metrics /snapshot /events /healthz /debug/pprof/ (?shard=k)\n",
			ds.Name, len(tracers), sel)
	})

	fmt.Fprintf(os.Stderr, "serving telemetry on %s (endpoints: /metrics /snapshot /events /healthz /debug/pprof/)\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
