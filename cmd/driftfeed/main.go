// Command driftfeed replays synthetic dataset streams to a driftserve
// network-ingestion endpoint — the load generator and reference client
// for the wire protocol. Each tenant is one independent camera stream
// (its own seed schedule, so tenants drift at different times) driven
// by one connection with exactly-once delivery: frames are resent
// across reconnects, corruption NACKs and backpressure until acked.
//
// Usage:
//
//	driftfeed [-addr localhost:9091] [-dataset bdd|detrac|tokyo|slow]
//	          [-scale 0.02] [-tenants 2] [-frames 200] [-prefix cam]
//	          [-fps 0] [-http url] [-net-faults seed] [-v]
//
// With -http the frames go through driftserve's HTTP POST /ingest
// fallback instead of raw TCP (e.g. -http http://localhost:9090/ingest).
//
// -addr accepts a comma-separated address list for a replicated
// deployment (primary's ingest address first, standbys' after): when
// every connection attempt to the current address fails, the client
// rotates to the next and resumes its stream mid-sequence — the
// promoted standby's router adopts the in-flight sequence number.
//
// With -net-faults a seeded wire-fault schedule is replayed against
// each tenant's transmissions: corrupted payload bytes (rejected by
// the server's CRC check and resent) and torn writes (the connection
// drops mid-message and the client reconnects and resends). The
// delivered stream is identical to a clean run's — the faults cost
// retries, never frames.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"videodrift/internal/dataset"
	"videodrift/internal/faults"
	"videodrift/internal/ingest"
	"videodrift/internal/vidsim"
)

func main() {
	addr := flag.String("addr", "localhost:9091", "driftserve -ingest-addr to feed (TCP wire protocol); a comma-separated list fails over to the next address when a connection is refused (primary first, standbys after)")
	httpURL := flag.String("http", "", "feed via HTTP POST to this URL instead of raw TCP (e.g. http://localhost:9090/ingest)")
	dsName := flag.String("dataset", "bdd", "stream to replay: bdd, detrac, tokyo, slow")
	scale := flag.Float64("scale", 0.02, "dataset stream scale (1.0 = paper sizes)")
	tenants := flag.Int("tenants", 2, "concurrent tenant streams")
	frames := flag.Int("frames", 200, "frames to deliver per tenant")
	prefix := flag.String("prefix", "cam", "tenant id prefix (tenants are <prefix>-0 .. <prefix>-N-1)")
	fps := flag.Float64("fps", 0, "per-tenant send rate limit in frames/second (0 = unthrottled)")
	netFaults := flag.Int64("net-faults", 0, "replay a seeded wire-fault schedule per tenant: corrupt bytes, torn writes (0 = clean)")
	verbose := flag.Bool("v", false, "log per-tenant progress")
	flag.Parse()

	if *tenants < 1 || *frames < 1 {
		fmt.Fprintln(os.Stderr, "driftfeed: -tenants and -frames must be >= 1")
		flag.Usage()
		os.Exit(2)
	}
	var interval time.Duration
	if *fps > 0 {
		interval = time.Duration(float64(time.Second) / *fps)
	}
	var ds *dataset.Dataset
	switch *dsName {
	case "bdd":
		ds = dataset.BDD(*scale)
	case "detrac":
		ds = dataset.Detrac(*scale)
	case "tokyo":
		ds = dataset.Tokyo(*scale)
	case "slow":
		ds = dataset.SlowDrift(*scale)
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}

	type result struct {
		tenant string
		stats  ingest.ClientStats
		sent   int
		err    error
	}
	results := make([]result, *tenants)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := *prefix + "-" + strconv.Itoa(i)
			results[i].tenant = tenant
			// The same per-stream seed schedule driftserve's self-feed
			// uses, so tenant i's stream matches self-driven shard i.
			tenantDS := *ds
			tenantDS.Seed = ds.Seed + int64(i)*104729
			stream := tenantDS.Stream()

			var inj *faults.NetInjector
			if *netFaults != 0 {
				inj = faults.NewNetInjector(faults.GenerateNet(
					*netFaults+int64(i), *frames*2, 0.02, 0.01))
			}
			if *httpURL != "" {
				results[i].sent, results[i].err = feedHTTP(*httpURL, tenant, stream, *frames, *verbose)
				return
			}
			c, err := ingest.Dial(ingest.ClientConfig{
				Addr:    *addr,
				Tenant:  tenant,
				TxFault: inj.Tx,
			})
			if err != nil {
				results[i].err = err
				return
			}
			defer c.Close()
			for n := 0; n < *frames; n++ {
				if interval > 0 && n > 0 {
					time.Sleep(interval)
				}
				f, ok := stream.Next()
				if !ok {
					stream = tenantDS.Stream() // loop the dataset
					f, _ = stream.Next()
				}
				if err := c.Send(f); err != nil {
					results[i].stats = c.Stats()
					results[i].sent = n
					results[i].err = err
					return
				}
				results[i].sent = n + 1
				if *verbose && (n+1)%100 == 0 {
					fmt.Fprintf(os.Stderr, "%s: %d/%d frames acked\n", tenant, n+1, *frames)
				}
			}
			results[i].stats = c.Stats()
		}(i)
	}
	wg.Wait()

	elapsed := time.Since(start)
	failed := 0
	delivered := 0
	for _, r := range results {
		delivered += r.sent
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "driftfeed: tenant %s failed after %d frames: %v\n", r.tenant, r.sent, r.err)
			continue
		}
		fmt.Printf("tenant %s: delivered %d, sent %d, acked %d, dups %d, nacks %d, retries %d, reconnects %d, failovers %d\n",
			r.tenant, r.sent, r.stats.Sent, r.stats.Acked, r.stats.Dups, r.stats.Nacks, r.stats.Retries, r.stats.Reconnects, r.stats.Failovers)
	}
	fmt.Printf("driftfeed: %d tenants, %d frames delivered in %v, %d failed\n",
		*tenants, delivered, elapsed.Round(time.Millisecond), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// feedHTTP delivers one tenant's frames through the HTTP POST
// fallback, honoring Retry-After on backpressure.
func feedHTTP(url, tenant string, stream *vidsim.Stream, frames int, verbose bool) (int, error) {
	seq := uint64(0)
	for n := 0; n < frames; n++ {
		f, ok := stream.Next()
		if !ok {
			return n, fmt.Errorf("stream exhausted at frame %d", n)
		}
		wire := ingest.EncodeFrame(ingest.MsgFromFrame(tenant, seq, f))
		for attempt := 0; ; attempt++ {
			if attempt > 300 {
				return n, fmt.Errorf("frame seq %d: retry budget exhausted", seq)
			}
			resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(wire))
			if err != nil {
				return n, err
			}
			var body map[string]interface{}
			json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
			if ra := resp.Header.Get("Retry-After"); ra != "" &&
				(resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) {
				secs, _ := strconv.Atoi(ra)
				if secs < 1 {
					secs = 1
				}
				time.Sleep(time.Duration(secs) * time.Second)
				continue
			}
			return n, fmt.Errorf("frame seq %d: HTTP %d (%v)", seq, resp.StatusCode, body)
		}
		seq++
		if verbose && (n+1)%100 == 0 {
			fmt.Fprintf(os.Stderr, "%s: %d/%d frames accepted over HTTP\n", tenant, n+1, frames)
		}
	}
	return frames, nil
}
