// Command datasetgen inspects the synthetic dataset analogs: it prints
// the Table 5 statistics at any scale and can render frames as ASCII art
// to eyeball what each condition looks like.
//
// Usage:
//
//	datasetgen [-scale 0.01] [-show bdd:0] [-frames 3]
//
// The -show argument names a dataset and sequence index ("bdd:1" renders
// the BDD night sequence).
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"videodrift/internal/dataset"
	"videodrift/internal/stats"
	"videodrift/internal/vidsim"
)

func main() {
	scale := flag.Float64("scale", 0.01, "dataset scale for statistics")
	show := flag.String("show", "", "render frames from dataset:sequence (e.g. bdd:1)")
	frames := flag.Int("frames", 2, "frames to render with -show")
	flag.Parse()

	fmt.Printf("%-8s %6s %12s %12s %10s %6s\n", "dataset", "#seq", "stream@1.0", "stream@now", "obj/frame", "std")
	for _, ds := range dataset.All(*scale) {
		st := ds.Stats(500)
		full := fullSize(ds.Name)
		fmt.Printf("%-8s %6d %12d %12d %10.1f %6.1f\n",
			st.Name, st.Sequences, full, st.StreamSize, st.ObjPerFrame, st.Std)
	}

	if *show == "" {
		return
	}
	parts := strings.SplitN(*show, ":", 2)
	ds := byName(parts[0], *scale)
	if ds == nil {
		log.Fatalf("unknown dataset %q", parts[0])
	}
	seq := 0
	if len(parts) == 2 {
		var err error
		if seq, err = strconv.Atoi(parts[1]); err != nil || seq < 0 || seq >= len(ds.Sequences) {
			log.Fatalf("bad sequence index %q", parts[1])
		}
	}
	cond := ds.Sequences[seq]
	fmt.Printf("\ncondition %q: background %.2f, car %.2f, bus %.2f, scale %.2f, weather %s\n",
		cond.Name, cond.Background, cond.CarIntensity, cond.BusIntensity, cond.ObjScale, cond.Weather)
	g := vidsim.NewSceneGenerator(cond, ds.W, ds.H, stats.NewRNG(1))
	for i := 0; i < *frames; i++ {
		f := g.Next()
		fmt.Printf("\nframe %d (%d objects):\n%s", i, len(f.Truth), ascii(f))
	}
}

func byName(name string, scale float64) *dataset.Dataset {
	switch name {
	case "bdd":
		return dataset.BDD(scale)
	case "detrac":
		return dataset.Detrac(scale)
	case "tokyo":
		return dataset.Tokyo(scale)
	case "slow":
		return dataset.SlowDrift(scale)
	}
	return nil
}

func fullSize(name string) int {
	for _, ds := range dataset.All(1.0) {
		if ds.Name == name {
			return ds.StreamSize()
		}
	}
	return 0
}

// ascii renders a frame with a 10-step brightness ramp.
func ascii(f vidsim.Frame) string {
	const ramp = " .:-=+*#%@"
	var b strings.Builder
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			v := int(f.At(x, y) * 10)
			if v > 9 {
				v = 9
			}
			b.WriteByte(ramp[v])
			b.WriteByte(ramp[v]) // double width for aspect ratio
		}
		b.WriteByte('\n')
	}
	return b.String()
}
