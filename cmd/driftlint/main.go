// Command driftlint is the repo's invariant multichecker: nine custom
// analyzers that mechanically enforce what the test suite can only
// sample — restart determinism (no wall clock / global randomness /
// unordered iteration in replay-critical packages), checkpoint
// completeness (every snapshot field covered by encode and decode),
// nil-safe telemetry, tolerance-based float comparison in the
// statistical packages, registry lock discipline, goroutine stop
// paths, lock-acquisition-order cycles, wire-codec field and
// integrity coverage, and enum-surface exhaustiveness. The per-package
// passes and the whole-program passes share one type-checked load and
// one cross-package fact layer (DESIGN.md §10, §15).
//
// Usage:
//
//	driftlint [package pattern ...]    # default ./...
//	driftlint -timing [...]            # print the load/facts/analyze split
//	driftlint -help                    # list analyzers
//
// Exit status: 0 clean, 1 findings, 2 load failure. Suppress a finding
// with `//lint:allow <analyzer> <reason>` on the flagged line or the
// line above. The identical gate runs in CI and via `drifttool lint`
// and scripts/lint.sh.
package main

import (
	"os"

	"videodrift/internal/analysis"
	"videodrift/internal/analysis/driftlint"
)

func main() {
	dir, err := os.Getwd()
	if err != nil {
		os.Stderr.WriteString(err.Error() + "\n")
		os.Exit(2)
	}
	os.Exit(driftlint.Main(os.Stderr, dir, os.Args[1:], analysis.Suite()))
}
