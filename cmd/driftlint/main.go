// Command driftlint is the repo's invariant multichecker: five custom
// analyzers that mechanically enforce what the test suite can only
// sample — restart determinism (no wall clock / global randomness /
// unordered iteration in replay-critical packages), checkpoint
// completeness (every snapshot field covered by encode and decode),
// nil-safe telemetry, tolerance-based float comparison in the
// statistical packages, and registry lock discipline.
//
// Usage:
//
//	driftlint [package pattern ...]    # default ./...
//	driftlint -help                    # list analyzers
//
// Exit status: 0 clean, 1 findings, 2 load failure. Suppress a finding
// with `//lint:allow <analyzer> <reason>` on the flagged line or the
// line above. The identical gate runs in CI and via `drifttool lint`
// and scripts/lint.sh.
package main

import (
	"os"

	"videodrift/internal/analysis"
	"videodrift/internal/analysis/driftlint"
)

func main() {
	dir, err := os.Getwd()
	if err != nil {
		os.Stderr.WriteString(err.Error() + "\n")
		os.Exit(2)
	}
	os.Exit(driftlint.Main(os.Stderr, dir, os.Args[1:], analysis.Suite()))
}
