// Command drifttool runs the drift-aware monitor interactively over a
// scripted synthetic stream and logs every detection, selection and
// training event — a quick way to watch the Figure-1 architecture work.
//
// Usage:
//
//	drifttool [-dataset bdd|detrac|tokyo|slow] [-scale 0.02] [-selector msbo|msbi] [-v]
//	drifttool inspect <checkpoint>
//	drifttool [-verify] inspect <state-dir>
//	drifttool [-drift id] [-shard n] explain <checkpoint>
//	drifttool health <addr>
//	drifttool lint [packages]
//
// The inspect subcommand describes a checkpoint file written by
// driftserve (or any videodrift.CheckpointStore): store format version,
// per-model inventory with sizes and checksums, each shard's stream
// position, its per-kind telemetry event counts, and its last retained
// drift declaration. Damaged files report typed errors instead of
// partial output.
//
// Given a directory (or with -verify), inspect instead walks every
// checkpoint and delta generation in the state dir, re-checksums each
// envelope and every per-model entry inside it, and prints one line per
// file. Exit status 1 if any file is damaged — the scrub a backup or a
// standby's replicated state dir gets before being trusted.
//
// The explain subcommand renders the forensic report of the drift
// declarations a checkpoint retains (written with forensics enabled):
// the declaration evidence, the ranked per-feature attribution, the
// bit-identical replayed martingale trajectory, and how the post-drift
// selection resolved. -drift narrows to one declaration ID, -shard to
// one shard.
//
// The lint subcommand runs the repo's driftlint analyzer suite (the
// same multichecker cmd/driftlint wraps) over the given packages,
// defaulting to ./... — see cmd/driftlint for the analyzer list.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"videodrift/internal/analysis"
	"videodrift/internal/analysis/driftlint"
	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/experiments"
	"videodrift/internal/forensics"
	"videodrift/internal/ingest"
	"videodrift/internal/query"
	"videodrift/internal/store"
)

func main() {
	dsName := flag.String("dataset", "bdd", "stream to monitor: bdd, detrac, tokyo, slow")
	scale := flag.Float64("scale", 0.02, "dataset stream scale (1.0 = paper sizes)")
	selector := flag.String("selector", "msbo", "model selector: msbo or msbi")
	train := flag.Int("train", 300, "training frames per provisioned condition")
	verbose := flag.Bool("v", false, "log per-sequence accuracy while streaming")
	driftID := flag.String("drift", "", "explain: narrow to one drift declaration ID")
	shard := flag.Int("shard", -1, "explain: narrow to one shard (-1 = all)")
	verify := flag.Bool("verify", false, "inspect: re-checksum every checkpoint and delta generation in a state dir; exit 1 on damage")
	flag.Parse()

	if flag.Arg(0) == "lint" {
		cwd, err := os.Getwd()
		if err != nil {
			log.Fatal(err)
		}
		os.Exit(driftlint.Main(os.Stderr, cwd, flag.Args()[1:], analysis.Suite()))
	}
	if flag.Arg(0) == "inspect" {
		if flag.NArg() != 2 {
			log.Fatal("usage: drifttool [-verify] inspect <checkpoint|state-dir>")
		}
		path := flag.Arg(1)
		if fi, err := os.Stat(path); *verify || (err == nil && fi.IsDir()) {
			results, err := store.VerifyDir(path)
			if err != nil {
				log.Fatalf("verify %s: %v", path, err)
			}
			if damaged := store.WriteVerifyText(os.Stdout, path, results); damaged != 0 {
				os.Exit(1)
			}
			return
		}
		d, err := store.Inspect(path)
		if err != nil {
			log.Fatalf("inspect %s: %v", path, err)
		}
		d.WriteText(os.Stdout)
		return
	}
	if flag.Arg(0) == "explain" {
		if flag.NArg() != 2 {
			log.Fatal("usage: drifttool [-drift id] [-shard n] explain <checkpoint>")
		}
		explain(flag.Arg(1), *driftID, *shard)
		return
	}
	if flag.Arg(0) == "health" {
		if flag.NArg() != 2 {
			log.Fatal("usage: drifttool health <addr>")
		}
		os.Exit(health(os.Stdout, flag.Arg(1)))
	}
	if flag.NArg() > 0 {
		log.Fatalf("unknown subcommand %q (subcommands: inspect, explain, health, lint)", flag.Arg(0))
	}

	var ds *dataset.Dataset
	switch *dsName {
	case "bdd":
		ds = dataset.BDD(*scale)
	case "detrac":
		ds = dataset.Detrac(*scale)
	case "tokyo":
		ds = dataset.Tokyo(*scale)
	case "slow":
		ds = dataset.SlowDrift(*scale)
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}

	sel := core.SelectorMSBO
	if *selector == "msbi" {
		sel = core.SelectorMSBI
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.TrainFrames = *train

	fmt.Fprintf(os.Stderr, "provisioning %d models for %s (%d training frames each)...\n",
		len(ds.Sequences), ds.Name, cfg.TrainFrames)
	env := experiments.BuildEnv(ds, cfg, query.Count)
	pipe := core.NewPipeline(env.Registry, env.Labeler(), env.PipelineConfig(sel))

	fmt.Fprintf(os.Stderr, "streaming %d frames (%d sequences, drifts at %v)...\n",
		ds.StreamSize()+ds.WarmupLen, len(ds.Sequences), ds.Stream().DriftPoints())

	stream := ds.Stream()
	start := time.Now()
	correct, scored := 0, 0
	i := 0
	for {
		f, ok := stream.Next()
		if !ok {
			break
		}
		out := pipe.Process(f)
		if out.Drift {
			fmt.Printf("frame %6d [%s]: drift declared (deployed model: %s)\n", i, f.Condition, pipe.Current().Name)
		}
		if out.SwitchedTo != "" {
			kind := "selected"
			if out.TrainedNew {
				kind = "trained"
			}
			fmt.Printf("frame %6d [%s]: %s and deployed model %q\n", i, f.Condition, kind, out.SwitchedTo)
		}
		if *verbose && i%16 == 0 {
			if out.Prediction == env.Annotator.CountLabel(f) {
				correct++
			}
			scored++
		}
		i++
	}
	elapsed := time.Since(start)

	m := pipe.Metrics()
	fmt.Printf("\nprocessed %d frames in %v (%.1f µs/frame)\n", m.Frames, elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/float64(m.Frames))
	fmt.Printf("drifts detected: %d   models selected: %d   models trained: %d\n",
		m.DriftsDetected, m.ModelsSelected, m.ModelsTrained)
	fmt.Printf("registry: %v\n", pipe.Registry().Names())
	if scored > 0 {
		fmt.Printf("sampled count-query accuracy: %.3f (%d frames scored)\n", float64(correct)/float64(scored), scored)
	}
}

// health fetches a running driftserve's /healthz and pretty-prints it,
// including the per-tenant ingestion stats when the server runs the
// network ingestion tier. Exit status is 0 only when the server
// answered 200 — the CI smoke-check contract. The "total dropped"
// line sums supervised frame drops across shards (breaker-tripped
// shards discarding frames); a soak asserts it stays zero.
func health(w io.Writer, addr string) int {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/")
	if !strings.HasSuffix(url, "/healthz") {
		url += "/healthz"
	}
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drifttool health: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	var h struct {
		Status       string `json:"status"`
		Mode         string `json:"mode"`
		Streaming    bool   `json:"streaming"`
		Shards       int    `json:"shards"`
		ActiveShards int    `json:"active_shards"`
		Frames       int64  `json:"frames"`
		Quarantined  int64  `json:"quarantined_frames"`
		TrainFails   int64  `json:"training_failures"`
		ShardHealth  []struct {
			State    string `json:"state"`
			Stalled  bool   `json:"stalled"`
			Restarts int    `json:"restarts"`
			Dropped  int    `json:"dropped"`
		} `json:"shard_health"`
		Ingest *ingest.Stats `json:"ingest"`

		StateDir string  `json:"state_dir"`
		CkptAge  float64 `json:"last_checkpoint_age_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		fmt.Fprintf(os.Stderr, "drifttool health: decoding %s: %v\n", url, err)
		return 1
	}
	fmt.Fprintf(w, "%s: %s (HTTP %d)\n", url, h.Status, resp.StatusCode)
	fmt.Fprintf(w, "  mode: %s   streaming: %v\n", h.Mode, h.Streaming)
	fmt.Fprintf(w, "  shards: %d (%d attached)   frames: %d   quarantined: %d   training failures: %d\n",
		h.Shards, h.ActiveShards, h.Frames, h.Quarantined, h.TrainFails)
	dropped := 0
	for i, sh := range h.ShardHealth {
		dropped += sh.Dropped
		stalled := ""
		if sh.Stalled {
			stalled = "   STALLED"
		}
		fmt.Fprintf(w, "  shard %d: %s (restarts %d, dropped %d)%s\n", i, sh.State, sh.Restarts, sh.Dropped, stalled)
	}
	if h.StateDir != "" {
		fmt.Fprintf(w, "  checkpoints: %s (last %.1fs ago)\n", h.StateDir, h.CkptAge)
	}
	if in := h.Ingest; in != nil {
		fmt.Fprintf(w, "  ingest: %d/%d tenants attached   accepted %d   processed %d   dups %d\n",
			in.Active, in.Known, in.Accepted, in.Processed, in.Dups)
		fmt.Fprintf(w, "    nacks: queue_full %d, bad_seq %d, tenant_limit %d, malformed %d   attaches %d   evictions %d\n",
			in.NackedFull, in.NackedSeq, in.NackedLimit, in.NackedMalformed, in.Attaches, in.Evictions)
		for _, t := range in.Tenants {
			slot := fmt.Sprint(t.Slot)
			if t.Slot < 0 {
				slot = "evicted"
			}
			fmt.Fprintf(w, "    tenant %s: slot %s, queued %d/%d, accepted %d, processed %d, dups %d, nacked_full %d, nacked_seq %d\n",
				t.Tenant, slot, t.Queued, t.QueueCap, t.Accepted, t.Processed, t.Dups, t.NackedFull, t.NackedSeq)
		}
	}
	fmt.Fprintf(w, "  total dropped: %d\n", dropped)
	if resp.StatusCode != http.StatusOK {
		return 1
	}
	return 0
}

// explain loads a checkpoint and renders the forensic report of its
// retained drift declarations. Replay needs the original run's
// monitoring parameters; every bundled driver (driftserve, drifttool,
// the facade's Defaults) runs core.DefaultPipelineConfig, so the config
// is rebuilt from the checkpoint's frame geometry.
func explain(path, driftID string, shard int) {
	cp, err := store.LoadPath(path)
	if err != nil {
		log.Fatalf("explain %s: %v", path, err)
	}
	matched := 0
	for si, sh := range cp.Shards {
		if shard >= 0 && si != shard {
			continue
		}
		if !sh.Forensics.Enabled {
			fmt.Printf("shard %d: checkpoint holds no forensics state (run with forensics enabled)\n", si)
			continue
		}
		decls := sh.Forensics.Declarations
		fmt.Printf("shard %d: %d drift declaration(s) retained\n", si, len(decls))
		if len(decls) == 0 {
			continue
		}
		ents := make([]*core.ModelEntry, len(sh.Registry))
		for j, ref := range sh.Registry {
			ents[j] = cp.Entries[ref]
		}
		cfg := core.DefaultPipelineConfig(ents[0].W*ents[0].H, 2)
		for _, d := range decls {
			if driftID != "" && d.ID != driftID {
				continue
			}
			matched++
			rep, err := forensics.BuildReport(ents, cfg, d)
			if err != nil {
				log.Fatalf("replay %s: %v", d.ID, err)
			}
			rep.WriteText(os.Stdout)
		}
	}
	if driftID != "" && matched == 0 {
		log.Fatalf("no retained declaration %q in %s", driftID, path)
	}
}
