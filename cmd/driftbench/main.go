// Command driftbench regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic dataset analogs and prints them in the
// paper's layout. The committed EXPERIMENTS.md was produced by this tool.
//
// Usage:
//
//	driftbench [-scale 0.05] [-train 300] [-exp all|table5|fig3|fig4|fig5|fig6|table8|table9|fig7|fig8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"videodrift/internal/dataset"
	"videodrift/internal/experiments"
	"videodrift/internal/query"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset stream scale (1.0 = paper sizes)")
	train := flag.Int("train", 300, "training frames per provisioned condition")
	exp := flag.String("exp", "all", "experiment id (all, table5, fig3, fig4, fig5, fig6, table8, table9, fig7, fig8, ablation)")
	seed := flag.Int64("seed", 99, "experiment seed")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.TrainFrames = *train
	cfg.Seed = *seed

	run := func(id string) bool { return *exp == "all" || *exp == id }
	start := time.Now()

	if run("table5") {
		section("table5")
		fmt.Print(experiments.RunTable5(cfg).Render())
	}
	if run("fig3") {
		section("fig3 + table6")
		for _, ds := range dataset.All(cfg.Scale) {
			fmt.Print(experiments.RunFig3(ds, cfg).Render())
			fmt.Println()
		}
	}
	if run("fig4") {
		section("fig4")
		fmt.Print(experiments.RunFig4(cfg).Render())
	}
	if run("fig5") {
		section("fig5")
		fmt.Print(experiments.RunFig5(cfg).Render())
	}
	if run("fig6") {
		section("fig6")
		for _, ds := range dataset.All(cfg.Scale) {
			fmt.Print(experiments.RunFig6(ds, cfg).Render())
			fmt.Println()
		}
	}
	if run("table8") {
		section("table7 + table8")
		for _, ds := range dataset.All(cfg.Scale) {
			fmt.Print(experiments.RunTable8(ds, cfg).Render())
			fmt.Println()
		}
	}
	if run("table9") || run("fig7") {
		section("table9 + fig7")
		for _, ds := range dataset.All(cfg.Scale) {
			fmt.Print(experiments.RunEndToEnd(ds, cfg, query.Count).Render())
			fmt.Println()
		}
	}
	if run("fig8") {
		section("fig8")
		fmt.Print(experiments.RunEndToEnd(dataset.BDD(cfg.Scale), cfg, query.Spatial).Render())
	}
	if run("ablation") {
		section("ablation")
		fmt.Print(experiments.RunAblation(cfg).Render())
	}

	fmt.Fprintf(os.Stderr, "\ntotal wall time: %v (scale %v)\n", time.Since(start).Round(time.Millisecond), *scale)
}

func section(name string) {
	fmt.Printf("%s\n== %s ==\n", strings.Repeat("-", 72), name)
}
