package videodrift

import (
	"sync"
	"testing"

	"videodrift/internal/vidsim"
)

var (
	ckptOnce   sync.Once
	ckptModels []*Model
)

// getCkptModels provisions the shared day/night pair once for all
// checkpoint tests.
func getCkptModels() []*Model {
	ckptOnce.Do(func() {
		opts := Defaults(facadeDim, facadeClasses)
		ckptModels = []*Model{
			BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 41), facadeLabeler, opts),
			BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 42), facadeLabeler, opts),
		}
	})
	return ckptModels
}

// driftStream builds a per-shard live stream that starts in-distribution
// (day) and drifts to night at the given offset.
func driftStream(total, driftAt int, seed int64) []Frame {
	return append(
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Day()), 16, 16, driftAt, 1, seed),
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Night()), 16, 16, total-driftAt, 1, seed+1000)...)
}

// mustBatch feeds one frame per shard; a batch-shape error is a fixture
// bug in these fixed-fleet tests, so it panics.
func mustBatch(sm *ShardedMonitor, frames []Frame) []Event {
	evs, err := sm.ProcessBatch(frames)
	if err != nil {
		panic(err)
	}
	return evs
}

// mustBatches is mustBatch for per-shard micro-batches.
func mustBatches(sm *ShardedMonitor, batches [][]Frame) [][]Event {
	evs, err := sm.ProcessBatches(batches)
	if err != nil {
		panic(err)
	}
	return evs
}

// runBatches feeds streams[s][from:to] to shard s and collects the
// per-shard events.
func runBatches(sm *ShardedMonitor, streams [][]Frame, from, to int) [][]Event {
	out := make([][]Event, len(streams))
	batch := make([]Frame, len(streams))
	for step := from; step < to; step++ {
		for s := range streams {
			batch[s] = streams[s][step]
		}
		for s, ev := range mustBatch(sm, batch) {
			out[s] = append(out[s], ev)
		}
	}
	return out
}

// TestRestartDeterminism is the subsystem's headline guarantee:
// checkpointing mid-stream — through the real on-disk store, not an
// in-memory copy — and resuming produces a monitor whose remaining event
// stream is bit-identical to the uninterrupted run's, for both selectors
// and at 1 and 4 shards. The cut lands after some shards have drifted
// and before others, so monitoring, post-drift selection and freshly
// switched deployments all cross the restart boundary.
func TestRestartDeterminism(t *testing.T) {
	models := getCkptModels()
	const total, cut = 200, 100

	for _, tc := range []struct {
		name     string
		selector Selector
		shards   int
	}{
		{"msbi-shards1", MSBI, 1},
		{"msbi-shards4", MSBI, 4},
		{"msbo-shards1", MSBO, 1},
		{"msbo-shards4", MSBO, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Defaults(facadeDim, facadeClasses)
			opts.Pipeline.Selector = tc.selector
			// Forensics rides through the same checkpoints; the restart must
			// preserve its declarations and pre-roll bit-identically too.
			opts.Forensics = ForensicsConfig{Enabled: true}
			sopts := ShardedOptions{Options: opts, Shards: tc.shards, Workers: 2}

			streams := make([][]Frame, tc.shards)
			for s := range streams {
				// Shard drift offsets straddle the cut point.
				streams[s] = driftStream(total, 60+25*s, int64(300+10*s))
			}

			ref := NewShardedMonitor(models, facadeLabeler, sopts)
			want := runBatches(ref, streams, 0, total)

			first := NewShardedMonitor(models, facadeLabeler, sopts)
			got := runBatches(first, streams, 0, cut)

			st, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Save(first.Checkpoint()); err != nil {
				t.Fatalf("Save: %v", err)
			}
			cp, path, err := st.LoadLatest()
			if err != nil {
				t.Fatalf("LoadLatest: %v", err)
			}
			resumed, err := ResumeSharded(cp, facadeLabeler, sopts)
			if err != nil {
				t.Fatalf("ResumeSharded(%s): %v", path, err)
			}
			for s, evs := range runBatches(resumed, streams, cut, total) {
				got[s] = append(got[s], evs...)
			}

			for s := 0; s < tc.shards; s++ {
				if len(got[s]) != len(want[s]) {
					t.Fatalf("shard %d: %d events, want %d", s, len(got[s]), len(want[s]))
				}
				for step := range want[s] {
					if got[s][step] != want[s][step] {
						t.Fatalf("shard %d frame %d: resumed event %+v, uninterrupted %+v",
							s, step, got[s][step], want[s][step])
					}
				}
				if a, b := resumed.Shard(s).Current(), ref.Shard(s).Current(); a != b {
					t.Errorf("shard %d: resumed deployed %q, uninterrupted %q", s, a, b)
				}
				if a, b := resumed.ShardStats(s), ref.ShardStats(s); a != b {
					t.Errorf("shard %d: resumed stats %+v, uninterrupted %+v", s, a, b)
				}
				// The restored recorder must hold the same declarations the
				// uninterrupted run captured (gob may turn empty slices into
				// nil, so compare a bit-exact summary, not DeepEqual).
				da := resumed.Shard(s).Forensics().Declarations()
				db := ref.Shard(s).Forensics().Declarations()
				if len(da) != len(db) {
					t.Fatalf("shard %d: resumed retains %d declarations, uninterrupted %d", s, len(da), len(db))
				}
				for k := range db {
					if a, b := declSummary(da[k]), declSummary(db[k]); a != b {
						t.Errorf("shard %d declaration %d:\nresumed       %s\nuninterrupted %s", s, k, a, b)
					}
				}
			}
			// The interesting runs are the ones where something happened.
			if ref.Stats().DriftsDetected == 0 {
				t.Error("no shard detected its drift; the test exercised nothing")
			}
		})
	}
}

// TestMonitorCheckpointResume covers the single-stream facade path
// (Monitor.Checkpoint / Resume) including an encode round-trip.
func TestMonitorCheckpointResume(t *testing.T) {
	models := getCkptModels()
	opts := Defaults(facadeDim, facadeClasses)
	stream := driftStream(200, 80, 500)

	ref := NewMonitor(models, facadeLabeler, opts)
	var want []Event
	for _, f := range stream {
		want = append(want, ref.Process(f))
	}

	m := NewMonitor(models, facadeLabeler, opts)
	var got []Event
	const cut = 90
	for _, f := range stream[:cut] {
		got = append(got, m.Process(f))
	}
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path, err := st.Save(m.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(cp, facadeLabeler, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range stream[cut:] {
		got = append(got, resumed.Process(f))
	}

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d: resumed event %+v, uninterrupted %+v", i, got[i], want[i])
		}
	}
	if resumed.Current() != ref.Current() {
		t.Errorf("resumed deployed %q, uninterrupted %q", resumed.Current(), ref.Current())
	}
	if a, b := resumed.Stats(), ref.Stats(); a != b {
		t.Errorf("resumed stats %+v, uninterrupted %+v", a, b)
	}
	if ref.Stats().DriftsDetected == 0 {
		t.Error("reference run never drifted; the test exercised nothing")
	}

	// A sharded checkpoint must refuse the single-stream Resume.
	smCp := NewShardedMonitor(models, facadeLabeler,
		ShardedOptions{Options: opts, Shards: 2}).Checkpoint()
	if _, err := Resume(smCp, facadeLabeler, opts); err == nil {
		t.Error("Resume accepted a 2-shard checkpoint")
	}
	// And a shard-count mismatch must be rejected.
	if _, err := ResumeSharded(smCp, facadeLabeler,
		ShardedOptions{Options: opts, Shards: 3}); err == nil {
		t.Error("ResumeSharded accepted a shard-count mismatch")
	}
}
