package videodrift

import (
	"sync"
	"testing"

	"videodrift/internal/vidsim"
)

func TestSafeMonitorConcurrentUse(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 21), facadeLabeler, opts)
	night := BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 22), facadeLabeler, opts)
	mon := NewSafeMonitor([]*Model{day, night}, facadeLabeler, opts)

	frames := facadeFrames(facadeCond(vidsim.Day()), 400, 23)
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(frames); i += workers {
				mon.Process(frames[i])
			}
		}(w)
	}
	wg.Wait()

	st := mon.Stats()
	if st.Frames != len(frames) {
		t.Errorf("Frames = %d, want %d", st.Frames, len(frames))
	}
	if st.ModelInvocations != st.Frames {
		t.Errorf("invocations %d != frames %d", st.ModelInvocations, st.Frames)
	}
	if mon.Current() == "" || len(mon.Models()) < 2 {
		t.Error("accessors broken under concurrency")
	}
}
