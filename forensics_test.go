package videodrift

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"videodrift/internal/telemetry"
)

// declSummary renders the bit-exact identity of a declaration — float
// fields as raw bits, slices by length — so restored declarations can be
// compared against live ones without tripping over gob's empty-slice /
// nil normalization.
func declSummary(d DriftDeclaration) string {
	attrBits := uint64(0)
	if len(d.Attribution) > 0 {
		attrBits = math.Float64bits(d.Attribution[0].JS)
	}
	return fmt.Sprintf("%s frame=%d model=%s lag=%d sampled=%d mart=%016x wd=%016x meanp=%016x base=%d frames=%d attr=%d attr0js=%016x resolved=%v resframe=%d resmodel=%s trained=%v abandoned=%v cands=%d",
		d.ID, d.Frame, d.Model, d.Lag, d.Sampled,
		math.Float64bits(d.Martingale), math.Float64bits(d.WindowDelta), math.Float64bits(d.MeanP),
		d.BaseFrame, len(d.Frames), len(d.Attribution), attrBits,
		d.Resolved, d.Resolution.Frame, d.Resolution.Model, d.Resolution.TrainedNew,
		d.Resolution.Abandoned, len(d.Resolution.Candidates))
}

// TestForensicsReplayDeterminism is the forensics subsystem's headline
// guarantee: replaying a declaration's captured pre-roll through a
// pipeline restored from its base snapshot re-declares the drift on the
// same frame, and the replayed trajectory matches the live run's
// per-frame martingale telemetry bit for bit — for both selectors, at 1
// and 4 shards.
func TestForensicsReplayDeterminism(t *testing.T) {
	models := getCkptModels()
	const total = 200

	for _, tc := range []struct {
		name     string
		selector Selector
		shards   int
	}{
		{"msbi-shards1", MSBI, 1},
		{"msbi-shards4", MSBI, 4},
		{"msbo-shards1", MSBO, 1},
		{"msbo-shards4", MSBO, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Defaults(facadeDim, facadeClasses)
			opts.Pipeline.Selector = tc.selector
			opts.Forensics = ForensicsConfig{Enabled: true}
			// Per-frame tracing gives the live run's martingale trajectory
			// to cross-check the replay against.
			tracers := make([]*Tracer, tc.shards)
			for i := range tracers {
				tracers[i] = NewTracer(TracerConfig{RingSize: 8192, PerFrame: true})
			}
			sopts := ShardedOptions{Options: opts, Shards: tc.shards, Workers: 2, Tracers: tracers}

			streams := make([][]Frame, tc.shards)
			for s := range streams {
				streams[s] = driftStream(total, 60+25*s, int64(900+10*s))
			}
			sm := NewShardedMonitor(models, facadeLabeler, sopts)
			runBatches(sm, streams, 0, total)

			declared := 0
			for s := 0; s < tc.shards; s++ {
				m := sm.Shard(s)
				for _, d := range m.Forensics().Declarations() {
					declared++
					if len(d.Attribution) == 0 {
						t.Errorf("shard %d %s: no attribution captured", s, d.ID)
					}
					rep, err := m.Explain(d.ID)
					if err != nil {
						t.Fatalf("shard %d Explain(%s): %v", s, d.ID, err)
					}
					if rep.Replay.DeclaredFrame != d.Frame {
						t.Errorf("shard %d %s: replay re-declared at frame %d, live run at %d",
							s, d.ID, rep.Replay.DeclaredFrame, d.Frame)
					}
					if !rep.Replay.Matches {
						t.Errorf("shard %d %s: replay diverged (martingale %v vs %v, delta %v vs %v)",
							s, d.ID, rep.Replay.Martingale, d.Martingale, rep.Replay.WindowDelta, d.WindowDelta)
					}
					// The replayed trajectory must reproduce the live run's
					// martingale updates over the pre-roll window bit for bit.
					want := martingaleTrace(tracers[s], d.BaseFrame, d.Frame)
					if len(rep.Replay.Points) != len(want) {
						t.Fatalf("shard %d %s: replay traced %d updates, live run %d",
							s, d.ID, len(rep.Replay.Points), len(want))
					}
					for i, pt := range rep.Replay.Points {
						w := want[i]
						if pt.Frame != w.Frame ||
							math.Float64bits(pt.PValue) != math.Float64bits(w.PValue) ||
							math.Float64bits(pt.Martingale) != math.Float64bits(w.Martingale) ||
							math.Float64bits(pt.WindowDelta) != math.Float64bits(w.WindowDelta) {
							t.Fatalf("shard %d %s update %d: replay {frame %d p %v S %v Δ %v}, live {frame %d p %v S %v Δ %v}",
								s, d.ID, i, pt.Frame, pt.PValue, pt.Martingale, pt.WindowDelta,
								w.Frame, w.PValue, w.Martingale, w.WindowDelta)
						}
					}
				}
				if _, err := m.Explain("drift-99999999"); err == nil {
					t.Error("Explain accepted an unknown drift ID")
				}
			}
			if declared == 0 {
				t.Fatal("no declarations captured; the test exercised nothing")
			}
		})
	}
}

// martingaleTrace extracts the live run's per-frame martingale updates
// for stream frames in [lo, hi] from a per-frame tracer's event ring.
func martingaleTrace(tr *Tracer, lo, hi int) []TelemetryEvent {
	var out []TelemetryEvent
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindMartingaleUpdate && e.Frame >= lo && e.Frame <= hi {
			out = append(out, e)
		}
	}
	return out
}

// TestExplainReportText exercises the drifttool-explain rendering path
// end to end on a live monitor: declaration evidence, attribution table,
// replayed trajectory and the selection outcome all appear.
func TestExplainReportText(t *testing.T) {
	models := getCkptModels()
	opts := Defaults(facadeDim, facadeClasses)
	opts.Pipeline.Selector = MSBI
	opts.Forensics = ForensicsConfig{Enabled: true}

	m := NewMonitor(models, facadeLabeler, opts)
	for _, f := range driftStream(200, 70, 1700) {
		m.Process(f)
	}
	decls := m.Forensics().Declarations()
	if len(decls) == 0 {
		t.Fatal("stream produced no declarations")
	}
	rep, err := m.Explain(decls[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	rep.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		decls[0].ID,
		"attribution (reference vs recent window",
		"trajectory (replayed martingale updates)",
		fmt.Sprintf("re-declared at frame %d", decls[0].Frame),
		"matches recording: yes, bit-identical",
		"resolution",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
	// The declaration's drift ID matches the telemetry event's, so the
	// two observability surfaces name the same drift identically.
	if want := telemetry.DriftID(decls[0].Frame); decls[0].ID != want {
		t.Errorf("declaration ID %q, telemetry DriftID %q", decls[0].ID, want)
	}
}
