package videodrift

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"videodrift/internal/vidsim"
)

// TestDynamicAttachDetach pins the dynamic-fleet lifecycle: a fleet
// born empty, shards attached on demand with seed-by-slot determinism,
// detached slots rejecting frames but tolerating empty batches, and
// freed slots reused with fresh state.
func TestDynamicAttachDetach(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 1), facadeLabeler, opts)
	night := BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 2), facadeLabeler, opts)
	models := []*Model{day, night}
	streams := batchTestStreams()

	sm := NewDynamicSharded(models, facadeLabeler, ShardedOptions{Options: opts, Workers: 2})
	if sm.Shards() != 0 || sm.Active() != 0 {
		t.Fatalf("fresh dynamic fleet: %d slots, %d active", sm.Shards(), sm.Active())
	}
	for want := 0; want < 3; want++ {
		slot, err := sm.Attach(nil)
		if err != nil {
			t.Fatal(err)
		}
		if slot != want {
			t.Fatalf("attach %d landed on slot %d", want, slot)
		}
	}

	// Seed-by-slot: each dynamic slot must behave exactly like the same
	// slot of a fixed fleet (and therefore like the serial reference).
	n := len(streams[0])
	got := make([][]Event, 3)
	for at := 0; at < n; at += 16 {
		end := min(at+16, n)
		batches := make([][]Frame, 3)
		for s := range batches {
			batches[s] = streams[s][at:end]
		}
		for s, evs := range mustBatches(sm, batches) {
			got[s] = append(got[s], evs...)
		}
	}
	for s := range streams {
		want, ref := serialReference(t, models, opts, s, streams[s])
		for i := range want {
			if got[s][i] != want[i] {
				t.Fatalf("slot %d frame %d: event %+v, serial %+v", s, i, got[s][i], want[i])
			}
		}
		if sm.Shard(s).Current() != ref.Current() {
			t.Fatalf("slot %d: deployed %q, serial %q", s, sm.Shard(s).Current(), ref.Current())
		}
	}

	// Detach the middle slot: it disappears from the roster but keeps
	// its index; empty batches for it are fine, frames are not.
	if err := sm.Detach(1); err != nil {
		t.Fatal(err)
	}
	if sm.Shards() != 3 || sm.Active() != 2 || sm.Shard(1) != nil {
		t.Fatalf("after detach: %d slots, %d active, shard(1)=%v", sm.Shards(), sm.Active(), sm.Shard(1))
	}
	if !sm.Health().Shards[1].Detached {
		t.Fatal("health does not report slot 1 detached")
	}
	if _, err := sm.ProcessBatches([][]Frame{{streams[0][0]}, nil, {streams[2][0]}}); err != nil {
		t.Fatalf("empty batch for a detached slot must pass: %v", err)
	}
	var detached *DetachedSlotError
	_, err := sm.ProcessBatches([][]Frame{nil, {streams[1][0]}, nil})
	if !errors.As(err, &detached) || detached.Slot != 1 {
		t.Fatalf("frame for a detached slot: err %v, want *DetachedSlotError{Slot:1}", err)
	}
	if err := sm.Detach(1); err == nil {
		t.Fatal("double detach must error")
	}

	// Reattach reuses the freed slot with fresh state.
	slot, err := sm.Attach(nil)
	if err != nil {
		t.Fatal(err)
	}
	if slot != 1 {
		t.Fatalf("reattach landed on slot %d, want reused slot 1", slot)
	}
	if stats := sm.ShardStats(1); stats.Frames != 0 {
		t.Fatalf("reused slot kept %d frames of state", stats.Frames)
	}
	if sm.Shard(1).Current() != day.Name {
		t.Fatalf("reused slot deploys %q, want the base model", sm.Shard(1).Current())
	}
}

// TestDynamicConcurrentHealth races Health/Stats/Checkpoint observers
// against ProcessBatches and attach/detach churn — the ingest tier's
// actual concurrency shape (connection handlers attach, the pump
// processes, /healthz observes). Run under -race this is the fleet's
// thread-safety contract; the feeder retries on the benign
// *BatchMismatchError a concurrent attach induces.
func TestDynamicConcurrentHealth(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 1), facadeLabeler, opts)
	models := []*Model{day}
	frames := facadeFrames(facadeCond(vidsim.Day()), 64, 3)

	sm := NewDynamicSharded(models, facadeLabeler, ShardedOptions{Options: opts, Workers: 2})
	if _, err := sm.Attach(nil); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Feeder: keep slot 0 busy; pad to the live slot count and retry on
	// mismatch (an attach landed between sizing and processing).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			batches := make([][]Frame, sm.Shards())
			if len(batches) == 0 {
				continue
			}
			batches[0] = []Frame{frames[i%len(frames)]}
			var mismatch *BatchMismatchError
			if _, err := sm.ProcessBatches(batches); err != nil && !errors.As(err, &mismatch) {
				t.Errorf("feeder: %v", err)
				return
			}
		}
	}()

	// Churner: attach and detach a second slot in a loop.
	churnDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(churnDone)
		for i := 0; i < 200; i++ {
			slot, err := sm.Attach(nil)
			if err != nil {
				t.Errorf("churn attach: %v", err)
				return
			}
			if slot == 0 {
				t.Error("churn attach stole the feeder's slot")
				return
			}
			if err := sm.Detach(slot); err != nil {
				t.Errorf("churn detach: %v", err)
				return
			}
		}
	}()

	// Observers: health and stats race both of the above, the shape a
	// /healthz handler sees. (Checkpoint is NOT here: its contract
	// forbids calling it concurrently with batch processing.)
	for range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				h := sm.Health()
				if len(h.Shards) > 0 && h.Shards[0].Detached {
					t.Error("observer saw the feeder's slot detached")
					return
				}
				_ = sm.Stats()
				_ = sm.ShardStats(0)
			}
		}()
	}

	// Let the churner finish its 200 rounds, then wind everyone down.
	<-churnDone
	stop.Store(true)
	wg.Wait()
	if sm.Active() != 1 {
		t.Fatalf("after churn: %d active slots, want the feeder's 1", sm.Active())
	}
	if sm.Stats().Frames == 0 {
		t.Fatal("feeder never processed a frame — the race exercised nothing")
	}
}
