// Traffic monitor: the paper's headline scenario — a fixed traffic camera
// whose angle changes over time (the Detrac analog). Models are
// provisioned per camera angle with labels from the detector-based
// annotation oracle (the Mask R-CNN stand-in), a count query runs on
// every frame, and the monitor swaps models whenever the angle changes.
//
//	go run ./examples/trafficmonitor
package main

import (
	"fmt"

	"videodrift"
)

func main() {
	const scale = 0.02 // 600 frames per camera angle
	ds := videodrift.Detrac(scale)
	ann := videodrift.NewAnnotator(30)
	labeler := ann.Labeler(videodrift.CountQuery)

	opts := videodrift.Defaults(ds.FrameDim(), ann.NumClasses(videodrift.CountQuery))
	// MSBI (input-based selection) is fully unsupervised and, on these
	// camera-angle switches, the more reliable selector (EXPERIMENTS.md).
	opts.Pipeline.Selector = videodrift.MSBI
	fmt.Printf("provisioning %d per-angle models (annotating with %s)...\n",
		len(ds.Sequences), ann.DetectorName())
	models := make([]*videodrift.Model, len(ds.Sequences))
	for i := range ds.Sequences {
		models[i] = videodrift.BuildModel(ds.Sequences[i].Name,
			ds.TrainingFrames(i, 300), labeler, opts)
	}

	mon := videodrift.NewMonitor(models, labeler, opts)
	stream := ds.Stream()
	fmt.Printf("streaming %d frames with %d camera-angle changes...\n\n",
		stream.TotalLength(), ds.NumDrifts())

	// Score the count query on a sample of frames per sequence.
	correct := map[string]int{}
	scored := map[string]int{}
	i := 0
	for {
		f, ok := stream.Next()
		if !ok {
			break
		}
		ev := mon.Process(f)
		if ev.SwitchedTo != "" {
			fmt.Printf("frame %5d [%s]: deployed %q (trained new: %v)\n",
				i, f.Condition, ev.SwitchedTo, ev.TrainedNew)
		}
		if i%8 == 0 {
			if ev.Prediction == labeler(f) {
				correct[f.Condition]++
			}
			scored[f.Condition]++
		}
		i++
	}

	fmt.Println("\ncount-query accuracy per camera angle (sampled):")
	for _, c := range ds.Sequences {
		if scored[c.Name] > 0 {
			fmt.Printf("  %-8s %.3f  (%d frames)\n", c.Name,
				float64(correct[c.Name])/float64(scored[c.Name]), scored[c.Name])
		}
	}
	st := mon.Stats()
	fmt.Printf("\ndrifts: %d   selections: %d   trained: %d   models: %v\n",
		st.DriftsDetected, st.ModelsSelected, st.ModelsTrained, mon.Models())
}
