// Slow drift: the §6.1.3 live-camera setting. A standalone Drift
// Inspector watches a fixed camera while daylight fades gradually into
// night over hundreds of frames — no abrupt cut to key on — and the
// example reports how far into the transition the drift is declared.
//
//	go run ./examples/slowdrift
package main

import (
	"fmt"

	"videodrift"
	"videodrift/internal/vidsim"
)

func main() {
	const (
		w, h       = 32, 32
		transition = 600 // frames over which day fades to night
	)

	// Provision the day model from footage "captured on a previous day".
	// No labeler: pure drift detection needs no annotations.
	fmt.Println("training the day model...")
	opts := videodrift.Defaults(w*h, 2)
	day := videodrift.BuildModel("day",
		vidsim.GenerateTraining(vidsim.Day(), w, h, 300, 1), nil, opts)
	det := videodrift.NewDetector(day, 7)

	// The live stream: stable daylight, then a long linear fade to night.
	stream := vidsim.NewStream(w, h, 9,
		vidsim.Segment{Cond: vidsim.Day(), Length: 500},
		vidsim.Segment{Cond: vidsim.Night(), Length: transition + 300, TransitionLen: transition},
	)
	sundown := stream.DriftPoints()[0]
	fmt.Printf("streaming %d frames; sundown starts at frame %d and lasts %d frames\n",
		stream.TotalLength(), sundown, transition)

	i := 0
	for {
		f, ok := stream.Next()
		if !ok {
			break
		}
		if det.Observe(f) {
			if i < sundown {
				fmt.Printf("frame %5d: false alarm before sundown\n", i)
				det.Reset()
				i++
				continue
			}
			pct := 100 * float64(i-sundown) / float64(transition)
			fmt.Printf("frame %5d: drift declared — %d frames after sundown began (%.0f%% through the fade)\n",
				i, i-sundown+1, pct)
			return
		}
		i++
	}
	fmt.Println("stream ended without a drift declaration")
}
