// Dashcam: the BDD analog — weather and time-of-day drifts under a
// spatial-constrained query ("a bus is on the left side of a car",
// the paper's §6.3.2). Models are provisioned per condition with the
// spatial feature front-end, and the monitor recovers the query's
// accuracy after every weather change.
//
//	go run ./examples/dashcam
package main

import (
	"fmt"

	"videodrift"
)

func main() {
	const scale = 0.02 // 400 frames per weather condition
	ds := videodrift.BDD(scale)
	ann := videodrift.NewAnnotator(30)
	labeler := ann.Labeler(videodrift.SpatialQuery)

	opts := videodrift.Defaults(ds.FrameDim(), ann.NumClasses(videodrift.SpatialQuery))
	// Spatial queries need the layout-aware feature front-end.
	opts.Provision.QueryFn = videodrift.SpatialQuery.FeatureFn()
	opts.Pipeline.Selector = videodrift.MSBI

	fmt.Printf("provisioning %d weather models for the spatial query...\n", len(ds.Sequences))
	models := make([]*videodrift.Model, len(ds.Sequences))
	for i := range ds.Sequences {
		models[i] = videodrift.BuildModel(ds.Sequences[i].Name,
			ds.TrainingFrames(i, 300), labeler, opts)
	}

	mon := videodrift.NewMonitor(models, labeler, opts)
	stream := ds.Stream()
	fmt.Printf("streaming %d frames across %v...\n\n", stream.TotalLength(), ds.SequenceNames())

	correct, scored := map[string]int{}, map[string]int{}
	i := 0
	for {
		f, ok := stream.Next()
		if !ok {
			break
		}
		ev := mon.Process(f)
		if ev.SwitchedTo != "" {
			fmt.Printf("frame %5d [%s]: deployed %q\n", i, f.Condition, ev.SwitchedTo)
		}
		if i%8 == 0 {
			if ev.Prediction == labeler(f) {
				correct[f.Condition]++
			}
			scored[f.Condition]++
		}
		i++
	}

	fmt.Println("\n\"bus left of a car\" accuracy per condition (sampled):")
	for _, c := range ds.Sequences {
		if scored[c.Name] > 0 {
			fmt.Printf("  %-6s %.3f\n", c.Name, float64(correct[c.Name])/float64(scored[c.Name]))
		}
	}
	st := mon.Stats()
	fmt.Printf("\ndrifts: %d   selections: %d   trained: %d\n",
		st.DriftsDetected, st.ModelsSelected, st.ModelsTrained)
}
