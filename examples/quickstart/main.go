// Quickstart: provision two models (day and night), monitor a stream that
// drifts from day into night, and watch the monitor detect the drift and
// deploy the matching model.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"videodrift"
	"videodrift/internal/vidsim"
)

const (
	w, h       = 32, 32
	numClasses = 16 // car-count buckets
)

// labeler is the annotation oracle: here we use the simulator's ground
// truth directly; production code would wire videodrift.NewAnnotator (the
// detector-based oracle) or a real annotation service.
func labeler(f videodrift.Frame) int {
	c := f.CountClass(vidsim.Car) / 2
	if c >= numClasses {
		c = numClasses - 1
	}
	return c
}

func main() {
	opts := videodrift.Defaults(w*h, numClasses)

	// 1. Provision models from per-condition training footage.
	fmt.Println("training day and night models...")
	day := videodrift.BuildModel("day",
		vidsim.GenerateTraining(vidsim.Day(), w, h, 300, 1), labeler, opts)
	night := videodrift.BuildModel("night",
		vidsim.GenerateTraining(vidsim.Night(), w, h, 300, 2), labeler, opts)

	// 2. Start the monitor (deploys the first model).
	mon := videodrift.NewMonitor([]*videodrift.Model{day, night}, labeler, opts)
	fmt.Printf("monitoring with model %q\n", mon.Current())

	// 3. Stream: 600 day frames, then an abrupt switch to night.
	stream := vidsim.NewStream(w, h, 7,
		vidsim.Segment{Cond: vidsim.Day(), Length: 600},
		vidsim.Segment{Cond: vidsim.Night(), Length: 400},
	)
	driftAt := stream.DriftPoints()[0]
	fmt.Printf("streaming %d frames (ground-truth drift at frame %d)\n\n", stream.TotalLength(), driftAt)

	i := 0
	for {
		f, ok := stream.Next()
		if !ok {
			break
		}
		ev := mon.Process(f)
		if ev.Drift {
			fmt.Printf("frame %4d: drift detected (%d frames after the switch)\n", i, i-driftAt+1)
		}
		if ev.SwitchedTo != "" {
			fmt.Printf("frame %4d: deployed model %q\n", i, ev.SwitchedTo)
		}
		i++
	}

	st := mon.Stats()
	fmt.Printf("\ndone: %d frames, %d drifts detected, %d model selections, %d models trained\n",
		st.Frames, st.DriftsDetected, st.ModelsSelected, st.ModelsTrained)
	fmt.Printf("deployed model at end of stream: %q\n", mon.Current())
}
