package videodrift

import (
	"errors"
	"net"
	"testing"

	"videodrift/internal/faults"
	"videodrift/internal/replica"
	"videodrift/internal/store"
	"videodrift/internal/telemetry"
)

// failoverHarness is one primary→standby replication pair over real
// loopback TCP: the standby serves on an ephemeral port, the primary
// captures the fleet between batches and ships one generation per
// Cycle, so generation numbers equal frame offsets.
type failoverHarness struct {
	sb   *replica.Standby
	prim *replica.Primary
	tr   *telemetry.Tracer
	addr string
}

// newFailoverHarness wires a fleet to a fresh standby. txFault is the
// optional seeded replication-fault seam.
func newFailoverHarness(t *testing.T, sm *ShardedMonitor, txFault func(int, []byte) ([]byte, bool)) *failoverHarness {
	t.Helper()
	tr := telemetry.New(telemetry.Config{})
	sb := replica.NewStandby(replica.StandbyConfig{Tracer: tr, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go sb.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		sb.Close()
	})
	prim := replica.NewPrimary(replica.PrimaryConfig{
		Addrs:   []string{ln.Addr().String()},
		Capture: func() *store.Checkpoint { return sm.Checkpoint() },
		Tracer:  tr,
		Logf:    t.Logf,
		TxFault: txFault,
	})
	t.Cleanup(prim.Close)
	return &failoverHarness{sb: sb, prim: prim, tr: tr, addr: ln.Addr().String()}
}

// feedBatches feeds streams[s][from:to] to shard s of sm and returns
// the per-shard events, calling cycle (if non-nil) after every batch.
// Non-fencing replication errors are tolerated: an injected fault
// costs standby lag, never a crash.
func feedBatches(t *testing.T, sm *ShardedMonitor, streams [][]Frame, from, to int, cycle func() error) [][]Event {
	t.Helper()
	out := make([][]Event, len(streams))
	batch := make([]Frame, len(streams))
	for step := from; step < to; step++ {
		for s := range streams {
			batch[s] = streams[s][step]
		}
		for s, ev := range mustBatch(sm, batch) {
			out[s] = append(out[s], ev)
		}
		if cycle != nil {
			if err := cycle(); err != nil {
				if errors.Is(err, replica.ErrFenced) {
					t.Fatalf("primary fenced mid-run after frame %d", step)
				}
				t.Logf("cycle after frame %d: %v (standby lags)", step, err)
			}
		}
	}
	return out
}

// promoteAndResume kills the primary, promotes the standby and builds
// a live fleet from the replicated checkpoint, returning the fleet,
// the generation it resumes from and the new fencing epoch.
func (h *failoverHarness) promoteAndResume(t *testing.T, sopts ShardedOptions) (*ShardedMonitor, int, uint64) {
	t.Helper()
	h.prim.Close() // kill -9: the primary never speaks again
	cp, epoch, err := h.sb.Promote("test kill")
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	resumed, err := ResumeSharded(cp, facadeLabeler, sopts)
	if err != nil {
		t.Fatalf("ResumeSharded(replicated gen %d): %v", cp.Gen, err)
	}
	return resumed, int(cp.Gen), epoch
}

// compareContinuation requires the promoted fleet's event stream,
// deployments and per-shard stats from frame g onward to be
// bit-identical to the uninterrupted reference run's.
func compareContinuation(t *testing.T, resumed, ref *ShardedMonitor, got, want [][]Event, g int) {
	t.Helper()
	for s := range want {
		suffix := want[s][g:]
		if len(got[s]) != len(suffix) {
			t.Fatalf("shard %d: %d events after promotion, want %d", s, len(got[s]), len(suffix))
		}
		for i := range suffix {
			if got[s][i] != suffix[i] {
				t.Fatalf("shard %d frame %d: promoted event %+v, uninterrupted %+v",
					s, g+i, got[s][i], suffix[i])
			}
		}
		if a, b := resumed.Shard(s).Current(), ref.Shard(s).Current(); a != b {
			t.Errorf("shard %d: promoted deployed %q, uninterrupted %q", s, a, b)
		}
		if a, b := resumed.ShardStats(s), ref.ShardStats(s); a != b {
			t.Errorf("shard %d: promoted stats %+v, uninterrupted %+v", s, a, b)
		}
	}
	if ref.Stats().DriftsDetected == 0 {
		t.Error("reference run never drifted; the failover exercised nothing")
	}
}

// TestFailoverDeterminism is the headline high-availability guarantee:
// kill the primary at an arbitrary frame offset and the promoted
// standby's subsequent event stream — drift declarations, selections,
// deployments, per-shard stats — is bit-identical to the run the
// primary would have produced uninterrupted. Every batch ships one
// replicated generation, so the kill point is frame-granular; each
// config runs its own seed with a seed-derived kill offset, for both
// selectors at 1 and 4 shards.
func TestFailoverDeterminism(t *testing.T) {
	models := getCkptModels()
	const total = 200

	for _, tc := range []struct {
		name     string
		selector Selector
		shards   int
		seed     int64
	}{
		{"msbi-shards1", MSBI, 1, 601},
		{"msbi-shards4", MSBI, 4, 602},
		{"msbo-shards1", MSBO, 1, 603},
		{"msbo-shards4", MSBO, 4, 604},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// The kill offset is seed-derived and deliberately not round:
			// across the table it lands before, between and after the
			// per-shard drift offsets (60+25s).
			killAt := 55 + int(tc.seed*31%97)
			opts := Defaults(facadeDim, facadeClasses)
			opts.Pipeline.Selector = tc.selector
			sopts := ShardedOptions{Options: opts, Shards: tc.shards, Workers: 2}

			streams := make([][]Frame, tc.shards)
			for s := range streams {
				streams[s] = driftStream(total, 60+25*s, tc.seed*1000+int64(10*s))
			}

			ref := NewShardedMonitor(models, facadeLabeler, sopts)
			want := runBatches(ref, streams, 0, total)

			prim := NewShardedMonitor(models, facadeLabeler, sopts)
			h := newFailoverHarness(t, prim, nil)
			feedBatches(t, prim, streams, 0, killAt, h.prim.Cycle)

			// Clean wire: the standby holds exactly the kill offset.
			if g := h.sb.Gen(); g != uint64(killAt) {
				t.Fatalf("standby at gen %d, want the kill offset %d", g, killAt)
			}
			resumed, g, epoch := h.promoteAndResume(t, sopts)
			if g != killAt || epoch != 2 {
				t.Fatalf("promoted at gen %d epoch %d, want gen %d epoch 2", g, epoch, killAt)
			}
			got := feedBatches(t, resumed, streams, g, total, nil)
			compareContinuation(t, resumed, ref, got, want, g)

			// Split-brain guard: a primary resuming the old epoch is fenced
			// at first contact with the promoted standby.
			stale := replica.NewPrimary(replica.PrimaryConfig{
				Addrs:   []string{h.addr},
				Epoch:   1,
				Capture: func() *store.Checkpoint { return prim.Checkpoint() },
				Tracer:  h.tr,
				Logf:    t.Logf,
			})
			defer stale.Close()
			if err := stale.Cycle(); !errors.Is(err, replica.ErrFenced) {
				t.Fatalf("stale primary's cycle returned %v, want ErrFenced", err)
			}
			if err := stale.Cycle(); !errors.Is(err, replica.ErrFenced) {
				t.Fatalf("fencing is not permanent: second cycle returned %v", err)
			}
		})
	}
}

// TestFailoverTornStream reruns the kill under a seeded replication
// fault schedule: torn writes and dropped connections on the wire
// between primary and standby. Faults cost the standby lag — the
// promoted generation may trail the kill offset — but whatever
// generation it reached, the continuation from that frame is still
// bit-identical to the uninterrupted run.
func TestFailoverTornStream(t *testing.T) {
	models := getCkptModels()
	const (
		total  = 200
		killAt = 120
		shards = 4
		seed   = int64(777)
	)
	opts := Defaults(facadeDim, facadeClasses)
	opts.Pipeline.Selector = MSBI
	sopts := ShardedOptions{Options: opts, Shards: shards, Workers: 2}

	streams := make([][]Frame, shards)
	for s := range streams {
		streams[s] = driftStream(total, 60+25*s, seed*1000+int64(10*s))
	}

	ref := NewShardedMonitor(models, facadeLabeler, sopts)
	want := runBatches(ref, streams, 0, total)

	inj := faults.NewReplicaInjector(faults.GenerateReplica(seed, 2*killAt, 0.15, 0.05))
	prim := NewShardedMonitor(models, facadeLabeler, sopts)
	h := newFailoverHarness(t, prim, inj.Tx)
	feedBatches(t, prim, streams, 0, killAt, h.prim.Cycle)

	if fired := inj.Stats().Total(); fired == 0 {
		t.Fatal("fault schedule fired nothing; the torn-stream path was not exercised")
	} else {
		t.Logf("injected %d replication faults; standby reached gen %d of %d", fired, h.sb.Gen(), killAt)
	}
	if g := h.sb.Gen(); g == 0 || g > uint64(killAt) {
		t.Fatalf("standby at gen %d after %d faulted generations", g, killAt)
	}

	resumed, g, epoch := h.promoteAndResume(t, sopts)
	if epoch != 2 {
		t.Fatalf("promoted at epoch %d, want 2", epoch)
	}
	got := feedBatches(t, resumed, streams, g, total, nil)
	compareContinuation(t, resumed, ref, got, want, g)
}
