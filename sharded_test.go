package videodrift

import (
	"errors"
	"testing"

	"videodrift/internal/vidsim"
)

// TestShardedMatchesSerial is the sharding contract: shard i of a
// ShardedMonitor, fed through concurrent ProcessBatch calls, must emit
// exactly the event stream a standalone Monitor with the same seed
// produces on the same frames — drifts, switches and predictions
// included, for any worker count.
func TestShardedMatchesSerial(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 1), facadeLabeler, opts)
	night := BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 2), facadeLabeler, opts)
	models := []*Model{day, night}

	const shards = 3
	// Per-shard streams: shard 0 stays in-distribution, shards 1 and 2
	// drift to night at different offsets.
	streams := make([][]Frame, shards)
	streams[0] = vidsim.GenerateTrainingStride(facadeCond(vidsim.Day()), 16, 16, 220, 1, 31)
	streams[1] = append(
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Day()), 16, 16, 80, 1, 32),
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Night()), 16, 16, 140, 1, 33)...)
	streams[2] = append(
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Day()), 16, 16, 140, 1, 34),
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Night()), 16, 16, 80, 1, 35)...)

	for _, workers := range []int{1, 4} {
		sm := NewShardedMonitor(models, facadeLabeler, ShardedOptions{
			Options: opts, Shards: shards, Workers: workers,
		})
		got := make([][]Event, shards)
		batch := make([]Frame, shards)
		for step := 0; step < len(streams[0]); step++ {
			for s := 0; s < shards; s++ {
				batch[s] = streams[s][step]
			}
			for s, ev := range mustBatch(sm, batch) {
				got[s] = append(got[s], ev)
			}
		}

		for s := 0; s < shards; s++ {
			shardOpts := opts
			shardOpts.Pipeline.Seed += int64(s)
			ref := NewMonitor(models, facadeLabeler, shardOpts)
			for step := 0; step < len(streams[s]); step++ {
				want := ref.Process(streams[s][step])
				if got[s][step] != want {
					t.Fatalf("workers=%d shard %d frame %d: event %+v, serial %+v",
						workers, s, step, got[s][step], want)
				}
			}
			if sm.Shard(s).Current() != ref.Current() {
				t.Fatalf("workers=%d shard %d: deployed %q, serial %q",
					workers, s, sm.Shard(s).Current(), ref.Current())
			}
		}

		agg := sm.Stats()
		if agg.Frames != shards*len(streams[0]) {
			t.Errorf("aggregate frames = %d, want %d", agg.Frames, shards*len(streams[0]))
		}
		var driftShards int
		for s := 0; s < shards; s++ {
			if sm.ShardStats(s).DriftsDetected > 0 {
				driftShards++
			}
		}
		if driftShards < 2 {
			t.Errorf("only %d shards detected their drift", driftShards)
		}
		if agg.DriftsDetected < 2 {
			t.Errorf("aggregate drifts = %d, want >= 2", agg.DriftsDetected)
		}
	}
}

// TestShardedTracers pins the per-shard telemetry plumbing: each shard
// reports its own drift events through its own tracer.
func TestShardedTracers(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 11), nil, opts)
	night := BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 12), nil, opts)
	opts.Pipeline.Selector = MSBI // unsupervised entries: no labeler needed

	tracers := []*Tracer{NewTracer(TracerConfig{}), NewTracer(TracerConfig{})}
	sm := NewShardedMonitor([]*Model{day, night}, nil, ShardedOptions{
		Options: opts, Shards: 2, Tracers: tracers,
	})
	steady := vidsim.GenerateTrainingStride(facadeCond(vidsim.Day()), 16, 16, 200, 1, 41)
	drifting := append(
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Day()), 16, 16, 60, 1, 42),
		vidsim.GenerateTrainingStride(facadeCond(vidsim.Night()), 16, 16, 140, 1, 43)...)
	for step := range steady {
		mustBatch(sm, []Frame{steady[step], drifting[step]})
	}
	if got := tracers[1].Snapshot().Drifts; got < 1 {
		t.Errorf("drifting shard reported %d drifts in its tracer", got)
	}
	if got := tracers[0].Snapshot().Drifts; got != 0 {
		t.Errorf("steady shard reported %d drifts", got)
	}
	if sm.Shard(0).Telemetry() != tracers[0] {
		t.Error("Shard(0).Telemetry() is not the attached tracer")
	}
}

func TestShardedPanics(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 120, 21), nil, opts)
	opts.Pipeline.Selector = MSBI
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	check("zero shards", func() {
		NewShardedMonitor([]*Model{day}, nil, ShardedOptions{Options: opts, Shards: 0})
	})
	check("short tracers", func() {
		NewShardedMonitor([]*Model{day}, nil, ShardedOptions{
			Options: opts, Shards: 2, Tracers: []*Tracer{NewTracer(TracerConfig{})},
		})
	})
}

// TestShardedBatchShapeErrors pins the typed-error contract that
// replaced the old batch-shape panics: with dynamic attach/detach a
// count mismatch is reachable in normal operation, so it must surface
// as a retryable error, never a crash.
func TestShardedBatchShapeErrors(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 120, 21), nil, opts)
	opts.Pipeline.Selector = MSBI
	sm := NewShardedMonitor([]*Model{day}, nil, ShardedOptions{Options: opts, Shards: 1})

	if _, err := sm.ProcessBatch(make([]Frame, 2)); err == nil {
		t.Fatal("ProcessBatch with a frame-count mismatch returned no error")
	} else {
		var mismatch *BatchMismatchError
		if !errors.As(err, &mismatch) || mismatch.Batches != 2 || mismatch.Slots != 1 {
			t.Fatalf("ProcessBatch mismatch error = %v", err)
		}
	}
	if _, err := sm.ProcessBatches(make([][]Frame, 3)); err == nil {
		t.Fatal("ProcessBatches with a batch-count mismatch returned no error")
	} else {
		var mismatch *BatchMismatchError
		if !errors.As(err, &mismatch) || mismatch.Batches != 3 || mismatch.Slots != 1 {
			t.Fatalf("ProcessBatches mismatch error = %v", err)
		}
	}

	// A batcher whose queues outgrew the fleet reports the mismatch on
	// flush and keeps the frames (no silent drop).
	b := sm.NewBatcher(8)
	f := facadeFrames(facadeCond(vidsim.Day()), 1, 22)[0]
	if _, err := b.Add(2, f); err != nil {
		t.Fatalf("Batcher.Add below the flush threshold errored: %v", err)
	}
	if _, err := b.Flush(); err == nil {
		t.Fatal("Batcher.Flush with queues beyond the fleet returned no error")
	}
	if b.Queued(2) != 1 {
		t.Fatalf("queued = %d after a failed flush, want 1 (frames must survive errors)", b.Queued(2))
	}
}
