package videodrift

import (
	"testing"

	"videodrift/internal/vidsim"
)

const (
	facadeDim     = 16 * 16
	facadeClasses = 8
)

func facadeLabeler(f Frame) int {
	c := f.CountClass(vidsim.Car)
	if c >= facadeClasses {
		c = facadeClasses - 1
	}
	return c
}

func facadeCond(base Condition) Condition {
	base.CarRate, base.BusRate = 5.5, 0
	return base
}

func facadeFrames(c Condition, n int, seed int64) []Frame {
	return vidsim.GenerateTraining(c, 16, 16, n, seed)
}

func TestFacadeEndToEnd(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 1), facadeLabeler, opts)
	night := BuildModel("night", facadeFrames(facadeCond(vidsim.Night()), 200, 2), facadeLabeler, opts)

	mon := NewMonitor([]*Model{day, night}, facadeLabeler, opts)
	if mon.Current() != "day" {
		t.Fatalf("initial model = %q", mon.Current())
	}
	for _, f := range vidsim.GenerateTrainingStride(facadeCond(vidsim.Day()), 16, 16, 150, 1, 3) {
		mon.Process(f)
	}
	switched := false
	for _, f := range vidsim.GenerateTrainingStride(facadeCond(vidsim.Night()), 16, 16, 250, 1, 4) {
		if ev := mon.Process(f); ev.SwitchedTo == "night" {
			switched = true
			break
		}
	}
	if !switched {
		t.Fatal("monitor never deployed the night model")
	}
	st := mon.Stats()
	if st.DriftsDetected < 1 || st.ModelInvocations != st.Frames {
		t.Errorf("stats = %+v", st)
	}
	if len(mon.Models()) < 2 {
		t.Errorf("models = %v", mon.Models())
	}
}

func TestFacadeDetector(t *testing.T) {
	opts := Defaults(facadeDim, facadeClasses)
	day := BuildModel("day", facadeFrames(facadeCond(vidsim.Day()), 200, 5), nil, opts)
	det := NewDetector(day, 7)
	for i, f := range facadeFrames(facadeCond(vidsim.Day()), 300, 6) {
		if det.Observe(f) {
			t.Fatalf("false drift at frame %d", i)
		}
	}
	fired := false
	for _, f := range facadeFrames(facadeCond(vidsim.Night()), 120, 7) {
		if det.Observe(f) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("detector missed the day→night drift")
	}
	det.Reset()
}

func TestFacadeDatasetsAndAnnotator(t *testing.T) {
	ds := BDD(0.005)
	if ds.NumDrifts() != 4 {
		t.Errorf("BDD drifts = %d", ds.NumDrifts())
	}
	ann := NewAnnotator(30)
	frames := ds.TrainingFrames(0, 5)
	for _, f := range frames {
		if l := ann.CountLabel(f); l < 0 {
			t.Errorf("label = %d", l)
		}
	}
}
