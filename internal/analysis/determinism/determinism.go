// Package determinism flags nondeterminism sources inside the packages
// whose outputs must replay bit-identically across a checkpoint/restore
// boundary (the warm-restart guarantee of DESIGN.md §9): direct wall
// clock reads, the global math/rand generator, and map iteration whose
// body feeds ordered output or serialized state.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"videodrift/internal/analysis/driftlint"
)

// CriticalPackages are the import paths whose behavior must be a pure
// function of (inputs, seed, checkpoint). Any other package can opt in
// with a //driftlint:deterministic file comment.
var CriticalPackages = []string{
	"videodrift/internal/conformal",
	"videodrift/internal/core",
	"videodrift/internal/ingest",
	"videodrift/internal/stats",
	"videodrift/internal/store",
	"videodrift/internal/parallel",
	"videodrift/internal/faults",
	"videodrift/internal/forensics",
	"videodrift/internal/telemetry",
}

// randConstructors are the math/rand package-level functions that build
// explicit, seedable generators rather than touching shared state —
// exactly what the counted stats.RNG wraps.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// Analyzer is the determinism checker.
var Analyzer = &driftlint.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand and order-sensitive map iteration in replay-critical packages",
	Run:  run,
}

func run(pass *driftlint.Pass) error {
	if !applies(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func applies(pass *driftlint.Pass) bool {
	for _, p := range CriticalPackages {
		if pass.Pkg.Path() == p {
			return true
		}
	}
	return pass.HasFileDirective("deterministic")
}

func checkCall(pass *driftlint.Pass, call *ast.CallExpr) {
	fn := driftlint.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		// Methods on explicit generators (stats.RNG's inner *rand.Rand,
		// counted sources) are the sanctioned path.
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a replay-critical package; restored runs would diverge — use the injected clock (telemetry.Config.Now via Tracer.Now) instead",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the global generator, which is not captured by checkpoints; use the counted stats.RNG (stats.NewRNG / RNG.Split) so restarts replay bit-identically",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkRange flags `range m` over a map unless the loop body is
// order-insensitive: map iteration order is randomized per run, so any
// body that appends, emits, or otherwise builds ordered state from it
// breaks replay (and, in encode paths, produces checkpoint bytes that
// differ run to run). Sort the keys first, or suppress with
// //lint:allow determinism when the body is provably commutative.
func checkRange(pass *driftlint.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if orderInsensitive(pass, rng.Body) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is nondeterministic and this loop body is order-sensitive; iterate sorted keys (or keep only commutative updates in the body)")
}

// orderInsensitive reports whether every statement in the loop body
// commutes across iterations: pure accumulator updates (x += e, x++,
// min/max folds are NOT detected and will flag), writes into another
// map, and delete calls. Anything else — append, channel sends,
// function calls, encoder writes — is treated as order-sensitive.
func orderInsensitive(pass *driftlint.Pass, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			// counters commute
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
				// commutative accumulation
			case token.ASSIGN:
				// plain assignment is safe only when every target is an
				// entry of some map (re-keying commutes; the RHS may not
				// read order-dependent state we can prove, so keep it
				// narrow: RHS must not call anything).
				for _, lhs := range s.Lhs {
					idx, ok := lhs.(*ast.IndexExpr)
					if !ok {
						return false
					}
					if xt := pass.TypesInfo.TypeOf(idx.X); xt == nil {
						return false
					} else if _, isMap := xt.Underlying().(*types.Map); !isMap {
						return false
					}
				}
				for _, rhs := range s.Rhs {
					if containsCall(rhs) {
						return false
					}
				}
			default:
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "delete" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
