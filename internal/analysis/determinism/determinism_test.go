package determinism_test

import (
	"testing"

	"videodrift/internal/analysis/analysistest"
	"videodrift/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "determfix", "determoff")
}
