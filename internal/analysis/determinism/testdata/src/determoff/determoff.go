// Package determoff has no opt-in directive and is not one of the
// replay-critical packages, so nothing here is this analyzer's
// business.
package determoff

import "time"

// Clock is not flagged outside the critical packages.
func Clock() time.Time { return time.Now() }
