// Package determfix opts in to the determinism checks that the
// replay-critical packages get by default.
//
//driftlint:deterministic
package determfix

import (
	"math/rand"
	"time"
)

// Clock reads the wall clock directly.
func Clock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock in a replay-critical package`
}

// Elapsed goes through time.Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

// Global draws from the shared generator.
func Global() int {
	return rand.Intn(10) // want `rand\.Intn draws from the global generator`
}

// Seeded builds an explicit generator: constructors and generator
// methods are the sanctioned path.
func Seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// Waived documents a deliberate wall-clock read.
func Waived() time.Time {
	return time.Now() //lint:allow determinism fixture demonstrates the waiver syntax
}

// Keys feeds map iteration into ordered output.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is nondeterministic and this loop body is order-sensitive`
		out = append(out, k)
	}
	return out
}

// Sum only accumulates commutatively.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Invert re-keys into another map with a call-free right-hand side.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Clear deletes, which commutes across iterations.
func Clear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}
