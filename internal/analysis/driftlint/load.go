package driftlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package plus the side tables
// the framework needs (directive index, load error).
type Package struct {
	Path  string // import path
	Dir   string // directory the files were read from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Err is the first parse or type error (nil for a clean package);
	// ErrPos locates it when known.
	Err    error
	ErrPos token.Position

	allows directiveIndex
}

// A Loader resolves import paths to directories and type-checks
// packages with no tooling beyond the standard library: module-local
// paths come from the module tree, fixture paths from extra roots, and
// everything else from GOROOT source via go/importer's "source" mode
// (which needs no pre-compiled export data and therefore works in the
// hermetic build image).
type Loader struct {
	Fset   *token.FileSet
	Module string // module path from go.mod, e.g. "videodrift"
	Root   string // module root directory

	// ExtraRoots are additional directories searched for import paths
	// that are neither module-local nor standard library — the
	// analysistest fixture tree (testdata/src) plugs in here.
	ExtraRoots []string

	std  types.ImporterFrom
	pkgs map[string]*Package
}

// NewLoader builds a loader for the module rooted at root.
func NewLoader(module, root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		Module: module,
		Root:   root,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:   map[string]*Package{},
	}
}

// FindModuleRoot walks up from dir to the enclosing go.mod and returns
// the module path and root directory.
func FindModuleRoot(dir string) (module, root string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), dir, nil
				}
			}
			return "", "", fmt.Errorf("driftlint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("driftlint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// resolveDir maps an import path to the directory holding its sources,
// or "" when the path is not module-local and not under an extra root
// (i.e. presumed standard library).
func (l *Loader) resolveDir(path string) string {
	if path == l.Module {
		return l.Root
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest))
	}
	for _, root := range l.ExtraRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir
		}
	}
	return ""
}

// Import implements types.Importer so package type-checking resolves
// its dependencies through the loader.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.resolveDir(path); dir != "" {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg.Err != nil {
			return nil, pkg.Err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.Root, 0)
}

// Load type-checks the package at the import path (module-local or
// under an extra root), memoized per loader.
func (l *Loader) Load(path string) (*Package, error) {
	dir := l.resolveDir(path)
	if dir == "" {
		return nil, fmt.Errorf("driftlint: cannot resolve import path %q", path)
	}
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	l.pkgs[path] = pkg

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("driftlint: no Go source files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			if pkg.Err == nil {
				pkg.Err = err
			}
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.allows = buildDirectives(l.Fset, pkg.Files)
	if pkg.Err != nil {
		return pkg, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if pkg.Err == nil {
				pkg.Err = err
				if terr, ok := err.(types.Error); ok {
					pkg.ErrPos = terr.Fset.Position(terr.Pos)
				}
			}
		},
	}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, info)
	if pkg.Err == nil && err != nil {
		pkg.Err = err
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// goSources lists the buildable .go files of a directory: no _test
// files, no hidden or generated-ignored names, and no files excluded by
// a //go:build ignore constraint (the only constraint form this repo
// uses).
func goSources(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ignored, err := buildIgnored(filepath.Join(dir, name)); err != nil {
			return nil, err
		} else if ignored {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// buildIgnored reports whether the file opts out of the build with a
// "//go:build ignore"-style constraint line.
func buildIgnored(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if strings.HasPrefix(line, "//go:build") &&
				strings.Contains(line, "ignore") {
				return true, nil
			}
			continue
		}
		break // reached package clause: constraints only appear above it
	}
	return false, nil
}

// Expand resolves Go-tool-style package patterns ("./...",
// "./internal/core", "videodrift/internal/...") against the module tree
// into import paths, skipping testdata, vendor and hidden directories.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
		if pat == "." {
			pat = ""
		}
		// Accept both directory-relative and import-path-absolute forms.
		pat = strings.TrimPrefix(strings.TrimPrefix(pat, l.Module+"/"), l.Module)
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !recursive {
			if names, err := goSources(base); err != nil || len(names) == 0 {
				return nil, fmt.Errorf("driftlint: no Go package at %q", pat)
			}
			add(l.importPathFor(pat))
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if names, err := goSources(p); err == nil && len(names) > 0 {
				rel, err := filepath.Rel(l.Root, p)
				if err != nil {
					return err
				}
				add(l.importPathFor(filepath.ToSlash(rel)))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}

func (l *Loader) importPathFor(rel string) string {
	if rel == "" || rel == "." {
		return l.Module
	}
	return l.Module + "/" + rel
}
