package driftlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FuncInfo is the fact layer's summary of one declared function or
// method: where it lives, its syntax, and every module-local function it
// references. "References" deliberately over-approximates "calls": a
// method value passed as a callback is recorded the same as a direct
// call, because for the invariants built on this graph (goroutine stop
// paths, lock ordering) a function that may run is as interesting as one
// that provably runs.
type FuncInfo struct {
	// Func is the type-checker's object for the declaration — the
	// canonical identity shared by every package in the program (one
	// loader, one FileSet, memoized imports).
	Func *types.Func
	// Decl is the declaration's syntax; Decl.Body is non-nil (bodyless
	// declarations are not indexed).
	Decl *ast.FuncDecl
	// Pkg is the loaded package the declaration belongs to; Pkg.Info is
	// the types.Info valid for Decl's syntax.
	Pkg *Package
	// Calls lists the declared functions and methods referenced anywhere
	// in the body (including inside nested function literals), in source
	// order, deduplicated. Interface methods appear as their interface's
	// *types.Func — they have no FuncInfo and end the walk there.
	Calls []*types.Func
}

// Program is the whole-program fact layer: every module-local package
// one Run loaded (analysis targets plus their in-module dependencies),
// with a call graph over go/types objects. It is built once per run and
// shared by all analyzers — per-function work here is paid one time, not
// once per analyzer.
type Program struct {
	Fset *token.FileSet
	// Targets are the packages the analyzers were asked to check (and
	// the only ones whose //lint:allow directives are validated).
	Targets []*Package
	// All is every loaded module-local package — Targets plus
	// dependencies — in import-path order.
	All []*Package

	funcs  map[*types.Func]*FuncInfo
	byFile map[string]*Package
}

// Program assembles the fact layer over every package this loader has
// loaded so far (targets and their module-local dependencies — standard
// library imports stay opaque). Call it after loading the targets.
func (l *Loader) Program(targets []*Package) *Program {
	prog := &Program{Fset: l.Fset, Targets: targets}
	paths := make([]string, 0, len(l.pkgs))
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if pkg := l.pkgs[path]; pkg != nil && len(pkg.Files) > 0 {
			prog.All = append(prog.All, pkg)
		}
	}
	prog.funcs = make(map[*types.Func]*FuncInfo)
	prog.byFile = make(map[string]*Package)
	for _, pkg := range prog.All {
		for _, f := range pkg.Files {
			prog.byFile[l.Fset.Position(f.Pos()).Filename] = pkg
		}
		if pkg.Err != nil {
			continue // unreliable syntax info; directives still resolve
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.funcs[fn] = &FuncInfo{
					Func:  fn,
					Decl:  fd,
					Pkg:   pkg,
					Calls: referencedFuncs(pkg.Info, fd.Body),
				}
			}
		}
	}
	return prog
}

// referencedFuncs collects every declared function an AST subtree
// references, in source order, deduplicated.
func referencedFuncs(info *types.Info, root ast.Node) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// FuncInfo returns the fact-layer entry for a declared function, or nil
// when fn has no indexed body (interface methods, standard library,
// packages that failed to load).
func (p *Program) FuncInfo(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return p.funcs[fn]
}

// Funcs returns every indexed function, sorted by source position —
// the deterministic iteration order for whole-program analyzers.
func (p *Program) Funcs() []*FuncInfo {
	out := make([]*FuncInfo, 0, len(p.funcs))
	for _, fi := range p.funcs {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := p.Fset.Position(out[i].Decl.Pos()), p.Fset.Position(out[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return out
}

// PackageAt returns the loaded package owning the file at position, or
// nil for positions outside the program (standard library).
func (p *Program) PackageAt(pos token.Position) *Package {
	return p.byFile[pos.Filename]
}

// Reachable returns the fact-layer entries reachable from the entry
// functions through the reference graph (entries included when they have
// bodies), in BFS order, visiting at most limit functions (limit <= 0
// means DefaultReachLimit). The cap keeps pathological graphs from
// dominating a run; analyzers treat a truncated walk as "unknown", which
// for checkers means conservative.
func (p *Program) Reachable(entries []*types.Func, limit int) []*FuncInfo {
	if limit <= 0 {
		limit = DefaultReachLimit
	}
	var queue []*FuncInfo
	seen := map[*types.Func]bool{}
	push := func(fn *types.Func) {
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		if fi := p.funcs[fn]; fi != nil && len(queue) < limit {
			queue = append(queue, fi)
		}
	}
	for _, fn := range entries {
		push(fn)
	}
	for i := 0; i < len(queue); i++ {
		for _, callee := range queue[i].Calls {
			push(callee)
		}
	}
	return queue
}

// DefaultReachLimit bounds Reachable's default walk.
const DefaultReachLimit = 600

// ProgPass is a whole-program analyzer's view of one run: the shared
// fact layer plus the diagnostic sink. Reportf honors //lint:allow
// directives by resolving positions back to their loaded package.
type ProgPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a //lint:allow directive for
// this analyzer covers the position's line.
func (p *ProgPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Prog.Fset.Position(pos)
	if pkg := p.Prog.byFile[position.Filename]; pkg != nil &&
		pkg.allowedAt(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}
