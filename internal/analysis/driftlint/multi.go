package driftlint

import (
	"fmt"
	"io"
	"time"
)

// Timing is one invocation's wall-clock split, for `driftlint -timing`:
// Load is parsing + type-checking every package (paid once, shared by
// all analyzers), Facts the whole-program fact layer build (call graph,
// declaration index), Analyze the analyzers themselves plus directive
// validation.
type Timing struct {
	Load    time.Duration
	Facts   time.Duration
	Analyze time.Duration
	// Packages counts loaded module-local packages (targets + deps);
	// Funcs the fact layer's indexed function declarations.
	Packages, Funcs int
}

// RunPatterns loads every package matching the patterns under the
// module rooted at root ONCE — one loader, one type-checked package
// cache, one fact layer — and applies all analyzers over that shared
// state, returning sorted diagnostics. It is the programmatic core
// shared by cmd/driftlint and `drifttool lint`.
func RunPatterns(module, root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunPatternsTimed(module, root, patterns, analyzers)
	return diags, err
}

// RunPatternsTimed is RunPatterns plus the wall-clock split.
func RunPatternsTimed(module, root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, Timing, error) {
	var tm Timing
	loader := NewLoader(module, root)
	paths, err := loader.Expand(patterns)
	if err != nil {
		return nil, tm, err
	}
	start := time.Now()
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, tm, err
		}
		pkgs = append(pkgs, pkg)
	}
	tm.Load = time.Since(start)

	start = time.Now()
	prog := loader.Program(pkgs)
	tm.Facts = time.Since(start)
	tm.Packages = len(prog.All)
	tm.Funcs = len(prog.funcs)

	start = time.Now()
	diags := Run(prog, analyzers)
	tm.Analyze = time.Since(start)
	return diags, tm, nil
}

// Main is the multichecker entry point: argv holds package patterns
// (default "./..."), "-timing" to print the load/facts/analyze
// wall-clock split, or "-help" to list the analyzers. It resolves the
// enclosing module from dir, prints findings to w one per line in
// file:line:col form, and returns the process exit code: 0 clean,
// 1 findings, 2 usage or load failure.
func Main(w io.Writer, dir string, argv []string, analyzers []*Analyzer) int {
	var patterns []string
	timing := false
	for _, a := range argv {
		switch a {
		case "-help", "--help", "help":
			fmt.Fprintf(w, "driftlint checks the repo's determinism, checkpoint-completeness, telemetry, concurrency and wire-codec invariants.\n\n")
			fmt.Fprintf(w, "usage: driftlint [-timing] [package pattern ...]   (default ./...)\n\nanalyzers:\n")
			for _, an := range analyzers {
				fmt.Fprintf(w, "  %-12s %s\n", an.Name, an.Doc)
			}
			fmt.Fprintf(w, "\nSuppress a finding with `//lint:allow <analyzer> <reason>` on the\nflagged line or the line above it. The reason is mandatory; a waiver\nthat suppresses nothing is itself an error.\n")
			return 0
		case "-timing", "--timing":
			timing = true
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	module, root, err := FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(w, err)
		return 2
	}
	diags, tm, err := RunPatternsTimed(module, root, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(w, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if timing {
		fmt.Fprintf(w, "driftlint: %d packages, %d functions; load %v (shared across %d analyzers), facts %v, analyze %v\n",
			tm.Packages, tm.Funcs, tm.Load.Round(time.Millisecond), len(analyzers),
			tm.Facts.Round(time.Millisecond), tm.Analyze.Round(time.Millisecond))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
