package driftlint

import (
	"fmt"
	"io"
)

// RunPatterns loads every package matching the patterns under the
// module rooted at root and applies the analyzers, returning sorted
// diagnostics. It is the programmatic core shared by cmd/driftlint and
// `drifttool lint`.
func RunPatterns(module, root string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader := NewLoader(module, root)
	paths, err := loader.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return Run(pkgs, analyzers), nil
}

// Main is the multichecker entry point: argv holds package patterns
// (default "./..."), or "-help" to list the analyzers. It resolves the
// enclosing module from dir, prints findings to w one per line in
// file:line:col form, and returns the process exit code: 0 clean,
// 1 findings, 2 usage or load failure.
func Main(w io.Writer, dir string, argv []string, analyzers []*Analyzer) int {
	patterns := argv
	for _, a := range patterns {
		if a == "-help" || a == "--help" || a == "help" {
			fmt.Fprintf(w, "driftlint checks the repo's determinism, checkpoint-completeness and telemetry invariants.\n\n")
			fmt.Fprintf(w, "usage: driftlint [package pattern ...]   (default ./...)\n\nanalyzers:\n")
			for _, an := range analyzers {
				fmt.Fprintf(w, "  %-12s %s\n", an.Name, an.Doc)
			}
			fmt.Fprintf(w, "\nSuppress a finding with `//lint:allow <analyzer> <reason>` on the\nflagged line or the line above it.\n")
			return 0
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	module, root, err := FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(w, err)
		return 2
	}
	diags, err := RunPatterns(module, root, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(w, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
