package driftlint

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway single-package module and loads
// it, returning the program for Run.
func writeModule(t *testing.T, src string) *Program {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := NewLoader("tmpmod", dir)
	pkg, err := loader.Load("tmpmod")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Err != nil {
		t.Fatalf("test module does not type-check: %v", pkg.Err)
	}
	return loader.Program([]*Package{pkg})
}

// flagTime is a toy analyzer that flags every call to time.Now, so the
// tests can place directives that do and do not suppress something.
var flagTime = &Analyzer{
	Name: "flagtime",
	Doc:  "test analyzer: flags time.Now calls",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := CalleeFunc(pass.TypesInfo, call); IsPkgLevelFunc(fn, "time", "Now") {
					pass.Reportf(call.Pos(), "time.Now call")
				}
				return true
			})
		}
		return nil
	},
}

func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

func wantOne(t *testing.T, diags []Diagnostic, analyzer, substr string) {
	t.Helper()
	n := 0
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly one %q diagnostic containing %q, got %d in %q",
			analyzer, substr, n, messages(diags))
	}
}

func TestAllowSuppressesWithReason(t *testing.T) {
	prog := writeModule(t, `package p

import "time"

func f() time.Time {
	return time.Now() //lint:allow flagtime the test wants wall clock here
}
`)
	diags := Run(prog, []*Analyzer{flagTime})
	if len(diags) != 0 {
		t.Fatalf("want clean run, got %q", messages(diags))
	}
}

func TestAllowUnknownAnalyzerIsError(t *testing.T) {
	prog := writeModule(t, `package p

import "time"

func f() time.Time {
	return time.Now() //lint:allow flagtme typo in the analyzer name
}
`)
	diags := Run(prog, []*Analyzer{flagTime})
	// The typo'd directive must not suppress, so the finding survives,
	// and the directive itself is an error.
	wantOne(t, diags, "flagtime", "time.Now call")
	wantOne(t, diags, AllowAnalyzerName, `unknown analyzer "flagtme"`)
}

func TestAllowMissingReasonIsError(t *testing.T) {
	prog := writeModule(t, `package p

import "time"

func f() time.Time {
	return time.Now() //lint:allow flagtime
}
`)
	diags := Run(prog, []*Analyzer{flagTime})
	wantOne(t, diags, "flagtime", "time.Now call")
	wantOne(t, diags, AllowAnalyzerName, "missing reason")
}

func TestAllowBareDirectiveIsError(t *testing.T) {
	prog := writeModule(t, `package p

//lint:allow
func f() {}
`)
	diags := Run(prog, []*Analyzer{flagTime})
	wantOne(t, diags, AllowAnalyzerName, "missing analyzer name")
}

func TestAllowOnWrongLineIsError(t *testing.T) {
	prog := writeModule(t, `package p

import "time"

//lint:allow flagtime directive is two lines above the call, so it hangs

func f() time.Time {
	return time.Now()
}
`)
	diags := Run(prog, []*Analyzer{flagTime})
	// The finding survives (the directive is out of range) and the
	// dangling waiver is reported rather than silently ignored.
	wantOne(t, diags, "flagtime", "time.Now call")
	wantOne(t, diags, AllowAnalyzerName, "suppresses no diagnostic")
}

func TestAllowUnusedIsError(t *testing.T) {
	prog := writeModule(t, `package p

func f() int {
	return 1 //lint:allow flagtime nothing here ever fires
}
`)
	diags := Run(prog, []*Analyzer{flagTime})
	wantOne(t, diags, AllowAnalyzerName, "suppresses no diagnostic")
}

func TestAllowMultiNameSuppressesAndValidates(t *testing.T) {
	prog := writeModule(t, `package p

import "time"

func f() time.Time {
	return time.Now() //lint:allow flagtime,flagtme one good name, one typo
}
`)
	diags := Run(prog, []*Analyzer{flagTime})
	// The good name suppresses the finding; the typo is still an error.
	for _, d := range diags {
		if d.Analyzer == "flagtime" {
			t.Errorf("finding should be suppressed by the valid name, got %q", d.Message)
		}
	}
	wantOne(t, diags, AllowAnalyzerName, `unknown analyzer "flagtme"`)
}

func TestProgramFactsIndexFunctions(t *testing.T) {
	prog := writeModule(t, `package p

func leaf() int { return 1 }

func mid() int { return leaf() }

func top() int { return mid() + mid() }
`)
	pkg := prog.Targets[0]
	var top *FuncInfo
	for _, fi := range prog.funcs {
		if fi.Func.Name() == "top" {
			top = fi
		}
	}
	if top == nil {
		t.Fatal("fact layer did not index top()")
	}
	if len(top.Calls) != 1 || top.Calls[0].Name() != "mid" {
		t.Fatalf("top's calls = %v, want exactly [mid]", top.Calls)
	}
	reach := prog.Reachable(top.Calls, 0)
	names := map[string]bool{}
	for _, fi := range reach {
		names[fi.Func.Name()] = true
	}
	if !names["mid"] || !names["leaf"] {
		t.Fatalf("reachable from mid = %v, want mid and leaf", names)
	}
	if prog.PackageAt(prog.Fset.Position(top.Decl.Pos())) != pkg {
		t.Fatal("PackageAt did not resolve the declaration's file to its package")
	}
}
