// Package driftlint is a small, dependency-free static-analysis
// framework in the shape of golang.org/x/tools/go/analysis, built on
// the standard library's go/ast and go/types only (the build
// environment bakes in the Go toolchain but no external modules).
//
// It exists to machine-check the repo's cross-cutting invariants — the
// guarantees the compiler cannot see but the system's headline claims
// rest on:
//
//   - bit-identical warm restart (no wall clock, no global randomness,
//     no unordered iteration feeding serialized state — analyzer
//     "determinism");
//   - checkpoint completeness (every snapshot-struct field covered by
//     both its encode and decode path — analyzer "snapshotsync");
//   - nil-safe telemetry (every exported *Tracer method usable on a nil
//     receiver — analyzer "tracenil");
//   - statistically meaningful float handling (no accidental ==/!= on
//     p-values, martingale wealth or Brier scores — analyzer
//     "floatcmp");
//   - lock discipline on shared registries (analyzer "lockreg").
//
// Analyzers run per package over type-checked syntax. A finding can be
// suppressed at a call site with a directive comment on the same line
// or the line directly above:
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// The reason is free text and mandatory by convention (reviewed, not
// enforced). See DESIGN.md §10 for the invariant catalog.
package driftlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker, mirroring
// golang.org/x/tools/go/analysis.Analyzer closely enough that the suite
// could be ported onto the real multichecker if the dependency ever
// lands in the build image.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `driftlint -help` prints.
	Doc string
	// Run inspects one package and reports findings through the pass.
	// Nil for whole-program analyzers that only implement RunProgram.
	Run func(*Pass) error
	// RunProgram, when non-nil, runs once per driftlint invocation with
	// the shared fact layer — the hook for analyzers whose invariant
	// spans packages (lock ordering, goroutine stop paths). It runs
	// after every per-package Run.
	RunProgram func(*ProgPass) error
}

// A Diagnostic is one finding, positioned and attributed to its
// analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the shared whole-program fact layer (never nil): the call
	// graph and cross-package declarations per-package analyzers can
	// chase spawn sites and lock paths through.
	Prog *Program

	pkg   *Package
	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a //lint:allow directive for
// this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.pkg.allowedAt(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// HasFileDirective reports whether any file of the package carries a
// comment of the exact form "//driftlint:<name>" (package-level opt-in,
// e.g. //driftlint:deterministic on a fixture or a new critical
// package).
func (p *Pass) HasFileDirective(name string) bool {
	want := "//driftlint:" + name
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if text == want || strings.HasPrefix(text, want+" ") {
					return true
				}
			}
		}
	}
	return false
}

// allowDirective is one parsed //lint:allow comment. Malformed
// directives (no analyzer name, no reason) are kept with bad set: they
// suppress nothing and are reported by the directive validation pass —
// a typo in a waiver must be a lint error, never a silent no-op.
type allowDirective struct {
	names  []string
	reason string
	pos    token.Position
	bad    string // non-empty: why the directive failed to parse
	used   bool   // suppressed at least one finding this run
}

// directiveIndex maps filename -> line -> directives on that line.
type directiveIndex map[string]map[int][]*allowDirective

// buildDirectives scans a package's comments for //lint:allow
// directives and indexes them by position. A directive suppresses
// findings on its own line and on the line directly below it (so it can
// trail the flagged expression or sit on its own line above it).
func buildDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := directiveIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				d := parseAllow(strings.TrimPrefix(text, "lint:allow"))
				d.pos = fset.Position(c.Pos())
				byLine := idx[d.pos.Filename]
				if byLine == nil {
					byLine = map[int][]*allowDirective{}
					idx[d.pos.Filename] = byLine
				}
				byLine[d.pos.Line] = append(byLine[d.pos.Line], d)
			}
		}
	}
	return idx
}

// parseAllow parses the payload after "//lint:allow".
func parseAllow(rest string) *allowDirective {
	d := &allowDirective{}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		d.bad = "missing analyzer name and reason (want //lint:allow <analyzer> <reason>)"
		return d
	}
	fields := strings.Fields(rest)
	d.names = strings.Split(fields[0], ",")
	for _, n := range d.names {
		if n == "" {
			d.bad = fmt.Sprintf("empty analyzer name in %q", fields[0])
			return d
		}
	}
	d.reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
	if d.reason == "" {
		d.bad = fmt.Sprintf("missing reason after %q — every waiver must say why", fields[0])
	}
	return d
}

// allowedAt reports whether a well-formed //lint:allow directive for the
// analyzer covers the position's line, marking the directive used.
// Malformed directives never suppress.
func (p *Package) allowedAt(analyzer string, pos token.Position) bool {
	byLine := p.allows[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.bad != "" {
				continue
			}
			for _, name := range d.names {
				if name == analyzer {
					d.used = true
					return true
				}
			}
		}
	}
	return false
}

// AllowAnalyzerName attributes directive-validation diagnostics: a
// malformed, unknown-analyzer, or suppresses-nothing //lint:allow is
// itself a lint error (it cannot be waived — fix or delete it).
const AllowAnalyzerName = "allow"

// validateDirectives checks every //lint:allow in the target packages
// after the analyzers ran: the named analyzers must exist, the reason
// must be present, and the directive must have suppressed something —
// a directive on the wrong line silently allowing nothing is exactly
// how a waived invariant regresses unnoticed.
func validateDirectives(prog *Program, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		names = append(names, a.Name)
	}
	var diags []Diagnostic
	report := func(d *allowDirective, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pos:      d.pos,
			Analyzer: AllowAnalyzerName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range prog.Targets {
		if pkg.Err != nil {
			continue // analyzers did not run; "unused" would be noise
		}
		for _, file := range sortedKeys(pkg.allows) {
			byLine := pkg.allows[file]
			for _, line := range sortedIntKeys(byLine) {
				for _, d := range byLine[line] {
					switch {
					case d.bad != "":
						report(d, "malformed //lint:allow: %s", d.bad)
					default:
						ok := true
						for _, n := range d.names {
							if !known[n] {
								ok = false
								report(d, "//lint:allow names unknown analyzer %q (known: %s)",
									n, strings.Join(names, ", "))
							}
						}
						if ok && !d.used {
							report(d, "//lint:allow %s suppresses no diagnostic on this or the next line — it is on the wrong line, or the finding is gone and the waiver should be deleted",
								strings.Join(d.names, ","))
						}
					}
				}
			}
		}
	}
	return diags
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Run applies every analyzer to the program's target packages —
// per-package Run passes over the shared type-checked cache, then
// whole-program RunProgram passes over the shared fact layer, then the
// //lint:allow directive validation — and returns the combined findings
// sorted by position. Packages that failed to type-check surface their
// first error as a diagnostic attributed to "typecheck" and are skipped
// by the analyzers (their syntax info would be unreliable).
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Targets {
		if pkg.Err != nil {
			diags = append(diags, Diagnostic{
				Pos:      pkg.ErrPos,
				Analyzer: "typecheck",
				Message:  pkg.Err.Error(),
			})
			continue
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Prog:      prog,
				pkg:       pkg,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pp := &ProgPass{Analyzer: a, Prog: prog, diags: &diags}
		if err := a.RunProgram(pp); err != nil {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("internal error: %v", err),
			})
		}
	}
	diags = append(diags, validateDirectives(prog, analyzers)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ---- shared type-query helpers used by the analyzers ----

// CalleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a declared function (e.g. a function
// value, a conversion, or a builtin).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsPkgLevelFunc reports whether fn is the package-level (non-method)
// function pkgPath.name.
func IsPkgLevelFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsFloat reports whether t's underlying type is a floating-point type
// (including untyped float constants).
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// Deref strips one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedOf returns t's *types.Named after stripping pointers, or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// RecvBaseName returns the name of a method declaration's receiver base
// type ("" for plain functions), e.g. "Pipeline" for
// func (p *Pipeline) Snapshot().
func RecvBaseName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
