// Package driftlint is a small, dependency-free static-analysis
// framework in the shape of golang.org/x/tools/go/analysis, built on
// the standard library's go/ast and go/types only (the build
// environment bakes in the Go toolchain but no external modules).
//
// It exists to machine-check the repo's cross-cutting invariants — the
// guarantees the compiler cannot see but the system's headline claims
// rest on:
//
//   - bit-identical warm restart (no wall clock, no global randomness,
//     no unordered iteration feeding serialized state — analyzer
//     "determinism");
//   - checkpoint completeness (every snapshot-struct field covered by
//     both its encode and decode path — analyzer "snapshotsync");
//   - nil-safe telemetry (every exported *Tracer method usable on a nil
//     receiver — analyzer "tracenil");
//   - statistically meaningful float handling (no accidental ==/!= on
//     p-values, martingale wealth or Brier scores — analyzer
//     "floatcmp");
//   - lock discipline on shared registries (analyzer "lockreg").
//
// Analyzers run per package over type-checked syntax. A finding can be
// suppressed at a call site with a directive comment on the same line
// or the line directly above:
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// The reason is free text and mandatory by convention (reviewed, not
// enforced). See DESIGN.md §10 for the invariant catalog.
package driftlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker, mirroring
// golang.org/x/tools/go/analysis.Analyzer closely enough that the suite
// could be ported onto the real multichecker if the dependency ever
// lands in the build image.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `driftlint -help` prints.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned and attributed to its
// analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg   *Package
	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a //lint:allow directive for
// this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.pkg.allowedAt(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// HasFileDirective reports whether any file of the package carries a
// comment of the exact form "//driftlint:<name>" (package-level opt-in,
// e.g. //driftlint:deterministic on a fixture or a new critical
// package).
func (p *Pass) HasFileDirective(name string) bool {
	want := "//driftlint:" + name
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if text == want || strings.HasPrefix(text, want+" ") {
					return true
				}
			}
		}
	}
	return false
}

// directiveIndex maps filename -> line -> analyzer names allowed there.
type directiveIndex map[string]map[int][]string

// buildDirectives scans a package's comments for //lint:allow
// directives and indexes them by position. A directive suppresses
// findings on its own line and on the line directly below it (so it can
// trail the flagged expression or sit on its own line above it).
func buildDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := directiveIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
				if rest == "" {
					continue
				}
				names := strings.Split(strings.Fields(rest)[0], ",")
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], names...)
			}
		}
	}
	return idx
}

func (p *Package) allowedAt(analyzer string, pos token.Position) bool {
	byLine := p.allows[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position. Packages that failed to type-check
// surface their first error as a diagnostic attributed to "typecheck"
// and are skipped by the analyzers (their syntax info would be
// unreliable).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Err != nil {
			diags = append(diags, Diagnostic{
				Pos:      pkg.ErrPos,
				Analyzer: "typecheck",
				Message:  pkg.Err.Error(),
			})
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				pkg:       pkg,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ---- shared type-query helpers used by the analyzers ----

// CalleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a declared function (e.g. a function
// value, a conversion, or a builtin).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsPkgLevelFunc reports whether fn is the package-level (non-method)
// function pkgPath.name.
func IsPkgLevelFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsFloat reports whether t's underlying type is a floating-point type
// (including untyped float constants).
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// Deref strips one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedOf returns t's *types.Named after stripping pointers, or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// RecvBaseName returns the name of a method declaration's receiver base
// type ("" for plain functions), e.g. "Pipeline" for
// func (p *Pipeline) Snapshot().
func RecvBaseName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
