// Package analysistest runs a driftlint analyzer over fixture packages
// and diffs its findings against expectations embedded in the fixtures,
// mirroring golang.org/x/tools/go/analysis/analysistest: a line that
// should be flagged carries a trailing comment
//
//	// want "regexp" ["regexp" ...]
//
// with one Go-quoted or backquoted regular expression per expected
// diagnostic on that line. Fixtures live under the analyzer package's
// testdata/src/<importpath>/ and may import the repo's real packages
// (videodrift/...) — the loader resolves module paths against the
// enclosing module, fixture paths against testdata/src, and everything
// else against GOROOT source.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"videodrift/internal/analysis/driftlint"
)

// expectation is one `// want` regexp with its location.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package (import paths relative to
// testdata/src), applies the analyzer, and reports any mismatch between
// produced diagnostics and // want expectations as test errors.
func Run(t *testing.T, a *driftlint.Analyzer, fixturePkgs ...string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	module, root, err := driftlint.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	loader := driftlint.NewLoader(module, root)
	loader.ExtraRoots = []string{filepath.Join(cwd, "testdata", "src")}

	for _, path := range fixturePkgs {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("load %s: %v", path, err)
			continue
		}
		if pkg.Err != nil {
			t.Errorf("fixture %s does not type-check: %v", path, pkg.Err)
			continue
		}
		diags := driftlint.Run(loader.Program([]*driftlint.Package{pkg}), []*driftlint.Analyzer{a})
		wants, err := parseWants(pkg.Dir)
		if err != nil {
			t.Errorf("fixture %s: %v", path, err)
			continue
		}
		for _, d := range diags {
			if !claim(wants, d) {
				t.Errorf("%s: unexpected diagnostic: %s", path, d)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
			}
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose regexp matches the message.
func claim(wants []*expectation, d driftlint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line || filepath.Base(w.file) != filepath.Base(d.Pos.Filename) {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants scans every fixture file for // want comments.
func parseWants(dir string) ([]*expectation, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			patterns, err := splitPatterns(strings.TrimSpace(m[1]))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", file, i+1, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", file, i+1, err)
				}
				wants = append(wants, &expectation{file: file, line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}

// splitPatterns parses a sequence of Go string literals ("..." or
// `...`) from a want comment's payload.
func splitPatterns(s string) ([]string, error) {
	var out []string
	for s != "" {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated quoted pattern in %q", s)
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted pattern in %q", s)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
