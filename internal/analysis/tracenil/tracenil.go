// Package tracenil enforces the telemetry layer's nil-safety contract
// (telemetry package doc, PR 1): instrumented code holds a possibly-nil
// *telemetry.Tracer and calls it unconditionally, which is only sound
// if every exported *Tracer method is a nil-safe wrapper. The analyzer
// proves that property inside the defining package — each exported
// pointer-receiver method must open with `if t == nil { return ... }`,
// or touch the receiver only through nil comparisons and calls to
// methods already proven nil-safe — and, everywhere else, flags
// explicit dereferences (*t) of a possibly-nil tracer, the one use the
// wrappers cannot make safe.
package tracenil

import (
	"go/ast"
	"go/token"
	"go/types"

	"videodrift/internal/analysis/driftlint"
)

// Analyzer is the nil-safe-telemetry checker.
var Analyzer = &driftlint.Analyzer{
	Name: "tracenil",
	Doc:  "require exported telemetry.Tracer methods to be nil-safe and forbid raw dereferences of possibly-nil tracers",
	Run:  run,
}

func run(pass *driftlint.Pass) error {
	if pass.Pkg.Name() == "telemetry" {
		checkDefiningPackage(pass)
	}
	checkDerefs(pass)
	return nil
}

// tracerMethod is one *Tracer pointer-receiver method declaration.
type tracerMethod struct {
	decl *ast.FuncDecl
	recv *types.Var // receiver object, nil when unnamed
}

// checkDefiningPackage verifies the nil-safety fixpoint over the
// package's *Tracer methods.
func checkDefiningPackage(pass *driftlint.Pass) {
	obj, ok := pass.Pkg.Scope().Lookup("Tracer").(*types.TypeName)
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}

	methods := map[string]*tracerMethod{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			rt := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
			if rt == nil {
				continue
			}
			ptr, ok := rt.(*types.Pointer)
			if !ok || driftlint.NamedOf(ptr) != named {
				continue
			}
			m := &tracerMethod{decl: fd}
			if names := fd.Recv.List[0].Names; len(names) > 0 && names[0].Name != "_" {
				m.recv, _ = pass.TypesInfo.Defs[names[0]].(*types.Var)
			}
			methods[fd.Name.Name] = m
		}
	}

	// Fixpoint: start with methods carrying an explicit leading guard
	// (or never touching the receiver), then admit methods whose only
	// receiver uses are nil comparisons and calls into the current
	// nil-safe set.
	safe := map[string]bool{}
	for name, m := range methods {
		if hasLeadingNilGuard(pass, m) {
			safe[name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for name, m := range methods {
			if safe[name] {
				continue
			}
			if receiverUsesAreSafe(pass, m, safe) {
				safe[name] = true
				changed = true
			}
		}
	}
	for name, m := range methods {
		if safe[name] || !ast.IsExported(name) {
			continue
		}
		pass.Reportf(m.decl.Name.Pos(),
			"exported method (*Tracer).%s is not nil-safe: open with `if %s == nil { return ... }` (instrumented code calls tracer methods unconditionally on possibly-nil tracers)",
			name, recvName(m))
	}
}

func recvName(m *tracerMethod) string {
	if m.recv != nil {
		return m.recv.Name()
	}
	return "t"
}

// hasLeadingNilGuard reports whether the method's first statement is
// `if recv == nil { return ... }` (the body of the if must
// unconditionally return), or the method has no body / never names the
// receiver.
func hasLeadingNilGuard(pass *driftlint.Pass, m *tracerMethod) bool {
	if m.decl.Body == nil {
		return true
	}
	if m.recv == nil {
		return true // receiver unnamed: body cannot dereference it
	}
	if len(m.decl.Body.List) == 0 {
		return true
	}
	ifs, ok := m.decl.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	if !guardsNil(pass, m, ifs.Cond) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

// guardsNil reports whether cond short-circuits into the return when
// the receiver is nil: either `recv == nil` itself, or an || chain
// whose leftmost disjunct is (so evaluation never dereferences the
// receiver first), e.g. `t == nil || s >= stageCount`.
func guardsNil(pass *driftlint.Pass, m *tracerMethod, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return guardsNil(pass, m, e.X)
		}
		return e.Op == token.EQL && isRecvNilComparison(pass, m, e)
	}
	return false
}

func isRecvNilComparison(pass *driftlint.Pass, m *tracerMethod, cmp *ast.BinaryExpr) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == m.recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(cmp.X) && isNil(cmp.Y)) || (isNil(cmp.X) && isRecv(cmp.Y))
}

// receiverUsesAreSafe reports whether every use of the receiver in the
// method body is a nil comparison or the receiver position of a call to
// an already-nil-safe method.
func receiverUsesAreSafe(pass *driftlint.Pass, m *tracerMethod, safe map[string]bool) bool {
	if m.decl.Body == nil || m.recv == nil {
		return true
	}
	ok := true
	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || pass.TypesInfo.Uses[id] != m.recv {
			return true
		}
		if !useIsSafe(pass, m, id, safe) {
			ok = false
		}
		return true
	})
	return ok
}

// useIsSafe classifies one receiver mention by inspecting the smallest
// enclosing expression forms the analyzer accepts.
func useIsSafe(pass *driftlint.Pass, m *tracerMethod, id *ast.Ident, safe map[string]bool) bool {
	path := enclosing(m.decl.Body, id.Pos())
	for i := len(path) - 1; i >= 0; i-- {
		switch e := path[i].(type) {
		case *ast.BinaryExpr:
			if e.Op == token.EQL || e.Op == token.NEQ {
				return true // nil comparison (or any comparison — no deref)
			}
		case *ast.SelectorExpr:
			// recv.Something — safe only as the callee of a call to an
			// already-nil-safe method. The parent node (the call, when
			// there is one) sits before the selector in the root→leaf
			// path.
			if i > 0 {
				if call, ok := path[i-1].(*ast.CallExpr); ok && call.Fun == path[i] {
					return safe[e.Sel.Name]
				}
			}
			return false
		}
	}
	return false
}

// enclosing returns the chain of nodes from root down to the node at
// pos (inclusive of every node whose range covers pos).
func enclosing(root ast.Node, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path
}

// checkDerefs flags `*t` where t is a *telemetry.Tracer outside the
// defining package: copying a tracer's guts through a possibly-nil
// pointer is the one access pattern the nil-safe methods cannot guard.
func checkDerefs(pass *driftlint.Pass) {
	if pass.Pkg.Name() == "telemetry" {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			star, ok := n.(*ast.StarExpr)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(star.X)
			ptr, ok := t.(*types.Pointer)
			if !ok {
				return true // a type expression like *telemetry.Tracer, not a deref
			}
			named := driftlint.NamedOf(ptr)
			if named == nil || named.Obj().Name() != "Tracer" ||
				named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "telemetry" {
				return true
			}
			pass.Reportf(star.Pos(),
				"dereference of a possibly-nil *telemetry.Tracer; use its nil-safe methods instead")
			return true
		})
	}
}
