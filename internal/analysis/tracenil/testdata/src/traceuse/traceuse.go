// Package traceuse is instrumented code: it holds a possibly-nil
// *telemetry.Tracer and may only use it through the nil-safe methods.
package traceuse

import "telemetry"

// Report calls methods — always fine, even on a nil tracer.
func Report(t *telemetry.Tracer) int { return t.Count() }

// Clone copies through the pointer, which panics when t is nil.
func Clone(t *telemetry.Tracer) telemetry.Tracer {
	return *t // want `dereference of a possibly-nil \*telemetry\.Tracer; use its nil-safe methods instead`
}

// Pinned copies under an explicit waiver.
func Pinned() telemetry.Tracer {
	t := telemetry.New()
	return *t //lint:allow tracenil t was constructed on the line above and cannot be nil
}

// Typed uses *telemetry.Tracer as a type expression, not a dereference.
func Typed(t *telemetry.Tracer) {
	var p *telemetry.Tracer = t
	_ = p
}
