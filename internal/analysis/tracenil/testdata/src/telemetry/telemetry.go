// Package telemetry is a fixture reproducing the real telemetry
// package's shape: a Tracer whose exported pointer-receiver methods
// must all be nil-safe, because instrumented code calls them on
// possibly-nil tracers without checking.
package telemetry

// Tracer accumulates events.
type Tracer struct {
	events int
}

// New returns a live tracer.
func New() *Tracer { return &Tracer{} }

// Count is nil-safe via the canonical leading guard.
func (t *Tracer) Count() int {
	if t == nil {
		return 0
	}
	return t.events
}

// Observe guards through an || chain whose leftmost disjunct is the
// nil test, so short-circuit evaluation never dereferences t.
func (t *Tracer) Observe(n int) {
	if t == nil || n < 0 {
		return
	}
	t.events += n
}

// Enabled only compares the receiver, which cannot dereference it.
func (t *Tracer) Enabled() bool { return t != nil }

// Total touches the receiver only through an already nil-safe method.
func (t *Tracer) Total() int { return t.Count() }

// Broken dereferences the receiver with no guard.
func (t *Tracer) Broken() int { // want `exported method \(\*Tracer\)\.Broken is not nil-safe`
	return t.events
}

// reset is unexported: in-package callers check for nil themselves.
func (t *Tracer) reset() { t.events = 0 }

var _ = (*Tracer).reset
