package tracenil_test

import (
	"testing"

	"videodrift/internal/analysis/analysistest"
	"videodrift/internal/analysis/tracenil"
)

func TestTraceNil(t *testing.T) {
	analysistest.Run(t, tracenil.Analyzer, "telemetry", "traceuse")
}
