// Package gorofix exercises goroleak: spawn sites with and without a
// provable stop path.
//
//driftlint:goroutines
package gorofix

import (
	"sync"
	"time"
)

// leakyTicker ranges over a ticker channel: Stop never closes it, so
// nothing can end the loop.
func leakyTicker() {
	go func() { // want `goroutine runs unbounded`
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for range tick.C {
		}
	}()
}

// leakyLoop spins forever with no exit signal at all.
func leakyLoop() {
	go func() { // want `goroutine runs unbounded`
		n := 0
		for {
			n++
		}
	}()
}

// leakyTickerSelect waits only on the ticker: a select whose every arm
// is a ticker receive proves nothing about shutdown.
func leakyTickerSelect() {
	go func() { // want `goroutine runs unbounded`
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
			}
		}
	}()
}

// tickerStopIsNotAStop: a spawner-side Stop on the captured ticker
// still never closes the channel the goroutine is ranging over.
func tickerStopIsNotAStop() {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	go func() { // want `goroutine runs unbounded`
		for range tick.C {
		}
	}()
}

// stopsOnDone is the canonical fix for leakyTickerSelect: one arm
// receives from a done channel.
func stopsOnDone(done chan struct{}) {
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
			case <-done:
				return
			}
		}
	}()
}

// boundedByWaitGroup hands bounded work back to a waiter.
func boundedByWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
		}
	}()
}

// drainsClosableChannel parks on a job queue the producer can close.
func drainsClosableChannel(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

type worker struct {
	done chan struct{}
}

// loopForever carries the unbounded loop for the cross-function cases:
// the spawn site is judged through the call graph, not just its own
// literal.
func (w *worker) loopForever() {
	for {
	}
}

// loopUntilDone polls its done channel every lap.
func (w *worker) loopUntilDone() {
	for {
		select {
		case <-w.done:
			return
		default:
		}
	}
}

func (w *worker) shutdown() {}

// spawnLeakyCallee: the leak lives in the callee, the report lands on
// the spawn.
func spawnLeakyCallee(w *worker) {
	go w.loopForever() // want `goroutine runs unbounded`
}

// spawnStoppableCallee: so does the stop evidence.
func spawnStoppableCallee(w *worker) {
	go w.loopUntilDone()
}

type pump struct{ running bool }

func (p *pump) Run() {
	for {
	}
}

func (p *pump) Stop() { p.running = false }

// spawnerStopsPump: no evidence inside the goroutine, but the spawner
// holds the pump and stops it.
func spawnerStopsPump() {
	p := &pump{}
	go p.Run()
	defer p.Stop()
}

// nestedSpawnIsJudgedSeparately: the outer goroutine is bounded by the
// WaitGroup; the inner leak is reported at the inner spawn site only.
func nestedSpawnIsJudgedSeparately(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		go func() { // want `goroutine runs unbounded`
			for {
			}
		}()
	}()
}

// waivedLeak documents an intentional leak with a reasoned directive,
// which must suppress the finding.
func waivedLeak() {
	//lint:allow goroleak fixture: intentional leak kept to prove suppression works
	go func() {
		for {
		}
	}()
}
