package gorofix

import "net/http"

// serveWithoutServer: the package-level ListenAndServe blocks forever
// and there is no server object anyone could Close.
func serveWithoutServer() {
	go func() { // want `goroutine runs unbounded`
		http.ListenAndServe("localhost:0", nil)
	}()
}

// serveWithClose: the spawner holds the server and closes it.
func serveWithClose() {
	srv := &http.Server{Addr: "localhost:0"}
	go func() {
		srv.ListenAndServe()
	}()
	srv.Close()
}

// serveNamedEntry: a method-value spawn of a blocking serve call,
// shut down by the spawner.
func serveNamedEntry() {
	srv := &http.Server{}
	go srv.ListenAndServe()
	defer srv.Shutdown(nil)
}
