// Package goroleak checks that every goroutine spawned in the
// repo's concurrency-bearing packages has a provable stop path. A
// sharded monitor fleet runs for weeks; a spawn site whose goroutine
// can only end with the process is a slow leak that surfaces as memory
// growth and stuck shutdowns long after the commit that introduced it.
//
// A spawn site is flagged when the goroutine provably runs unbounded —
// an unconditional for-loop, a range over a time.Ticker channel (Stop
// never closes it), or a net/http serve call — anywhere in the
// goroutine's own call graph, and none of the accepted stop proofs is
// present:
//
//   - a channel receive or range over a closable channel (done
//     channels, job queues) in the unbounded body or the goroutine's
//     entry body;
//   - sync.WaitGroup.Done — the goroutine hands bounded work back to a
//     waiter;
//   - a context Done channel or an I/O deadline (Set*Deadline);
//   - net.Listener.Accept — the spawner can close the listener;
//   - the spawner itself calling Close/Shutdown/Stop on (or close() of)
//     an object the goroutine captures. Ticker.Stop is excluded: it
//     does not close the ticker's channel.
//
// The walk never descends into nested go statements: code behind them
// runs in a different goroutine and is judged at its own spawn site.
// Evidence must be local — in the unbounded body itself, the entry
// body, or the spawner — so a receive buried in an unrelated reachable
// callee cannot vouch for a ticker loop that never looks at it.
package goroleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"videodrift/internal/analysis/driftlint"
)

// CoveredPackages are the import paths checked by default; any other
// package opts in with a //driftlint:goroutines file comment.
var CoveredPackages = []string{
	"videodrift/cmd/driftserve",
	"videodrift/internal/core",
	"videodrift/internal/ingest",
	"videodrift/internal/parallel",
}

// Analyzer flags goroutine spawn sites with no provable stop path.
var Analyzer = &driftlint.Analyzer{
	Name: "goroleak",
	Doc:  "goroutines spawned in the concurrency-bearing packages must have a provable stop path (done channel, WaitGroup, deadline, or spawner-held Close)",
	Run:  run,
}

// blockingServe lists net/http entry points that block until the
// server is closed; spawning one without holding a closable
// *http.Server leaks the goroutine.
var blockingServe = map[string]bool{
	"ListenAndServe":    true,
	"ListenAndServeTLS": true,
	"Serve":             true,
	"ServeTLS":          true,
}

func run(pass *driftlint.Pass) error {
	covered := pass.HasFileDirective("goroutines")
	for _, p := range CoveredPackages {
		if pass.Pkg.Path() == p {
			covered = true
		}
	}
	if !covered {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkSpawn(pass, fd, g)
				}
				return true
			})
		}
	}
	return nil
}

// bodyFacts is one function body's contribution to a spawn verdict,
// computed without descending into nested go statements.
type bodyFacts struct {
	needs string        // non-empty: why the body runs unbounded
	stop  string        // non-empty: the stop evidence found
	calls []*types.Func // declared functions the body references
}

// checkSpawn judges one go statement: resolve the goroutine's entry
// body, chase its call graph for unbounded constructs, and report when
// no stop evidence covers them.
func checkSpawn(pass *driftlint.Pass, encl *ast.FuncDecl, g *ast.GoStmt) {
	info := pass.TypesInfo
	var entry bodyFacts
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		entry = scanBody(info, fun.Body)
	default:
		fn := driftlint.CalleeFunc(info, g.Call)
		if fn == nil {
			return // dynamic function value: nothing provable either way
		}
		if fnPkg(fn) == "net/http" && blockingServe[fn.Name()] {
			entry.needs = "it calls a net/http serve entry point, which blocks until the server is closed"
		}
		entry.calls = []*types.Func{fn}
	}

	// The first unbounded body with no evidence of its own, entry first.
	unstopped := ""
	if entry.needs != "" && entry.stop == "" {
		unstopped = entry.needs
	}
	seen := map[*types.Func]bool{}
	frontier := make([]*types.Func, 0, len(entry.calls))
	push := func(fns []*types.Func) {
		for _, fn := range fns {
			if !seen[fn] && len(frontier) < driftlint.DefaultReachLimit {
				seen[fn] = true
				frontier = append(frontier, fn)
			}
		}
	}
	push(entry.calls)
	for i := 0; i < len(frontier); i++ {
		fi := pass.Prog.FuncInfo(frontier[i])
		if fi == nil {
			continue // standard library or interface method: opaque
		}
		bf := scanBody(fi.Pkg.Info, fi.Decl.Body)
		if bf.needs != "" && bf.stop == "" && unstopped == "" {
			unstopped = fmt.Sprintf("%s (in %s)", bf.needs, frontier[i].FullName())
		}
		push(bf.calls)
	}

	if unstopped == "" || entry.stop != "" || spawnerStops(info, encl, g) {
		return
	}
	pass.Reportf(g.Pos(), "goroutine runs unbounded — %s — with no provable stop path (done-channel receive, WaitGroup Done, context or deadline, closable Accept, or a spawner-held Close/Stop on a captured object); thread a shutdown signal through", unstopped)
}

// scanBody collects one body's facts. Nested go statements are skipped
// entirely: their code runs in a different goroutine.
func scanBody(info *types.Info, root ast.Node) bodyFacts {
	var bf bodyFacts
	seen := map[*types.Func]bool{}
	setNeeds := func(why string) {
		if bf.needs == "" {
			bf.needs = why
		}
	}
	setStop := func(what string) {
		if bf.stop == "" {
			bf.stop = what
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // judged at its own spawn site
		case *ast.ForStmt:
			if n.Cond == nil {
				setNeeds("it loops with no exit condition")
			}
		case *ast.RangeStmt:
			if isChan(info, n.X) {
				if isTickerC(info, n.X) {
					setNeeds("it ranges over a time.Ticker channel, which Stop never closes")
				} else {
					setNeeds("it ranges over a channel")
					setStop("the range ends when the channel is closed")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isTickerC(info, n.X) {
				setStop("a channel receive")
			}
		case *ast.CallExpr:
			fn := driftlint.CalleeFunc(info, n)
			if fn == nil {
				break
			}
			name := fn.Name()
			switch pkg := fnPkg(fn); {
			case pkg == "sync" && name == "Done":
				setStop("WaitGroup Done: bounded work handed back to a waiter")
			case pkg == "context" && name == "Done":
				setStop("a context Done channel")
			case strings.HasPrefix(name, "Set") && strings.HasSuffix(name, "Deadline"):
				setStop("an I/O deadline")
			case pkg == "net" && name == "Accept":
				setStop("a closable listener Accept")
			case pkg == "net/http" && blockingServe[name]:
				setNeeds("it calls a net/http serve entry point, which blocks until the server is closed")
			}
		case *ast.Ident:
			if fn, ok := info.Uses[n].(*types.Func); ok && !seen[fn] {
				seen[fn] = true
				bf.calls = append(bf.calls, fn)
			}
		}
		return true
	})
	return bf
}

// spawnerStops reports whether the enclosing function, outside the go
// statement itself, calls Close/Shutdown/Stop on — or close()s — an
// object the goroutine captures. Ticker.Stop is excluded: stopping a
// ticker never closes its channel, so it cannot unblock a ranging
// goroutine.
func spawnerStops(info *types.Info, encl *ast.FuncDecl, g *ast.GoStmt) bool {
	captured := map[types.Object]bool{}
	ast.Inspect(g, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok {
				captured[obj] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if gs, ok := n.(*ast.GoStmt); ok && gs == g {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			// close(ch) on a captured channel.
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin &&
				fun.Name == "close" && len(call.Args) == 1 {
				if obj := baseObj(info, call.Args[0]); obj != nil && captured[obj] {
					found = true
				}
			}
		case *ast.SelectorExpr:
			switch fun.Sel.Name {
			case "Close", "Shutdown", "Stop":
				obj := baseObj(info, fun.X)
				if obj == nil || !captured[obj] {
					break
				}
				if fun.Sel.Name == "Stop" && isTickerObj(obj) {
					break
				}
				found = true
			}
		}
		return true
	})
	return found
}

// baseObj resolves an expression like x, x.f or (x).f to the object of
// its base identifier, or nil.
func baseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func fnPkg(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isChan reports whether e has a channel type.
func isChan(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isTickerC reports whether e is the C field of a time.Ticker — the
// one channel whose producer is stopped without ever being closed, so
// receiving from it proves nothing about shutdown. (*time.Timer's C
// fires once and counts as a deadline, so it is not excluded.)
func isTickerC(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "C" {
		return false
	}
	return isTimeNamed(info.TypeOf(sel.X), "Ticker")
}

// isTickerObj reports whether the object's type is time.Ticker or
// *time.Ticker.
func isTickerObj(obj types.Object) bool {
	return isTimeNamed(obj.Type(), "Ticker")
}

func isTimeNamed(t types.Type, name string) bool {
	n := driftlint.NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "time" && n.Obj().Name() == name
}
