package goroleak_test

import (
	"testing"

	"videodrift/internal/analysis/analysistest"
	"videodrift/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, goroleak.Analyzer, "gorofix")
}
