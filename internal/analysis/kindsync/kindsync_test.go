package kindsync_test

import (
	"testing"

	"videodrift/internal/analysis/analysistest"
	"videodrift/internal/analysis/kindsync"
)

func TestKindsync(t *testing.T) {
	analysistest.Run(t, kindsync.Analyzer, "kindfix")
}
