// Package kindfix exercises kindsync: enum members must be covered by
// every declared surface — directly, via the names table, or via a
// full-range sentinel loop — and the names table must hold exactly
// sentinel-value entries.
package kindfix

// Color's surfaces show the three coverage routes: String indexes the
// names table, describeAll loops to the sentinel, dump reaches the
// table transitively through a helper — and exportAll enumerates
// members by hand, so it misses Blue.
//
//driftlint:enum sentinel=colorCount names=colorNames surfaces=Color.String,describeAll,dump,exportAll
type Color uint8

const (
	Red Color = iota
	Green
	Blue // want `enum member Blue of Color is not referenced by surface exportAll`
	colorCount
)

var colorNames = [colorCount]string{"red", "green", "blue"}

func (c Color) String() string { return colorNames[c] }

func describeAll() []string {
	out := make([]string, 0, int(colorCount))
	for c := Color(0); c < colorCount; c++ {
		out = append(out, c.String())
	}
	return out
}

// dump is exhaustive only transitively: allNames owns the table ref.
func dump() string {
	s := ""
	for _, n := range allNames() {
		s += n
	}
	return s
}

func allNames() []string { return colorNames[:] }

func exportAll() map[string]int {
	return map[string]int{
		Red.String():   0,
		Green.String(): 1,
	}
}

// Shape's names table fell behind the enum: the array length is the
// sentinel so it still compiles, but Triangle stringifies as "".
//
//driftlint:enum sentinel=shapeCount names=shapeNames surfaces=Shape.String
type Shape uint8

const (
	Circle Shape = iota
	Square
	Triangle
	shapeCount
)

var shapeNames = [shapeCount]string{ // want `names table shapeNames holds 2 entries but sentinel shapeCount is 3`
	"circle",
	"square",
}

func (s Shape) String() string { return shapeNames[s] }

// Ghost's directive names a surface that does not exist.
//
//driftlint:enum sentinel=ghostCount surfaces=ghostSurface
type Ghost uint8 // want `//driftlint:enum on Ghost names unknown surface function "ghostSurface"`

const (
	GhostA Ghost = iota
	ghostCount
)

// Bad's directive carries a token the parser does not know.
//
//driftlint:enum sentinel=badCount bogus=1
type Bad uint8 // want `malformed //driftlint:enum directive: unknown token "bogus=1"`

// Half's directive is missing its surface list.
//
//driftlint:enum sentinel=halfCount
type Half uint8 // want `//driftlint:enum on Half needs sentinel= and a surfaces= function list`

// Mode's uncovered member is deliberately waived.
//
//driftlint:enum sentinel=modeCount names=modeNames surfaces=modeLabel
type Mode uint8

const (
	ModeA Mode = iota
	//lint:allow kindsync fixture: member deliberately uncovered to prove suppression works
	ModeB
	modeCount
)

var modeNames = [modeCount]string{"a", "b"}

func modeLabel(m Mode) string {
	if m == ModeA {
		return "a"
	}
	return "?"
}
