// Package kindsync keeps enum surfaces exhaustive: for every enum
// type marked
//
//	//driftlint:enum sentinel=Const [names=Var] surfaces=Func[,Recv.Method...]
//
// each enum member (every package-level constant of the type, minus
// the sentinel) must be covered by every listed surface. A surface
// covers a member when its whole-program call graph references the
// member's constant directly, the names table, or the sentinel — the
// last two being how exhaustive surfaces are actually written (index
// into the table, or a full-range `for k := Kind(0); k < kindCount`
// loop). Adding an enum member without extending a switch-style
// surface then fails lint instead of silently dropping the new kind
// from a snapshot or an exporter.
//
// When names= is given, the table's composite literal is also checked
// against the sentinel's value: an under-filled positional array
// compiles fine (the array length is the sentinel) but stringifies
// new members as empty strings, which is exactly the drift this
// analyzer exists to catch.
package kindsync

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"videodrift/internal/analysis/driftlint"
)

// Analyzer is the enum-surface exhaustiveness checker.
var Analyzer = &driftlint.Analyzer{
	Name: "kindsync",
	Doc:  "require every member of a marked enum to be covered by each declared surface, directly or via the names table or sentinel",
	Run:  run,
}

// spec is one parsed //driftlint:enum directive.
type spec struct {
	name     string
	pos      token.Pos
	named    *types.Named
	sentinel string
	names    string
	surfaces []string
}

func run(pass *driftlint.Pass) error {
	specs := collectSpecs(pass)
	if len(specs) == 0 {
		return nil
	}
	decls := collectFuncs(pass)
	for _, sp := range specs {
		scope := pass.Pkg.Scope()
		sentObj, ok := scope.Lookup(sp.sentinel).(*types.Const)
		if !ok || driftlint.NamedOf(sentObj.Type()) != sp.named {
			pass.Reportf(sp.pos,
				"//driftlint:enum on %s: sentinel %q is not a package-level constant of type %s",
				sp.name, sp.sentinel, sp.name)
			continue
		}
		var namesObj *types.Var
		if sp.names != "" {
			namesObj, ok = scope.Lookup(sp.names).(*types.Var)
			if !ok {
				pass.Reportf(sp.pos,
					"//driftlint:enum on %s: names %q is not a package-level variable",
					sp.name, sp.names)
				continue
			}
			checkNamesTable(pass, sp, namesObj, sentObj)
		}
		members := collectMembers(pass, sp, sentObj)
		for _, surface := range sp.surfaces {
			fds := decls[surface]
			if len(fds) == 0 {
				pass.Reportf(sp.pos,
					"//driftlint:enum on %s names unknown surface function %q", sp.name, surface)
				continue
			}
			var entries []*types.Func
			for _, fd := range fds {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					entries = append(entries, fn)
				}
			}
			if exhaustiveByConstruction(pass, sp, entries, sentObj, namesObj) {
				continue
			}
			covered := memberRefs(pass, entries)
			for _, m := range members {
				if !covered[m] {
					pass.Reportf(m.Pos(),
						"enum member %s of %s is not referenced by surface %s (not directly, not via the names table, and not via the %s sentinel); the surface silently misses it",
						m.Name(), sp.name, surface, sp.sentinel)
				}
			}
		}
	}
	return nil
}

// collectMembers returns the package-level constants of the enum type,
// excluding the sentinel, sorted by declaration position.
func collectMembers(pass *driftlint.Pass, sp *spec, sentinel *types.Const) []*types.Const {
	var members []*types.Const
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c == sentinel {
			continue
		}
		if driftlint.NamedOf(c.Type()) == sp.named {
			members = append(members, c)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Pos() < members[j].Pos() })
	return members
}

// memberRefs collects every object used anywhere in the surfaces'
// whole-program call graphs — the direct-reference route to coverage.
func memberRefs(pass *driftlint.Pass, entries []*types.Func) map[types.Object]bool {
	covered := map[types.Object]bool{}
	for _, fi := range pass.Prog.Reachable(entries, 0) {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := fi.Pkg.Info.Uses[id]; obj != nil {
					covered[obj] = true
				}
			}
			return true
		})
	}
	return covered
}

// exhaustiveByConstruction reports whether the surface's call graph
// references the names table or the sentinel — the two ways a surface
// handles every member without naming any.
//
// The walk depends on the surface's shape. A per-value surface — one
// that takes the enum as a receiver or parameter, like String or
// MarshalJSON — handles whichever member it is given, so delegating to
// another per-value function is itself exhaustive and the whole call
// graph counts. An enumerating surface — no enum input, like an
// exporter — must produce the members itself, so its walk prunes at
// per-value callees: calling kind.String() on two hand-picked members
// must not vouch for the rest.
func exhaustiveByConstruction(pass *driftlint.Pass, sp *spec, entries []*types.Func, sentObj, namesObj types.Object) bool {
	perValue := false
	for _, fn := range entries {
		if takesEnum(fn, sp.named) {
			perValue = true
		}
	}
	seen := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), entries...)
	for len(queue) > 0 && len(seen) < driftlint.DefaultReachLimit {
		fn := queue[0]
		queue = queue[1:]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		fi := pass.Prog.FuncInfo(fn)
		if fi == nil {
			continue
		}
		found := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				obj := fi.Pkg.Info.Uses[id]
				if obj == sentObj || (namesObj != nil && obj == namesObj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
		for _, callee := range fi.Calls {
			if !perValue && takesEnum(callee, sp.named) {
				continue
			}
			queue = append(queue, callee)
		}
	}
	return false
}

// takesEnum reports whether the function receives the enum type as its
// receiver or any parameter — the per-value shape.
func takesEnum(fn *types.Func, named *types.Named) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil &&
		driftlint.NamedOf(driftlint.Deref(recv.Type())) == named {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if driftlint.NamedOf(driftlint.Deref(sig.Params().At(i).Type())) == named {
			return true
		}
	}
	return false
}

// checkNamesTable verifies the names table's positional literal holds
// exactly sentinel-value entries.
func checkNamesTable(pass *driftlint.Pass, sp *spec, namesObj *types.Var, sentinel *types.Const) {
	want, ok := constant.Int64Val(sentinel.Val())
	if !ok {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, s := range gen.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if pass.TypesInfo.Defs[name] != namesObj || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					got := 0
					for _, elt := range lit.Elts {
						if _, keyed := elt.(*ast.KeyValueExpr); keyed {
							return // sparse keyed table; cardinality is not positional
						}
						got++
					}
					if int64(got) != want {
						pass.Reportf(name.Pos(),
							"names table %s holds %d entries but sentinel %s is %d; members added since the table was last extended would stringify as empty strings",
							sp.names, got, sp.sentinel, want)
					}
				}
			}
		}
	}
}

// collectSpecs finds marked enum types and parses their directives.
func collectSpecs(pass *driftlint.Pass) []*spec {
	var specs []*spec
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.TYPE {
				continue
			}
			for _, s := range gen.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gen.Specs) == 1 {
					doc = gen.Doc
				}
				line, ok := directiveLine(doc)
				if !ok {
					continue
				}
				sp := parseSpec(pass, ts, line)
				if sp != nil {
					specs = append(specs, sp)
				}
			}
		}
	}
	return specs
}

func directiveLine(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if rest, ok := strings.CutPrefix(text, "//driftlint:enum"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

func parseSpec(pass *driftlint.Pass, ts *ast.TypeSpec, line string) *spec {
	sp := &spec{name: ts.Name.Name, pos: ts.Pos()}
	for _, field := range strings.Fields(line) {
		switch {
		case strings.HasPrefix(field, "sentinel="):
			sp.sentinel = strings.TrimPrefix(field, "sentinel=")
		case strings.HasPrefix(field, "names="):
			sp.names = strings.TrimPrefix(field, "names=")
		case strings.HasPrefix(field, "surfaces="):
			sp.surfaces = strings.Split(strings.TrimPrefix(field, "surfaces="), ",")
		default:
			pass.Reportf(ts.Pos(), "malformed //driftlint:enum directive: unknown token %q", field)
			return nil
		}
	}
	if sp.sentinel == "" || len(sp.surfaces) == 0 {
		pass.Reportf(ts.Pos(), "//driftlint:enum on %s needs sentinel= and a surfaces= function list", sp.name)
		return nil
	}
	obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	sp.named = named
	return sp
}

// collectFuncs indexes the package's function declarations by bare name
// and by "Receiver.Name".
func collectFuncs(pass *driftlint.Pass) map[string][]*ast.FuncDecl {
	decls := map[string][]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			decls[fd.Name.Name] = append(decls[fd.Name.Name], fd)
			if recv := driftlint.RecvBaseName(fd); recv != "" {
				decls[recv+"."+fd.Name.Name] = append(decls[recv+"."+fd.Name.Name], fd)
			}
		}
	}
	return decls
}
