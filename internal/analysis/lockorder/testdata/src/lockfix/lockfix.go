// Package lockfix exercises lockorder: acquisition cycles, consistent
// orders, cross-function edges, *Locked-method contracts, goroutine
// boundaries and per-shard sequences.
package lockfix

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// aThenB and bThenA together acquire A.mu and B.mu in opposite orders:
// the canonical deadlock-capable cycle.
func aThenB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle`
	b.n++
	b.mu.Unlock()
	a.n++
}

func bThenA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b.n++
}

type C struct {
	mu sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
	n  int
}

// cGrabsD orders C.mu before D.mu through a call — the edge must be
// found in bump's body, not at this lexical site.
func cGrabsD(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bump(d) // want `lock-order cycle`
	c.n++
}

func bump(d *D) {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}

func dGrabsC(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	d.n++
}

type E struct {
	mu sync.Mutex
	n  int
}

type F struct {
	mu sync.Mutex
	n  int
}

// eThenF* always order E.mu before F.mu: consistent, no cycle.
func eThenFDirect(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
	e.n++
}

func eThenFViaCall(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	bumpF(f)
	e.n++
}

func bumpF(f *F) {
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
}

type G struct {
	mu sync.Mutex
	n  int
}

type H struct {
	mu sync.Mutex
	n  int
}

func gThenH(g *G, h *H) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h.mu.Lock()
	h.n++
	h.mu.Unlock()
	g.n++
}

// releaseThenAcquire holds H.mu and G.mu only sequentially — no
// overlap, so no H → G edge and no cycle with gThenH.
func releaseThenAcquire(g *G, h *H) {
	h.mu.Lock()
	h.n++
	h.mu.Unlock()
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// spawnNoEdge takes G.mu on a spawned goroutine while holding H.mu:
// the goroutine does not inherit the spawner's locks, so this must not
// create the H → G edge that would close a cycle with gThenH.
func spawnNoEdge(g *G, h *H) {
	h.mu.Lock()
	defer h.mu.Unlock()
	go func() {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}()
	h.n++
}

// Reg mirrors core.Registry's contract: *Locked methods run with mu
// held by the caller.
//
//driftlint:locked
type Reg struct {
	mu sync.Mutex
	n  int
}

type Side struct {
	mu sync.Mutex
	n  int
}

// growLocked runs under Reg.mu by contract, so taking Side.mu here
// orders Reg.mu before Side.mu with no lexical Lock in sight.
func (r *Reg) growLocked(s *Side) {
	r.n++
	s.mu.Lock() // want `lock-order cycle`
	s.n++
	s.mu.Unlock()
}

func (r *Reg) Grow(s *Side) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.growLocked(s)
}

func sideThenReg(r *Reg, s *Side) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	s.n++
}

// Shard: locking two instances of one type in sequence is the normal
// per-shard sweep; instance identity is statically unknowable, so
// same-node self-edges are never reported.
type Shard struct {
	mu sync.Mutex
	n  int
}

func drain(shards []*Shard) {
	for _, s := range shards {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

func pair(s1, s2 *Shard) {
	s1.mu.Lock()
	defer s1.mu.Unlock()
	s2.mu.Lock()
	s2.n++
	s2.mu.Unlock()
	s1.n++
}

type P struct {
	mu sync.Mutex
	n  int
}

type Q struct {
	mu sync.Mutex
	n  int
}

// pThenQ + qThenP form a cycle that is deliberately waived.
func pThenQ(p *P, q *Q) {
	p.mu.Lock()
	defer p.mu.Unlock()
	//lint:allow lockorder fixture: cycle kept to prove suppression works
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	p.n++
}

func qThenP(p *P, q *Q) {
	q.mu.Lock()
	defer q.mu.Unlock()
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
	q.n++
}
