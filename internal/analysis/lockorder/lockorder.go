// Package lockorder builds the whole-program mutex-acquisition graph
// and flags cycles. Two code paths that take the same pair of mutexes
// in opposite orders can deadlock the moment they run concurrently —
// exactly the failure mode a sharded monitor fleet (supervisor lock,
// per-shard stats locks, ingest router, selection pool) grows into as
// call chains get longer.
//
// Nodes are type-level locks: a sync.Mutex/RWMutex field of a named
// struct ("pkg.Type.field") or a package-level mutex variable
// ("pkg.var"). Local mutexes are skipped (instance identity is
// statically unknowable, so ordering between them is meaningless).
//
// An edge A → B is recorded when a function acquires A and then,
// lexically before A's matching non-deferred Unlock (or to the end of
// the body when the unlock is deferred), either acquires B directly or
// calls a function that transitively acquires B. The walk understands
// two repo conventions:
//
//   - //driftlint:locked structs (lockreg's contract): a method whose
//     name ends in "Locked" runs with its receiver's mutex held, so
//     every lock it takes is ordered after the receiver's — even
//     though no Lock call is lexically visible.
//   - copy-on-write atomics: readers of an atomic.Pointer snapshot
//     never lock, so they simply contribute no nodes or edges.
//
// Code behind a go statement runs on a different goroutine and does
// not inherit the spawner's held locks; those subtrees are scanned as
// independent units. Same-node self-edges (locking two shards of the
// same type in sequence) are not reported.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"videodrift/internal/analysis/driftlint"
)

// Analyzer flags mutex-acquisition cycles across the whole program.
var Analyzer = &driftlint.Analyzer{
	Name:       "lockorder",
	Doc:        "two code paths must never acquire the same mutexes in opposite orders (whole-program acquisition-graph cycle check)",
	RunProgram: runProgram,
}

// acq is one lock acquisition and the lexical region it is held for.
type acq struct {
	node     string
	pos, end token.Pos
}

// callsite is one resolvable call inside a scan unit.
type callsite struct {
	fn  *types.Func
	pos token.Pos
}

// unit is one body analyzed for ordering: a function declaration minus
// its go subtrees, or one spawned goroutine literal.
type unit struct {
	fn    *types.Func // declaring function (also for goroutine units)
	held  []string    // locks held on entry (*Locked-method contract)
	acqs  []acq
	calls []callsite
}

// edgeInfo is the first witness recorded for one ordered pair.
type edgeInfo struct {
	pos token.Pos
	via string // callee name for a call edge, "" for a direct acquire
}

func runProgram(pp *driftlint.ProgPass) error {
	prog := pp.Prog
	locked := collectLockedStructs(prog)

	var units []*unit
	byFn := map[*types.Func][]*unit{} // decl unit first, then its goroutine units
	for _, fi := range prog.Funcs() {
		us := scanUnits(fi, locked)
		units = append(units, us...)
		byFn[fi.Func] = us
	}

	// transAcq: every node fn or its (go-free) callees acquire.
	memo := map[*types.Func]map[string]bool{}
	var transAcq func(fn *types.Func) map[string]bool
	transAcq = func(fn *types.Func) map[string]bool {
		if got, ok := memo[fn]; ok {
			return got
		}
		out := map[string]bool{}
		memo[fn] = out // pre-publish: cycles in the call graph terminate
		seen := map[*types.Func]bool{fn: true}
		queue := []*types.Func{fn}
		for i := 0; i < len(queue) && i < driftlint.DefaultReachLimit; i++ {
			for ui, u := range byFn[queue[i]] {
				if ui > 0 {
					continue // goroutine units run on another goroutine, not under the caller's locks
				}
				for _, a := range u.acqs {
					out[a.node] = true
				}
				for _, c := range u.calls {
					if !seen[c.fn] {
						seen[c.fn] = true
						queue = append(queue, c.fn)
					}
				}
			}
		}
		return out
	}

	edges := map[string]map[string]edgeInfo{}
	addEdge := func(from, to string, pos token.Pos, via string) {
		if from == to {
			return // per-shard same-type sequences: instance identity unknown
		}
		m := edges[from]
		if m == nil {
			m = map[string]edgeInfo{}
			edges[from] = m
		}
		if _, ok := m[to]; !ok {
			m[to] = edgeInfo{pos: pos, via: via}
		}
	}
	for _, u := range units {
		for _, h := range u.held {
			for _, a := range u.acqs {
				addEdge(h, a.node, a.pos, "")
			}
			for _, c := range u.calls {
				for _, n := range sortedSet(transAcq(c.fn)) {
					addEdge(h, n, c.pos, c.fn.Name())
				}
			}
		}
		for i, a := range u.acqs {
			for _, b := range u.acqs[i+1:] {
				if b.pos < a.end {
					addEdge(a.node, b.node, b.pos, "")
				}
			}
			for _, c := range u.calls {
				if c.pos > a.pos && c.pos < a.end {
					for _, n := range sortedSet(transAcq(c.fn)) {
						addEdge(a.node, n, c.pos, c.fn.Name())
					}
				}
			}
		}
	}

	targets := map[*driftlint.Package]bool{}
	for _, pkg := range prog.Targets {
		targets[pkg] = true
	}
	for _, cycle := range findCycles(edges) {
		first := edges[cycle[0]][cycle[1]]
		if !targets[prog.PackageAt(prog.Fset.Position(first.pos))] {
			continue // witness lives in a dependency outside this run's targets
		}
		var parts []string
		for i := 0; i < len(cycle)-1; i++ {
			w := edges[cycle[i]][cycle[i+1]]
			where := "here"
			if i > 0 {
				where = prog.Fset.Position(w.pos).String()
			}
			if w.via != "" {
				where += " via " + w.via
			}
			parts = append(parts, fmt.Sprintf("%s → %s (%s)", cycle[i], cycle[i+1], where))
		}
		pp.Reportf(first.pos, "lock-order cycle: %s — these paths acquire the same mutexes in opposite orders and can deadlock; pick one global order", strings.Join(parts, ", "))
	}
	return nil
}

// findCycles returns one representative cycle per strongly connected
// component of size >= 2, as a node path [n0, n1, ..., n0], starting at
// the component's lexicographically smallest node. Deterministic.
func findCycles(edges map[string]map[string]edgeInfo) [][]string {
	nodes := sortedSetKeys(edges)
	for _, m := range edges {
		for to := range m {
			if _, ok := edges[to]; !ok {
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)
	nodes = dedup(nodes)

	// Tarjan's SCC, iteratively-indexed over the sorted node list.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sortedSetKeys2(edges[v]) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })

	var cycles [][]string
	for _, scc := range sccs {
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		if path := shortestCycle(scc[0], edges, inSCC); path != nil {
			cycles = append(cycles, path)
		}
	}
	return cycles
}

// shortestCycle finds a shortest path start -> ... -> start within the
// component via BFS with sorted neighbor expansion.
func shortestCycle(start string, edges map[string]map[string]edgeInfo, in map[string]bool) []string {
	parent := map[string]string{}
	queue := []string{start}
	for i := 0; i < len(queue); i++ {
		v := queue[i]
		for _, w := range sortedSetKeys2(edges[v]) {
			if !in[w] {
				continue
			}
			if w == start {
				path := []string{w}
				for at := v; ; at = parent[at] {
					path = append([]string{at}, path...)
					if at == start {
						return path
					}
				}
			}
			if _, seen := parent[w]; !seen {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// scanUnits produces the ordering units for one declaration: the body
// with go subtrees removed, plus one unit per spawned goroutine
// literal (recursively).
func scanUnits(fi *driftlint.FuncInfo, locked map[*types.Named]map[string]bool) []*unit {
	var units []*unit
	var scan func(body *ast.BlockStmt, held []string)
	scan = func(body *ast.BlockStmt, held []string) {
		u := &unit{fn: fi.Func, held: held}
		deferred := map[*ast.CallExpr]bool{}
		type unlock struct {
			node string
			pos  token.Pos
		}
		var unlocks []unlock
		var goBodies []*ast.BlockStmt
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					goBodies = append(goBodies, lit.Body)
				}
				return false // a different goroutine: no inherited locks
			case *ast.DeferStmt:
				deferred[n.Call] = true
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if ok && isMutexMethod(sel.Sel.Name) && isMutexType(fi.Pkg.Info.TypeOf(sel.X)) {
					node := lockNodeOf(fi.Pkg.Info, sel.X)
					if node == "" {
						return true
					}
					switch sel.Sel.Name {
					case "Lock", "RLock":
						u.acqs = append(u.acqs, acq{node: node, pos: n.Pos(), end: body.End()})
					case "Unlock", "RUnlock":
						if !deferred[n] {
							unlocks = append(unlocks, unlock{node: node, pos: n.Pos()})
						}
					}
					return true
				}
				if fn := driftlint.CalleeFunc(fi.Pkg.Info, n); fn != nil {
					u.calls = append(u.calls, callsite{fn: fn, pos: n.Pos()})
				}
			}
			return true
		})
		for i := range u.acqs {
			for _, ul := range unlocks {
				if ul.node == u.acqs[i].node && ul.pos > u.acqs[i].pos && ul.pos < u.acqs[i].end {
					u.acqs[i].end = ul.pos
				}
			}
		}
		units = append(units, u)
		for _, gb := range goBodies {
			scan(gb, nil)
		}
	}
	scan(fi.Decl.Body, heldOnEntry(fi, locked))
	return units
}

// heldOnEntry returns the receiver mutex nodes a *Locked method holds
// by contract (lockreg's //driftlint:locked convention).
func heldOnEntry(fi *driftlint.FuncInfo, locked map[*types.Named]map[string]bool) []string {
	if !strings.HasSuffix(fi.Func.Name(), "Locked") {
		return nil
	}
	sig, ok := fi.Func.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named := driftlint.NamedOf(sig.Recv().Type())
	fields := locked[named]
	if fields == nil {
		return nil
	}
	var held []string
	for _, f := range sortedSet(fields) {
		held = append(held, nodeName(named, f))
	}
	return held
}

// collectLockedStructs finds every //driftlint:locked struct in the
// program and its mutex field names.
func collectLockedStructs(prog *driftlint.Program) map[*types.Named]map[string]bool {
	out := map[*types.Named]map[string]bool{}
	for _, pkg := range prog.All {
		if pkg.Err != nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gen, ok := decl.(*ast.GenDecl)
				if !ok || gen.Tok != token.TYPE {
					continue
				}
				for _, s := range gen.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(gen.Specs) == 1 {
						doc = gen.Doc
					}
					if !hasLockedDirective(doc) {
						continue
					}
					obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					named, ok := obj.Type().(*types.Named)
					if !ok {
						continue
					}
					st, ok := named.Underlying().(*types.Struct)
					if !ok {
						continue
					}
					fields := map[string]bool{}
					for i := 0; i < st.NumFields(); i++ {
						if isMutexType(st.Field(i).Type()) {
							fields[st.Field(i).Name()] = true
						}
					}
					if len(fields) > 0 {
						out[named] = fields
					}
				}
			}
		}
	}
	return out
}

func hasLockedDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == "//driftlint:locked" || strings.HasPrefix(text, "//driftlint:locked ") {
			return true
		}
	}
	return false
}

// lockNodeOf names the type-level lock an expression denotes:
// "pkg.Type.field" for a struct's mutex field, "pkg.var" for a
// package-level mutex, "" for anything instance-ambiguous (locals,
// map entries, results of calls).
func lockNodeOf(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		s := info.Selections[x]
		if s == nil || s.Kind() != types.FieldVal {
			return ""
		}
		named := driftlint.NamedOf(s.Recv())
		if named == nil {
			return ""
		}
		return nodeName(named, s.Obj().Name())
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			return ""
		}
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return ""
}

func nodeName(named *types.Named, field string) string {
	pkg := ""
	if named.Obj().Pkg() != nil {
		pkg = named.Obj().Pkg().Name() + "."
	}
	return pkg + named.Obj().Name() + "." + field
}

func isMutexMethod(name string) bool {
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return true
	}
	return false
}

func isMutexType(t types.Type) bool {
	named := driftlint.NamedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedSetKeys(m map[string]map[string]edgeInfo) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedSetKeys2(m map[string]edgeInfo) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
