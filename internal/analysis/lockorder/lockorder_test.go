package lockorder_test

import (
	"testing"

	"videodrift/internal/analysis/analysistest"
	"videodrift/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "lockfix")
}
