// Package analysis assembles the driftlint analyzer suite — the
// mechanically-enforced invariants behind the repo's determinism,
// checkpoint-completeness, telemetry, concurrency and wire-codec
// guarantees (DESIGN.md §10, §15).
package analysis

import (
	"videodrift/internal/analysis/determinism"
	"videodrift/internal/analysis/driftlint"
	"videodrift/internal/analysis/floatcmp"
	"videodrift/internal/analysis/goroleak"
	"videodrift/internal/analysis/kindsync"
	"videodrift/internal/analysis/lockorder"
	"videodrift/internal/analysis/lockreg"
	"videodrift/internal/analysis/snapshotsync"
	"videodrift/internal/analysis/tracenil"
	"videodrift/internal/analysis/wiresync"
)

// Suite returns every analyzer, in diagnostic-name order.
func Suite() []*driftlint.Analyzer {
	return []*driftlint.Analyzer{
		determinism.Analyzer,
		floatcmp.Analyzer,
		goroleak.Analyzer,
		kindsync.Analyzer,
		lockorder.Analyzer,
		lockreg.Analyzer,
		snapshotsync.Analyzer,
		tracenil.Analyzer,
		wiresync.Analyzer,
	}
}
