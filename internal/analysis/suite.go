// Package analysis assembles the driftlint analyzer suite — the five
// mechanically-enforced invariants behind the repo's determinism,
// checkpoint-completeness and telemetry guarantees (DESIGN.md §10).
package analysis

import (
	"videodrift/internal/analysis/determinism"
	"videodrift/internal/analysis/driftlint"
	"videodrift/internal/analysis/floatcmp"
	"videodrift/internal/analysis/lockreg"
	"videodrift/internal/analysis/snapshotsync"
	"videodrift/internal/analysis/tracenil"
)

// Suite returns every analyzer, in diagnostic-name order.
func Suite() []*driftlint.Analyzer {
	return []*driftlint.Analyzer{
		determinism.Analyzer,
		floatcmp.Analyzer,
		lockreg.Analyzer,
		snapshotsync.Analyzer,
		tracenil.Analyzer,
	}
}
