package snapshotsync_test

import (
	"testing"

	"videodrift/internal/analysis/analysistest"
	"videodrift/internal/analysis/snapshotsync"
)

func TestSnapshotSync(t *testing.T) {
	analysistest.Run(t, snapshotsync.Analyzer, "snapfix")
}
