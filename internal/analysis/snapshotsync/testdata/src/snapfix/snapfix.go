// Package snapfix exercises the snapshotsync analyzer: marked structs
// whose encode/decode coverage is complete, incomplete, or misdeclared.
package snapfix

// goodRecord's fields are fully covered by both paths (the positional
// composite literal in goodDecode initializes every field).
//
//driftlint:snapshot encode=goodEncode decode=goodDecode
type goodRecord struct {
	A int
	B string
}

func goodEncode(g goodRecord) (int, string) { return g.A, g.B }

func goodDecode(a int, b string) goodRecord { return goodRecord{a, b} }

// methRecord's encode path is a method, named Receiver.Method style.
//
//driftlint:snapshot encode=methRecord.Marshal decode=unmarshalMeth
type methRecord struct {
	V int
}

// Marshal is the encode path.
func (m methRecord) Marshal() int { return m.V }

func unmarshalMeth(v int) methRecord { return methRecord{V: v} }

// badRecord is the regression case this analyzer exists for: a field
// added to the snapshot struct and to the encoder, but never to the
// decoder — a checkpoint that restores incompletely.
//
//driftlint:snapshot encode=badEncode decode=badDecode
type badRecord struct {
	A     int
	Added float64 // want `field Added of snapshot struct badRecord is not referenced by its decode path \(badDecode\); warm restarts would silently lose it`
}

func badEncode(b badRecord) (int, float64) { return b.A, b.Added }

func badDecode(a int) badRecord {
	var r badRecord
	r.A = a
	return r
}

// ghostRecord drops a field from both paths.
//
//driftlint:snapshot encode=ghostEncode decode=ghostDecode
type ghostRecord struct {
	Kept    int
	Dropped int // want `not referenced by its encode path` `not referenced by its decode path`
}

func ghostEncode(g ghostRecord) int { return g.Kept }

func ghostDecode(v int) ghostRecord { return ghostRecord{Kept: v} }

// unknownRec's directive names a function that does not exist.
//
//driftlint:snapshot encode=nowhere decode=ghostDecode
type unknownRec struct{} // want `names unknown encode function "nowhere"`
