// Package snapshotsync cross-checks snapshot/codec struct coverage: for
// every struct marked
//
//	//driftlint:snapshot encode=Func[,Recv.Method...] decode=Func[,...]
//
// each of its fields must be referenced (selected or set in a keyed
// composite literal) inside at least one named encode function AND at
// least one named decode function. Adding state to a snapshot struct
// without extending both checkpoint paths then fails the lint gate
// instead of silently corrupting warm restarts — the regression class
// PR 3's bit-identical-resume guarantee is most exposed to.
package snapshotsync

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"videodrift/internal/analysis/driftlint"
)

// Analyzer is the checkpoint-completeness checker.
var Analyzer = &driftlint.Analyzer{
	Name: "snapshotsync",
	Doc:  "require every field of a marked snapshot struct to be covered by its encode and decode paths",
	Run:  run,
}

// spec is one parsed //driftlint:snapshot directive.
type spec struct {
	name   string
	pos    token.Pos
	named  *types.Named
	fields *types.Struct
	encode []string
	decode []string
}

func run(pass *driftlint.Pass) error {
	specs := collectSpecs(pass)
	if len(specs) == 0 {
		return nil
	}
	decls := collectFuncs(pass)
	for _, sp := range specs {
		enc := referencedFields(pass, sp, sp.encode, decls, "encode")
		dec := referencedFields(pass, sp, sp.decode, decls, "decode")
		if enc == nil || dec == nil {
			continue // directive itself was bad; already reported
		}
		for i := 0; i < sp.fields.NumFields(); i++ {
			f := sp.fields.Field(i)
			if f.Name() == "_" {
				continue
			}
			if !enc[f.Name()] {
				pass.Reportf(f.Pos(),
					"field %s of snapshot struct %s is not referenced by its encode path (%s); checkpoints would silently drop it",
					f.Name(), sp.name, strings.Join(sp.encode, ", "))
			}
			if !dec[f.Name()] {
				pass.Reportf(f.Pos(),
					"field %s of snapshot struct %s is not referenced by its decode path (%s); warm restarts would silently lose it",
					f.Name(), sp.name, strings.Join(sp.decode, ", "))
			}
		}
	}
	return nil
}

// collectSpecs finds marked struct types and parses their directives.
func collectSpecs(pass *driftlint.Pass) []*spec {
	var specs []*spec
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.TYPE {
				continue
			}
			for _, s := range gen.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gen.Specs) == 1 {
					doc = gen.Doc
				}
				line := directiveLine(doc)
				if line == "" {
					continue
				}
				sp := parseSpec(pass, ts, line)
				if sp != nil {
					specs = append(specs, sp)
				}
			}
		}
	}
	return specs
}

func directiveLine(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if rest, ok := strings.CutPrefix(text, "//driftlint:snapshot"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

func parseSpec(pass *driftlint.Pass, ts *ast.TypeSpec, line string) *spec {
	sp := &spec{name: ts.Name.Name, pos: ts.Pos()}
	for _, field := range strings.Fields(line) {
		switch {
		case strings.HasPrefix(field, "encode="):
			sp.encode = strings.Split(strings.TrimPrefix(field, "encode="), ",")
		case strings.HasPrefix(field, "decode="):
			sp.decode = strings.Split(strings.TrimPrefix(field, "decode="), ",")
		default:
			pass.Reportf(ts.Pos(), "malformed //driftlint:snapshot directive: unknown token %q", field)
			return nil
		}
	}
	if len(sp.encode) == 0 || len(sp.decode) == 0 {
		pass.Reportf(ts.Pos(), "//driftlint:snapshot on %s needs both encode= and decode= function lists", sp.name)
		return nil
	}
	obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Pos(), "//driftlint:snapshot on %s, which is not a struct type", sp.name)
		return nil
	}
	sp.named = named
	sp.fields = st
	return sp
}

// collectFuncs indexes the package's function declarations by bare name
// and by "Receiver.Name".
func collectFuncs(pass *driftlint.Pass) map[string][]*ast.FuncDecl {
	decls := map[string][]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			decls[fd.Name.Name] = append(decls[fd.Name.Name], fd)
			if recv := driftlint.RecvBaseName(fd); recv != "" {
				decls[recv+"."+fd.Name.Name] = append(decls[recv+"."+fd.Name.Name], fd)
			}
		}
	}
	return decls
}

// referencedFields walks the named functions and returns the set of
// sp's field names they reference. A nil return means the directive
// named a function that does not exist (reported here).
func referencedFields(pass *driftlint.Pass, sp *spec, names []string, decls map[string][]*ast.FuncDecl, role string) map[string]bool {
	refs := map[string]bool{}
	for _, name := range names {
		fds := decls[name]
		if len(fds) == 0 {
			pass.Reportf(sp.pos,
				"//driftlint:snapshot on %s names unknown %s function %q", sp.name, role, name)
			return nil
		}
		for _, fd := range fds {
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					sel := pass.TypesInfo.Selections[n]
					if sel != nil && sel.Kind() == types.FieldVal &&
						driftlint.NamedOf(sel.Recv()) == sp.named {
						refs[sel.Obj().Name()] = true
					}
				case *ast.CompositeLit:
					if driftlint.NamedOf(pass.TypesInfo.TypeOf(n)) != sp.named {
						return true
					}
					keyed := false
					for _, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							keyed = true
							if id, ok := kv.Key.(*ast.Ident); ok {
								refs[id.Name] = true
							}
						}
					}
					if !keyed && len(n.Elts) > 0 {
						// Positional literal initializes every field.
						for i := 0; i < sp.fields.NumFields(); i++ {
							refs[sp.fields.Field(i).Name()] = true
						}
					}
				}
				return true
			})
		}
	}
	return refs
}
