// Package lockreg enforces mutex discipline on shared mutable structs
// marked
//
//	//driftlint:locked
//
// (core.Registry — read by every shard, appended to by concurrent
// selection runs). Inside the defining package, the struct's plain
// fields may be touched only (a) in methods of the struct that acquire
// the mutex (a .Lock()/.RLock() call lexically before the access, with
// the usual deferred unlock), (b) in methods whose name ends in
// "Locked" (caller holds the lock by contract), or (c) through keyed
// composite literals (construction happens before sharing). Any other
// access — from plain functions, other types' methods, or before the
// lock — is flagged; callers outside the package are already confined
// to the exported, locking accessors by the fields being unexported.
//
// Fields of sync/atomic types (atomic.Pointer[T], atomic.Uint64, …) are
// self-synchronized: every use goes through their atomic methods, so
// they are exempt the same way the mutex field itself is. This is what
// admits the epoch/copy-on-write snapshot pattern — writers serialize
// on the mutex and publish immutable state through an atomic pointer
// that readers load lock-free — without per-site suppressions.
package lockreg

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"videodrift/internal/analysis/driftlint"
)

// Analyzer is the lock-discipline checker.
var Analyzer = &driftlint.Analyzer{
	Name: "lockreg",
	Doc:  "restrict marked structs' field access to mutex-holding methods or exported accessors",
	Run:  run,
}

// target is one //driftlint:locked struct: its named type, the names of
// its mutex fields, and the names of its self-synchronized sync/atomic
// fields.
type target struct {
	named   *types.Named
	mutexes map[string]bool
	atomics map[string]bool
}

func run(pass *driftlint.Pass) error {
	targets := collectTargets(pass)
	if len(targets) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, targets)
		}
	}
	return nil
}

func collectTargets(pass *driftlint.Pass) []*target {
	var targets []*target
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.TYPE {
				continue
			}
			for _, s := range gen.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gen.Specs) == 1 {
					doc = gen.Doc
				}
				if !hasLockedDirective(doc) {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					pass.Reportf(ts.Pos(), "//driftlint:locked on %s, which is not a struct type", ts.Name.Name)
					continue
				}
				t := &target{named: named, mutexes: map[string]bool{}, atomics: map[string]bool{}}
				for i := 0; i < st.NumFields(); i++ {
					switch {
					case isMutex(st.Field(i).Type()):
						t.mutexes[st.Field(i).Name()] = true
					case isAtomic(st.Field(i).Type()):
						t.atomics[st.Field(i).Name()] = true
					}
				}
				if len(t.mutexes) == 0 && len(t.atomics) == 0 {
					pass.Reportf(ts.Pos(), "//driftlint:locked on %s, which has no sync.Mutex, sync.RWMutex, or sync/atomic field", ts.Name.Name)
					continue
				}
				targets = append(targets, t)
			}
		}
	}
	return targets
}

func hasLockedDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == "//driftlint:locked" || strings.HasPrefix(text, "//driftlint:locked ") {
			return true
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	named := driftlint.NamedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// isAtomic reports whether t is a sync/atomic type (Pointer[T], Uint64,
// Bool, Value, …): fields of these types synchronize themselves, every
// access going through their atomic methods.
func isAtomic(t types.Type) bool {
	named := driftlint.NamedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync/atomic"
}

// checkFunc inspects one function for accesses to any target's fields.
func checkFunc(pass *driftlint.Pass, fd *ast.FuncDecl, targets []*target) {
	for _, t := range targets {
		isMethod := methodOf(pass, fd) == t.named
		exemptName := isMethod && strings.HasSuffix(fd.Name.Name, "Locked")
		lockPos := firstLockPos(pass, fd.Body, t)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal ||
				driftlint.NamedOf(s.Recv()) != t.named {
				return true
			}
			if t.mutexes[s.Obj().Name()] {
				return true // touching the mutex itself is the point
			}
			if t.atomics[s.Obj().Name()] {
				return true // sync/atomic fields are self-synchronized
			}
			name := t.named.Obj().Name()
			switch {
			case !isMethod:
				pass.Reportf(sel.Sel.Pos(),
					"access to %s.%s outside %s's methods; go through its exported (locking) accessors",
					name, s.Obj().Name(), name)
			case exemptName:
				// *Locked methods document that the caller holds the lock.
			case lockPos == token.NoPos:
				pass.Reportf(sel.Sel.Pos(),
					"method (%s).%s reads %s.%s without acquiring its mutex",
					name, fd.Name.Name, name, s.Obj().Name())
			case sel.Sel.Pos() < lockPos:
				pass.Reportf(sel.Sel.Pos(),
					"%s.%s is accessed before the mutex is acquired at line %d",
					name, s.Obj().Name(), pass.Fset.Position(lockPos).Line)
			}
			return true
		})
	}
}

// methodOf returns the named receiver base type of fd, or nil.
func methodOf(pass *driftlint.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	return driftlint.NamedOf(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type))
}

// firstLockPos returns the position of the first <target>.<mutex>.Lock
// or .RLock call in the body, or NoPos.
func firstLockPos(pass *driftlint.Pass, body *ast.BlockStmt, t *target) token.Pos {
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[inner]
		if s == nil || s.Kind() != types.FieldVal ||
			driftlint.NamedOf(s.Recv()) != t.named || !t.mutexes[s.Obj().Name()] {
			return true
		}
		if pos == token.NoPos || call.Pos() < pos {
			pos = call.Pos()
		}
		return true
	})
	return pos
}
