package lockreg_test

import (
	"testing"

	"videodrift/internal/analysis/analysistest"
	"videodrift/internal/analysis/lockreg"
)

func TestLockReg(t *testing.T) {
	analysistest.Run(t, lockreg.Analyzer, "lockfix")
}
