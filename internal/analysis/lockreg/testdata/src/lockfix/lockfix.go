// Package lockfix exercises the lockreg analyzer.
package lockfix

import "sync"

// Reg mirrors core.Registry: a mutex-guarded append-only collection.
//
//driftlint:locked
type Reg struct {
	mu    sync.RWMutex
	items []int
}

// New constructs through a composite literal, which is exempt:
// construction happens before sharing.
func New(items ...int) *Reg { return &Reg{items: items} }

// Add write-locks before touching items.
func (r *Reg) Add(x int) {
	r.mu.Lock()
	r.items = append(r.items, x)
	r.mu.Unlock()
}

// Len read-locks.
func (r *Reg) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.items)
}

// lenLocked documents by its name that the caller holds the lock.
func (r *Reg) lenLocked() int { return len(r.items) }

var _ = (*Reg).lenLocked

// Bad never acquires the mutex.
func (r *Reg) Bad() int {
	return len(r.items) // want `method \(Reg\)\.Bad reads Reg\.items without acquiring its mutex`
}

// Early touches items before the Lock call.
func (r *Reg) Early() int {
	n := len(r.items) // want `Reg\.items is accessed before the mutex is acquired at line`
	r.mu.Lock()
	defer r.mu.Unlock()
	return n + len(r.items)
}

// Sneak reaches in from outside the methods.
func Sneak(r *Reg) int {
	return len(r.items) // want `access to Reg\.items outside Reg's methods; go through its exported \(locking\) accessors`
}

// Sampled tolerates the race with an explicit waiver.
func (r *Reg) Sampled() int {
	return len(r.items) //lint:allow lockreg approximate reads are fine for sampling
}

// NoMutex cannot be lock-checked.
//
//driftlint:locked
type NoMutex struct { // want `on NoMutex, which has no sync\.Mutex or sync\.RWMutex field`
	x int
}

var _ = NoMutex{}.x
