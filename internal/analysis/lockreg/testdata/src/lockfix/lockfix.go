// Package lockfix exercises the lockreg analyzer.
package lockfix

import (
	"sync"
	"sync/atomic"
)

// Reg mirrors core.Registry: a mutex-guarded append-only collection.
//
//driftlint:locked
type Reg struct {
	mu    sync.RWMutex
	items []int
}

// New constructs through a composite literal, which is exempt:
// construction happens before sharing.
func New(items ...int) *Reg { return &Reg{items: items} }

// Add write-locks before touching items.
func (r *Reg) Add(x int) {
	r.mu.Lock()
	r.items = append(r.items, x)
	r.mu.Unlock()
}

// Len read-locks.
func (r *Reg) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.items)
}

// lenLocked documents by its name that the caller holds the lock.
func (r *Reg) lenLocked() int { return len(r.items) }

var _ = (*Reg).lenLocked

// Bad never acquires the mutex.
func (r *Reg) Bad() int {
	return len(r.items) // want `method \(Reg\)\.Bad reads Reg\.items without acquiring its mutex`
}

// Early touches items before the Lock call.
func (r *Reg) Early() int {
	n := len(r.items) // want `Reg\.items is accessed before the mutex is acquired at line`
	r.mu.Lock()
	defer r.mu.Unlock()
	return n + len(r.items)
}

// Sneak reaches in from outside the methods.
func Sneak(r *Reg) int {
	return len(r.items) // want `access to Reg\.items outside Reg's methods; go through its exported \(locking\) accessors`
}

// Sampled tolerates the race with an explicit waiver.
func (r *Reg) Sampled() int {
	return len(r.items) //lint:allow lockreg approximate reads are fine for sampling
}

// NoMutex cannot be lock-checked.
//
//driftlint:locked
type NoMutex struct { // want `on NoMutex, which has no sync\.Mutex, sync\.RWMutex, or sync/atomic field`
	x int
}

var _ = NoMutex{}.x

// Cow mirrors the epoch/copy-on-write registry: writers serialize on mu
// and publish immutable snapshots through an atomic pointer that
// readers load lock-free. The atomic field is self-synchronized, so
// touching it without the mutex is fine everywhere.
//
//driftlint:locked
type Cow struct {
	mu   sync.Mutex
	snap atomic.Pointer[[]int]
	gen  int
}

// View loads the snapshot lock-free — allowed: snap is atomic.
func (c *Cow) View() []int {
	if p := c.snap.Load(); p != nil {
		return *p
	}
	return nil
}

// Publish copies, appends, and stores under the writer mutex; the plain
// gen field still demands the lock.
func (c *Cow) Publish(x int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	next := append(append([]int(nil), c.View()...), x)
	c.snap.Store(&next)
}

// NewCow stores through the atomic during construction — allowed even
// from a plain function.
func NewCow(items []int) *Cow {
	c := &Cow{}
	c.snap.Store(&items)
	return c
}

// BadGen reads the plain generation counter without the mutex.
func (c *Cow) BadGen() int {
	return c.gen // want `method \(Cow\)\.BadGen reads Cow\.gen without acquiring its mutex`
}

// AtomicOnly has no mutex at all: every field synchronizes itself, so
// the marker is satisfied.
//
//driftlint:locked
type AtomicOnly struct {
	n atomic.Int64
}

// Bump needs no lock.
func (a *AtomicOnly) Bump() { a.n.Add(1) }
