// Package leakcheck is the runtime complement to the goroleak static
// analyzer: where goroleak proves spawn sites have a stop path at
// compile time, leakcheck verifies at test exit that the stop paths
// were actually taken. A package's TestMain hands control to Main,
// which runs the tests and then diffs the live goroutine dump against
// an allowlist, retrying with exponential backoff so goroutines still
// winding down after the last test get a chance to finish. Leaks that
// the static side waived with //lint:allow still fail here — the two
// gates are independent by design.
//
// Only goroutines whose stacks mention this module are reported, so
// runtime and testing internals never trip the gate; what can trip it
// is a repo goroutine parked in a channel receive or ticker loop with
// nobody left to release it.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePrefix marks the stack frames this harness cares about: a
// goroutine leak is only reportable when repo code is on the stack or
// at the creation site.
const modulePrefix = "videodrift/"

// defaultAllow waives the harness's own frames: when Check runs inside
// a test, the package's main goroutine is parked in TestMain → m.Run
// with this package (module-prefixed) on its stack — that is the gate,
// not a leak.
var defaultAllow = []string{
	"videodrift/internal/analysis/leakcheck.",
	".TestMain(",
}

type config struct {
	allow   []string
	maxWait time.Duration
}

// Option configures a Check or Main call.
type Option func(*config)

// Allow waives goroutines whose stack text contains any of the given
// substrings — typically the qualified name of a deliberately
// process-lifetime goroutine, e.g.
// "videodrift/internal/parallel.(*Pool).spawn.func1" for parked shared
// pool workers.
func Allow(substrs ...string) Option {
	return func(c *config) { c.allow = append(c.allow, substrs...) }
}

// MaxWait bounds the retry-with-backoff window granted to goroutines
// still shutting down (default one second).
func MaxWait(d time.Duration) Option {
	return func(c *config) { c.maxWait = d }
}

// Main wraps a package's TestMain: run the tests, then gate a clean
// exit on a leak-free goroutine dump.
func Main(m *testing.M, opts ...Option) {
	code := m.Run()
	if code == 0 {
		if err := Check(opts...); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check reports an error if module goroutines beyond the allowlist are
// still alive. It retries with exponential backoff (1ms doubling, up
// to MaxWait cumulative) before declaring a leak, so a goroutine whose
// stop signal fired just before the check does not race it.
func Check(opts ...Option) error {
	cfg := config{allow: defaultAllow, maxWait: time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	var leaked []string
	waited := time.Duration(0)
	for delay := time.Millisecond; ; delay *= 2 {
		leaked = leakedStacks(&cfg)
		if len(leaked) == 0 {
			return nil
		}
		if waited+delay > cfg.maxWait {
			break
		}
		time.Sleep(delay)
		waited += delay
	}
	return fmt.Errorf("%d leaked goroutine(s) after %v:\n\n%s",
		len(leaked), waited, strings.Join(leaked, "\n\n"))
}

// leakedStacks returns the stack text of every live module goroutine
// not covered by the allowlist. The current goroutine (the harness
// itself) is never counted.
func leakedStacks(cfg *config) []string {
	var leaked []string
	for _, g := range dumpStacks() {
		if !strings.Contains(g, modulePrefix) {
			continue
		}
		allowed := false
		for _, a := range cfg.allow {
			if strings.Contains(g, a) {
				allowed = true
				break
			}
		}
		if !allowed {
			leaked = append(leaked, g)
		}
	}
	return leaked
}

// dumpStacks snapshots every goroutine's stack except the caller's
// own, one text block per goroutine.
func dumpStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	blocks := strings.Split(strings.TrimSpace(string(buf)), "\n\n")
	if len(blocks) > 0 {
		// runtime.Stack(all=true) lists the calling goroutine first.
		blocks = blocks[1:]
	}
	return blocks
}
