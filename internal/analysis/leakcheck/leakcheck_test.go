package leakcheck_test

import (
	"strings"
	"testing"
	"time"

	"videodrift/internal/analysis/leakcheck"
)

// TestMain gates this package on its own harness — the deliberate
// leaks below all release their goroutines before returning.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}

// TestCheckCatchesDeliberateLeak parks a goroutine on a channel nobody
// closes (yet) and demands Check call it out by name.
func TestCheckCatchesDeliberateLeak(t *testing.T) {
	stop := make(chan struct{})
	go leakDeliberately(stop)

	err := leakcheck.Check(leakcheck.MaxWait(50 * time.Millisecond))
	if err == nil {
		t.Fatal("Check missed a goroutine parked on an unclosed channel")
	}
	if !strings.Contains(err.Error(), "leakDeliberately") {
		t.Fatalf("leak report does not name the leaking function:\n%v", err)
	}

	close(stop)
	if err := leakcheck.Check(); err != nil {
		t.Fatalf("Check still reports a leak after the goroutine was released:\n%v", err)
	}
}

func leakDeliberately(stop <-chan struct{}) { <-stop }

// TestCheckWaitsForWindDown proves the backoff loop: a goroutine that
// exits shortly after Check starts must not be reported.
func TestCheckWaitsForWindDown(t *testing.T) {
	go windDown()
	if err := leakcheck.Check(); err != nil {
		t.Fatalf("Check reported a goroutine that was already winding down:\n%v", err)
	}
}

func windDown() { time.Sleep(20 * time.Millisecond) }

// TestAllowWaivesNamedGoroutine proves the allowlist: the same
// deliberate leak passes when its function is waived, and the report
// stays empty even at a generous wait.
func TestAllowWaivesNamedGoroutine(t *testing.T) {
	stop := make(chan struct{})
	defer close(stop)
	go leakDeliberately(stop)

	err := leakcheck.Check(
		leakcheck.Allow("leakDeliberately"),
		leakcheck.MaxWait(50*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("Check reported an allowlisted goroutine:\n%v", err)
	}
}
