// Package wiresync cross-checks the wire protocol's codec coverage:
// for every message struct marked
//
//	//driftlint:wire encode=Func[,Recv.Method...] decode=Func[,...] stream=Func[,...]
//
// each field must be referenced (selected, or set in a keyed composite
// literal) in at least one encode function AND one decode function —
// adding a field to a protocol message without extending both sides
// then fails lint instead of silently shipping zero values to peers.
//
// On top of field parity, the integrity envelope is checked through
// the whole-program call graph:
//
//   - every encode function must reach a checksum computation (a call
//     into hash/crc32 anywhere in its call graph — typically via a
//     shared header helper), so no message type can ship without
//     corruption detection;
//   - every stream= function (the framing reader that consumes the
//     header before payload decoding) must both verify a checksum and
//     reference the package's Version constant, so version skew and
//     payload damage surface as typed errors, not garbage frames.
//
// The call-graph requirement is what makes the check survive
// refactors: the CRC lives in appendHeader, not in each encoder, and
// that is fine — what must never happen is an encoder that reaches no
// checksum at all.
package wiresync

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"videodrift/internal/analysis/driftlint"
)

// Analyzer is the wire-codec parity and integrity checker.
var Analyzer = &driftlint.Analyzer{
	Name: "wiresync",
	Doc:  "require every field of a marked wire message to be covered by encode and decode, and the framing path to checksum and version-check",
	Run:  run,
}

// spec is one parsed //driftlint:wire directive.
type spec struct {
	name   string
	pos    token.Pos
	named  *types.Named
	fields *types.Struct
	encode []string
	decode []string
	stream []string
}

func run(pass *driftlint.Pass) error {
	specs := collectSpecs(pass)
	if len(specs) == 0 {
		return nil
	}
	decls := collectFuncs(pass)
	checkedStream := map[string]bool{}
	for _, sp := range specs {
		enc := referencedFields(pass, sp, sp.encode, decls, "encode")
		dec := referencedFields(pass, sp, sp.decode, decls, "decode")
		if enc == nil || dec == nil {
			continue // directive itself was bad; already reported
		}
		for i := 0; i < sp.fields.NumFields(); i++ {
			f := sp.fields.Field(i)
			if f.Name() == "_" {
				continue
			}
			if !enc[f.Name()] {
				pass.Reportf(f.Pos(),
					"field %s of wire message %s is not referenced by its encode path (%s); peers would receive zero values for it",
					f.Name(), sp.name, strings.Join(sp.encode, ", "))
			}
			if !dec[f.Name()] {
				pass.Reportf(f.Pos(),
					"field %s of wire message %s is not referenced by its decode path (%s); its wire bytes would be dropped on receive",
					f.Name(), sp.name, strings.Join(sp.decode, ", "))
			}
		}
		for _, name := range sp.encode {
			for _, fd := range decls[name] {
				if fd.Body == nil {
					continue
				}
				if !reaches(pass, fd, isCRCCall) {
					pass.Reportf(fd.Pos(),
						"wire encoder %s never computes a payload checksum (no call into hash/crc32 anywhere in its call graph); receivers cannot detect corruption",
						name)
				}
			}
		}
		for _, name := range sp.stream {
			if checkedStream[name] {
				continue // several messages share one framing reader
			}
			checkedStream[name] = true
			fds := decls[name]
			if len(fds) == 0 {
				pass.Reportf(sp.pos,
					"//driftlint:wire on %s names unknown stream function %q", sp.name, name)
				continue
			}
			for _, fd := range fds {
				if fd.Body == nil {
					continue
				}
				if !reaches(pass, fd, isCRCCall) {
					pass.Reportf(fd.Pos(),
						"wire stream reader %s never verifies a payload checksum (no call into hash/crc32 anywhere in its call graph); corrupted payloads would decode as frames",
						name)
				}
				if !reaches(pass, fd, versionConstRef(pass.Pkg)) {
					pass.Reportf(fd.Pos(),
						"wire stream reader %s never checks the package's Version constant; version skew would decode garbage instead of failing typed",
						name)
				}
			}
		}
	}
	return nil
}

// reaches reports whether the declaration's whole-program call graph
// contains a node matched by pred.
func reaches(pass *driftlint.Pass, fd *ast.FuncDecl, pred func(info *types.Info, n ast.Node) bool) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	for _, fi := range pass.Prog.Reachable([]*types.Func{fn}, 0) {
		found := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if pred(fi.Pkg.Info, n) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isCRCCall matches any call into hash/crc32.
func isCRCCall(info *types.Info, n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := driftlint.CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "hash/crc32"
}

// versionConstRef matches a use of the package-level constant named
// Version in the message's own package.
func versionConstRef(pkg *types.Package) func(info *types.Info, n ast.Node) bool {
	return func(info *types.Info, n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return false
		}
		c, ok := info.Uses[id].(*types.Const)
		return ok && c.Name() == "Version" && c.Pkg() == pkg &&
			c.Parent() == pkg.Scope()
	}
}

// collectSpecs finds marked struct types and parses their directives.
func collectSpecs(pass *driftlint.Pass) []*spec {
	var specs []*spec
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.TYPE {
				continue
			}
			for _, s := range gen.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gen.Specs) == 1 {
					doc = gen.Doc
				}
				line, ok := directiveLine(doc)
				if !ok {
					continue
				}
				sp := parseSpec(pass, ts, line)
				if sp != nil {
					specs = append(specs, sp)
				}
			}
		}
	}
	return specs
}

func directiveLine(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if rest, ok := strings.CutPrefix(text, "//driftlint:wire"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

func parseSpec(pass *driftlint.Pass, ts *ast.TypeSpec, line string) *spec {
	sp := &spec{name: ts.Name.Name, pos: ts.Pos()}
	for _, field := range strings.Fields(line) {
		switch {
		case strings.HasPrefix(field, "encode="):
			sp.encode = strings.Split(strings.TrimPrefix(field, "encode="), ",")
		case strings.HasPrefix(field, "decode="):
			sp.decode = strings.Split(strings.TrimPrefix(field, "decode="), ",")
		case strings.HasPrefix(field, "stream="):
			sp.stream = strings.Split(strings.TrimPrefix(field, "stream="), ",")
		default:
			pass.Reportf(ts.Pos(), "malformed //driftlint:wire directive: unknown token %q", field)
			return nil
		}
	}
	if len(sp.encode) == 0 || len(sp.decode) == 0 || len(sp.stream) == 0 {
		pass.Reportf(ts.Pos(), "//driftlint:wire on %s needs encode=, decode= and stream= function lists", sp.name)
		return nil
	}
	obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Pos(), "//driftlint:wire on %s, which is not a struct type", sp.name)
		return nil
	}
	sp.named = named
	sp.fields = st
	return sp
}

// collectFuncs indexes the package's function declarations by bare name
// and by "Receiver.Name".
func collectFuncs(pass *driftlint.Pass) map[string][]*ast.FuncDecl {
	decls := map[string][]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			decls[fd.Name.Name] = append(decls[fd.Name.Name], fd)
			if recv := driftlint.RecvBaseName(fd); recv != "" {
				decls[recv+"."+fd.Name.Name] = append(decls[recv+"."+fd.Name.Name], fd)
			}
		}
	}
	return decls
}

// referencedFields walks the named functions and returns the set of
// sp's field names they reference. A nil return means the directive
// named a function that does not exist (reported here).
func referencedFields(pass *driftlint.Pass, sp *spec, names []string, decls map[string][]*ast.FuncDecl, role string) map[string]bool {
	refs := map[string]bool{}
	for _, name := range names {
		fds := decls[name]
		if len(fds) == 0 {
			pass.Reportf(sp.pos,
				"//driftlint:wire on %s names unknown %s function %q", sp.name, role, name)
			return nil
		}
		for _, fd := range fds {
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					sel := pass.TypesInfo.Selections[n]
					if sel != nil && sel.Kind() == types.FieldVal &&
						driftlint.NamedOf(sel.Recv()) == sp.named {
						refs[sel.Obj().Name()] = true
					}
				case *ast.CompositeLit:
					if driftlint.NamedOf(pass.TypesInfo.TypeOf(n)) != sp.named {
						return true
					}
					keyed := false
					for _, elt := range n.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							keyed = true
							if id, ok := kv.Key.(*ast.Ident); ok {
								refs[id.Name] = true
							}
						}
					}
					if !keyed && len(n.Elts) > 0 {
						// Positional literal initializes every field.
						for i := 0; i < sp.fields.NumFields(); i++ {
							refs[sp.fields.Field(i).Name()] = true
						}
					}
				}
				return true
			})
		}
	}
	return refs
}
