package wiresync_test

import (
	"testing"

	"videodrift/internal/analysis/analysistest"
	"videodrift/internal/analysis/wiresync"
)

func TestWiresync(t *testing.T) {
	analysistest.Run(t, wiresync.Analyzer, "wirefix")
}
