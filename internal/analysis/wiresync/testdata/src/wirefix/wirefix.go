// Package wirefix exercises wiresync: field parity between wire
// encoders and decoders, checksum reachability, and the stream
// reader's version/CRC coverage.
package wirefix

import (
	"errors"
	"hash/crc32"
)

// Version is the toy protocol's version byte.
const Version = 7

var errBad = errors.New("wirefix: bad frame")

// header prepends the version byte and a payload CRC — the shared
// integrity envelope the encoders reach transitively.
func header(payload []byte) []byte {
	out := []byte{Version}
	return appendU32(out, crc32.ChecksumIEEE(payload))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return appendU32(appendU32(b, uint32(v>>32)), uint32(v))
}

func readU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func readU64(b []byte) uint64 {
	return uint64(readU32(b))<<32 | uint64(readU32(b[4:]))
}

// ReadFrame is the framing reader: version check, then CRC check.
func ReadFrame(b []byte) ([]byte, error) {
	if len(b) < 5 {
		return nil, errBad
	}
	if b[0] != Version {
		return nil, errBad
	}
	if crc32.ChecksumIEEE(b[5:]) != readU32(b[1:5]) {
		return nil, errBad
	}
	return b[5:], nil
}

// Ping is fully covered: every field crosses the wire both ways.
//
//driftlint:wire encode=EncodePing decode=DecodePing stream=ReadFrame
type Ping struct {
	Seq  uint64
	Note string // want `field Note of wire message Ping is not referenced by its decode path`
}

func EncodePing(p Ping) []byte {
	payload := appendU64(nil, p.Seq)
	payload = append(payload, p.Note...)
	return append(header(payload), payload...)
}

// DecodePing deliberately drops Note: the parity check must catch the
// decoder falling behind the struct.
func DecodePing(payload []byte) (Ping, error) {
	if len(payload) < 8 {
		return Ping{}, errBad
	}
	return Ping{Seq: readU64(payload)}, nil
}

// Pong round-trips completely: no findings.
//
//driftlint:wire encode=EncodePong decode=DecodePong stream=ReadFrame
type Pong struct {
	Seq uint64
	OK  bool
}

func EncodePong(p Pong) []byte {
	payload := appendU64(nil, p.Seq)
	if p.OK {
		payload = append(payload, 1)
	} else {
		payload = append(payload, 0)
	}
	return append(header(payload), payload...)
}

func DecodePong(payload []byte) (Pong, error) {
	if len(payload) != 9 {
		return Pong{}, errBad
	}
	return Pong{Seq: readU64(payload), OK: payload[8] != 0}, nil
}

// Raw's encoder skips the integrity envelope entirely.
//
//driftlint:wire encode=EncodeRaw decode=DecodeRaw stream=ReadFrame
type Raw struct {
	N uint64
}

// EncodeRaw ships naked bytes: no CRC anywhere in its call graph.
func EncodeRaw(r Raw) []byte { // want `wire encoder EncodeRaw never computes a payload checksum`
	return appendU64(nil, r.N)
}

func DecodeRaw(payload []byte) (Raw, error) {
	if len(payload) != 8 {
		return Raw{}, errBad
	}
	return Raw{N: readU64(payload)}, nil
}

// Loose rides a framing reader that verifies nothing.
//
//driftlint:wire encode=EncodeLoose decode=DecodeLoose stream=ReadLoose
type Loose struct {
	N uint64
}

// ReadLoose neither version-checks nor CRC-checks the frame.
func ReadLoose(b []byte) ([]byte, error) { // want `wire stream reader ReadLoose never verifies a payload checksum` `wire stream reader ReadLoose never checks the package's Version constant`
	return b, nil
}

func EncodeLoose(l Loose) []byte {
	payload := appendU64(nil, l.N)
	return append(header(payload), payload...)
}

func DecodeLoose(payload []byte) (Loose, error) {
	if len(payload) != 8 {
		return Loose{}, errBad
	}
	return Loose{N: readU64(payload)}, nil
}

// Ghost's directive names a function that does not exist.
//
//driftlint:wire encode=EncodeGhost decode=DecodePing stream=ReadFrame
type Ghost struct { // want `//driftlint:wire on Ghost names unknown encode function "EncodeGhost"`
	X int
}

// Half's uncovered field is deliberately waived.
//
//driftlint:wire encode=EncodeHalf decode=DecodeHalf stream=ReadFrame
type Half struct {
	A uint64
	//lint:allow wiresync fixture: field deliberately uncovered to prove suppression works
	B uint64
}

func EncodeHalf(h Half) []byte {
	payload := appendU64(appendU64(nil, h.A), h.B)
	return append(header(payload), payload...)
}

func DecodeHalf(payload []byte) (Half, error) {
	if len(payload) < 8 {
		return Half{}, errBad
	}
	return Half{A: readU64(payload)}, nil
}
