package floatcmp_test

import (
	"testing"

	"videodrift/internal/analysis/analysistest"
	"videodrift/internal/analysis/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, "floatfix", "floatoff")
}
