// Package floatcmp forbids == and != on floating-point operands inside
// the statistical packages, where the compared values are p-values,
// martingale wealth, Brier scores and other quantities produced by
// arithmetic whose exact bit pattern is an implementation detail. An
// accidental equality there turns a statistical property into a
// bit-pattern coincidence that holds on one code path and breaks after
// any refactor. Intentional exact comparisons (conformal tie counting,
// the x != x NaN probe) stay, via the NaN idiom exemption or an
// explicit //lint:allow floatcmp with a reason.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"videodrift/internal/analysis/driftlint"
)

// StatisticalPackages are the import paths where float equality is
// forbidden by default. Other packages opt in with a
// //driftlint:floatstrict file comment.
var StatisticalPackages = []string{
	"videodrift/internal/conformal",
	"videodrift/internal/stats",
	"videodrift/internal/core",
}

// Analyzer is the float-comparison checker.
var Analyzer = &driftlint.Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= on floating-point values in the statistical packages outside the explicit allowlist",
	Run:  run,
}

func run(pass *driftlint.Pass) error {
	if !applies(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

func applies(pass *driftlint.Pass) bool {
	for _, p := range StatisticalPackages {
		if pass.Pkg.Path() == p {
			return true
		}
	}
	return pass.HasFileDirective("floatstrict")
}

func checkBinary(pass *driftlint.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	if !driftlint.IsFloat(pass.TypesInfo.TypeOf(e.X)) &&
		!driftlint.IsFloat(pass.TypesInfo.TypeOf(e.Y)) {
		return
	}
	if e.Op == token.NEQ && types.ExprString(e.X) == types.ExprString(e.Y) {
		return // x != x is the portable NaN test
	}
	pass.Reportf(e.OpPos,
		"floating-point %s comparison in a statistical package; equality of computed floats is a bit-pattern accident — compare with a tolerance, or annotate the intent with //lint:allow floatcmp",
		e.Op)
}

// checkSwitch flags `switch x { case a: }` with a float tag, which
// performs the same hidden equality per case.
func checkSwitch(pass *driftlint.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil {
		return
	}
	if driftlint.IsFloat(pass.TypesInfo.TypeOf(s.Tag)) {
		pass.Reportf(s.Tag.Pos(),
			"switch on a floating-point value compares with == per case; restructure as ordered comparisons or annotate with //lint:allow floatcmp")
	}
}
