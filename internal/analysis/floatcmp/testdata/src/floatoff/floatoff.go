// Package floatoff has no strict-float opt-in and is not one of the
// statistical packages, so exact comparisons here are not flagged.
package floatoff

// Eq is not flagged outside the statistical packages.
func Eq(a, b float64) bool { return a == b }
