// Package floatfix opts in to strict float comparison.
//
//driftlint:floatstrict
package floatfix

// Eq compares computed floats exactly.
func Eq(a, b float64) bool {
	return a == b // want `floating-point == comparison in a statistical package`
}

// Neq on distinct operands is flagged too.
func Neq(a, b float64) bool {
	return a != b // want `floating-point != comparison in a statistical package`
}

// IsNaN uses the portable self-comparison idiom, which is exempt.
func IsNaN(x float64) bool { return x != x }

// Ints are not floats.
func Ints(a, b int) bool { return a == b }

// ZeroSentinel documents an intentional exact comparison.
func ZeroSentinel(x float64) bool {
	return x == 0 //lint:allow floatcmp zero is assigned as a sentinel, never computed
}

// Pick switches on a float, which hides an == per case.
func Pick(x float64) int {
	switch x { // want `switch on a floating-point value compares with == per case`
	case 0:
		return 0
	}
	return 1
}
