package experiments

import (
	"fmt"
	"strings"
	"time"

	"videodrift/internal/classifier"
	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/query"
	"videodrift/internal/stats"
)

// SelectionOutcome is one model-selection measurement on a post-drift
// window.
type SelectionOutcome struct {
	Sequence     string
	MSBOSelected string // chosen model name ("" = train new)
	MSBISelected string
	MSBOCorrect  bool
	MSBICorrect  bool
	MSBOTime     time.Duration
	MSBITime     time.Duration
	MSBOFrames   int
	MSBIFrames   int
}

// Table8Result aggregates the model-selection measurements of one dataset
// (Tables 7 and 8, and the selection half of Figure 6).
type Table8Result struct {
	Dataset      string
	Models       int
	Outcomes     []SelectionOutcome
	ODINTime     time.Duration // ODIN-Select over the full stream
	ODINFrames   int
	ODINPerFrame time.Duration
}

// RunTable8 measures, for each drift in the dataset, how long MSBO and
// MSBI need to select a model (and whether they pick the right one), and
// how long ODIN-Select's per-frame selection costs over the whole stream
// — reproducing the paper's Tables 7/8 comparison where the one-shot
// selectors win by an order of magnitude in total.
func RunTable8(ds *dataset.Dataset, cfg Config) Table8Result {
	env := BuildEnv(ds, cfg, query.Count)
	res := Table8Result{Dataset: ds.Name, Models: env.Registry.Len()}
	rng := stats.NewRNG(cfg.Seed + 7)
	th := core.CalibrateMSBO(env.Registry.Entries())
	msboCfg := core.DefaultMSBOConfig()
	msbiCfg := core.DefaultMSBIConfig()
	labeler := env.Labeler()

	for seq := range ds.Sequences {
		// Post-drift window: fresh frames of the new condition.
		window := ds.TransitionStream(seq, 5, 64).Collect(-1)[5:]
		out := SelectionOutcome{Sequence: ds.Sequences[seq].Name}

		start := time.Now()
		labeled := make([]classifier.Sample, msboCfg.WT)
		for i := 0; i < msboCfg.WT; i++ {
			labeled[i] = env.Registry.Entries()[0].QuerySample(window[i], labeler(window[i]))
		}
		msbo := core.MSBO(labeled, env.Registry.Entries(), th, msboCfg)
		out.MSBOTime = time.Since(start)
		out.MSBOFrames = msbo.FramesUsed

		start = time.Now()
		msbi := core.MSBI(window, env.Registry.Entries(), msbiCfg, rng.Split())
		out.MSBITime = time.Since(start)
		out.MSBIFrames = msbi.FramesUsed

		want := ds.Sequences[seq].Name
		if msbo.Selected != nil {
			out.MSBOSelected = msbo.Selected.Name
		}
		if msbi.Selected != nil {
			out.MSBISelected = msbi.Selected.Name
		}
		out.MSBOCorrect = out.MSBOSelected == want
		out.MSBICorrect = out.MSBISelected == want
		res.Outcomes = append(res.Outcomes, out)
	}

	// ODIN-Select: per-frame selection over the full stream.
	sys := env.NewODIN()
	stream := ds.Stream()
	start := time.Now()
	for {
		f, ok := stream.Next()
		if !ok {
			break
		}
		sys.Process(f)
		res.ODINFrames++
	}
	res.ODINTime = time.Since(start)
	if res.ODINFrames > 0 {
		res.ODINPerFrame = res.ODINTime / time.Duration(res.ODINFrames)
	}
	return res
}

// Totals returns the summed selection times (the Table 8 row).
func (r Table8Result) Totals() (msbo, msbi time.Duration) {
	for _, o := range r.Outcomes {
		msbo += o.MSBOTime
		msbi += o.MSBITime
	}
	return msbo, msbi
}

// Accuracy returns the fraction of drifts for which each selector picked
// the matching model.
func (r Table8Result) Accuracy() (msbo, msbi float64) {
	if len(r.Outcomes) == 0 {
		return 0, 0
	}
	for _, o := range r.Outcomes {
		if o.MSBOCorrect {
			msbo++
		}
		if o.MSBICorrect {
			msbi++
		}
	}
	n := float64(len(r.Outcomes))
	return msbo / n, msbi / n
}

// Render formats the Tables 7/8 rows for this dataset.
func (r Table8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 8 — model selection on %s (%d available models)\n", r.Dataset, r.Models)
	fmt.Fprintf(&b, "%-10s %14s %14s %10s %10s\n", "drift to", "MSBO (ms)", "MSBI (ms)", "MSBO pick", "MSBI pick")
	for _, o := range r.Outcomes {
		fmt.Fprintf(&b, "%-10s %14.3f %14.3f %10s %10s\n",
			o.Sequence, o.MSBOTime.Seconds()*1e3, o.MSBITime.Seconds()*1e3,
			pickStr(o.MSBOSelected, o.MSBOCorrect), pickStr(o.MSBISelected, o.MSBICorrect))
	}
	msboT, msbiT := r.Totals()
	msboA, msbiA := r.Accuracy()
	fmt.Fprintf(&b, "totals: MSBO %.3f ms (acc %.2f), MSBI %.3f ms (acc %.2f), ODIN-Select %s s over %d frames\n",
		msboT.Seconds()*1e3, msboA, msbiT.Seconds()*1e3, msbiA,
		fmtSeconds(r.ODINTime.Seconds()), r.ODINFrames)
	if r.ODINFrames > 0 {
		var o SelectionOutcome
		if len(r.Outcomes) > 0 {
			o = r.Outcomes[0]
		}
		fmt.Fprintf(&b, "Table 7 — per frame: MSBO %.3f ms, MSBI %.3f ms, ODIN-Select %.4f ms\n",
			perFrameMS(o.MSBOTime, o.MSBOFrames), perFrameMS(o.MSBITime, o.MSBIFrames),
			r.ODINPerFrame.Seconds()*1e3)
	}
	return b.String()
}

func pickStr(name string, correct bool) string {
	if name == "" {
		name = "(new)"
	}
	if correct {
		return name + "*"
	}
	return name
}

func perFrameMS(d time.Duration, frames int) float64 {
	if frames == 0 {
		return 0
	}
	return d.Seconds() * 1e3 / float64(frames)
}

// Fig6Result reproduces Figure 6 for one dataset: model invocations per
// frame, per sequence, for the pipeline (always 1) versus ODIN-Select.
type Fig6Result struct {
	Dataset   string
	Sequences []string
	Pipeline  []float64 // invocations per frame per sequence (DI+MSBO/MSBI)
	ODIN      []float64
}

// RunFig6 streams each sequence through the pipeline and through ODIN,
// recording the invocations-per-frame ratio the paper's Figure 6 plots.
func RunFig6(ds *dataset.Dataset, cfg Config) Fig6Result {
	env := BuildEnv(ds, cfg, query.Count)
	res := Fig6Result{Dataset: ds.Name}

	pipe := core.NewPipeline(env.Registry, env.Labeler(), env.PipelineConfig(core.SelectorMSBO))
	sys := env.NewODIN()

	seqLen := ds.SeqLength
	stream := ds.Stream()
	// Skip warmup.
	for i := 0; i < ds.WarmupLen; i++ {
		f, _ := stream.Next()
		pipe.Process(f)
		sys.Process(f)
	}
	for seq := range ds.Sequences {
		pInv, oInv := 0, 0
		for i := 0; i < seqLen; i++ {
			f, ok := stream.Next()
			if !ok {
				break
			}
			pInv += pipe.Process(f).Invocations
			oInv += sys.Process(f).Invocations
		}
		res.Sequences = append(res.Sequences, ds.Sequences[seq].Name)
		res.Pipeline = append(res.Pipeline, float64(pInv)/float64(seqLen))
		res.ODIN = append(res.ODIN, float64(oInv)/float64(seqLen))
	}
	return res
}

// Render formats the Figure 6 series.
func (r Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — model invocations per frame, %s\n", r.Dataset)
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "sequence", "MSBO/MSBI", "ODIN-Select")
	for i, s := range r.Sequences {
		fmt.Fprintf(&b, "%-10s %12.3f %12.3f\n", s, r.Pipeline[i], r.ODIN[i])
	}
	return b.String()
}
