package experiments

import (
	"math"
	"strings"
	"testing"

	"videodrift/internal/dataset"
	"videodrift/internal/query"
)

func TestTable5MatchesPaperShape(t *testing.T) {
	res := RunTable5(QuickConfig())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	want := map[string]struct {
		size int
		obj  float64
	}{
		"BDD":    {80000, 9.2},
		"Detrac": {30000, 17.2},
		"Tokyo":  {45000, 19.2},
	}
	for _, row := range res.Rows {
		w := want[row.Name]
		if row.StreamSize != w.size {
			t.Errorf("%s stream size = %d, want %d", row.Name, row.StreamSize, w.size)
		}
		if math.Abs(row.ObjPerFrame-w.obj) > 0.3*w.obj {
			t.Errorf("%s obj/frame = %v, paper has %v", row.Name, row.ObjPerFrame, w.obj)
		}
	}
	if !strings.Contains(res.Render(), "Table 5") {
		t.Error("render missing header")
	}
}

func TestFig3DriftDetectionShape(t *testing.T) {
	cfg := QuickConfig()
	res := RunFig3(dataset.Detrac(cfg.Scale), cfg)
	if len(res.Lags) != 5 {
		t.Fatalf("lags = %d", len(res.Lags))
	}
	diDetected, odDetected := 0, 0
	for _, l := range res.Lags {
		if l.DILag >= 0 {
			diDetected++
		}
		if l.ODINLag >= 0 {
			odDetected++
		}
		if l.DIFalse > 1 {
			t.Errorf("%s: DI false positives = %d", l.Sequence, l.DIFalse)
		}
	}
	if diDetected < 4 {
		t.Errorf("DI detected only %d/5 drifts", diDetected)
	}
	if odDetected < 3 {
		t.Errorf("ODIN detected only %d/5 drifts", odDetected)
	}
	// The headline shapes: DI detects in fewer frames on average and
	// spends at most half the monitoring time (Table 6 claims >= 2x).
	di, od := res.MeanLags()
	if diDetected >= 4 && odDetected >= 3 && di > od {
		t.Errorf("DI mean lag %v > ODIN mean lag %v", di, od)
	}
	if res.DITime > res.ODINTime {
		t.Errorf("DI time %v > ODIN time %v", res.DITime, res.ODINTime)
	}
	if !strings.Contains(res.Render(), "Figure 3") {
		t.Error("render missing header")
	}
}

func TestFig4SlowDriftShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Scale = 0.05 // the transition needs room to unfold
	res := RunFig4(cfg)
	if res.DILag < 0 {
		t.Fatal("DI missed the slow drift")
	}
	if res.ODINLag >= 0 && res.DILag > res.ODINLag {
		t.Errorf("DI lag %d > ODIN lag %d on slow drift", res.DILag, res.ODINLag)
	}
	if res.DILag > res.Transition+600 {
		t.Errorf("DI lag %d beyond the evaluated horizon", res.DILag)
	}
	if !strings.Contains(res.Render(), "Figure 4") {
		t.Error("render missing header")
	}
}

func TestFig5BrierSeparatesBetterThanAccuracy(t *testing.T) {
	res := RunFig5(QuickConfig())
	if len(res.Accuracy) != 4 || len(res.Brier) != 4 {
		t.Fatalf("matrix shape wrong")
	}
	// The matching model should hold the Brier diagonal at least as
	// reliably as the accuracy diagonal (the paper's point: Brier is the
	// more robust selection signal), and separate by a real margin.
	diagWins := func(better func(a, b float64) bool, m [][]float64) int {
		wins := 0
		for j := range res.Sequences {
			best := 0
			for i := range res.Sequences {
				if better(m[i][j], m[best][j]) {
					best = i
				}
			}
			if best == j {
				wins++
			}
		}
		return wins
	}
	brierWins := diagWins(func(a, b float64) bool { return a < b }, res.Brier)
	accWins := diagWins(func(a, b float64) bool { return a > b }, res.Accuracy)
	if brierWins < accWins {
		t.Errorf("Brier diagonal wins %d < accuracy diagonal wins %d", brierWins, accWins)
	}
	if brierWins < 2 {
		t.Errorf("matching model won the Brier column only %d/4 times", brierWins)
	}
	if _, brierGap := res.Separation(); brierGap <= 0.05 {
		t.Errorf("Brier separation %.3f — no real margin", brierGap)
	}
	if !strings.Contains(res.Render(), "Figure 5") {
		t.Error("render missing header")
	}
}

func TestFig6InvocationShape(t *testing.T) {
	cfg := QuickConfig()
	res := RunFig6(dataset.Tokyo(cfg.Scale), cfg)
	if len(res.Sequences) != 3 {
		t.Fatalf("sequences = %d", len(res.Sequences))
	}
	for i := range res.Sequences {
		if math.Abs(res.Pipeline[i]-1.0) > 1e-9 {
			t.Errorf("pipeline invocations/frame = %v on %s, must be exactly 1", res.Pipeline[i], res.Sequences[i])
		}
		if res.ODIN[i] < 0.99 {
			t.Errorf("ODIN invocations/frame = %v on %s", res.ODIN[i], res.Sequences[i])
		}
	}
	if !strings.Contains(res.Render(), "Figure 6") {
		t.Error("render missing header")
	}
}

func TestTable8SelectionShape(t *testing.T) {
	cfg := QuickConfig()
	res := RunTable8(dataset.BDD(cfg.Scale), cfg)
	if len(res.Outcomes) != 4 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	msboAcc, msbiAcc := res.Accuracy()
	// MSBI reproduces the paper's selection behaviour fully; MSBO is
	// weaker here because our hand-built features leave the dark-vehicle
	// BDD conditions partially inter-servable (see EXPERIMENTS.md).
	if msbiAcc < 0.75 {
		t.Errorf("MSBI selection accuracy = %v", msbiAcc)
	}
	if msboAcc < 0.5 {
		t.Errorf("MSBO selection accuracy = %v", msboAcc)
	}
	// One-shot selection is cheaper than ODIN-Select's per-frame selection
	// over the stream even at this miniature scale; the paper's
	// order-of-magnitude gap appears at the committed run scale, where the
	// stream is 5-100x longer while selection cost stays constant.
	msboT, msbiT := res.Totals()
	if msboT > res.ODINTime || msbiT > res.ODINTime {
		t.Errorf("selection totals MSBO %v / MSBI %v vs ODIN %v", msboT, msbiT, res.ODINTime)
	}
	if !strings.Contains(res.Render(), "Table 8") || !strings.Contains(res.Render(), "Table 7") {
		t.Error("render missing headers")
	}
}

func TestEndToEndCountShape(t *testing.T) {
	cfg := QuickConfig()
	res := RunEndToEnd(dataset.BDD(cfg.Scale), cfg, query.Count)
	if res.Frames == 0 {
		t.Fatal("no frames evaluated")
	}
	// Mask R-CNN defines ground truth → perfect accuracy.
	if got := res.Mean(MethodMaskRCNN); got != 1 {
		t.Errorf("maskrcnn A_q = %v, must be 1.0 by construction", got)
	}
	// The drift-aware pipelines beat the drift-oblivious fast detector.
	if res.Mean(MethodMSBO) <= res.Mean(MethodYOLO) {
		t.Errorf("MSBO A_q %v <= YOLO %v", res.Mean(MethodMSBO), res.Mean(MethodYOLO))
	}
	// And cheaper than full-frame Mask R-CNN processing. (At this tiny
	// test scale the pipeline's one-off selection/training costs are not
	// yet amortized, so only the ordering is asserted; the committed
	// larger-scale runs in EXPERIMENTS.md show the full gap.)
	// At this miniature scale the pipeline's one-off recovery training is
	// not amortized (the paper's streams are 100x longer); assert it stays
	// within a small factor here — the committed larger runs in
	// EXPERIMENTS.md show the pipeline strictly cheaper.
	if res.Times[MethodMSBO] > 4*res.Times[MethodMaskRCNN] {
		t.Errorf("MSBO time %v vs maskrcnn %v", res.Times[MethodMSBO], res.Times[MethodMaskRCNN])
	}
	if !strings.Contains(res.Render(), "Table 9") {
		t.Error("render missing header")
	}
}

func TestEndToEndSpatialShape(t *testing.T) {
	cfg := QuickConfig()
	res := RunEndToEnd(dataset.BDD(cfg.Scale), cfg, query.Spatial)
	if got := res.Mean(MethodMaskRCNN); got != 1 {
		t.Errorf("maskrcnn spatial A_q = %v", got)
	}
	if got := res.Mean(MethodMSBO); got < 0.5 {
		t.Errorf("MSBO spatial A_q = %v, below coin flip", got)
	}
	if !strings.Contains(res.Render(), "Figure 8") {
		t.Error("render missing spatial figure header")
	}
}

func TestAblationShape(t *testing.T) {
	res := RunAblation(QuickConfig())
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range res.Rows {
		byName[r.Variant] = r
	}
	def := byName["DI (default: W=4, stride 10)"]
	if def.Missed > 0 {
		t.Errorf("default DI missed %d drifts", def.Missed)
	}
	if def.FalsePos > 3 {
		t.Errorf("default DI false positives = %d", def.FalsePos)
	}
	// The design-choice story: removing stream sampling or using the
	// paper-literal threshold multiplies false alarms; the multiplicative
	// martingale (the §4.2.3 motivation) detects far later.
	if s1 := byName["DI (no sampling: stride 1)"]; s1.FalsePos <= def.FalsePos {
		t.Errorf("stride-1 false positives %d <= default %d", s1.FalsePos, def.FalsePos)
	}
	if mult := byName["multiplicative martingale"]; mult.Missed == 0 && mult.MeanLag <= def.MeanLag {
		t.Errorf("multiplicative martingale lag %v <= DI %v", mult.MeanLag, def.MeanLag)
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Error("render missing header")
	}
}
