package experiments

import (
	"fmt"
	"strings"

	"videodrift/internal/conformal"
	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/stats"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

// AblationRow is one detector variant's performance on the ablation
// transitions.
type AblationRow struct {
	Variant     string
	MeanLag     float64 // frames after the drift (detected transitions only)
	Missed      int
	FalsePos    int
	Transitions int
}

// AblationResult compares Drift Inspector variants and classical
// baselines on the same set of transitions — the design-choice ablation
// DESIGN.md §2 calls for (threshold form, window, stream sampling, Σ
// source) plus the two related-work detectors the paper discusses:
// the multiplicative conformal martingale (§4.2.3) and the two-sample
// Kolmogorov–Smirnov test (§2).
type AblationResult struct {
	Rows []AblationRow
}

// driftDetector is the minimal interface the ablation loop drives.
type driftDetector interface {
	observe(f vidsim.Frame) bool
	reset()
}

type diAdapter struct{ di *core.DriftInspector }

func (a diAdapter) observe(f vidsim.Frame) bool { return a.di.ObserveFrame(f) }
func (a diAdapter) reset()                      { a.di.Reset() }

// powerDetector wraps the classic multiplicative conformal martingale
// with Ville's inequality as its stopping rule.
type powerDetector struct {
	entry   *core.ModelEntry
	measure conformal.KNN
	mart    *conformal.PowerMartingale
	rng     *stats.RNG
	delta   float64
}

func newPowerDetector(e *core.ModelEntry, rng *stats.RNG) *powerDetector {
	return &powerDetector{
		entry:   e,
		measure: conformal.KNN{K: 5},
		mart:    conformal.NewPowerMartingale(conformal.Mixture()),
		rng:     rng,
		delta:   0.01,
	}
}

func (p *powerDetector) observe(f vidsim.Frame) bool {
	a := p.measure.Score(vision.Featurize(f.Pixels, p.entry.W, p.entry.H), p.entry.SampleFeats)
	p.mart.Update(p.entry.Calib.PValue(a, p.rng.Float64()))
	return p.mart.Exceeds(p.delta)
}

func (p *powerDetector) reset() { p.mart.Reset() }

// ksDetector is the classical non-parametric baseline: a sliding window
// of recent frames tested against the training sample with per-dimension
// two-sample Kolmogorov–Smirnov tests (Bonferroni-corrected) — what the
// paper's §2 cites as the standard statistics answer, noting that
// multidimensional KS does not scale.
type ksDetector struct {
	entry  *core.ModelEntry
	ref    [][]float64 // per-dimension training feature values
	window [][]float64 // per-dimension sliding window
	size   int
	alpha  float64
	every  int
	seen   int
}

func newKSDetector(e *core.ModelEntry, trainFrames []vidsim.Frame) *ksDetector {
	dims := len(e.SampleFeats[0])
	d := &ksDetector{entry: e, size: 40, alpha: 0.001, every: 4}
	d.ref = make([][]float64, dims)
	for _, f := range trainFrames {
		x := vision.Featurize(f.Pixels, e.W, e.H)
		for j, v := range x {
			d.ref[j] = append(d.ref[j], v)
		}
	}
	d.window = make([][]float64, dims)
	return d
}

func (d *ksDetector) observe(f vidsim.Frame) bool {
	x := vision.Featurize(f.Pixels, d.entry.W, d.entry.H)
	for j, v := range x {
		d.window[j] = append(d.window[j], v)
		if len(d.window[j]) > d.size {
			d.window[j] = d.window[j][1:]
		}
	}
	d.seen++
	if len(d.window[0]) < d.size || d.seen%d.every != 0 {
		return false
	}
	bonferroni := d.alpha / float64(len(d.window))
	for j := range d.window {
		if _, p := stats.KSTwoSample(d.window[j], d.ref[j]); p < bonferroni {
			return true
		}
	}
	return false
}

func (d *ksDetector) reset() {
	for j := range d.window {
		d.window[j] = d.window[j][:0]
	}
	d.seen = 0
}

// RunAblation evaluates every variant on all transitions of the Detrac
// analog (the dataset with the most drifts).
func RunAblation(cfg Config) AblationResult {
	ds := dataset.Detrac(cfg.Scale)
	env := BuildEnvUnsupervised(ds, cfg)

	// A paper-literal variant needs a betting gain large enough that the
	// un-logged threshold sqrt(2W·2/r) is attainable (see DESIGN.md §2).
	paperDI := core.DefaultDIConfig()
	paperDI.W = 3
	paperDI.Mode = conformal.ThresholdPaperLiteral
	paperDI.Kappa = 8

	strideOne := core.DefaultDIConfig()
	strideOne.SampleEvery = 1

	wideWindow := core.DefaultDIConfig()
	wideWindow.W = 8

	variants := []struct {
		name  string
		build func(e *core.ModelEntry, vae *core.ModelEntry, train []vidsim.Frame, seed int64) driftDetector
	}{
		{"DI (default: W=4, stride 10)", func(e, _ *core.ModelEntry, _ []vidsim.Frame, seed int64) driftDetector {
			return diAdapter{core.NewDriftInspector(e, core.DefaultDIConfig(), stats.NewRNG(seed))}
		}},
		{"DI (paper-literal: W=3)", func(e, _ *core.ModelEntry, _ []vidsim.Frame, seed int64) driftDetector {
			return diAdapter{core.NewDriftInspector(e, paperDI, stats.NewRNG(seed))}
		}},
		{"DI (no sampling: stride 1)", func(e, _ *core.ModelEntry, _ []vidsim.Frame, seed int64) driftDetector {
			return diAdapter{core.NewDriftInspector(e, strideOne, stats.NewRNG(seed))}
		}},
		{"DI (wide window: W=8)", func(e, _ *core.ModelEntry, _ []vidsim.Frame, seed int64) driftDetector {
			return diAdapter{core.NewDriftInspector(e, wideWindow, stats.NewRNG(seed))}
		}},
		{"DI (Σ from VAE)", func(_, v *core.ModelEntry, _ []vidsim.Frame, seed int64) driftDetector {
			return diAdapter{core.NewDriftInspector(v, core.DefaultDIConfig(), stats.NewRNG(seed))}
		}},
		{"multiplicative martingale", func(e, _ *core.ModelEntry, _ []vidsim.Frame, seed int64) driftDetector {
			return newPowerDetector(e, stats.NewRNG(seed))
		}},
		{"two-sample KS (window 40)", func(e, _ *core.ModelEntry, train []vidsim.Frame, _ int64) driftDetector {
			return newKSDetector(e, train)
		}},
	}

	// VAE-sourced entries, provisioned once per sequence.
	vaeEntries := make([]*core.ModelEntry, len(ds.Sequences))
	for i := range ds.Sequences {
		p := env.Provision
		p.Source = core.SourceVAE
		p.VAEEpochs = 4
		p.Seed = cfg.Seed + int64(i)*31
		vaeEntries[i] = core.Provision(ds.Sequences[i].Name, ds.TrainingFrames(i, cfg.TrainFrames), nil, p)
	}

	res := AblationResult{}
	const preLen, postLen = 400, 600
	for _, v := range variants {
		row := AblationRow{Variant: v.name, Transitions: len(ds.Sequences)}
		lagSum, detected := 0, 0
		for seq := range ds.Sequences {
			prevIdx := (seq + len(ds.Sequences) - 1) % len(ds.Sequences)
			det := v.build(env.Registry.Entries()[prevIdx], vaeEntries[prevIdx],
				ds.TrainingFrames(prevIdx, cfg.TrainFrames), cfg.Seed+int64(seq))
			stream := ds.TransitionStream(seq, preLen, postLen)
			driftAt := stream.DriftPoints()[0]
			cooldown := 0 // frames to ignore after a false alarm, so one
			// excursion is not counted once per refire
			for i := 0; ; i++ {
				f, ok := stream.Next()
				if !ok {
					break
				}
				fired := det.observe(f)
				if cooldown > 0 {
					cooldown--
					continue
				}
				if fired {
					if i < driftAt {
						row.FalsePos++
						det.reset()
						cooldown = 50
						continue
					}
					lagSum += i - driftAt + 1
					detected++
					break
				}
			}
		}
		row.Missed = len(ds.Sequences) - detected
		if detected > 0 {
			row.MeanLag = float64(lagSum) / float64(detected)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats the ablation table.
func (r AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation — drift-detector variants on the Detrac transitions")
	fmt.Fprintf(&b, "%-32s %10s %8s %8s\n", "variant", "mean lag", "missed", "false+")
	for _, row := range r.Rows {
		lag := "—"
		if row.Missed < row.Transitions {
			lag = fmt.Sprintf("%.1f", row.MeanLag)
		}
		fmt.Fprintf(&b, "%-32s %10s %8d %8d\n", row.Variant, lag, row.Missed, row.FalsePos)
	}
	return b.String()
}
