package experiments

import (
	"fmt"
	"strings"
	"time"

	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/odin"
	"videodrift/internal/stats"
	"videodrift/internal/vidsim"
)

// DriftLag is one drift-detection measurement: frames processed after the
// ground-truth drift before each detector declared it (-1 = missed), and
// false positives before the drift.
type DriftLag struct {
	Sequence  string
	DILag     int
	ODINLag   int
	DIFalse   int
	ODINFalse int
}

// Fig3Result reproduces Figure 3 for one dataset: per-sequence detection
// lags for DI versus ODIN-Detect, plus the monitoring wall time behind
// Table 6.
type Fig3Result struct {
	Dataset    string
	Lags       []DriftLag
	DITime     time.Duration
	ODINTime   time.Duration
	FramesSeen int
}

// detectOne measures the detection lag on one transition stream for both
// detectors. preLen frames precede the drift; postLen follow it.
func detectOne(ds *dataset.Dataset, env *Env, seq, preLen, postLen int) (DriftLag, time.Duration, time.Duration, int) {
	prevIdx := (seq + len(ds.Sequences) - 1) % len(ds.Sequences)
	prevEntry := env.Registry.Entries()[prevIdx]

	stream := ds.TransitionStream(seq, preLen, postLen)
	driftAt := stream.DriftPoints()[0]
	frames := stream.Collect(-1)

	lag := DriftLag{Sequence: ds.Sequences[seq].Name, DILag: -1, ODINLag: -1}

	// Drift Inspector monitoring the previous condition's model.
	di := core.NewDriftInspector(prevEntry, core.DefaultDIConfig(), stats.NewRNG(env.Cfg.Seed+int64(seq)))
	start := time.Now()
	for i, f := range frames {
		if di.ObserveFrame(f) {
			if i < driftAt {
				lag.DIFalse++
				di.Reset()
				continue
			}
			lag.DILag = i - driftAt + 1
			break
		}
	}
	diTime := time.Since(start)

	// ODIN-Detect bootstrapped on the previous condition.
	od := odin.NewDetector(odin.DefaultConfig(), ds.W, ds.H)
	od.Bootstrap(ds.TrainingFrames(prevIdx, env.Cfg.TrainFrames))
	start = time.Now()
	for i, f := range frames {
		if od.Observe(f).Drift {
			if i < driftAt {
				lag.ODINFalse++
				continue
			}
			lag.ODINLag = i - driftAt + 1
			break
		}
	}
	odinTime := time.Since(start)

	return lag, diTime, odinTime, len(frames)
}

// RunFig3 measures per-sequence drift-detection lag (Figure 3) and the
// total monitoring time (Table 6) for one dataset.
func RunFig3(ds *dataset.Dataset, cfg Config) Fig3Result {
	env := BuildEnvUnsupervised(ds, cfg)
	res := Fig3Result{Dataset: ds.Name}
	preLen := 400
	postLen := 600
	for seq := range ds.Sequences {
		lag, diT, odT, n := detectOne(ds, env, seq, preLen, postLen)
		res.Lags = append(res.Lags, lag)
		res.DITime += diT
		res.ODINTime += odT
		res.FramesSeen += n
	}
	return res
}

// BuildEnvUnsupervised provisions per-sequence entries without query
// classifiers (drift detection needs no labels), which keeps the
// drift-only experiments free of annotation cost.
func BuildEnvUnsupervised(ds *dataset.Dataset, cfg Config) *Env {
	env := &Env{Cfg: cfg, DS: ds}
	entries := make([]*core.ModelEntry, len(ds.Sequences))
	p := core.DefaultProvisionConfig(ds.FrameDim(), 2)
	for i := range ds.Sequences {
		p.Seed = cfg.Seed + int64(i)*31
		entries[i] = core.Provision(ds.Sequences[i].Name, ds.TrainingFrames(i, cfg.TrainFrames), nil, p)
	}
	env.Registry = core.NewRegistry(entries...)
	env.Provision = p
	return env
}

// MeanLags returns the average detection lag over the sequences that were
// detected, for DI and ODIN respectively.
func (r Fig3Result) MeanLags() (di, od float64) {
	nd, no := 0, 0
	for _, l := range r.Lags {
		if l.DILag >= 0 {
			di += float64(l.DILag)
			nd++
		}
		if l.ODINLag >= 0 {
			od += float64(l.ODINLag)
			no++
		}
	}
	if nd > 0 {
		di /= float64(nd)
	}
	if no > 0 {
		od /= float64(no)
	}
	return di, od
}

// Render formats the result as the paper's Figure 3 bars plus the Table 6
// row.
func (r Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — drift detection lag, %s (frames after ground-truth drift)\n", r.Dataset)
	fmt.Fprintf(&b, "%-10s %12s %12s %8s %8s\n", "sequence", "DI", "ODIN-Detect", "DI-FP", "ODIN-FP")
	for _, l := range r.Lags {
		fmt.Fprintf(&b, "%-10s %12s %12s %8d %8d\n", l.Sequence, lagStr(l.DILag), lagStr(l.ODINLag), l.DIFalse, l.ODINFalse)
	}
	di, od := r.MeanLags()
	fmt.Fprintf(&b, "%-10s %12.1f %12.1f\n", "mean", di, od)
	fmt.Fprintf(&b, "Table 6 — monitoring time over %d frames: DI %s s, ODIN-Detect %s s\n",
		r.FramesSeen, fmtSeconds(r.DITime.Seconds()), fmtSeconds(r.ODINTime.Seconds()))
	return b.String()
}

func lagStr(l int) string {
	if l < 0 {
		return "missed"
	}
	return fmt.Sprintf("%d", l)
}

// Fig4Result reproduces Figure 4: detection lag on the gradual
// ("slow drift") day→night transition.
type Fig4Result struct {
	DILag      int
	ODINLag    int
	Transition int // frames over which the drift unfolds
}

// RunFig4 measures slow-drift detection for DI and ODIN-Detect on the
// live-camera analog (§6.1.3): both monitors watch the day distribution
// while the stream interpolates into night; lag is counted from the start
// of the transition ("sundown").
func RunFig4(cfg Config) Fig4Result {
	ds := dataset.SlowDrift(cfg.Scale)
	// A "slow" drift must unfold over a meaningful horizon regardless of
	// the experiment scale; at full scale the paper's transition is a real
	// sunset (thousands of frames).
	if ds.TransitionLen < 500 {
		ds.TransitionLen = 500
	}
	res := Fig4Result{DILag: -1, ODINLag: -1, Transition: ds.TransitionLen}

	// Day model provisioned from the day sequence ("a previous day").
	p := core.DefaultProvisionConfig(ds.FrameDim(), 2)
	p.Seed = cfg.Seed
	dayEntry := core.Provision("day", ds.TrainingFrames(0, cfg.TrainFrames), nil, p)

	// The evaluated stream: day frames, then a gradual transition to night.
	stream := vidsim.NewStream(ds.W, ds.H, ds.Seed,
		vidsim.Segment{Cond: ds.Sequences[0], Length: 400},
		vidsim.Segment{Cond: ds.Sequences[1], Length: ds.TransitionLen + 600, TransitionLen: ds.TransitionLen},
	)
	driftAt := stream.DriftPoints()[0]
	frames := stream.Collect(-1)

	di := core.NewDriftInspector(dayEntry, core.DefaultDIConfig(), stats.NewRNG(cfg.Seed+5))
	for i, f := range frames {
		if di.ObserveFrame(f) && i >= driftAt {
			res.DILag = i - driftAt + 1
			break
		}
	}

	od := odin.NewDetector(odin.DefaultConfig(), ds.W, ds.H)
	od.Bootstrap(ds.TrainingFrames(0, cfg.TrainFrames))
	for i, f := range frames {
		if od.Observe(f).Drift && i >= driftAt {
			res.ODINLag = i - driftAt + 1
			break
		}
	}
	return res
}

// Render formats the result.
func (r Fig4Result) Render() string {
	return fmt.Sprintf(
		"Figure 4 — slow drift (day→night over %d frames)\nDI lag: %s frames   ODIN-Detect lag: %s frames\n",
		r.Transition, lagStr(r.DILag), lagStr(r.ODINLag))
}
