package experiments

import (
	"fmt"
	"strings"
	"time"

	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/detect"
	"videodrift/internal/query"
	"videodrift/internal/vidsim"
)

// Method identifies one end-to-end approach in Table 9 / Figures 7–8.
type Method string

// The five compared methods.
const (
	MethodMSBO     Method = "(DI, MSBO)"
	MethodMSBI     Method = "(DI, MSBI)"
	MethodODIN     Method = "(ODIN-Detect, ODIN-Select)"
	MethodYOLO     Method = "YOLO"
	MethodMaskRCNN Method = "Mask R-CNN"
)

// EndToEndResult holds, for one dataset and query, each method's total
// processing time (Table 9) and per-sequence query accuracy A_q
// (Figures 7 and 8).
type EndToEndResult struct {
	Dataset   string
	Query     query.Kind
	Frames    int
	Sequences []string
	Times     map[Method]time.Duration
	Accuracy  map[Method][]float64 // per sequence
}

// frameSink consumes a frame and returns the method's query prediction.
type frameSink func(f vidsim.Frame) int

// RunEndToEnd streams the dataset through all five methods, timing each
// full pass (Table 9) and scoring per-sequence query accuracy against the
// oracle annotator on every EvalStride-th frame (Figures 7/8; the stride
// keeps ground-truth annotation tractable and is applied identically to
// every method).
func RunEndToEnd(ds *dataset.Dataset, cfg Config, kind query.Kind) EndToEndResult {
	env := BuildEnv(ds, cfg, kind)
	res := EndToEndResult{
		Dataset:   ds.Name,
		Query:     kind,
		Sequences: ds.SequenceNames(),
		Times:     map[Method]time.Duration{},
		Accuracy:  map[Method][]float64{},
	}

	// Materialize the evaluated stream once so every method sees identical
	// frames. (At scale 1.0 this would be large; experiment scales keep it
	// in memory comfortably.)
	frames := ds.Stream().Collect(-1)
	res.Frames = len(frames)

	// Ground-truth labels on the evaluation stride.
	truthAt := map[int]int{}
	for i := ds.WarmupLen; i < len(frames); i += cfg.EvalStride {
		truthAt[i] = env.Annotator.Label(kind, frames[i])
	}

	run := func(m Method, sink frameSink) {
		preds := map[int]int{}
		start := time.Now()
		for i, f := range frames {
			p := sink(f)
			if _, want := truthAt[i]; want {
				preds[i] = p
			}
		}
		res.Times[m] = time.Since(start)
		res.Accuracy[m] = perSequenceAccuracy(ds, preds, truthAt)
	}

	pipeMSBO := core.NewPipeline(env.Registry, env.Labeler(), env.PipelineConfig(core.SelectorMSBO))
	run(MethodMSBO, func(f vidsim.Frame) int { return pipeMSBO.Process(f).Prediction })

	envB := BuildEnv(ds, cfg, kind) // fresh registry so runs stay independent
	pipeMSBI := core.NewPipeline(envB.Registry, envB.Labeler(), envB.PipelineConfig(core.SelectorMSBI))
	run(MethodMSBI, func(f vidsim.Frame) int { return pipeMSBI.Process(f).Prediction })

	sys := env.NewODIN()
	run(MethodODIN, func(f vidsim.Frame) int { return sys.Process(f).Prediction })

	yolo := query.NewAnnotatorWith(detect.NewYOLOSim(), cfg.MaxCount)
	run(MethodYOLO, func(f vidsim.Frame) int { return yolo.Label(kind, f) })

	oracle := query.NewAnnotator(cfg.MaxCount)
	run(MethodMaskRCNN, func(f vidsim.Frame) int { return oracle.Label(kind, f) })

	return res
}

// perSequenceAccuracy splits sampled predictions into dataset sequences
// and scores A_q per sequence.
func perSequenceAccuracy(ds *dataset.Dataset, preds, truth map[int]int) []float64 {
	acc := make([]float64, len(ds.Sequences))
	for seq := range ds.Sequences {
		lo := ds.WarmupLen + seq*ds.SeqLength
		hi := lo + ds.SeqLength
		correct, total := 0, 0
		for i, want := range truth {
			if i < lo || i >= hi {
				continue
			}
			total++
			if preds[i] == want {
				correct++
			}
		}
		if total > 0 {
			acc[seq] = float64(correct) / float64(total)
		}
	}
	return acc
}

// Mean returns a method's accuracy averaged over sequences.
func (r EndToEndResult) Mean(m Method) float64 {
	xs := r.Accuracy[m]
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Methods returns the methods in presentation order.
func Methods() []Method {
	return []Method{MethodMSBO, MethodMSBI, MethodODIN, MethodYOLO, MethodMaskRCNN}
}

// Render formats the Table 9 row and the Figure 7/8 series for this
// dataset.
func (r EndToEndResult) Render() string {
	var b strings.Builder
	figure := "Figure 7 (count query accuracy)"
	if r.Query == query.Spatial {
		figure = "Figure 8 (spatial query accuracy)"
	}
	fmt.Fprintf(&b, "Table 9 — end-to-end time on %s (%d frames) and %s\n", r.Dataset, r.Frames, figure)
	fmt.Fprintf(&b, "%-28s %12s %10s", "method", "time (s)", "mean A_q")
	for _, s := range r.Sequences {
		fmt.Fprintf(&b, " %9s", s)
	}
	fmt.Fprintln(&b)
	for _, m := range Methods() {
		fmt.Fprintf(&b, "%-28s %12s %10.3f", m, fmtSeconds(r.Times[m].Seconds()), r.Mean(m))
		for _, a := range r.Accuracy[m] {
			fmt.Fprintf(&b, " %9.3f", a)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig5Result reproduces Figure 5 on the BDD analog: per-sequence
// classification accuracy versus ensemble Brier score for the matching
// model, showing the Brier score's stronger separation.
type Fig5Result struct {
	Sequences []string
	// Accuracy[i][j]: accuracy of model i's classifier on sequence j.
	Accuracy [][]float64
	// Brier[i][j]: Brier score of model i's ensemble on sequence j.
	Brier [][]float64
}

// RunFig5 evaluates every BDD model on every BDD sequence.
func RunFig5(cfg Config) Fig5Result {
	ds := dataset.BDD(cfg.Scale)
	env := BuildEnv(ds, cfg, query.Count)
	entries := env.Registry.Entries()
	labeler := env.Labeler()

	res := Fig5Result{Sequences: ds.SequenceNames()}
	// Fresh evaluation frames per sequence.
	const evalN = 60
	eval := make([][]vidsim.Frame, len(ds.Sequences))
	for j := range ds.Sequences {
		eval[j] = vidsim.GenerateTraining(ds.Sequences[j], ds.W, ds.H, evalN, cfg.Seed+int64(j)*977)
	}

	for _, e := range entries {
		accRow := make([]float64, len(ds.Sequences))
		brierRow := make([]float64, len(ds.Sequences))
		for j := range ds.Sequences {
			correct := 0
			brier := 0.0
			for _, f := range eval[j] {
				label := labeler(f)
				if e.Predict(f) == label {
					correct++
				}
				s := e.QuerySample(f, label)
				brier += e.Ensemble.Brier(s.X, s.Label)
			}
			accRow[j] = float64(correct) / evalN
			brierRow[j] = brier / evalN
		}
		res.Accuracy = append(res.Accuracy, accRow)
		res.Brier = append(res.Brier, brierRow)
	}
	return res
}

// Separation quantifies Figure 5's point: for each sequence, the relative
// gap between the matching model and the best competitor, under accuracy
// and under Brier score. Higher is better for both.
func (r Fig5Result) Separation() (accGap, brierGap float64) {
	n := len(r.Sequences)
	for j := 0; j < n; j++ {
		bestOtherAcc, bestOtherBrier := 0.0, 0.0
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			if r.Accuracy[i][j] > bestOtherAcc {
				bestOtherAcc = r.Accuracy[i][j]
			}
			if bestOtherBrier == 0 || r.Brier[i][j] < bestOtherBrier {
				bestOtherBrier = r.Brier[i][j]
			}
		}
		if r.Accuracy[j][j] > 0 {
			accGap += (r.Accuracy[j][j] - bestOtherAcc) / r.Accuracy[j][j]
		}
		if bestOtherBrier > 0 {
			brierGap += (bestOtherBrier - r.Brier[j][j]) / bestOtherBrier
		}
	}
	return accGap / float64(n), brierGap / float64(n)
}

// Render formats the Figure 5 matrices.
func (r Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 5 — accuracy vs Brier score on BDD (rows: models, cols: sequences)")
	fmt.Fprintf(&b, "%-8s", "acc")
	for _, s := range r.Sequences {
		fmt.Fprintf(&b, " %8s", s)
	}
	fmt.Fprintln(&b)
	for i, row := range r.Accuracy {
		fmt.Fprintf(&b, "%-8s", r.Sequences[i])
		for _, v := range row {
			fmt.Fprintf(&b, " %8.3f", v)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-8s", "brier")
	for _, s := range r.Sequences {
		fmt.Fprintf(&b, " %8s", s)
	}
	fmt.Fprintln(&b)
	for i, row := range r.Brier {
		fmt.Fprintf(&b, "%-8s", r.Sequences[i])
		for _, v := range row {
			fmt.Fprintf(&b, " %8.3f", v)
		}
		fmt.Fprintln(&b)
	}
	accGap, brierGap := r.Separation()
	fmt.Fprintf(&b, "mean separation of the matching model: accuracy %.2f, Brier %.2f\n", accGap, brierGap)
	return b.String()
}

// Table5Result reproduces the dataset characteristics table.
type Table5Result struct {
	Rows []dataset.Stats
}

// RunTable5 measures Table 5 over the three datasets at the configured
// scale (stream sizes are reported at paper scale 1.0 regardless, as they
// are definitional).
func RunTable5(cfg Config) Table5Result {
	res := Table5Result{}
	for _, ds := range dataset.All(cfg.Scale) {
		st := ds.Stats(500)
		st.StreamSize = dataset.All(1.0)[len(res.Rows)].StreamSize()
		res.Rows = append(res.Rows, st)
	}
	return res
}

// Render formats Table 5.
func (r Table5Result) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 5 — datasets and their characteristics")
	fmt.Fprintf(&b, "%-8s %10s %12s %10s %6s\n", "dataset", "#seq", "stream size", "obj/frame", "std")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %10d %12d %10.1f %6.1f\n", row.Name, row.Sequences, row.StreamSize, row.ObjPerFrame, row.Std)
	}
	return b.String()
}
