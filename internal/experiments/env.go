// Package experiments contains one runner per table and figure of the
// paper's evaluation (§6), built on the dataset analogs, the core
// pipeline, the ODIN baseline and the detector baselines. Each runner
// returns a structured result plus an ASCII rendering; cmd/driftbench and
// the repository-level benchmarks drive them, and EXPERIMENTS.md records
// paper-versus-measured numbers.
package experiments

import (
	"fmt"

	"videodrift/internal/classifier"
	"videodrift/internal/core"
	"videodrift/internal/dataset"
	"videodrift/internal/odin"
	"videodrift/internal/query"
)

// Config scales the experiments. Scale 1.0 reproduces the paper's stream
// sizes (and takes correspondingly long); the default keeps a full
// regeneration pass in the minutes range.
type Config struct {
	Scale       float64 // dataset stream scale (1.0 = paper sizes)
	TrainFrames int     // training frames per provisioned condition
	MaxCount    int     // count-query label cap
	EvalStride  int     // ground-truth accuracy is computed on every k-th frame
	Seed        int64
}

// DefaultConfig returns the scale used by the committed experiment runs.
func DefaultConfig() Config {
	return Config{Scale: 0.05, TrainFrames: 300, MaxCount: 30, EvalStride: 4, Seed: 99}
}

// QuickConfig returns a miniature configuration for tests.
func QuickConfig() Config {
	return Config{Scale: 0.01, TrainFrames: 150, MaxCount: 30, EvalStride: 4, Seed: 99}
}

// Env is a prepared evaluation environment for one dataset and query
// kind: the annotation oracle, one provisioned model per sequence, and
// the assembled registry.
type Env struct {
	Cfg       Config
	DS        *dataset.Dataset
	Kind      query.Kind
	Annotator *query.Annotator
	Registry  *core.Registry
	Provision core.ProvisionConfig
}

// provisionConfig builds the experiment-scale provisioning setup for a
// dataset and query kind.
func provisionConfig(ds *dataset.Dataset, ann *query.Annotator, kind query.Kind, seed int64) core.ProvisionConfig {
	cfg := core.DefaultProvisionConfig(ds.FrameDim(), ann.NumClasses(kind))
	cfg.Classifier = classifier.Config{
		HiddenDim:  48,
		NumClasses: ann.NumClasses(kind),
		LR:         5e-3,
		Epochs:     60,
	}
	cfg.QueryFn = kind.FeatureFn()
	cfg.Seed = seed
	return cfg
}

// BuildEnvShell prepares the environment — annotation oracle, provision
// and pipeline configuration — without provisioning any models. It is
// the warm-restart path: the models arrive from a checkpoint instead of
// being trained, so the expensive per-sequence Provision calls are
// skipped entirely. The returned Env's Registry is empty.
func BuildEnvShell(ds *dataset.Dataset, cfg Config, kind query.Kind) *Env {
	ann := query.NewAnnotator(cfg.MaxCount)
	env := &Env{Cfg: cfg, DS: ds, Kind: kind, Annotator: ann}
	env.Provision = provisionConfig(ds, ann, kind, cfg.Seed)
	env.Registry = core.NewRegistry()
	return env
}

// BuildEnv provisions one model per dataset sequence (trained on that
// condition's training frames, annotated by the oracle — §5.4) and
// assembles the registry the Model Selector chooses from.
func BuildEnv(ds *dataset.Dataset, cfg Config, kind query.Kind) *Env {
	env := BuildEnvShell(ds, cfg, kind)
	labeler := env.Labeler()

	entries := make([]*core.ModelEntry, len(ds.Sequences))
	for i := range ds.Sequences {
		frames := ds.TrainingFrames(i, cfg.TrainFrames)
		p := env.Provision
		p.Seed = cfg.Seed + int64(i)*31
		entries[i] = core.Provision(ds.Sequences[i].Name, frames, labeler, p)
	}
	env.Registry = core.NewRegistry(entries...)
	return env
}

// Labeler returns the environment's annotation function.
func (e *Env) Labeler() core.Labeler { return core.Labeler(e.Annotator.Labeler(e.Kind)) }

// PipelineConfig assembles the paper-parameter pipeline configuration for
// this environment.
func (e *Env) PipelineConfig(selector core.SelectorKind) core.PipelineConfig {
	cfg := core.DefaultPipelineConfig(e.DS.FrameDim(), e.Annotator.NumClasses(e.Kind))
	cfg.Selector = selector
	cfg.Provision = e.Provision
	// Models trained mid-stream see fresh, matched data; fewer epochs and
	// a smaller ensemble suffice and keep the recovery path cheap.
	cfg.Provision.Classifier.Epochs = 20
	cfg.Provision.EnsembleSize = 3
	cfg.NewModelFrames = e.Cfg.TrainFrames
	cfg.Seed = e.Cfg.Seed
	return cfg
}

// NewODIN assembles the ODIN baseline system with clusters and models
// bootstrapped from the same per-sequence training data the pipeline's
// registry uses.
func (e *Env) NewODIN() *odin.System {
	clf := e.Provision.Classifier
	clf.InputDim = dimOf(e.Kind)
	sys := odin.NewSystem(odin.DefaultConfig(), e.DS.W, e.DS.H, e.Kind.FeatureFn(),
		odin.Labeler(e.Annotator.Labeler(e.Kind)), clf, e.Cfg.Seed)
	for i := range e.DS.Sequences {
		sys.Bootstrap(e.DS.TrainingFrames(i, e.Cfg.TrainFrames))
	}
	return sys
}

func dimOf(kind query.Kind) int {
	probe := make([]float64, 64)
	return len(kind.FeatureFn()(probe, 8, 8))
}

// fmtSeconds renders a duration in seconds with sensible precision.
func fmtSeconds(sec float64) string {
	switch {
	case sec >= 100:
		return fmt.Sprintf("%.0f", sec)
	case sec >= 1:
		return fmt.Sprintf("%.2f", sec)
	default:
		return fmt.Sprintf("%.4f", sec)
	}
}
