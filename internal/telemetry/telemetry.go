// Package telemetry is the repo's zero-dependency observability layer:
// a ring-buffered structured event sink for the drift machinery's
// decisions (drifts declared, selections resolved, models trained and
// deployed), streaming log-bucketed latency histograms per pipeline
// stage, and exporters emitting JSON and Prometheus text-exposition
// format.
//
// The central type is *Tracer. Every method is safe on a nil receiver
// and does nothing, so instrumented code holds a possibly-nil *Tracer
// and calls it unconditionally — the untraced hot path pays one pointer
// compare per call site. A non-nil Tracer is safe for concurrent use:
// one goroutine can drive a pipeline while others snapshot or export.
package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Kind enumerates the structured event taxonomy. The driftlint
// directive keeps every surface that fans out over kinds exhaustive:
// add a member and lint fails until the snapshot and the Prometheus
// exporter carry it too.
//
//driftlint:enum sentinel=kindCount names=kindNames surfaces=Kind.String,Kind.MarshalJSON,Kind.UnmarshalJSON,Tracer.KindCounts,Tracer.Snapshot,Snapshot.WritePrometheus
type Kind uint8

// Event kinds, in pipeline order.
const (
	// KindFrameObserved is one frame entering the instrumented
	// component (counted always; ringed only with Config.PerFrame).
	KindFrameObserved Kind = iota
	// KindMartingaleUpdate is one sampled frame folded into the
	// conformal martingale (counted always; ringed only with PerFrame).
	KindMartingaleUpdate
	// KindDriftDeclared is the Drift Inspector (or ODIN-Detect)
	// declaring a distribution change.
	KindDriftDeclared
	// KindSelectionStarted is the pipeline entering its
	// selection-window collection state after a drift.
	KindSelectionStarted
	// KindSelectionResolved is a completed MSBI/MSBO run, with
	// per-candidate outcomes.
	KindSelectionResolved
	// KindModelTrained is a new model provisioned from post-drift
	// frames.
	KindModelTrained
	// KindModelDeployed is a model (selected or trained) becoming the
	// serving model.
	KindModelDeployed
	// KindCheckpointSaved is a full monitor checkpoint persisted to the
	// state store.
	KindCheckpointSaved
	// KindFrameQuarantined is a malformed frame (wrong dimensions,
	// non-finite pixels) rejected by the admission gate before it could
	// touch the classifier or the conformal martingale.
	KindFrameQuarantined
	// KindWorkerRestarted is a shard worker panic caught by the
	// supervisor and the shard resumed from its last in-memory snapshot.
	KindWorkerRestarted
	// KindTrainingFailed is one failed attempt to provision a
	// post-drift model; the pipeline retries with capped backoff and
	// degrades to the deployed model when attempts are exhausted.
	KindTrainingFailed
	// KindCheckpointFailed is one failed checkpoint write (the previous
	// generation stays loadable; the scheduler retries with backoff).
	KindCheckpointFailed
	// KindHealthChanged is a transition of the degradation state
	// (ok/degraded/failed).
	KindHealthChanged
	// KindReplicaDeltaSent is a replication primary shipping one
	// checkpoint generation (full or delta) to a standby.
	KindReplicaDeltaSent
	// KindReplicaDeltaApplied is a standby applying one streamed
	// generation into its warm in-memory state.
	KindReplicaDeltaApplied
	// KindReplicaPromoted is a standby promoting itself to primary
	// under a new fencing epoch.
	KindReplicaPromoted

	kindCount
)

var kindNames = [kindCount]string{
	"frame_observed",
	"martingale_update",
	"drift_declared",
	"selection_started",
	"selection_resolved",
	"model_trained",
	"model_deployed",
	"checkpoint_saved",
	"frame_quarantined",
	"worker_restarted",
	"training_failed",
	"checkpoint_failed",
	"health_changed",
	"replica_delta_sent",
	"replica_delta_applied",
	"replica_promoted",
}

// String returns the event kind's snake_case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind from its name, so exported snapshots and
// event streams round-trip through JSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == name {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", name)
}

// State is the pipeline processing mode a frame was observed under.
type State uint8

// Pipeline states.
const (
	StateMonitoring State = iota
	StateSelecting
	StateTraining

	stateCount
)

var stateNames = [stateCount]string{"monitoring", "selecting", "training"}

// String returns the state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// MarshalJSON encodes the state as its name.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a state from its name.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range stateNames {
		if n == name {
			*s = State(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown pipeline state %q", name)
}

// Health is the monitor's degradation state: ok (full drift-adaptive
// operation), degraded (serving continues on the deployed model but
// some adaptation machinery — training, checkpointing, a shard — is
// failing and being retried), failed (a component is permanently down,
// e.g. a shard hit its crash-loop circuit breaker).
type Health uint8

// Degradation states, in order of severity.
const (
	HealthOK Health = iota
	HealthDegraded
	HealthFailed

	healthCount
)

var healthNames = [healthCount]string{"ok", "degraded", "failed"}

// String returns the state name.
func (h Health) String() string {
	if int(h) < len(healthNames) {
		return healthNames[h]
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// MarshalJSON encodes the health state as its name.
func (h Health) MarshalJSON() ([]byte, error) { return json.Marshal(h.String()) }

// UnmarshalJSON decodes a health state from its name.
func (h *Health) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range healthNames {
		if n == name {
			*h = Health(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown health state %q", name)
}

// Stage enumerates the instrumented pipeline stages whose latency is
// tracked.
type Stage uint8

// Latency-tracked stages.
const (
	StageFeaturize  Stage = iota // drift-feature extraction per sampled frame
	StageKNNScore                // kNN non-conformity score
	StagePValue                  // conformal p-value lookup
	StageMartingale              // betting-function update + threshold test
	StageClassify                // deployed model's query prediction
	StageSelect                  // one full MSBI/MSBO run
	StageTrain                   // provisioning a new model mid-stream
	StageODINDetect              // ODIN-Detect clustering per frame
	StageCheckpoint              // one checkpoint capture + atomic write

	stageCount
)

var stageNames = [stageCount]string{
	"featurize",
	"knn_score",
	"p_value",
	"martingale_update",
	"classify",
	"select",
	"train",
	"odin_detect",
	"checkpoint",
}

// String returns the stage's snake_case name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// DimShift is one feature dimension's reference-versus-recent divergence,
// attached (ranked, most-moved first) to every drift declaration so
// operators can see WHICH appearance statistic moved, not just that the
// martingale crossed its threshold. KL and JS are binned divergences of
// the recent sampled window against the model's reference sample,
// computed over a deterministic fixed binning derived from the reference
// (see core.FeatWindowStats); MeanShift is recent mean − reference mean;
// VarRatio is recent variance / reference variance.
type DimShift struct {
	Dim       int     `json:"dim"`
	Name      string  `json:"name,omitempty"`
	KL        float64 `json:"kl"`
	JS        float64 `json:"js"`
	MeanShift float64 `json:"mean_shift"`
	VarRatio  float64 `json:"var_ratio"`
}

// DriftID derives the stable identifier of a drift declared on the given
// stream frame. It is a pure function of the frame index, so the ID a
// live tracer assigns, the ID a warm-restarted run re-derives, and the ID
// a forensics replay reproduces are all identical; frames are strictly
// increasing within a shard, so IDs are unique per stream.
func DriftID(frame int) string { return fmt.Sprintf("drift-%08d", frame) }

// Candidate is one model's outcome inside a selection event: MSBI
// reports the i.i.d.-hypothesis rejection plus the final martingale
// value and mean conformal p-value on the window; MSBO reports the
// ensemble Brier score.
type Candidate struct {
	Model      string  `json:"model"`
	Rejected   bool    `json:"rejected,omitempty"`
	Martingale float64 `json:"martingale,omitempty"`
	MeanP      float64 `json:"mean_p,omitempty"`
	Brier      float64 `json:"brier,omitempty"`
}

// Event is one structured trace record. Fields beyond Seq, TimeUnixNano,
// Kind and Frame are populated per kind (see the Kind constants).
type Event struct {
	Seq          uint64 `json:"seq"`
	TimeUnixNano int64  `json:"time_unix_nano"`
	Kind         Kind   `json:"kind"`
	// Frame is the stream index of the frame the event belongs to
	// (-1 for events before the first frame, e.g. the initial deploy).
	Frame int `json:"frame"`

	// ID is the stable drift-declaration identifier (DriftID of the
	// declaration frame); set only on drift_declared events.
	ID string `json:"id,omitempty"`

	Model    string `json:"model,omitempty"`
	Selector string `json:"selector,omitempty"`

	// Drift / martingale fields. Lag is frames observed by the
	// inspector since its last reset (≈ detection lag when the drift
	// followed a deployment); Sampled is how many of those were folded
	// into the martingale.
	Lag         int     `json:"lag,omitempty"`
	Sampled     int     `json:"sampled,omitempty"`
	PValue      float64 `json:"p_value,omitempty"`
	Martingale  float64 `json:"martingale,omitempty"`
	WindowDelta float64 `json:"window_delta,omitempty"`
	MeanP       float64 `json:"mean_p,omitempty"`
	// Attribution is the ranked per-dimension "what moved" vector of a
	// drift_declared event (most-diverged dimension first).
	Attribution []DimShift `json:"attribution,omitempty"`

	// Selection / training fields.
	FramesUsed  int         `json:"frames_used,omitempty"`
	TrainedNew  bool        `json:"trained_new,omitempty"`
	TrainFrames int         `json:"train_frames,omitempty"`
	Candidates  []Candidate `json:"candidates,omitempty"`

	// Checkpoint fields: where the checkpoint was written and its
	// encoded size.
	Path  string `json:"path,omitempty"`
	Bytes int    `json:"bytes,omitempty"`

	// Fault / degradation fields. Reason is a short cause string
	// ("bad dimensions", "worker panic: ..."); Attempt is the 1-based
	// retry attempt that failed; Shard is the 0-based shard index of a
	// worker restart (omitted in JSON for shard 0); Health is the new
	// degradation state of a health_changed event.
	Reason  string `json:"reason,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Shard   int    `json:"shard,omitempty"`
	Health  string `json:"health,omitempty"`

	// Replication fields: the checkpoint generation a replica event
	// carries and the fencing epoch it was streamed or promoted under.
	Gen   uint64 `json:"gen,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// Config parameterizes a Tracer. The zero value is usable.
type Config struct {
	// RingSize is how many events the ring retains (default 1024).
	RingSize int
	// PerFrame also records the per-frame FrameObserved and
	// MartingaleUpdate events in the ring. Off by default: they are
	// always *counted*, but ringing one event per frame would evict
	// the rare, interesting events within a few seconds of stream.
	PerFrame bool
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Tracer collects events, counters, gauges and per-stage latency
// histograms. All methods are nil-safe no-ops; a non-nil Tracer is safe
// for concurrent use.
type Tracer struct {
	mu       sync.Mutex
	now      func() time.Time
	perFrame bool

	seq  uint64
	ring []Event
	head int // next write position
	n    int // live events in the ring

	counts      [kindCount]uint64
	stateFrames [stateCount]uint64
	curFrame    int // last observed frame index; -1 before the stream

	model       string // currently deployed model
	martingale  float64
	windowDelta float64
	meanP       float64

	lastCheckpoint int64 // unix nanos of the last persisted checkpoint

	replicaLag int // newest generation minus slowest standby's ack

	health Health // current degradation state

	stages [stageCount]Histogram
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Tracer{
		now:      cfg.Now,
		perFrame: cfg.PerFrame,
		ring:     make([]Event, cfg.RingSize),
		curFrame: -1,
	}
}

// Enabled reports whether the tracer records anything (i.e. is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Now reads the tracer's injected clock (Config.Now; the wall clock by
// default). Replay-critical packages must take timestamps through this
// method rather than time.Now — the driftlint determinism analyzer
// enforces it — so tests and deterministic replays can drive every
// clock read through Config.Now. A nil tracer returns the zero time;
// instrumented code only consults the clock when tracing is enabled.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	// t.now is set once in New and never mutated, so no lock is needed.
	return t.now()
}

// emit stamps and counts an event; ring selects whether it is retained.
// The caller holds t.mu.
func (t *Tracer) emit(e Event, ring bool) {
	t.seq++
	e.Seq = t.seq
	e.TimeUnixNano = t.now().UnixNano()
	e.Frame = t.curFrame
	t.counts[e.Kind]++
	if ring {
		t.ring[t.head] = e
		t.head = (t.head + 1) % len(t.ring)
		if t.n < len(t.ring) {
			t.n++
		}
	}
}

// FrameObserved advances the tracer's frame counter and counts the frame
// under the pipeline state it was processed in. Instrumented components
// call it exactly once per frame, before any other event of that frame.
func (t *Tracer) FrameObserved(state State) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.curFrame++
	if int(state) < len(t.stateFrames) {
		t.stateFrames[state]++
	}
	t.emit(Event{Kind: KindFrameObserved}, t.perFrame)
	t.mu.Unlock()
}

// MartingaleUpdate records one sampled frame's conformal update and
// refreshes the martingale gauges.
func (t *Tracer) MartingaleUpdate(p, value, windowDelta, meanP float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.martingale, t.windowDelta, t.meanP = value, windowDelta, meanP
	t.emit(Event{
		Kind:        KindMartingaleUpdate,
		PValue:      p,
		Martingale:  value,
		WindowDelta: windowDelta,
		MeanP:       meanP,
	}, t.perFrame)
	t.mu.Unlock()
}

// DriftDeclared records a declared drift on the named model's
// distribution. lag is frames observed since the inspector's last reset;
// sampled is how many were folded into the martingale; attr is the
// ranked per-dimension attribution vector (may be nil when the caller
// has no feature statistics). The event carries the stable declaration
// ID derived from the current frame.
func (t *Tracer) DriftDeclared(model string, lag, sampled int, martingale, windowDelta, meanP float64, attr []DimShift) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.martingale, t.windowDelta, t.meanP = martingale, windowDelta, meanP
	t.emit(Event{
		Kind:        KindDriftDeclared,
		ID:          DriftID(t.curFrame),
		Model:       model,
		Lag:         lag,
		Sampled:     sampled,
		Martingale:  martingale,
		WindowDelta: windowDelta,
		MeanP:       meanP,
		Attribution: attr,
	}, true)
	t.mu.Unlock()
}

// SelectionStarted records the pipeline entering its selection window.
func (t *Tracer) SelectionStarted(selector string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{Kind: KindSelectionStarted, Selector: selector}, true)
	t.mu.Unlock()
}

// SelectionResolved records a completed selector run. selected is empty
// when every candidate was rejected (the train-new-model path).
func (t *Tracer) SelectionResolved(selector, selected string, framesUsed int, candidates []Candidate) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{
		Kind:       KindSelectionResolved,
		Selector:   selector,
		Model:      selected,
		FramesUsed: framesUsed,
		Candidates: candidates,
	}, true)
	t.mu.Unlock()
}

// ModelTrained records a model provisioned mid-stream from trainFrames
// post-drift frames.
func (t *Tracer) ModelTrained(model string, trainFrames int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{Kind: KindModelTrained, Model: model, TrainedNew: true, TrainFrames: trainFrames}, true)
	t.mu.Unlock()
}

// ModelDeployed records model becoming the serving model and updates the
// deployed-model gauge.
func (t *Tracer) ModelDeployed(model string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.model = model
	t.emit(Event{Kind: KindModelDeployed, Model: model}, true)
	t.mu.Unlock()
}

// CheckpointSaved records a persisted monitor checkpoint: the written
// path and encoded size as a ringed event, the capture+write duration in
// the checkpoint stage histogram, and the last-checkpoint timestamp
// behind the videodrift_last_checkpoint_age_seconds gauge.
func (t *Tracer) CheckpointSaved(path string, bytes int, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.lastCheckpoint = t.now().UnixNano()
	t.stages[StageCheckpoint].Observe(d)
	t.emit(Event{Kind: KindCheckpointSaved, Path: path, Bytes: bytes}, true)
	t.mu.Unlock()
}

// FrameQuarantined records a malformed frame rejected by the admission
// gate (counted always; ringed so quarantine bursts stay diagnosable).
func (t *Tracer) FrameQuarantined(reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{Kind: KindFrameQuarantined, Reason: reason}, true)
	t.mu.Unlock()
}

// WorkerRestarted records the supervisor catching a shard worker panic
// and restarting the shard from its last in-memory snapshot. attempt is
// the 1-based restart count since the shard's last healthy stretch.
func (t *Tracer) WorkerRestarted(shard, attempt int, reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{Kind: KindWorkerRestarted, Shard: shard, Attempt: attempt, Reason: reason}, true)
	t.mu.Unlock()
}

// TrainingFailed records one failed post-drift training attempt.
func (t *Tracer) TrainingFailed(model string, attempt int, reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{Kind: KindTrainingFailed, Model: model, Attempt: attempt, Reason: reason}, true)
	t.mu.Unlock()
}

// CheckpointFailed records one failed checkpoint write attempt.
func (t *Tracer) CheckpointFailed(attempt int, reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{Kind: KindCheckpointFailed, Attempt: attempt, Reason: reason}, true)
	t.mu.Unlock()
}

// HealthChanged records a degradation-state transition and updates the
// state behind the videodrift_degraded gauge. Transitions to the
// current state are dropped, so callers can report state
// unconditionally.
func (t *Tracer) HealthChanged(h Health, reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if h != t.health {
		t.health = h
		t.emit(Event{Kind: KindHealthChanged, Health: h.String(), Reason: reason}, true)
	}
	t.mu.Unlock()
}

// ReplicaDeltaSent records a replication primary shipping generation
// gen (reason "full" or "delta") of the given encoded size, and
// refreshes the replication-lag gauge (newest generation minus the
// slowest connected standby's acknowledged generation).
func (t *Tracer) ReplicaDeltaSent(gen, epoch uint64, reason string, bytes, lagGens int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.replicaLag = lagGens
	t.emit(Event{Kind: KindReplicaDeltaSent, Gen: gen, Epoch: epoch, Reason: reason, Bytes: bytes}, true)
	t.mu.Unlock()
}

// ReplicaDeltaApplied records a standby applying streamed generation
// gen (reason "full" or "delta") into its warm in-memory state.
func (t *Tracer) ReplicaDeltaApplied(gen, epoch uint64, reason string, bytes int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{Kind: KindReplicaDeltaApplied, Gen: gen, Epoch: epoch, Reason: reason, Bytes: bytes}, true)
	t.mu.Unlock()
}

// ReplicaPromoted records this process taking over as primary at
// generation gen under the (freshly bumped) fencing epoch.
func (t *Tracer) ReplicaPromoted(gen, epoch uint64, reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emit(Event{Kind: KindReplicaPromoted, Gen: gen, Epoch: epoch, Reason: reason}, true)
	t.mu.Unlock()
}

// Health returns the tracer's current degradation state (HealthOK for a
// nil tracer).
func (t *Tracer) Health() Health {
	if t == nil {
		return HealthOK
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.health
}

// ObserveStage folds one stage latency into that stage's histogram.
func (t *Tracer) ObserveStage(s Stage, d time.Duration) {
	if t == nil || s >= stageCount {
		return
	}
	t.mu.Lock()
	t.stages[s].Observe(d)
	t.mu.Unlock()
}

// KindCount is one event kind's cumulative counter, exported by
// KindCounts in enum order so downstream consumers (checkpoint state,
// `drifttool inspect`) see a deterministic sequence.
type KindCount struct {
	Kind  string `json:"kind"`
	Count uint64 `json:"count"`
}

// KindCounts returns the nonzero per-kind event counters, ordered by
// kind. Counters include events the ring has since evicted.
func (t *Tracer) KindCounts() []KindCount {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]KindCount, 0, kindCount)
	for k := Kind(0); k < kindCount; k++ {
		if t.counts[k] > 0 {
			out = append(out, KindCount{Kind: k.String(), Count: t.counts[k]})
		}
	}
	return out
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	start := (t.head - t.n + len(t.ring)) % len(t.ring)
	for i := 0; i < t.n; i++ {
		out[i] = t.ring[(start+i)%len(t.ring)]
	}
	return out
}
