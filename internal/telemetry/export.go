package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// BucketCount is one cumulative histogram bucket: how many observations
// were at or below LeSeconds.
type BucketCount struct {
	LeSeconds float64 `json:"le_seconds"`
	Count     uint64  `json:"count"`
}

// StageSnapshot is one stage's frozen latency statistics, in seconds.
type StageSnapshot struct {
	Stage      string  `json:"stage"`
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	// Buckets is the cumulative log-bucket distribution behind the
	// quantiles (occupied buckets only, Prometheus le-style).
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a consistent point-in-time copy of everything a Tracer
// knows: counters, gauges, per-stage latency statistics and the retained
// event ring. It is self-contained — exporting a Snapshot needs no
// further access to the Tracer.
type Snapshot struct {
	TimeUnixNano int64  `json:"time_unix_nano"`
	Model        string `json:"model,omitempty"`

	Frames            uint64            `json:"frames"`
	FramesByState     map[string]uint64 `json:"frames_by_state,omitempty"`
	MartingaleUpdates uint64            `json:"martingale_updates"`
	Drifts            uint64            `json:"drifts"`
	SelectionsStarted uint64            `json:"selections_started"`
	Selections        uint64            `json:"selections_resolved"`
	ModelsTrained     uint64            `json:"models_trained"`
	Deployments       uint64            `json:"model_deployments"`
	Checkpoints       uint64            `json:"checkpoints,omitempty"`

	// Fault / degradation counters and state.
	Quarantined        uint64 `json:"quarantined_frames,omitempty"`
	WorkerRestarts     uint64 `json:"worker_restarts,omitempty"`
	TrainingFailures   uint64 `json:"training_failures,omitempty"`
	CheckpointFailures uint64 `json:"checkpoint_failures,omitempty"`
	Health             Health `json:"health"`

	// Replication counters and lag: generations shipped by a primary,
	// generations applied by a standby, promotions to primary, and the
	// newest-minus-acknowledged generation gap to the slowest standby.
	ReplicaDeltasSent    uint64 `json:"replica_deltas_sent,omitempty"`
	ReplicaDeltasApplied uint64 `json:"replica_deltas_applied,omitempty"`
	Promotions           uint64 `json:"promotions,omitempty"`
	ReplicaLagGens       int    `json:"replica_lag_generations,omitempty"`

	// LastCheckpointUnixNano is when the last checkpoint was persisted
	// (0 when none has been).
	LastCheckpointUnixNano int64 `json:"last_checkpoint_unix_nano,omitempty"`

	Martingale  float64 `json:"martingale"`
	WindowDelta float64 `json:"window_delta"`
	MeanP       float64 `json:"mean_p"`

	// EventCounts holds every kind's cumulative counter in enum order,
	// indexed by Kind — including kinds with no dedicated named field
	// above (the named fields stay for compatibility with existing
	// consumers of the JSON shape).
	EventCounts []KindCount `json:"event_counts,omitempty"`

	Stages []StageSnapshot `json:"stages,omitempty"`
	Events []Event         `json:"events,omitempty"`
}

// Snapshot freezes the tracer's state. A nil tracer yields a zero
// snapshot.
func (t *Tracer) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	s := Snapshot{
		TimeUnixNano:           t.now().UnixNano(),
		Model:                  t.model,
		Frames:                 t.counts[KindFrameObserved],
		MartingaleUpdates:      t.counts[KindMartingaleUpdate],
		Drifts:                 t.counts[KindDriftDeclared],
		SelectionsStarted:      t.counts[KindSelectionStarted],
		Selections:             t.counts[KindSelectionResolved],
		ModelsTrained:          t.counts[KindModelTrained],
		Deployments:            t.counts[KindModelDeployed],
		Checkpoints:            t.counts[KindCheckpointSaved],
		Quarantined:            t.counts[KindFrameQuarantined],
		WorkerRestarts:         t.counts[KindWorkerRestarted],
		TrainingFailures:       t.counts[KindTrainingFailed],
		CheckpointFailures:     t.counts[KindCheckpointFailed],
		ReplicaDeltasSent:      t.counts[KindReplicaDeltaSent],
		ReplicaDeltasApplied:   t.counts[KindReplicaDeltaApplied],
		Promotions:             t.counts[KindReplicaPromoted],
		ReplicaLagGens:         t.replicaLag,
		Health:                 t.health,
		LastCheckpointUnixNano: t.lastCheckpoint,
		Martingale:             t.martingale,
		WindowDelta:            t.windowDelta,
		MeanP:                  t.meanP,
	}
	s.EventCounts = make([]KindCount, kindCount)
	for k := Kind(0); k < kindCount; k++ {
		s.EventCounts[k] = KindCount{Kind: k.String(), Count: t.counts[k]}
	}
	s.FramesByState = make(map[string]uint64, stateCount)
	for st := State(0); st < stateCount; st++ {
		s.FramesByState[st.String()] = t.stateFrames[st]
	}
	for st := Stage(0); st < stageCount; st++ {
		if t.stages[st].Count() == 0 {
			continue
		}
		s.Stages = append(s.Stages, t.stages[st].snapshot(st.String()))
	}
	s.Events = make([]Event, t.n)
	start := (t.head - t.n + len(t.ring)) % len(t.ring)
	for i := 0; i < t.n; i++ {
		s.Events[i] = t.ring[(start+i)%len(t.ring)]
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// promFloat renders a float the way Prometheus expects.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes the snapshot in Prometheus text-exposition
// format (version 0.0.4). Stage latencies are emitted as a summary
// family with p50/p95/p99 quantile series plus _sum and _count; the
// exact per-stage maximum gets its own gauge family.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP videodrift_frames_total Frames processed by the instrumented component.\n")
	p("# TYPE videodrift_frames_total counter\n")
	p("videodrift_frames_total %d\n", s.Frames)

	p("# HELP videodrift_frames_state_total Frames processed, by pipeline state.\n")
	p("# TYPE videodrift_frames_state_total counter\n")
	for st := State(0); st < stateCount; st++ {
		p("videodrift_frames_state_total{state=%q} %d\n", st.String(), s.FramesByState[st.String()])
	}

	p("# HELP videodrift_martingale_updates_total Sampled frames folded into the conformal martingale.\n")
	p("# TYPE videodrift_martingale_updates_total counter\n")
	p("videodrift_martingale_updates_total %d\n", s.MartingaleUpdates)

	p("# HELP videodrift_drifts_total Drifts declared by the Drift Inspector.\n")
	p("# TYPE videodrift_drifts_total counter\n")
	p("videodrift_drifts_total %d\n", s.Drifts)

	p("# HELP videodrift_selections_started_total Selection windows opened after a drift declaration.\n")
	p("# TYPE videodrift_selections_started_total counter\n")
	p("videodrift_selections_started_total %d\n", s.SelectionsStarted)

	p("# HELP videodrift_selections_total Model-selection runs resolved after a drift.\n")
	p("# TYPE videodrift_selections_total counter\n")
	p("videodrift_selections_total %d\n", s.Selections)

	p("# HELP videodrift_models_trained_total Models trained mid-stream on novel distributions.\n")
	p("# TYPE videodrift_models_trained_total counter\n")
	p("videodrift_models_trained_total %d\n", s.ModelsTrained)

	p("# HELP videodrift_model_deployments_total Model deployments (including the initial one).\n")
	p("# TYPE videodrift_model_deployments_total counter\n")
	p("videodrift_model_deployments_total %d\n", s.Deployments)

	p("# HELP videodrift_checkpoints_total Monitor checkpoints persisted to the state store.\n")
	p("# TYPE videodrift_checkpoints_total counter\n")
	p("videodrift_checkpoints_total %d\n", s.Checkpoints)

	p("# HELP videodrift_quarantined_frames_total Malformed frames rejected by the admission gate.\n")
	p("# TYPE videodrift_quarantined_frames_total counter\n")
	p("videodrift_quarantined_frames_total %d\n", s.Quarantined)

	p("# HELP videodrift_worker_restarts_total Shard workers restarted by the supervisor after a panic.\n")
	p("# TYPE videodrift_worker_restarts_total counter\n")
	p("videodrift_worker_restarts_total %d\n", s.WorkerRestarts)

	p("# HELP videodrift_training_failures_total Failed post-drift training attempts.\n")
	p("# TYPE videodrift_training_failures_total counter\n")
	p("videodrift_training_failures_total %d\n", s.TrainingFailures)

	p("# HELP videodrift_checkpoint_failures_total Failed checkpoint write attempts.\n")
	p("# TYPE videodrift_checkpoint_failures_total counter\n")
	p("videodrift_checkpoint_failures_total %d\n", s.CheckpointFailures)

	p("# HELP videodrift_events_total Structured events recorded, by kind.\n")
	p("# TYPE videodrift_events_total counter\n")
	for k := Kind(0); k < kindCount; k++ {
		// Snapshots decoded from JSON written before EventCounts existed
		// carry a short (or nil) slice; emit what is known.
		if int(k) >= len(s.EventCounts) {
			break
		}
		p("videodrift_events_total{kind=%q} %d\n", s.EventCounts[k].Kind, s.EventCounts[k].Count)
	}

	// Replication families are emitted only once the process has
	// replicated or promoted, so a standalone monitor's exposition is
	// unchanged.
	if s.ReplicaDeltasSent+s.ReplicaDeltasApplied+s.Promotions > 0 {
		p("# HELP videodrift_replica_deltas_total Checkpoint generations replicated (sent by a primary, applied by a standby), by role.\n")
		p("# TYPE videodrift_replica_deltas_total counter\n")
		p("videodrift_replica_deltas_total{role=\"primary\"} %d\n", s.ReplicaDeltasSent)
		p("videodrift_replica_deltas_total{role=\"standby\"} %d\n", s.ReplicaDeltasApplied)
		p("# HELP videodrift_replica_lag_generations Generations the slowest connected standby trails the primary by.\n")
		p("# TYPE videodrift_replica_lag_generations gauge\n")
		p("videodrift_replica_lag_generations %d\n", s.ReplicaLagGens)
		p("# HELP videodrift_promotions_total Standby-to-primary promotions performed by this process.\n")
		p("# TYPE videodrift_promotions_total counter\n")
		p("videodrift_promotions_total %d\n", s.Promotions)
	}

	p("# HELP videodrift_degraded Degradation state (0 ok, 1 degraded, 2 failed).\n")
	p("# TYPE videodrift_degraded gauge\n")
	p("videodrift_degraded %d\n", int(s.Health))

	if s.LastCheckpointUnixNano > 0 {
		p("# HELP videodrift_last_checkpoint_age_seconds Seconds since the last persisted checkpoint, at snapshot time.\n")
		p("# TYPE videodrift_last_checkpoint_age_seconds gauge\n")
		p("videodrift_last_checkpoint_age_seconds %s\n",
			promFloat(float64(s.TimeUnixNano-s.LastCheckpointUnixNano)/1e9))
	}

	p("# HELP videodrift_martingale_value Current CUSUM martingale value S_l.\n")
	p("# TYPE videodrift_martingale_value gauge\n")
	p("videodrift_martingale_value %s\n", promFloat(s.Martingale))

	p("# HELP videodrift_martingale_window_delta Current windowed martingale growth |S_l - S_l-W|.\n")
	p("# TYPE videodrift_martingale_window_delta gauge\n")
	p("videodrift_martingale_window_delta %s\n", promFloat(s.WindowDelta))

	p("# HELP videodrift_mean_p_value Mean conformal p-value since the inspector's last reset.\n")
	p("# TYPE videodrift_mean_p_value gauge\n")
	p("videodrift_mean_p_value %s\n", promFloat(s.MeanP))

	if s.Model != "" {
		p("# HELP videodrift_deployed_model Currently deployed model (value is always 1).\n")
		p("# TYPE videodrift_deployed_model gauge\n")
		p("videodrift_deployed_model{model=%q} 1\n", s.Model)
	}

	if len(s.Stages) > 0 {
		p("# HELP videodrift_stage_latency_seconds Per-stage latency quantiles (log-bucket interpolated).\n")
		p("# TYPE videodrift_stage_latency_seconds summary\n")
		for _, st := range s.Stages {
			p("videodrift_stage_latency_seconds{stage=%q,quantile=\"0.5\"} %s\n", st.Stage, promFloat(st.P50Seconds))
			p("videodrift_stage_latency_seconds{stage=%q,quantile=\"0.95\"} %s\n", st.Stage, promFloat(st.P95Seconds))
			p("videodrift_stage_latency_seconds{stage=%q,quantile=\"0.99\"} %s\n", st.Stage, promFloat(st.P99Seconds))
			p("videodrift_stage_latency_seconds_sum{stage=%q} %s\n", st.Stage, promFloat(st.SumSeconds))
			p("videodrift_stage_latency_seconds_count{stage=%q} %d\n", st.Stage, st.Count)
		}
		p("# HELP videodrift_stage_latency_max_seconds Largest single observation per stage.\n")
		p("# TYPE videodrift_stage_latency_max_seconds gauge\n")
		for _, st := range s.Stages {
			p("videodrift_stage_latency_max_seconds{stage=%q} %s\n", st.Stage, promFloat(st.MaxSeconds))
		}
		p("# HELP videodrift_stage_latency_hist_seconds Per-stage latency as a cumulative log-bucket histogram.\n")
		p("# TYPE videodrift_stage_latency_hist_seconds histogram\n")
		for _, st := range s.Stages {
			for _, b := range st.Buckets {
				p("videodrift_stage_latency_hist_seconds_bucket{stage=%q,le=%q} %d\n",
					st.Stage, promFloat(b.LeSeconds), b.Count)
			}
			p("videodrift_stage_latency_hist_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", st.Stage, st.Count)
			p("videodrift_stage_latency_hist_seconds_sum{stage=%q} %s\n", st.Stage, promFloat(st.SumSeconds))
			p("videodrift_stage_latency_hist_seconds_count{stage=%q} %d\n", st.Stage, st.Count)
		}
	}
	return err
}

// WriteJSONTo is a convenience: snapshot the tracer and write JSON.
func (t *Tracer) WriteJSONTo(w io.Writer) error { return t.Snapshot().WriteJSON(w) }

// WritePrometheusTo is a convenience: snapshot the tracer and write
// Prometheus text format.
func (t *Tracer) WritePrometheusTo(w io.Writer) error { return t.Snapshot().WritePrometheus(w) }
