package telemetry

import (
	"math"
	"math/bits"
	"time"
)

// histBuckets is the number of log buckets. Bucket 0 holds zero-duration
// observations; bucket i (i ≥ 1) holds durations in [2^(i-1), 2^i)
// nanoseconds. 40 buckets span 1 ns … ~9 min, far beyond any pipeline
// stage.
const histBuckets = 40

// Histogram is a streaming log-bucketed latency histogram: powers-of-two
// nanosecond buckets, an exact running sum and maximum, and interpolated
// quantiles. Recording is allocation-free; a bucket index is one
// bits.Len64. The zero value is ready to use. Histogram itself is not
// synchronized — the owning Tracer serializes access.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64 // total nanoseconds
	max    uint64 // largest single observation, nanoseconds
}

// bucketOf returns the bucket index for a nanosecond value.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns) // 0 for ns==0; k for ns in [2^(k-1), 2^k)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketBounds returns the [lo, hi) nanosecond range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Exp2(float64(i - 1)), math.Exp2(float64(i))
}

// Observe folds one duration into the histogram. Negative durations count
// as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.counts[bucketOf(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Max returns the largest single observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the covering log bucket; the estimate is therefore
// within a factor of 2 of the exact order statistic. Quantile(1) returns
// the exact maximum; an empty histogram returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			v := lo + (hi-lo)*float64(rank-cum)/float64(c)
			if m := float64(h.max); v > m {
				v = m
			}
			return time.Duration(v)
		}
		cum += c
	}
	return time.Duration(h.max)
}

// cumBuckets freezes the histogram into cumulative Prometheus-style
// buckets: one entry per occupied log bucket, whose Count is the number
// of observations at or below the bucket's upper bound (in seconds).
// Empty trailing ranges are elided; the exporter appends the implicit
// le="+Inf" line from the total count.
func (h *Histogram) cumBuckets() []BucketCount {
	var out []BucketCount
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		_, hi := bucketBounds(i)
		out = append(out, BucketCount{LeSeconds: hi / 1e9, Count: cum})
	}
	return out
}

// snapshot freezes the histogram into exported stage statistics.
func (h *Histogram) snapshot(stage string) StageSnapshot {
	return StageSnapshot{
		Stage:      stage,
		Count:      h.count,
		SumSeconds: float64(h.sum) / 1e9,
		MaxSeconds: float64(h.max) / 1e9,
		P50Seconds: h.Quantile(0.50).Seconds(),
		P95Seconds: h.Quantile(0.95).Seconds(),
		P99Seconds: h.Quantile(0.99).Seconds(),
		Buckets:    h.cumBuckets(),
	}
}
