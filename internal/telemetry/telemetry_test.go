package telemetry

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Histogram bucket math ---

func TestHistogramBucketOf(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {2047, 11}, {2048, 12},
		{math.MaxUint64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Bucket bounds must tile [0, ∞): hi of bucket i == lo of bucket i+1.
	for i := 0; i < histBuckets-1; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi != lo {
			t.Errorf("bucket %d hi %g != bucket %d lo %g", i, hi, i+1, lo)
		}
	}
	// Every value must land inside its bucket's bounds.
	for _, ns := range []uint64{1, 2, 3, 100, 1024, 5000, 1 << 20} {
		lo, hi := bucketBounds(bucketOf(ns))
		if float64(ns) < lo || float64(ns) >= hi {
			t.Errorf("ns %d outside its bucket [%g, %g)", ns, lo, hi)
		}
	}
}

func TestHistogramCountSumMax(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	h.Observe(1500 * time.Nanosecond)
	h.Observe(2500 * time.Nanosecond)
	h.Observe(-5) // clamps to zero
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Sum() != 4000*time.Nanosecond {
		t.Errorf("Sum = %v", h.Sum())
	}
	if h.Max() != 2500*time.Nanosecond {
		t.Errorf("Max = %v", h.Max())
	}
	if q := h.Quantile(1); q != 2500*time.Nanosecond {
		t.Errorf("Quantile(1) = %v, want exact max", q)
	}
}

// TestHistogramQuantileVsExactSort checks the interpolated quantiles
// against exact order statistics on fixed seeds: a log-bucketed estimate
// must stay within a factor of 2 (one bucket width) of the exact value,
// and the quantiles must be monotone.
func TestHistogramQuantileVsExactSort(t *testing.T) {
	for _, seed := range []int64{1, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		n := 5000
		exact := make([]float64, n)
		for i := 0; i < n; i++ {
			// Log-normal-ish latencies centered near 3 µs.
			ns := math.Exp(rng.NormFloat64()*1.5 + 8)
			exact[i] = ns
			h.Observe(time.Duration(ns))
		}
		sort.Float64s(exact)
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			rank := int(math.Ceil(q * float64(n)))
			want := exact[rank-1]
			got := float64(h.Quantile(q))
			if got < want/2 || got > want*2 {
				t.Errorf("seed %d q%.2f: estimate %.0fns vs exact %.0fns (off by >2x)", seed, q, got, want)
			}
		}
		if !(h.Quantile(0.5) <= h.Quantile(0.95) && h.Quantile(0.95) <= h.Quantile(0.99) && h.Quantile(0.99) <= h.Max()) {
			t.Errorf("seed %d: quantiles not monotone", seed)
		}
	}
}

// --- Ring buffer ---

func TestRingBufferWraparound(t *testing.T) {
	tr := New(Config{RingSize: 4})
	for i := 0; i < 7; i++ {
		tr.DriftDeclared("m", 100+i, i, 0, 0, 0, nil)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Lag != 103+i {
			t.Errorf("event %d lag = %d, want %d (oldest-first order after wraparound)", i, e.Lag, 103+i)
		}
		if i > 0 && e.Seq != evs[i-1].Seq+1 {
			t.Errorf("event %d seq %d not consecutive after %d", i, e.Seq, evs[i-1].Seq)
		}
	}
	if s := tr.Snapshot(); s.Drifts != 7 {
		t.Errorf("counter must survive eviction: Drifts = %d, want 7", s.Drifts)
	}
}

func TestPerFrameEventsGated(t *testing.T) {
	quiet := New(Config{RingSize: 16})
	quiet.FrameObserved(StateMonitoring)
	quiet.MartingaleUpdate(0.5, 1, 0.5, 0.5)
	if n := len(quiet.Events()); n != 0 {
		t.Errorf("per-frame events ringed with PerFrame off: %d", n)
	}
	s := quiet.Snapshot()
	if s.Frames != 1 || s.MartingaleUpdates != 1 {
		t.Errorf("counters must still advance: %+v", s)
	}

	loud := New(Config{RingSize: 16, PerFrame: true})
	loud.FrameObserved(StateSelecting)
	loud.MartingaleUpdate(0.5, 1, 0.5, 0.5)
	evs := loud.Events()
	if len(evs) != 2 || evs[0].Kind != KindFrameObserved || evs[1].Kind != KindMartingaleUpdate {
		t.Errorf("PerFrame events missing: %v", evs)
	}
	if loud.Snapshot().FramesByState["selecting"] != 1 {
		t.Errorf("state attribution lost: %v", loud.Snapshot().FramesByState)
	}
}

// --- Event semantics ---

func TestEventFrameStamping(t *testing.T) {
	tr := New(Config{})
	tr.ModelDeployed("day") // before any frame
	tr.FrameObserved(StateMonitoring)
	tr.FrameObserved(StateMonitoring)
	tr.DriftDeclared("day", 2, 1, 7, 7, 0.1, nil)
	evs := tr.Events()
	if evs[0].Frame != -1 {
		t.Errorf("pre-stream deploy frame = %d, want -1", evs[0].Frame)
	}
	if evs[1].Frame != 1 {
		t.Errorf("drift frame = %d, want 1 (0-based index of second frame)", evs[1].Frame)
	}
}

func TestEventJSONKinds(t *testing.T) {
	tr := New(Config{})
	tr.SelectionResolved("MSBI", "night", 30, []Candidate{
		{Model: "day", Rejected: true, Martingale: 9.5, MeanP: 0.01},
		{Model: "night", Martingale: 0.2, MeanP: 0.48},
	})
	raw, err := json.Marshal(tr.Events()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"selection_resolved"`, `"selector":"MSBI"`, `"model":"night"`, `"rejected":true`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("event JSON missing %s: %s", want, raw)
		}
	}
}

// --- Nil safety ---

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.FrameObserved(StateMonitoring)
	tr.MartingaleUpdate(0.5, 1, 1, 0.5)
	tr.DriftDeclared("m", 1, 1, 0, 0, 0, nil)
	tr.SelectionStarted("MSBO")
	tr.SelectionResolved("MSBO", "m", 10, nil)
	tr.ModelTrained("m", 100)
	tr.ModelDeployed("m")
	tr.ObserveStage(StageFeaturize, time.Microsecond)
	tr.FrameQuarantined("bad dimensions")
	tr.WorkerRestarted(2, 1, "worker panic")
	tr.TrainingFailed("m", 1, "injected")
	tr.CheckpointFailed(1, "injected")
	tr.HealthChanged(HealthDegraded, "training failing")
	if h := tr.Health(); h != HealthOK {
		t.Errorf("nil tracer health = %v, want ok", h)
	}
	if evs := tr.Events(); evs != nil {
		t.Errorf("nil tracer returned events: %v", evs)
	}
	if s := tr.Snapshot(); s.Frames != 0 || len(s.Stages) != 0 {
		t.Errorf("nil tracer snapshot not zero: %+v", s)
	}
}

// --- Exporters ---

// TestPrometheusGolden locks the text-exposition format: metric names,
// types, label shapes and number rendering.
func TestPrometheusGolden(t *testing.T) {
	now := time.Unix(1700000000, 0)
	tr := New(Config{RingSize: 8, Now: func() time.Time { return now }})
	tr.FrameObserved(StateMonitoring)
	tr.FrameObserved(StateMonitoring)
	tr.MartingaleUpdate(0.2, 1.5, 0.5, 0.35)
	tr.ObserveStage(StageFeaturize, 1500*time.Nanosecond)
	tr.ObserveStage(StageFeaturize, 2500*time.Nanosecond)
	tr.ObserveStage(StageClassify, 4096*time.Nanosecond)
	tr.DriftDeclared("day", 40, 4, 8, 6.5, 0.1, nil)
	tr.ModelDeployed("night")

	var b strings.Builder
	if err := tr.WritePrometheusTo(&b); err != nil {
		t.Fatal(err)
	}
	const golden = `# HELP videodrift_frames_total Frames processed by the instrumented component.
# TYPE videodrift_frames_total counter
videodrift_frames_total 2
# HELP videodrift_frames_state_total Frames processed, by pipeline state.
# TYPE videodrift_frames_state_total counter
videodrift_frames_state_total{state="monitoring"} 2
videodrift_frames_state_total{state="selecting"} 0
videodrift_frames_state_total{state="training"} 0
# HELP videodrift_martingale_updates_total Sampled frames folded into the conformal martingale.
# TYPE videodrift_martingale_updates_total counter
videodrift_martingale_updates_total 1
# HELP videodrift_drifts_total Drifts declared by the Drift Inspector.
# TYPE videodrift_drifts_total counter
videodrift_drifts_total 1
# HELP videodrift_selections_started_total Selection windows opened after a drift declaration.
# TYPE videodrift_selections_started_total counter
videodrift_selections_started_total 0
# HELP videodrift_selections_total Model-selection runs resolved after a drift.
# TYPE videodrift_selections_total counter
videodrift_selections_total 0
# HELP videodrift_models_trained_total Models trained mid-stream on novel distributions.
# TYPE videodrift_models_trained_total counter
videodrift_models_trained_total 0
# HELP videodrift_model_deployments_total Model deployments (including the initial one).
# TYPE videodrift_model_deployments_total counter
videodrift_model_deployments_total 1
# HELP videodrift_checkpoints_total Monitor checkpoints persisted to the state store.
# TYPE videodrift_checkpoints_total counter
videodrift_checkpoints_total 0
# HELP videodrift_quarantined_frames_total Malformed frames rejected by the admission gate.
# TYPE videodrift_quarantined_frames_total counter
videodrift_quarantined_frames_total 0
# HELP videodrift_worker_restarts_total Shard workers restarted by the supervisor after a panic.
# TYPE videodrift_worker_restarts_total counter
videodrift_worker_restarts_total 0
# HELP videodrift_training_failures_total Failed post-drift training attempts.
# TYPE videodrift_training_failures_total counter
videodrift_training_failures_total 0
# HELP videodrift_checkpoint_failures_total Failed checkpoint write attempts.
# TYPE videodrift_checkpoint_failures_total counter
videodrift_checkpoint_failures_total 0
# HELP videodrift_events_total Structured events recorded, by kind.
# TYPE videodrift_events_total counter
videodrift_events_total{kind="frame_observed"} 2
videodrift_events_total{kind="martingale_update"} 1
videodrift_events_total{kind="drift_declared"} 1
videodrift_events_total{kind="selection_started"} 0
videodrift_events_total{kind="selection_resolved"} 0
videodrift_events_total{kind="model_trained"} 0
videodrift_events_total{kind="model_deployed"} 1
videodrift_events_total{kind="checkpoint_saved"} 0
videodrift_events_total{kind="frame_quarantined"} 0
videodrift_events_total{kind="worker_restarted"} 0
videodrift_events_total{kind="training_failed"} 0
videodrift_events_total{kind="checkpoint_failed"} 0
videodrift_events_total{kind="health_changed"} 0
videodrift_events_total{kind="replica_delta_sent"} 0
videodrift_events_total{kind="replica_delta_applied"} 0
videodrift_events_total{kind="replica_promoted"} 0
# HELP videodrift_degraded Degradation state (0 ok, 1 degraded, 2 failed).
# TYPE videodrift_degraded gauge
videodrift_degraded 0
# HELP videodrift_martingale_value Current CUSUM martingale value S_l.
# TYPE videodrift_martingale_value gauge
videodrift_martingale_value 8
# HELP videodrift_martingale_window_delta Current windowed martingale growth |S_l - S_l-W|.
# TYPE videodrift_martingale_window_delta gauge
videodrift_martingale_window_delta 6.5
# HELP videodrift_mean_p_value Mean conformal p-value since the inspector's last reset.
# TYPE videodrift_mean_p_value gauge
videodrift_mean_p_value 0.1
# HELP videodrift_deployed_model Currently deployed model (value is always 1).
# TYPE videodrift_deployed_model gauge
videodrift_deployed_model{model="night"} 1
# HELP videodrift_stage_latency_seconds Per-stage latency quantiles (log-bucket interpolated).
# TYPE videodrift_stage_latency_seconds summary
videodrift_stage_latency_seconds{stage="featurize",quantile="0.5"} 2.048e-06
videodrift_stage_latency_seconds{stage="featurize",quantile="0.95"} 2.5e-06
videodrift_stage_latency_seconds{stage="featurize",quantile="0.99"} 2.5e-06
videodrift_stage_latency_seconds_sum{stage="featurize"} 4e-06
videodrift_stage_latency_seconds_count{stage="featurize"} 2
videodrift_stage_latency_seconds{stage="classify",quantile="0.5"} 4.096e-06
videodrift_stage_latency_seconds{stage="classify",quantile="0.95"} 4.096e-06
videodrift_stage_latency_seconds{stage="classify",quantile="0.99"} 4.096e-06
videodrift_stage_latency_seconds_sum{stage="classify"} 4.096e-06
videodrift_stage_latency_seconds_count{stage="classify"} 1
# HELP videodrift_stage_latency_max_seconds Largest single observation per stage.
# TYPE videodrift_stage_latency_max_seconds gauge
videodrift_stage_latency_max_seconds{stage="featurize"} 2.5e-06
videodrift_stage_latency_max_seconds{stage="classify"} 4.096e-06
# HELP videodrift_stage_latency_hist_seconds Per-stage latency as a cumulative log-bucket histogram.
# TYPE videodrift_stage_latency_hist_seconds histogram
videodrift_stage_latency_hist_seconds_bucket{stage="featurize",le="2.048e-06"} 1
videodrift_stage_latency_hist_seconds_bucket{stage="featurize",le="4.096e-06"} 2
videodrift_stage_latency_hist_seconds_bucket{stage="featurize",le="+Inf"} 2
videodrift_stage_latency_hist_seconds_sum{stage="featurize"} 4e-06
videodrift_stage_latency_hist_seconds_count{stage="featurize"} 2
videodrift_stage_latency_hist_seconds_bucket{stage="classify",le="8.192e-06"} 1
videodrift_stage_latency_hist_seconds_bucket{stage="classify",le="+Inf"} 1
videodrift_stage_latency_hist_seconds_sum{stage="classify"} 4.096e-06
videodrift_stage_latency_hist_seconds_count{stage="classify"} 1
`
	if got := b.String(); got != golden {
		t.Errorf("Prometheus exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	tr := New(Config{})
	tr.FrameObserved(StateMonitoring)
	tr.ObserveStage(StageSelect, 2*time.Millisecond)
	tr.SelectionResolved("MSBO", "rain", 10, []Candidate{{Model: "rain", Brier: 0.04}})

	var b strings.Builder
	if err := tr.WriteJSONTo(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(b.String()), &s); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if s.Frames != 1 || s.Selections != 1 || len(s.Stages) != 1 || s.Stages[0].Stage != "select" {
		t.Errorf("round-tripped snapshot wrong: %+v", s)
	}
}

// --- Concurrency (meaningful under -race) ---

func TestTracerConcurrentUse(t *testing.T) {
	tr := New(Config{RingSize: 64, PerFrame: true})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.FrameObserved(StateMonitoring)
				tr.ObserveStage(StageFeaturize, time.Microsecond)
				if i%50 == 0 {
					tr.DriftDeclared("m", i, i/10, 1, 1, 0.5, nil)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = tr.Snapshot()
			_ = tr.Events()
			var b strings.Builder
			_ = tr.WritePrometheusTo(&b)
		}
	}()
	wg.Wait()
	s := tr.Snapshot()
	if s.Frames != 2000 || s.Drifts != 40 {
		t.Errorf("lost updates under concurrency: %+v", s)
	}
}

// TestCheckpointSaved covers the checkpoint telemetry surface: the
// counter, the freshness gauge, the stage histogram and the ringed
// event.
func TestCheckpointSaved(t *testing.T) {
	now := time.Unix(1700000000, 0)
	tr := New(Config{RingSize: 8, Now: func() time.Time { return now }})
	tr.CheckpointSaved("/state/checkpoint-00000001.vdc", 12345, 3*time.Millisecond)
	now = now.Add(2 * time.Second)

	s := tr.Snapshot()
	if s.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", s.Checkpoints)
	}
	if s.LastCheckpointUnixNano != time.Unix(1700000000, 0).UnixNano() {
		t.Errorf("LastCheckpointUnixNano = %d", s.LastCheckpointUnixNano)
	}
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "videodrift_checkpoints_total 1\n") {
		t.Error("checkpoint counter missing from Prometheus output")
	}
	if !strings.Contains(b.String(), "videodrift_last_checkpoint_age_seconds 2\n") {
		t.Errorf("age gauge missing or wrong:\n%s", b.String())
	}
	found := false
	for _, st := range s.Stages {
		if st.Stage == "checkpoint" && st.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Error("checkpoint stage latency not recorded")
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != KindCheckpointSaved ||
		evs[0].Path != "/state/checkpoint-00000001.vdc" || evs[0].Bytes != 12345 {
		t.Errorf("ringed event = %+v", evs)
	}
}

// TestFaultTelemetry covers the fault/degradation surface: counters,
// ringed event fields, health-transition dedup, and the Prometheus
// families the chaos suite and /healthz rely on.
func TestFaultTelemetry(t *testing.T) {
	tr := New(Config{RingSize: 16})
	tr.FrameQuarantined("bad dimensions: got 8 pixels, want 256")
	tr.FrameQuarantined("non-finite pixel")
	tr.WorkerRestarted(3, 1, "worker panic: injected")
	tr.TrainingFailed("novel-1", 2, "injected training fault")
	tr.CheckpointFailed(1, "injected write failure")
	tr.HealthChanged(HealthDegraded, "training failing")
	tr.HealthChanged(HealthDegraded, "still failing") // duplicate: dropped
	tr.HealthChanged(HealthOK, "recovered")

	s := tr.Snapshot()
	if s.Quarantined != 2 || s.WorkerRestarts != 1 || s.TrainingFailures != 1 || s.CheckpointFailures != 1 {
		t.Errorf("fault counters wrong: %+v", s)
	}
	if s.Health != HealthOK {
		t.Errorf("Health = %v, want ok", s.Health)
	}
	if tr.Health() != HealthOK {
		t.Errorf("Tracer.Health = %v, want ok", tr.Health())
	}

	evs := tr.Events()
	var healthEvents []Event
	var restart *Event
	for i, e := range evs {
		switch e.Kind {
		case KindHealthChanged:
			healthEvents = append(healthEvents, e)
		case KindWorkerRestarted:
			restart = &evs[i]
		}
	}
	if len(healthEvents) != 2 {
		t.Fatalf("health transitions = %d, want 2 (duplicate dropped): %+v", len(healthEvents), healthEvents)
	}
	if healthEvents[0].Health != "degraded" || healthEvents[1].Health != "ok" {
		t.Errorf("health transition sequence wrong: %+v", healthEvents)
	}
	if restart == nil || restart.Shard != 3 || restart.Attempt != 1 || restart.Reason != "worker panic: injected" {
		t.Errorf("restart event = %+v", restart)
	}

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"videodrift_quarantined_frames_total 2\n",
		"videodrift_worker_restarts_total 1\n",
		"videodrift_training_failures_total 1\n",
		"videodrift_checkpoint_failures_total 1\n",
		"videodrift_degraded 0\n",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, b.String())
		}
	}

	tr.HealthChanged(HealthFailed, "crash loop")
	var b2 strings.Builder
	if err := tr.WritePrometheusTo(&b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "videodrift_degraded 2\n") {
		t.Errorf("degraded gauge did not follow failure:\n%s", b2.String())
	}
}

// TestHealthJSONRoundTrip locks the Health JSON encoding.
func TestHealthJSONRoundTrip(t *testing.T) {
	for h := Health(0); h < healthCount; h++ {
		raw, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		var back Health
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back != h {
			t.Errorf("health %v round-tripped to %v", h, back)
		}
	}
	var bad Health
	if err := json.Unmarshal([]byte(`"wedged"`), &bad); err == nil {
		t.Error("unknown health name decoded without error")
	}
}

// TestEnumJSONRoundTrip exhaustively round-trips every value of every
// exported enum through JSON: each value must encode to a distinct,
// non-numeric name and decode back to itself, and an unknown name must
// be rejected — so exported snapshots stay greppable and new enum values
// cannot ship without a name.
func TestEnumJSONRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	roundTrip := func(enum string, v json.Marshaler, decodeInto func([]byte) (any, error)) {
		t.Helper()
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s %v: %v", enum, v, err)
		}
		var name string
		if err := json.Unmarshal(raw, &name); err != nil || name == "" {
			t.Fatalf("%s %v encoded to %s, want a non-empty string", enum, v, raw)
		}
		if key := enum + "/" + name; seen[key] {
			t.Errorf("%s name %q is not distinct", enum, name)
		} else {
			seen[key] = true
		}
		back, err := decodeInto(raw)
		if err != nil {
			t.Fatalf("%s: decode %s: %v", enum, raw, err)
		}
		if back != any(v) {
			t.Errorf("%s %v round-tripped to %v", enum, v, back)
		}
	}
	for k := Kind(0); k < kindCount; k++ {
		roundTrip("kind", k, func(raw []byte) (any, error) {
			var back Kind
			err := json.Unmarshal(raw, &back)
			return back, err
		})
	}
	for s := State(0); s < stateCount; s++ {
		roundTrip("state", s, func(raw []byte) (any, error) {
			var back State
			err := json.Unmarshal(raw, &back)
			return back, err
		})
	}
	for h := Health(0); h < healthCount; h++ {
		roundTrip("health", h, func(raw []byte) (any, error) {
			var back Health
			err := json.Unmarshal(raw, &back)
			return back, err
		})
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"not_a_kind"`), &k); err == nil {
		t.Error("unknown kind name decoded without error")
	}
	var s State
	if err := json.Unmarshal([]byte(`"daydreaming"`), &s); err == nil {
		t.Error("unknown state name decoded without error")
	}
}

// TestHistogramQuantilePinned pins the interpolation math on a
// hand-computed distribution: 4 observations of 100 ns (bucket [64,128)),
// 4 of 1000 ns (bucket [512,1024)) and 2 of 10000 ns (bucket
// [8192,16384)). Rank r inside a bucket with c observations and bounds
// [lo, hi) interpolates to lo + (hi−lo)·r/c, capped at the exact max.
func TestHistogramQuantilePinned(t *testing.T) {
	var h Histogram
	for i := 0; i < 4; i++ {
		h.Observe(100 * time.Nanosecond)
	}
	for i := 0; i < 4; i++ {
		h.Observe(1000 * time.Nanosecond)
	}
	for i := 0; i < 2; i++ {
		h.Observe(10000 * time.Nanosecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0, 80},      // rank 1 of 4 in [64,128): 64 + 64·1/4
		{0.3, 112},   // rank 3 of 4 in [64,128): 64 + 64·3/4
		{0.5, 640},   // rank 5 → rank 1 of 4 in [512,1024): 512 + 512·1/4
		{0.8, 1024},  // rank 8 → rank 4 of 4 in [512,1024): the bucket's hi
		{0.9, 10000}, // rank 9 interpolates past the max and is capped to it
		{1, 10000},   // exact max
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %v, want %vns", tc.q, got, tc.want)
		}
	}

	// The same distribution's cumulative export: one entry per occupied
	// bucket, counts monotone, last count == total, bounds in seconds.
	want := []BucketCount{
		{LeSeconds: 128e-9, Count: 4},
		{LeSeconds: 1024e-9, Count: 8},
		{LeSeconds: 16384e-9, Count: 10},
	}
	got := h.snapshot("pinned").Buckets
	if len(got) != len(want) {
		t.Fatalf("cumulative buckets %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
