package store

import (
	"errors"
	"testing"

	"videodrift/internal/core"
	"videodrift/internal/vidsim"
)

// nextGeneration evolves a checkpoint into its successor the way a
// live fleet does: the entry table is extended (never rewritten, the
// pointers are shared) and the runtime shard state is replaced.
func nextGeneration(t testing.TB, base *Checkpoint, addEntry bool) *Checkpoint {
	t.Helper()
	next := &Checkpoint{
		CreatedUnixNano: base.CreatedUnixNano + 1,
		Frames:          base.Frames + 50,
		Gen:             base.Gen + 1,
		Epoch:           base.Epoch,
		Entries:         base.Entries,
		Shards:          base.Shards,
	}
	if addEntry {
		day, _ := getFixtures(t)
		reg := core.NewRegistry(day)
		cfg := core.DefaultPipelineConfig(testDim, classes)
		cfg.Provision = quickProvision(31)
		pipe := core.NewPipeline(reg, testLabeler, cfg)
		for _, f := range vidsim.GenerateTraining(testCond(vidsim.Day()), testW, testH, 30, 9) {
			pipe.Process(f)
		}
		next.Entries = append(append([]*core.ModelEntry(nil), base.Entries...), day)
		next.Shards = []ShardState{
			{Registry: []int{0, 2}, Pipeline: pipe.Snapshot()},
			base.Shards[1],
		}
	}
	return next
}

func TestDeltaRoundTrip(t *testing.T) {
	base := testCheckpoint(t)
	base.Gen, base.Epoch = 1, 1
	full, baseCRCs, err := EncodeWithCRCs(base)
	if err != nil {
		t.Fatalf("encode base: %v", err)
	}

	// Generation 2: runtime-only change — the steady state.
	next := nextGeneration(t, base, false)
	d, nextCRCs, err := DiffCheckpoints(base, baseCRCs, next)
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if len(d.NewEntries) != 0 {
		t.Fatalf("steady-state delta carries %d entry blobs", len(d.NewEntries))
	}
	deltaBytes, err := EncodeDelta(d)
	if err != nil {
		t.Fatalf("encode delta: %v", err)
	}
	// The acceptance bar: a steady-state delta is at most a quarter of a
	// full snapshot (in practice far less — no model blobs at all).
	if 4*len(deltaBytes) > len(full) {
		t.Fatalf("steady-state delta is %d bytes, full snapshot %d: exceeds 25%%", len(deltaBytes), len(full))
	}
	t.Logf("full %d bytes, steady-state delta %d bytes (%.1f%%)", len(full), len(deltaBytes), 100*float64(len(deltaBytes))/float64(len(full)))

	got, err := DecodeDelta(deltaBytes)
	if err != nil {
		t.Fatalf("decode delta: %v", err)
	}
	applied, appliedCRCs, err := ApplyDelta(base, baseCRCs, got)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if applied.Gen != 2 || applied.Frames != next.Frames || len(applied.Entries) != len(base.Entries) {
		t.Fatalf("applied gen %d frames %d entries %d", applied.Gen, applied.Frames, len(applied.Entries))
	}
	if digestCRCs(appliedCRCs) != digestCRCs(nextCRCs) {
		t.Fatal("applied fingerprint disagrees with the diff's")
	}

	// Generation 3: a provisioned model rides inside the delta.
	next2 := nextGeneration(t, applied, true)
	d2, crcs2, err := DiffCheckpoints(applied, appliedCRCs, next2)
	if err != nil {
		t.Fatalf("diff with new entry: %v", err)
	}
	if len(d2.NewEntries) != 1 {
		t.Fatalf("delta carries %d new entries, want 1", len(d2.NewEntries))
	}
	wire, err := EncodeDelta(d2)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	d2got, err := DecodeDelta(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	applied2, applied2CRCs, err := ApplyDelta(applied, appliedCRCs, d2got)
	if err != nil {
		t.Fatalf("apply with new entry: %v", err)
	}
	if len(applied2.Entries) != 3 || applied2.Entries[2].Name != "day" {
		t.Fatalf("applied entries %d, want the new model appended", len(applied2.Entries))
	}
	if digestCRCs(applied2CRCs) != digestCRCs(crcs2) {
		t.Fatal("fingerprint diverged after an entry-carrying delta")
	}
	// ApplyDelta with a nil fingerprint recomputes it and agrees.
	applied2b, recomputed, err := ApplyDelta(applied, nil, d2got)
	if err != nil {
		t.Fatalf("apply with recomputed CRCs: %v", err)
	}
	if digestCRCs(recomputed) != digestCRCs(applied2CRCs) || len(applied2b.Entries) != 3 {
		t.Fatal("recomputed fingerprint disagrees with the streamed one")
	}
}

func TestDiffRejectsNonExtension(t *testing.T) {
	base := testCheckpoint(t)
	base.Gen = 1
	_, baseCRCs, err := EncodeWithCRCs(base)
	if err != nil {
		t.Fatal(err)
	}

	shrunk := nextGeneration(t, base, false)
	shrunk.Entries = base.Entries[:1]
	shrunk.Shards = []ShardState{{Registry: []int{0}, Pipeline: base.Shards[1].Pipeline}}
	if _, _, err := DiffCheckpoints(base, baseCRCs, shrunk); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("shrunken table: %v, want ErrDeltaBase", err)
	}

	rewritten := nextGeneration(t, base, false)
	_, night := getFixtures(t)
	rewritten.Entries = []*core.ModelEntry{night, base.Entries[1]}
	if _, _, err := DiffCheckpoints(base, baseCRCs, rewritten); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("rewritten prefix: %v, want ErrDeltaBase", err)
	}

	if _, _, err := DiffCheckpoints(base, baseCRCs[:1], nextGeneration(t, base, false)); err == nil {
		t.Fatal("mismatched fingerprint length accepted")
	}
}

func TestApplyRejectsWrongBase(t *testing.T) {
	base := testCheckpoint(t)
	base.Gen = 1
	_, baseCRCs, err := EncodeWithCRCs(base)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := DiffCheckpoints(base, baseCRCs, nextGeneration(t, base, false))
	if err != nil {
		t.Fatal(err)
	}

	wrongGen := *d
	wrongGen.BaseGen = 7
	if _, _, err := ApplyDelta(base, baseCRCs, &wrongGen); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("wrong base gen: %v, want ErrDeltaBase", err)
	}
	wrongCount := *d
	wrongCount.BaseEntries = 1
	if _, _, err := ApplyDelta(base, baseCRCs, &wrongCount); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("wrong entry count: %v, want ErrDeltaBase", err)
	}
	wrongDigest := *d
	wrongDigest.BaseDigest ^= 0xffffffff
	if _, _, err := ApplyDelta(base, baseCRCs, &wrongDigest); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("wrong digest: %v, want ErrDeltaBase", err)
	}
}

func TestDecodeDeltaRejectsDamage(t *testing.T) {
	base := testCheckpoint(t)
	base.Gen = 1
	_, baseCRCs, err := EncodeWithCRCs(base)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := DiffCheckpoints(base, baseCRCs, nextGeneration(t, base, true))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), wire...)
	flipped[len(flipped)/2] ^= 0x10
	if _, err := DecodeDelta(flipped); err == nil {
		t.Fatal("corrupted delta decoded")
	}
	if _, err := DecodeDelta(wire[:headerSize+10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated delta: %v, want ErrTruncated", err)
	}

	// Kind confusion: a delta envelope is not a checkpoint and vice
	// versa — the envelope kind field keeps the decoders honest.
	if _, err := Decode(wire); err == nil {
		t.Fatal("Decode accepted a delta envelope")
	}
	full, _, err := EncodeWithCRCs(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDelta(full); err == nil {
		t.Fatal("DecodeDelta accepted a checkpoint envelope")
	}
}

func TestLoadLatestChain(t *testing.T) {
	fs := NewMemFS()
	st, err := OpenFS("/ckpt", fs)
	if err != nil {
		t.Fatal(err)
	}

	base := tinyCheckpoint(t, 100)
	base.Gen, base.Epoch = 1, 1
	if _, err := st.Save(base); err != nil {
		t.Fatal(err)
	}
	crcs, err := EntryCRCs(base)
	if err != nil {
		t.Fatal(err)
	}
	// Three chained deltas: gen 2, 3, 4.
	cp := base
	for g := 0; g < 3; g++ {
		next := tinyCheckpoint(t, cp.Frames+100)
		next.Gen, next.Epoch = cp.Gen+1, 1
		next.Entries = cp.Entries
		d, nextCRCs, err := DiffCheckpoints(cp, crcs, next)
		if err != nil {
			t.Fatalf("diff gen %d: %v", next.Gen, err)
		}
		if _, err := st.SaveDelta(d); err != nil {
			t.Fatalf("save delta gen %d: %v", next.Gen, err)
		}
		cp, crcs = next, nextCRCs
	}

	got, _, applied, err := st.LoadLatestChain()
	if err != nil {
		t.Fatalf("load chain: %v", err)
	}
	if applied != 3 || got.Gen != 4 || got.Frames != 400 {
		t.Fatalf("chain: applied %d, gen %d, frames %d; want 3, 4, 400", applied, got.Gen, got.Frames)
	}

	// Damage the middle delta: the chain stops before it.
	paths, err := st.DeltaPaths()
	if err != nil || len(paths) != 3 {
		t.Fatalf("delta paths: %v, %v", paths, err)
	}
	data, err := fs.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	f, err := fs.CreateTemp("/ckpt", "damage-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(f.Name(), paths[1]); err != nil {
		t.Fatal(err)
	}
	got, _, applied, err = st.LoadLatestChain()
	if err != nil {
		t.Fatalf("load chain with damaged middle: %v", err)
	}
	if applied != 1 || got.Gen != 2 {
		t.Fatalf("damaged middle: applied %d, gen %d; want 1, 2", applied, got.Gen)
	}

	// Remove it entirely: a generation gap also ends the chain.
	if err := fs.Remove(paths[1]); err != nil {
		t.Fatal(err)
	}
	got, _, applied, err = st.LoadLatestChain()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 || got.Gen != 2 {
		t.Fatalf("gapped chain: applied %d, gen %d; want 1, 2", applied, got.Gen)
	}

	// A newer full checkpoint supersedes the deltas at or below its
	// generation.
	cp4 := tinyCheckpoint(t, 1000)
	cp4.Gen, cp4.Epoch = 4, 1
	if _, err := st.Save(cp4); err != nil {
		t.Fatal(err)
	}
	got, _, applied, err = st.LoadLatestChain()
	if err != nil {
		t.Fatal(err)
	}
	if applied != 0 || got.Gen != 4 || got.Frames != 1000 {
		t.Fatalf("superseding full: applied %d, gen %d, frames %d; want 0, 4, 1000", applied, got.Gen, got.Frames)
	}
}

// TestDeltaCrashPointRecovery kills a delta write at every byte offset
// (plus fsync and rename) and asserts the chain invariant: the failed
// SaveDelta surfaces an error, LoadLatestChain still reproduces the
// last intact generation, and the retried save completes the chain.
func TestDeltaCrashPointRecovery(t *testing.T) {
	base := tinyCheckpoint(t, 100)
	base.Gen, base.Epoch = 1, 1
	baseCRCs, err := EntryCRCs(base)
	if err != nil {
		t.Fatal(err)
	}
	next := tinyCheckpoint(t, 200)
	next.Gen, next.Epoch = 2, 1
	next.Entries = base.Entries
	d, _, err := DiffCheckpoints(base, baseCRCs, next)
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := EncodeDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sweeping %d byte offsets", len(encoded))

	crash := func(t *testing.T, mode string, offset int) {
		t.Helper()
		cfs := &crashFS{FS: NewMemFS(), mode: mode, bytes: offset}
		st, err := OpenFS("/ckpt", cfs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Save(base); err != nil {
			t.Fatalf("seed save: %v", err)
		}
		cfs.armed = true
		if _, err := st.SaveDelta(d); !errors.Is(err, errInjectedCrash) {
			t.Fatalf("crashed delta save returned %v, want injected crash", err)
		}
		cp, _, applied, err := st.LoadLatestChain()
		if err != nil {
			t.Fatalf("LoadLatestChain after crash: %v", err)
		}
		if applied != 0 || cp.Frames != base.Frames {
			t.Fatalf("recovered applied=%d frames=%d, want the base generation", applied, cp.Frames)
		}
		// The store is not wedged: the retried delta lands and chains.
		if _, err := st.SaveDelta(d); err != nil {
			t.Fatalf("retry delta save: %v", err)
		}
		cp, _, applied, err = st.LoadLatestChain()
		if err != nil {
			t.Fatal(err)
		}
		if applied != 1 || cp.Frames != next.Frames {
			t.Fatalf("after retry applied=%d frames=%d, want 1, %d", applied, cp.Frames, next.Frames)
		}
	}

	for offset := 0; offset < len(encoded); offset++ {
		crash(t, "write", offset)
	}
	crash(t, "sync", 0)
	crash(t, "rename", 0)
}
