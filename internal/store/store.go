package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrNoCheckpoint reports a store directory holding no loadable
// checkpoint.
var ErrNoCheckpoint = errors.New("store: no checkpoint found")

// retainCheckpoints is how many checkpoint generations Save keeps on
// disk: the newest plus one known-good fallback, so a checkpoint that
// turns out unreadable (torn write discovered late, media corruption)
// never strands the service without state.
const retainCheckpoints = 2

// retainDeltas caps how many delta generations SaveDelta keeps: deltas
// are superseded the moment a newer full checkpoint lands, so the cap
// only bounds disk while a standby persists a long delta run between
// fulls.
const retainDeltas = 64

const (
	filePrefix  = "checkpoint-"
	fileSuffix  = ".vdc"
	deltaPrefix = "delta-"
	deltaSuffix = ".vdd"
)

// Store manages a directory of rotated checkpoint files. It is not safe
// for concurrent Save calls; the checkpoint scheduler serializes them.
type Store struct {
	dir string
	fs  FS
}

// Open prepares a checkpoint store rooted at dir on the real
// filesystem, creating the directory if needed.
func Open(dir string) (*Store, error) { return OpenFS(dir, OSFS) }

// OpenFS is Open over an injectable I/O layer — what the crash-point
// tests and the fault-injection harness (internal/faults) use to fail
// writes at exact byte offsets and prove LoadLatest always recovers the
// previous generation.
func OpenFS(dir string, fsys FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if fsys == nil {
		fsys = OSFS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, fs: fsys}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// seqOf parses the sequence number out of a checkpoint file name, or
// returns false for files that are not checkpoints.
func seqOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(filePrefix):len(name)-len(fileSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Paths returns the store's checkpoint files, newest (highest sequence)
// first.
func (s *Store) Paths() ([]string, error) {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type seqPath struct {
		seq  uint64
		path string
	}
	var found []seqPath
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		if seq, ok := seqOf(de.Name()); ok {
			found = append(found, seqPath{seq, filepath.Join(s.dir, de.Name())})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].seq > found[j].seq })
	paths := make([]string, len(found))
	for i, f := range found {
		paths[i] = f.path
	}
	return paths, nil
}

// nextSeq returns the sequence number the next Save should use.
func (s *Store) nextSeq() (uint64, error) {
	paths, err := s.Paths()
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 1, nil
	}
	seq, _ := seqOf(filepath.Base(paths[0]))
	return seq + 1, nil
}

// Save encodes the checkpoint and writes it atomically: the bytes go to
// a temp file in the same directory, are fsynced, and the file is then
// renamed into place — a crash at any point leaves either the complete
// new checkpoint or the untouched previous one, never a partial file
// under a checkpoint name. Older generations beyond the retention limit
// are pruned. It returns the final path.
func (s *Store) Save(cp *Checkpoint) (string, error) {
	data, err := Encode(cp)
	if err != nil {
		return "", err
	}
	return s.SaveEncoded(data)
}

// SaveEncoded writes already-encoded checkpoint envelope bytes under
// the next sequence number — what a replication standby uses to
// persist the exact bytes the primary streamed (re-encoding would
// break the CRC chain later deltas verify against).
func (s *Store) SaveEncoded(data []byte) (string, error) {
	seq, err := s.nextSeq()
	if err != nil {
		return "", err
	}
	final := filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", filePrefix, seq, fileSuffix))
	if err := s.writeAtomic(final, data); err != nil {
		return "", err
	}
	s.prune()
	return final, nil
}

// writeAtomic lands data at final via the temp+fsync+rename dance.
func (s *Store) writeAtomic(final string, data []byte) error {
	tmp, err := s.fs.CreateTemp(s.dir, ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	defer s.fs.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", tmpName, err)
	}
	if err := s.fs.Rename(tmpName, final); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Persist the rename itself (best effort — not all platforms support
	// fsync on directories).
	_ = s.fs.SyncDir(s.dir)
	return nil
}

// prune removes checkpoint generations beyond the retention limit.
// Failures are ignored: stale files cost disk, not correctness.
func (s *Store) prune() {
	paths, err := s.Paths()
	if err != nil {
		return
	}
	for _, p := range paths[min(len(paths), retainCheckpoints):] {
		_ = s.fs.Remove(p)
	}
}

// LoadPath reads and decodes one checkpoint file.
func LoadPath(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	cp, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return cp, nil
}

// LoadLatest returns the newest checkpoint that decodes cleanly,
// falling back over damaged files (truncation, bit flips, wrong
// version) to the previous good generation. It returns ErrNoCheckpoint
// when the directory holds no checkpoint files at all, or an error
// joining the per-file failures when every file is damaged.
func (s *Store) LoadLatest() (*Checkpoint, string, error) {
	paths, err := s.Paths()
	if err != nil {
		return nil, "", err
	}
	if len(paths) == 0 {
		return nil, "", ErrNoCheckpoint
	}
	var failures []error
	for _, p := range paths {
		cp, err := s.loadPath(p)
		if err != nil {
			failures = append(failures, err)
			continue
		}
		return cp, p, nil
	}
	return nil, "", errors.Join(failures...)
}

// loadPath is LoadPath through the store's injected FS.
func (s *Store) loadPath(path string) (*Checkpoint, error) {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	cp, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return cp, nil
}

// genOf parses the generation number out of a delta file name, or
// returns false for files that are not deltas.
func genOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, deltaPrefix) || !strings.HasSuffix(name, deltaSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(deltaPrefix):len(name)-len(deltaSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// DeltaPaths returns the store's delta files, oldest (lowest
// generation) first — apply order.
func (s *Store) DeltaPaths() ([]string, error) {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type genPath struct {
		gen  uint64
		path string
	}
	var found []genPath
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		if gen, ok := genOf(de.Name()); ok {
			found = append(found, genPath{gen, filepath.Join(s.dir, de.Name())})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].gen < found[j].gen })
	paths := make([]string, len(found))
	for i, f := range found {
		paths[i] = f.path
	}
	return paths, nil
}

// SaveDelta encodes the delta and writes it atomically as
// delta-<gen>.vdd, pruning deltas beyond the retention cap.
func (s *Store) SaveDelta(d *Delta) (string, error) {
	data, err := EncodeDelta(d)
	if err != nil {
		return "", err
	}
	return s.SaveDeltaEncoded(d.Gen, data)
}

// SaveDeltaEncoded writes already-encoded delta envelope bytes under
// generation gen — the standby-side twin of SaveEncoded.
func (s *Store) SaveDeltaEncoded(gen uint64, data []byte) (string, error) {
	final := filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", deltaPrefix, gen, deltaSuffix))
	if err := s.writeAtomic(final, data); err != nil {
		return "", err
	}
	if paths, err := s.DeltaPaths(); err == nil {
		for _, p := range paths[:max(0, len(paths)-retainDeltas)] {
			_ = s.fs.Remove(p)
		}
	}
	return final, nil
}

// PruneDeltas removes delta files at or below gen — called once a full
// checkpoint at that generation has been persisted and the chain below
// it is dead weight. Failures are ignored: stale files cost disk, not
// correctness.
func (s *Store) PruneDeltas(gen uint64) {
	paths, err := s.DeltaPaths()
	if err != nil {
		return
	}
	for _, p := range paths {
		if g, ok := genOf(filepath.Base(p)); ok && g <= gen {
			_ = s.fs.Remove(p)
		}
	}
}

// loadDeltaPath reads and decodes one delta file through the store's
// injected FS.
func (s *Store) loadDeltaPath(path string) (*Delta, error) {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d, err := DecodeDelta(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return d, nil
}

// LoadLatestChain loads the newest intact full checkpoint and applies
// every intact delta that chains off it in generation order, stopping
// cleanly at the first damaged, gapped or mismatching delta — a torn
// delta write never costs more than the generations after it. It
// returns the resulting checkpoint, its per-entry CRCs (the resume
// fingerprint for further deltas), and how many deltas were applied.
func (s *Store) LoadLatestChain() (*Checkpoint, []uint32, int, error) {
	paths, err := s.Paths()
	if err != nil {
		return nil, nil, 0, err
	}
	if len(paths) == 0 {
		return nil, nil, 0, ErrNoCheckpoint
	}
	var (
		cp       *Checkpoint
		crcs     []uint32
		failures []error
	)
	for _, p := range paths {
		data, err := s.fs.ReadFile(p)
		if err != nil {
			failures = append(failures, fmt.Errorf("store: %w", err))
			continue
		}
		c, cr, err := DecodeWithCRCs(data)
		if err != nil {
			failures = append(failures, fmt.Errorf("%w (%s)", err, p))
			continue
		}
		cp, crcs = c, cr
		break
	}
	if cp == nil {
		return nil, nil, 0, errors.Join(failures...)
	}
	deltaPaths, err := s.DeltaPaths()
	if err != nil {
		return cp, crcs, 0, nil
	}
	applied := 0
	for _, p := range deltaPaths {
		d, err := s.loadDeltaPath(p)
		if err != nil {
			break // damaged delta ends the appliable chain
		}
		if d.Gen <= cp.Gen {
			continue // superseded by the full checkpoint
		}
		if d.BaseGen != cp.Gen {
			break // gap: an intermediate delta is missing
		}
		next, nextCRCs, err := ApplyDelta(cp, crcs, d)
		if err != nil {
			break
		}
		cp, crcs = next, nextCRCs
		applied++
	}
	return cp, crcs, applied, nil
}
