package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrNoCheckpoint reports a store directory holding no loadable
// checkpoint.
var ErrNoCheckpoint = errors.New("store: no checkpoint found")

// retainCheckpoints is how many checkpoint generations Save keeps on
// disk: the newest plus one known-good fallback, so a checkpoint that
// turns out unreadable (torn write discovered late, media corruption)
// never strands the service without state.
const retainCheckpoints = 2

const (
	filePrefix = "checkpoint-"
	fileSuffix = ".vdc"
)

// Store manages a directory of rotated checkpoint files. It is not safe
// for concurrent Save calls; the checkpoint scheduler serializes them.
type Store struct {
	dir string
	fs  FS
}

// Open prepares a checkpoint store rooted at dir on the real
// filesystem, creating the directory if needed.
func Open(dir string) (*Store, error) { return OpenFS(dir, OSFS) }

// OpenFS is Open over an injectable I/O layer — what the crash-point
// tests and the fault-injection harness (internal/faults) use to fail
// writes at exact byte offsets and prove LoadLatest always recovers the
// previous generation.
func OpenFS(dir string, fsys FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if fsys == nil {
		fsys = OSFS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, fs: fsys}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// seqOf parses the sequence number out of a checkpoint file name, or
// returns false for files that are not checkpoints.
func seqOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(filePrefix):len(name)-len(fileSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Paths returns the store's checkpoint files, newest (highest sequence)
// first.
func (s *Store) Paths() ([]string, error) {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type seqPath struct {
		seq  uint64
		path string
	}
	var found []seqPath
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		if seq, ok := seqOf(de.Name()); ok {
			found = append(found, seqPath{seq, filepath.Join(s.dir, de.Name())})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].seq > found[j].seq })
	paths := make([]string, len(found))
	for i, f := range found {
		paths[i] = f.path
	}
	return paths, nil
}

// nextSeq returns the sequence number the next Save should use.
func (s *Store) nextSeq() (uint64, error) {
	paths, err := s.Paths()
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 1, nil
	}
	seq, _ := seqOf(filepath.Base(paths[0]))
	return seq + 1, nil
}

// Save encodes the checkpoint and writes it atomically: the bytes go to
// a temp file in the same directory, are fsynced, and the file is then
// renamed into place — a crash at any point leaves either the complete
// new checkpoint or the untouched previous one, never a partial file
// under a checkpoint name. Older generations beyond the retention limit
// are pruned. It returns the final path.
func (s *Store) Save(cp *Checkpoint) (string, error) {
	data, err := Encode(cp)
	if err != nil {
		return "", err
	}
	seq, err := s.nextSeq()
	if err != nil {
		return "", err
	}
	final := filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", filePrefix, seq, fileSuffix))
	tmp, err := s.fs.CreateTemp(s.dir, ".checkpoint-*.tmp")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	defer s.fs.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("store: close %s: %w", tmpName, err)
	}
	if err := s.fs.Rename(tmpName, final); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	// Persist the rename itself (best effort — not all platforms support
	// fsync on directories).
	_ = s.fs.SyncDir(s.dir)
	s.prune()
	return final, nil
}

// prune removes checkpoint generations beyond the retention limit.
// Failures are ignored: stale files cost disk, not correctness.
func (s *Store) prune() {
	paths, err := s.Paths()
	if err != nil {
		return
	}
	for _, p := range paths[min(len(paths), retainCheckpoints):] {
		_ = s.fs.Remove(p)
	}
}

// LoadPath reads and decodes one checkpoint file.
func LoadPath(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	cp, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return cp, nil
}

// LoadLatest returns the newest checkpoint that decodes cleanly,
// falling back over damaged files (truncation, bit flips, wrong
// version) to the previous good generation. It returns ErrNoCheckpoint
// when the directory holds no checkpoint files at all, or an error
// joining the per-file failures when every file is damaged.
func (s *Store) LoadLatest() (*Checkpoint, string, error) {
	paths, err := s.Paths()
	if err != nil {
		return nil, "", err
	}
	if len(paths) == 0 {
		return nil, "", ErrNoCheckpoint
	}
	var failures []error
	for _, p := range paths {
		cp, err := s.loadPath(p)
		if err != nil {
			failures = append(failures, err)
			continue
		}
		return cp, p, nil
	}
	return nil, "", errors.Join(failures...)
}

// loadPath is LoadPath through the store's injected FS.
func (s *Store) loadPath(path string) (*Checkpoint, error) {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	cp, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return cp, nil
}
