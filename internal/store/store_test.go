package store

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"

	"videodrift/internal/classifier"
	"videodrift/internal/core"
	"videodrift/internal/stats"
	"videodrift/internal/vae"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

const (
	testW   = 16
	testH   = 16
	testDim = testW * testH
	classes = 6
)

func testLabeler(f vidsim.Frame) int {
	c := f.CountClass(vidsim.Car)
	if c >= classes {
		c = classes - 1
	}
	return c
}

func testCond(base vidsim.Condition) vidsim.Condition {
	base.CarRate, base.BusRate = 5.5, 0
	return base
}

func quickProvision(seed int64) core.ProvisionConfig {
	return core.ProvisionConfig{
		VAE:          vae.Config{InputDim: testDim, HiddenDim: 16, LatentDim: 4, Beta: 0.5, LR: 2e-3},
		VAEEpochs:    2,
		SampleCount:  60,
		K:            5,
		Classifier:   classifier.Config{InputDim: vision.QueryDim, HiddenDim: 16, NumClasses: classes, LR: 5e-3, Epochs: 10},
		EnsembleSize: 2,
		Seed:         seed,
	}
}

var (
	fixOnce     sync.Once
	fixDay      *core.ModelEntry
	fixNightVAE *core.ModelEntry
)

// fixtures: one supervised held-out-sample entry, one unsupervised
// VAE-sample entry, covering both provisioning paths the codec handles.
func getFixtures(t testing.TB) (*core.ModelEntry, *core.ModelEntry) {
	t.Helper()
	fixOnce.Do(func() {
		day := vidsim.GenerateTraining(testCond(vidsim.Day()), testW, testH, 120, 1)
		night := vidsim.GenerateTraining(testCond(vidsim.Night()), testW, testH, 120, 2)
		fixDay = core.Provision("day", day, testLabeler, quickProvision(21))
		cfg := quickProvision(22)
		cfg.Source = core.SourceVAE
		fixNightVAE = core.Provision("night", night, nil, cfg)
	})
	return fixDay, fixNightVAE
}

// testCheckpoint assembles a two-shard checkpoint over the fixtures with
// mid-stream pipeline state.
func testCheckpoint(t testing.TB) *Checkpoint {
	t.Helper()
	day, night := getFixtures(t)
	reg := core.NewRegistry(day)
	cfg := core.DefaultPipelineConfig(testDim, classes)
	cfg.Selector = core.SelectorMSBO
	cfg.Provision = quickProvision(31)
	pipe := core.NewPipeline(reg, testLabeler, cfg)
	for _, f := range vidsim.GenerateTraining(testCond(vidsim.Day()), testW, testH, 50, 3) {
		pipe.Process(f)
	}
	return &Checkpoint{
		CreatedUnixNano: 1700000000000000000,
		Frames:          50,
		Entries:         []*core.ModelEntry{day, night},
		Shards: []ShardState{
			{Registry: []int{0, 1}, Pipeline: pipe.Snapshot()},
			{Registry: []int{0}, Pipeline: pipe.Snapshot()},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	cp := testCheckpoint(t)
	data, err := Encode(cp)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.CreatedUnixNano != cp.CreatedUnixNano || got.Frames != cp.Frames {
		t.Errorf("meta: got (%d,%d) want (%d,%d)", got.CreatedUnixNano, got.Frames, cp.CreatedUnixNano, cp.Frames)
	}
	if len(got.Entries) != 2 || len(got.Shards) != 2 {
		t.Fatalf("shape: %d entries, %d shards", len(got.Entries), len(got.Shards))
	}

	for i, e := range got.Entries {
		orig := cp.Entries[i]
		if e.Name != orig.Name || e.W != orig.W || e.H != orig.H {
			t.Errorf("entry %d identity mismatch", i)
		}
		if len(e.SampleFeats) != len(orig.SampleFeats) {
			t.Fatalf("entry %d: %d feats, want %d", i, len(e.SampleFeats), len(orig.SampleFeats))
		}
		for j := range e.SampleFeats {
			for k := range e.SampleFeats[j] {
				if e.SampleFeats[j][k] != orig.SampleFeats[j][k] {
					t.Fatalf("entry %d feat[%d][%d] differs", i, j, k)
				}
			}
		}
		for j := range e.CalibRaw {
			if e.CalibRaw[j] != orig.CalibRaw[j] {
				t.Fatalf("entry %d calib[%d] differs", i, j)
			}
		}
	}

	// Supervised entry: restored classifier and ensemble must predict
	// bit-identically.
	day := cp.Entries[0]
	restored := got.Entries[0]
	if restored.Classifier == nil || restored.Ensemble == nil || restored.QueryFn() == nil {
		t.Fatal("supervised entry lost its classifier state")
	}
	for _, f := range vidsim.GenerateTraining(testCond(vidsim.Day()), testW, testH, 20, 9) {
		if a, b := day.Predict(f), restored.Predict(f); a != b {
			t.Fatalf("restored classifier predicts %d, original %d", b, a)
		}
	}
	if a, b := day.Ensemble.AvgBrier(day.CalibSample), restored.Ensemble.AvgBrier(restored.CalibSample); a != b {
		t.Fatalf("restored ensemble Brier %v, original %v", b, a)
	}

	// VAE entry: weights restored, future samples identical.
	night := cp.Entries[1]
	nr := got.Entries[1]
	if nr.VAE == nil {
		t.Fatal("VAE entry lost its VAE")
	}
	a, b := night.VAE.Sample(2), nr.VAE.Sample(2)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("restored VAE sample[%d][%d] differs", i, j)
			}
		}
	}

	// Pipeline snapshots survive verbatim. (DISnapshot holds a slice
	// inside CUSUMState, so compare field by field.)
	gs, ws := got.Shards[0].Pipeline, cp.Shards[0].Pipeline
	if gs.Current != ws.Current || gs.State != ws.State || gs.Metrics != ws.Metrics ||
		gs.RNG != ws.RNG || gs.DI.RNG != ws.DI.RNG || gs.DI.Seen != ws.DI.Seen ||
		gs.DI.PSum != ws.DI.PSum || gs.DI.Mart.Value != ws.DI.Mart.Value {
		t.Errorf("pipeline snapshot mismatch:\n got %+v\nwant %+v", gs, ws)
	}
}

func TestSaveLoadRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store LoadLatest error = %v, want ErrNoCheckpoint", err)
	}
	cp := testCheckpoint(t)
	var paths []string
	for i := 0; i < 3; i++ {
		cp.Frames = int64(100 * (i + 1))
		p, err := s.Save(cp)
		if err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
		paths = append(paths, p)
	}
	kept, err := s.Paths()
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != retainCheckpoints {
		t.Fatalf("store retains %d checkpoints, want %d", len(kept), retainCheckpoints)
	}
	if kept[0] != paths[2] {
		t.Errorf("newest = %s, want %s", kept[0], paths[2])
	}
	got, p, err := s.LoadLatest()
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if p != paths[2] || got.Frames != 300 {
		t.Errorf("loaded %s frames=%d, want %s frames=300", p, got.Frames, paths[2])
	}
	// No temp droppings left behind.
	ents, _ := os.ReadDir(dir)
	for _, de := range ents {
		if _, ok := seqOf(de.Name()); !ok {
			t.Errorf("unexpected file %s in store dir", de.Name())
		}
	}
}

// TestCorruptionFallback damages the newest checkpoint in several ways;
// each must produce a typed error and LoadLatest must fall back to the
// previous good generation.
func TestCorruptionFallback(t *testing.T) {
	cp := testCheckpoint(t)
	corruptions := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"truncated-header", func(b []byte) []byte { return b[:10] }, ErrTruncated},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"flipped-payload-byte", func(b []byte) []byte { b[headerSize+len(b)/3] ^= 0x40; return b }, ErrChecksum},
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"future-version", func(b []byte) []byte { b[4], b[5] = 0xff, 0x7f; return b }, nil}, // *VersionError
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			cp.Frames = 111
			if _, err := s.Save(cp); err != nil {
				t.Fatal(err)
			}
			cp.Frames = 222
			bad, err := s.Save(cp)
			if err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(bad)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(bad, tc.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, err := LoadPath(bad); err == nil {
				t.Fatal("corrupted checkpoint decoded cleanly")
			} else if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want %v", err, tc.wantErr)
			} else if tc.wantErr == nil {
				var ve *VersionError
				if !errors.As(err, &ve) {
					t.Fatalf("error = %v, want *VersionError", err)
				}
			}

			got, p, err := s.LoadLatest()
			if err != nil {
				t.Fatalf("LoadLatest after corruption: %v", err)
			}
			if got.Frames != 111 {
				t.Errorf("fell back to frames=%d via %s, want the 111 generation", got.Frames, p)
			}
		})
	}
}

// TestAllGenerationsDamaged verifies the terminal case: every file bad
// returns a joined error, not a panic or a zero checkpoint.
func TestAllGenerationsDamaged(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp := testCheckpoint(t)
	for i := 0; i < 2; i++ {
		p, err := s.Save(cp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.LoadLatest(); err == nil {
		t.Fatal("LoadLatest succeeded over all-damaged store")
	} else if errors.Is(err, ErrNoCheckpoint) {
		t.Fatal("all-damaged store reported ErrNoCheckpoint; want the decode failures")
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cp := testCheckpoint(t)
	p, err := s.Save(cp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Inspect(p)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if d.Version != Version || len(d.Models) != 2 || len(d.Shards) != 2 {
		t.Fatalf("description = %+v", d)
	}
	day := d.Models[0]
	if day.Name != "day" || !day.Supervised || day.QueryFn != vision.FeatureFuncQuery ||
		day.FeatDim != vision.AppearanceDim || day.CRC32 == 0 {
		t.Errorf("day model info = %+v", day)
	}
	night := d.Models[1]
	if night.Name != "night" || night.Supervised || !night.HasVAE {
		t.Errorf("night model info = %+v", night)
	}
	sh := d.Shards[0]
	if sh.Frames != 50 || sh.State != "monitoring" || sh.Deployed != "day" || sh.Models != 2 {
		t.Errorf("shard info = %+v", sh)
	}
	// The text rendering must mention the essentials.
	var buf strings.Builder
	d.WriteText(&buf)
	for _, want := range []string{"day", "night", "crc32", "monitoring"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("WriteText output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRNGStreamResume is the primitive the whole restore guarantee rests
// on: an RNG resumed from State() must emit exactly the values the
// original emits next, across every sampler the pipeline uses.
func TestRNGStreamResume(t *testing.T) {
	g := stats.NewRNG(42)
	for i := 0; i < 1000; i++ {
		g.Float64()
		if i%3 == 0 {
			g.Normal(0, 1)
		}
		if i%7 == 0 {
			g.Perm(5)
		}
	}
	st := g.State()
	h := stats.ResumeRNG(st)
	for i := 0; i < 1000; i++ {
		if a, b := g.Float64(), h.Float64(); a != b {
			t.Fatalf("draw %d: %v vs %v", i, a, b)
		}
		if i%5 == 0 {
			if a, b := g.Int63(), h.Int63(); a != b {
				t.Fatalf("int draw %d: %v vs %v", i, a, b)
			}
		}
	}
	// Split children line up too.
	a, b := g.Split(), h.Split()
	if x, y := a.Float64(), b.Float64(); x != y {
		t.Fatalf("split children diverge: %v vs %v", x, y)
	}
}
