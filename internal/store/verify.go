package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// VerifyResult is one file's integrity report from VerifyDir.
type VerifyResult struct {
	Path    string
	Kind    string // "checkpoint" or "delta"
	Bytes   int
	Gen     uint64
	Epoch   uint64
	Entries int // model entry blobs carried (new entries, for a delta)
	Shards  int
	Err     error // nil when the file verified clean
}

// VerifyDir walks every checkpoint and delta file in a state directory
// and re-checksums each one: envelope header, payload CRC, and every
// per-model entry blob CRC, without rebuilding the heavyweight model
// objects. It reports one result per file, fulls first then deltas,
// each in generation order — `drifttool inspect -verify` renders them
// and exits 1 if any Err is set. Damage is reported, never fatal: a
// torn file yields a result, not an early return.
func VerifyDir(dir string) ([]VerifyResult, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var fulls, deltas []string
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		if _, ok := seqOf(de.Name()); ok {
			fulls = append(fulls, filepath.Join(dir, de.Name()))
		} else if _, ok := genOf(de.Name()); ok {
			deltas = append(deltas, filepath.Join(dir, de.Name()))
		}
	}
	sort.Strings(fulls)
	sort.Strings(deltas)
	var results []VerifyResult
	for _, p := range fulls {
		results = append(results, verifyFile(p, false))
	}
	for _, p := range deltas {
		results = append(results, verifyFile(p, true))
	}
	return results, nil
}

// verifyFile re-checksums one envelope file.
func verifyFile(path string, delta bool) VerifyResult {
	res := VerifyResult{Path: path, Kind: "checkpoint"}
	if delta {
		res.Kind = "delta"
	}
	data, err := os.ReadFile(path)
	if err != nil {
		res.Err = err
		return res
	}
	res.Bytes = len(data)
	if delta {
		d, err := DecodeDelta(data)
		if err != nil {
			res.Err = err
			return res
		}
		res.Gen, res.Epoch = d.Gen, d.Epoch
		res.Entries = len(d.NewEntries)
		res.Shards = len(d.Shards)
		return res
	}
	payload, err := decodeEnvelope(data, kindCheckpoint)
	if err != nil {
		res.Err = err
		return res
	}
	// decodeRecord re-checksums every entry blob against its recorded
	// CRC — the per-model half of the verification.
	rec, err := decodeRecord(payload)
	if err != nil {
		res.Err = err
		return res
	}
	res.Gen, res.Epoch = rec.Gen, rec.Epoch
	res.Entries = len(rec.Entries)
	res.Shards = len(rec.Shards)
	return res
}

// WriteVerifyText renders VerifyDir results in the layout
// `drifttool inspect -verify` prints, returning how many files were
// damaged.
func WriteVerifyText(w io.Writer, dir string, results []VerifyResult) int {
	damaged := 0
	fmt.Fprintf(w, "verify %s: %d files\n", dir, len(results))
	for _, r := range results {
		status := "ok"
		if r.Err != nil {
			damaged++
			status = "DAMAGED: " + r.Err.Error()
		}
		gen := ""
		if r.Gen > 0 || r.Epoch > 0 {
			gen = fmt.Sprintf(" gen=%d epoch=%d", r.Gen, r.Epoch)
		}
		fmt.Fprintf(w, "  %-10s %s  %d bytes  entries=%d shards=%d%s  %s\n",
			r.Kind, filepath.Base(r.Path), r.Bytes, r.Entries, r.Shards, gen, status)
	}
	if damaged > 0 {
		fmt.Fprintf(w, "%d of %d files damaged\n", damaged, len(results))
	} else {
		fmt.Fprintf(w, "all %d files verified\n", len(results))
	}
	return damaged
}
