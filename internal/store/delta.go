package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"

	"videodrift/internal/core"
)

// ErrDeltaBase reports a delta that does not chain off the checkpoint
// it was applied to: the base generation, entry count or entry digest
// disagrees. Replication standbys treat it as a desync and resync from
// a full snapshot; LoadLatestChain treats it as the end of the
// appliable chain.
var ErrDeltaBase = errors.New("store: delta base mismatch")

// Delta is the compact diff between two consecutive checkpoint
// generations. Model entries are immutable once provisioned, so the
// diff carries only the entry blobs appended since the base — plus the
// full per-shard runtime state, which is kilobytes (martingale, RNG
// positions, selection buffers) against the megabytes of VAE and
// ensemble weights a full snapshot ships. Because the shard state is
// complete, applying a delta onto any base whose entry table matches
// BaseDigest reproduces the target generation exactly; generation
// numbers order the stream and measure lag, the digest is the
// correctness check.
//
//driftlint:snapshot encode=EncodeDelta,DiffCheckpoints decode=DecodeDelta,ApplyDelta
type Delta struct {
	// BaseGen is the generation this delta applies on; Gen is the
	// generation the application produces.
	BaseGen, Gen uint64
	// Epoch is the producing primary's fencing epoch.
	Epoch uint64
	// CreatedUnixNano and Frames mirror the target checkpoint's stamps.
	CreatedUnixNano int64
	Frames          int64
	// BaseEntries is the length of the base's entry table; BaseDigest is
	// a CRC-32 over the base's per-entry CRCs (little-endian
	// concatenation). Together they pin the exact bytes the delta
	// extends.
	BaseEntries int
	BaseDigest  uint32
	// NewEntries are the encoded model blobs appended since the base,
	// each with its own CRC.
	NewEntries [][]byte
	NewCRCs    []uint32
	// Shards is the complete per-shard runtime state at Gen.
	Shards []ShardState
}

// digestCRCs collapses a per-entry CRC list into the single base
// digest a delta carries.
func digestCRCs(crcs []uint32) uint32 {
	buf := make([]byte, 4*len(crcs))
	for i, c := range crcs {
		binary.LittleEndian.PutUint32(buf[4*i:], c)
	}
	return crc32.ChecksumIEEE(buf)
}

// EntryCRCs encodes each entry of cp and returns the per-entry CRCs —
// what DiffCheckpoints and ApplyDelta accept as the base fingerprint.
// Callers that encoded or decoded the checkpoint through
// EncodeWithCRCs/DecodeWithCRCs already hold them and skip this.
func EntryCRCs(cp *Checkpoint) ([]uint32, error) {
	crcs := make([]uint32, len(cp.Entries))
	for i, e := range cp.Entries {
		blob, err := encodeEntry(e)
		if err != nil {
			return nil, err
		}
		crcs[i] = crc32.ChecksumIEEE(blob)
	}
	return crcs, nil
}

// DiffCheckpoints builds the delta that turns base into next, and
// returns next's per-entry CRCs for the following diff. baseCRCs must
// be base's entry fingerprint (from EncodeWithCRCs, DecodeWithCRCs,
// EntryCRCs, or a previous Diff). It returns ErrDeltaBase when next
// does not extend base — a shrunken or rewritten entry table — in
// which case the caller falls back to a full snapshot.
func DiffCheckpoints(base *Checkpoint, baseCRCs []uint32, next *Checkpoint) (*Delta, []uint32, error) {
	if len(baseCRCs) != len(base.Entries) {
		return nil, nil, fmt.Errorf("store: %d base CRCs for %d entries", len(baseCRCs), len(base.Entries))
	}
	if len(next.Entries) < len(base.Entries) {
		return nil, nil, fmt.Errorf("%w: entry table shrank from %d to %d", ErrDeltaBase, len(base.Entries), len(next.Entries))
	}
	nextCRCs := make([]uint32, len(next.Entries))
	d := &Delta{
		BaseGen:         base.Gen,
		Gen:             next.Gen,
		Epoch:           next.Epoch,
		CreatedUnixNano: next.CreatedUnixNano,
		Frames:          next.Frames,
		BaseEntries:     len(base.Entries),
		BaseDigest:      digestCRCs(baseCRCs),
		Shards:          next.Shards,
	}
	for i, e := range next.Entries {
		if i < len(base.Entries) {
			// The shared prefix: entries are immutable and shared by
			// pointer across captures, so pointer equality proves the
			// blob is unchanged without re-encoding megabytes of model.
			if e == base.Entries[i] {
				nextCRCs[i] = baseCRCs[i]
				continue
			}
			blob, err := encodeEntry(e)
			if err != nil {
				return nil, nil, err
			}
			nextCRCs[i] = crc32.ChecksumIEEE(blob)
			if nextCRCs[i] != baseCRCs[i] {
				return nil, nil, fmt.Errorf("%w: entry %d rewritten", ErrDeltaBase, i)
			}
			continue
		}
		blob, err := encodeEntry(e)
		if err != nil {
			return nil, nil, err
		}
		nextCRCs[i] = crc32.ChecksumIEEE(blob)
		d.NewEntries = append(d.NewEntries, blob)
		d.NewCRCs = append(d.NewCRCs, nextCRCs[i])
	}
	for si, sh := range next.Shards {
		for _, ref := range sh.Registry {
			if ref < 0 || ref >= len(next.Entries) {
				return nil, nil, fmt.Errorf("store: shard %d references entry %d of %d", si, ref, len(next.Entries))
			}
		}
	}
	return d, nextCRCs, nil
}

// ApplyDelta verifies d against base and produces the target
// checkpoint plus its per-entry CRCs. baseCRCs may be nil, in which
// case the fingerprint is recomputed via EntryCRCs (a re-encode —
// replication paths pass the CRCs they already hold instead). It
// returns ErrDeltaBase when the delta does not chain off base.
func ApplyDelta(base *Checkpoint, baseCRCs []uint32, d *Delta) (*Checkpoint, []uint32, error) {
	if baseCRCs == nil {
		var err error
		if baseCRCs, err = EntryCRCs(base); err != nil {
			return nil, nil, err
		}
	}
	if d.BaseGen != base.Gen {
		return nil, nil, fmt.Errorf("%w: delta chains off generation %d, base is %d", ErrDeltaBase, d.BaseGen, base.Gen)
	}
	if d.BaseEntries != len(base.Entries) {
		return nil, nil, fmt.Errorf("%w: delta expects %d base entries, base has %d", ErrDeltaBase, d.BaseEntries, len(base.Entries))
	}
	if got := digestCRCs(baseCRCs); got != d.BaseDigest {
		return nil, nil, fmt.Errorf("%w: base digest %08x, delta expects %08x", ErrDeltaBase, got, d.BaseDigest)
	}
	next := &Checkpoint{
		CreatedUnixNano: d.CreatedUnixNano,
		Frames:          d.Frames,
		Gen:             d.Gen,
		Epoch:           d.Epoch,
		Entries:         make([]*core.ModelEntry, 0, len(base.Entries)+len(d.NewEntries)),
		Shards:          d.Shards,
	}
	next.Entries = append(next.Entries, base.Entries...)
	nextCRCs := make([]uint32, 0, len(baseCRCs)+len(d.NewCRCs))
	nextCRCs = append(nextCRCs, baseCRCs...)
	for i, blob := range d.NewEntries {
		er, err := decodeEntryRecord(blob)
		if err != nil {
			return nil, nil, err
		}
		e, err := buildEntry(er)
		if err != nil {
			return nil, nil, err
		}
		next.Entries = append(next.Entries, e)
		nextCRCs = append(nextCRCs, d.NewCRCs[i])
	}
	return next, nextCRCs, nil
}

// EncodeDelta serializes a delta into the shared versioned, checksummed
// envelope under the delta payload kind.
func EncodeDelta(d *Delta) ([]byte, error) {
	if len(d.NewCRCs) != len(d.NewEntries) {
		return nil, fmt.Errorf("store: delta has %d entry checksums for %d entries", len(d.NewCRCs), len(d.NewEntries))
	}
	refs := d.BaseEntries + len(d.NewEntries)
	for si, sh := range d.Shards {
		for _, ref := range sh.Registry {
			if ref < 0 || ref >= refs {
				return nil, fmt.Errorf("store: delta shard %d references entry %d of %d", si, ref, refs)
			}
		}
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(d); err != nil {
		return nil, fmt.Errorf("store: encode delta: %w", err)
	}
	return sealEnvelope(kindDelta, payload.Bytes()), nil
}

// DecodeDelta parses and validates a delta from envelope bytes,
// returning typed errors (never panicking) on malformed input. The
// base digest is checked later, at ApplyDelta time.
func DecodeDelta(data []byte) (*Delta, error) {
	payload, err := decodeEnvelope(data, kindDelta)
	if err != nil {
		return nil, err
	}
	var d Delta
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&d); err != nil {
		return nil, fmt.Errorf("store: decode delta: %w", err)
	}
	if d.BaseEntries < 0 {
		return nil, fmt.Errorf("store: delta claims %d base entries", d.BaseEntries)
	}
	if len(d.NewCRCs) != len(d.NewEntries) {
		return nil, fmt.Errorf("store: delta has %d entry checksums for %d entries", len(d.NewCRCs), len(d.NewEntries))
	}
	for i, blob := range d.NewEntries {
		if crc32.ChecksumIEEE(blob) != d.NewCRCs[i] {
			return nil, fmt.Errorf("%w (delta entry %d)", ErrChecksum, i)
		}
	}
	refs := d.BaseEntries + len(d.NewEntries)
	for si, sh := range d.Shards {
		for _, ref := range sh.Registry {
			if ref < 0 || ref >= refs {
				return nil, fmt.Errorf("store: delta shard %d references entry %d of %d", si, ref, refs)
			}
		}
		if cur := sh.Pipeline.Current; cur < 0 || cur >= len(sh.Registry) {
			return nil, fmt.Errorf("store: delta shard %d deploys registry slot %d of %d", si, cur, len(sh.Registry))
		}
	}
	return &d, nil
}
