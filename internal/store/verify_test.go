package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVerifyDir(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	base := tinyCheckpoint(t, 100)
	base.Gen, base.Epoch = 1, 2
	if _, err := st.Save(base); err != nil {
		t.Fatal(err)
	}
	crcs, err := EntryCRCs(base)
	if err != nil {
		t.Fatal(err)
	}
	next := tinyCheckpoint(t, 200)
	next.Gen, next.Epoch = 2, 2
	next.Entries = base.Entries
	d, _, err := DiffCheckpoints(base, crcs, next)
	if err != nil {
		t.Fatal(err)
	}
	deltaPath, err := st.SaveDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	// A foreign file is ignored, not reported.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("unrelated"), 0o644); err != nil {
		t.Fatal(err)
	}

	results, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("verified %d files, want 2", len(results))
	}
	if results[0].Kind != "checkpoint" || results[0].Gen != 1 || results[0].Epoch != 2 || results[0].Err != nil {
		t.Fatalf("full result %+v", results[0])
	}
	if results[1].Kind != "delta" || results[1].Gen != 2 || results[1].Entries != 0 || results[1].Err != nil {
		t.Fatalf("delta result %+v", results[1])
	}
	var buf strings.Builder
	if damaged := WriteVerifyText(&buf, dir, results); damaged != 0 {
		t.Fatalf("damaged=%d on a clean dir:\n%s", damaged, buf.String())
	}
	if !strings.Contains(buf.String(), "all 2 files verified") {
		t.Fatalf("clean summary missing:\n%s", buf.String())
	}

	// Corrupt the delta: it is reported, the full stays clean, and the
	// renderer counts it.
	data, err := os.ReadFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(deltaPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	results, err = VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[1].Err == nil {
		t.Fatalf("damage attribution wrong: %+v", results)
	}
	buf.Reset()
	if damaged := WriteVerifyText(&buf, dir, results); damaged != 1 {
		t.Fatalf("damaged=%d, want 1", damaged)
	}
	if !strings.Contains(buf.String(), "DAMAGED") || !strings.Contains(buf.String(), "1 of 2 files damaged") {
		t.Fatalf("damage summary missing:\n%s", buf.String())
	}
}
