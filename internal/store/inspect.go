package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"videodrift/internal/telemetry"
)

// ModelInfo describes one persisted model entry without rebuilding it.
type ModelInfo struct {
	Name        string
	W, H        int
	FeatDim     int // dimensionality of the reference features
	Samples     int // |Σ_Ti|
	CalibScores int
	HasVAE      bool
	Supervised  bool // classifier + ensemble present
	QueryFn     string
	Bytes       int
	CRC32       uint32
}

// ShardInfo describes one shard's persisted runtime position.
type ShardInfo struct {
	Frames   int // frames the shard's pipeline has processed
	Sampled  int // frames folded into the deployed inspector's martingale
	State    string
	Deployed string // name of the deployed model
	Models   int    // registry size
	Buffered int    // frames held in the selection/training buffer

	// EventCounts is the shard tracer's per-kind event totals at
	// checkpoint time (nil when the shard ran untraced).
	EventCounts []telemetry.KindCount
	// Declarations is how many drift declarations the shard's forensics
	// recorder retained (0 when forensics was disabled).
	Declarations int
	// LastDrift summarizes the most recent retained declaration: ID,
	// frame, monitored model, and the top of its attribution ranking.
	LastDrift      string
	LastDriftFrame int
	LastDriftModel string
	LastDriftTop   []telemetry.DimShift
}

// Description is everything `drifttool inspect` reports about a
// checkpoint file: envelope metadata, per-model inventory with
// checksums, and per-shard stream positions.
type Description struct {
	Path            string
	Version         uint16
	PayloadBytes    int
	PayloadCRC      uint32
	CreatedUnixNano int64
	Frames          int64
	Models          []ModelInfo
	Shards          []ShardInfo
}

var stateNames = [...]string{"monitoring", "selecting", "training"}

// Inspect reads a checkpoint file and describes it without
// reconstructing the heavyweight model objects, so it is fast even for
// large registries and safe to point at damaged files (typed errors,
// no panics).
func Inspect(path string) (*Description, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	payload, err := decodeEnvelope(data, kindCheckpoint)
	if err != nil {
		return nil, err
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return nil, err
	}
	d := &Description{
		Path:            path,
		Version:         Version,
		PayloadBytes:    len(payload),
		PayloadCRC:      crc32.ChecksumIEEE(payload),
		CreatedUnixNano: rec.CreatedUnixNano,
		Frames:          rec.Frames,
	}
	names := make([]string, len(rec.Entries))
	for i, blob := range rec.Entries {
		er, err := decodeEntryRecord(blob)
		if err != nil {
			return nil, err
		}
		names[i] = er.Name
		info := ModelInfo{
			Name:        er.Name,
			W:           er.W,
			H:           er.H,
			Samples:     len(er.Samples),
			CalibScores: len(er.CalibRaw),
			HasVAE:      er.VAE != nil,
			Supervised:  er.Classifier != nil,
			QueryFn:     er.QueryFn,
			Bytes:       len(blob),
			CRC32:       rec.EntryCRCs[i],
		}
		if len(er.SampleFeats) > 0 {
			info.FeatDim = len(er.SampleFeats[0])
		}
		d.Models = append(d.Models, info)
	}
	for _, sh := range rec.Shards {
		p := sh.Pipeline
		info := ShardInfo{
			Frames:   p.Metrics.Frames,
			Sampled:  p.DI.Sampled,
			Models:   len(sh.Registry),
			Buffered: len(p.Buffer),
		}
		if p.State >= 0 && p.State < len(stateNames) {
			info.State = stateNames[p.State]
		} else {
			info.State = fmt.Sprintf("state(%d)", p.State)
		}
		info.Deployed = names[sh.Registry[p.Current]]
		info.EventCounts = sh.EventCounts
		if sh.Forensics.Enabled && len(sh.Forensics.Declarations) > 0 {
			info.Declarations = len(sh.Forensics.Declarations)
			last := sh.Forensics.Declarations[len(sh.Forensics.Declarations)-1]
			info.LastDrift = last.ID
			info.LastDriftFrame = last.Frame
			info.LastDriftModel = last.Model
			top := last.Attribution
			if len(top) > 3 {
				top = top[:3]
			}
			info.LastDriftTop = top
		}
		d.Shards = append(d.Shards, info)
	}
	return d, nil
}

// WriteText renders the description in the layout `drifttool inspect`
// prints.
func (d *Description) WriteText(w io.Writer) {
	fmt.Fprintf(w, "checkpoint %s\n", d.Path)
	fmt.Fprintf(w, "  format v%d, payload %d bytes, crc32 %08x\n", d.Version, d.PayloadBytes, d.PayloadCRC)
	fmt.Fprintf(w, "  created %s, stream frames %d\n",
		time.Unix(0, d.CreatedUnixNano).UTC().Format(time.RFC3339), d.Frames)
	fmt.Fprintf(w, "  models (%d):\n", len(d.Models))
	for _, m := range d.Models {
		kind := "unsupervised"
		if m.Supervised {
			kind = "supervised/" + m.QueryFn
		}
		vae := ""
		if m.HasVAE {
			vae = " +vae"
		}
		fmt.Fprintf(w, "    %-16s %dx%d feat=%dd samples=%d calib=%d %s%s  %d bytes crc32 %08x\n",
			m.Name, m.W, m.H, m.FeatDim, m.Samples, m.CalibScores, kind, vae, m.Bytes, m.CRC32)
	}
	fmt.Fprintf(w, "  shards (%d):\n", len(d.Shards))
	for i, s := range d.Shards {
		fmt.Fprintf(w, "    shard %d: frame %d (sampled %d) state=%s deployed=%q registry=%d buffered=%d\n",
			i, s.Frames, s.Sampled, s.State, s.Deployed, s.Models, s.Buffered)
		if len(s.EventCounts) > 0 {
			fmt.Fprintf(w, "      events:")
			for _, kc := range s.EventCounts {
				fmt.Fprintf(w, " %s=%d", kc.Kind, kc.Count)
			}
			fmt.Fprintf(w, "\n")
		}
		if s.Declarations > 0 {
			fmt.Fprintf(w, "      drifts retained: %d, last %s @ frame %d on %q", s.Declarations, s.LastDrift, s.LastDriftFrame, s.LastDriftModel)
			for j, a := range s.LastDriftTop {
				sep := " —"
				if j > 0 {
					sep = ","
				}
				name := a.Name
				if name == "" {
					name = fmt.Sprintf("dim%d", a.Dim)
				}
				fmt.Fprintf(w, "%s %s js=%.3f", sep, name, a.JS)
			}
			fmt.Fprintf(w, "\n")
		}
	}
}
