// Package store is the durable state layer of the drift-aware pipeline:
// versioned, checksummed binary checkpoints of the provisioned-model
// registry (VAEs, reference samples, calibration scores, classifiers,
// MSBO ensembles) and of the runtime drift state (martingale, p-value
// counters, RNG stream positions, selection buffers), written atomically
// so a crash mid-write never corrupts the store and a restart resumes
// bit-identically to the uninterrupted run. It has no dependencies
// outside the standard library and the repo's own packages.
//
// On-disk format (little endian):
//
//	offset 0   magic "VDCK" (4 bytes)
//	offset 4   format version (uint16)
//	offset 6   payload kind (uint16, 1 = checkpoint)
//	offset 8   payload length (uint64)
//	offset 16  CRC-32 (IEEE) of the payload (uint32)
//	offset 20  payload (gob-encoded checkpointRecord)
//
// Inside the payload, every model entry is itself a gob blob with its
// own CRC-32, so `drifttool inspect` can report per-model integrity and
// a decode error names the entry it hit. Float64 values round-trip
// bit-exactly through gob, which is what makes restored kNN scores,
// p-values and classifier logits identical to the originals.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"

	"videodrift/internal/classifier"
	"videodrift/internal/conformal"
	"videodrift/internal/core"
	"videodrift/internal/forensics"
	"videodrift/internal/telemetry"
	"videodrift/internal/tensor"
	"videodrift/internal/vae"
	"videodrift/internal/vision"
)

// Version is the current checkpoint format version.
const Version uint16 = 1

// Payload kinds carried by the envelope: full checkpoints and delta
// checkpoints (the compact diff replication streams between
// generations).
const (
	kindCheckpoint uint16 = 1
	kindDelta      uint16 = 2
)

var magic = [4]byte{'V', 'D', 'C', 'K'}

// headerSize is the fixed envelope prefix before the payload.
const headerSize = 4 + 2 + 2 + 8 + 4

// Typed decode failures. Callers distinguish "file is damaged"
// (ErrTruncated, ErrBadMagic, ErrChecksum, *VersionError — fall back to
// an older checkpoint) from harder structural errors.
var (
	// ErrTruncated reports a file shorter than its header claims.
	ErrTruncated = errors.New("store: checkpoint truncated")
	// ErrBadMagic reports a file that is not a checkpoint at all.
	ErrBadMagic = errors.New("store: bad magic (not a checkpoint file)")
	// ErrChecksum reports payload bytes that fail the CRC — flipped
	// bits, torn writes.
	ErrChecksum = errors.New("store: payload checksum mismatch")
)

// VersionError reports a checkpoint written by an incompatible format
// version.
type VersionError struct {
	Got, Want uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("store: checkpoint format v%d, this build reads v%d", e.Got, e.Want)
}

// Checkpoint is the in-memory form of one durable snapshot: the global
// deduplicated model table plus per-shard registries and runtime state.
// Shards reference models by index into Entries so that entries shared
// across shards (the provisioned base models) are persisted once and
// restored as one shared object, exactly as NewShardedMonitor wires
// them.
//
//driftlint:snapshot encode=Encode,EncodeWithCRCs decode=Decode,DecodeWithCRCs
type Checkpoint struct {
	// CreatedUnixNano stamps when the snapshot was captured.
	CreatedUnixNano int64
	// Frames is the caller's stream-level frame counter (driftserve's
	// total across shards); informational.
	Frames int64
	// Gen is the replication generation this snapshot represents; 0 for
	// checkpoints written outside a replication stream. Deltas chain off
	// it (Delta.BaseGen == base.Gen).
	Gen uint64
	// Epoch is the fencing epoch of the primary that produced the
	// snapshot; 0 when the process never replicated. A promoted standby
	// resumes with a strictly higher epoch, which is what fences a
	// stale primary's stream (see internal/replica). Gob decodes absent
	// fields to zero, so pre-replication checkpoints still load.
	Epoch uint64
	// Entries is the deduplicated model table.
	Entries []*core.ModelEntry
	// Shards holds one runtime state per stream shard (a plain Monitor
	// checkpoints as a single shard).
	Shards []ShardState
}

// ShardState is one shard's persisted runtime: which models its
// registry held (as indices into Checkpoint.Entries, in insertion
// order) and the pipeline's mutable state.
type ShardState struct {
	Registry []int
	Pipeline core.PipelineSnapshot
	// Forensics is the shard's drift-forensics recorder state. Its
	// Enabled flag distinguishes a live state from the zero value a
	// forensics-less checkpoint carries (gob decodes absent fields to
	// zero, so v1 checkpoints written before forensics still load).
	Forensics forensics.RecorderState
	// EventCounts is the shard tracer's per-kind event totals at
	// checkpoint time, informational (drifttool inspect reports them);
	// nil when the shard ran untraced.
	EventCounts []telemetry.KindCount
}

// entryRecord is the gob wire form of one core.ModelEntry.
//
//driftlint:snapshot encode=encodeEntry decode=buildEntry
type entryRecord struct {
	Name        string
	W, H        int
	VAE         []byte // vae.VAE.MarshalBinary, nil when absent
	Samples     []tensor.Vector
	SampleFeats []tensor.Vector
	CalibRaw    []float64
	Classifier  []byte // classifier.Classifier.MarshalBinary, nil when unsupervised
	Ensemble    []byte // classifier.Ensemble.MarshalBinary, nil when unsupervised
	QueryFn     string // vision.FeatureFuncName, "" when unsupervised
	CalibSample []classifier.Sample
}

// checkpointRecord is the gob wire form of the payload. Entries are
// nested gob blobs with individual checksums so integrity is reportable
// per model.
//
//driftlint:snapshot encode=Encode,EncodeWithCRCs decode=decodeRecord,Decode,DecodeWithCRCs
type checkpointRecord struct {
	CreatedUnixNano int64
	Frames          int64
	Gen             uint64
	Epoch           uint64
	Entries         [][]byte
	EntryCRCs       []uint32
	Shards          []ShardState
}

// encodeEntry serializes one model entry. Entries provisioned with an
// ad-hoc (unregistered) query feature function cannot be persisted by
// name and return an error.
func encodeEntry(e *core.ModelEntry) ([]byte, error) {
	rec := entryRecord{
		Name:        e.Name,
		W:           e.W,
		H:           e.H,
		Samples:     e.Samples,
		SampleFeats: e.SampleFeats,
		CalibRaw:    e.CalibRaw,
		CalibSample: e.CalibSample,
	}
	var err error
	if e.VAE != nil {
		if rec.VAE, err = e.VAE.MarshalBinary(); err != nil {
			return nil, fmt.Errorf("store: entry %q: %w", e.Name, err)
		}
	}
	if e.Classifier != nil {
		if rec.Classifier, err = e.Classifier.MarshalBinary(); err != nil {
			return nil, fmt.Errorf("store: entry %q: %w", e.Name, err)
		}
	}
	if e.Ensemble != nil {
		if rec.Ensemble, err = e.Ensemble.MarshalBinary(); err != nil {
			return nil, fmt.Errorf("store: entry %q: %w", e.Name, err)
		}
	}
	if fn := e.QueryFn(); fn != nil {
		rec.QueryFn = vision.FeatureFuncName(fn)
		if rec.QueryFn == "" {
			return nil, fmt.Errorf("store: entry %q uses an unregistered query feature function", e.Name)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("store: encode entry %q: %w", e.Name, err)
	}
	return buf.Bytes(), nil
}

// decodeEntryRecord parses an entry blob without rebuilding the heavy
// model objects — what Inspect uses.
func decodeEntryRecord(data []byte) (*entryRecord, error) {
	var rec entryRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("store: decode entry: %w", err)
	}
	return &rec, nil
}

// buildEntry reconstructs a live core.ModelEntry from its wire form.
func buildEntry(rec *entryRecord) (*core.ModelEntry, error) {
	if len(rec.SampleFeats) == 0 {
		return nil, fmt.Errorf("store: entry %q has no reference features", rec.Name)
	}
	if len(rec.CalibRaw) == 0 {
		return nil, fmt.Errorf("store: entry %q has no calibration scores", rec.Name)
	}
	e := &core.ModelEntry{
		Name:        rec.Name,
		W:           rec.W,
		H:           rec.H,
		Samples:     rec.Samples,
		SampleFeats: rec.SampleFeats,
		CalibRaw:    rec.CalibRaw,
		Calib:       conformal.NewSortedCalib(rec.CalibRaw),
		CalibSample: rec.CalibSample,
	}
	var err error
	if rec.VAE != nil {
		if e.VAE, err = vae.UnmarshalVAE(rec.VAE); err != nil {
			return nil, fmt.Errorf("store: entry %q: %w", rec.Name, err)
		}
	}
	if rec.Classifier != nil {
		if e.Classifier, err = classifier.UnmarshalClassifier(rec.Classifier); err != nil {
			return nil, fmt.Errorf("store: entry %q: %w", rec.Name, err)
		}
	}
	if rec.Ensemble != nil {
		if e.Ensemble, err = classifier.UnmarshalEnsemble(rec.Ensemble); err != nil {
			return nil, fmt.Errorf("store: entry %q: %w", rec.Name, err)
		}
	}
	if rec.QueryFn != "" {
		fn := vision.FeatureFuncByName(rec.QueryFn)
		if fn == nil {
			return nil, fmt.Errorf("store: entry %q references unknown query feature function %q", rec.Name, rec.QueryFn)
		}
		e.SetQueryFn(fn)
	} else if e.Classifier != nil {
		return nil, fmt.Errorf("store: entry %q has a classifier but no query feature function", rec.Name)
	}
	return e, nil
}

// Encode serializes a checkpoint into the versioned, checksummed
// envelope.
func Encode(cp *Checkpoint) ([]byte, error) {
	data, _, err := EncodeWithCRCs(cp)
	return data, err
}

// EncodeWithCRCs is Encode, additionally returning the per-entry blob
// CRCs. Replication primaries keep them so the next DiffCheckpoints
// call can verify the shared entry prefix without re-encoding every
// model.
func EncodeWithCRCs(cp *Checkpoint) ([]byte, []uint32, error) {
	rec := checkpointRecord{
		CreatedUnixNano: cp.CreatedUnixNano,
		Frames:          cp.Frames,
		Gen:             cp.Gen,
		Epoch:           cp.Epoch,
		Entries:         make([][]byte, len(cp.Entries)),
		EntryCRCs:       make([]uint32, len(cp.Entries)),
		Shards:          cp.Shards,
	}
	for i, e := range cp.Entries {
		blob, err := encodeEntry(e)
		if err != nil {
			return nil, nil, err
		}
		rec.Entries[i] = blob
		rec.EntryCRCs[i] = crc32.ChecksumIEEE(blob)
	}
	for si, sh := range cp.Shards {
		for _, ref := range sh.Registry {
			if ref < 0 || ref >= len(cp.Entries) {
				return nil, nil, fmt.Errorf("store: shard %d references entry %d of %d", si, ref, len(cp.Entries))
			}
		}
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return nil, nil, fmt.Errorf("store: encode checkpoint: %w", err)
	}
	return sealEnvelope(kindCheckpoint, payload.Bytes()), rec.EntryCRCs, nil
}

// sealEnvelope wraps a gob payload in the versioned, checksummed
// header.
func sealEnvelope(kind uint16, payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out[0:4], magic[:])
	binary.LittleEndian.PutUint16(out[4:6], Version)
	binary.LittleEndian.PutUint16(out[6:8], kind)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:20], crc32.ChecksumIEEE(payload))
	copy(out[headerSize:], payload)
	return out
}

// decodeEnvelope validates the header and checksum and returns the
// payload bytes. It never panics on malformed input.
func decodeEnvelope(data []byte, wantKind uint16) ([]byte, error) {
	if len(data) < headerSize {
		return nil, ErrTruncated
	}
	if !bytes.Equal(data[0:4], magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, &VersionError{Got: v, Want: Version}
	}
	if k := binary.LittleEndian.Uint16(data[6:8]); k != wantKind {
		return nil, fmt.Errorf("store: payload kind %d, want %d", k, wantKind)
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if n != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: header claims %d payload bytes, file has %d", ErrTruncated, n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[16:20]) {
		return nil, ErrChecksum
	}
	return payload, nil
}

// decodeRecord parses a validated payload into the wire record.
func decodeRecord(payload []byte) (*checkpointRecord, error) {
	var rec checkpointRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("store: decode checkpoint: %w", err)
	}
	if len(rec.EntryCRCs) != len(rec.Entries) {
		return nil, fmt.Errorf("store: checkpoint has %d entry checksums for %d entries", len(rec.EntryCRCs), len(rec.Entries))
	}
	for i, blob := range rec.Entries {
		if crc32.ChecksumIEEE(blob) != rec.EntryCRCs[i] {
			return nil, fmt.Errorf("%w (entry %d)", ErrChecksum, i)
		}
	}
	for si, sh := range rec.Shards {
		for _, ref := range sh.Registry {
			if ref < 0 || ref >= len(rec.Entries) {
				return nil, fmt.Errorf("store: shard %d references entry %d of %d", si, ref, len(rec.Entries))
			}
		}
		if cur := sh.Pipeline.Current; cur < 0 || cur >= len(sh.Registry) {
			return nil, fmt.Errorf("store: shard %d deploys registry slot %d of %d", si, cur, len(sh.Registry))
		}
	}
	return &rec, nil
}

// Decode parses and fully reconstructs a checkpoint from envelope
// bytes, returning typed errors (never panicking) on malformed input.
func Decode(data []byte) (*Checkpoint, error) {
	cp, _, err := DecodeWithCRCs(data)
	return cp, err
}

// DecodeWithCRCs is Decode, additionally returning the per-entry blob
// CRCs as recorded in the envelope. A replication standby keeps them
// alongside the checkpoint so later deltas can verify their base
// digest against the exact bytes the primary sent, never against a
// re-encode.
func DecodeWithCRCs(data []byte) (*Checkpoint, []uint32, error) {
	payload, err := decodeEnvelope(data, kindCheckpoint)
	if err != nil {
		return nil, nil, err
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return nil, nil, err
	}
	cp := &Checkpoint{
		CreatedUnixNano: rec.CreatedUnixNano,
		Frames:          rec.Frames,
		Gen:             rec.Gen,
		Epoch:           rec.Epoch,
		Entries:         make([]*core.ModelEntry, len(rec.Entries)),
		Shards:          rec.Shards,
	}
	for i, blob := range rec.Entries {
		er, err := decodeEntryRecord(blob)
		if err != nil {
			return nil, nil, err
		}
		if cp.Entries[i], err = buildEntry(er); err != nil {
			return nil, nil, err
		}
	}
	return cp, rec.EntryCRCs, nil
}
