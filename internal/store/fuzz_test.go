package store

import (
	"encoding/binary"
	"testing"
)

// FuzzDecode feeds arbitrary (and mutated-valid) byte strings through the
// full decode path. The contract under test: Decode either returns a
// checkpoint or a typed error — it never panics, whatever the input.
func FuzzDecode(f *testing.F) {
	valid, err := Encode(testCheckpoint(f))
	if err != nil {
		f.Fatalf("encoding seed checkpoint: %v", err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("VDCK"))
	f.Add(valid[:headerSize])
	// A structurally valid envelope wrapping garbage: recompute nothing,
	// let the payload CRC catch it — exercises the post-envelope path too.
	short := append([]byte(nil), valid[:headerSize+64]...)
	binary.LittleEndian.PutUint64(short[8:], 64)
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data)
		if err == nil && cp == nil {
			t.Fatal("Decode returned nil checkpoint with nil error")
		}
	})
}

// FuzzDecodeDelta is FuzzDecode's delta sibling: arbitrary bytes in,
// a delta or a typed error out, never a panic — and anything accepted
// must satisfy the structural invariants ApplyDelta relies on.
func FuzzDecodeDelta(f *testing.F) {
	base := testCheckpoint(f)
	base.Gen = 1
	crcs, err := EntryCRCs(base)
	if err != nil {
		f.Fatalf("fingerprinting seed checkpoint: %v", err)
	}
	next := &Checkpoint{
		CreatedUnixNano: base.CreatedUnixNano + 1,
		Frames:          base.Frames + 50,
		Gen:             2,
		Entries:         base.Entries,
		Shards:          base.Shards,
	}
	d, _, err := DiffCheckpoints(base, crcs, next)
	if err != nil {
		f.Fatalf("diffing seed generations: %v", err)
	}
	valid, err := EncodeDelta(d)
	if err != nil {
		f.Fatalf("encoding seed delta: %v", err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("VDCK"))
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-7])
	full, _ := Encode(base)
	f.Add(full) // wrong envelope kind

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeDelta(data)
		if err != nil {
			return
		}
		if got == nil {
			t.Fatal("DecodeDelta returned nil delta with nil error")
		}
		if got.BaseEntries < 0 || len(got.NewCRCs) != len(got.NewEntries) {
			t.Fatalf("accepted inconsistent delta: base=%d crcs=%d entries=%d",
				got.BaseEntries, len(got.NewCRCs), len(got.NewEntries))
		}
		refs := got.BaseEntries + len(got.NewEntries)
		for si, sh := range got.Shards {
			for _, ref := range sh.Registry {
				if ref < 0 || ref >= refs {
					t.Fatalf("accepted shard %d with dangling entry ref %d of %d", si, ref, refs)
				}
			}
		}
	})
}
