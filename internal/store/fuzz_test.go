package store

import (
	"encoding/binary"
	"testing"
)

// FuzzDecode feeds arbitrary (and mutated-valid) byte strings through the
// full decode path. The contract under test: Decode either returns a
// checkpoint or a typed error — it never panics, whatever the input.
func FuzzDecode(f *testing.F) {
	valid, err := Encode(testCheckpoint(f))
	if err != nil {
		f.Fatalf("encoding seed checkpoint: %v", err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("VDCK"))
	f.Add(valid[:headerSize])
	// A structurally valid envelope wrapping garbage: recompute nothing,
	// let the payload CRC catch it — exercises the post-envelope path too.
	short := append([]byte(nil), valid[:headerSize+64]...)
	binary.LittleEndian.PutUint64(short[8:], 64)
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data)
		if err == nil && cp == nil {
			t.Fatal("Decode returned nil checkpoint with nil error")
		}
	})
}
