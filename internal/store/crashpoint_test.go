package store

import (
	"errors"
	"testing"

	"videodrift/internal/conformal"
	"videodrift/internal/core"
	"videodrift/internal/tensor"
)

// tinyCheckpoint builds the smallest valid checkpoint the codec accepts,
// so the crash-point sweep below (one Save per byte offset) stays cheap.
// frames tags the generation, making it checkable after a recovery.
func tinyCheckpoint(t testing.TB, frames int64) *Checkpoint {
	t.Helper()
	calib := []float64{0.5, 0.25, 0.75}
	entry := &core.ModelEntry{
		Name:        "tiny",
		W:           2,
		H:           2,
		Samples:     []tensor.Vector{{0.1, 0.2, 0.3, 0.4}},
		SampleFeats: []tensor.Vector{{0.1, 0.2, 0.3, 0.4}},
		CalibRaw:    calib,
		Calib:       conformal.NewSortedCalib(calib),
	}
	cfg := core.DefaultPipelineConfig(4, 2)
	cfg.Selector = core.SelectorMSBI
	pipe := core.NewPipeline(core.NewRegistry(entry), nil, cfg)
	return &Checkpoint{
		CreatedUnixNano: 1700000000000000000,
		Frames:          frames,
		Entries:         []*core.ModelEntry{entry},
		Shards:          []ShardState{{Registry: []int{0}, Pipeline: pipe.Snapshot()}},
	}
}

var errInjectedCrash = errors.New("injected crash")

// crashFS fails the next checkpoint write through one of three crash
// points: a torn payload write after `bytes` bytes, a failed fsync, or a
// failed rename. One-shot: the save after the failed one runs clean.
type crashFS struct {
	FS
	mode  string // "write", "sync", "rename"
	bytes int    // for "write": bytes accepted before the failure
	armed bool
}

func (c *crashFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := c.FS.CreateTemp(dir, pattern)
	if err != nil || !c.armed || c.mode == "rename" {
		return f, err
	}
	c.armed = false
	return &crashFile{File: f, mode: c.mode, remaining: c.bytes}, nil
}

func (c *crashFS) Rename(oldPath, newPath string) error {
	if c.armed && c.mode == "rename" {
		c.armed = false
		return errInjectedCrash
	}
	return c.FS.Rename(oldPath, newPath)
}

type crashFile struct {
	File
	mode      string
	remaining int
}

func (f *crashFile) Write(p []byte) (int, error) {
	if f.mode != "write" {
		return f.File.Write(p)
	}
	if len(p) <= f.remaining {
		f.remaining -= len(p)
		return f.File.Write(p)
	}
	n := f.remaining
	if n > 0 {
		if _, err := f.File.Write(p[:n]); err != nil {
			return 0, err
		}
		f.remaining = 0
	}
	return n, errInjectedCrash
}

func (f *crashFile) Sync() error {
	if f.mode == "sync" {
		return errInjectedCrash
	}
	return f.File.Sync()
}

// TestCrashPointRecovery kills a checkpoint write at every byte offset
// (plus the fsync and rename crash points) and asserts the invariant the
// atomic-write protocol promises: the failed Save surfaces an error, the
// previous generation stays the newest loadable checkpoint, and the next
// Save recovers cleanly.
func TestCrashPointRecovery(t *testing.T) {
	good := tinyCheckpoint(t, 100)
	next := tinyCheckpoint(t, 200)
	encoded, err := Encode(next)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sweeping %d byte offsets", len(encoded))

	crash := func(t *testing.T, mode string, offset int) {
		t.Helper()
		cfs := &crashFS{FS: NewMemFS(), mode: mode, bytes: offset}
		st, err := OpenFS("/ckpt", cfs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Save(good); err != nil {
			t.Fatalf("seed save: %v", err)
		}
		cfs.armed = true
		if _, err := st.Save(next); !errors.Is(err, errInjectedCrash) {
			t.Fatalf("crashed save returned %v, want injected crash", err)
		}
		cp, _, err := st.LoadLatest()
		if err != nil {
			t.Fatalf("LoadLatest after crash: %v", err)
		}
		if cp.Frames != good.Frames {
			t.Fatalf("recovered generation has Frames=%d, want the previous generation (%d)", cp.Frames, good.Frames)
		}
		// The store is not wedged: the retried save must land and win.
		if _, err := st.Save(next); err != nil {
			t.Fatalf("retry save: %v", err)
		}
		cp, _, err = st.LoadLatest()
		if err != nil {
			t.Fatal(err)
		}
		if cp.Frames != next.Frames {
			t.Fatalf("after retry Frames=%d, want %d", cp.Frames, next.Frames)
		}
	}

	for offset := 0; offset < len(encoded); offset++ {
		crash(t, "write", offset)
	}
	crash(t, "sync", 0)
	crash(t, "rename", 0)
}

// TestCrashBeforeFirstSave covers the cold-start corner: a crash during
// the very first Save must leave ErrNoCheckpoint (a clean cold start),
// not a corrupt file.
func TestCrashBeforeFirstSave(t *testing.T) {
	cp := tinyCheckpoint(t, 1)
	for _, offset := range []int{0, 1, 10} {
		cfs := &crashFS{FS: NewMemFS(), mode: "write", bytes: offset, armed: true}
		st, err := OpenFS("/ckpt", cfs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Save(cp); !errors.Is(err, errInjectedCrash) {
			t.Fatalf("crashed save returned %v", err)
		}
		if _, _, err := st.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("LoadLatest = %v, want ErrNoCheckpoint", err)
		}
	}
}
