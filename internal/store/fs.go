package store

import (
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// File is the handle Save writes a checkpoint through. It is the
// minimal slice of *os.File the atomic-write protocol needs, so a fault
// injector can fail a write at an exact byte offset or kill the fsync.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS is the store's injectable I/O layer: every byte the checkpoint
// store reads or writes goes through one of these methods. Production
// stores use OSFS; tests and the fault-injection harness substitute
// in-memory or deliberately failing implementations to prove that a
// crash or I/O error at any point of a Save leaves the previous
// generation loadable (see the crash-point tests and internal/faults).
type FS interface {
	MkdirAll(dir string, perm iofs.FileMode) error
	ReadDir(dir string) ([]iofs.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	// SyncDir persists a completed rename (best effort — not all
	// platforms support fsync on directories).
	SyncDir(dir string) error
}

// OSFS is the real-filesystem FS every production store uses.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string, perm iofs.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) ReadDir(dir string) ([]iofs.DirEntry, error)   { return os.ReadDir(dir) }
func (osFS) ReadFile(path string) ([]byte, error)          { return os.ReadFile(path) }
func (osFS) Rename(oldPath, newPath string) error          { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error                      { return os.Remove(path) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	return err
}

// MemFS is an in-memory FS for tests and fault-injection harnesses: it
// makes crash-point sweeps (kill the write at every byte offset) cheap,
// and it write-throughs each Write call so a failed write leaves
// exactly the partial temp file a real crash would. Safe for concurrent
// use.
type MemFS struct {
	mu     sync.Mutex
	files  map[string][]byte
	tmpSeq int
}

// NewMemFS builds an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: map[string][]byte{}} }

func (m *MemFS) MkdirAll(dir string, perm iofs.FileMode) error { return nil }

func (m *MemFS) ReadDir(dir string) ([]iofs.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for path := range m.files { //lint:allow determinism names are sorted before use
		if strings.HasPrefix(path, prefix) && !strings.Contains(path[len(prefix):], "/") {
			names = append(names, path[len(prefix):])
		}
	}
	sort.Strings(names)
	ents := make([]iofs.DirEntry, len(names))
	for i, n := range names {
		ents[i] = memDirEntry(n)
	}
	return ents, nil
}

func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[path]
	if !ok {
		return nil, &iofs.PathError{Op: "open", Path: path, Err: iofs.ErrNotExist}
	}
	return append([]byte(nil), data...), nil
}

func (m *MemFS) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	m.tmpSeq++
	name := filepath.Join(dir, strings.Replace(pattern, "*", "mem"+strconv.Itoa(m.tmpSeq), 1))
	m.files[name] = nil
	m.mu.Unlock()
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldPath]
	if !ok {
		return &iofs.PathError{Op: "rename", Path: oldPath, Err: iofs.ErrNotExist}
	}
	m.files[newPath] = data
	delete(m.files, oldPath)
	return nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return &iofs.PathError{Op: "remove", Path: path, Err: iofs.ErrNotExist}
	}
	delete(m.files, path)
	return nil
}

func (m *MemFS) SyncDir(dir string) error { return nil }

// memFile writes through to the MemFS on every Write, so partial writes
// are visible exactly as a crashed real write would leave them.
type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	f.fs.mu.Unlock()
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }
func (f *memFile) Name() string { return f.name }

type memDirEntry string

func (e memDirEntry) Name() string        { return string(e) }
func (e memDirEntry) IsDir() bool         { return false }
func (e memDirEntry) Type() iofs.FileMode { return 0 }
func (e memDirEntry) Info() (iofs.FileInfo, error) {
	return memFileInfo(e), nil
}

type memFileInfo string

func (i memFileInfo) Name() string        { return string(i) }
func (i memFileInfo) Size() int64         { return 0 }
func (i memFileInfo) Mode() iofs.FileMode { return 0o644 }
func (i memFileInfo) ModTime() time.Time  { return time.Time{} }
func (i memFileInfo) IsDir() bool         { return false }
func (i memFileInfo) Sys() interface{}    { return nil }
