// Package detect implements the object detectors that stand in for the
// paper's Mask R-CNN and YOLOv7 (see DESIGN.md §2).
//
// Both are real sliding-window contrast detectors over pixels — template
// windows are scored by the interior's contrast against the frame's
// background estimate with a heterogeneity penalty, thresholded adaptively
// against the frame's noise level, and reduced by non-maximum suppression.
// They differ only in search density:
//
//   - NewMaskRCNNSim: stride-1 search over four scales per class plus a
//     refinement pass — slow and accurate, the annotator that defines
//     ground-truth labels (so, as in the paper, its query accuracy is 1.0
//     by construction);
//   - NewYOLOSim: stride-2 search over two scales, no refinement — faster
//     and less accurate, the drift-oblivious fast baseline.
//
// The cost difference between the two is real CPU work, not sleeps, so
// the end-to-end time comparisons of Table 9 are measured honestly.
package detect

import (
	"math"
	"sort"

	"videodrift/internal/vidsim"
)

// Detection is one detected object in frame pixel coordinates (box center
// + extents, like vidsim.Object).
type Detection struct {
	Class vidsim.Class
	X, Y  float64
	W, H  float64
	Score float64
}

// Detector locates objects in a frame.
type Detector interface {
	// Name identifies the detector in experiment output.
	Name() string
	// Detect returns the objects found in f, in descending score order.
	Detect(f vidsim.Frame) []Detection
}

// Config controls a sliding-window detector's search density and
// post-processing.
type Config struct {
	Stride     int       // window placement stride (1 = dense)
	Scales     []float64 // template scale multipliers
	Overlap    float64   // NMS overlap-over-min suppression threshold
	MaxKeep    int       // candidate cap before NMS
	Refine     bool      // run the box-refinement ("mask head") pass
	ScoreFloor float64   // minimum absolute contrast
	NoiseMult  float64   // threshold = max(ScoreFloor, NoiseMult·sigma)
}

// template is a class-conditioned base window shape (pre-scale).
type template struct {
	class vidsim.Class
	w, h  int
}

// SlidingWindowDetector is the shared implementation behind the Mask R-CNN
// and YOLO simulators.
type SlidingWindowDetector struct {
	name      string
	cfg       Config
	templates []template
}

// NewMaskRCNNSim returns the dense, refined detector playing the paper's
// Mask R-CNN role (annotator + slow accurate baseline).
func NewMaskRCNNSim() *SlidingWindowDetector {
	return &SlidingWindowDetector{
		name: "maskrcnn-sim",
		cfg: Config{
			Stride: 1, Scales: []float64{0.55, 0.7, 0.85, 1.0, 1.2, 1.4},
			Overlap: 0.3, MaxKeep: 400, Refine: true,
			ScoreFloor: 0.12, NoiseMult: 3.0,
		},
		templates: []template{{vidsim.Car, 5, 3}, {vidsim.Bus, 8, 4}},
	}
}

// NewYOLOSim returns the coarse single-pass detector playing the paper's
// YOLOv7 role (fast, drift-oblivious, less accurate).
func NewYOLOSim() *SlidingWindowDetector {
	return &SlidingWindowDetector{
		name: "yolo-sim",
		cfg: Config{
			Stride: 2, Scales: []float64{0.9, 1.3},
			Overlap: 0.5, MaxKeep: 150, Refine: false,
			ScoreFloor: 0.15, NoiseMult: 4.0,
		},
		templates: []template{{vidsim.Car, 5, 3}, {vidsim.Bus, 8, 4}},
	}
}

// Name implements Detector.
func (d *SlidingWindowDetector) Name() string { return d.name }

// Detect implements Detector.
func (d *SlidingWindowDetector) Detect(f vidsim.Frame) []Detection {
	bg, sigma := backgroundEstimate(f)
	tau := math.Max(d.cfg.ScoreFloor, d.cfg.NoiseMult*sigma)

	var cands []Detection
	for _, t := range d.templates {
		for _, s := range d.cfg.Scales {
			w := int(math.Round(float64(t.w) * s))
			h := int(math.Round(float64(t.h) * s))
			if w < 2 || h < 2 || w >= f.W-2 || h >= f.H-2 {
				continue
			}
			// Rank = (contrast − 1.5·interior std)·sqrt(area): among windows
			// over the same object, the largest fully covered template wins
			// (which is what assigns the right class — a car template
			// strictly inside a bus scores the same contrast but a smaller
			// rank), while the heterogeneity penalty stops a big template
			// from swallowing a whole cluster of adjacent objects (a
			// cluster window mixes object and background pixels and has a
			// large interior spread; a true single object is uniform).
			areaW := math.Sqrt(float64(w * h))
			for y := 1; y+h < f.H-1; y += d.cfg.Stride {
				for x := 1; x+w < f.W-1; x += d.cfg.Stride {
					mean, std := windowStats(f, x, y, w, h)
					contrast := math.Abs(mean-bg) - 1.5*std
					if contrast > tau {
						cands = append(cands, Detection{
							Class: t.class,
							X:     float64(x) + float64(w)/2,
							Y:     float64(y) + float64(h)/2,
							W:     float64(w), H: float64(h),
							Score: contrast * areaW,
						})
					}
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Score > cands[j].Score })
	if len(cands) > d.cfg.MaxKeep {
		cands = cands[:d.cfg.MaxKeep]
	}
	kept := nms(cands, d.cfg.Overlap)
	if d.cfg.Refine {
		for i := range kept {
			kept[i] = refine(f, kept[i])
		}
	}
	return kept
}

// windowStats returns the mean and standard deviation of the w×h window
// at (x, y).
func windowStats(f vidsim.Frame, x, y, w, h int) (mean, std float64) {
	sum, sumSq := 0.0, 0.0
	for yy := y; yy < y+h; yy++ {
		row := f.Pixels[yy*f.W : yy*f.W+f.W]
		for xx := x; xx < x+w; xx++ {
			p := row[xx]
			sum += p
			sumSq += p * p
		}
	}
	n := float64(w * h)
	mean = sum / n
	variance := sumSq/n - mean*mean
	if variance > 0 {
		std = math.Sqrt(variance)
	}
	return mean, std
}

// backgroundEstimate returns a robust estimate of the frame's background
// intensity (median) and pixel noise (scaled median absolute deviation)
// from a subsample of pixels. Objects cover a minority of the frame, so
// the median sits on the background.
func backgroundEstimate(f vidsim.Frame) (bg, sigma float64) {
	const stride = 7
	sample := make([]float64, 0, len(f.Pixels)/stride+1)
	for i := 0; i < len(f.Pixels); i += stride {
		sample = append(sample, f.Pixels[i])
	}
	med := median(sample)
	for i, v := range sample {
		sample[i] = math.Abs(v - med)
	}
	return med, 1.4826 * median(sample)
}

func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// nms performs greedy non-maximum suppression on score-sorted candidates.
// A candidate is suppressed when its overlap-over-min-area with a kept
// detection exceeds ovMax: dense contrast scans produce high-scoring
// partial and sub-windows all over each object, and overlap-over-min
// collapses those to one box per object while letting genuinely distinct
// objects that merely touch survive.
func nms(cands []Detection, ovMax float64) []Detection {
	var kept []Detection
	for _, c := range cands {
		ok := true
		for _, k := range kept {
			if overlapOverMin(c, k) > ovMax || nearCenters(c, k) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	return kept
}

// nearCenters reports whether two detections' centers are within 80% of
// their combined half-extents — the halo-window case: a low-score window
// hanging off the edge of an object that a pure overlap test lets through.
// Distinct objects whose boxes merely touch have center distance at least
// the full combined half-extent and survive.
func nearCenters(a, b Detection) bool {
	return math.Abs(a.X-b.X) < 0.8*(a.W+b.W)/2 && math.Abs(a.Y-b.Y) < 0.8*(a.H+b.H)/2
}

// overlapOverMin returns intersection area divided by the smaller box's
// area (1 when one box contains the other).
func overlapOverMin(a, b Detection) float64 {
	ix := math.Max(0, math.Min(a.X+a.W/2, b.X+b.W/2)-math.Max(a.X-a.W/2, b.X-b.W/2))
	iy := math.Max(0, math.Min(a.Y+a.H/2, b.Y+b.H/2)-math.Max(a.Y-a.H/2, b.Y-b.H/2))
	minArea := math.Min(a.W*a.H, b.W*b.H)
	if minArea <= 0 {
		return 0
	}
	return ix * iy / minArea
}

// iou returns the intersection-over-union of two detections' boxes.
func iou(a, b Detection) float64 {
	ax0, ax1 := a.X-a.W/2, a.X+a.W/2
	ay0, ay1 := a.Y-a.H/2, a.Y+a.H/2
	bx0, bx1 := b.X-b.W/2, b.X+b.W/2
	by0, by1 := b.Y-b.H/2, b.Y+b.H/2
	ix := math.Max(0, math.Min(ax1, bx1)-math.Max(ax0, bx0))
	iy := math.Max(0, math.Min(ay1, by1)-math.Max(ay0, by0))
	inter := ix * iy
	union := a.W*a.H + b.W*b.H - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// refine is the "mask head": it re-centers a detection on the local
// intensity mass within a slightly expanded window, tightening boxes that
// the discrete grid placed a pixel off.
func refine(f vidsim.Frame, d Detection) Detection {
	x0 := int(math.Max(d.X-d.W/2-1, 0))
	x1 := int(math.Min(d.X+d.W/2+1, float64(f.W-1)))
	y0 := int(math.Max(d.Y-d.H/2-1, 0))
	y1 := int(math.Min(d.Y+d.H/2+1, float64(f.H-1)))
	// The object is the intensity mode inside the window; weight pixels by
	// their deviation from the window's edge intensity.
	edge := (f.At(x0, y0) + f.At(x1, y0) + f.At(x0, y1) + f.At(x1, y1)) / 4
	var sw, sx, sy float64
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			w := math.Abs(f.At(x, y) - edge)
			sw += w
			sx += w * float64(x)
			sy += w * float64(y)
		}
	}
	if sw > 0 {
		// Clamp the correction to one pixel: the expanded window may touch
		// a neighbouring object in crowded scenes, and an unbounded
		// centroid would drag the box onto it.
		d.X += math.Max(-1, math.Min(1, sx/sw+0.5-d.X))
		d.Y += math.Max(-1, math.Min(1, sy/sw+0.5-d.Y))
	}
	return d
}

// CountClass returns the number of detections of class c.
func CountClass(dets []Detection, c vidsim.Class) int {
	n := 0
	for _, d := range dets {
		if d.Class == c {
			n++
		}
	}
	return n
}
