package detect

import (
	"math"
	"testing"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
	"videodrift/internal/vidsim"
)

// syntheticFrame renders a clean frame with the given objects on a uniform
// background (no generator noise) for precise detector checks.
func syntheticFrame(w, h int, bg float64, objs []vidsim.Object) vidsim.Frame {
	px := make(tensor.Vector, w*h)
	px.Fill(bg)
	f := vidsim.Frame{W: w, H: h, Pixels: px, Truth: objs}
	for _, o := range objs {
		x0, y0 := int(math.Round(o.Left())), int(math.Round(o.Top()))
		for y := y0; y < y0+int(math.Round(o.H)); y++ {
			for x := x0; x < x0+int(math.Round(o.W)); x++ {
				if x >= 0 && x < w && y >= 0 && y < h {
					px[y*w+x] = o.Intensity
				}
			}
		}
	}
	return f
}

func TestOracleFindsIsolatedObjects(t *testing.T) {
	objs := []vidsim.Object{
		{Class: vidsim.Car, X: 8, Y: 8, W: 5, H: 3, Intensity: 0.2},
		{Class: vidsim.Bus, X: 22, Y: 20, W: 8, H: 4, Intensity: 0.15},
	}
	f := syntheticFrame(32, 32, 0.75, objs)
	dets := NewMaskRCNNSim().Detect(f)
	if len(dets) != 2 {
		t.Fatalf("got %d detections, want 2: %+v", len(dets), dets)
	}
	for _, o := range objs {
		found := false
		for _, d := range dets {
			if math.Abs(d.X-o.X) < 2.5 && math.Abs(d.Y-o.Y) < 2.5 {
				found = true
				if d.Class != o.Class {
					t.Errorf("object at (%v,%v) classified as %v, want %v", o.X, o.Y, d.Class, o.Class)
				}
			}
		}
		if !found {
			t.Errorf("object at (%v,%v) not detected", o.X, o.Y)
		}
	}
}

func TestOracleEmptyFrame(t *testing.T) {
	f := syntheticFrame(32, 32, 0.5, nil)
	if dets := NewMaskRCNNSim().Detect(f); len(dets) != 0 {
		t.Errorf("empty frame produced %d detections", len(dets))
	}
}

func TestOracleRobustToNoise(t *testing.T) {
	rng := stats.NewRNG(1)
	objs := []vidsim.Object{{Class: vidsim.Car, X: 16, Y: 16, W: 5, H: 3, Intensity: 0.2}}
	f := syntheticFrame(32, 32, 0.75, objs)
	for i := range f.Pixels {
		f.Pixels[i] = math.Min(math.Max(f.Pixels[i]+rng.Normal(0, 0.04), 0), 1)
	}
	dets := NewMaskRCNNSim().Detect(f)
	if CountClass(dets, vidsim.Car) != 1 {
		t.Errorf("noisy frame: got %+v", dets)
	}
}

func TestOracleOnGeneratedScenes(t *testing.T) {
	// Count accuracy on real generator output across conditions: the dense
	// detector should land close to the ground-truth count on average.
	for _, cond := range []vidsim.Condition{vidsim.Day(), vidsim.Night()} {
		g := vidsim.NewSceneGenerator(cond, 32, 32, stats.NewRNG(2))
		det := NewMaskRCNNSim()
		truthTotal, detTotal := 0, 0
		for i := 0; i < 30; i++ {
			f := g.Next()
			truthTotal += len(f.Truth)
			detTotal += len(det.Detect(f))
		}
		ratio := float64(detTotal) / math.Max(float64(truthTotal), 1)
		if ratio < 0.5 || ratio > 1.5 {
			t.Errorf("%s: detected %d of %d objects (ratio %v)", cond.Name, detTotal, truthTotal, ratio)
		}
	}
}

// detectionF1 greedily matches detections to ground-truth objects by
// center distance (within 2.5px) and returns the F1 score.
func detectionF1(det Detector, frames []vidsim.Frame) float64 {
	tp, fp, fn := 0, 0, 0
	for _, f := range frames {
		dets := det.Detect(f)
		used := make([]bool, len(f.Truth))
		for _, d := range dets {
			matched := false
			for i, o := range f.Truth {
				if !used[i] && math.Abs(d.X-o.X) <= 2.5 && math.Abs(d.Y-o.Y) <= 2.5 {
					used[i] = true
					matched = true
					break
				}
			}
			if matched {
				tp++
			} else {
				fp++
			}
		}
		for _, u := range used {
			if !u {
				fn++
			}
		}
	}
	if tp == 0 {
		return 0
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	return 2 * prec * rec / (prec + rec)
}

func TestYOLOLessAccurateThanOracle(t *testing.T) {
	g := vidsim.NewSceneGenerator(vidsim.Night(), 32, 32, stats.NewRNG(3))
	frames := make([]vidsim.Frame, 40)
	for i := range frames {
		frames[i] = g.Next()
	}
	oracleF1 := detectionF1(NewMaskRCNNSim(), frames)
	yoloF1 := detectionF1(NewYOLOSim(), frames)
	if yoloF1 >= oracleF1 {
		t.Errorf("yolo F1 %v >= oracle F1 %v — coarse detector should be worse", yoloF1, oracleF1)
	}
	if oracleF1 < 0.5 {
		t.Errorf("oracle F1 = %v, too weak to serve as annotator", oracleF1)
	}
}

func TestDetectorNames(t *testing.T) {
	if NewMaskRCNNSim().Name() != "maskrcnn-sim" || NewYOLOSim().Name() != "yolo-sim" {
		t.Error("detector names wrong")
	}
}

func TestIoU(t *testing.T) {
	a := Detection{X: 10, Y: 10, W: 4, H: 4}
	if got := iou(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self IoU = %v", got)
	}
	b := Detection{X: 100, Y: 100, W: 4, H: 4}
	if got := iou(a, b); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
	c := Detection{X: 12, Y: 10, W: 4, H: 4} // half-overlap in x
	got := iou(a, c)
	if got <= 0 || got >= 1 {
		t.Errorf("partial IoU = %v", got)
	}
}

func TestNMSSuppressesDuplicates(t *testing.T) {
	cands := []Detection{
		{X: 10, Y: 10, W: 4, H: 4, Score: 0.9},
		{X: 10.5, Y: 10, W: 4, H: 4, Score: 0.8}, // near-duplicate
		{X: 20, Y: 20, W: 4, H: 4, Score: 0.7},
	}
	kept := nms(cands, 0.3)
	if len(kept) != 2 {
		t.Fatalf("nms kept %d, want 2: %+v", len(kept), kept)
	}
	if kept[0].Score != 0.9 || kept[1].Score != 0.7 {
		t.Errorf("nms kept wrong candidates: %+v", kept)
	}
}

func TestCountClass(t *testing.T) {
	dets := []Detection{
		{Class: vidsim.Car}, {Class: vidsim.Bus}, {Class: vidsim.Car},
	}
	if CountClass(dets, vidsim.Car) != 2 || CountClass(dets, vidsim.Bus) != 1 {
		t.Error("CountClass wrong")
	}
	if CountClass(nil, vidsim.Car) != 0 {
		t.Error("CountClass(nil) != 0")
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even median wrong")
	}
	if median(nil) != 0 {
		t.Error("empty median != 0")
	}
}

// BenchmarkDetectors documents the relative per-frame cost of the two
// detectors — the basis of Table 9's detector rows.
func BenchmarkDetectors(b *testing.B) {
	g := vidsim.NewSceneGenerator(vidsim.Day(), 32, 32, stats.NewRNG(4))
	f := g.Next()
	b.Run("maskrcnn-sim", func(b *testing.B) {
		det := NewMaskRCNNSim()
		for i := 0; i < b.N; i++ {
			det.Detect(f)
		}
	})
	b.Run("yolo-sim", func(b *testing.B) {
		det := NewYOLOSim()
		for i := 0; i < b.N; i++ {
			det.Detect(f)
		}
	})
}
