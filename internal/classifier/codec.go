package classifier

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"videodrift/internal/stats"
)

// classifierRecord is the gob wire form of a Classifier: the
// architecture plus the network weights as produced by
// nn.Network.MarshalBinary. Optimizer moments are not retained —
// provisioned classifiers are never resumed mid-Fit.
//
//driftlint:snapshot encode=Classifier.MarshalBinary decode=UnmarshalClassifier
type classifierRecord struct {
	Config  Config
	Weights []byte
}

// MarshalBinary serializes the classifier's architecture and weights.
func (c *Classifier) MarshalBinary() ([]byte, error) {
	w, err := c.net.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("classifier: encode: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(classifierRecord{Config: c.cfg, Weights: w}); err != nil {
		return nil, fmt.Errorf("classifier: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalClassifier reconstructs a classifier serialized by
// MarshalBinary: same architecture, identical weights (and therefore
// bit-identical predictions).
func UnmarshalClassifier(data []byte) (*Classifier, error) {
	var rec classifierRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("classifier: decode: %w", err)
	}
	if rec.Config.InputDim <= 0 || rec.Config.NumClasses < 2 {
		return nil, fmt.Errorf("classifier: decode: invalid config %+v", rec.Config)
	}
	// Initialization weights are discarded by the restore below, so the
	// construction RNG is a throwaway.
	c := New(rec.Config, stats.NewRNG(0))
	if err := c.net.UnmarshalBinary(rec.Weights); err != nil {
		return nil, fmt.Errorf("classifier: decode: %w", err)
	}
	return c, nil
}

// ensembleRecord is the gob wire form of an Ensemble: one encoded
// classifier per member.
//
//driftlint:snapshot encode=Ensemble.MarshalBinary decode=UnmarshalEnsemble
type ensembleRecord struct {
	Members [][]byte
}

// MarshalBinary serializes every ensemble member.
func (e *Ensemble) MarshalBinary() ([]byte, error) {
	rec := ensembleRecord{Members: make([][]byte, len(e.Members))}
	for i, m := range e.Members {
		b, err := m.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("classifier: encode ensemble member %d: %w", i, err)
		}
		rec.Members[i] = b
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("classifier: encode ensemble: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalEnsemble reconstructs an ensemble serialized by
// MarshalBinary.
func UnmarshalEnsemble(data []byte) (*Ensemble, error) {
	var rec ensembleRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("classifier: decode ensemble: %w", err)
	}
	if len(rec.Members) == 0 {
		return nil, fmt.Errorf("classifier: decode ensemble: no members")
	}
	e := &Ensemble{Members: make([]*Classifier, len(rec.Members))}
	for i, b := range rec.Members {
		m, err := UnmarshalClassifier(b)
		if err != nil {
			return nil, fmt.Errorf("classifier: decode ensemble member %d: %w", i, err)
		}
		e.Members[i] = m
	}
	return e, nil
}
