// Package classifier implements the MLP image classifiers that answer
// queries in the pipeline (paper §6.3 trains VGG-19 / OD-CLF models; see
// DESIGN.md §2 for the substitution) and the deep ensembles MSBO uses for
// uncertainty quantification (paper §5.2.2, following Lakshminarayanan et
// al.: L members, random initialization, each trained end-to-end on a
// randomized shuffle of the full training set, treated as a uniform
// mixture).
package classifier

import (
	"fmt"

	"videodrift/internal/nn"
	"videodrift/internal/parallel"
	"videodrift/internal/stats"
	"videodrift/internal/tensor"
)

// Sample is one labeled training example: a flattened frame (or feature
// vector) and its integer class label.
type Sample struct {
	X     tensor.Vector
	Label int
}

// Config describes a classifier architecture and training setup.
type Config struct {
	InputDim   int
	HiddenDim  int
	NumClasses int
	LR         float64
	Epochs     int
}

// DefaultConfig returns a configuration sized for the synthetic frames in
// this repo.
func DefaultConfig(inputDim, numClasses int) Config {
	return Config{InputDim: inputDim, HiddenDim: 32, NumClasses: numClasses, LR: 1e-3, Epochs: 10}
}

// Classifier is a softmax MLP. It is not safe for concurrent use (layer
// forward passes cache state); clone per goroutine or guard externally.
type Classifier struct {
	cfg Config
	net *nn.Network
	opt *nn.Adam
}

// New creates an untrained classifier with weights drawn from rng.
func New(cfg Config, rng *stats.RNG) *Classifier {
	if cfg.InputDim <= 0 || cfg.NumClasses < 2 {
		panic(fmt.Sprintf("classifier: invalid config %+v", cfg))
	}
	if cfg.HiddenDim <= 0 {
		cfg.HiddenDim = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	return &Classifier{
		cfg: cfg,
		net: nn.NewNetwork(
			nn.NewDense(cfg.InputDim, cfg.HiddenDim, rng),
			&nn.ReLU{},
			nn.NewDense(cfg.HiddenDim, cfg.NumClasses, rng),
		),
		opt: nn.NewAdam(cfg.LR),
	}
}

// Config returns the configuration the classifier was built with.
func (c *Classifier) Config() Config { return c.cfg }

// NumClasses returns the size of the classifier's output distribution.
func (c *Classifier) NumClasses() int { return c.cfg.NumClasses }

// TrainStep performs one stochastic gradient step on a single example and
// returns the cross-entropy loss.
func (c *Classifier) TrainStep(x tensor.Vector, label int) float64 {
	c.net.ZeroGrad()
	logits := c.net.Forward(x)
	loss, grad := nn.SoftmaxCrossEntropy(logits, label)
	c.net.Backward(grad)
	c.opt.Step(c.net.Params())
	return loss
}

// Fit trains on samples for cfg.Epochs epochs with a fresh shuffle per
// epoch (softmax cross-entropy, Adam — the proper scoring rule of paper
// §5.2.1) and returns the mean loss per epoch.
func (c *Classifier) Fit(samples []Sample, rng *stats.RNG) []float64 {
	if len(samples) == 0 {
		return nil
	}
	losses := make([]float64, 0, c.cfg.Epochs)
	for e := 0; e < c.cfg.Epochs; e++ {
		perm := rng.Perm(len(samples))
		total := 0.0
		for _, i := range perm {
			total += c.TrainStep(samples[i].X, samples[i].Label)
		}
		losses = append(losses, total/float64(len(samples)))
	}
	return losses
}

// PredictProba returns the softmax class distribution for x.
func (c *Classifier) PredictProba(x tensor.Vector) tensor.Vector {
	return tensor.Softmax(c.net.Forward(x))
}

// Predict returns the most likely class for x.
func (c *Classifier) Predict(x tensor.Vector) int {
	return c.net.Forward(x).ArgMax()
}

// Accuracy returns the fraction of samples the classifier labels
// correctly, or 0 for an empty slice.
func (c *Classifier) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if c.Predict(s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// Ensemble is a uniformly weighted mixture of L independently initialized
// classifiers — the deep ensemble MSBO scores models with (paper §5.2.2).
type Ensemble struct {
	Members []*Classifier
}

// NewEnsemble creates an ensemble of size members with independent random
// initializations derived from rng.
func NewEnsemble(size int, cfg Config, rng *stats.RNG) *Ensemble {
	if size <= 0 {
		panic("classifier: NewEnsemble with non-positive size")
	}
	e := &Ensemble{Members: make([]*Classifier, size)}
	for i := range e.Members {
		e.Members[i] = New(cfg, rng.Split())
	}
	return e
}

// Fit trains every member on the full sample set with an independent
// shuffle order per member (the full-data deep-ensemble recipe the paper
// adopts instead of bagging). Members train concurrently on a bounded
// worker pool; per-member RNG streams are forked in member order before
// the fan-out, so the trained weights are identical to a serial fit.
func (e *Ensemble) Fit(samples []Sample, rng *stats.RNG) {
	parallel.Shared(0).ForEachSeeded(len(e.Members), rng, func(i int, r *stats.RNG) {
		e.Members[i].Fit(samples, r)
	})
}

// PredictProba returns the uniformly weighted mixture prediction
// (1/L)·Σ_l p_l(y|x).
func (e *Ensemble) PredictProba(x tensor.Vector) tensor.Vector {
	out := tensor.NewVector(e.Members[0].NumClasses())
	for _, m := range e.Members {
		out.AddInPlace(m.PredictProba(x))
	}
	return out.Scale(1 / float64(len(e.Members)))
}

// Predict returns the most likely class under the mixture.
func (e *Ensemble) Predict(x tensor.Vector) int {
	return e.PredictProba(x).ArgMax()
}

// Brier returns the Brier score of the mixture prediction for one example.
func (e *Ensemble) Brier(x tensor.Vector, label int) float64 {
	return nn.BrierScore(e.PredictProba(x), label)
}

// AvgBrier returns the mean Brier score of the mixture over samples — the
// predictive-uncertainty estimate MSBO ranks models by. It returns the
// worst possible certainty signal (1) for an empty slice.
func (e *Ensemble) AvgBrier(samples []Sample) float64 {
	if len(samples) == 0 {
		return 1
	}
	total := 0.0
	for _, s := range samples {
		total += e.Brier(s.X, s.Label)
	}
	return total / float64(len(samples))
}

// Accuracy returns the mixture's classification accuracy over samples.
func (e *Ensemble) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if e.Predict(s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// Size returns the number of ensemble members (L).
func (e *Ensemble) Size() int { return len(e.Members) }
