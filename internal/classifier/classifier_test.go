package classifier

import (
	"math"
	"testing"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
)

// gaussianBlobs builds a 2-class dataset of well-separated Gaussian blobs
// in dim dimensions.
func gaussianBlobs(rng *stats.RNG, dim, perClass int) []Sample {
	samples := make([]Sample, 0, 2*perClass)
	for c := 0; c < 2; c++ {
		center := float64(c)*2 - 1 // -1 or +1
		for i := 0; i < perClass; i++ {
			samples = append(samples, Sample{
				X:     tensor.Vector(rng.NormalVec(dim, center, 0.3)),
				Label: c,
			})
		}
	}
	return samples
}

func TestFitLearnsBlobs(t *testing.T) {
	rng := stats.NewRNG(1)
	train := gaussianBlobs(rng, 8, 40)
	test := gaussianBlobs(rng, 8, 20)
	c := New(Config{InputDim: 8, HiddenDim: 16, NumClasses: 2, LR: 5e-3, Epochs: 15}, stats.NewRNG(2))
	losses := c.Fit(train, stats.NewRNG(3))
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	if acc := c.Accuracy(test); acc < 0.95 {
		t.Errorf("test accuracy = %v, want >= 0.95", acc)
	}
}

func TestFitEmpty(t *testing.T) {
	c := New(DefaultConfig(4, 2), stats.NewRNG(4))
	if got := c.Fit(nil, stats.NewRNG(5)); got != nil {
		t.Errorf("Fit(nil) = %v", got)
	}
	if got := c.Accuracy(nil); got != 0 {
		t.Errorf("Accuracy(nil) = %v", got)
	}
}

func TestPredictProbaIsDistribution(t *testing.T) {
	rng := stats.NewRNG(6)
	c := New(DefaultConfig(4, 3), stats.NewRNG(7))
	for i := 0; i < 20; i++ {
		p := c.PredictProba(tensor.Vector(rng.NormalVec(4, 0, 1)))
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestNewValidates(t *testing.T) {
	for _, cfg := range []Config{
		{InputDim: 0, NumClasses: 2},
		{InputDim: 4, NumClasses: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg, stats.NewRNG(8))
		}()
	}
}

func TestEnsembleMembersDiffer(t *testing.T) {
	e := NewEnsemble(3, DefaultConfig(4, 2), stats.NewRNG(9))
	if e.Size() != 3 {
		t.Fatalf("Size = %d", e.Size())
	}
	x := tensor.Vector{1, 2, 3, 4}
	p0 := e.Members[0].PredictProba(x)
	p1 := e.Members[1].PredictProba(x)
	if p0.Dist(p1) == 0 {
		t.Error("ensemble members are identical — initialization is not independent")
	}
}

func TestEnsembleFitAndMixture(t *testing.T) {
	rng := stats.NewRNG(10)
	train := gaussianBlobs(rng, 8, 40)
	test := gaussianBlobs(rng, 8, 20)
	e := NewEnsemble(3, Config{InputDim: 8, HiddenDim: 16, NumClasses: 2, LR: 5e-3, Epochs: 10}, stats.NewRNG(11))
	e.Fit(train, stats.NewRNG(12))
	if acc := e.Accuracy(test); acc < 0.95 {
		t.Errorf("ensemble accuracy = %v", acc)
	}
	// Mixture probabilities are a valid distribution.
	p := e.PredictProba(test[0].X)
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mixture sums to %v", sum)
	}
}

// TestEnsembleBrierSeparatesDistributions is the core MSBO property: an
// ensemble trained on distribution A has a much lower Brier score on A
// than on an unseen distribution B (even when single-model softmax
// confidence might remain high — the overconfidence problem of §5.2).
func TestEnsembleBrierSeparatesDistributions(t *testing.T) {
	rng := stats.NewRNG(13)
	trainA := gaussianBlobs(rng, 8, 40)
	testA := gaussianBlobs(rng, 8, 20)
	// Distribution B: same labels but shifted far away.
	testB := make([]Sample, len(testA))
	for i, s := range testA {
		x := s.X.Clone()
		for j := range x {
			x[j] += 6 * math.Cos(float64(j)) // orthogonal-ish large shift
		}
		testB[i] = Sample{X: x, Label: s.Label}
	}
	e := NewEnsemble(5, Config{InputDim: 8, HiddenDim: 16, NumClasses: 2, LR: 5e-3, Epochs: 10}, stats.NewRNG(14))
	e.Fit(trainA, stats.NewRNG(15))

	inBrier := e.AvgBrier(testA)
	outBrier := e.AvgBrier(testB)
	if inBrier >= outBrier {
		t.Errorf("in-distribution Brier %v >= out-of-distribution %v", inBrier, outBrier)
	}
	if outBrier < 2*inBrier {
		t.Errorf("weak Brier separation: in %v out %v", inBrier, outBrier)
	}
}

func TestAvgBrierEmpty(t *testing.T) {
	e := NewEnsemble(2, DefaultConfig(4, 2), stats.NewRNG(16))
	if got := e.AvgBrier(nil); got != 1 {
		t.Errorf("AvgBrier(nil) = %v, want 1", got)
	}
	if got := e.Accuracy(nil); got != 0 {
		t.Errorf("Accuracy(nil) = %v", got)
	}
}

func TestEnsembleSizePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEnsemble(0) did not panic")
		}
	}()
	NewEnsemble(0, DefaultConfig(4, 2), stats.NewRNG(17))
}

func TestEnsembleDeterministicGivenSeed(t *testing.T) {
	build := func() *Ensemble {
		rng := stats.NewRNG(20)
		train := gaussianBlobs(stats.NewRNG(21), 4, 10)
		e := NewEnsemble(2, Config{InputDim: 4, HiddenDim: 8, NumClasses: 2, LR: 5e-3, Epochs: 3}, rng.Split())
		e.Fit(train, rng.Split())
		return e
	}
	a, b := build(), build()
	x := tensor.Vector{0.5, -0.5, 0.1, 0}
	if a.PredictProba(x).Dist(b.PredictProba(x)) > 1e-12 {
		t.Error("ensemble training is not deterministic given a fixed seed")
	}
}
