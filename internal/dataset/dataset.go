// Package dataset builds the synthetic analogs of the paper's three
// evaluation datasets (Table 5) plus the slow-drift live-camera setting of
// §6.1.3. Each dataset is a scripted vidsim stream: an ordered list of
// condition sequences with known drift points, together with per-condition
// training data for provisioning models (the T_i of the paper).
//
// Scale 1.0 reproduces the paper's stream sizes (BDD 80k frames, Detrac
// 30k, Tokyo 45k); experiments and tests pass smaller scales.
package dataset

import (
	"fmt"
	"math"

	"videodrift/internal/stats"
	"videodrift/internal/vidsim"
)

// Dataset describes one evaluation dataset: an ordered list of condition
// sequences of equal length, rendered as a single stream with a drift at
// each sequence boundary. A warmup segment under the *last* condition
// precedes the first sequence so that every listed sequence — including
// the first — is entered through a genuine drift, matching how the paper
// counts drifts (BDD: 4, Detrac: 5, Tokyo: 3).
type Dataset struct {
	Name          string
	W, H          int
	Sequences     []vidsim.Condition
	SeqLength     int
	WarmupLen     int
	TransitionLen int // >0 → every drift is gradual over this many frames
	Seed          int64
}

// FrameDim returns the flattened pixel dimensionality of the dataset's
// frames.
func (d *Dataset) FrameDim() int { return d.W * d.H }

// StreamSize returns the number of frames in the evaluated stream
// (sequences only, excluding warmup) — the "Stream Size" column of Table 5.
func (d *Dataset) StreamSize() int { return len(d.Sequences) * d.SeqLength }

// NumDrifts returns the number of ground-truth drifts in the stream.
func (d *Dataset) NumDrifts() int { return len(d.Sequences) }

// SequenceNames returns the names of the sequences in stream order.
func (d *Dataset) SequenceNames() []string {
	names := make([]string, len(d.Sequences))
	for i, c := range d.Sequences {
		names[i] = c.Name
	}
	return names
}

// Stream builds the dataset's scripted stream: warmup under the last
// condition, then every sequence in order. The returned stream's
// DriftPoints()[k] is the ground-truth drift frame into Sequences[k].
func (d *Dataset) Stream() *vidsim.Stream {
	segs := make([]vidsim.Segment, 0, len(d.Sequences)+1)
	segs = append(segs, vidsim.Segment{Cond: d.Sequences[len(d.Sequences)-1], Length: d.WarmupLen})
	for _, c := range d.Sequences {
		segs = append(segs, vidsim.Segment{Cond: c, Length: d.SeqLength, TransitionLen: d.TransitionLen})
	}
	return vidsim.NewStream(d.W, d.H, d.Seed, segs...)
}

// TransitionStream builds a two-segment stream for evaluating one drift in
// isolation: preLen frames of the sequence before index seq, then the
// sequence seq itself. Its single drift point is at preLen.
func (d *Dataset) TransitionStream(seq, preLen, postLen int) *vidsim.Stream {
	if seq < 0 || seq >= len(d.Sequences) {
		panic(fmt.Sprintf("dataset: TransitionStream sequence %d out of range", seq))
	}
	prev := d.Sequences[(seq+len(d.Sequences)-1)%len(d.Sequences)]
	return vidsim.NewStream(d.W, d.H, d.Seed+int64(seq)*7919,
		vidsim.Segment{Cond: prev, Length: preLen},
		vidsim.Segment{Cond: d.Sequences[seq], Length: postLen, TransitionLen: d.TransitionLen},
	)
}

// TrainingFrames renders n independent training frames for sequence seq —
// the training data T_i provisioned alongside model M_i. The generator
// seed differs from the stream seed, standing in for "captured on a
// previous day".
func (d *Dataset) TrainingFrames(seq, n int) []vidsim.Frame {
	if seq < 0 || seq >= len(d.Sequences) {
		panic(fmt.Sprintf("dataset: TrainingFrames sequence %d out of range", seq))
	}
	return vidsim.GenerateTraining(d.Sequences[seq], d.W, d.H, n, d.Seed^0x5eed+int64(seq)*104729)
}

// Stats summarizes a dataset the way the paper's Table 5 does.
type Stats struct {
	Name        string
	Sequences   int
	StreamSize  int
	ObjPerFrame float64
	Std         float64
}

// Stats measures objects-per-frame statistics over a sample of up to
// sampleLen frames per sequence (the full sequence when sampleLen <= 0).
func (d *Dataset) Stats(sampleLen int) Stats {
	if sampleLen <= 0 || sampleLen > d.SeqLength {
		sampleLen = d.SeqLength
	}
	var w stats.Welford
	for i, c := range d.Sequences {
		g := vidsim.NewSceneGenerator(c, d.W, d.H, stats.NewRNG(d.Seed+int64(i)*31))
		for k := 0; k < sampleLen; k++ {
			w.Add(float64(len(g.Next().Truth)))
		}
	}
	return Stats{
		Name:        d.Name,
		Sequences:   len(d.Sequences),
		StreamSize:  d.StreamSize(),
		ObjPerFrame: w.Mean(),
		Std:         w.StdDev(),
	}
}

func scaled(n int, scale float64) int {
	s := int(math.Round(float64(n) * scale))
	if s < 10 {
		s = 10
	}
	return s
}

// BDD builds the Berkeley-Deep-Drive analog: 4 weather/daytime sequences
// (Night, Rain, Snow, Day — the drift order of §6) of 20k frames each at
// scale 1.0, ~9.2 objects per frame.
func BDD(scale float64) *Dataset {
	return &Dataset{
		Name: "BDD", W: 32, H: 32,
		Sequences: []vidsim.Condition{vidsim.Night(), vidsim.RainCond(), vidsim.SnowCond(), vidsim.Day()},
		SeqLength: scaled(20000, scale),
		WarmupLen: scaled(1000, scale),
		Seed:      1001,
	}
}

// Detrac builds the Detrac analog: 5 fixed-camera angle sequences of 6k
// frames each at scale 1.0, ~17.2 objects per frame.
func Detrac(scale float64) *Dataset {
	seqs := make([]vidsim.Condition, 5)
	for k := range seqs {
		seqs[k] = vidsim.Angle(k+1, 17, -1)
	}
	return &Dataset{
		Name: "Detrac", W: 32, H: 32,
		Sequences: seqs,
		SeqLength: scaled(6000, scale),
		WarmupLen: scaled(1000, scale),
		Seed:      2002,
	}
}

// Tokyo builds the Tokyo-intersection analog: 3 camera angles over the
// same road intersection, 15k frames each at scale 1.0, ~19.2 objects per
// frame. Angles 1 and 3 share part of their field of view (angle 3 is
// built similar to angle 1), the property that makes ODIN-Detect faster
// than DI on Angle 2 in the paper's Figure 3(c).
func Tokyo(scale float64) *Dataset {
	return &Dataset{
		Name: "Tokyo", W: 32, H: 32,
		Sequences: []vidsim.Condition{
			vidsim.Angle(1, 19, -1),
			vidsim.Angle(2, 19, -1),
			vidsim.Angle(3, 19, 1),
		},
		SeqLength: scaled(15000, scale),
		WarmupLen: scaled(1000, scale),
		Seed:      3003,
	}
}

// SlowDrift builds the §6.1.3 live-camera setting: a day sequence drifting
// gradually into night over a long transition (no abrupt cut). The
// ground-truth drift point ("sundown") is the start of the night sequence.
func SlowDrift(scale float64) *Dataset {
	return &Dataset{
		Name: "TokyoLive", W: 32, H: 32,
		Sequences:     []vidsim.Condition{vidsim.Day(), vidsim.Night()},
		SeqLength:     scaled(10000, scale),
		WarmupLen:     scaled(1000, scale),
		TransitionLen: scaled(2000, scale),
		Seed:          4004,
	}
}

// All returns the three Table-5 datasets at the given scale.
func All(scale float64) []*Dataset {
	return []*Dataset{BDD(scale), Detrac(scale), Tokyo(scale)}
}
