package dataset

import (
	"math"
	"testing"
)

func TestPaperScaleSizes(t *testing.T) {
	cases := []struct {
		ds         *Dataset
		sequences  int
		streamSize int
	}{
		{BDD(1.0), 4, 80000},
		{Detrac(1.0), 5, 30000},
		{Tokyo(1.0), 3, 45000},
	}
	for _, c := range cases {
		if got := len(c.ds.Sequences); got != c.sequences {
			t.Errorf("%s sequences = %d, want %d", c.ds.Name, got, c.sequences)
		}
		if got := c.ds.StreamSize(); got != c.streamSize {
			t.Errorf("%s stream size = %d, want %d", c.ds.Name, got, c.streamSize)
		}
		if got := c.ds.NumDrifts(); got != c.sequences {
			t.Errorf("%s drifts = %d, want %d", c.ds.Name, got, c.sequences)
		}
	}
}

func TestScaling(t *testing.T) {
	d := BDD(0.01)
	if d.StreamSize() != 800 {
		t.Errorf("scaled stream size = %d", d.StreamSize())
	}
	// Scale floor keeps segments non-degenerate.
	tiny := Detrac(1e-9)
	if tiny.SeqLength < 10 {
		t.Errorf("scale floor violated: %d", tiny.SeqLength)
	}
}

func TestStreamDriftPoints(t *testing.T) {
	d := BDD(0.005) // 100 frames per sequence, 5 warmup... warmup scaled separately
	s := d.Stream()
	pts := s.DriftPoints()
	if len(pts) != 4 {
		t.Fatalf("drift points = %v", pts)
	}
	if pts[0] != d.WarmupLen {
		t.Errorf("first drift at %d, want warmup length %d", pts[0], d.WarmupLen)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i]-pts[i-1] != d.SeqLength {
			t.Errorf("drift spacing %d, want %d", pts[i]-pts[i-1], d.SeqLength)
		}
	}
	if got := s.TotalLength(); got != d.WarmupLen+d.StreamSize() {
		t.Errorf("total length = %d", got)
	}
}

func TestWarmupUsesLastCondition(t *testing.T) {
	d := Tokyo(0.002)
	s := d.Stream()
	f, ok := s.Next()
	if !ok {
		t.Fatal("empty stream")
	}
	last := d.Sequences[len(d.Sequences)-1].Name
	if f.Condition != last {
		t.Errorf("warmup condition = %q, want %q", f.Condition, last)
	}
}

func TestObjectsPerFrameNearPaper(t *testing.T) {
	cases := []struct {
		ds   *Dataset
		want float64
	}{
		{BDD(0.01), 9.2},
		{Detrac(0.01), 17.2},
		{Tokyo(0.01), 19.2},
	}
	for _, c := range cases {
		st := c.ds.Stats(300)
		if math.Abs(st.ObjPerFrame-c.want) > 0.3*c.want {
			t.Errorf("%s obj/frame = %v, paper has %v", c.ds.Name, st.ObjPerFrame, c.want)
		}
		if st.Std <= 0.5 {
			t.Errorf("%s obj/frame std = %v, want bursty traffic", c.ds.Name, st.Std)
		}
		if st.Sequences != len(c.ds.Sequences) || st.StreamSize != c.ds.StreamSize() {
			t.Errorf("%s stats metadata wrong: %+v", c.ds.Name, st)
		}
	}
}

func TestTransitionStream(t *testing.T) {
	d := Detrac(0.01)
	s := d.TransitionStream(2, 30, 50)
	if got := s.TotalLength(); got != 80 {
		t.Errorf("transition stream length = %d", got)
	}
	pts := s.DriftPoints()
	if len(pts) != 1 || pts[0] != 30 {
		t.Errorf("transition drift points = %v", pts)
	}
	frames := s.Collect(-1)
	if frames[29].Condition != d.Sequences[1].Name {
		t.Errorf("pre-drift condition = %q", frames[29].Condition)
	}
	if frames[31].Condition != d.Sequences[2].Name {
		t.Errorf("post-drift condition = %q", frames[31].Condition)
	}
	// Sequence 0 wraps around to the last sequence as predecessor.
	s0 := d.TransitionStream(0, 10, 10)
	f0 := s0.Collect(1)[0]
	if f0.Condition != d.Sequences[len(d.Sequences)-1].Name {
		t.Errorf("wraparound predecessor = %q", f0.Condition)
	}
}

func TestTransitionStreamRangePanic(t *testing.T) {
	d := BDD(0.01)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range TransitionStream did not panic")
		}
	}()
	d.TransitionStream(9, 10, 10)
}

func TestTrainingFramesIndependentOfStream(t *testing.T) {
	d := BDD(0.005)
	tr := d.TrainingFrames(0, 40)
	if len(tr) != 40 {
		t.Fatalf("training frames = %d", len(tr))
	}
	for _, f := range tr {
		if f.Condition != d.Sequences[0].Name {
			t.Fatalf("training condition = %q", f.Condition)
		}
	}
	// Different sequences give different training data.
	tr2 := d.TrainingFrames(3, 40)
	if tr[0].Pixels.Dist(tr2[0].Pixels) == 0 {
		t.Error("training frames identical across sequences")
	}
}

func TestSlowDriftDataset(t *testing.T) {
	d := SlowDrift(0.01)
	if d.TransitionLen <= 0 {
		t.Fatal("slow drift has no transition")
	}
	s := d.Stream()
	frames := s.Collect(-1)
	// The sunset drift is the transition into the night sequence (the
	// last drift point; the first is warmup→day).
	pts := s.DriftPoints()
	drift := pts[len(pts)-1]
	// Brightness at the drift point is still day-like; by the end of the
	// transition it is night-like.
	pre := frames[drift-1].Pixels.Mean()
	justAfter := frames[drift+2].Pixels.Mean()
	end := frames[drift+d.TransitionLen+20].Pixels.Mean()
	if math.Abs(pre-justAfter) > 0.15 {
		t.Errorf("slow drift jumped abruptly: %v -> %v", pre, justAfter)
	}
	if pre-end < 0.25 {
		t.Errorf("slow drift did not reach night: pre %v end %v", pre, end)
	}
}

func TestAllReturnsThree(t *testing.T) {
	all := All(0.01)
	if len(all) != 3 {
		t.Fatalf("All returned %d datasets", len(all))
	}
	names := map[string]bool{}
	for _, d := range all {
		names[d.Name] = true
	}
	for _, want := range []string{"BDD", "Detrac", "Tokyo"} {
		if !names[want] {
			t.Errorf("missing dataset %q", want)
		}
	}
}

func TestSequenceNamesAndFrameDim(t *testing.T) {
	d := BDD(0.01)
	names := d.SequenceNames()
	want := []string{"night", "rain", "snow", "day"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("sequence %d = %q, want %q", i, names[i], want[i])
		}
	}
	if d.FrameDim() != 1024 {
		t.Errorf("FrameDim = %d", d.FrameDim())
	}
}
