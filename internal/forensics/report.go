package forensics

import (
	"fmt"
	"io"

	"videodrift/internal/core"
	"videodrift/internal/telemetry"
)

// Report is the full forensic explanation of one drift declaration:
// the recorded evidence, the ranked per-feature attribution, the
// replayed martingale trajectory, and how the selection phase resolved.
// It is what `drifttool explain` renders and what driftserve's
// /drift/<id> endpoint serves as JSON.
type Report struct {
	ID    string `json:"id"`
	Frame int    `json:"frame"`
	Model string `json:"model"`

	Lag         int     `json:"lag"`
	Sampled     int     `json:"sampled"`
	Martingale  float64 `json:"martingale"`
	WindowDelta float64 `json:"window_delta"`
	MeanP       float64 `json:"mean_p"`

	Attribution []telemetry.DimShift `json:"attribution,omitempty"`

	BaseFrame int          `json:"base_frame"`
	PreRoll   int          `json:"pre_roll"`
	Replay    ReplayResult `json:"replay"`

	Resolved   bool       `json:"resolved"`
	Resolution Resolution `json:"resolution,omitzero"`
}

// BuildReport replays the declaration and assembles its report. See
// Replay for the entries/cfg contract.
func BuildReport(entries []*core.ModelEntry, cfg core.PipelineConfig, d Declaration) (Report, error) {
	rep, err := Replay(entries, cfg, d)
	if err != nil {
		return Report{}, err
	}
	return Report{
		ID:          d.ID,
		Frame:       d.Frame,
		Model:       d.Model,
		Lag:         d.Lag,
		Sampled:     d.Sampled,
		Martingale:  d.Martingale,
		WindowDelta: d.WindowDelta,
		MeanP:       d.MeanP,
		Attribution: d.Attribution,
		BaseFrame:   d.BaseFrame,
		PreRoll:     len(d.Frames),
		Replay:      rep,
		Resolved:    d.Resolved,
		Resolution:  d.Resolution,
	}, nil
}

// WriteText renders the report as an indented plain-text explanation.
func (rep Report) WriteText(w io.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("%s — drift on model %s at frame %d\n", rep.ID, rep.Model, rep.Frame)
	p("  declared  after %d frames observed (%d sampled into the martingale)\n", rep.Lag, rep.Sampled)
	p("  evidence  martingale %.4f, window delta %.4f, mean p-value %.4f\n", rep.Martingale, rep.WindowDelta, rep.MeanP)
	match := "NO — trajectory diverged"
	if rep.Replay.Matches {
		match = "yes, bit-identical"
	}
	redeclared := "never re-fired"
	if rep.Replay.DeclaredFrame >= 0 {
		redeclared = fmt.Sprintf("re-declared at frame %d", rep.Replay.DeclaredFrame)
	}
	p("  replay    %d pre-roll frames from frame %d: %s (matches recording: %s)\n",
		rep.PreRoll, rep.BaseFrame, redeclared, match)
	if len(rep.Attribution) > 0 {
		p("  attribution (reference vs recent window, most moved first):\n")
		p("    %4s  %-14s  %8s  %8s  %11s  %9s\n", "dim", "name", "js", "kl", "mean shift", "var ratio")
		for _, a := range rep.Attribution {
			name := a.Name
			if name == "" {
				name = "-"
			}
			p("    %4d  %-14s  %8.4f  %8.4f  %+11.4f  %9.4f\n", a.Dim, name, a.JS, a.KL, a.MeanShift, a.VarRatio)
		}
	}
	if len(rep.Replay.Points) > 0 {
		p("  trajectory (replayed martingale updates):\n")
		p("    %7s  %8s  %10s  %12s\n", "frame", "p-value", "martingale", "window delta")
		for _, pt := range rep.Replay.Points {
			p("    %7d  %8.4f  %10.4f  %12.4f\n", pt.Frame, pt.PValue, pt.Martingale, pt.WindowDelta)
		}
	}
	switch {
	case rep.Resolved && rep.Resolution.Abandoned:
		p("  resolution  training abandoned at frame %d; %s kept serving degraded\n", rep.Resolution.Frame, rep.Model)
	case rep.Resolved && rep.Resolution.TrainedNew:
		p("  resolution  trained and deployed %s at frame %d\n", rep.Resolution.Model, rep.Resolution.Frame)
	case rep.Resolved:
		p("  resolution  switched to %s at frame %d\n", rep.Resolution.Model, rep.Resolution.Frame)
	default:
		p("  resolution  pending (selection still collecting)\n")
	}
	if rep.Resolved && len(rep.Resolution.Candidates) > 0 {
		p("    candidates:\n")
		for _, c := range rep.Resolution.Candidates {
			switch {
			case c.Rejected:
				p("      %-12s  rejected (martingale %.4f, mean p %.4f)\n", c.Model, c.Martingale, c.MeanP)
			case c.Brier > 0:
				p("      %-12s  brier %.4f\n", c.Model, c.Brier)
			default:
				p("      %-12s  accepted (martingale %.4f, mean p %.4f)\n", c.Model, c.Martingale, c.MeanP)
			}
		}
	}
}
