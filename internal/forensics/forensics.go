// Package forensics turns drift declarations into explainable records.
// A Recorder rides alongside a pipeline, keeping a rolling pre-roll of
// the frames feeding the monitoring state plus a pipeline snapshot from
// just before that pre-roll. When the Drift Inspector declares a drift,
// the recorder freezes the pre-roll, the snapshot, and the inspector's
// evidence (martingale value, windowed growth, mean p-value, ranked
// per-feature attribution) into a Declaration; Replay can then re-run
// the captured frames through a restored pipeline and reproduce the
// declaration bit-identically, step by step — the "time travel" half of
// drift forensics.
//
// All Recorder methods are nil-safe: a nil *Recorder no-ops, so callers
// keep a single untraced fast path (mirroring telemetry.Tracer).
package forensics

import (
	"fmt"
	"sync"

	"videodrift/internal/core"
	"videodrift/internal/telemetry"
	"videodrift/internal/vidsim"
)

// Defaults for Config fields left zero.
const (
	DefaultWindow = 64 // pre-roll frames retained before a declaration
	DefaultKeep   = 8  // declarations retained, oldest evicted first
)

// Config sizes a Recorder.
type Config struct {
	// Enabled turns forensic recording on. The zero Config (disabled)
	// makes the facade skip recorder construction entirely.
	Enabled bool
	// Window is the pre-roll length in frames: how many frames before a
	// declaration are captured for replay. 0 means DefaultWindow.
	Window int
	// Keep bounds how many declarations are retained. 0 means DefaultKeep.
	Keep int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Keep <= 0 {
		c.Keep = DefaultKeep
	}
	return c
}

// Resolution records how a declaration's selection phase ended.
type Resolution struct {
	// Frame is the stream frame on which the pipeline returned to
	// monitoring (model switch or degraded fallback).
	Frame int `json:"frame"`
	// Model is the model deployed after the drift ("" when training was
	// abandoned and the old model kept serving degraded).
	Model string `json:"model,omitempty"`
	// TrainedNew reports whether the deployed model was freshly trained
	// rather than selected from the registry.
	TrainedNew bool `json:"trained_new,omitempty"`
	// Abandoned reports the degraded path: training failed terminally and
	// the pre-drift model kept serving.
	Abandoned bool `json:"abandoned,omitempty"`
	// Candidates is the per-candidate outcome of the MSBI/MSBO run that
	// followed the declaration (empty when the tracer was nil).
	Candidates []telemetry.Candidate `json:"candidates,omitempty"`
}

// Declaration is one captured drift declaration: the evidence the
// inspector fired on, plus everything Replay needs to reproduce it.
type Declaration struct {
	// ID is the stable drift identifier (telemetry.DriftID of Frame).
	ID string `json:"id"`
	// Frame is the stream frame (0-based, per shard) of the declaration.
	Frame int `json:"frame"`
	// Model is the model that was being monitored when the drift fired.
	Model string `json:"model"`

	// Lag and Sampled are the inspector's frame counters at declaration:
	// frames observed since deployment (the detection lag upper bound)
	// and frames actually folded into the martingale.
	Lag     int `json:"lag"`
	Sampled int `json:"sampled"`
	// Martingale, WindowDelta and MeanP are the martingale value S_l, the
	// windowed growth |S_l − S_{l−W}| that crossed the threshold, and the
	// mean conformal p-value at declaration.
	Martingale  float64 `json:"martingale"`
	WindowDelta float64 `json:"window_delta"`
	MeanP       float64 `json:"mean_p"`
	// Attribution ranks the featurizer dimensions by reference-vs-recent
	// divergence — which features moved, most-moved first.
	Attribution []telemetry.DimShift `json:"attribution,omitempty"`

	// BaseFrame is the stream frame the replay base snapshot was taken
	// before; Frames[i] is stream frame BaseFrame+i. Frames ends with the
	// declaration frame itself.
	BaseFrame int                   `json:"base_frame"`
	Base      core.PipelineSnapshot `json:"-"`
	Frames    []vidsim.Frame        `json:"-"`

	// Resolved reports whether the post-drift selection has concluded;
	// Resolution is only meaningful when it has.
	Resolved   bool       `json:"resolved"`
	Resolution Resolution `json:"resolution,omitzero"`
}

// Recorder captures drift declarations from one pipeline's frame stream.
// Its own locking makes reads (Declarations, Get, State) safe against
// the owning monitor's Record calls, but Record itself must be
// serialized with the pipeline — the facade calls it inline after
// Pipeline.Process.
type Recorder struct {
	mu     sync.Mutex
	cfg    Config
	tracer *telemetry.Tracer

	frame int // next stream frame index (frames seen so far)

	// Pre-roll state, maintained only while the pipeline is monitoring.
	// ring holds the last ≤2·Window frames; base is the pipeline snapshot
	// from just before ring[0] (stream frame baseFrame). mid is a
	// checkpoint taken when the ring crossed Window frames, promoted to
	// base when the ring is trimmed back to Window — so a declaration
	// always has between Window and 2·Window pre-roll frames once the
	// stream has run that long.
	ring      []vidsim.Frame
	base      core.PipelineSnapshot
	baseFrame int
	mid       core.PipelineSnapshot
	midFrame  int
	haveMid   bool

	// pending is true between a declaration and the pipeline's return to
	// monitoring; pre-roll collection is suspended in between.
	pending bool

	recs []Declaration
}

// NewRecorder builds a recorder attached to pipe's current state. The
// tracer (may be nil) supplies candidate outcomes for resolutions.
func NewRecorder(cfg Config, tracer *telemetry.Tracer, pipe *core.Pipeline) *Recorder {
	r := &Recorder{cfg: cfg.withDefaults(), tracer: tracer, frame: pipe.Metrics().Frames}
	r.resetPreRoll(pipe, r.frame)
	// A pipeline restored mid-selection has no pre-roll to collect until
	// it next returns to monitoring.
	r.pending = !pipe.Monitoring()
	return r
}

// Config returns the recorder's (defaulted) configuration.
func (r *Recorder) Config() Config {
	if r == nil {
		return Config{}
	}
	return r.cfg
}

// Record observes one processed frame: the frame itself, the pipeline
// after processing it, and the outcome. Call it inline after every
// Pipeline.Process, with the same serialization.
func (r *Recorder) Record(pipe *core.Pipeline, f vidsim.Frame, out core.Outcome) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	frame := r.frame
	r.frame++

	if r.pending {
		// Waiting out selection/training. The frame that returns the
		// pipeline to monitoring resolves the open declaration — via a
		// model switch, or degraded (training abandoned) without one.
		if out.SwitchedTo != "" {
			r.resolve(frame, out, false)
		}
		if pipe.Monitoring() {
			if out.SwitchedTo == "" {
				r.resolve(frame, out, true)
			}
			r.resetPreRoll(pipe, frame+1)
			r.pending = false
		}
		return
	}

	r.ring = append(r.ring, f)
	if out.Drift {
		r.capture(pipe, frame)
		r.pending = true
		return
	}
	w := r.cfg.Window
	if len(r.ring) >= 2*w && r.haveMid {
		// Trim the oldest Window frames; the mid checkpoint becomes the
		// new replay base and a fresh mid is taken at the cut.
		r.ring = append(r.ring[:0], r.ring[w:]...)
		r.base, r.baseFrame = r.mid, r.midFrame
		r.mid, r.midFrame = pipe.Snapshot(), frame+1
	} else if len(r.ring) == w {
		r.mid, r.midFrame, r.haveMid = pipe.Snapshot(), frame+1, true
	}
}

// resetPreRoll restarts pre-roll collection from pipe's current state;
// nextFrame is the stream index of the next frame the ring will hold.
func (r *Recorder) resetPreRoll(pipe *core.Pipeline, nextFrame int) {
	r.base = pipe.Snapshot()
	r.baseFrame = nextFrame
	r.ring = r.ring[:0]
	r.haveMid = false
}

// capture freezes the open pre-roll into a Declaration for the drift
// that fired on the given stream frame.
func (r *Recorder) capture(pipe *core.Pipeline, frame int) {
	di := pipe.Inspector()
	d := Declaration{
		ID:          telemetry.DriftID(frame),
		Frame:       frame,
		Model:       pipe.Current().Name,
		Lag:         di.Observed(),
		Sampled:     di.Sampled(),
		Martingale:  di.MartingaleValue(),
		WindowDelta: di.WindowDelta(),
		MeanP:       di.MeanP(),
		Attribution: di.Attribution(),
		BaseFrame:   r.baseFrame,
		Base:        r.base,
		Frames:      append([]vidsim.Frame(nil), r.ring...),
	}
	r.recs = append(r.recs, d)
	if len(r.recs) > r.cfg.Keep {
		r.recs = append(r.recs[:0], r.recs[len(r.recs)-r.cfg.Keep:]...)
	}
}

// resolve closes the most recent declaration with the selection outcome.
func (r *Recorder) resolve(frame int, out core.Outcome, abandoned bool) {
	if len(r.recs) == 0 {
		return
	}
	d := &r.recs[len(r.recs)-1]
	if d.Resolved {
		return
	}
	d.Resolved = true
	d.Resolution = Resolution{
		Frame:      frame,
		Model:      out.SwitchedTo,
		TrainedNew: out.TrainedNew,
		Abandoned:  abandoned,
	}
	// The selector's per-candidate outcomes live in the tracer's event
	// ring; the latest SelectionResolved belongs to this declaration.
	evs := r.tracer.Events()
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == telemetry.KindSelectionResolved {
			d.Resolution.Candidates = evs[i].Candidates
			break
		}
	}
}

// Declarations returns the retained declarations, oldest first. The
// slice is a copy; the nested snapshots and frames are shared and must
// be treated as immutable.
func (r *Recorder) Declarations() []Declaration {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Declaration(nil), r.recs...)
}

// Get returns the retained declaration with the given drift ID.
func (r *Recorder) Get(id string) (Declaration, bool) {
	if r == nil {
		return Declaration{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.recs {
		if r.recs[i].ID == id {
			return r.recs[i], true
		}
	}
	return Declaration{}, false
}

// RecorderState is the serializable copy of a Recorder, persisted per
// shard inside checkpoints. It is a value type (no pointers) so gob
// round-trips it unambiguously; Enabled distinguishes a real state from
// the zero value a forensics-less checkpoint carries.
//
//driftlint:snapshot encode=Recorder.State decode=Restore
type RecorderState struct {
	Enabled      bool
	Window       int
	Keep         int
	Frame        int
	Ring         []vidsim.Frame
	Base         core.PipelineSnapshot
	BaseFrame    int
	Mid          core.PipelineSnapshot
	MidFrame     int
	HaveMid      bool
	Pending      bool
	Declarations []Declaration
}

// State captures the recorder for checkpointing. A nil recorder returns
// the zero (disabled) state.
func (r *Recorder) State() RecorderState {
	if r == nil {
		return RecorderState{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return RecorderState{
		Enabled:      true,
		Window:       r.cfg.Window,
		Keep:         r.cfg.Keep,
		Frame:        r.frame,
		Ring:         append([]vidsim.Frame(nil), r.ring...),
		Base:         r.base,
		BaseFrame:    r.baseFrame,
		Mid:          r.mid,
		MidFrame:     r.midFrame,
		HaveMid:      r.haveMid,
		Pending:      r.pending,
		Declarations: append([]Declaration(nil), r.recs...),
	}
}

// Restore rebuilds a recorder from a state captured by State. Every
// subsequent Record call leaves the recorder exactly where the
// snapshotted recorder would have been — declarations, pre-roll and
// replay bases included.
func Restore(s RecorderState, tracer *telemetry.Tracer) (*Recorder, error) {
	if !s.Enabled {
		return nil, fmt.Errorf("forensics: restoring a disabled recorder state")
	}
	if s.Window <= 0 || s.Keep <= 0 {
		return nil, fmt.Errorf("forensics: recorder state has invalid sizing (window=%d keep=%d)", s.Window, s.Keep)
	}
	if s.Frame < 0 || s.BaseFrame < 0 || s.BaseFrame > s.Frame {
		return nil, fmt.Errorf("forensics: recorder state has inconsistent frames (frame=%d base=%d)", s.Frame, s.BaseFrame)
	}
	return &Recorder{
		cfg:       Config{Enabled: true, Window: s.Window, Keep: s.Keep},
		tracer:    tracer,
		frame:     s.Frame,
		ring:      append([]vidsim.Frame(nil), s.Ring...),
		base:      s.Base,
		baseFrame: s.BaseFrame,
		mid:       s.Mid,
		midFrame:  s.MidFrame,
		haveMid:   s.HaveMid,
		pending:   s.Pending,
		recs:      append([]Declaration(nil), s.Declarations...),
	}, nil
}

// Rewind restores the recorder's live state to a snapshot previously
// captured by State, discarding everything recorded since. The sharded
// supervisor pairs it with the pipeline snapshot it keeps per batch:
// when a mid-batch panic restores the pipeline to the batch start and
// re-runs the batch, the recorder must rewind with it or the re-run
// would duplicate pre-roll frames and declarations. The state may be
// rewound to more than once (repeated crashes of one batch); Rewind
// never aliases its argument's slices. Nil-safe no-op, matching the
// nil-safe State.
func (r *Recorder) Rewind(s RecorderState) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frame = s.Frame
	r.ring = append(r.ring[:0], s.Ring...)
	r.base = s.Base
	r.baseFrame = s.BaseFrame
	r.mid = s.Mid
	r.midFrame = s.MidFrame
	r.haveMid = s.HaveMid
	r.pending = s.Pending
	r.recs = append(r.recs[:0], s.Declarations...)
}
