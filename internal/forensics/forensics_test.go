package forensics

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"videodrift/internal/classifier"
	"videodrift/internal/core"
	"videodrift/internal/telemetry"
	"videodrift/internal/vae"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

const (
	testW          = 16
	testH          = 16
	testDim        = testW * testH
	testNumClasses = 6
)

func testLabeler(f vidsim.Frame) int {
	c := f.CountClass(vidsim.Car)
	if c >= testNumClasses {
		c = testNumClasses - 1
	}
	return c
}

func lightTraffic(c vidsim.Condition) vidsim.Condition {
	c.CarRate = 5.5
	c.BusRate = 0
	return c
}

var (
	fixOnce          sync.Once
	fixDay, fixNight *core.ModelEntry
)

// getEntries provisions the shared day/night pair once for the package.
func getEntries() []*core.ModelEntry {
	fixOnce.Do(func() {
		pcfg := core.ProvisionConfig{
			VAE:          vae.Config{InputDim: testDim, HiddenDim: 32, LatentDim: 6, Beta: 0.5, LR: 2e-3},
			VAEEpochs:    4,
			SampleCount:  80,
			K:            5,
			Classifier:   classifier.Config{InputDim: vision.QueryDim, HiddenDim: 24, NumClasses: testNumClasses, LR: 5e-3, Epochs: 30},
			EnsembleSize: 3,
			Seed:         31,
		}
		day := vidsim.GenerateTraining(lightTraffic(vidsim.Day()), testW, testH, 200, 11)
		fixDay = core.Provision("day", day, testLabeler, pcfg)
		pcfg.Seed = 32
		night := vidsim.GenerateTraining(lightTraffic(vidsim.Night()), testW, testH, 200, 12)
		fixNight = core.Provision("night", night, testLabeler, pcfg)
	})
	return []*core.ModelEntry{fixDay, fixNight}
}

func newTestPipeline(t *testing.T) (*core.Pipeline, core.PipelineConfig) {
	t.Helper()
	ents := getEntries()
	cfg := core.DefaultPipelineConfig(testDim, testNumClasses)
	cfg.Selector = core.SelectorMSBI
	return core.NewPipeline(core.NewRegistry(ents...), testLabeler, cfg), cfg
}

func stream(cond vidsim.Condition, n int, seed int64) []vidsim.Frame {
	return vidsim.GenerateTrainingStride(lightTraffic(cond), testW, testH, n, 1, seed)
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(nil, vidsim.Frame{}, core.Outcome{}) // must not panic
	if got := r.Declarations(); got != nil {
		t.Errorf("nil Declarations() = %v", got)
	}
	if _, ok := r.Get("drift-00000001"); ok {
		t.Error("nil Get found a declaration")
	}
	if s := r.State(); s.Enabled {
		t.Error("nil State() reports enabled")
	}
	if c := r.Config(); c != (Config{}) {
		t.Errorf("nil Config() = %+v", c)
	}
}

func TestConfigDefaults(t *testing.T) {
	pipe, _ := newTestPipeline(t)
	r := NewRecorder(Config{Enabled: true}, nil, pipe)
	if c := r.Config(); c.Window != DefaultWindow || c.Keep != DefaultKeep {
		t.Errorf("defaulted config = %+v", c)
	}
}

// TestPreRollRotation drives an in-distribution stream through a small
// recorder and checks the double-buffer invariant after every frame: once
// the stream has run at least Window frames, the replay base always
// trails the head by Window..2·Window frames, and the ring holds exactly
// the frames since the base.
func TestPreRollRotation(t *testing.T) {
	pipe, _ := newTestPipeline(t)
	const w = 8
	r := NewRecorder(Config{Enabled: true, Window: w}, nil, pipe)

	frames := stream(vidsim.Day(), 5*w, 101)
	for i, f := range frames {
		out := pipe.Process(f)
		if out.Drift {
			t.Fatalf("in-distribution stream declared drift at frame %d", i)
		}
		r.Record(pipe, f, out)

		s := r.State()
		if s.Frame != i+1 {
			t.Fatalf("frame %d: recorder frame counter %d", i, s.Frame)
		}
		if got := s.Frame - s.BaseFrame; got != len(s.Ring) {
			t.Fatalf("frame %d: base at %d but ring holds %d frames", i, s.BaseFrame, len(s.Ring))
		}
		if len(s.Ring) > 2*w {
			t.Fatalf("frame %d: ring grew to %d (> 2·%d)", i, len(s.Ring), w)
		}
		if i+1 >= w && len(s.Ring) < w {
			t.Fatalf("frame %d: only %d pre-roll frames (< window %d)", i, len(s.Ring), w)
		}
	}
	// 5·W frames force at least one base promotion.
	if s := r.State(); s.BaseFrame == 0 {
		t.Error("base was never promoted past the stream start")
	}
	if got := r.Declarations(); len(got) != 0 {
		t.Errorf("no-drift stream captured %d declarations", len(got))
	}
}

// TestCaptureResolveReplay runs a real drift through the recorder:
// the declaration carries the inspector's evidence and a replayable
// pre-roll, resolution closes it when the pipeline returns to
// monitoring, and Replay reproduces the declaration bit-identically.
func TestCaptureResolveReplay(t *testing.T) {
	pipe, cfg := newTestPipeline(t)
	r := NewRecorder(Config{Enabled: true, Window: 16, Keep: 2}, nil, pipe)

	frames := append(stream(vidsim.Day(), 60, 201), stream(vidsim.Night(), 120, 202)...)
	for _, f := range frames {
		r.Record(pipe, f, pipe.Process(f))
	}
	decls := r.Declarations()
	if len(decls) == 0 {
		t.Fatal("night shift never declared a drift")
	}
	d := decls[0]
	if d.ID != telemetry.DriftID(d.Frame) {
		t.Errorf("ID %q does not match frame %d", d.ID, d.Frame)
	}
	if d.Model != "day" {
		t.Errorf("declared against model %q", d.Model)
	}
	if d.Martingale <= 0 || d.WindowDelta <= 0 {
		t.Errorf("evidence not captured: martingale %v, window delta %v", d.Martingale, d.WindowDelta)
	}
	if len(d.Attribution) == 0 {
		t.Error("no attribution captured")
	}
	if len(d.Frames) == 0 || d.BaseFrame+len(d.Frames)-1 != d.Frame {
		t.Errorf("pre-roll [%d, +%d) does not end at declaration frame %d",
			d.BaseFrame, len(d.Frames), d.Frame)
	}
	if !d.Resolved {
		t.Fatal("declaration never resolved")
	}
	if d.Resolution.Frame <= d.Frame {
		t.Errorf("resolution frame %d not after declaration frame %d", d.Resolution.Frame, d.Frame)
	}
	if !d.Resolution.Abandoned && d.Resolution.Model == "" {
		t.Error("resolution carries neither a deployed model nor the abandoned flag")
	}
	if _, ok := r.Get(d.ID); !ok {
		t.Errorf("Get(%q) missed", d.ID)
	}

	res, err := Replay(getEntries(), cfg, d)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !res.Matches || res.DeclaredFrame != d.Frame {
		t.Errorf("replay diverged: declared at %d (want %d), matches=%v",
			res.DeclaredFrame, d.Frame, res.Matches)
	}
	if len(res.Points) == 0 {
		t.Error("replay traced no martingale updates")
	}
	last := res.Points[len(res.Points)-1]
	if math.Float64bits(last.Martingale) != math.Float64bits(d.Martingale) {
		t.Errorf("final replayed martingale %v, recorded %v", last.Martingale, d.Martingale)
	}

	// The report renderer works off the same declaration.
	rep, err := BuildReport(getEntries(), cfg, d)
	if err != nil {
		t.Fatalf("BuildReport: %v", err)
	}
	var b strings.Builder
	rep.WriteText(&b)
	if out := b.String(); !strings.Contains(out, d.ID) {
		t.Errorf("report does not mention %s:\n%s", d.ID, out)
	}
}

func TestStateRestoreRoundTrip(t *testing.T) {
	pipe, _ := newTestPipeline(t)
	r := NewRecorder(Config{Enabled: true, Window: 16, Keep: 2}, nil, pipe)
	frames := append(stream(vidsim.Day(), 60, 301), stream(vidsim.Night(), 60, 302)...)
	for _, f := range frames {
		r.Record(pipe, f, pipe.Process(f))
	}

	s := r.State()
	if !s.Enabled {
		t.Fatal("live recorder state reports disabled")
	}
	restored, err := Restore(s, nil)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := restored.State(); !reflect.DeepEqual(got, s) {
		t.Errorf("state did not round-trip:\nrestored %+v\noriginal %+v", got, s)
	}
}

func TestRestoreValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    RecorderState
	}{
		{"disabled", RecorderState{}},
		{"bad window", RecorderState{Enabled: true, Window: 0, Keep: 4}},
		{"bad keep", RecorderState{Enabled: true, Window: 8, Keep: -1}},
		{"negative frame", RecorderState{Enabled: true, Window: 8, Keep: 4, Frame: -1}},
		{"base past head", RecorderState{Enabled: true, Window: 8, Keep: 4, Frame: 3, BaseFrame: 5}},
	} {
		if _, err := Restore(tc.s, nil); err == nil {
			t.Errorf("%s: Restore accepted %+v", tc.name, tc.s)
		}
	}
}

func TestReplayRejectsEmptyPreRoll(t *testing.T) {
	_, cfg := newTestPipeline(t)
	if _, err := Replay(getEntries(), cfg, Declaration{}); err == nil {
		t.Error("Replay accepted a declaration with no captured frames")
	}
}
