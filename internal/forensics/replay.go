package forensics

import (
	"fmt"
	"math"

	"videodrift/internal/core"
)

// ReplayPoint is one martingale update observed during a replay: the
// stream frame whose sample produced it, the conformal p-value folded
// in, and the post-update martingale value and windowed growth.
type ReplayPoint struct {
	Frame       int     `json:"frame"`
	PValue      float64 `json:"p_value"`
	Martingale  float64 `json:"martingale"`
	WindowDelta float64 `json:"window_delta"`
}

// ReplayResult is the outcome of re-running a declaration's pre-roll.
type ReplayResult struct {
	// Points traces every martingale update, in stream order. Frames the
	// sampling stride skipped (and quarantined frames) produce no point.
	Points []ReplayPoint `json:"points"`
	// DeclaredFrame is the stream frame on which the replayed pipeline
	// re-declared the drift, or -1 if it never fired (a mismatch).
	DeclaredFrame int `json:"declared_frame"`
	// Martingale and WindowDelta are the inspector's final values when
	// the replay stopped.
	Martingale  float64 `json:"martingale"`
	WindowDelta float64 `json:"window_delta"`
	// Matches reports a bit-identical reproduction: the replay declared
	// on the recorded frame with exactly the recorded martingale value
	// and windowed growth.
	Matches bool `json:"matches"`
}

// Replay re-runs a declaration's captured pre-roll through a pipeline
// restored from the declaration's base snapshot, tracing every
// martingale update. entries must be the registry the declaring
// pipeline ran over (the facade's checkpointed entries qualify: the
// base snapshot only references entries that existed before the
// pre-roll, and registry insertion order is stable). cfg must carry the
// declaring pipeline's monitoring parameters; its Tracer, TrainFault
// and Selector are overridden — selection never runs before a
// declaration, so the replay forces the label-free selector and needs
// no labeler.
func Replay(entries []*core.ModelEntry, cfg core.PipelineConfig, d Declaration) (ReplayResult, error) {
	if len(d.Frames) == 0 {
		return ReplayResult{}, fmt.Errorf("forensics: declaration %s has no captured frames", d.ID)
	}
	rcfg := cfg
	rcfg.Tracer = nil
	rcfg.TrainFault = nil
	rcfg.Selector = core.SelectorMSBI
	pipe, err := core.RestorePipeline(core.NewRegistry(entries...), nil, rcfg, d.Base)
	if err != nil {
		return ReplayResult{}, fmt.Errorf("forensics: restoring replay pipeline for %s: %w", d.ID, err)
	}
	res := ReplayResult{DeclaredFrame: -1}
	cur := d.BaseFrame
	pipe.Inspector().SetProbe(func(p, value, windowDelta float64) {
		res.Points = append(res.Points, ReplayPoint{Frame: cur, PValue: p, Martingale: value, WindowDelta: windowDelta})
	})
	for i, f := range d.Frames {
		cur = d.BaseFrame + i
		if out := pipe.Process(f); out.Drift {
			res.DeclaredFrame = cur
			break
		}
	}
	di := pipe.Inspector()
	res.Martingale = di.MartingaleValue()
	res.WindowDelta = di.WindowDelta()
	res.Matches = res.DeclaredFrame == d.Frame &&
		math.Float64bits(res.Martingale) == math.Float64bits(d.Martingale) &&
		math.Float64bits(res.WindowDelta) == math.Float64bits(d.WindowDelta)
	return res, nil
}
