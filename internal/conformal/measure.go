// Package conformal implements the conformal-prediction machinery of
// paper §4: non-conformity measures, conformal p-values (Eq. 1), betting
// functions (§4.2.4), exchangeability martingales (additive, as the paper
// constructs, and the classic multiplicative power martingale for
// comparison), and the windowed Hoeffding–Azuma drift test (Eq. 15).
package conformal

import (
	"fmt"
	"sort"

	"videodrift/internal/tensor"
)

// Measure maps an observation and a reference sample to a non-conformity
// score: the larger the score, the stranger the observation is with
// respect to the reference (paper §4).
type Measure interface {
	// Score returns the non-conformity of x against ref.
	Score(x tensor.Vector, ref []tensor.Vector) float64
}

// KNN is the k-nearest-neighbour non-conformity measure the paper adopts:
// the average Euclidean distance from the observation to its K closest
// elements of the reference sample (§4.2.3 with K from §6.1).
type KNN struct {
	K int
}

// Score implements Measure. When the reference holds fewer than K
// elements, all of them are used. It panics on an empty reference.
func (m KNN) Score(x tensor.Vector, ref []tensor.Vector) float64 {
	if len(ref) == 0 {
		panic("conformal: KNN.Score with empty reference")
	}
	k := m.K
	if k <= 0 {
		k = 1
	}
	if k > len(ref) {
		k = len(ref)
	}
	dists := make([]float64, len(ref))
	for i, r := range ref {
		dists[i] = x.Dist(r)
	}
	sort.Float64s(dists)
	sum := 0.0
	for _, d := range dists[:k] {
		sum += d
	}
	return sum / float64(k)
}

// Calibrate returns the leave-one-out non-conformity score of every
// element of ref against the rest — the precomputed A_i list of
// Algorithm 1. It panics when ref has fewer than two elements.
func Calibrate(m Measure, ref []tensor.Vector) []float64 {
	if len(ref) < 2 {
		panic(fmt.Sprintf("conformal: Calibrate needs >= 2 reference points, got %d", len(ref)))
	}
	scores := make([]float64, len(ref))
	rest := make([]tensor.Vector, len(ref)-1)
	for i := range ref {
		rest = rest[:0]
		rest = append(rest, ref[:i]...)
		rest = append(rest, ref[i+1:]...)
		scores[i] = m.Score(ref[i], rest)
	}
	return scores
}

// PValue computes the conformal p-value of Eq. 1 / Algorithm 1 lines 4–9:
// the fraction of calibration scores strictly greater than a, with ties
// broken by the uniform draw u in [0,1). Small p-values mean strange
// observations. It panics on an empty calibration list.
func PValue(calib []float64, a float64, u float64) float64 {
	if len(calib) == 0 {
		panic("conformal: PValue with empty calibration scores")
	}
	score := 0.0
	for _, c := range calib {
		switch {
		case c > a:
			score++
		case c == a:
			score += u
		}
	}
	return score / float64(len(calib))
}

// SortedCalib is a calibration list pre-sorted for O(log n) p-values,
// used on the hot monitoring path.
type SortedCalib struct {
	scores []float64
}

// NewSortedCalib copies and sorts calibration scores.
func NewSortedCalib(calib []float64) *SortedCalib {
	if len(calib) == 0 {
		panic("conformal: NewSortedCalib with empty calibration scores")
	}
	s := append([]float64(nil), calib...)
	sort.Float64s(s)
	return &SortedCalib{scores: s}
}

// Len returns the number of calibration scores.
func (s *SortedCalib) Len() int { return len(s.scores) }

// PValue returns the Eq. 1 p-value of score a with tie-break draw u,
// computed by binary search.
func (s *SortedCalib) PValue(a float64, u float64) float64 {
	n := len(s.scores)
	lo := sort.SearchFloat64s(s.scores, a)          // first index with score >= a
	hi := sort.Search(n, func(i int) bool { return s.scores[i] > a }) // first > a
	greater := float64(n - hi)
	ties := float64(hi - lo)
	return (greater + u*ties) / float64(n)
}
