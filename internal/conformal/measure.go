// Package conformal implements the conformal-prediction machinery of
// paper §4: non-conformity measures, conformal p-values (Eq. 1), betting
// functions (§4.2.4), exchangeability martingales (additive, as the paper
// constructs, and the classic multiplicative power martingale for
// comparison), and the windowed Hoeffding–Azuma drift test (Eq. 15).
package conformal

import (
	"fmt"
	"math"
	"sort"

	"videodrift/internal/tensor"
)

// Measure maps an observation and a reference sample to a non-conformity
// score: the larger the score, the stranger the observation is with
// respect to the reference (paper §4).
type Measure interface {
	// Score returns the non-conformity of x against ref.
	Score(x tensor.Vector, ref []tensor.Vector) float64
}

// KNN is the k-nearest-neighbour non-conformity measure the paper adopts:
// the average Euclidean distance from the observation to its K closest
// elements of the reference sample (§4.2.3 with K from §6.1).
type KNN struct {
	K int
}

// Score implements Measure via bounded selection: it computes all
// distances once, quickselects the K smallest instead of sorting the
// whole list, and sums them in ascending order — bit-identical to
// BruteScore (the retained sort-everything reference) at a fraction of
// the cost. When the reference holds fewer than K elements, all of them
// are used. It panics on an empty reference. For the zero-allocation
// monitoring hot path use KNNScorer, which reuses scratch buffers and a
// flattened reference matrix across calls.
func (m KNN) Score(x tensor.Vector, ref []tensor.Vector) float64 {
	if len(ref) == 0 {
		panic("conformal: KNN.Score with empty reference")
	}
	k := clampK(m.K, len(ref))
	dists := make([]float64, len(ref))
	for i, r := range ref {
		dists[i] = x.Dist(r)
	}
	selectSmallest(dists, k)
	sort.Float64s(dists[:k])
	sum := 0.0
	for _, d := range dists[:k] {
		sum += d
	}
	return sum / float64(k)
}

// BruteScore is the original allocate-and-sort-all implementation,
// retained as the reference the optimized paths are property-tested
// against (and as the worked-example baseline of Tables 2–4).
func (m KNN) BruteScore(x tensor.Vector, ref []tensor.Vector) float64 {
	if len(ref) == 0 {
		panic("conformal: KNN.BruteScore with empty reference")
	}
	k := clampK(m.K, len(ref))
	dists := make([]float64, len(ref))
	for i, r := range ref {
		dists[i] = x.Dist(r)
	}
	sort.Float64s(dists)
	sum := 0.0
	for _, d := range dists[:k] {
		sum += d
	}
	return sum / float64(k)
}

func clampK(k, n int) int {
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// selectSmallest partially orders a so that a[:k] holds its k smallest
// elements (in unspecified order) — Hoare quickselect with median-of-three
// pivoting, O(n) expected, no allocation.
func selectSmallest(a []float64, k int) {
	lo, hi := 0, len(a)-1
	for hi > lo {
		// Median-of-three pivot, moved to a[lo].
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		a[lo], a[mid] = a[mid], a[lo]
		pivot := a[lo]
		i, j := lo, hi+1
		for {
			for i++; i <= hi && a[i] < pivot; i++ {
			}
			for j--; a[j] > pivot; j-- {
			}
			if i >= j {
				break
			}
			a[i], a[j] = a[j], a[i]
		}
		a[lo], a[j] = a[j], a[lo]
		switch {
		case j >= k:
			hi = j - 1
		default:
			lo = j + 1
		}
	}
}

// KNNScorer is the zero-allocation kNN non-conformity scorer the
// monitoring hot path runs: squared distances stream out of a flattened
// contiguous reference matrix, a size-K max-heap of scratch storage keeps
// the current K nearest, and rows are abandoned early once their partial
// squared distance exceeds the heap's maximum. Scores are bit-identical
// to KNN.BruteScore over the same reference (the sqrt/sum arithmetic and
// its ordering are preserved). A KNNScorer reuses internal scratch and is
// NOT safe for concurrent use; the RefMatrix it reads is immutable and
// may be shared by any number of scorers.
type KNNScorer struct {
	k    int
	ref  *tensor.RefMatrix
	heap []float64 // size-k max-heap of the smallest squared distances
	xsuf []float64 // probe suffix-norm scratch for the dot-product kernel
}

// NewKNNScorer builds a scorer for k nearest neighbours over the
// flattened reference. It panics on an empty reference; k is clamped the
// same way KNN.Score clamps it.
func NewKNNScorer(k int, ref *tensor.RefMatrix) *KNNScorer {
	if ref == nil || ref.Len() == 0 {
		panic("conformal: NewKNNScorer with empty reference")
	}
	k = clampK(k, ref.Len())
	return &KNNScorer{k: k, ref: ref, heap: make([]float64, 0, k)}
}

// K returns the (clamped) neighbour count.
func (s *KNNScorer) K() int { return s.k }

// Score returns the mean distance from x to its K nearest reference rows.
func (s *KNNScorer) Score(x tensor.Vector) float64 { return s.ScoreSkip(x, -1) }

// ScoreSkip scores x against the reference with row `skip` excluded —
// the leave-one-out primitive Calibrate builds on (skip < 0 excludes
// nothing). It panics when skipping leaves the reference empty.
func (s *KNNScorer) ScoreSkip(x tensor.Vector, skip int) float64 {
	n := s.ref.Len()
	avail := n
	if skip >= 0 && skip < n {
		avail--
	}
	if avail == 0 {
		panic("conformal: KNNScorer.ScoreSkip with empty reference")
	}
	k := s.k
	if k > avail {
		k = avail
	}
	h := s.heap[:0]
	if s.ref.Dim() == 4 && len(x) == 4 {
		// The default appearance features are exactly 4-dim; hoisting the
		// probe into locals lets the whole distance drop into registers.
		// Accumulation order matches the generic loop (ascending j), so
		// scores stay bit-identical.
		x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
		for i := 0; i < n; i++ {
			if i == skip {
				continue
			}
			row := s.ref.Row(i)[:4]
			d0 := x0 - row[0]
			d1 := x1 - row[1]
			d2v := x2 - row[2]
			d3 := x3 - row[3]
			d2 := d0 * d0
			d2 += d1 * d1
			d2 += d2v * d2v
			d2 += d3 * d3
			if len(h) < k {
				h = append(h, d2)
				siftUp(h)
				continue
			}
			if d2 < h[0] {
				h[0] = d2
				siftDown(h)
			}
		}
	} else if s.ref.Dim() <= inlineDistDim {
		// Small rows (the appearance features are 4-dim): the blocked
		// early-exit kernel cannot prune inside a row this short, so the
		// per-row function call is pure overhead. Inline the distance loop
		// — same accumulation order, bit-identical — and compare after.
		for i := 0; i < n; i++ {
			if i == skip {
				continue
			}
			row := s.ref.Row(i)[:len(x)]
			d2 := 0.0
			for j, xv := range x {
				d := xv - row[j]
				d2 += d * d
			}
			if len(h) < k {
				h = append(h, d2)
				siftUp(h)
				continue
			}
			if d2 < h[0] {
				h[0] = d2
				siftDown(h)
			}
		}
	} else if s.ref.Dim() >= dotKernelDim {
		// Wide rows: the dot-product kernel. |x−b|² = |x|²+|b|²−2x·b with
		// the dot accumulated in four independent lanes is throughput-bound
		// where the subtract-square chain is latency-bound, and precomputed
		// row/suffix norms prune hopeless rows block by block. The estimate
		// is used ONLY as a filter (its lane-parallel accumulation is not
		// bit-compatible with SqDistRow, and the −2x·b form cancels
		// catastrophically near zero); any row the filter cannot discard —
		// with conservative slack — is recomputed exactly, so the k-smallest
		// multiset, and hence the score, is bit-identical to BruteScore.
		kd := s.ref.NewDotDist(x, s.xsuf)
		i := 0
		for filled := 0; filled < k; i++ {
			if i == skip {
				continue
			}
			h = append(h, s.ref.SqDistRow(x, i))
			siftUp(h)
			filled++
		}
		// Remaining rows stream through the filter inside the kernel —
		// no per-row call — with candidates recomputed exactly there, so
		// the heap's k-smallest multiset stays bit-identical to a full
		// exact scan.
		kd.SelectNearest(i, skip, h)
		s.xsuf = kd.Scratch()
	} else {
		for i := 0; i < n; i++ {
			if i == skip {
				continue
			}
			if len(h) < k {
				d2 := s.ref.SqDistRow(x, i)
				h = append(h, d2)
				siftUp(h)
				continue
			}
			if d2, ok := s.ref.SqDistRowBounded(x, i, h[0]); ok && d2 < h[0] {
				h[0] = d2
				siftDown(h)
			}
		}
	}
	s.heap = h
	// Sum sqrt'ed distances in ascending order — the same ordering the
	// sorted brute-force path uses, keeping the float accumulation
	// bit-identical. k is small (paper: 5); insertion sort is free.
	insertionSort(h)
	sum := 0.0
	for _, d2 := range h {
		sum += math.Sqrt(d2)
	}
	return sum / float64(k)
}

// inlineDistDim is the row width at or below which ScoreSkip computes
// distances with an inlined loop instead of the blocked early-exit
// kernel: a row at most two blocks wide gives the bound check at most
// one chance to fire, which doesn't repay a function call per row.
const inlineDistDim = 2 * 8

// dotKernelDim is the row width at or above which ScoreSkip switches
// from the early-exit subtract-square kernel to the dot-product kernel:
// at four or more tensor.DotBlock blocks the lane-parallel dot plus
// norm-based pruning amortizes the one-time probe-norm setup; between
// inlineDistDim and here the early-exit kernel stays ahead.
const dotKernelDim = 4 * tensor.DotBlock

// siftUp restores the max-heap property after appending to h.
func siftUp(h []float64) {
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] >= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// siftDown restores the max-heap property after replacing h[0].
func siftDown(h []float64) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h) && h[l] > h[largest] {
			largest = l
		}
		if r < len(h) && h[r] > h[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Calibrate returns the leave-one-out non-conformity score of every
// element of ref against the rest — the precomputed A_i list of
// Algorithm 1. It panics when ref has fewer than two elements.
//
// For the KNN measure the leave-one-out is computed in place over one
// flattened reference matrix by skipping row i during scoring, replacing
// the original O(n²) rebuild-the-rest-slice copying (n−1 vector copies
// per element, n times over). Other measures fall back to the generic
// rest-slice path.
func Calibrate(m Measure, ref []tensor.Vector) []float64 {
	if len(ref) < 2 {
		panic(fmt.Sprintf("conformal: Calibrate needs >= 2 reference points, got %d", len(ref)))
	}
	if knn, ok := m.(KNN); ok {
		scorer := NewKNNScorer(knn.K, tensor.FlattenVectors(ref))
		scores := make([]float64, len(ref))
		for i, x := range ref {
			scores[i] = scorer.ScoreSkip(x, i)
		}
		return scores
	}
	scores := make([]float64, len(ref))
	rest := make([]tensor.Vector, len(ref)-1)
	for i := range ref {
		rest = rest[:0]
		rest = append(rest, ref[:i]...)
		rest = append(rest, ref[i+1:]...)
		scores[i] = m.Score(ref[i], rest)
	}
	return scores
}

// PValue computes the conformal p-value of Eq. 1 / Algorithm 1 lines 4–9:
// the fraction of calibration scores strictly greater than a, with ties
// broken by the uniform draw u in [0,1). Small p-values mean strange
// observations. It panics on an empty calibration list.
func PValue(calib []float64, a float64, u float64) float64 {
	if len(calib) == 0 {
		panic("conformal: PValue with empty calibration scores")
	}
	score := 0.0
	for _, c := range calib {
		switch {
		case c > a:
			score++
		case c == a: //lint:allow floatcmp exact ties are defined behavior: Eq. 1 weights them by the uniform draw u
			score += u
		}
	}
	return score / float64(len(calib))
}

// SortedCalib is a calibration list pre-sorted for O(log n) p-values,
// used on the hot monitoring path.
type SortedCalib struct {
	scores []float64
}

// NewSortedCalib copies and sorts calibration scores.
func NewSortedCalib(calib []float64) *SortedCalib {
	if len(calib) == 0 {
		panic("conformal: NewSortedCalib with empty calibration scores")
	}
	s := append([]float64(nil), calib...)
	sort.Float64s(s)
	return &SortedCalib{scores: s}
}

// Len returns the number of calibration scores.
func (s *SortedCalib) Len() int { return len(s.scores) }

// PValue returns the Eq. 1 p-value of score a with tie-break draw u,
// computed by binary search.
func (s *SortedCalib) PValue(a float64, u float64) float64 {
	n := len(s.scores)
	lo := sort.SearchFloat64s(s.scores, a)                            // first index with score >= a
	hi := sort.Search(n, func(i int) bool { return s.scores[i] > a }) // first > a
	greater := float64(n - hi)
	ties := float64(hi - lo)
	return (greater + u*ties) / float64(n)
}
