package conformal

import (
	"math"
	"testing"
	"testing/quick"

	"videodrift/internal/stats"
)

// TestCUSUMMartingaleProperty checks the conditional drift of the floored
// process under uniform p-values by Monte Carlo. Away from the floor
// (S ≥ κ/2, where truncation cannot bite) the process is an exact
// martingale: E[S_{n+1} | S_n] = S_n. Inside the floor's reach the
// truncation pushes upward, maximally at S = 0 where
// E[max(0, g(U))] = κ/8 exactly. The windowed drift test of Eq. 15 is
// calibrated for the un-floored increments, which is why its false-alarm
// analysis stays valid even though the floored level wanders.
func TestCUSUMMartingaleProperty(t *testing.T) {
	rng := stats.NewRNG(71)
	const kappa = 4.0
	bet := ShiftedOdd(kappa)
	for _, start := range []float64{0, 0.5, 3, 10} {
		var w stats.Welford
		for trial := 0; trial < 40000; trial++ {
			next := math.Max(0, start+bet(rng.Float64()))
			w.Add(next - start)
		}
		const bound = 0.02 // Monte Carlo tolerance
		switch {
		case start == 0:
			// At the floor, E[max(0, g(U))] = κ/8 exactly.
			if math.Abs(w.Mean()-kappa/8) > bound {
				t.Errorf("at the floor, E[increment] = %v, want %v", w.Mean(), kappa/8)
			}
		case start < kappa/2:
			// Within the floor's reach: non-negative, below the floor max.
			if w.Mean() < -bound || w.Mean() > kappa/8+bound {
				t.Errorf("from S=%v, E[increment] = %v, want within [0, κ/8]", start, w.Mean())
			}
		default:
			// Clear of the floor: exact martingale.
			if math.Abs(w.Mean()) > bound {
				t.Errorf("from S=%v, E[increment] = %v, want 0", start, w.Mean())
			}
		}
	}
}

// TestPValueMonotoneInScore checks that a stranger observation never gets
// a larger p-value (with the tie-break draw held fixed).
func TestPValueMonotoneInScore(t *testing.T) {
	rng := stats.NewRNG(72)
	f := func(seed uint8) bool {
		calib := rng.NormalVec(30, 0, 1)
		a := rng.Normal(0, 1)
		b := a + rng.Uniform(0, 2) // b is stranger
		u := rng.Float64()
		return PValue(calib, b, u) <= PValue(calib, a, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPValueRange checks p-values always land in [0, 1].
func TestPValueRange(t *testing.T) {
	rng := stats.NewRNG(73)
	f := func(seed uint8) bool {
		calib := rng.NormalVec(rng.Intn(50)+1, 0, 3)
		p := PValue(calib, rng.Normal(0, 5), rng.Float64())
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWindowDeltaBounded checks the windowed growth never exceeds
// W·max|g|, the bound the Hoeffding threshold relies on.
func TestWindowDeltaBounded(t *testing.T) {
	rng := stats.NewRNG(74)
	const kappa, w = 4.0, 5
	c := NewCUSUM(ShiftedOdd(kappa), kappa/2, w)
	limit := float64(w) * kappa / 2
	for i := 0; i < 5000; i++ {
		c.Update(rng.Float64() * rng.Float64()) // skewed-small p-values
		if d := c.WindowDelta(); d > limit+1e-9 {
			t.Fatalf("window delta %v exceeds bound %v", d, limit)
		}
	}
}

// TestThresholdMonotoneInW checks the drift threshold grows with the
// window (both modes).
func TestThresholdMonotoneInW(t *testing.T) {
	for _, mode := range []ThresholdMode{ThresholdHoeffding, ThresholdPaperLiteral} {
		prev := 0.0
		for w := 1; w <= 16; w++ {
			th := DriftTest{W: w, R: 0.5, Mode: mode}.Threshold(2)
			if th <= prev {
				t.Fatalf("mode %v: threshold not monotone at W=%d", mode, w)
			}
			prev = th
		}
	}
}

// TestSortedCalibInsensitiveToOrder checks p-values do not depend on the
// calibration scores' order.
func TestSortedCalibInsensitiveToOrder(t *testing.T) {
	rng := stats.NewRNG(75)
	f := func(seed uint8) bool {
		calib := rng.NormalVec(20, 0, 1)
		shuffled := append([]float64(nil), calib...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a, u := rng.Normal(0, 2), rng.Float64()
		return math.Abs(NewSortedCalib(calib).PValue(a, u)-NewSortedCalib(shuffled).PValue(a, u)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
