package conformal

import (
	"fmt"
	"math"
)

// BettingFunc is a betting function over p-values (§4.1–4.2.4). Additive
// martingales use zero-integral functions (∫₀¹ g = 0); multiplicative
// martingales use density-like functions (∫₀¹ g = 1).
type BettingFunc func(p float64) float64

// ShiftedOdd returns the paper's zero-integral betting function family
// g(p) = κ·(1/2 − p) (an odd function shifted to [0,1], §4.2.4 with
// f(p) = −κp). It is bounded by κ/2 in absolute value, returns its maximum
// for the strangest observations (p → 0), and integrates to zero, which
// makes the additive process of Eq. 10 a martingale under exchangeability.
func ShiftedOdd(kappa float64) BettingFunc {
	return func(p float64) float64 { return kappa * (0.5 - p) }
}

// Power returns the classic multiplicative betting function
// g_ε(p) = ε·p^(ε−1) with 0 < ε < 1, which integrates to one.
func Power(epsilon float64) BettingFunc {
	return func(p float64) float64 {
		p = clampP(p)
		return epsilon * math.Pow(p, epsilon-1)
	}
}

// Mixture returns the simple mixture betting function
// ∫₀¹ ε·p^(ε−1) dε = (p·ln p − p + 1) / (p·ln²p), the standard
// parameter-free choice for conformal martingales.
func Mixture() BettingFunc {
	return func(p float64) float64 {
		p = clampP(p)
		lp := math.Log(p)
		return (p*lp - p + 1) / (p * lp * lp)
	}
}

func clampP(p float64) float64 {
	const eps = 1e-10
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// ThresholdMode selects how the windowed drift test derives its threshold
// from the significance level.
type ThresholdMode int

const (
	// ThresholdHoeffding uses the Hoeffding–Azuma bound with the missing
	// logarithm restored: t = c·sqrt(2W·ln(2/r)) for increments bounded by
	// c, giving a windowed false-alarm probability of at most r. This is
	// the statistically correct reading of Eq. 15 and the default.
	ThresholdHoeffding ThresholdMode = iota
	// ThresholdPaperLiteral uses the paper's Eq. 15 exactly as printed,
	// t = sqrt(2W·(2/r)), which drops the logarithm (and the increment
	// bound). Provided for faithful reproduction of the worked example.
	ThresholdPaperLiteral
)

// CUSUM is the additive conformal martingale the Drift Inspector runs
// (Algorithm 1 line 10): S_n = max(0, S_{n−1} + g(p_n)) with a
// zero-integral betting function. Under exchangeability the un-floored
// process is a martingale with bounded increments; the floor at zero turns
// it into the one-sided CUSUM form whose windowed growth rate Eq. 15
// tests. The struct keeps a ring buffer of the last W values so the
// windowed difference S_l − S_{l−W} is O(1) per update.
type CUSUM struct {
	bet    BettingFunc
	bound  float64 // max |g|
	window int

	value float64
	count int
	ring  []float64 // last `window` values, ring[count % window] overwritten next

	probe Probe // observational update hook, nil when unset
}

// NewCUSUM builds an additive martingale with the given betting function,
// its absolute bound, and the observation window W of Eq. 15.
func NewCUSUM(bet BettingFunc, bound float64, window int) *CUSUM {
	if window <= 0 {
		panic("conformal: NewCUSUM with non-positive window")
	}
	if bound <= 0 {
		panic("conformal: NewCUSUM with non-positive bound")
	}
	c := &CUSUM{bet: bet, bound: bound, window: window, ring: make([]float64, window)}
	return c
}

// Probe observes one martingale update: the p-value folded in, the
// post-update value S_l and the windowed growth |S_l − S_{l−w}|. Probes
// are strictly observational — they see state, never change it — which is
// what lets a forensics replay trace every step of a restored martingale
// without perturbing its bit-identical trajectory.
type Probe func(p, value, windowDelta float64)

// SetProbe attaches an update probe (nil detaches). The probe is not
// part of the martingale's state: State/SetState ignore it, and a
// restored martingale starts with no probe.
func (c *CUSUM) SetProbe(fn Probe) { c.probe = fn }

// Update folds one p-value into the martingale and returns the new value.
func (c *CUSUM) Update(p float64) float64 {
	c.ring[c.count%c.window] = c.value
	c.count++
	c.value = math.Max(0, c.value+c.bet(p))
	if c.probe != nil {
		c.probe(p, c.value, c.WindowDelta())
	}
	return c.value
}

// Value returns the current martingale value S_l.
func (c *CUSUM) Value() float64 { return c.value }

// Count returns the number of observations folded in so far.
func (c *CUSUM) Count() int { return c.count }

// WindowDelta returns |S_l − S_{l−w}| where w = min(l, W) — the windowed
// rate of change Eq. 15 thresholds (Algorithm 1 lines 12–13).
func (c *CUSUM) WindowDelta() float64 {
	if c.count == 0 {
		return 0
	}
	w := c.window
	if c.count < w {
		w = c.count
	}
	// ring[(count-w) % window] holds S_{l-w} because the last `window`
	// pre-update values are retained.
	old := c.ring[(c.count-w)%c.window]
	return math.Abs(c.value - old)
}

// CUSUMState is a serializable copy of a CUSUM's mutable state, used by
// checkpointing: the current value, the observation count, and the ring
// of the last W pre-update values the windowed test reads.
//
//driftlint:snapshot encode=CUSUM.State decode=CUSUM.SetState
type CUSUMState struct {
	Value float64
	Count int
	Ring  []float64
}

// State captures the martingale's current state. The returned ring is a
// copy; mutating it does not affect the martingale.
func (c *CUSUM) State() CUSUMState {
	return CUSUMState{
		Value: c.value,
		Count: c.count,
		Ring:  append([]float64(nil), c.ring...),
	}
}

// SetState restores state captured by State into a martingale built with
// the same window. It returns an error (and leaves the martingale
// untouched) when the ring length does not match the window.
func (c *CUSUM) SetState(s CUSUMState) error {
	if len(s.Ring) != c.window {
		return fmt.Errorf("conformal: CUSUM state ring has %d slots, window is %d", len(s.Ring), c.window)
	}
	if s.Count < 0 {
		return fmt.Errorf("conformal: CUSUM state has negative count %d", s.Count)
	}
	c.value = s.Value
	c.count = s.Count
	copy(c.ring, s.Ring)
	return nil
}

// Reset clears the martingale to its initial state.
func (c *CUSUM) Reset() {
	c.value = 0
	c.count = 0
	for i := range c.ring {
		c.ring[i] = 0
	}
}

// TrajectoryPoint is one step of a captured martingale trajectory.
type TrajectoryPoint struct {
	Step        int     `json:"step"` // 1-based observation index (CUSUM.Count at capture)
	PValue      float64 `json:"p_value"`
	Value       float64 `json:"martingale"`
	WindowDelta float64 `json:"window_delta"`
}

// Trajectory records every update of the martingale it is attached to —
// the step-by-step evidence trace a forensics replay renders.
type Trajectory struct {
	Points []TrajectoryPoint
}

// Attach wires the trajectory into c's update probe (replacing any
// existing probe).
func (t *Trajectory) Attach(c *CUSUM) {
	c.SetProbe(func(p, value, windowDelta float64) {
		t.Points = append(t.Points, TrajectoryPoint{
			Step:        c.Count(),
			PValue:      p,
			Value:       value,
			WindowDelta: windowDelta,
		})
	})
}

// DriftTest is the windowed significance test of Eq. 15.
type DriftTest struct {
	W    int
	R    float64 // significance level r
	Mode ThresholdMode
}

// Threshold returns the drift-declaration threshold for increments
// bounded by c in absolute value.
func (t DriftTest) Threshold(bound float64) float64 {
	if t.R <= 0 || t.R >= 2 {
		panic(fmt.Sprintf("conformal: DriftTest with invalid significance %v", t.R))
	}
	switch t.Mode {
	case ThresholdPaperLiteral:
		return math.Sqrt(2 * float64(t.W) * (2 / t.R))
	default:
		return bound * math.Sqrt(2*float64(t.W)*math.Log(2/t.R))
	}
}

// Check reports whether the martingale's windowed growth exceeds the
// threshold — a drift declaration.
func (t DriftTest) Check(c *CUSUM) bool {
	return c.WindowDelta() > t.Threshold(c.bound)
}

// PowerMartingale is the classic multiplicative conformal martingale
// (Eq. 5) kept in log space, provided as the reference implementation DI
// improves on (§4.2.3 discusses why the product form reacts slowly).
type PowerMartingale struct {
	bet  BettingFunc
	logM float64
	max  float64
}

// NewPowerMartingale builds a multiplicative martingale with a
// unit-integral betting function (e.g. Power or Mixture).
func NewPowerMartingale(bet BettingFunc) *PowerMartingale {
	return &PowerMartingale{bet: bet}
}

// Update folds one p-value in and returns the current log-martingale.
func (m *PowerMartingale) Update(p float64) float64 {
	m.logM += math.Log(math.Max(m.bet(p), 1e-300))
	if m.logM > m.max {
		m.max = m.logM
	}
	return m.logM
}

// LogValue returns the current log-martingale value.
func (m *PowerMartingale) LogValue() float64 { return m.logM }

// Exceeds reports whether the martingale has ever exceeded 1/delta —
// by Ville's inequality (Eq. 4), rejecting exchangeability at level delta.
func (m *PowerMartingale) Exceeds(delta float64) bool {
	return m.max > math.Log(1/delta)
}

// Reset clears the martingale.
func (m *PowerMartingale) Reset() { m.logM = 0; m.max = 0 }
