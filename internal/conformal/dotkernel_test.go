package conformal

import (
	"fmt"
	"testing"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
)

// TestDotKernelMatchesBruteForce is the bit-identity property test of the
// dot-product kNN path: in the wide-row regime (dim >= dotKernelDim) the
// scorer prunes with the |x|²+|b|²−2x·b estimate but recomputes every
// surviving row exactly, so scores must equal BruteScore to the bit —
// across random shapes, clustered references (the pruning-friendly
// regime), adversarial near-ties, and leave-one-out skips.
func TestDotKernelMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(301)
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(200)
		d := dotKernelDim + rng.Intn(80) // 32..111: always the dot path
		k := 1 + rng.Intn(8)
		ref := randomRef(rng, n, d)
		m := KNN{K: k}
		scorer := NewKNNScorer(k, tensor.FlattenVectors(ref))
		for q := 0; q < 4; q++ {
			x := tensor.Vector(rng.NormalVec(d, 0, 2))
			want := m.BruteScore(x, ref)
			if got := scorer.Score(x); got != want {
				t.Fatalf("trial %d (n=%d d=%d k=%d): dot-path Score = %v, brute = %v (Δ=%g)",
					trial, n, d, k, got, want, got-want)
			}
			skip := rng.Intn(n)
			if n > 1 {
				wantSkip := m.BruteScore(x, append(append([]tensor.Vector{}, ref[:skip]...), ref[skip+1:]...))
				if got := scorer.ScoreSkip(x, skip); got != wantSkip {
					t.Fatalf("trial %d (n=%d d=%d k=%d skip=%d): ScoreSkip = %v, brute = %v",
						trial, n, d, k, skip, got, wantSkip)
				}
			}
		}
	}
}

// TestDotKernelClusteredAndTied drives the dot path through the cases
// where a filter-based kernel can go wrong: exact duplicate rows, rows
// differing only in the last coordinate (the final block decides), and
// tight clusters where nearly every row survives pruning.
func TestDotKernelClusteredAndTied(t *testing.T) {
	rng := stats.NewRNG(302)
	const d = 2 * dotKernelDim
	center := tensor.Vector(rng.UniformVec(d, 0, 1))
	var ref []tensor.Vector
	for i := 0; i < 40; i++ {
		v := center.Clone()
		for j := range v {
			v[j] += rng.Uniform(-0.01, 0.01)
		}
		ref = append(ref, v)
	}
	// Exact duplicates straddling the K boundary.
	ref = append(ref, ref[0].Clone(), ref[1].Clone(), ref[2].Clone())
	// Last-coordinate-only perturbations of the probe's nearest row.
	for i := 0; i < 5; i++ {
		v := ref[3].Clone()
		v[d-1] += float64(i) * 1e-9
		ref = append(ref, v)
	}
	m := KNN{K: 5}
	scorer := NewKNNScorer(5, tensor.FlattenVectors(ref))
	for q := 0; q < 50; q++ {
		x := center.Clone()
		for j := range x {
			x[j] += rng.Uniform(-0.02, 0.02)
		}
		want := m.BruteScore(x, ref)
		if got := scorer.Score(x); got != want {
			t.Fatalf("probe %d: dot-path Score = %v, brute = %v (Δ=%g)", q, got, want, got-want)
		}
	}
}

// TestDotKernelZeroVectors pins the degenerate geometry: all-zero probes
// and rows make |x|²+|b|²−2x·b collapse to 0−0, where the slack term's
// +1 keeps the filter from discarding exact matches.
func TestDotKernelZeroVectors(t *testing.T) {
	const d = dotKernelDim
	ref := make([]tensor.Vector, 10)
	for i := range ref {
		ref[i] = make(tensor.Vector, d)
		if i >= 5 {
			ref[i][0] = float64(i)
		}
	}
	m := KNN{K: 3}
	scorer := NewKNNScorer(3, tensor.FlattenVectors(ref))
	probe := make(tensor.Vector, d)
	if got, want := scorer.Score(probe), m.BruteScore(probe, ref); got != want {
		t.Fatalf("zero-vector Score = %v, brute = %v", got, want)
	}
}

// TestCalibrateDotKernel checks the leave-one-out calibration path at a
// dot-kernel width against the generic rest-slice construction.
func TestCalibrateDotKernel(t *testing.T) {
	rng := stats.NewRNG(303)
	ref := randomRef(rng, 60, dotKernelDim+8)
	m := KNN{K: 5}
	got := Calibrate(m, ref)
	for i := range ref {
		rest := append(append([]tensor.Vector{}, ref[:i]...), ref[i+1:]...)
		if want := m.BruteScore(ref[i], rest); got[i] != want {
			t.Fatalf("calib[%d] = %v, brute leave-one-out = %v", i, got[i], want)
		}
	}
}

// TestDotKernelZeroAlloc pins the hot-path allocation contract for the
// wide-row regime: after the first call warms the probe-norm scratch and
// the row-norm cache, Score must not allocate.
func TestDotKernelZeroAlloc(t *testing.T) {
	rng := stats.NewRNG(304)
	ref := randomRef(rng, 128, 64)
	scorer := NewKNNScorer(5, tensor.FlattenVectors(ref))
	x := tensor.Vector(rng.NormalVec(64, 0, 1))
	scorer.Score(x) // warm scratch + norm cache
	if avg := testing.AllocsPerRun(100, func() { scorer.Score(x) }); avg != 0 {
		t.Errorf("dot-path Score allocates %v times per call, want 0", avg)
	}
}

// BenchmarkDotKernelVsEarlyExit is a package-local sanity benchmark for
// the kernel-selection heuristic (the repo-level BenchmarkKNNScore is
// the committed baseline).
func BenchmarkDotKernelVsEarlyExit(b *testing.B) {
	rng := stats.NewRNG(305)
	for _, d := range []int{16, 32, 64, 128} {
		ref := randomRef(rng, 256, d)
		scorer := NewKNNScorer(5, tensor.FlattenVectors(ref))
		x := tensor.Vector(rng.NormalVec(d, 0, 1))
		b.Run(fmt.Sprintf("dim%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scorer.Score(x)
			}
		})
	}
}
