package conformal

import (
	"math"
	"testing"
	"testing/quick"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
)

// paperSigma and paperCalib are the worked example of the paper's Tables
// 2–4 (Σ_Ti, A_i with K=3).
func paperSigma() []tensor.Vector {
	return []tensor.Vector{{2, 3}, {3, 1}, {-1, 0}, {4, 4}, {2, 2}}
}

var paperCalib = []float64{1.8, 2.3, 4, 2.71, 1.72}

func TestCalibrateReproducesPaperTable2(t *testing.T) {
	// The paper's printed values are rounded to 1–2 decimals and not
	// always consistently (e.g. 2.742 appears as 2.71), so the tolerance
	// is loose.
	got := Calibrate(KNN{K: 3}, paperSigma())
	for i, want := range paperCalib {
		if math.Abs(got[i]-want) > 0.05 {
			t.Errorf("A[%d] = %v, paper has %v", i, got[i], want)
		}
	}
}

func TestKNNScoreReproducesPaperTable4(t *testing.T) {
	// Table 3 input frames and Table 4 a_f column (same loose rounding as
	// Table 2 — [9,8] prints 7.6 where exact K=3 arithmetic gives 8.07).
	inputs := []tensor.Vector{{8, 6}, {9, 8}, {10, 7}, {6, 7}}
	want := []float64{6.1, 7.6, 8.3, 5.2}
	m := KNN{K: 3}
	for i, f := range inputs {
		got := m.Score(f, paperSigma())
		if math.Abs(got-want[i]) > 0.5 {
			t.Errorf("a_f(%v) = %v, paper has %v", f, got, want[i])
		}
	}
}

func TestPaperExamplePValuesAreZero(t *testing.T) {
	m := KNN{K: 3}
	for _, f := range []tensor.Vector{{8, 6}, {9, 8}, {10, 7}, {6, 7}} {
		a := m.Score(f, paperSigma())
		if p := PValue(paperCalib, a, 0.5); p != 0 {
			t.Errorf("p-value of %v = %v, paper has 0", f, p)
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	ref := []tensor.Vector{{0, 0}, {2, 0}}
	// K larger than the reference uses everything.
	if got := (KNN{K: 10}).Score(tensor.Vector{1, 0}, ref); got != 1 {
		t.Errorf("K>len score = %v, want 1", got)
	}
	// K <= 0 behaves as 1-NN.
	if got := (KNN{K: 0}).Score(tensor.Vector{0.5, 0}, ref); got != 0.5 {
		t.Errorf("K=0 score = %v, want 0.5", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty reference did not panic")
			}
		}()
		(KNN{K: 1}).Score(tensor.Vector{0}, nil)
	}()
}

func TestCalibrateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Calibrate with one point did not panic")
		}
	}()
	Calibrate(KNN{K: 1}, []tensor.Vector{{1}})
}

func TestPValueBehaviour(t *testing.T) {
	calib := []float64{1, 2, 3, 4}
	// Stranger than everything → 0.
	if p := PValue(calib, 10, 0.7); p != 0 {
		t.Errorf("max-strange p = %v", p)
	}
	// Less strange than everything → 1.
	if p := PValue(calib, 0, 0); p != 1 {
		t.Errorf("min-strange p = %v", p)
	}
	// Tie handling: a=3 has one greater (4) and one tie.
	if p := PValue(calib, 3, 0.5); math.Abs(p-(1+0.5)/4) > 1e-12 {
		t.Errorf("tie p = %v", p)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty calibration did not panic")
			}
		}()
		PValue(nil, 1, 0.5)
	}()
}

// TestPValueUniformUnderExchangeability is Theorem 4.1: when observations
// are i.i.d. with the calibration data, conformal p-values are uniform in
// [0,1]. Verified with our Kolmogorov–Smirnov test.
func TestPValueUniformUnderExchangeability(t *testing.T) {
	rng := stats.NewRNG(42)
	dim := 4
	ref := make([]tensor.Vector, 120)
	for i := range ref {
		ref[i] = tensor.Vector(rng.NormalVec(dim, 0, 1))
	}
	m := KNN{K: 5}
	calib := Calibrate(m, ref)
	ps := make([]float64, 400)
	for i := range ps {
		x := tensor.Vector(rng.NormalVec(dim, 0, 1))
		ps[i] = PValue(calib, m.Score(x, ref), rng.Float64())
	}
	// Inductive p-values share one calibration set, so they are only
	// marginally uniform, not independent; KS over a long dependent
	// sequence over-rejects slightly, hence the conservative level.
	if _, p := stats.KSUniform(ps); p < 1e-4 {
		t.Errorf("conformal p-values rejected as uniform (KS p = %v)", p)
	}
}

// TestPValueSmallUnderDrift is the corollary: out-of-distribution
// observations get extreme (small) p-values.
func TestPValueSmallUnderDrift(t *testing.T) {
	rng := stats.NewRNG(43)
	dim := 4
	ref := make([]tensor.Vector, 100)
	for i := range ref {
		ref[i] = tensor.Vector(rng.NormalVec(dim, 0, 1))
	}
	m := KNN{K: 5}
	calib := Calibrate(m, ref)
	total := 0.0
	for i := 0; i < 100; i++ {
		x := tensor.Vector(rng.NormalVec(dim, 5, 1)) // shifted distribution
		total += PValue(calib, m.Score(x, ref), rng.Float64())
	}
	if mean := total / 100; mean > 0.05 {
		t.Errorf("mean p-value under drift = %v, want near 0", mean)
	}
}

func TestSortedCalibMatchesPValue(t *testing.T) {
	rng := stats.NewRNG(44)
	f := func(seed uint8) bool {
		// Random calibration with deliberate ties.
		n := rng.Intn(30) + 2
		calib := make([]float64, n)
		for i := range calib {
			calib[i] = float64(rng.Intn(6))
		}
		sc := NewSortedCalib(calib)
		a := float64(rng.Intn(8)) - 1
		u := rng.Float64()
		return math.Abs(PValue(calib, a, u)-sc.PValue(a, u)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortedCalibLen(t *testing.T) {
	if NewSortedCalib([]float64{1, 2, 3}).Len() != 3 {
		t.Error("SortedCalib.Len wrong")
	}
}
