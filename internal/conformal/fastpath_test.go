package conformal

import (
	"math"
	"testing"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
)

// randomRef builds n random d-dimensional reference vectors.
func randomRef(rng *stats.RNG, n, d int) []tensor.Vector {
	ref := make([]tensor.Vector, n)
	for i := range ref {
		ref[i] = tensor.Vector(rng.NormalVec(d, 0, 1))
	}
	return ref
}

// TestKNNScorerMatchesBruteForce is the equivalence property test of the
// optimized score paths: across random dims, K and reference sizes, the
// quickselect KNN.Score and the flattened-matrix KNNScorer must return
// the brute-force reference value. The construction preserves the
// accumulation order of the brute path, so the bar is bit-identity, far
// inside the issue's ≤1e-12 tolerance.
func TestKNNScorerMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(101)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(160)
		d := 1 + rng.Intn(24)
		k := 1 + rng.Intn(12) // sometimes > n: exercises clamping
		ref := randomRef(rng, n, d)
		flat := tensor.FlattenVectors(ref)
		m := KNN{K: k}
		scorer := NewKNNScorer(k, flat)
		for q := 0; q < 5; q++ {
			x := tensor.Vector(rng.NormalVec(d, 0, 2))
			want := m.BruteScore(x, ref)
			if got := m.Score(x, ref); got != want {
				t.Fatalf("trial %d (n=%d d=%d k=%d): KNN.Score = %v, brute = %v (Δ=%g)",
					trial, n, d, k, got, want, got-want)
			}
			if got := scorer.Score(x); got != want {
				t.Fatalf("trial %d (n=%d d=%d k=%d): KNNScorer.Score = %v, brute = %v (Δ=%g)",
					trial, n, d, k, got, want, got-want)
			}
		}
	}
}

// TestKNNScorerDuplicateRows pins tie handling: duplicated reference rows
// produce equal distances straddling the K boundary, and the selected
// multiset must still sum to the brute value.
func TestKNNScorerDuplicateRows(t *testing.T) {
	rng := stats.NewRNG(102)
	base := randomRef(rng, 8, 3)
	ref := append(append([]tensor.Vector{}, base...), base...) // every row twice
	m := KNN{K: 5}
	scorer := NewKNNScorer(5, tensor.FlattenVectors(ref))
	for q := 0; q < 20; q++ {
		x := tensor.Vector(rng.NormalVec(3, 0, 1))
		want := m.BruteScore(x, ref)
		if got := scorer.Score(x); got != want {
			t.Fatalf("tied rows: scorer = %v, brute = %v", got, want)
		}
	}
}

// TestCalibrateFastPathMatchesGeneric verifies the in-place leave-one-out
// calibration against the original rest-slice construction.
func TestCalibrateFastPathMatchesGeneric(t *testing.T) {
	rng := stats.NewRNG(103)
	for _, n := range []int{2, 3, 17, 80} {
		for _, k := range []int{1, 3, 5, 90} {
			ref := randomRef(rng, n, 6)
			got := Calibrate(KNN{K: k}, ref)
			// Generic path via a wrapper type that hides the KNN concrete
			// type from Calibrate's fast-path type switch.
			want := Calibrate(genericMeasure{KNN{K: k}}, ref)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: Calibrate[%d] = %v, generic = %v", n, k, i, got[i], want[i])
				}
			}
		}
	}
}

type genericMeasure struct{ m Measure }

func (g genericMeasure) Score(x tensor.Vector, ref []tensor.Vector) float64 {
	return g.m.Score(x, ref)
}

// TestKNNScorerScoreSkip pins the leave-one-out primitive directly: a
// point scored against a reference containing itself gets 0 for its own
// row unless that row is skipped.
func TestKNNScorerScoreSkip(t *testing.T) {
	ref := []tensor.Vector{{0, 0}, {3, 4}, {6, 8}}
	s := NewKNNScorer(1, tensor.FlattenVectors(ref))
	if got := s.ScoreSkip(ref[0], -1); got != 0 {
		t.Errorf("no skip: nearest = %v, want 0 (itself)", got)
	}
	if got := s.ScoreSkip(ref[0], 0); got != 5 {
		t.Errorf("skip self: nearest = %v, want 5", got)
	}
}

// TestKNNScorerZeroAlloc asserts the acceptance criterion directly:
// the hot score path allocates nothing.
func TestKNNScorerZeroAlloc(t *testing.T) {
	rng := stats.NewRNG(104)
	ref := randomRef(rng, 100, 4)
	scorer := NewKNNScorer(5, tensor.FlattenVectors(ref))
	x := tensor.Vector(rng.NormalVec(4, 0, 1))
	allocs := testing.AllocsPerRun(200, func() { scorer.Score(x) })
	if allocs != 0 {
		t.Errorf("KNNScorer.Score allocates %v objects/op, want 0", allocs)
	}
}

// TestSelectSmallest pins the quickselect partial ordering.
func TestSelectSmallest(t *testing.T) {
	rng := stats.NewRNG(105)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(64)
		k := 1 + rng.Intn(n)
		a := rng.UniformVec(n, -10, 10)
		sorted := append([]float64(nil), a...)
		insertionSort(sorted)
		selectSmallest(a, k)
		max := math.Inf(-1)
		for _, v := range a[:k] {
			if v > max {
				max = v
			}
		}
		if max != sorted[k-1] {
			t.Fatalf("n=%d k=%d: max of a[:k] = %v, want %v", n, k, max, sorted[k-1])
		}
	}
}

// --- Benchmarks: the provisioning-time Calibrate win and the score paths.

func benchRef(n, d int) []tensor.Vector {
	return randomRef(stats.NewRNG(7), n, d)
}

// BenchmarkCalibrate shows the leave-one-out fix: "generic" is the
// original quadratic rest-slice rebuild (still used for non-KNN
// measures), "fast" the in-place skip-index path provisioning now takes.
func BenchmarkCalibrate(b *testing.B) {
	ref := benchRef(256, 4)
	b.Run("generic", func(b *testing.B) {
		m := genericMeasure{KNN{K: 5}}
		for i := 0; i < b.N; i++ {
			Calibrate(m, ref)
		}
	})
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Calibrate(KNN{K: 5}, ref)
		}
	})
}
