package conformal

import (
	"math"
	"testing"

	"videodrift/internal/stats"
)

// integrate numerically integrates f over [0,1] with the midpoint rule.
func integrate(f BettingFunc, steps int) float64 {
	sum := 0.0
	h := 1.0 / float64(steps)
	for i := 0; i < steps; i++ {
		sum += f((float64(i) + 0.5) * h)
	}
	return sum * h
}

func TestShiftedOddIntegratesToZero(t *testing.T) {
	for _, kappa := range []float64{1, 2, 4, 6} {
		if got := integrate(ShiftedOdd(kappa), 10000); math.Abs(got) > 1e-9 {
			t.Errorf("∫ShiftedOdd(%v) = %v, want 0", kappa, got)
		}
	}
}

func TestPowerIntegratesToOne(t *testing.T) {
	for _, eps := range []float64{0.3, 0.5, 0.92} {
		if got := integrate(Power(eps), 2_000_000); math.Abs(got-1) > 0.01 {
			t.Errorf("∫Power(%v) = %v, want 1", eps, got)
		}
	}
}

func TestMixtureIntegratesToOne(t *testing.T) {
	// The integrand behaves like 1/(p·ln²p) near zero — integrable but too
	// slowly converging for quadrature over [0,1]. Its exact antiderivative
	// is F(p) = (p−1)/ln p with F(0⁺)=0 and F(1⁻)=1, so ∫₀¹ = 1; verify the
	// implementation against F on an interior interval.
	F := func(p float64) float64 { return (p - 1) / math.Log(p) }
	g := Mixture()
	lo, hi := 0.001, 0.999
	steps := 1_000_000
	h := (hi - lo) / float64(steps)
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += g(lo + (float64(i)+0.5)*h)
	}
	numeric := sum * h
	exact := F(hi) - F(lo)
	if math.Abs(numeric-exact) > 1e-3 {
		t.Errorf("∫[%v,%v]Mixture = %v, antiderivative gives %v", lo, hi, numeric, exact)
	}
	// F approaches its limits logarithmically slowly: F(p) ≈ −1/ln p near 0.
	if math.Abs(F(1-1e-9)-1) > 1e-6 || math.Abs(F(1e-300)) > 2e-3 {
		t.Error("antiderivative limits wrong")
	}
}

func TestShiftedOddShape(t *testing.T) {
	g := ShiftedOdd(4)
	if g(0) != 2 || g(1) != -2 || g(0.5) != 0 {
		t.Errorf("ShiftedOdd(4) values: g(0)=%v g(1)=%v g(0.5)=%v", g(0), g(1), g(0.5))
	}
	// Strange observations (small p) are rewarded with large values.
	if g(0.1) <= g(0.9) {
		t.Error("betting function not decreasing in p")
	}
}

func TestCUSUMGrowsUnderDrift(t *testing.T) {
	c := NewCUSUM(ShiftedOdd(4), 2, 3)
	for i := 0; i < 5; i++ {
		c.Update(0) // maximally strange
	}
	if got := c.Value(); math.Abs(got-10) > 1e-12 {
		t.Errorf("value after 5 strange frames = %v, want 10", got)
	}
	if got := c.WindowDelta(); math.Abs(got-6) > 1e-12 {
		t.Errorf("window delta = %v, want 6 (3 increments of 2)", got)
	}
}

func TestCUSUMStaysSmallUnderUniform(t *testing.T) {
	rng := stats.NewRNG(1)
	c := NewCUSUM(ShiftedOdd(4), 2, 3)
	test := DriftTest{W: 3, R: 0.5}
	falseAlarms := 0
	for i := 0; i < 20000; i++ {
		c.Update(rng.Float64())
		if test.Check(c) {
			falseAlarms++
		}
	}
	// The floored martingale itself wanders like sqrt(n) under the null —
	// only the windowed rate of change is tested (Eq. 15), and it should
	// essentially never fire.
	if falseAlarms > 2 {
		t.Errorf("false alarms under uniform p-values: %d in 20k frames", falseAlarms)
	}
}

func TestCUSUMFloorAtZero(t *testing.T) {
	c := NewCUSUM(ShiftedOdd(4), 2, 3)
	for i := 0; i < 10; i++ {
		c.Update(1) // maximally ordinary: increment −2
	}
	if c.Value() != 0 {
		t.Errorf("floored value = %v", c.Value())
	}
}

func TestCUSUMWindowDeltaRing(t *testing.T) {
	c := NewCUSUM(ShiftedOdd(2), 1, 2)
	// Increments: g(0)=1 each time. Values: 1, 2, 3, 4.
	deltas := []float64{1, 2, 2, 2} // window = min(count, 2)
	for i, want := range deltas {
		c.Update(0)
		if got := c.WindowDelta(); math.Abs(got-want) > 1e-12 {
			t.Errorf("step %d: WindowDelta = %v, want %v", i+1, got, want)
		}
	}
}

func TestCUSUMResetAndValidation(t *testing.T) {
	c := NewCUSUM(ShiftedOdd(4), 2, 3)
	c.Update(0)
	c.Reset()
	if c.Value() != 0 || c.Count() != 0 || c.WindowDelta() != 0 {
		t.Error("Reset left state behind")
	}
	for i, fn := range []func(){
		func() { NewCUSUM(ShiftedOdd(2), 1, 0) },
		func() { NewCUSUM(ShiftedOdd(2), 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDriftTestThresholds(t *testing.T) {
	// Paper-literal Eq. 15 with the worked example's W=2, r=0.5 gives 4.
	lit := DriftTest{W: 2, R: 0.5, Mode: ThresholdPaperLiteral}
	if got := lit.Threshold(1); math.Abs(got-4) > 1e-12 {
		t.Errorf("paper-literal threshold = %v, want 4", got)
	}
	// Hoeffding form: c·sqrt(2W·ln(2/r)).
	hoef := DriftTest{W: 3, R: 0.5, Mode: ThresholdHoeffding}
	want := 2 * math.Sqrt(2*3*math.Log(4))
	if got := hoef.Threshold(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("hoeffding threshold = %v, want %v", got, want)
	}
	// Smaller r (stricter) → larger threshold.
	strict := DriftTest{W: 3, R: 0.1, Mode: ThresholdHoeffding}
	if strict.Threshold(2) <= hoef.Threshold(2) {
		t.Error("threshold not monotone in significance")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid significance did not panic")
			}
		}()
		DriftTest{W: 3, R: 0}.Threshold(1)
	}()
}

func TestDriftTestDetectsShift(t *testing.T) {
	rng := stats.NewRNG(2)
	c := NewCUSUM(ShiftedOdd(4), 2, 3)
	test := DriftTest{W: 3, R: 0.5}
	// Null phase.
	for i := 0; i < 500; i++ {
		c.Update(rng.Float64())
		if test.Check(c) {
			t.Fatalf("false alarm at null frame %d", i)
		}
	}
	// Drift phase: p-values collapse.
	detectedAt := -1
	for i := 0; i < 50; i++ {
		c.Update(0.01 * rng.Float64())
		if test.Check(c) {
			detectedAt = i
			break
		}
	}
	if detectedAt < 0 {
		t.Fatal("drift never detected")
	}
	if detectedAt > 10 {
		t.Errorf("drift detected after %d frames, want prompt detection", detectedAt)
	}
}

func TestPowerMartingaleUnderNullAndDrift(t *testing.T) {
	rng := stats.NewRNG(3)
	m := NewPowerMartingale(Mixture())
	for i := 0; i < 2000; i++ {
		m.Update(rng.Float64())
	}
	if m.Exceeds(0.01) {
		t.Errorf("power martingale exceeded 100 under the null (log=%v)", m.LogValue())
	}
	nullLog := m.LogValue()
	// The product has decayed far below 1 — the paper's §4.2.3 drawback.
	if nullLog > 0 {
		t.Errorf("expected decay under the null, log = %v", nullLog)
	}
	for i := 0; i < 50; i++ {
		m.Update(0.001)
	}
	if m.LogValue() <= nullLog {
		t.Error("power martingale did not grow under drift")
	}
	// A fresh martingale does cross the Ville threshold under drift.
	m.Reset()
	if m.LogValue() != 0 || m.Exceeds(0.5) {
		t.Error("Reset left state behind")
	}
	for i := 0; i < 50; i++ {
		m.Update(0.001)
	}
	if !m.Exceeds(0.01) {
		t.Errorf("fresh power martingale did not exceed 100 under drift (log=%v)", m.LogValue())
	}
}

// TestAdditiveFasterThanMultiplicative reproduces the paper's §4.2.3
// motivation: after a long null phase the multiplicative martingale has
// decayed and takes longer to signal than the additive CUSUM.
func TestAdditiveFasterThanMultiplicative(t *testing.T) {
	rng := stats.NewRNG(4)
	cus := NewCUSUM(ShiftedOdd(4), 2, 3)
	pow := NewPowerMartingale(Power(0.5))
	test := DriftTest{W: 3, R: 0.5}

	for i := 0; i < 3000; i++ {
		p := rng.Float64()
		cus.Update(p)
		pow.Update(p)
	}
	cusAt, powAt := -1, -1
	for i := 0; i < 500; i++ {
		p := 0.005 * rng.Float64()
		cus.Update(p)
		pow.Update(p)
		if cusAt < 0 && test.Check(cus) {
			cusAt = i
		}
		if powAt < 0 && pow.LogValue() > math.Log(1/0.05) {
			powAt = i
		}
	}
	if cusAt < 0 {
		t.Fatal("CUSUM never detected")
	}
	if powAt >= 0 && cusAt > powAt {
		t.Errorf("CUSUM detected at %d, after multiplicative at %d", cusAt, powAt)
	}
}
