// Package vae implements the variational autoencoder of paper §4.2.2.
//
// The paper uses one VAE per known distribution T_i for two things:
//
//  1. generating any number of i.i.d. samples Σ_{T_i} from the
//     distribution underlying T_i (decode z ~ N(0, I)), which is what makes
//     conformal p-values valid despite frame-to-frame correlation in video;
//  2. embedding incoming frames into a compact latent space (the encoder
//     mean vector), which makes the kNN non-conformity measure cheap.
//
// The paper's VAE is convolutional; ours is dense, trained with the same
// loss (pixel binary cross-entropy reconstruction + KL divergence to the
// standard normal prior) on the same kind of input (frames flattened to
// [0,1] vectors). See DESIGN.md §2 for the substitution rationale.
package vae

import (
	"fmt"
	"math"

	"videodrift/internal/nn"
	"videodrift/internal/stats"
	"videodrift/internal/tensor"
)

// Config describes a VAE architecture and training setup.
type Config struct {
	InputDim  int     // flattened frame size
	HiddenDim int     // encoder/decoder trunk width
	LatentDim int     // dimensionality of z
	Beta      float64 // weight of the KL term relative to reconstruction
	LR        float64 // Adam learning rate
}

// DefaultConfig returns a configuration sized for the synthetic frames in
// this repo (paper: 3 conv + 2 FC encoder; ours: dense trunk).
func DefaultConfig(inputDim int) Config {
	return Config{
		InputDim:  inputDim,
		HiddenDim: 64,
		LatentDim: 8,
		Beta:      1.0,
		LR:        1e-3,
	}
}

// VAE is a trainable variational autoencoder. It is not safe for
// concurrent mutation; Train and the inference methods must not be called
// concurrently. After training, concurrent read-only use still shares layer
// scratch state, so callers needing parallel inference should clone.
type VAE struct {
	cfg Config
	rng *stats.RNG

	enc    *nn.Dense
	encAct *nn.ReLU
	muHead *nn.Dense
	lvHead *nn.Dense
	dec    *nn.Dense
	decAct *nn.ReLU
	out    *nn.Dense

	opt *nn.Adam
}

// New creates an untrained VAE with Xavier-initialized weights drawn from
// rng.
func New(cfg Config, rng *stats.RNG) *VAE {
	if cfg.InputDim <= 0 || cfg.HiddenDim <= 0 || cfg.LatentDim <= 0 {
		panic(fmt.Sprintf("vae: invalid config %+v", cfg))
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 1.0
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	return &VAE{
		cfg:    cfg,
		rng:    rng,
		enc:    nn.NewDense(cfg.InputDim, cfg.HiddenDim, rng),
		encAct: &nn.ReLU{},
		muHead: nn.NewDense(cfg.HiddenDim, cfg.LatentDim, rng),
		lvHead: nn.NewDense(cfg.HiddenDim, cfg.LatentDim, rng),
		dec:    nn.NewDense(cfg.LatentDim, cfg.HiddenDim, rng),
		decAct: &nn.ReLU{},
		out:    nn.NewDense(cfg.HiddenDim, cfg.InputDim, rng),
		opt:    nn.NewAdam(cfg.LR),
	}
}

// Config returns the architecture the VAE was built with.
func (v *VAE) Config() Config { return v.cfg }

// LatentDim returns the dimensionality of the latent space.
func (v *VAE) LatentDim() int { return v.cfg.LatentDim }

func (v *VAE) params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range []nn.Layer{v.enc, v.muHead, v.lvHead, v.dec, v.out} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

func (v *VAE) zeroGrad() {
	for _, p := range v.params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// TrainStep performs one stochastic gradient step on a single input frame
// (flattened pixels in [0,1]) and returns the total loss (mean-pixel BCE +
// β·KL/InputDim).
func (v *VAE) TrainStep(x tensor.Vector) float64 {
	if len(x) != v.cfg.InputDim {
		panic(fmt.Sprintf("vae: TrainStep input dim %d, want %d", len(x), v.cfg.InputDim))
	}
	v.zeroGrad()

	// Encode.
	h := v.encAct.Forward(v.enc.Forward(x))
	mu := v.muHead.Forward(h)
	lv := v.lvHead.Forward(h).Clip(-10, 10) // keep exp(lv) sane early in training

	// Reparameterize: z = mu + exp(lv/2) * eps.
	eps := tensor.Vector(v.rng.NormalVec(v.cfg.LatentDim, 0, 1))
	sigma := make(tensor.Vector, v.cfg.LatentDim)
	z := make(tensor.Vector, v.cfg.LatentDim)
	for i := range z {
		sigma[i] = math.Exp(0.5 * lv[i])
		z[i] = mu[i] + sigma[i]*eps[i]
	}

	// Decode.
	d := v.decAct.Forward(v.dec.Forward(z))
	logits := v.out.Forward(d)

	// Loss: mean BCE over pixels + β·KL/InputDim, so both terms share the
	// per-pixel scale.
	recon, gradLogits := nn.BCEWithLogits(logits, x)
	klScale := v.cfg.Beta / float64(v.cfg.InputDim)
	kl := 0.0
	for i := range mu {
		kl += -0.5 * (1 + lv[i] - mu[i]*mu[i] - math.Exp(lv[i]))
	}
	loss := recon + klScale*kl

	// Backward through decoder.
	gradZ := v.dec.Backward(v.decAct.Backward(v.out.Backward(gradLogits)))

	// Branch gradients: z = mu + sigma*eps with sigma = exp(lv/2).
	gradMu := make(tensor.Vector, v.cfg.LatentDim)
	gradLv := make(tensor.Vector, v.cfg.LatentDim)
	for i := range gradZ {
		gradMu[i] = gradZ[i] + klScale*mu[i]
		gradLv[i] = gradZ[i]*eps[i]*0.5*sigma[i] + klScale*(-0.5)*(1-math.Exp(lv[i]))
	}

	// Backward through the two encoder heads and the shared trunk.
	gh := v.muHead.Backward(gradMu)
	gh.AddInPlace(v.lvHead.Backward(gradLv))
	v.enc.Backward(v.encAct.Backward(gh))

	nn.ClipGrads(v.params(), 5)
	v.opt.Step(v.params())
	return loss
}

// Fit trains the VAE for the given number of epochs over data, visiting
// examples in a fresh random order each epoch, and returns the mean loss
// per epoch. It is the Fit loop paper §6 describes (Adam, BCE+KL).
func (v *VAE) Fit(data []tensor.Vector, epochs int) []float64 {
	if len(data) == 0 {
		return nil
	}
	losses := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		perm := v.rng.Perm(len(data))
		total := 0.0
		for _, idx := range perm {
			total += v.TrainStep(data[idx])
		}
		losses = append(losses, total/float64(len(data)))
	}
	return losses
}

// Encode returns the posterior mean and log-variance for x.
func (v *VAE) Encode(x tensor.Vector) (mu, logvar tensor.Vector) {
	if len(x) != v.cfg.InputDim {
		panic(fmt.Sprintf("vae: Encode input dim %d, want %d", len(x), v.cfg.InputDim))
	}
	h := v.encAct.Forward(v.enc.Forward(x))
	return v.muHead.Forward(h), v.lvHead.Forward(h).Clip(-10, 10)
}

// Embed returns the deterministic latent embedding of x (the posterior
// mean), the representation the Drift Inspector's non-conformity measure
// uses.
func (v *VAE) Embed(x tensor.Vector) tensor.Vector {
	mu, _ := v.Encode(x)
	return mu
}

// Decode maps a latent vector through the decoder and returns pixel values
// in (0,1).
func (v *VAE) Decode(z tensor.Vector) tensor.Vector {
	if len(z) != v.cfg.LatentDim {
		panic(fmt.Sprintf("vae: Decode latent dim %d, want %d", len(z), v.cfg.LatentDim))
	}
	d := v.decAct.Forward(v.dec.Forward(z))
	logits := v.out.Forward(d)
	out := make(tensor.Vector, len(logits))
	for i, l := range logits {
		out[i] = 1 / (1 + math.Exp(-l))
	}
	return out
}

// Sample draws n i.i.d. samples from the learned distribution by decoding
// z ~ N(0, I). This is the Σ_{T_i} generator of paper §4.2.1: the samples
// are independent by construction even though the training frames were
// temporally correlated.
func (v *VAE) Sample(n int) []tensor.Vector {
	out := make([]tensor.Vector, n)
	for i := range out {
		out[i] = v.Decode(tensor.Vector(v.rng.NormalVec(v.cfg.LatentDim, 0, 1)))
	}
	return out
}

// SampleLatent draws n i.i.d. latent vectors z ~ N(0, I). Embedding-space
// pipelines use these directly instead of decoded pixels.
func (v *VAE) SampleLatent(n int) []tensor.Vector {
	out := make([]tensor.Vector, n)
	for i := range out {
		out[i] = tensor.Vector(v.rng.NormalVec(v.cfg.LatentDim, 0, 1))
	}
	return out
}

// Reconstruct encodes x deterministically (z = mu) and decodes it back.
func (v *VAE) Reconstruct(x tensor.Vector) tensor.Vector {
	return v.Decode(v.Embed(x))
}

// ReconstructionError returns the mean squared pixel error between x and
// its deterministic reconstruction — a cheap in-distribution score used by
// diagnostics and tests.
func (v *VAE) ReconstructionError(x tensor.Vector) float64 {
	rec := v.Reconstruct(x)
	loss, _ := nn.MSE(rec, x)
	return loss
}
