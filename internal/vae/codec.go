package vae

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"videodrift/internal/stats"
)

// vaeRecord is the gob wire form of a VAE: the architecture, every
// trainable tensor in params() order, and the generator's exact stream
// position so a restored VAE's future Fit/Sample draws match the
// original's.
//
//driftlint:snapshot encode=VAE.MarshalBinary decode=UnmarshalVAE
type vaeRecord struct {
	Config  Config
	Weights [][]float64
	RNG     stats.RNGState
}

// MarshalBinary serializes the VAE's architecture, weights and RNG
// position. Optimizer moments are not retained: provisioned VAEs are
// never resumed mid-Fit, and a fresh Adam state only matters for further
// training.
func (v *VAE) MarshalBinary() ([]byte, error) {
	ps := v.params()
	rec := vaeRecord{Config: v.cfg, Weights: make([][]float64, len(ps)), RNG: v.rng.State()}
	for i, p := range ps {
		rec.Weights[i] = append([]float64(nil), p.Value...)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, fmt.Errorf("vae: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalVAE reconstructs a VAE serialized by MarshalBinary: it builds
// the recorded architecture, overwrites the initialization with the
// stored weights, and resumes the generator at its recorded position.
func UnmarshalVAE(data []byte) (*VAE, error) {
	var rec vaeRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("vae: decode: %w", err)
	}
	if rec.Config.InputDim <= 0 || rec.Config.HiddenDim <= 0 || rec.Config.LatentDim <= 0 {
		return nil, fmt.Errorf("vae: decode: invalid config %+v", rec.Config)
	}
	// Initialization weights are discarded below, so the construction RNG
	// is a throwaway; the live generator is resumed separately.
	v := New(rec.Config, stats.NewRNG(0))
	ps := v.params()
	if len(ps) != len(rec.Weights) {
		return nil, fmt.Errorf("vae: decode: %d weight tensors, architecture has %d", len(rec.Weights), len(ps))
	}
	for i, p := range ps {
		if len(p.Value) != len(rec.Weights[i]) {
			return nil, fmt.Errorf("vae: decode: tensor %d has %d values, want %d", i, len(rec.Weights[i]), len(p.Value))
		}
		copy(p.Value, rec.Weights[i])
	}
	v.rng = stats.ResumeRNG(rec.RNG)
	return v, nil
}
