package vae

import (
	"math"
	"testing"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
)

// blobData generates synthetic "frames": vectors in [0,1]^dim clustered
// around a per-distribution template with small noise.
func blobData(rng *stats.RNG, dim, n int, template func(i int) float64) []tensor.Vector {
	data := make([]tensor.Vector, n)
	for k := range data {
		v := make(tensor.Vector, dim)
		for i := range v {
			x := template(i) + rng.Normal(0, 0.05)
			v[i] = math.Min(math.Max(x, 0), 1)
		}
		data[k] = v
	}
	return data
}

func brightTemplate(i int) float64 { return 0.8 }
func darkTemplate(i int) float64   { return 0.15 }

func trainSmallVAE(t *testing.T, seed int64, data []tensor.Vector) *VAE {
	t.Helper()
	cfg := Config{InputDim: len(data[0]), HiddenDim: 24, LatentDim: 4, Beta: 0.5, LR: 2e-3}
	v := New(cfg, stats.NewRNG(seed))
	v.Fit(data, 20)
	return v
}

func TestFitReducesLoss(t *testing.T) {
	rng := stats.NewRNG(1)
	data := blobData(rng, 16, 64, brightTemplate)
	v := New(Config{InputDim: 16, HiddenDim: 24, LatentDim: 4, Beta: 0.5, LR: 2e-3}, stats.NewRNG(2))
	losses := v.Fit(data, 15)
	if len(losses) != 15 {
		t.Fatalf("losses length = %d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	for i, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("loss[%d] = %v", i, l)
		}
	}
}

func TestFitEmptyData(t *testing.T) {
	v := New(DefaultConfig(8), stats.NewRNG(3))
	if got := v.Fit(nil, 5); got != nil {
		t.Errorf("Fit(nil) = %v, want nil", got)
	}
}

func TestSampleShapeAndRange(t *testing.T) {
	rng := stats.NewRNG(4)
	data := blobData(rng, 16, 48, brightTemplate)
	v := trainSmallVAE(t, 5, data)
	samples := v.Sample(20)
	if len(samples) != 20 {
		t.Fatalf("Sample count = %d", len(samples))
	}
	for _, s := range samples {
		if len(s) != 16 {
			t.Fatalf("sample dim = %d", len(s))
		}
		for _, x := range s {
			if x < 0 || x > 1 || math.IsNaN(x) {
				t.Fatalf("sample pixel out of range: %v", x)
			}
		}
	}
}

func TestSamplesMatchTrainingDistribution(t *testing.T) {
	rng := stats.NewRNG(6)
	bright := blobData(rng, 16, 64, brightTemplate)
	v := trainSmallVAE(t, 7, bright)
	samples := v.Sample(50)
	mean := 0.0
	for _, s := range samples {
		mean += s.Mean()
	}
	mean /= 50
	// Samples from the bright model should be much closer to 0.8 than to the
	// dark template 0.15.
	if math.Abs(mean-0.8) > math.Abs(mean-0.15) {
		t.Errorf("sample mean %v is closer to the wrong template", mean)
	}
}

func TestEmbedDeterministicSampleStochastic(t *testing.T) {
	rng := stats.NewRNG(8)
	data := blobData(rng, 16, 32, brightTemplate)
	v := trainSmallVAE(t, 9, data)
	x := data[0]
	e1 := v.Embed(x)
	e2 := v.Embed(x)
	if e1.Dist(e2) != 0 {
		t.Error("Embed is not deterministic")
	}
	if len(e1) != 4 {
		t.Errorf("Embed dim = %d", len(e1))
	}
	s1 := v.Sample(1)[0]
	s2 := v.Sample(1)[0]
	if s1.Dist(s2) == 0 {
		t.Error("two independent samples are identical")
	}
}

func TestReconstructionErrorSeparatesDistributions(t *testing.T) {
	rng := stats.NewRNG(10)
	bright := blobData(rng, 16, 64, brightTemplate)
	dark := blobData(rng, 16, 64, darkTemplate)
	v := trainSmallVAE(t, 11, bright)

	inErr, outErr := 0.0, 0.0
	for i := 0; i < 20; i++ {
		inErr += v.ReconstructionError(bright[i])
		outErr += v.ReconstructionError(dark[i])
	}
	if inErr >= outErr {
		t.Errorf("in-distribution error %v >= out-of-distribution error %v", inErr, outErr)
	}
}

// TestSampleDistanceSeparatesDistributions checks the property the Drift
// Inspector's non-conformity measure relies on: pixel-space distance from a
// frame to the VAE's decoded i.i.d. samples is small for in-distribution
// frames and large for out-of-distribution frames. (Latent embeddings of
// *unseen* distributions are not guaranteed to separate — the encoder can
// cancel uniform shifts — which is why the default measure works in pixel
// space; see conformal.NonconformityMeasure.)
func TestSampleDistanceSeparatesDistributions(t *testing.T) {
	rng := stats.NewRNG(12)
	bright := blobData(rng, 16, 64, brightTemplate)
	dark := blobData(rng, 16, 64, darkTemplate)
	v := trainSmallVAE(t, 13, bright)

	samples := v.Sample(30)
	avgDist := func(x tensor.Vector) float64 {
		s := 0.0
		for _, smp := range samples {
			s += x.Dist(smp)
		}
		return s / float64(len(samples))
	}
	inDist, outDist := 0.0, 0.0
	for i := 0; i < 20; i++ {
		inDist += avgDist(bright[i])
		outDist += avgDist(dark[i])
	}
	if inDist >= outDist {
		t.Errorf("in-distribution distance %v >= out-of-distribution distance %v", inDist, outDist)
	}
	if outDist < 2*inDist {
		t.Errorf("weak separation: in %v vs out %v", inDist, outDist)
	}
}

func TestSampleLatentIID(t *testing.T) {
	v := New(DefaultConfig(8), stats.NewRNG(14))
	zs := v.SampleLatent(500)
	if len(zs) != 500 {
		t.Fatalf("SampleLatent count = %d", len(zs))
	}
	// Mean of each coordinate should be near 0, variance near 1.
	var w stats.Welford
	for _, z := range zs {
		for _, x := range z {
			w.Add(x)
		}
	}
	if math.Abs(w.Mean()) > 0.1 {
		t.Errorf("latent mean = %v", w.Mean())
	}
	if math.Abs(w.Variance()-1) > 0.15 {
		t.Errorf("latent variance = %v", w.Variance())
	}
	// Lag-1 autocorrelation of first coordinate should be near zero
	// (i.i.d. check — this is the property conformal p-values rely on).
	num, den := 0.0, 0.0
	for i := 1; i < len(zs); i++ {
		num += zs[i][0] * zs[i-1][0]
		den += zs[i][0] * zs[i][0]
	}
	if ac := num / den; math.Abs(ac) > 0.15 {
		t.Errorf("lag-1 autocorrelation = %v, want ~0", ac)
	}
}

func TestDimensionPanics(t *testing.T) {
	v := New(DefaultConfig(8), stats.NewRNG(15))
	cases := []func(){
		func() { v.TrainStep(make(tensor.Vector, 7)) },
		func() { v.Encode(make(tensor.Vector, 9)) },
		func() { v.Decode(make(tensor.Vector, 3)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNewValidatesConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with zero InputDim did not panic")
		}
	}()
	New(Config{InputDim: 0, HiddenDim: 4, LatentDim: 2}, stats.NewRNG(16))
}
