// Package parallel provides the bounded fan-out primitives the selection
// engine and the sharded monitor run on: a fixed-size worker pool with
// deterministic RNG forking. Determinism is the design constraint — every
// construct here guarantees that results are independent of the worker
// count and of goroutine scheduling, so a parallel run is
// decision-identical to a serial one under the same seed. The rule that
// makes this work: any randomness a parallel task consumes is pre-split
// from the caller's RNG serially, in task-index order, BEFORE the
// fan-out; workers then touch only their own stream.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"videodrift/internal/stats"
)

// Pool is a bounded worker pool for CPU-bound fan-out. The zero value is
// not ready to use; construct with New. A Pool is stateless between calls
// and safe for concurrent use.
type Pool struct {
	workers int
}

// New returns a pool running at most workers tasks concurrently.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(0) … fn(n-1), at most Workers at a time, and returns
// when all calls have finished. Tasks are claimed from a shared counter,
// so completion order is unspecified — fn must not depend on it (write
// results to out[i], don't append). A panic in any fn is re-raised on
// the caller's goroutine after the remaining workers drain.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// ForEachSeeded is ForEach for tasks that consume randomness: it forks
// one child RNG per task from rng — serially, in index order, before any
// worker starts — and hands task i its own stream. Task i therefore sees
// the same draws whether the pool runs 1 worker or 100, which is what
// keeps parallel selection decision-identical to serial under a fixed
// seed.
func (p *Pool) ForEachSeeded(n int, rng *stats.RNG, fn func(i int, rng *stats.RNG)) {
	if n <= 0 {
		return
	}
	rngs := make([]*stats.RNG, n)
	for i := range rngs {
		rngs[i] = rng.Split()
	}
	p.ForEach(n, func(i int) { fn(i, rngs[i]) })
}
