// Package parallel provides the bounded fan-out primitives the selection
// engine and the sharded monitor run on: a persistent worker pool with
// chunked work-stealing and deterministic RNG forking. Determinism is the
// design constraint — every construct here guarantees that results are
// independent of the worker count and of goroutine scheduling, so a
// parallel run is decision-identical to a serial one under the same seed.
// The rule that makes this work: any randomness a parallel task consumes
// is pre-split from the caller's RNG serially, in task-index order,
// BEFORE the fan-out; workers then touch only their own stream.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"videodrift/internal/stats"
)

// PanicError is how ForEach re-raises a worker panic on the caller's
// goroutine: the first panicking worker's value and stack are captured at
// the point of the panic, so the original failure site survives the hop
// across goroutines instead of being replaced by the caller's stack.
type PanicError struct {
	// Value is what the worker's fn panicked with.
	Value any
	// Stack is the panicking worker's stack trace, captured inside its
	// recover.
	Stack []byte
}

// Error implements error with the original panic value and worker stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", e.Value, e.Stack)
}

// Pool is a bounded worker pool for CPU-bound fan-out. The zero value is
// not ready to use; construct with New (or use Shared). A Pool is safe
// for concurrent use: overlapping ForEach calls share the pool's
// persistent workers, and the per-pool worker bound caps the total
// goroutines running pool tasks at any moment.
//
// Workers are started lazily on the first multi-worker ForEach and then
// parked on an idle channel receive (a futex wait, not a spin), so an
// idle pool costs nothing and a busy one never pays goroutine spin-up
// per call.
type Pool struct {
	workers int
	start   sync.Once
	jobs    chan *job
	scratch sync.Pool // *rngScratch, reused by ForEachSeeded
}

// New returns a pool running at most workers tasks concurrently.
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// sharedPools caches process-wide pools by worker bound, so call sites
// that historically constructed a throwaway Pool per invocation (MSBI per
// drift, ensemble fits) reuse one set of persistent workers instead.
var (
	sharedMu    sync.Mutex
	sharedPools = map[int]*Pool{}
)

// Shared returns the process-wide pool with the given worker bound,
// creating it on first use. workers <= 0 selects GOMAXPROCS. Pools are
// never torn down; their workers park between calls.
func Shared(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	p := sharedPools[workers]
	if p == nil {
		p = New(workers)
		sharedPools[workers] = p
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// job is one ForEach invocation in flight: the task body plus a
// work-stealing range per participant slot. Participants (the caller and
// any helpers that picked the job up) drain their own range front-to-back
// in chunks and steal the back half of the fullest remaining range when
// theirs is empty.
type job struct {
	fn     func(int)
	ranges []claimRange
	slots  atomic.Int32               // helper slot allocator (slot 0 is the caller)
	stop   atomic.Bool                // set on first panic: abandon remaining work
	panics atomic.Pointer[PanicError] // first panic wins
	wg     sync.WaitGroup
}

// claimRange is one participant's [lo, hi) interval of unclaimed task
// indices, packed into a single uint64 (hi<<32 | lo) so both bounds move
// under one CAS. Each range lives on its own cache line: the owner's
// chunked claims advance lo and thieves retreat hi, and padding keeps
// those CASes from false-sharing with neighbouring slots — the failure
// mode of the previous single shared counter at small task sizes.
type claimRange struct {
	bounds atomic.Uint64
	_      [56]byte
}

func packRange(lo, hi int) uint64 { return uint64(hi)<<32 | uint64(lo) }

func unpackRange(b uint64) (lo, hi int) { return int(b & 0xffffffff), int(b >> 32) }

// claimChunkDiv sizes owner claims: an owner takes 1/8 of its remaining
// range per claim (at least one index), so early claims are large (cheap)
// while the tail stays fine-grained enough for thieves to balance.
const claimChunkDiv = 8

// claim takes the next chunk off the front of the range.
func (r *claimRange) claim() (lo, hi int, ok bool) {
	for {
		b := r.bounds.Load()
		clo, chi := unpackRange(b)
		if clo >= chi {
			return 0, 0, false
		}
		c := (chi - clo + claimChunkDiv - 1) / claimChunkDiv
		if r.bounds.CompareAndSwap(b, packRange(clo+c, chi)) {
			return clo, clo + c, true
		}
	}
}

// steal takes the back half of the range (at least one index).
func (r *claimRange) steal() (lo, hi int, ok bool) {
	for {
		b := r.bounds.Load()
		clo, chi := unpackRange(b)
		if clo >= chi {
			return 0, 0, false
		}
		c := (chi - clo + 1) / 2
		if r.bounds.CompareAndSwap(b, packRange(clo, chi-c)) {
			return chi - c, chi, true
		}
	}
}

func (r *claimRange) remaining() int {
	lo, hi := unpackRange(r.bounds.Load())
	if lo >= hi {
		return 0
	}
	return hi - lo
}

// run is one participant's drain loop: claim chunks from the slot's own
// range, then steal the back half of the fullest other range — including
// ranges whose helper slot never materialized — until everything is
// empty. A panic in fn is captured with the worker's stack and stops the
// job; indices not yet claimed when a panic fires may never run.
func (j *job) run(slot int) {
	defer func() {
		if r := recover(); r != nil {
			j.panics.CompareAndSwap(nil, &PanicError{Value: r, Stack: debug.Stack()})
			j.stop.Store(true)
		}
	}()
	own := &j.ranges[slot]
	for {
		lo, hi, ok := own.claim()
		if !ok {
			victim := -1
			best := 0
			for v := range j.ranges {
				if v == slot {
					continue
				}
				if rem := j.ranges[v].remaining(); rem > best {
					best, victim = rem, v
				}
			}
			if victim < 0 {
				return
			}
			lo, hi, ok = j.ranges[victim].steal()
			if !ok {
				continue // lost the race; rescan
			}
		}
		for i := lo; i < hi; i++ {
			if j.stop.Load() {
				return
			}
			j.fn(i)
		}
	}
}

// spawn starts the pool's workers-1 persistent helper goroutines, parked
// on the job channel. They live for the life of the process; panics in
// task bodies are recovered inside job.run, so a panic never kills a
// worker (see TestWorkerPanicDoesNotLeakWorkers).
func (p *Pool) spawn() {
	p.jobs = make(chan *job, p.workers-1)
	for g := 0; g < p.workers-1; g++ {
		go func() {
			for j := range p.jobs {
				j.run(int(j.slots.Add(1)))
				j.wg.Done()
			}
		}()
	}
}

// ForEach runs fn(0) … fn(n-1), at most Workers at a time, and returns
// when all calls have finished. Indices are claimed in chunks from
// per-participant work-stealing ranges, so completion order is
// unspecified — fn must not depend on it (write results to out[i], don't
// append). The caller participates as a worker, so progress never
// depends on helper scheduling (nested ForEach calls cannot deadlock,
// even on the same pool). A panic in any fn stops the job — remaining
// unclaimed indices may not run — and the first panic is re-raised on
// the caller's goroutine wrapped in *PanicError, preserving the
// panicking worker's stack.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.start.Do(p.spawn)
	j := &job{fn: fn, ranges: make([]claimRange, w)}
	lo := 0
	per, rem := n/w, n%w
	for s := 0; s < w; s++ {
		hi := lo + per
		if s < rem {
			hi++
		}
		j.ranges[s].bounds.Store(packRange(lo, hi))
		lo = hi
	}
	// Offer the job to w-1 parked helpers without blocking: if the pool's
	// workers are all busy with overlapping ForEach calls, the caller just
	// runs with fewer helpers (their un-owned ranges get stolen), keeping
	// the pool's total concurrency bounded by Workers.
	for g := 1; g < w; g++ {
		j.wg.Add(1)
		select {
		case p.jobs <- j:
		default:
			j.wg.Done()
		}
	}
	j.run(0)
	j.wg.Wait()
	if pe := j.panics.Load(); pe != nil {
		panic(pe)
	}
}

// rngScratch is ForEachSeeded's reusable set of child generators. The
// children are reseeded in place per call, so a fan-out over n tasks
// costs n cheap reseeds instead of n fresh ~5KB source allocations.
type rngScratch struct {
	rngs []*stats.RNG
}

// ForEachSeeded is ForEach for tasks that consume randomness: it reseeds
// one child RNG per task from rng — serially, in index order, before any
// worker starts — and hands task i its own stream. Task i therefore sees
// the same draws whether the pool runs 1 worker or 100, which is what
// keeps parallel selection decision-identical to serial under a fixed
// seed. The child RNG is pool-owned scratch, valid only for the duration
// of fn(i); fn must not retain it.
func (p *Pool) ForEachSeeded(n int, rng *stats.RNG, fn func(i int, rng *stats.RNG)) {
	if n <= 0 {
		return
	}
	sc, _ := p.scratch.Get().(*rngScratch)
	if sc == nil {
		sc = &rngScratch{}
	}
	defer p.scratch.Put(sc)
	for len(sc.rngs) < n {
		sc.rngs = append(sc.rngs, stats.NewRNG(0))
	}
	rngs := sc.rngs[:n]
	for i := range rngs {
		// Reseed(parent.Int63()) reproduces Split()'s stream bit-exactly:
		// Split is NewRNG(parent.Int63()), and Reseed resets a child to
		// the NewRNG(seed) state.
		rngs[i].Reseed(rng.Int63())
	}
	p.ForEach(n, func(i int) { fn(i, rngs[i]) })
}
