package parallel

import (
	"sync/atomic"
	"testing"

	"videodrift/internal/stats"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		p := New(workers)
		const n = 500
		var hits [n]atomic.Int32
		p.ForEach(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	p := New(4)
	ran := false
	p.ForEach(0, func(int) { ran = true })
	p.ForEach(-3, func(int) { ran = true })
	if ran {
		t.Error("ForEach ran tasks for n <= 0")
	}
}

func TestNewClampsWorkers(t *testing.T) {
	if New(0).Workers() < 1 || New(-5).Workers() < 1 {
		t.Error("New with non-positive workers produced an empty pool")
	}
	if got := New(3).Workers(); got != 3 {
		t.Errorf("Workers = %d, want 3", got)
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	New(4).ForEach(16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

// TestForEachSeededDeterministic is the contract the selection engine
// depends on: per-task draws are identical regardless of worker count.
func TestForEachSeededDeterministic(t *testing.T) {
	const n = 40
	draw := func(workers int) [n]float64 {
		var out [n]float64
		New(workers).ForEachSeeded(n, stats.NewRNG(99), func(i int, rng *stats.RNG) {
			// Consume a task-dependent number of draws to prove streams
			// are independent, then record the next one.
			for j := 0; j < i%5; j++ {
				rng.Float64()
			}
			out[i] = rng.Float64()
		})
		return out
	}
	serial := draw(1)
	for _, workers := range []int{2, 8, 32} {
		if got := draw(workers); got != serial {
			t.Fatalf("workers=%d: draws differ from serial", workers)
		}
	}
}
