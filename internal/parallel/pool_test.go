package parallel

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"videodrift/internal/stats"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		p := New(workers)
		const n = 500
		var hits [n]atomic.Int32
		p.ForEach(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

// TestForEachRepeatedCalls drives many fan-outs through one pool — the
// persistent-worker shape MSBI hits (one ForEach per drift, same pool) —
// and checks exactly-once claiming every time, including tiny n where
// chunking degenerates to single indices.
func TestForEachRepeatedCalls(t *testing.T) {
	p := New(4)
	for round := 0; round < 200; round++ {
		n := 1 + round%17
		hits := make([]atomic.Int32, n)
		p.ForEach(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("round %d: index %d ran %d times, want 1", round, i, got)
			}
		}
	}
}

// TestForEachConcurrentCalls overlaps ForEach invocations on one shared
// pool — the sharded-monitor shape, where several shards run MSBI on the
// same Shared pool at once. Every call must still cover its own indices
// exactly once, with the pool's worker bound shared between them.
func TestForEachConcurrentCalls(t *testing.T) {
	p := New(4)
	const callers, n = 8, 200
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hits := make([]atomic.Int32, n)
			p.ForEach(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					errs <- "index ran wrong number of times"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	p := New(4)
	ran := false
	p.ForEach(0, func(int) { ran = true })
	p.ForEach(-3, func(int) { ran = true })
	if ran {
		t.Error("ForEach ran tasks for n <= 0")
	}
}

func TestNewClampsWorkers(t *testing.T) {
	if New(0).Workers() < 1 || New(-5).Workers() < 1 {
		t.Error("New with non-positive workers produced an empty pool")
	}
	if got := New(3).Workers(); got != 3 {
		t.Errorf("Workers = %d, want 3", got)
	}
}

func TestSharedCachesByWorkerCount(t *testing.T) {
	if Shared(3) != Shared(3) {
		t.Error("Shared(3) returned distinct pools")
	}
	if Shared(3) == Shared(5) {
		t.Error("Shared(3) and Shared(5) returned the same pool")
	}
	if got := Shared(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Shared(0).Workers() = %d, want GOMAXPROCS", got)
	}
}

// TestForEachPropagatesPanic is the panic contract: the first worker
// panic is re-raised on the caller's goroutine as a *PanicError carrying
// the original value and the panicking worker's stack — not the caller's.
func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", pe)
		}
		if pe.Value != "boom" {
			t.Errorf("PanicError.Value = %v, want boom", pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "pool_test.go") {
			t.Errorf("PanicError.Stack does not point at the panic site:\n%s", pe.Stack)
		}
		if !strings.Contains(pe.Error(), "boom") {
			t.Errorf("PanicError.Error() = %q, want the panic value included", pe.Error())
		}
	}()
	New(4).ForEach(16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

// TestWorkerPanicDoesNotLeakWorkers hammers a pool with panicking jobs
// and checks the persistent worker count stays put: panics are recovered
// inside the worker loop, so a worker survives its task's panic, and no
// replacement goroutines pile up.
func TestWorkerPanicDoesNotLeakWorkers(t *testing.T) {
	p := New(4)
	// Force the workers to start and settle before measuring.
	p.ForEach(8, func(int) {})
	time.Sleep(10 * time.Millisecond)
	before := runtime.NumGoroutine()
	for round := 0; round < 50; round++ {
		func() {
			defer func() { recover() }()
			p.ForEach(16, func(i int) {
				if i%3 == 0 {
					panic("injected")
				}
			})
		}()
	}
	// Drain: a healthy pool still completes clean work afterwards.
	var hits [32]atomic.Int32
	p.ForEach(len(hits), func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("post-panic ForEach missed index %d", i)
		}
	}
	time.Sleep(10 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d after 50 panicking jobs", before, after)
	}
}

// TestForEachSeededDeterministic is the contract the selection engine
// depends on: per-task draws are identical regardless of worker count.
func TestForEachSeededDeterministic(t *testing.T) {
	const n = 40
	draw := func(workers int) [n]float64 {
		var out [n]float64
		New(workers).ForEachSeeded(n, stats.NewRNG(99), func(i int, rng *stats.RNG) {
			// Consume a task-dependent number of draws to prove streams
			// are independent, then record the next one.
			for j := 0; j < i%5; j++ {
				rng.Float64()
			}
			out[i] = rng.Float64()
		})
		return out
	}
	serial := draw(1)
	for _, workers := range []int{2, 8, 32} {
		if got := draw(workers); got != serial {
			t.Fatalf("workers=%d: draws differ from serial", workers)
		}
	}
}

// TestForEachSeededScratchReuse checks the reseeded-scratch fast path
// against the original Split semantics: repeated fan-outs on one pool
// (children reused and reseeded) must see exactly the streams fresh
// Split children would, including when n shrinks between calls.
func TestForEachSeededScratchReuse(t *testing.T) {
	p := New(2)
	for _, n := range []int{16, 7, 16, 3} {
		parent := stats.NewRNG(42)
		want := make([]float64, n)
		for i := range want {
			want[i] = parent.Split().Float64()
		}
		got := make([]float64, n)
		p.ForEachSeeded(n, stats.NewRNG(42), func(i int, rng *stats.RNG) {
			got[i] = rng.Float64()
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: task %d drew %v, Split reference drew %v", n, i, got[i], want[i])
			}
		}
	}
}
