package parallel

import (
	"testing"

	"videodrift/internal/analysis/leakcheck"
)

// TestMain gates the package on the leakcheck harness (DESIGN.md §15):
// any pool or job goroutine still alive after the tests fails the run.
// The shared pools' parked workers are process-lifetime by design
// (see sharedPools) and are waived by name.
func TestMain(m *testing.M) {
	leakcheck.Main(m,
		leakcheck.Allow("videodrift/internal/parallel.(*Pool).spawn.func1"))
}
