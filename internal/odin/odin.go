// Package odin implements the ODIN baseline (Suprem et al., VLDB 2020) as
// the paper describes it in §6: ODIN-Detect maintains a set of frame
// clusters, each with a centroid and a density band enclosing a fraction
// Δ = 0.5 of its members; frames that fit no cluster open a temporary
// cluster, which is promoted to permanent (declaring a drift) when the KL
// divergence of its distance distribution before and after adding a frame
// drops below 0.007; ODIN-Select assigns every incoming frame to one or
// more permanent clusters and runs the associated model, or an
// equal-weight ensemble when the frame falls inside several bands;
// ODIN-Specialize trains a model for a freshly promoted cluster.
//
// Clustering operates on the same frame features the Drift Inspector uses
// (vision.Featurize), so the comparison isolates the algorithms rather
// than the representations. Unlike DI, ODIN does cluster maintenance on
// every frame — the per-frame cost the paper's Tables 6–9 measure.
package odin

import (
	"math"
	"sort"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

// Config carries ODIN's published hyperparameters plus the implementation
// knobs of this reproduction.
type Config struct {
	Delta        float64 // density-band mass (paper: 0.5)
	KLThreshold  float64 // temporary-cluster promotion threshold (paper: 0.007)
	MinTempSize  int     // members required before testing promotion
	AssignSlack  float64 // cluster assignment reach beyond the band, in band widths
	MaxDistances int     // per-cluster reservoir of member distances
	KLBins       int     // histogram bins for the promotion test
	TempMaxGap   int     // frames a temporary cluster may go untouched before being discarded
}

// DefaultConfig returns the paper's Δ and KL threshold with reproduction
// defaults for the unstated knobs.
func DefaultConfig() Config {
	return Config{
		Delta:        0.5,
		KLThreshold:  0.007,
		MinTempSize:  36,
		AssignSlack:  2.0,
		MaxDistances: 512,
		KLBins:       12,
		TempMaxGap:   10,
	}
}

// Cluster is one ODIN frame cluster.
type Cluster struct {
	ID        int
	Permanent bool

	centroid tensor.Vector
	count    int
	dists    []float64 // member distances to the centroid (reservoir)
	sorted   bool

	lastKL    float64
	lastTouch int // observer frame count at the last member addition
}

// Count returns the number of frames folded into the cluster.
func (c *Cluster) Count() int { return c.count }

// Centroid returns the cluster's running mean feature vector.
func (c *Cluster) Centroid() tensor.Vector { return c.centroid }

// band returns the density band [lower, upper] enclosing the central
// Delta mass of member distances.
func (c *Cluster) band(delta float64) (lower, upper float64) {
	if len(c.dists) == 0 {
		return 0, 0
	}
	if !c.sorted {
		sort.Float64s(c.dists)
		c.sorted = true
	}
	lo := (1 - delta) / 2
	hi := 1 - lo
	n := float64(len(c.dists) - 1)
	return c.dists[int(lo*n)], c.dists[int(hi*n)]
}

// add folds a feature vector at distance d into the cluster.
func (c *Cluster) add(x tensor.Vector, d float64, maxDists int) {
	c.count++
	if c.centroid == nil {
		c.centroid = x.Clone()
	} else {
		// Running mean: centroid += (x - centroid)/count.
		inv := 1 / float64(c.count)
		for i := range c.centroid {
			c.centroid[i] += (x[i] - c.centroid[i]) * inv
		}
	}
	if len(c.dists) < maxDists {
		c.dists = append(c.dists, d)
	} else {
		c.dists[c.count%maxDists] = d
	}
	c.sorted = false
}

// distHistogram builds the histogram of member distances used by the
// promotion KL test.
func (c *Cluster) distHistogram(bins int) *stats.Histogram {
	hi := 0.0
	for _, d := range c.dists {
		if d > hi {
			hi = d
		}
	}
	if hi <= 0 {
		hi = 1e-9
	}
	h := stats.NewHistogram(0, hi*1.01, bins)
	for _, d := range c.dists {
		h.Add(d)
	}
	return h
}

// Detector is ODIN-Detect: online clustering with drift declaration on
// temporary-cluster promotion. It is not safe for concurrent use.
type Detector struct {
	cfg    Config
	w, h   int
	nextID int
	frames int // observation counter (drives temporary-cluster aging)

	clusters []*Cluster
	temp     *Cluster
}

// NewDetector builds an ODIN-Detect instance for w×h frames.
func NewDetector(cfg Config, w, h int) *Detector {
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		panic("odin: invalid Delta")
	}
	return &Detector{cfg: cfg, w: w, h: h}
}

// Bootstrap seeds a permanent cluster from provisioned training frames —
// the models ODIN starts with — and returns its cluster ID.
func (d *Detector) Bootstrap(frames []vidsim.Frame) int {
	c := &Cluster{ID: d.nextID, Permanent: true}
	d.nextID++
	for _, f := range frames {
		x := vision.Featurize(f.Pixels, d.w, d.h)
		dist := 0.0
		if c.centroid != nil {
			dist = x.Dist(c.centroid)
		}
		c.add(x, dist, d.cfg.MaxDistances)
	}
	// Recompute member distances against the final centroid so the band
	// reflects the converged cluster.
	for i, f := range frames {
		if i >= len(c.dists) {
			break
		}
		c.dists[i] = vision.Featurize(f.Pixels, d.w, d.h).Dist(c.centroid)
	}
	c.sorted = false
	d.clusters = append(d.clusters, c)
	return c.ID
}

// Clusters returns the permanent clusters.
func (d *Detector) Clusters() []*Cluster { return d.clusters }

// Result reports what ODIN-Detect did with one frame.
type Result struct {
	Assigned []int // permanent cluster IDs whose reach contains the frame
	Drift    bool  // a temporary cluster was promoted on this frame
	Promoted int   // ID of the promoted cluster when Drift
}

// Observe folds one frame into the clustering and reports assignments and
// drift. This runs on every frame (unlike DI's sampled monitoring) and
// pays per-cluster distance, band and KL work — the cost profile behind
// the paper's Table 6.
func (d *Detector) Observe(f vidsim.Frame) Result {
	d.frames++
	x := vision.Featurize(f.Pixels, d.w, d.h)
	res := Result{Promoted: -1}

	for _, c := range d.clusters {
		dist := x.Dist(c.centroid)
		lower, upper := c.band(d.cfg.Delta)
		reach := upper + d.cfg.AssignSlack*(upper-lower)
		if dist <= reach {
			res.Assigned = append(res.Assigned, c.ID)
			if dist >= lower && dist <= upper {
				// In-band frames update the cluster (and its band).
				c.add(x, dist, d.cfg.MaxDistances)
			}
		}
	}
	if len(res.Assigned) > 0 {
		return res
	}

	// No permanent cluster fits: grow the temporary cluster. A stale
	// temporary cluster is discarded first: genuine drifts feed it on
	// (nearly) every frame, whereas scattered in-distribution tail frames
	// arrive with long gaps and must not accumulate into a fake drift.
	if d.temp != nil && d.frames-d.temp.lastTouch > d.cfg.TempMaxGap {
		d.temp = nil
	}
	if d.temp == nil {
		d.temp = &Cluster{ID: d.nextID}
		d.nextID++
	}
	c := d.temp
	c.lastTouch = d.frames
	var before *stats.Histogram
	if c.count >= d.cfg.MinTempSize {
		before = c.distHistogram(d.cfg.KLBins)
	}
	dist := 0.0
	if c.centroid != nil {
		dist = x.Dist(c.centroid)
	}
	c.add(x, dist, d.cfg.MaxDistances)
	if before != nil {
		after := c.distHistogram(d.cfg.KLBins)
		c.lastKL = stats.KLDivergence(after.Probabilities(), before.Probabilities())
		if c.lastKL < d.cfg.KLThreshold {
			// The temporary cluster's distribution has stabilized: promote
			// it — ODIN's drift declaration.
			c.Permanent = true
			d.clusters = append(d.clusters, c)
			d.temp = nil
			res.Drift = true
			res.Promoted = c.ID
		}
	}
	return res
}

// TempSize returns the size of the current temporary cluster (0 if none).
func (d *Detector) TempSize() int {
	if d.temp == nil {
		return 0
	}
	return d.temp.count
}

// LastKL returns the most recent promotion-test KL divergence (for
// diagnostics), or +Inf before any test ran.
func (d *Detector) LastKL() float64 {
	if d.temp == nil || d.temp.count <= d.cfg.MinTempSize {
		return math.Inf(1)
	}
	return d.temp.lastKL
}
