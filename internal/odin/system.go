package odin

import (
	"fmt"
	"time"

	"videodrift/internal/classifier"
	"videodrift/internal/stats"
	"videodrift/internal/telemetry"
	"videodrift/internal/tensor"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

// Labeler produces the query label for a frame (the annotation oracle).
type Labeler func(f vidsim.Frame) int

// Outcome reports what the ODIN system did with one frame.
type Outcome struct {
	Prediction  int
	Invocations int  // models invoked for this frame (>1 for ensembles)
	Drift       bool // a cluster was promoted on this frame
	Specialized bool // a new model was trained on this frame
}

// Metrics accumulates ODIN statistics mirroring the pipeline's.
type Metrics struct {
	Frames           int
	ModelInvocations int
	DriftsDetected   int
	ModelsTrained    int
	EnsembleFrames   int // frames processed by more than one model
}

// System is the full ODIN baseline: Detect + Select + Specialize. Frames
// flow through the clustering on every step; the frame's prediction comes
// from the model of its cluster, from an equal-weight ensemble when it
// falls in several bands (the paper's §6.2 behaviour), or from the
// nearest cluster's model while it sits in a temporary cluster. It is not
// safe for concurrent use.
type System struct {
	det      *Detector
	features vision.FeatureFunc
	labeler  Labeler
	clfCfg   classifier.Config
	rng      *stats.RNG
	w, h     int

	models    map[int]*classifier.Classifier
	tempBuf   []vidsim.Frame // frames of the current temporary cluster
	maxBuffer int

	metrics Metrics
	tracer  *telemetry.Tracer
}

// NewSystem builds an ODIN system. The labeler annotates frames for
// ODIN-Specialize; features is the classifier front-end.
func NewSystem(cfg Config, w, h int, features vision.FeatureFunc, labeler Labeler, clfCfg classifier.Config, seed int64) *System {
	if features == nil || labeler == nil {
		panic("odin: NewSystem needs features and labeler")
	}
	return &System{
		det:       NewDetector(cfg, w, h),
		features:  features,
		labeler:   labeler,
		clfCfg:    clfCfg,
		rng:       stats.NewRNG(seed),
		w:         w,
		h:         h,
		models:    map[int]*classifier.Classifier{},
		maxBuffer: 512,
	}
}

// Detector exposes the underlying ODIN-Detect instance.
func (s *System) Detector() *Detector { return s.det }

// Metrics returns the accumulated statistics.
func (s *System) Metrics() Metrics { return s.metrics }

// SetTracer attaches a telemetry tracer mirroring the pipeline's
// instrumentation: per-frame observation counts, detection and
// classification stage latencies, drift (cluster promotion) and
// specialization events. A nil tracer keeps the untraced fast path.
func (s *System) SetTracer(tr *telemetry.Tracer) { s.tracer = tr }

// Bootstrap seeds one permanent cluster and its model from provisioned
// training frames (the models available before the stream starts).
func (s *System) Bootstrap(frames []vidsim.Frame) int {
	id := s.det.Bootstrap(frames)
	s.models[id] = s.train(frames)
	return id
}

// train fits a classifier on labeler-annotated frames — ODIN-Specialize.
func (s *System) train(frames []vidsim.Frame) *classifier.Classifier {
	samples := make([]classifier.Sample, len(frames))
	for i, f := range frames {
		samples[i] = classifier.Sample{X: s.features(f.Pixels, s.w, s.h), Label: s.labeler(f)}
	}
	c := classifier.New(s.clfCfg, s.rng.Split())
	c.Fit(samples, s.rng.Split())
	return c
}

// Process runs one frame through Detect, Select and (on promotion)
// Specialize, returning the query prediction and the number of model
// invocations it cost.
func (s *System) Process(f vidsim.Frame) Outcome {
	tr := s.tracer
	s.metrics.Frames++
	tr.FrameObserved(telemetry.StateMonitoring)
	tempBefore := s.det.TempSize()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	res := s.det.Observe(f)
	if tr != nil {
		tr.ObserveStage(telemetry.StageODINDetect, time.Since(t0))
	}
	out := Outcome{}

	// Keep the Specialize buffer in sync with the detector's temporary
	// cluster: a discarded (aged-out) temp cluster must not leave stale
	// frames behind.
	if s.det.TempSize() <= 1 && tempBefore > 1 && !res.Drift {
		s.tempBuf = s.tempBuf[:0]
	}

	// Specialize BEFORE serving: a cluster promoted on this very frame is
	// already visible to nearest-cluster lookups and must have its model.
	if res.Drift {
		s.metrics.DriftsDetected++
		out.Drift = true
		tr.DriftDeclared(fmt.Sprintf("cluster-%d", res.Promoted), tempBefore, s.metrics.Frames, 0, 0, 0, nil)
		if len(s.tempBuf) > 0 {
			if tr != nil {
				t0 = time.Now()
			}
			s.models[res.Promoted] = s.train(s.tempBuf)
			if tr != nil {
				tr.ObserveStage(telemetry.StageTrain, time.Since(t0))
			}
			tr.ModelTrained(fmt.Sprintf("cluster-%d", res.Promoted), len(s.tempBuf))
			s.metrics.ModelsTrained++
			out.Specialized = true
			s.tempBuf = s.tempBuf[:0]
		} else {
			// Degenerate promotion with no buffered frames: reuse the
			// nearest pre-existing model.
			s.models[res.Promoted] = s.models[s.nearestModeled(f, res.Promoted)]
		}
	}

	if tr != nil {
		t0 = time.Now()
	}
	x := s.features(f.Pixels, s.w, s.h)
	switch {
	case len(res.Assigned) == 1:
		out.Prediction = s.models[res.Assigned[0]].Predict(x)
		out.Invocations = 1
	case len(res.Assigned) > 1:
		// Equal-weight ensemble across the assigned clusters' models.
		var mix tensor.Vector
		for _, id := range res.Assigned {
			p := s.models[id].PredictProba(x)
			if mix == nil {
				mix = p.Clone()
			} else {
				mix.AddInPlace(p)
			}
		}
		out.Prediction = mix.ArgMax()
		out.Invocations = len(res.Assigned)
		s.metrics.EnsembleFrames++
	default:
		// Temporary-cluster frame: buffer it for Specialize and serve it
		// with the nearest permanent cluster's model.
		if len(s.tempBuf) < s.maxBuffer {
			s.tempBuf = append(s.tempBuf, f)
		}
		out.Prediction = s.models[s.nearestCluster(f)].Predict(x)
		out.Invocations = 1
	}
	if tr != nil {
		tr.ObserveStage(telemetry.StageClassify, time.Since(t0))
	}
	s.metrics.ModelInvocations += out.Invocations
	return out
}

// nearestCluster returns the permanent cluster whose centroid is closest
// to the frame in the detector's feature space. It panics when no cluster
// exists (Bootstrap must run first).
func (s *System) nearestCluster(f vidsim.Frame) int {
	return s.nearestModeled(f, -1)
}

// nearestModeled is nearestCluster, optionally excluding one cluster ID
// (used during promotion, when the promoted cluster has no model yet).
func (s *System) nearestModeled(f vidsim.Frame, exclude int) int {
	x := vision.Featurize(f.Pixels, s.w, s.h)
	best, bestDist := -1, 0.0
	for _, c := range s.det.Clusters() {
		if c.ID == exclude {
			continue
		}
		if d := x.Dist(c.Centroid()); best < 0 || d < bestDist {
			best, bestDist = c.ID, d
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("odin: no permanent clusters (bootstrap first); frame dim %d", len(x)))
	}
	return best
}
