package odin

import (
	"testing"

	"videodrift/internal/classifier"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

const (
	testW = 16
	testH = 16
)

func lightTraffic(c vidsim.Condition) vidsim.Condition {
	c.CarRate = 3.5
	c.BusRate = 0
	return c
}

func testLabeler(f vidsim.Frame) int {
	c := f.CountClass(vidsim.Car)
	if c >= 6 {
		c = 5
	}
	return c
}

func testClfConfig() classifier.Config {
	return classifier.Config{InputDim: vision.QueryDim, HiddenDim: 24, NumClasses: 6, LR: 5e-3, Epochs: 10}
}

func trainFrames(cond vidsim.Condition, n int, seed int64) []vidsim.Frame {
	return vidsim.GenerateTraining(cond, testW, testH, n, seed)
}

func liveFrames(cond vidsim.Condition, n int, seed int64) []vidsim.Frame {
	return vidsim.GenerateTrainingStride(cond, testW, testH, n, 1, seed)
}

func TestDetectorAssignsInDistribution(t *testing.T) {
	d := NewDetector(DefaultConfig(), testW, testH)
	day := lightTraffic(vidsim.Day())
	d.Bootstrap(trainFrames(day, 150, 1))
	unassigned := 0
	for _, f := range liveFrames(day, 200, 2) {
		res := d.Observe(f)
		if res.Drift {
			t.Fatal("false drift on in-distribution frames")
		}
		if len(res.Assigned) == 0 {
			unassigned++
		}
	}
	if unassigned > 20 {
		t.Errorf("%d/200 in-distribution frames unassigned", unassigned)
	}
}

func TestDetectorPromotesNovelDistribution(t *testing.T) {
	d := NewDetector(DefaultConfig(), testW, testH)
	d.Bootstrap(trainFrames(lightTraffic(vidsim.Day()), 150, 3))
	lag := -1
	for i, f := range liveFrames(lightTraffic(vidsim.Night()), 400, 4) {
		if d.Observe(f).Drift {
			lag = i + 1
			break
		}
	}
	if lag < 0 {
		t.Fatal("ODIN-Detect never promoted the novel cluster")
	}
	if lag < DefaultConfig().MinTempSize {
		t.Errorf("promotion after only %d frames", lag)
	}
	if len(d.Clusters()) != 2 {
		t.Errorf("clusters = %d, want 2", len(d.Clusters()))
	}
}

func TestClusterBandEnclosesDelta(t *testing.T) {
	d := NewDetector(DefaultConfig(), testW, testH)
	day := lightTraffic(vidsim.Day())
	d.Bootstrap(trainFrames(day, 200, 5))
	c := d.Clusters()[0]
	lower, upper := c.band(0.5)
	if lower >= upper {
		t.Fatalf("band [%v, %v] degenerate", lower, upper)
	}
	inside := 0
	for _, dist := range c.dists {
		if dist >= lower && dist <= upper {
			inside++
		}
	}
	frac := float64(inside) / float64(len(c.dists))
	if frac < 0.4 || frac > 0.65 {
		t.Errorf("band encloses %.2f of members, want ~0.5", frac)
	}
}

func TestDetectorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid Delta did not panic")
		}
	}()
	NewDetector(Config{Delta: 0}, 8, 8)
}

func TestSystemServesAndSpecializes(t *testing.T) {
	day := lightTraffic(vidsim.Day())
	night := lightTraffic(vidsim.Night())
	s := NewSystem(DefaultConfig(), testW, testH, vision.QueryFeatures, testLabeler, testClfConfig(), 7)
	s.Bootstrap(trainFrames(day, 150, 8))
	s.Bootstrap(trainFrames(night, 150, 9))

	for _, f := range liveFrames(day, 150, 10) {
		out := s.Process(f)
		if out.Invocations < 1 {
			t.Fatal("frame processed with no model invocation")
		}
		if out.Drift {
			t.Fatal("false drift on provisioned day condition")
		}
	}

	// A novel condition must eventually promote and specialize.
	specialized := false
	for _, f := range liveFrames(lightTraffic(vidsim.SnowCond()), 500, 11) {
		out := s.Process(f)
		if out.Specialized {
			specialized = true
			break
		}
	}
	if !specialized {
		t.Fatal("ODIN never specialized on the novel condition")
	}
	m := s.Metrics()
	if m.DriftsDetected < 1 || m.ModelsTrained < 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.ModelInvocations < m.Frames {
		t.Errorf("invocations %d < frames %d", m.ModelInvocations, m.Frames)
	}
}

func TestSystemEnsembleOnOverlappingClusters(t *testing.T) {
	day := lightTraffic(vidsim.Day())
	s := NewSystem(DefaultConfig(), testW, testH, vision.QueryFeatures, testLabeler, testClfConfig(), 12)
	// Two clusters bootstrapped from the same condition have overlapping
	// bands, so frames should regularly land in both — the ensemble path
	// the paper's Figure 6 counts.
	s.Bootstrap(trainFrames(day, 120, 13))
	s.Bootstrap(trainFrames(day, 120, 14))
	multi := 0
	for _, f := range liveFrames(day, 100, 15) {
		if s.Process(f).Invocations > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("overlapping clusters never produced an ensemble")
	}
	if s.Metrics().EnsembleFrames != multi {
		t.Errorf("EnsembleFrames = %d, want %d", s.Metrics().EnsembleFrames, multi)
	}
}

func TestSystemValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil labeler did not panic")
		}
	}()
	NewSystem(DefaultConfig(), 8, 8, vision.QueryFeatures, nil, testClfConfig(), 1)
}

func TestSystemPredictionQuality(t *testing.T) {
	day := lightTraffic(vidsim.Day())
	s := NewSystem(DefaultConfig(), testW, testH, vision.QueryFeatures, testLabeler, testClfConfig(), 16)
	s.Bootstrap(trainFrames(day, 200, 17))
	correct, total := 0, 0
	for _, f := range liveFrames(day, 150, 18) {
		out := s.Process(f)
		if out.Prediction == testLabeler(f) {
			correct++
		}
		total++
	}
	acc := float64(correct) / float64(total)
	if acc < 0.35 {
		t.Errorf("in-distribution ODIN accuracy = %v, suspiciously low", acc)
	}
}
