package vision

import (
	"math"
	"testing"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
	"videodrift/internal/vidsim"
)

func renderFrames(cond vidsim.Condition, n int, seed int64) []vidsim.Frame {
	return vidsim.GenerateTraining(cond, 16, 16, n, seed)
}

func centroidOf(frames []vidsim.Frame, fn func(tensor.Vector, int, int) tensor.Vector) tensor.Vector {
	var c tensor.Vector
	for _, f := range frames {
		x := fn(f.Pixels, f.W, f.H)
		if c == nil {
			c = tensor.NewVector(len(x))
		}
		c.AddInPlace(x)
	}
	return c.Scale(1 / float64(len(frames)))
}

func TestFeaturizeDims(t *testing.T) {
	f := renderFrames(vidsim.Day(), 1, 1)[0]
	if got := len(Featurize(f.Pixels, 16, 16)); got != 4 {
		t.Errorf("Featurize dim = %d", got)
	}
	if got := len(QueryFeatures(f.Pixels, 16, 16)); got != QueryDim {
		t.Errorf("QueryFeatures dim = %d, want %d", got, QueryDim)
	}
}

func TestFeaturizeDeterministic(t *testing.T) {
	f := renderFrames(vidsim.Night(), 1, 2)[0]
	a := Featurize(f.Pixels, 16, 16)
	b := Featurize(f.Pixels, 16, 16)
	if a.Dist(b) != 0 {
		t.Error("Featurize not deterministic")
	}
}

// TestFeaturizeCountInvariance is the core design property: the same
// condition at different traffic volumes stays close in feature space,
// while different conditions separate.
func TestFeaturizeCountInvariance(t *testing.T) {
	// The invariance holds while objects stay a minority of the frame
	// (median/MAD robustness breaks down as coverage approaches 50%); a
	// 3.5x traffic swing within that domain must move features far less
	// than a condition change.
	sparse := vidsim.Day()
	sparse.CarRate, sparse.BusRate = 2, 0
	dense := vidsim.Day()
	dense.CarRate, dense.BusRate = 7, 0

	cSparse := centroidOf(renderFrames(sparse, 80, 3), Featurize)
	cDense := centroidOf(renderFrames(dense, 80, 4), Featurize)
	cNight := centroidOf(renderFrames(vidsim.Night(), 80, 5), Featurize)

	within := cSparse.Dist(cDense)
	across := cSparse.Dist(cNight)
	if across < 3*within {
		t.Errorf("count shift moved features %v, condition shift %v — want strong invariance", within, across)
	}
}

// TestQueryFeaturesCountSensitivity is the complementary property: the
// query features must move with traffic volume.
func TestQueryFeaturesCountSensitivity(t *testing.T) {
	sparse := vidsim.Day()
	sparse.CarRate, sparse.BusRate = 2, 0
	dense := vidsim.Day()
	dense.CarRate, dense.BusRate = 12, 0

	cSparse := centroidOf(renderFrames(sparse, 60, 6), QueryFeatures)
	cDense := centroidOf(renderFrames(dense, 60, 7), QueryFeatures)
	// Total occupancy (dim 0) must grow with traffic.
	if cDense[0] <= cSparse[0]*1.5 {
		t.Errorf("occupancy did not track count: sparse %v dense %v", cSparse[0], cDense[0])
	}
}

func TestFeaturizeEmptyFrameSmooth(t *testing.T) {
	// A uniform background frame (no objects) must have zero object dims
	// and background dims matching the render.
	px := make(tensor.Vector, 256)
	rng := stats.NewRNG(8)
	for i := range px {
		px[i] = 0.6 + rng.Normal(0, 0.03)
	}
	x := Featurize(px, 16, 16)
	if math.Abs(x[0]-0.6) > 0.02 {
		t.Errorf("bg level = %v", x[0])
	}
	if math.Abs(x[2]) > 0.05 || math.Abs(x[3]) > 0.05 {
		t.Errorf("object dims on empty frame = %v, %v — want ~0", x[2], x[3])
	}
	// One object fades the dim in smoothly, not discontinuously.
	for i := 0; i < 6; i++ { // a 6-pixel sliver of object
		px[100+i] = 0.2
	}
	x1 := Featurize(px, 16, 16)
	if x1[2] >= 0 || x1[2] < -0.5 {
		t.Errorf("dark dim with tiny object = %v", x1[2])
	}
}

func TestConditionsSeparateInFeatureSpace(t *testing.T) {
	conds := []vidsim.Condition{vidsim.Day(), vidsim.Night(), vidsim.RainCond(), vidsim.SnowCond()}
	centroids := make([]tensor.Vector, len(conds))
	for i, c := range conds {
		centroids[i] = centroidOf(renderFrames(c, 60, int64(10+i)), Featurize)
	}
	for i := 0; i < len(conds); i++ {
		for j := i + 1; j < len(conds); j++ {
			if d := centroids[i].Dist(centroids[j]); d < 0.1 {
				t.Errorf("%s vs %s feature distance = %v, too close",
					conds[i].Name, conds[j].Name, d)
			}
		}
	}
}

func TestFeaturizeFramesBatch(t *testing.T) {
	frames := renderFrames(vidsim.Day(), 5, 20)
	pix := make([]tensor.Vector, len(frames))
	for i, f := range frames {
		pix[i] = f.Pixels
	}
	batch := FeaturizeFrames(pix, 16, 16)
	if len(batch) != 5 {
		t.Fatalf("batch length = %d", len(batch))
	}
	for i := range batch {
		if batch[i].Dist(Featurize(pix[i], 16, 16)) != 0 {
			t.Fatal("batch does not match single calls")
		}
	}
}

func TestMedianOf(t *testing.T) {
	if medianOf(nil, 7) != 7 {
		t.Error("empty fallback wrong")
	}
	if medianOf([]float64{3, 1, 2}, 0) != 2 {
		t.Error("median wrong")
	}
}

// TestFeaturizerMatchesFeaturize pins the scratch-reuse fast path to the
// allocating reference: outputs must be bit-identical across a spread of
// frames, and consecutive calls must not contaminate each other through
// the reused buffers.
func TestFeaturizerMatchesFeaturize(t *testing.T) {
	var fz Featurizer
	for _, cond := range []vidsim.Condition{vidsim.Day(), vidsim.Night(), vidsim.RainCond()} {
		g := vidsim.NewSceneGenerator(cond, 32, 32, stats.NewRNG(77))
		for i := 0; i < 50; i++ {
			f := g.Next()
			want := Featurize(f.Pixels, f.W, f.H)
			got := fz.Appearance(f.Pixels, f.W, f.H)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s frame %d dim %d: Featurizer %v != Featurize %v", cond.Name, i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestFeaturizerSteadyStateAllocs asserts the hot path stops allocating
// once the scratch buffers have grown to the frame's outlier pool size.
func TestFeaturizerSteadyStateAllocs(t *testing.T) {
	g := vidsim.NewSceneGenerator(vidsim.Day(), 32, 32, stats.NewRNG(78))
	f := g.Next()
	var fz Featurizer
	fz.Appearance(f.Pixels, f.W, f.H) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() { fz.Appearance(f.Pixels, f.W, f.H) })
	if allocs != 0 {
		t.Errorf("steady-state Appearance allocates %v objects/op, want 0", allocs)
	}
}
