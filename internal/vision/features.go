// Package vision holds the frame feature extractors shared by the drift
// detector and the query classifiers — the hand-rolled stand-in for the
// convolutional feature hierarchies the paper's models learn (DESIGN.md
// §2). Two views of a frame are exposed:
//
//   - Featurize: count-invariant appearance statistics, which the Drift
//     Inspector's non-conformity measure runs on;
//   - QueryFeatures: count-sensitive occupancy statistics, which the
//     count/spatial query classifiers and MSBO ensembles run on.
package vision

import (
	"sort"

	"videodrift/internal/tensor"
)

// Featurize summarizes a w×h frame into the count-invariant appearance
// vector the Drift Inspector's non-conformity measure operates on:
//
//	[bg level, noise scale, dark-object intensity, bright-object/weather
//	 intensity]
//
// All four are robust statistics of the pixel distribution: median,
// scaled MAD, and the presence-weighted medians of the dark and bright
// outlier pools.
//
// Every component is chosen to be invariant both to how MANY objects are
// in the frame and to WHERE they currently sit: traffic volume fluctuates
// constantly within a condition (bursts and lulls last dozens of frames)
// and a given arrangement of objects persists for the objects' lifetimes,
// so any count- or configuration-sensitive statistic — raw pixels,
// intensity histograms, per-band object shares — hands the martingale
// long runs of small p-values and fakes drifts. What the components do
// move under is exactly what the datasets' drifts change: background
// brightness (day/night), noise and bright speckle texture (rain/snow),
// object appearance (camera angles, which in these datasets always shift
// background and vehicle contrast along with the geometry).
//
// The paper computes the measure directly on frames; distances over this
// summary are the same average-Euclidean construction over an
// appearance-sufficient statistic of the frame (DESIGN.md §2 discusses
// the substitution).
func Featurize(pixels tensor.Vector, w, h int) tensor.Vector {
	const madScale = 4.0
	n := len(pixels)
	med, sigma := medSigma(pixels)
	cut := 3 * sigma
	if cut < 0.08 {
		cut = 0.08
	}

	// Outlier pools: object/weather pixels on either side of the
	// background.
	var dark, bright []float64
	for _, p := range pixels {
		d := p - med
		if d > cut {
			bright = append(bright, p)
		} else if d < -cut {
			dark = append(dark, p)
		}
	}

	// Object-appearance dims are presence-weighted: they fade smoothly to
	// zero as the outlier pool empties, so a frame with no vehicles on the
	// road sits next to sparse frames in feature space instead of jumping
	// to a discontinuous fallback (empty-road lulls last dozens of frames
	// and must not read as drift). Presence saturates at ~one object's
	// worth of pixels.
	presence := func(count int) float64 {
		p := float64(count) / (0.02 * float64(n))
		if p > 1 {
			return 1
		}
		return p
	}
	out := make(tensor.Vector, 4)
	out[0] = med
	out[1] = madScale * sigma
	out[2] = (medianOf(dark, med) - med) * presence(len(dark))
	out[3] = (medianOf(bright, med) - med) * presence(len(bright))
	return out
}

// medSigma returns the pixel median and the scaled median absolute
// deviation using fixed histograms — O(n) with a small constant, which
// matters because every frame on the monitoring hot path passes through
// here. Bin resolution is chosen so quantization stays well below the
// features' natural in-distribution spread.
func medSigma(pixels tensor.Vector) (med, sigma float64) {
	const bins = 1024
	var hist [bins]int
	for _, p := range pixels {
		b := int(p * bins)
		if b >= bins {
			b = bins - 1
		} else if b < 0 {
			b = 0
		}
		hist[b]++
	}
	half := (len(pixels) + 1) / 2
	acc := 0
	medBin := 0
	for b, c := range hist {
		acc += c
		if acc >= half {
			medBin = b
			break
		}
	}
	med = (float64(medBin) + 0.5) / bins
	// Noise scale: the 35th percentile of |p − med|, scaled to estimate a
	// Gaussian σ (q35 of |N(0,σ)| = 0.4538σ). The 35th percentile stays
	// inside the background pixel population as long as objects cover
	// less than ~65% of the frame, so — unlike the classic MAD — the
	// estimate does not inflate during dense-traffic bursts.
	// Deviations are small (noise-scale), so they get a finer grid over
	// [0, 0.5] — the σ scale-up would otherwise amplify bin quantization
	// into the feature itself.
	const devBins = 2048
	var dev [devBins]int
	for _, p := range pixels {
		d := p - med
		if d < 0 {
			d = -d
		}
		b := int(d * 2 * devBins)
		if b >= devBins {
			b = devBins - 1
		}
		dev[b]++
	}
	q35 := (len(pixels)*35 + 99) / 100
	acc = 0
	for b, c := range dev {
		acc += c
		if acc >= q35 {
			sigma = (float64(b) + 0.5) / (2 * devBins) / 0.4538
			break
		}
	}
	return med, sigma
}

// medianOf returns the median of xs, or fallback when xs is empty. The
// slice is sorted in place.
func medianOf(xs []float64, fallback float64) float64 {
	if len(xs) == 0 {
		return fallback
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// FeaturizeFrames maps Featurize over a batch of equal-size frames.
func FeaturizeFrames(frames []tensor.Vector, w, h int) []tensor.Vector {
	out := make([]tensor.Vector, len(frames))
	for i, f := range frames {
		out[i] = Featurize(f, w, h)
	}
	return out
}

// QueryDim is the length of the vector QueryFeatures returns.
const QueryDim = 9

// QueryFeatures summarizes a w×h frame into the count-sensitive feature
// vector the query classifiers consume: outlier-run occupancy split by
// contrast polarity (dark/bright) and by run length (car-sized runs,
// shorter than 7 pixels, versus bus-sized runs), plus the appearance
// statistics Featurize uses. Car-run occupancy tracks how much car mass
// is in the frame — the learnable signal for count queries, with bus mass
// factored out so one bus does not read as three cars. Crucially there is
// NO polarity-agnostic occupancy: a model trained where vehicles are
// darker than the road learns to count dark mass, which reads zero when
// the scene flips to bright-vehicles-on-dark-road — and the
// pixels-per-vehicle slope depends on the condition's object scale — so a
// classifier trained under one condition degrades under another, the
// premise of the paper's §5.2 that the whole model-selection problem
// rests on.
func QueryFeatures(pixels tensor.Vector, w, h int) tensor.Vector {
	const (
		occWeight = 8.0 // occupancy fractions are small; scale them up
		madScale  = 4.0
		busRun    = 7
	)
	n := len(pixels)
	med, sigma := medSigma(pixels)
	cut := 3 * sigma
	if cut < 0.08 {
		cut = 0.08
	}

	// Outlier pools for intensity dims, and polarity/size-split run
	// masses: mass[polarity][size] with polarity 0 = dark, 1 = bright and
	// size 0 = car-run, 1 = bus-run.
	var dark, bright []float64
	var mass [2][2]float64
	for y := 0; y < h; y++ {
		row := pixels[y*w : (y+1)*w]
		runStart := -1
		runSum := 0.0
		flush := func(end int) {
			if runStart < 0 {
				return
			}
			length := end - runStart
			pol, size := 0, 0
			if runSum > 0 {
				pol = 1
			}
			if length >= busRun {
				size = 1
			}
			if length >= 2 {
				mass[pol][size] += float64(length)
			}
			runStart = -1
			runSum = 0
		}
		for x := 0; x < w; x++ {
			p := row[x]
			d := p - med
			switch {
			case d > cut:
				bright = append(bright, p)
			case d < -cut:
				dark = append(dark, p)
			default:
				flush(x)
				continue
			}
			if runStart < 0 {
				runStart = x
			}
			runSum += d
		}
		flush(w)
	}

	out := make(tensor.Vector, QueryDim)
	out[0] = occWeight * mass[0][0] / float64(n) // dark car-runs
	out[1] = occWeight * mass[0][1] / float64(n) // dark bus-runs
	out[2] = occWeight * mass[1][0] / float64(n) // bright car-runs
	out[3] = occWeight * mass[1][1] / float64(n) // bright bus-runs
	out[4] = med
	out[5] = madScale * sigma
	// Presence-weighted object intensities (see Featurize).
	presence := func(count int) float64 {
		p := float64(count) / (0.02 * float64(n))
		if p > 1 {
			return 1
		}
		return p
	}
	out[6] = (medianOf(dark, med) - med) * presence(len(dark))
	out[7] = (medianOf(bright, med) - med) * presence(len(bright))
	out[8] = 1 // bias-like constant anchoring the scale
	return out
}

// FeatureFunc is the signature shared by all frame featurizers.
type FeatureFunc func(pixels tensor.Vector, w, h int) tensor.Vector

// SpatialDim is the length of the vector SpatialFeatures returns.
const SpatialDim = QueryDim + 16

// SpatialFeatures extends QueryFeatures with horizontal layout
// statistics, the front-end for spatial-constrained query classifiers
// ("bus is on the left side of a car", §6.3.2): for each vertical quarter
// of the frame's columns, the occupancy of bus-sized outlier runs
// (horizontal runs of at least 7 object pixels) and of car-sized runs
// (shorter runs), split by contrast polarity. A model can read
// class-specific left-to-right layout from these — and, as with
// QueryFeatures, the polarity split keeps the learned layout features
// condition-specific, so cross-condition degradation carries over.
func SpatialFeatures(pixels tensor.Vector, w, h int) tensor.Vector {
	const (
		quarters  = 4
		busRun    = 7
		occWeight = 16.0
	)
	base := QueryFeatures(pixels, w, h)
	med := base[4] // background level, already computed
	sigma := base[5] / 4
	cut := 3 * sigma
	if cut < 0.08 {
		cut = 0.08
	}

	// mass[polarity][size][quarter]: polarity 0 = dark, 1 = bright;
	// size 0 = car-run, 1 = bus-run.
	var mass [2][2][quarters]float64
	for y := 0; y < h; y++ {
		row := pixels[y*w : (y+1)*w]
		runStart := -1
		runSum := 0.0
		flush := func(end int) {
			if runStart < 0 {
				return
			}
			length := end - runStart
			q := (runStart + end) / 2 * quarters / w
			if q >= quarters {
				q = quarters - 1
			}
			pol := 0
			if runSum > 0 {
				pol = 1
			}
			size := 0
			if length >= busRun {
				size = 1
			}
			if length >= 2 {
				mass[pol][size][q] += float64(length)
			}
			runStart = -1
			runSum = 0
		}
		for x := 0; x < w; x++ {
			d := row[x] - med
			if d > cut || d < -cut {
				if runStart < 0 {
					runStart = x
				}
				runSum += d
			} else {
				flush(x)
			}
		}
		flush(w)
	}

	out := make(tensor.Vector, SpatialDim)
	copy(out, base)
	n := float64(len(pixels))
	i := QueryDim
	for pol := 0; pol < 2; pol++ {
		for size := 0; size < 2; size++ {
			for q := 0; q < quarters; q++ {
				out[i] = occWeight * mass[pol][size][q] / n
				i++
			}
		}
	}
	return out
}
