// Package vision holds the frame feature extractors shared by the drift
// detector and the query classifiers — the hand-rolled stand-in for the
// convolutional feature hierarchies the paper's models learn (DESIGN.md
// §2). Two views of a frame are exposed:
//
//   - Featurize: count-invariant appearance statistics, which the Drift
//     Inspector's non-conformity measure runs on;
//   - QueryFeatures: count-sensitive occupancy statistics, which the
//     count/spatial query classifiers and MSBO ensembles run on.
package vision

import (
	"math"
	"reflect"
	"sort"

	"videodrift/internal/tensor"
)

// Featurize summarizes a w×h frame into the count-invariant appearance
// vector the Drift Inspector's non-conformity measure operates on:
//
//	[bg level, noise scale, dark-object intensity, bright-object/weather
//	 intensity]
//
// All four are robust statistics of the pixel distribution: median,
// scaled MAD, and the presence-weighted medians of the dark and bright
// outlier pools.
//
// Every component is chosen to be invariant both to how MANY objects are
// in the frame and to WHERE they currently sit: traffic volume fluctuates
// constantly within a condition (bursts and lulls last dozens of frames)
// and a given arrangement of objects persists for the objects' lifetimes,
// so any count- or configuration-sensitive statistic — raw pixels,
// intensity histograms, per-band object shares — hands the martingale
// long runs of small p-values and fakes drifts. What the components do
// move under is exactly what the datasets' drifts change: background
// brightness (day/night), noise and bright speckle texture (rain/snow),
// object appearance (camera angles, which in these datasets always shift
// background and vehicle contrast along with the geometry).
//
// The paper computes the measure directly on frames; distances over this
// summary are the same average-Euclidean construction over an
// appearance-sufficient statistic of the frame (DESIGN.md §2 discusses
// the substitution).
func Featurize(pixels tensor.Vector, w, h int) tensor.Vector {
	out := make(tensor.Vector, AppearanceDim)
	appearanceInto(pixels, out, nil, nil, nil)
	return out
}

// AppearanceDim is the length of the vector Featurize returns.
const AppearanceDim = 4

// AppearanceDimNames names the appearance dimensions in vector order,
// for human-readable drift attribution ("which statistic moved").
var AppearanceDimNames = [AppearanceDim]string{
	"background",     // pixel median: scene brightness (day/night)
	"noise_scale",    // scaled MAD: sensor noise and weather texture
	"dark_objects",   // presence-weighted dark-outlier intensity
	"bright_objects", // presence-weighted bright-outlier/weather intensity
}

// Featurizer computes the same appearance vector as Featurize while
// reusing its outlier-pool and output scratch across calls — the
// zero-steady-state-allocation form the per-frame monitoring hot path
// uses. Outputs are bit-identical to Featurize. A Featurizer is NOT safe
// for concurrent use; give each goroutine its own (the zero value is
// ready to use).
type Featurizer struct {
	dark, bright, cand []float64
	out                tensor.Vector
}

// Appearance featurizes one frame. The returned vector is the
// Featurizer's internal buffer: it is overwritten by the next call, so
// callers that retain it must Clone it.
func (fz *Featurizer) Appearance(pixels tensor.Vector, w, h int) tensor.Vector {
	if fz.out == nil {
		fz.out = make(tensor.Vector, AppearanceDim)
	}
	fz.dark, fz.bright, fz.cand = appearanceInto(pixels, fz.out, fz.dark[:0], fz.bright[:0], fz.cand[:0])
	return fz.out
}

// appearanceInto computes the appearance features into out, using (and
// returning) the provided outlier-pool and candidate scratch.
func appearanceInto(pixels tensor.Vector, out tensor.Vector, dark, bright, cand []float64) ([]float64, []float64, []float64) {
	const madScale = 4.0
	n := len(pixels)
	if cand == nil {
		cand = make([]float64, 0, 64)
	}
	med, sigma, cand := medSigmaCand(pixels, cand)
	cut := 3 * sigma
	if cut < 0.08 {
		cut = 0.08
	}

	// Outlier pools: object/weather pixels on either side of the
	// background. Only the candidate superset (|p − med| > candCut <= cut,
	// collected during the deviation pass) needs re-testing against the
	// final cut; the pools come out in pixel order, exactly as a full
	// re-scan would produce them.
	for _, p := range cand {
		d := p - med
		if d > cut {
			bright = append(bright, p)
		} else if d < -cut {
			dark = append(dark, p)
		}
	}

	// Object-appearance dims are presence-weighted: they fade smoothly to
	// zero as the outlier pool empties, so a frame with no vehicles on the
	// road sits next to sparse frames in feature space instead of jumping
	// to a discontinuous fallback (empty-road lulls last dozens of frames
	// and must not read as drift). Presence saturates at ~one object's
	// worth of pixels.
	presence := func(count int) float64 {
		p := float64(count) / (0.02 * float64(n))
		if p > 1 {
			return 1
		}
		return p
	}
	out[0] = med
	out[1] = madScale * sigma
	out[2] = (medianOf(dark, med) - med) * presence(len(dark))
	out[3] = (medianOf(bright, med) - med) * presence(len(bright))
	return dark, bright, cand
}

// medSigma returns the pixel median and the scaled median absolute
// deviation using fixed histograms — O(n) with a small constant, which
// matters because every frame on the monitoring hot path passes through
// here. Bin resolution is chosen so quantization stays well below the
// features' natural in-distribution spread.
func medSigma(pixels tensor.Vector) (med, sigma float64) {
	med, sigma, _ = medSigmaCand(pixels, nil)
	return med, sigma
}

// medSigmaCand computes med and sigma as medSigma does and, when cand is
// non-nil, appends every pixel whose absolute deviation from med exceeds
// candCut — a superset of any outlier pool with cut >= candCut, collected
// during the deviation pass so Featurize needs no third full-frame scan.
// Candidates preserve pixel order. Subsampling the histograms was tried
// and rejected: even a half-population median (exact at bin granularity
// for almost every frame) perturbs the martingale chain enough to flip
// borderline drift decisions, so both passes stay full-population and
// the speed comes from fusing and from the blocked quantile scans.
func medSigmaCand(pixels tensor.Vector, cand []float64) (med, sigma float64, outCand []float64) {
	const bins = 1024
	var hist [bins]uint32
	n := len(pixels)
	// Unrolled ×4: the four bin computations are independent, so they
	// overlap instead of serializing on the loop counter.
	// The &(bins−1) masks are no-ops after the clamp (bins is a power of
	// two); they let the compiler drop the bounds check on each increment.
	i := 0
	for ; i+4 <= n; i += 4 {
		b0 := clampBin(pixels[i], bins)
		b1 := clampBin(pixels[i+1], bins)
		b2 := clampBin(pixels[i+2], bins)
		b3 := clampBin(pixels[i+3], bins)
		hist[b0&(bins-1)]++
		hist[b1&(bins-1)]++
		hist[b2&(bins-1)]++
		hist[b3&(bins-1)]++
	}
	for ; i < n; i++ {
		hist[clampBin(pixels[i], bins)&(bins-1)]++
	}
	half := uint32((n + 1) / 2)
	medBin := cumFind(hist[:], half)
	med = (float64(medBin) + 0.5) / bins
	// Noise scale: the 35th percentile of |p − med|, scaled to estimate a
	// Gaussian σ (q35 of |N(0,σ)| = 0.4538σ). The 35th percentile stays
	// inside the background pixel population as long as objects cover
	// less than ~65% of the frame, so — unlike the classic MAD — the
	// estimate does not inflate during dense-traffic bursts.
	// Deviations are small (noise-scale), so they get a finer grid over
	// [0, 0.5] — the σ scale-up would otherwise amplify bin quantization
	// into the feature itself.
	const devBins = 2048
	var dev [devBins]uint32
	if cand == nil {
		for _, p := range pixels {
			dev[devBin(p, med, devBins)]++
		}
	} else {
		// Fused loop: the |p − med| the histogram bins is the same quantity
		// the candidate test compares, so one pass does both. Unrolled ×2
		// with the candidate tests kept in pixel order.
		const devScale = 2 * float64(devBins)
		i := 0
		for ; i+2 <= n; i += 2 {
			d0 := math.Abs(pixels[i] - med)
			d1 := math.Abs(pixels[i+1] - med)
			b0 := int(d0 * devScale)
			b1 := int(d1 * devScale)
			if b0 >= devBins {
				b0 = devBins - 1
			}
			if b1 >= devBins {
				b1 = devBins - 1
			}
			dev[b0&(devBins-1)]++
			dev[b1&(devBins-1)]++
			if d0 > candCut {
				cand = append(cand, pixels[i])
			}
			if d1 > candCut {
				cand = append(cand, pixels[i+1])
			}
		}
		for ; i < n; i++ {
			d := math.Abs(pixels[i] - med)
			b := int(d * devScale)
			if b >= devBins {
				b = devBins - 1
			}
			dev[b&(devBins-1)]++
			if d > candCut {
				cand = append(cand, pixels[i])
			}
		}
	}
	q35 := uint32((n*35 + 99) / 100)
	qBin := cumFind(dev[:], q35)
	sigma = (float64(qBin) + 0.5) / (2 * devBins) / 0.4538
	return med, sigma, cand
}

// cumFind returns the first index b with hist[0]+…+hist[b] >= target —
// the quantile lookup both histogram scans perform. It walks the
// cumulative sum in 8-bin blocks and refines inside the crossing block,
// cutting the branchy per-bin loop ~8×; integer addition is associative,
// so the result is identical to a per-bin scan. The final histogram bin
// is returned when the total count never reaches target (only possible
// for an all-skipped degenerate target of 0 pixels).
func cumFind(hist []uint32, target uint32) int {
	acc := uint32(0)
	i := 0
	for ; i+8 <= len(hist); i += 8 {
		s := hist[i] + hist[i+1] + hist[i+2] + hist[i+3] +
			hist[i+4] + hist[i+5] + hist[i+6] + hist[i+7]
		if acc+s >= target {
			break
		}
		acc += s
	}
	for ; i < len(hist); i++ {
		acc += hist[i]
		if acc >= target {
			return i
		}
	}
	return len(hist) - 1
}

// candCut is the candidate-collection threshold of medSigmaCand: the
// outlier cut is max(3σ, 0.08) >= 0.08, so pixels within candCut of the
// median can never reach an outlier pool.
const candCut = 0.08

// clampBin maps a pixel in [0,1) to its histogram bin, clamping
// out-of-range values into [0, bins).
func clampBin(p float64, bins int) int {
	b := int(p * float64(bins))
	if b >= bins {
		b = bins - 1
	} else if b < 0 {
		b = 0
	}
	return b
}

// devBin maps a pixel's absolute deviation from med onto the deviation
// grid over [0, 0.5). math.Abs is branchless — the deviation's sign is
// noise, and a 50/50 branch on it would mispredict constantly.
func devBin(p, med float64, devBins int) int {
	d := math.Abs(p - med)
	b := int(d * 2 * float64(devBins))
	if b >= devBins {
		b = devBins - 1
	}
	return b
}

// medianOf returns the median of xs, or fallback when xs is empty. The
// slice is sorted in place.
func medianOf(xs []float64, fallback float64) float64 {
	if len(xs) == 0 {
		return fallback
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// FeaturizeFrames maps Featurize over a batch of equal-size frames.
func FeaturizeFrames(frames []tensor.Vector, w, h int) []tensor.Vector {
	out := make([]tensor.Vector, len(frames))
	for i, f := range frames {
		out[i] = Featurize(f, w, h)
	}
	return out
}

// QueryDim is the length of the vector QueryFeatures returns.
const QueryDim = 9

// QueryFeatures summarizes a w×h frame into the count-sensitive feature
// vector the query classifiers consume: outlier-run occupancy split by
// contrast polarity (dark/bright) and by run length (car-sized runs,
// shorter than 7 pixels, versus bus-sized runs), plus the appearance
// statistics Featurize uses. Car-run occupancy tracks how much car mass
// is in the frame — the learnable signal for count queries, with bus mass
// factored out so one bus does not read as three cars. Crucially there is
// NO polarity-agnostic occupancy: a model trained where vehicles are
// darker than the road learns to count dark mass, which reads zero when
// the scene flips to bright-vehicles-on-dark-road — and the
// pixels-per-vehicle slope depends on the condition's object scale — so a
// classifier trained under one condition degrades under another, the
// premise of the paper's §5.2 that the whole model-selection problem
// rests on.
func QueryFeatures(pixels tensor.Vector, w, h int) tensor.Vector {
	const (
		occWeight = 8.0 // occupancy fractions are small; scale them up
		madScale  = 4.0
		busRun    = 7
	)
	n := len(pixels)
	med, sigma := medSigma(pixels)
	cut := 3 * sigma
	if cut < 0.08 {
		cut = 0.08
	}

	// Outlier pools for intensity dims, and polarity/size-split run
	// masses: mass[polarity][size] with polarity 0 = dark, 1 = bright and
	// size 0 = car-run, 1 = bus-run.
	var dark, bright []float64
	var mass [2][2]float64
	for y := 0; y < h; y++ {
		row := pixels[y*w : (y+1)*w]
		runStart := -1
		runSum := 0.0
		flush := func(end int) {
			if runStart < 0 {
				return
			}
			length := end - runStart
			pol, size := 0, 0
			if runSum > 0 {
				pol = 1
			}
			if length >= busRun {
				size = 1
			}
			if length >= 2 {
				mass[pol][size] += float64(length)
			}
			runStart = -1
			runSum = 0
		}
		for x := 0; x < w; x++ {
			p := row[x]
			d := p - med
			switch {
			case d > cut:
				bright = append(bright, p)
			case d < -cut:
				dark = append(dark, p)
			default:
				flush(x)
				continue
			}
			if runStart < 0 {
				runStart = x
			}
			runSum += d
		}
		flush(w)
	}

	out := make(tensor.Vector, QueryDim)
	out[0] = occWeight * mass[0][0] / float64(n) // dark car-runs
	out[1] = occWeight * mass[0][1] / float64(n) // dark bus-runs
	out[2] = occWeight * mass[1][0] / float64(n) // bright car-runs
	out[3] = occWeight * mass[1][1] / float64(n) // bright bus-runs
	out[4] = med
	out[5] = madScale * sigma
	// Presence-weighted object intensities (see Featurize).
	presence := func(count int) float64 {
		p := float64(count) / (0.02 * float64(n))
		if p > 1 {
			return 1
		}
		return p
	}
	out[6] = (medianOf(dark, med) - med) * presence(len(dark))
	out[7] = (medianOf(bright, med) - med) * presence(len(bright))
	out[8] = 1 // bias-like constant anchoring the scale
	return out
}

// FeatureFunc is the signature shared by all frame featurizers.
type FeatureFunc func(pixels tensor.Vector, w, h int) tensor.Vector

// The built-in classifier front-end names, used by the checkpoint codec
// to serialize which FeatureFunc a model entry was provisioned with.
const (
	FeatureFuncQuery   = "query"
	FeatureFuncSpatial = "spatial"
)

// FeatureFuncName returns the registered name of a built-in classifier
// front-end (FeatureFuncQuery or FeatureFuncSpatial), or "" for nil and
// for ad-hoc functions — those cannot be serialized by name.
func FeatureFuncName(fn FeatureFunc) string {
	if fn == nil {
		return ""
	}
	switch reflect.ValueOf(fn).Pointer() {
	case reflect.ValueOf(QueryFeatures).Pointer():
		return FeatureFuncQuery
	case reflect.ValueOf(SpatialFeatures).Pointer():
		return FeatureFuncSpatial
	}
	return ""
}

// FeatureFuncByName resolves a name produced by FeatureFuncName back to
// the function, or nil for an unknown name.
func FeatureFuncByName(name string) FeatureFunc {
	switch name {
	case FeatureFuncQuery:
		return QueryFeatures
	case FeatureFuncSpatial:
		return SpatialFeatures
	}
	return nil
}

// SpatialDim is the length of the vector SpatialFeatures returns.
const SpatialDim = QueryDim + 16

// SpatialFeatures extends QueryFeatures with horizontal layout
// statistics, the front-end for spatial-constrained query classifiers
// ("bus is on the left side of a car", §6.3.2): for each vertical quarter
// of the frame's columns, the occupancy of bus-sized outlier runs
// (horizontal runs of at least 7 object pixels) and of car-sized runs
// (shorter runs), split by contrast polarity. A model can read
// class-specific left-to-right layout from these — and, as with
// QueryFeatures, the polarity split keeps the learned layout features
// condition-specific, so cross-condition degradation carries over.
func SpatialFeatures(pixels tensor.Vector, w, h int) tensor.Vector {
	const (
		quarters  = 4
		busRun    = 7
		occWeight = 16.0
	)
	base := QueryFeatures(pixels, w, h)
	med := base[4] // background level, already computed
	sigma := base[5] / 4
	cut := 3 * sigma
	if cut < 0.08 {
		cut = 0.08
	}

	// mass[polarity][size][quarter]: polarity 0 = dark, 1 = bright;
	// size 0 = car-run, 1 = bus-run.
	var mass [2][2][quarters]float64
	for y := 0; y < h; y++ {
		row := pixels[y*w : (y+1)*w]
		runStart := -1
		runSum := 0.0
		flush := func(end int) {
			if runStart < 0 {
				return
			}
			length := end - runStart
			q := (runStart + end) / 2 * quarters / w
			if q >= quarters {
				q = quarters - 1
			}
			pol := 0
			if runSum > 0 {
				pol = 1
			}
			size := 0
			if length >= busRun {
				size = 1
			}
			if length >= 2 {
				mass[pol][size][q] += float64(length)
			}
			runStart = -1
			runSum = 0
		}
		for x := 0; x < w; x++ {
			d := row[x] - med
			if d > cut || d < -cut {
				if runStart < 0 {
					runStart = x
				}
				runSum += d
			} else {
				flush(x)
			}
		}
		flush(w)
	}

	out := make(tensor.Vector, SpatialDim)
	copy(out, base)
	n := float64(len(pixels))
	i := QueryDim
	for pol := 0; pol < 2; pol++ {
		for size := 0; size < 2; size++ {
			for q := 0; q < quarters; q++ {
				out[i] = occWeight * mass[pol][size][q] / n
				i++
			}
		}
	}
	return out
}
