// Package tensor implements the small dense linear-algebra substrate that
// the neural-network, conformal and clustering code builds on: float64
// vectors and row-major matrices with the handful of BLAS-level operations
// a CPU-only training loop needs.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Add returns v + w as a new vector. It panics on length mismatch.
func (v Vector) Add(w Vector) Vector {
	checkLen(len(v), len(w), "Add")
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector. It panics on length mismatch.
func (v Vector) Sub(w Vector) Vector {
	checkLen(len(v), len(w), "Sub")
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns a*v as a new vector.
func (v Vector) Scale(a float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// AddInPlace accumulates w into v. It panics on length mismatch.
func (v Vector) AddInPlace(w Vector) {
	checkLen(len(v), len(w), "AddInPlace")
	for i := range v {
		v[i] += w[i]
	}
}

// AXPY accumulates a*w into v (v += a*w). It panics on length mismatch.
func (v Vector) AXPY(a float64, w Vector) {
	checkLen(len(v), len(w), "AXPY")
	for i := range v {
		v[i] += a * w[i]
	}
}

// Dot returns the inner product of v and w. It panics on length mismatch.
func (v Vector) Dot(w Vector) float64 {
	checkLen(len(v), len(w), "Dot")
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) float64 {
	checkLen(len(v), len(w), "Dist")
	s := 0.0
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Hadamard returns the element-wise product of v and w.
func (v Vector) Hadamard(w Vector) Vector {
	checkLen(len(v), len(w), "Hadamard")
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * w[i]
	}
	return out
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the mean of the elements of v (0 for an empty vector).
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// ArgMax returns the index of the largest element. It panics on an empty
// vector.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		panic("tensor: ArgMax of empty vector")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Clip returns a copy of v with every element clamped to [lo, hi].
func (v Vector) Clip(lo, hi float64) Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = math.Min(math.Max(x, lo), hi)
	}
	return out
}

// Fill sets every element of v to a.
func (v Vector) Fill(a float64) {
	for i := range v {
		v[i] = a
	}
}

// HasNaN reports whether v contains a NaN or infinity.
func (v Vector) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

// Softmax returns the softmax of v computed with the max-shift trick for
// numerical stability. The result sums to 1.
func Softmax(v Vector) Vector {
	if len(v) == 0 {
		return nil
	}
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	out := make(Vector, len(v))
	sum := 0.0
	for i, x := range v {
		e := math.Exp(x - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func checkLen(a, b int, op string) {
	if a != b {
		panic(fmt.Sprintf("tensor: %s length mismatch %d != %d", op, a, b))
	}
}
