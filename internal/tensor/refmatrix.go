package tensor

import (
	"math"
	"sync/atomic"
)

// RefMatrix is a reference sample flattened into one contiguous row-major
// buffer — the cache-friendly layout the hot kNN kernel iterates over.
// A []Vector reference scatters rows across the heap (one allocation per
// vector, pointer chase per row); flattening puts every row on the same
// few cache lines so the distance kernel streams through memory linearly.
// A RefMatrix is safe for concurrent readers, which is what lets many
// inspectors (and many stream shards) share one provisioned reference
// sample; the only mutation is SetRow, which must not race with readers.
//
// The matrix lazily caches per-row norms for the dot-product distance
// kernel (see DotDist); SetRow invalidates the cache, so stale norms can
// never be observed.
type RefMatrix struct {
	n, dim int
	data   []float64
	norms  atomic.Pointer[normCache]
}

// normCache holds the precomputed geometry the dot-product kernel prunes
// with. It is immutable once published (atomically) and rebuilt from
// scratch after a mutation.
type normCache struct {
	// sq[i] is |row_i|², the squared L2 norm.
	sq []float64
	// suffix[i*(blocks+1)+t] is |row_i[t*DotBlock:]|, the (sqrt'ed) L2
	// norm of the row's tail from block boundary t — what Cauchy–Schwarz
	// bounds the unseen part of a dot product with. suffix[...blocks] = 0.
	suffix []float64
	blocks int
	// maxSq is max_i sq[i], sizing the kernel's conservative slack once
	// per cache build instead of once per probe.
	maxSq float64
}

// FlattenVectors copies equal-length vectors into a contiguous RefMatrix.
// It panics on ragged input; an empty input yields an empty matrix.
func FlattenVectors(vs []Vector) *RefMatrix {
	if len(vs) == 0 {
		return &RefMatrix{}
	}
	dim := len(vs[0])
	m := &RefMatrix{n: len(vs), dim: dim, data: make([]float64, len(vs)*dim)}
	for i, v := range vs {
		if len(v) != dim {
			panic("tensor: FlattenVectors with ragged rows")
		}
		copy(m.data[i*dim:(i+1)*dim], v)
	}
	return m
}

// Len returns the number of reference rows.
func (m *RefMatrix) Len() int { return m.n }

// Dim returns the row dimensionality.
func (m *RefMatrix) Dim() int { return m.dim }

// Row returns row i as a Vector sharing the matrix's backing storage.
// Callers must not mutate it.
func (m *RefMatrix) Row(i int) Vector { return Vector(m.data[i*m.dim : (i+1)*m.dim]) }

// SqDistRow returns the squared Euclidean distance between x and row i.
// The accumulation order matches Vector.Dist exactly, so sqrt(SqDistRow)
// is bit-identical to x.Dist(m.Row(i)).
func (m *RefMatrix) SqDistRow(x Vector, i int) float64 {
	row := m.data[i*m.dim : i*m.dim+len(x)]
	s := 0.0
	for j, xv := range x {
		d := xv - row[j]
		s += d * d
	}
	return s
}

// sqDistBlock is the kernel's early-exit granularity: the partial sum is
// checked against the bound once per block of coordinates, so pruning
// costs one extra compare per block instead of one per element.
const sqDistBlock = 8

// SqDistRowBounded computes the squared distance between x and row i,
// abandoning the row as soon as the partial sum exceeds bound (partial
// sums of squares are monotone, so an abandoned row cannot be among the
// rows within bound). It returns the full squared distance and true when
// the row completed, or the partial sum and false when it was pruned.
// Completed distances are bit-identical to SqDistRow: the bound check
// never alters the accumulation itself.
func (m *RefMatrix) SqDistRowBounded(x Vector, i int, bound float64) (float64, bool) {
	row := m.data[i*m.dim : i*m.dim+len(x)]
	s := 0.0
	j := 0
	for blockEnd := sqDistBlock; blockEnd < len(x); blockEnd += sqDistBlock {
		for ; j < blockEnd; j++ {
			d := x[j] - row[j]
			s += d * d
		}
		if s > bound {
			return s, false
		}
	}
	for ; j < len(x); j++ {
		d := x[j] - row[j]
		s += d * d
	}
	return s, s <= bound
}

// SetRow overwrites row i with v (which must have the matrix's Dim) and
// invalidates the cached row norms, so the next dot-kernel call rebuilds
// them against the new data. SetRow must not race with concurrent
// readers; it exists for callers that refresh a reference sample in
// place between scoring passes.
func (m *RefMatrix) SetRow(i int, v Vector) {
	if len(v) != m.dim {
		panic("tensor: SetRow with mismatched dimension")
	}
	copy(m.data[i*m.dim:(i+1)*m.dim], v)
	m.norms.Store(nil)
}

// DotBlock is the dot-product kernel's granularity: the running lower
// bound is checked against the pruning bound once per block of
// coordinates, and the suffix-norm cache keeps one entry per block
// boundary. A multiple of 4 so blocks split evenly into the kernel's
// four accumulator lanes.
const DotBlock = 8

// SelectNearest's unrolled inner block indexes 0..7 literally; these
// zero-size guards fail to compile if DotBlock drifts from 8.
var (
	_ [DotBlock - 8]struct{}
	_ [8 - DotBlock]struct{}
)

// dotEps scales the kernel's conservative slack per dimension:
// |a−b|² = |a|²+|b|²−2a·b suffers catastrophic cancellation the direct
// subtract-square form does not, so the estimate is only trusted to
// PRUNE (with this much headroom), never as an exact distance. 64
// ulp-per-coordinate is orders of magnitude beyond the worst
// accumulated error of the three dot products involved.
const dotEps = 64 * 2.220446049250313e-16

// normCache returns the cached row geometry, building it on first use.
// Concurrent first calls may build twice; both results are identical, so
// whichever publication wins is correct.
func (m *RefMatrix) normCache() *normCache {
	if nc := m.norms.Load(); nc != nil {
		return nc
	}
	blocks := m.dim / DotBlock
	nc := &normCache{
		sq:     make([]float64, m.n),
		suffix: make([]float64, m.n*(blocks+1)),
		blocks: blocks,
	}
	for i := 0; i < m.n; i++ {
		nc.sq[i] = suffixNorms(m.data[i*m.dim:(i+1)*m.dim], nc.suffix[i*(blocks+1):(i+1)*(blocks+1)], blocks)
		if nc.sq[i] > nc.maxSq {
			nc.maxSq = nc.sq[i]
		}
	}
	m.norms.Store(nc)
	return nc
}

// suffixNorms fills suf[t] = |v[t*DotBlock:]| (sqrt'ed L2 tail norms at
// block boundaries; the last block absorbs any overhang, suf[blocks]=0)
// and returns |v|².
func suffixNorms(v Vector, suf []float64, blocks int) float64 {
	suf[blocks] = 0
	tail := 0.0
	for t := blocks - 1; t >= 0; t-- {
		end := (t + 1) * DotBlock
		if t == blocks-1 {
			end = len(v)
		}
		for j := end - 1; j >= t*DotBlock; j-- {
			tail += v[j] * v[j]
		}
		suf[t] = math.Sqrt(tail)
	}
	if blocks == 0 {
		for _, e := range v {
			tail += e * e
		}
	}
	return tail
}

// RowNorms returns |row_i|² for every row, from the lazily built cache.
// Exposed for the kernel's property tests; the slice is the cache's own
// storage and must not be mutated.
func (m *RefMatrix) RowNorms() []float64 { return m.normCache().sq }

// DotDist is a per-probe instance of the dot-product distance kernel:
// the probe's squared norm and suffix norms plus the matrix's row-norm
// cache, resolved once so the per-row loop touches no atomics and
// recomputes no probe geometry. Build one per probe with NewDotDist; it
// is scratch, valid only until the matrix mutates, and not safe for
// concurrent use.
type DotDist struct {
	m     *RefMatrix
	nc    *normCache
	x     Vector
	xn    float64
	xsuf  []float64
	slack float64 // conservative pruning headroom, valid for every row
}

// NewDotDist prepares the dot-product kernel for one probe. scratch (may
// be nil) is reused for the probe's suffix norms when it has capacity;
// retrieve it with Scratch for the next probe.
func (m *RefMatrix) NewDotDist(x Vector, scratch []float64) DotDist {
	nc := m.normCache()
	if cap(scratch) < nc.blocks+1 {
		scratch = make([]float64, nc.blocks+1)
	}
	scratch = scratch[:nc.blocks+1]
	xn := suffixNorms(x, scratch, nc.blocks)
	return DotDist{
		m:    m,
		nc:   nc,
		x:    x,
		xn:   xn,
		xsuf: scratch,
		// One slack for all rows, sized for the largest: conservative
		// (never prunes a row a per-row slack would keep) and off the
		// per-row path. The +1 keeps it positive for zero vectors.
		slack: dotEps * float64(m.dim) * (xn + nc.maxSq + 1),
	}
}

// Scratch returns the suffix-norm buffer for reuse by the next probe's
// NewDotDist.
func (d *DotDist) Scratch() []float64 { return d.xsuf }

// XNormSq returns the probe's squared norm |x|².
func (d *DotDist) XNormSq() float64 { return d.xn }

// Slack returns the kernel's pruning headroom: an estimate may only
// discard a row when it exceeds the bound by more than this.
func (d *DotDist) Slack() float64 { return d.slack }

// SqDist estimates the squared distance between the probe and row i as
// |x|²+|row|²−2·x·row, the dot product accumulated in four independent
// lanes per block — a throughput-bound kernel (independent
// multiply-adds) where the subtract-square form is latency-bound on its
// single accumulation chain. After each block the unseen tail of the dot
// product is bounded by Cauchy–Schwarz on the precomputed suffix norms:
// lb = |x|²+|b|²−2(dot_head + |x_tail||b_tail|) — which equals the
// partial squared distance plus (|x_tail|−|b_tail|)², so it prunes at
// least as early as the monotone partial-sum check of SqDistRowBounded.
//
// The return value is (estimate, candidate): candidate is false only
// when the row provably exceeds bound (the lower bound clears it by the
// kernel's slack), and true otherwise — in which case the caller must
// recompute the distance exactly (SqDistRow/SqDistRowBounded) before
// trusting it, because the lane-parallel accumulation order is NOT
// bit-compatible with the exact kernel and the −2x·b form cancels
// catastrophically for near-identical vectors.
func (d *DotDist) SqDist(i int, bound float64) (float64, bool) {
	m := d.m
	x := d.x
	xsuf := d.xsuf
	row := m.data[i*m.dim : i*m.dim+len(x)]
	base := d.xn + d.nc.sq[i]
	// Prune when base − 2(dot + |x_tail||b_tail|) > bound + slack,
	// rearranged so the per-block check is one multiply, one subtract and
	// one compare against the running dot: half − dot > |x_tail||b_tail|.
	half := (base - bound - d.slack) * 0.5
	blocks := d.nc.blocks
	sufBase := i * (blocks + 1)
	suf := d.nc.suffix[sufBase : sufBase+blocks+1]
	dot := 0.0
	j := 0
	// Full blocks except the last, which absorbs the dim%DotBlock
	// overhang in the tail loops below.
	for t := 1; t < blocks; t++ {
		var s0, s1, s2, s3 float64
		for end := j + DotBlock; j < end; j += 4 {
			s0 += x[j] * row[j]
			s1 += x[j+1] * row[j+1]
			s2 += x[j+2] * row[j+2]
			s3 += x[j+3] * row[j+3]
		}
		dot += (s0 + s1) + (s2 + s3)
		if half-dot > xsuf[t]*suf[t] {
			return base - 2*dot, false
		}
	}
	var s0, s1, s2, s3 float64
	for ; j+4 <= len(x); j += 4 {
		s0 += x[j] * row[j]
		s1 += x[j+1] * row[j+1]
		s2 += x[j+2] * row[j+2]
		s3 += x[j+3] * row[j+3]
	}
	dot += (s0 + s1) + (s2 + s3)
	for ; j < len(x); j++ {
		dot += x[j] * row[j]
	}
	est := base - 2*dot
	return est, half-dot <= 0
}

// SelectNearest streams rows [from, len) except skip through the
// dot-product filter, maintaining h — the caller's max-heap of the
// current k smallest exact squared distances (h[0] the largest, len(h)
// = k, pre-filled from exact distances; len(x) must equal Dim). Per
// row, in increasing cost:
//
//  1. the norm-difference bound (|x|−|b|)² prunes on cached norms alone,
//     before touching any coordinate;
//  2. the lane-parallel dot product prunes at each block boundary via
//     Cauchy–Schwarz on the suffix norms — the bound equals the partial
//     squared distance plus (|x_tail|−|b_tail|)², so it fires at least
//     as early as the exact kernel's monotone partial-sum check, at
//     throughput-bound cost instead of a latency-bound chain;
//  3. a row that completes the dot is pruned when its full estimate
//     clears the bound by the kernel's slack — this is what spares the
//     many near-but-not-improving rows of a clustered reference the
//     exact recompute;
//  4. the few rows whose estimate cannot rule them out are recomputed
//     exactly (ascending single-accumulator order, early-exiting at the
//     bound), so every value entering the heap is bit-identical to a
//     full exact scan.
func (d *DotDist) SelectNearest(from, skip int, h []float64) {
	m := d.m
	x := d.x
	xsuf := d.xsuf
	nc := d.nc
	blocks := nc.blocks
	stride := blocks + 1
	bound := h[0]
	// halfBase folds every bound-dependent term, so the per-row prune
	// threshold is one add and one halving; refreshed when h[0] tightens.
	halfBase := d.xn - bound - d.slack
	sufBase := from * stride
	rowBase := from * m.dim
	for i := from; i < m.n; i, sufBase, rowBase = i+1, sufBase+stride, rowBase+m.dim {
		if i == skip {
			continue
		}
		// Prune when base − 2(dot + |x_tail||b_tail|) > bound + slack,
		// rearranged so each check is one multiply, one subtract and one
		// compare against the running dot: half − dot > |x_tail||b_tail|.
		// At t=0 (dot=0) that is the norm-difference bound (|x|−|b|)².
		half := (halfBase + nc.sq[i]) * 0.5
		suf := nc.suffix[sufBase : sufBase+stride]
		if half > xsuf[0]*suf[0] {
			continue
		}
		row := m.data[rowBase : rowBase+len(x)]
		dot := 0.0
		j := 0
		pruned := false
		for t := 1; t < blocks; t++ {
			// DotBlock is 8: one explicitly unrolled block per check, the
			// two bound slices collapsing the bounds checks to one each.
			xb := x[j : j+DotBlock]
			rb := row[j : j+DotBlock]
			s0 := xb[0]*rb[0] + xb[4]*rb[4]
			s1 := xb[1]*rb[1] + xb[5]*rb[5]
			s2 := xb[2]*rb[2] + xb[6]*rb[6]
			s3 := xb[3]*rb[3] + xb[7]*rb[7]
			dot += (s0 + s1) + (s2 + s3)
			j += DotBlock
			if half-dot > xsuf[t]*suf[t] {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		// Last block plus the dim%DotBlock overhang, then the full-estimate
		// check: est > bound+slack ⇔ half − dot > 0 proves the exact
		// distance exceeds the bound, no exact pass needed.
		var s0, s1, s2, s3 float64
		for ; j+4 <= len(x); j += 4 {
			s0 += x[j] * row[j]
			s1 += x[j+1] * row[j+1]
			s2 += x[j+2] * row[j+2]
			s3 += x[j+3] * row[j+3]
		}
		dot += (s0 + s1) + (s2 + s3)
		for ; j < len(x); j++ {
			dot += x[j] * row[j]
		}
		if half-dot > 0 {
			continue
		}
		// Exact recompute, early-exiting at bound — the same ascending
		// single-accumulator order as SqDistRow (bit-identical completed
		// distances), inlined so survivors don't pay a call per row.
		s := 0.0
		e := 0
		for blockEnd := sqDistBlock; blockEnd < len(x); blockEnd += sqDistBlock {
			for ; e < blockEnd; e++ {
				dd := x[e] - row[e]
				s += dd * dd
			}
			if s > bound {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		for ; e < len(x); e++ {
			dd := x[e] - row[e]
			s += dd * dd
		}
		if s < bound {
			h[0] = s
			siftDownMax(h)
			bound = h[0]
			halfBase = d.xn - bound - d.slack
		}
	}
}

// siftDownMax restores the max-heap property after replacing h[0] —
// the same sift the conformal scorer uses; heap shape only orders
// comparisons and never changes float values, so it has no bit-identity
// footprint.
func siftDownMax(h []float64) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h) && h[l] > h[largest] {
			largest = l
		}
		if r < len(h) && h[r] > h[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
