package tensor

// RefMatrix is a reference sample flattened into one contiguous row-major
// buffer — the cache-friendly layout the hot kNN kernel iterates over.
// A []Vector reference scatters rows across the heap (one allocation per
// vector, pointer chase per row); flattening puts every row on the same
// few cache lines so the distance kernel streams through memory linearly.
// A RefMatrix is immutable after construction and safe for concurrent
// readers, which is what lets many inspectors (and many stream shards)
// share one provisioned reference sample.
type RefMatrix struct {
	n, dim int
	data   []float64
}

// FlattenVectors copies equal-length vectors into a contiguous RefMatrix.
// It panics on ragged input; an empty input yields an empty matrix.
func FlattenVectors(vs []Vector) *RefMatrix {
	if len(vs) == 0 {
		return &RefMatrix{}
	}
	dim := len(vs[0])
	m := &RefMatrix{n: len(vs), dim: dim, data: make([]float64, len(vs)*dim)}
	for i, v := range vs {
		if len(v) != dim {
			panic("tensor: FlattenVectors with ragged rows")
		}
		copy(m.data[i*dim:(i+1)*dim], v)
	}
	return m
}

// Len returns the number of reference rows.
func (m *RefMatrix) Len() int { return m.n }

// Dim returns the row dimensionality.
func (m *RefMatrix) Dim() int { return m.dim }

// Row returns row i as a Vector sharing the matrix's backing storage.
// Callers must not mutate it.
func (m *RefMatrix) Row(i int) Vector { return Vector(m.data[i*m.dim : (i+1)*m.dim]) }

// SqDistRow returns the squared Euclidean distance between x and row i.
// The accumulation order matches Vector.Dist exactly, so sqrt(SqDistRow)
// is bit-identical to x.Dist(m.Row(i)).
func (m *RefMatrix) SqDistRow(x Vector, i int) float64 {
	row := m.data[i*m.dim : i*m.dim+len(x)]
	s := 0.0
	for j, xv := range x {
		d := xv - row[j]
		s += d * d
	}
	return s
}

// sqDistBlock is the kernel's early-exit granularity: the partial sum is
// checked against the bound once per block of coordinates, so pruning
// costs one extra compare per block instead of one per element.
const sqDistBlock = 8

// SqDistRowBounded computes the squared distance between x and row i,
// abandoning the row as soon as the partial sum exceeds bound (partial
// sums of squares are monotone, so an abandoned row cannot be among the
// rows within bound). It returns the full squared distance and true when
// the row completed, or the partial sum and false when it was pruned.
// Completed distances are bit-identical to SqDistRow: the bound check
// never alters the accumulation itself.
func (m *RefMatrix) SqDistRowBounded(x Vector, i int, bound float64) (float64, bool) {
	row := m.data[i*m.dim : i*m.dim+len(x)]
	s := 0.0
	j := 0
	for blockEnd := sqDistBlock; blockEnd < len(x); blockEnd += sqDistBlock {
		for ; j < blockEnd; j++ {
			d := x[j] - row[j]
			s += d * d
		}
		if s > bound {
			return s, false
		}
	}
	for ; j < len(x); j++ {
		d := x[j] - row[j]
		s += d * d
	}
	return s, s <= bound
}
