package tensor

import (
	"math"
	"testing"

	"videodrift/internal/stats"
)

func randomRows(rng *stats.RNG, n, d int) []Vector {
	rows := make([]Vector, n)
	for i := range rows {
		rows[i] = Vector(rng.NormalVec(d, 0, 1))
	}
	return rows
}

func TestFlattenVectorsRoundTrip(t *testing.T) {
	rng := stats.NewRNG(1)
	rows := randomRows(rng, 7, 5)
	m := FlattenVectors(rows)
	if m.Len() != 7 || m.Dim() != 5 {
		t.Fatalf("shape = %dx%d", m.Len(), m.Dim())
	}
	for i, r := range rows {
		got := m.Row(i)
		for j := range r {
			if got[j] != r[j] {
				t.Fatalf("row %d differs at %d", i, j)
			}
		}
	}
	if e := FlattenVectors(nil); e.Len() != 0 {
		t.Errorf("empty flatten Len = %d", e.Len())
	}
}

func TestFlattenVectorsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FlattenVectors did not panic")
		}
	}()
	FlattenVectors([]Vector{{1, 2}, {1}})
}

// TestSqDistRowMatchesDist pins the bit-identity contract the kNN fast
// path relies on: sqrt(SqDistRow) == Vector.Dist exactly.
func TestSqDistRowMatchesDist(t *testing.T) {
	rng := stats.NewRNG(2)
	for _, d := range []int{1, 3, 8, 9, 16, 33} {
		rows := randomRows(rng, 20, d)
		m := FlattenVectors(rows)
		for i, r := range rows {
			x := Vector(rng.NormalVec(d, 0, 2))
			want := x.Dist(r)
			if got := math.Sqrt(m.SqDistRow(x, i)); got != want {
				t.Fatalf("d=%d row %d: sqrt(SqDistRow) = %v, Dist = %v", d, i, got, want)
			}
		}
	}
}

// TestSqDistRowBounded checks both kernel outcomes: completed rows return
// the exact squared distance, pruned rows report a partial sum that
// already exceeds the bound.
func TestSqDistRowBounded(t *testing.T) {
	rng := stats.NewRNG(3)
	for _, d := range []int{1, 7, 8, 9, 24, 40} {
		rows := randomRows(rng, 30, d)
		m := FlattenVectors(rows)
		x := Vector(rng.NormalVec(d, 0, 1))
		for i := range rows {
			exact := m.SqDistRow(x, i)
			for _, bound := range []float64{0, exact * 0.5, exact, exact * 2, math.Inf(1)} {
				got, ok := m.SqDistRowBounded(x, i, bound)
				if ok {
					if got != exact {
						t.Fatalf("d=%d bound=%v: completed dist %v != exact %v", d, bound, got, exact)
					}
					if exact > bound {
						t.Fatalf("d=%d: reported ok with exact %v > bound %v", d, exact, bound)
					}
				} else {
					if got <= bound {
						t.Fatalf("d=%d: pruned with partial %v <= bound %v", d, got, bound)
					}
				}
			}
		}
	}
}
