package tensor

import (
	"math"
	"testing"

	"videodrift/internal/stats"
)

func randomRows(rng *stats.RNG, n, d int) []Vector {
	rows := make([]Vector, n)
	for i := range rows {
		rows[i] = Vector(rng.NormalVec(d, 0, 1))
	}
	return rows
}

func TestFlattenVectorsRoundTrip(t *testing.T) {
	rng := stats.NewRNG(1)
	rows := randomRows(rng, 7, 5)
	m := FlattenVectors(rows)
	if m.Len() != 7 || m.Dim() != 5 {
		t.Fatalf("shape = %dx%d", m.Len(), m.Dim())
	}
	for i, r := range rows {
		got := m.Row(i)
		for j := range r {
			if got[j] != r[j] {
				t.Fatalf("row %d differs at %d", i, j)
			}
		}
	}
	if e := FlattenVectors(nil); e.Len() != 0 {
		t.Errorf("empty flatten Len = %d", e.Len())
	}
}

func TestFlattenVectorsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FlattenVectors did not panic")
		}
	}()
	FlattenVectors([]Vector{{1, 2}, {1}})
}

// TestSqDistRowMatchesDist pins the bit-identity contract the kNN fast
// path relies on: sqrt(SqDistRow) == Vector.Dist exactly.
func TestSqDistRowMatchesDist(t *testing.T) {
	rng := stats.NewRNG(2)
	for _, d := range []int{1, 3, 8, 9, 16, 33} {
		rows := randomRows(rng, 20, d)
		m := FlattenVectors(rows)
		for i, r := range rows {
			x := Vector(rng.NormalVec(d, 0, 2))
			want := x.Dist(r)
			if got := math.Sqrt(m.SqDistRow(x, i)); got != want {
				t.Fatalf("d=%d row %d: sqrt(SqDistRow) = %v, Dist = %v", d, i, got, want)
			}
		}
	}
}

// TestRowNormsMatchRows pins the norm cache against a direct
// recomputation, including the suffix norms' block geometry across
// dims around the DotBlock boundary.
func TestRowNormsMatchRows(t *testing.T) {
	rng := stats.NewRNG(7)
	for _, d := range []int{1, DotBlock - 1, DotBlock, DotBlock + 1, 2 * DotBlock, 2*DotBlock + 5, 64} {
		rows := randomRows(rng, 15, d)
		m := FlattenVectors(rows)
		norms := m.RowNorms()
		for i, r := range rows {
			want := 0.0
			for j := len(r) - 1; j >= 0; j-- {
				want += r[j] * r[j]
			}
			// The cache accumulates backwards block by block; an exact
			// backwards sum over the last block's span must agree for
			// single-block rows, and all dims must be within float noise.
			if math.Abs(norms[i]-want) > 1e-12*(1+want) {
				t.Fatalf("d=%d row %d: cached norm %v, recomputed %v", d, i, norms[i], want)
			}
		}
	}
}

// TestSetRowInvalidatesNormCache is the mutate-then-recompute property:
// after SetRow the cached norms and the dot-kernel's pruning geometry
// must reflect the new row, never the stale cache.
func TestSetRowInvalidatesNormCache(t *testing.T) {
	rng := stats.NewRNG(8)
	const d = 2 * DotBlock
	rows := randomRows(rng, 12, d)
	m := FlattenVectors(rows)
	_ = m.RowNorms() // build the cache
	for trial := 0; trial < 20; trial++ {
		i := rng.Intn(m.Len())
		v := Vector(rng.NormalVec(d, 0, 3))
		m.SetRow(i, v)
		fresh := FlattenVectors(rowsOf(m))
		gotNorms, wantNorms := m.RowNorms(), fresh.RowNorms()
		for r := range wantNorms {
			if gotNorms[r] != wantNorms[r] {
				t.Fatalf("trial %d: norms[%d] = %v after SetRow, fresh build = %v", trial, r, gotNorms[r], wantNorms[r])
			}
		}
		// The kernel must see the mutation too: exact distances against
		// the mutated matrix equal a fresh build's.
		x := Vector(rng.NormalVec(d, 0, 1))
		kd := m.NewDotDist(x, nil)
		for r := 0; r < m.Len(); r++ {
			exact := fresh.SqDistRow(x, r)
			if got := m.SqDistRow(x, r); got != exact {
				t.Fatalf("trial %d: SqDistRow(%d) = %v after SetRow, want %v", trial, r, got, exact)
			}
			if est, candidate := kd.SqDist(r, exact); !candidate {
				t.Fatalf("trial %d: dot kernel pruned row %d at its own exact distance (est %v, exact %v)",
					trial, r, est, exact)
			}
		}
	}
	if err := func() (err any) {
		defer func() { err = recover() }()
		m.SetRow(0, Vector{1})
		return nil
	}(); err == nil {
		t.Error("SetRow with mismatched dimension did not panic")
	}
}

// rowsOf copies a matrix back into vectors (test helper for rebuilding
// an equivalent fresh matrix).
func rowsOf(m *RefMatrix) []Vector {
	rows := make([]Vector, m.Len())
	for i := range rows {
		rows[i] = m.Row(i).Clone()
	}
	return rows
}

// TestSqDistRowDotNeverPrunesWithinBound is the kernel's safety
// property: a row whose exact squared distance is within the bound is
// never discarded by the estimate, for any geometry — the filter may
// only have false positives (candidates recomputed exactly), never
// false negatives.
func TestSqDistRowDotNeverPrunesWithinBound(t *testing.T) {
	rng := stats.NewRNG(9)
	for _, d := range []int{DotBlock, DotBlock + 3, 2 * DotBlock, 64, 100} {
		rows := randomRows(rng, 40, d)
		m := FlattenVectors(rows)
		var scratch []float64
		for q := 0; q < 10; q++ {
			x := Vector(rng.NormalVec(d, 0, 2))
			kd := m.NewDotDist(x, scratch)
			for i := range rows {
				exact := m.SqDistRow(x, i)
				for _, bound := range []float64{exact, exact * 1.5, math.Inf(1)} {
					if _, candidate := kd.SqDist(i, bound); !candidate {
						t.Fatalf("d=%d row %d: pruned at bound %v with exact %v", d, i, bound, exact)
					}
				}
				// A bound far below the exact distance must not be
				// certified: a candidate=true there is allowed (the filter
				// is conservative) but the estimate itself must exceed the
				// bound, or pruning could never fire.
				if bound := exact*0.25 - kd.Slack(); bound > 0 {
					if est, _ := kd.SqDist(i, bound); est <= bound {
						t.Fatalf("d=%d row %d: estimate %v at bound %v with exact %v", d, i, est, bound, exact)
					}
				}
			}
			scratch = kd.Scratch()
		}
	}
}

// TestSqDistRowBounded checks both kernel outcomes: completed rows return
// the exact squared distance, pruned rows report a partial sum that
// already exceeds the bound.
func TestSqDistRowBounded(t *testing.T) {
	rng := stats.NewRNG(3)
	for _, d := range []int{1, 7, 8, 9, 24, 40} {
		rows := randomRows(rng, 30, d)
		m := FlattenVectors(rows)
		x := Vector(rng.NormalVec(d, 0, 1))
		for i := range rows {
			exact := m.SqDistRow(x, i)
			for _, bound := range []float64{0, exact * 0.5, exact, exact * 2, math.Inf(1)} {
				got, ok := m.SqDistRowBounded(x, i, bound)
				if ok {
					if got != exact {
						t.Fatalf("d=%d bound=%v: completed dist %v != exact %v", d, bound, got, exact)
					}
					if exact > bound {
						t.Fatalf("d=%d: reported ok with exact %v > bound %v", d, exact, bound)
					}
				} else {
					if got <= bound {
						t.Fatalf("d=%d: pruned with partial %v <= bound %v", d, got, bound)
					}
				}
			}
		}
	}
}
