package tensor

import (
	"fmt"
	"math"

	"videodrift/internal/stats"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: NewMatrix with negative shape")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of equal-length rows.
func NewMatrixFrom(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: NewMatrixFrom with ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a Vector sharing the matrix's backing storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MatVec returns m·v. It panics when v's length differs from m.Cols.
func (m *Matrix) MatVec(v Vector) Vector {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch (%dx%d)·%d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// MatVecT returns mᵀ·v. It panics when v's length differs from m.Rows.
func (m *Matrix) MatVecT(v Vector) Vector {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVecT shape mismatch (%dx%d)ᵀ·%d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		vi := v[i]
		for j, x := range row {
			out[j] += x * vi
		}
	}
	return out
}

// AddOuterInPlace accumulates a·(u⊗v) into m, i.e. m[i][j] += a*u[i]*v[j].
// This is the rank-1 update a dense layer's weight gradient needs.
func (m *Matrix) AddOuterInPlace(a float64, u, v Vector) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic("tensor: AddOuterInPlace shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		aui := a * u[i]
		for j, x := range v {
			row[j] += aui * x
		}
	}
}

// Scale multiplies every element of m by a, in place.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Zero resets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MatMul returns m·n. It panics on an inner-dimension mismatch.
func (m *Matrix) MatMul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)·(%dx%d)", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mrow {
			if mik == 0 {
				continue
			}
			nrow := n.Data[k*n.Cols : (k+1)*n.Cols]
			for j, nkj := range nrow {
				orow[j] += mik * nkj
			}
		}
	}
	return out
}

// XavierInit fills m with Glorot-uniform samples scaled by the layer fan-in
// and fan-out, the standard initialization for the dense nets in this repo.
func (m *Matrix) XavierInit(rng *stats.RNG) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = rng.Uniform(-limit, limit)
	}
}

// HasNaN reports whether m contains a NaN or infinity.
func (m *Matrix) HasNaN() bool {
	for _, x := range m.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
