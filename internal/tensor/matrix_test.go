package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"videodrift/internal/stats"
)

func TestMatVecKnown(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := m.MatVec(Vector{1, 1})
	if !vecAlmost(got, Vector{3, 7, 11}, 0) {
		t.Errorf("MatVec = %v", got)
	}
	gotT := m.MatVecT(Vector{1, 1, 1})
	if !vecAlmost(gotT, Vector{9, 12}, 0) {
		t.Errorf("MatVecT = %v", gotT)
	}
}

func TestMatVecTMatchesTransposeMatVec(t *testing.T) {
	g := stats.NewRNG(31)
	f := func(seed uint8) bool {
		m := NewMatrix(4, 3)
		for i := range m.Data {
			m.Data[i] = g.Normal(0, 1)
		}
		v := Vector(g.NormalVec(4, 0, 1))
		return vecAlmost(m.MatVecT(v), m.Transpose().MatVec(v), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	c := a.MatMul(b)
	want := NewMatrixFrom([][]float64{{19, 22}, {43, 50}})
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("MatMul = %+v, want %+v", c, want)
		}
	}
}

func TestMatMulAssociatesWithMatVec(t *testing.T) {
	g := stats.NewRNG(32)
	a := NewMatrix(3, 4)
	b := NewMatrix(4, 2)
	for i := range a.Data {
		a.Data[i] = g.Normal(0, 1)
	}
	for i := range b.Data {
		b.Data[i] = g.Normal(0, 1)
	}
	v := Vector(g.NormalVec(2, 0, 1))
	left := a.MatMul(b).MatVec(v)
	right := a.MatVec(b.MatVec(v))
	if !vecAlmost(left, right, 1e-12) {
		t.Errorf("(AB)v = %v, A(Bv) = %v", left, right)
	}
}

func TestAddOuterInPlace(t *testing.T) {
	m := NewMatrix(2, 3)
	m.AddOuterInPlace(2, Vector{1, 2}, Vector{3, 4, 5})
	want := []float64{6, 8, 10, 12, 16, 20}
	for i := range m.Data {
		if m.Data[i] != want[i] {
			t.Fatalf("AddOuterInPlace = %v, want %v", m.Data, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := stats.NewRNG(33)
	m := NewMatrix(3, 5)
	for i := range m.Data {
		m.Data[i] = g.Normal(0, 1)
	}
	tt := m.Transpose().Transpose()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("transpose twice is not identity")
		}
	}
}

func TestMatrixShapePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	cases := []func(){
		func() { m.MatVec(Vector{1}) },
		func() { m.MatVecT(Vector{1, 2, 3}) },
		func() { m.MatMul(NewMatrix(3, 1)) },
		func() { m.AddOuterInPlace(1, Vector{1}, Vector{1, 2}) },
		func() { NewMatrixFrom([][]float64{{1, 2}, {3}}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestXavierInitRange(t *testing.T) {
	g := stats.NewRNG(34)
	m := NewMatrix(10, 20)
	m.XavierInit(g)
	limit := math.Sqrt(6.0 / 30.0)
	nonZero := 0
	for _, x := range m.Data {
		if math.Abs(x) > limit {
			t.Fatalf("Xavier value %v exceeds limit %v", x, limit)
		}
		if x != 0 {
			nonZero++
		}
	}
	if nonZero < len(m.Data)/2 {
		t.Error("Xavier init left most entries zero")
	}
}

func TestMatrixCloneZeroScale(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}})
	c := m.Clone()
	c.Scale(10)
	if m.At(0, 0) != 1 || c.At(0, 0) != 10 {
		t.Error("Clone/Scale interaction wrong")
	}
	c.Zero()
	if c.At(0, 1) != 0 {
		t.Error("Zero did not clear")
	}
	if m.HasNaN() {
		t.Error("clean matrix flagged as NaN")
	}
	m.Set(0, 0, math.NaN())
	if !m.HasNaN() {
		t.Error("NaN matrix not flagged")
	}
}

func TestRowSharesStorage(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Error("Row should alias matrix storage")
	}
}
