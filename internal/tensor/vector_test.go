package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"videodrift/internal/stats"
)

func vecAlmost(a, b Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestVectorArithmetic(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Add(w); !vecAlmost(got, Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); !vecAlmost(got, Vector{-3, -3, -3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !vecAlmost(got, Vector{2, 4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Hadamard(w); !vecAlmost(got, Vector{4, 10, 18}, 0) {
		t.Errorf("Hadamard = %v", got)
	}
	if got := (Vector{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := (Vector{0, 0}).Dist(Vector{3, 4}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestVectorInPlaceOps(t *testing.T) {
	v := Vector{1, 1}
	v.AddInPlace(Vector{2, 3})
	if !vecAlmost(v, Vector{3, 4}, 0) {
		t.Errorf("AddInPlace = %v", v)
	}
	v.AXPY(2, Vector{1, 1})
	if !vecAlmost(v, Vector{5, 6}, 0) {
		t.Errorf("AXPY = %v", v)
	}
	v.Fill(7)
	if !vecAlmost(v, Vector{7, 7}, 0) {
		t.Errorf("Fill = %v", v)
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched lengths did not panic")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestVectorAggregates(t *testing.T) {
	v := Vector{1, 5, 3}
	if v.Sum() != 9 {
		t.Errorf("Sum = %v", v.Sum())
	}
	if v.Mean() != 3 {
		t.Errorf("Mean = %v", v.Mean())
	}
	if v.ArgMax() != 1 {
		t.Errorf("ArgMax = %v", v.ArgMax())
	}
	if got := v.Clip(2, 4); !vecAlmost(got, Vector{2, 4, 3}, 0) {
		t.Errorf("Clip = %v", got)
	}
	if (Vector{}).Mean() != 0 {
		t.Error("empty Mean != 0")
	}
}

func TestHasNaN(t *testing.T) {
	if (Vector{1, 2}).HasNaN() {
		t.Error("clean vector flagged")
	}
	if !(Vector{1, math.NaN()}).HasNaN() {
		t.Error("NaN not flagged")
	}
	if !(Vector{math.Inf(1)}).HasNaN() {
		t.Error("Inf not flagged")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	g := stats.NewRNG(5)
	f := func(seed uint8) bool {
		v := Vector(g.NormalVec(6, 0, 10))
		s := Softmax(v)
		sum := 0.0
		for _, x := range s {
			if x < 0 || x > 1 {
				return false
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Softmax is shift-invariant.
		shifted := Softmax(v.Add(Vector{3, 3, 3, 3, 3, 3}))
		return vecAlmost(s, shifted, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	s := Softmax(Vector{1000, 1001, 999})
	if Vector(s).HasNaN() {
		t.Errorf("Softmax overflowed: %v", s)
	}
	if s.ArgMax() != 1 {
		t.Errorf("Softmax argmax = %d", s.ArgMax())
	}
	if Softmax(nil) != nil {
		t.Error("Softmax(nil) != nil")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] == 99 {
		t.Error("Clone shares storage")
	}
}
