package query

import (
	"math"
	"testing"

	"videodrift/internal/detect"
	"videodrift/internal/tensor"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

// cleanFrame renders objects on a uniform background for exact label
// checks.
func cleanFrame(objs []vidsim.Object) vidsim.Frame {
	const w, h = 32, 32
	px := make(tensor.Vector, w*h)
	px.Fill(0.75)
	f := vidsim.Frame{W: w, H: h, Pixels: px, Truth: objs}
	for _, o := range objs {
		x0, y0 := int(math.Round(o.Left())), int(math.Round(o.Top()))
		for y := y0; y < y0+int(math.Round(o.H)); y++ {
			for x := x0; x < x0+int(math.Round(o.W)); x++ {
				if x >= 0 && x < w && y >= 0 && y < h {
					px[y*w+x] = o.Intensity
				}
			}
		}
	}
	return f
}

func car(x, y float64) vidsim.Object {
	return vidsim.Object{Class: vidsim.Car, X: x, Y: y, W: 5, H: 3, Intensity: 0.25}
}

func bus(x, y float64) vidsim.Object {
	return vidsim.Object{Class: vidsim.Bus, X: x, Y: y, W: 8, H: 4, Intensity: 0.15}
}

func TestCountLabel(t *testing.T) {
	a := NewAnnotator(10)
	f := cleanFrame([]vidsim.Object{car(8, 8), car(24, 24)})
	if got := a.CountLabel(f); got != 1 { // 2 cars → bucket 2/2 = 1
		t.Errorf("CountLabel = %d, want bucket 1", got)
	}
	empty := cleanFrame(nil)
	if got := a.CountLabel(empty); got != 0 {
		t.Errorf("empty CountLabel = %d", got)
	}
}

func TestCountLabelCapped(t *testing.T) {
	a := NewAnnotator(2)
	f := cleanFrame([]vidsim.Object{car(6, 6), car(16, 16), car(26, 26)})
	if got := a.CountLabel(f); got != 1 { // capped at 2 → bucket 1
		t.Errorf("capped CountLabel = %d, want 1", got)
	}
}

func TestSpatialLabel(t *testing.T) {
	a := NewAnnotator(10)
	// Bus left of car → 1.
	f := cleanFrame([]vidsim.Object{bus(8, 8), car(24, 24)})
	if got := a.SpatialLabel(f); got != 1 {
		t.Errorf("bus-left-of-car = %d, want 1", got)
	}
	// Bus right of car → 0.
	f = cleanFrame([]vidsim.Object{car(8, 8), bus(24, 24)})
	if got := a.SpatialLabel(f); got != 0 {
		t.Errorf("bus-right-of-car = %d, want 0", got)
	}
	// No bus → 0.
	f = cleanFrame([]vidsim.Object{car(8, 8), car(24, 24)})
	if got := a.SpatialLabel(f); got != 0 {
		t.Errorf("no-bus = %d, want 0", got)
	}
}

func TestLabelerAndKinds(t *testing.T) {
	a := NewAnnotator(5)
	f := cleanFrame([]vidsim.Object{car(8, 8)})
	if a.Labeler(Count)(f) != a.CountLabel(f) {
		t.Error("Count labeler mismatch")
	}
	if a.Labeler(Spatial)(f) != a.SpatialLabel(f) {
		t.Error("Spatial labeler mismatch")
	}
	if a.NumClasses(Count) != 3 || a.NumClasses(Spatial) != 2 { // maxCount 5, bucket 2
		t.Error("NumClasses wrong")
	}
	if Count.String() != "count" || Spatial.String() != "spatial" {
		t.Error("Kind.String wrong")
	}
	if Count.FeatureFn() == nil || Spatial.FeatureFn() == nil {
		t.Error("FeatureFn nil")
	}
	if len(Spatial.FeatureFn()(f.Pixels, f.W, f.H)) != vision.SpatialDim {
		t.Error("Spatial features dim wrong")
	}
}

func TestAnnotatorWithYolo(t *testing.T) {
	a := NewAnnotatorWith(detect.NewYOLOSim(), 10)
	if a.DetectorName() != "yolo-sim" {
		t.Errorf("DetectorName = %q", a.DetectorName())
	}
	f := cleanFrame([]vidsim.Object{car(8, 8), car(24, 24)})
	if got := a.CountLabel(f); got < 0 || got > 10 {
		t.Errorf("yolo CountLabel = %d", got)
	}
}

func TestAnnotatorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("maxCount 0 did not panic")
		}
	}()
	NewAnnotator(0)
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty Accuracy != 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

// TestOracleSelfConsistency mirrors the paper: the annotator's own
// predictions score A_q = 1.0 against its labels.
func TestOracleSelfConsistency(t *testing.T) {
	a := NewAnnotator(30)
	frames := vidsim.GenerateTraining(vidsim.Day(), 32, 32, 20, 9)
	var pred, truth []int
	for _, f := range frames {
		pred = append(pred, a.CountLabel(f))
		truth = append(truth, a.CountLabel(f))
	}
	if got := Accuracy(pred, truth); got != 1 {
		t.Errorf("oracle self-accuracy = %v", got)
	}
}
