// Package query implements the paper's two evaluation queries (§6.3) over
// a video stream — the count query ("how many cars are in the frame") and
// the spatial-constrained query ("a bus is on the left side of a car") —
// together with the annotation oracle that defines their ground truth and
// the query accuracy metric A_q.
//
// As in the paper, ground truth is whatever the Mask R-CNN annotator
// outputs (here the maskrcnn-sim detector), so the annotator itself scores
// A_q = 1.0 by construction, and every other method is judged against it.
package query

import (
	"videodrift/internal/detect"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

// Kind selects the query being evaluated.
type Kind int

// The paper's two queries.
const (
	Count Kind = iota
	Spatial
)

// String returns the query's name.
func (k Kind) String() string {
	if k == Spatial {
		return "spatial"
	}
	return "count"
}

// FeatureFn returns the classifier front-end appropriate for the query.
func (k Kind) FeatureFn() vision.FeatureFunc {
	if k == Spatial {
		return vision.SpatialFeatures
	}
	return vision.QueryFeatures
}

// Annotator turns detector output into query labels — the role Mask R-CNN
// plays in the paper (§5.4, §6.3). It is not safe for concurrent use
// (detectors keep scratch state).
//
// Count labels are reported in buckets of Bucket cars (default 2): the
// occupancy statistics the classifiers run on resolve counts to roughly
// one vehicle of pixel mass, so exact-count classes would be at chance
// and every comparison in Figures 5–7 would collapse. Bucketing is
// applied identically to every method, so A_q comparisons are unaffected
// (see DESIGN.md §2).
type Annotator struct {
	det      detect.Detector
	maxCount int
	bucket   int
}

// NewAnnotator builds the ground-truth annotator around the maskrcnn-sim
// detector. Count labels are capped at maxCount and bucketed by 2.
func NewAnnotator(maxCount int) *Annotator {
	return NewAnnotatorWith(detect.NewMaskRCNNSim(), maxCount)
}

// NewAnnotatorWith builds an annotator around an arbitrary detector (used
// to turn yolo-sim into a drift-oblivious query baseline).
func NewAnnotatorWith(det detect.Detector, maxCount int) *Annotator {
	if maxCount < 1 {
		panic("query: NewAnnotatorWith needs maxCount >= 1")
	}
	return &Annotator{det: det, maxCount: maxCount, bucket: 2}
}

// DetectorName identifies the underlying detector.
func (a *Annotator) DetectorName() string { return a.det.Name() }

// NumClasses returns the label-space size for the query kind.
func (a *Annotator) NumClasses(kind Kind) int {
	if kind == Spatial {
		return 2
	}
	return a.maxCount/a.bucket + 1
}

// CountLabel returns the bucketed number of cars the detector finds.
func (a *Annotator) CountLabel(f vidsim.Frame) int {
	n := detect.CountClass(a.det.Detect(f), vidsim.Car)
	if n > a.maxCount {
		n = a.maxCount
	}
	return n / a.bucket
}

// SpatialLabel returns 1 when the detector finds a bus strictly to the
// left of some car (the paper's §6.3.2 predicate), else 0.
func (a *Annotator) SpatialLabel(f vidsim.Frame) int {
	dets := a.det.Detect(f)
	for _, b := range dets {
		if b.Class != vidsim.Bus {
			continue
		}
		for _, c := range dets {
			if c.Class == vidsim.Car && b.X < c.X {
				return 1
			}
		}
	}
	return 0
}

// Label returns the label for the query kind.
func (a *Annotator) Label(kind Kind, f vidsim.Frame) int {
	if kind == Spatial {
		return a.SpatialLabel(f)
	}
	return a.CountLabel(f)
}

// Labeler returns the label function for the query kind, in the shape the
// pipeline and ODIN take.
func (a *Annotator) Labeler(kind Kind) func(vidsim.Frame) int {
	return func(f vidsim.Frame) int { return a.Label(kind, f) }
}

// Accuracy returns A_q: the fraction of frames where the prediction
// matches ground truth (0 for empty input).
func Accuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("query: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}
