// Package replica streams checkpoint state from a primary monitor to
// one or more hot standbys over a compact binary protocol, so a
// primary kill promotes a warm in-memory fleet instead of forcing a
// cold disk restore (DESIGN.md §16). The primary dials each standby,
// ships one full snapshot to establish a base generation, then ships
// delta checkpoints (internal/store.Delta — kilobytes of runtime state
// against megabytes of model weights) every replication cycle. A
// reconnecting standby greets with its last applied generation and the
// primary resumes from there: a delta when the standby holds the
// previous generation, a fresh full otherwise.
//
// Split brain is prevented by monotonic fencing epochs. Every streamed
// generation carries the primary's epoch; a promoted standby bumps its
// epoch past everything it has seen and answers any staler stream with
// a Fenced message, which the old primary treats as a terminal
// demotion.
//
// The wire format mirrors internal/ingest: every message is
//
//	magic   u32  "VDRP" (0x56445250)
//	version u8   1
//	type    u8   hello | full | delta | applied | fenced
//	len     u32  payload length in bytes
//	crc     u32  CRC-32 (IEEE) of the payload
//	payload len bytes
//
// all big-endian. Decoding never trusts a declared length: payloads
// are capped and every structural violation surfaces as a typed error
// (ErrBadMagic, ErrTruncated, ErrChecksum, ErrOversized, *VersionError)
// — never a panic, never an allocation sized by attacker-controlled
// bytes beyond the cap.
package replica

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic is the wire magic number, "VDRP" big-endian.
const Magic uint32 = 0x56445250

// Version is the protocol version this package speaks.
const Version = 1

// HeaderSize is the fixed size of the wire header in bytes.
const HeaderSize = 14

// Message types.
const (
	MsgHello   = 1 // standby → primary: greeting with epoch + resume generation
	MsgFull    = 2 // primary → standby: one full checkpoint envelope
	MsgDelta   = 3 // primary → standby: one delta checkpoint envelope
	MsgApplied = 4 // standby → primary: generation applied (lag accounting)
	MsgFenced  = 5 // standby → primary: stream rejected, epoch is stale
)

// MaxPayload bounds a declared payload length: a full checkpoint of a
// large model fleet, with headroom.
const MaxPayload = 1 << 28

// Typed decode errors.
var (
	// ErrBadMagic reports a header that does not start with Magic — the
	// peer is not speaking this protocol (or the stream desynced).
	ErrBadMagic = errors.New("replica: bad magic")
	// ErrTruncated reports a message or payload shorter than its
	// declared contents.
	ErrTruncated = errors.New("replica: truncated message")
	// ErrChecksum reports a payload whose CRC does not match the header.
	ErrChecksum = errors.New("replica: payload checksum mismatch")
	// ErrOversized reports a declared length beyond the protocol limits.
	ErrOversized = errors.New("replica: oversized message")
)

// VersionError reports a protocol version this package does not speak.
type VersionError struct{ Got uint8 }

func (e *VersionError) Error() string {
	return fmt.Sprintf("replica: protocol version %d (want %d)", e.Got, Version)
}

// Hello is the standby's greeting on every (re)connect: the highest
// fencing epoch it has seen and the last generation it applied, which
// is the primary's resume point — Gen 0 asks for a full snapshot.
//
//driftlint:wire encode=EncodeHello decode=DecodeHello stream=ReadMsg
type Hello struct {
	Epoch uint64
	Gen   uint64
}

// State is one streamed checkpoint generation (MsgFull or MsgDelta).
// Payload carries the store envelope bytes exactly as encoded by the
// primary — the standby persists and fingerprints those bytes, never a
// re-encode, so the CRC chain later deltas verify stays intact. Seq is
// the per-connection message sequence number (starts at 1); BaseGen is
// the generation a delta applies on (0 for fulls).
//
//driftlint:wire encode=EncodeState decode=DecodeState stream=ReadMsg
type State struct {
	Epoch   uint64
	Seq     uint64
	Gen     uint64
	BaseGen uint64
	Payload []byte
}

// Applied acknowledges one applied generation.
//
//driftlint:wire encode=EncodeApplied decode=DecodeApplied stream=ReadMsg
type Applied struct {
	Gen uint64
}

// Fenced rejects a stream whose epoch is stale: the sender reports the
// epoch it is fenced behind. The receiving primary must stop
// replicating — a newer primary exists.
//
//driftlint:wire encode=EncodeFenced decode=DecodeFenced stream=ReadMsg
type Fenced struct {
	Epoch uint64
}

// appendHeader appends the 14-byte header for a payload.
func appendHeader(b []byte, msgType uint8, payload []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, Magic)
	b = append(b, Version, msgType)
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return b
}

// EncodeHello encodes a hello to wire bytes (header included).
func EncodeHello(h Hello) []byte {
	payload := make([]byte, 0, 16)
	payload = binary.BigEndian.AppendUint64(payload, h.Epoch)
	payload = binary.BigEndian.AppendUint64(payload, h.Gen)
	return append(appendHeader(make([]byte, 0, HeaderSize+len(payload)), MsgHello, payload), payload...)
}

// DecodeHello decodes a hello payload.
func DecodeHello(payload []byte) (Hello, error) {
	if len(payload) != 16 {
		return Hello{}, ErrTruncated
	}
	return Hello{
		Epoch: binary.BigEndian.Uint64(payload[0:8]),
		Gen:   binary.BigEndian.Uint64(payload[8:16]),
	}, nil
}

// EncodeState encodes a streamed generation to wire bytes under the
// given message type (MsgFull or MsgDelta).
func EncodeState(msgType uint8, st State) []byte {
	payload := make([]byte, 0, 32+4+len(st.Payload))
	payload = binary.BigEndian.AppendUint64(payload, st.Epoch)
	payload = binary.BigEndian.AppendUint64(payload, st.Seq)
	payload = binary.BigEndian.AppendUint64(payload, st.Gen)
	payload = binary.BigEndian.AppendUint64(payload, st.BaseGen)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(st.Payload)))
	payload = append(payload, st.Payload...)
	return append(appendHeader(make([]byte, 0, HeaderSize+len(payload)), msgType, payload), payload...)
}

// DecodeState decodes a streamed-generation payload. Every length is
// checked before use, so arbitrary input yields a typed error, never a
// panic or an unbounded allocation. Fuzzed by FuzzReadStream.
func DecodeState(payload []byte) (State, error) {
	if len(payload) < 36 {
		return State{}, ErrTruncated
	}
	st := State{
		Epoch:   binary.BigEndian.Uint64(payload[0:8]),
		Seq:     binary.BigEndian.Uint64(payload[8:16]),
		Gen:     binary.BigEndian.Uint64(payload[16:24]),
		BaseGen: binary.BigEndian.Uint64(payload[24:32]),
	}
	n := int(binary.BigEndian.Uint32(payload[32:36]))
	if n != len(payload)-36 {
		return State{}, fmt.Errorf("%w: declared %d envelope bytes, payload carries %d", ErrTruncated, n, len(payload)-36)
	}
	st.Payload = payload[36:]
	return st, nil
}

// EncodeApplied encodes an apply acknowledgment to wire bytes.
func EncodeApplied(a Applied) []byte {
	payload := binary.BigEndian.AppendUint64(make([]byte, 0, 8), a.Gen)
	return append(appendHeader(make([]byte, 0, HeaderSize+len(payload)), MsgApplied, payload), payload...)
}

// DecodeApplied decodes an apply-acknowledgment payload.
func DecodeApplied(payload []byte) (Applied, error) {
	if len(payload) != 8 {
		return Applied{}, ErrTruncated
	}
	return Applied{Gen: binary.BigEndian.Uint64(payload)}, nil
}

// EncodeFenced encodes a fencing rejection to wire bytes.
func EncodeFenced(f Fenced) []byte {
	payload := binary.BigEndian.AppendUint64(make([]byte, 0, 8), f.Epoch)
	return append(appendHeader(make([]byte, 0, HeaderSize+len(payload)), MsgFenced, payload), payload...)
}

// DecodeFenced decodes a fencing-rejection payload.
func DecodeFenced(payload []byte) (Fenced, error) {
	if len(payload) != 8 {
		return Fenced{}, ErrTruncated
	}
	return Fenced{Epoch: binary.BigEndian.Uint64(payload)}, nil
}

// ReadMsg reads one length-prefixed message off the stream: header
// validation (magic, version, payload cap), then exactly the declared
// payload, then the CRC check. On a header-level error the stream
// position is undefined and the connection should be dropped — the
// reconnecting peer resumes from its Hello generation, which is what
// makes a torn delta stream cost a round trip, not state.
func ReadMsg(r io.Reader) (msgType uint8, payload []byte, err error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, ErrTruncated
		}
		return 0, nil, err // io.EOF between messages: clean close
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic {
		return 0, nil, ErrBadMagic
	}
	if hdr[4] != Version {
		return 0, nil, &VersionError{Got: hdr[4]}
	}
	msgType = hdr[5]
	n := binary.BigEndian.Uint32(hdr[6:10])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: declared payload %d > %d", ErrOversized, n, MaxPayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, ErrTruncated
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[10:14]) {
		return msgType, nil, ErrChecksum
	}
	return msgType, payload, nil
}

// DecodeMsg decodes one message from a complete wire buffer (header +
// payload), the io-free sibling of ReadMsg.
func DecodeMsg(b []byte) (msgType uint8, payload []byte, err error) {
	if len(b) < HeaderSize {
		return 0, nil, ErrTruncated
	}
	return ReadMsg(bytes.NewReader(b))
}
