package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"videodrift/internal/store"
	"videodrift/internal/telemetry"
)

// ErrNoState reports a promotion attempt before any generation was
// replicated — there is nothing to promote.
var ErrNoState = errors.New("replica: no replicated state")

// StandbyConfig parameterizes a replication standby.
type StandbyConfig struct {
	// Epoch seeds the highest-epoch-seen accounting (a restarted
	// standby resumes it from its checkpoint; zero is fine cold).
	Epoch uint64
	// Store, when set, persists every streamed generation to disk as
	// the exact wire bytes (full envelopes and delta envelopes), so a
	// standby restart warm-loads the replicated chain.
	Store *store.Store
	// Tracer records replica_delta_applied / replica_promoted events.
	Tracer *telemetry.Tracer
	// Logf logs connection churn; nil is silent.
	Logf func(format string, args ...any)
	// OnApply, when set, observes every applied checkpoint (the warm
	// fleet refresh hook). Called without internal locks held.
	OnApply func(cp *store.Checkpoint)
	// ApplyTimeout bounds each per-message read (default 0: none; the
	// primary's cadence is its own business).
	ApplyTimeout time.Duration
}

// Standby accepts replication streams from a primary and applies them
// into a warm in-memory checkpoint: greeting every connection with its
// last applied generation, verifying the delta CRC chain against the
// exact bytes the primary sent, and fencing any stream whose epoch is
// stale. Promote turns the standby into a primary-elect: it bumps the
// fencing epoch past everything seen, severs the stream, and hands the
// owner the latest checkpoint to build a live fleet from.
type Standby struct {
	cfg StandbyConfig

	mu        sync.Mutex
	epoch     uint64 // highest epoch seen (streamed or configured)
	promoted  bool
	cp        *store.Checkpoint
	crcs      []uint32 // wire-byte entry CRCs — never from a re-encode
	forceFull bool     // next Hello asks for a full (chain broke)
	applied   uint64   // generations applied over the lifetime
	conns     map[net.Conn]struct{}
	closed    bool
}

// NewStandby builds a standby. It does not listen; pass an accepted
// listener to Serve.
func NewStandby(cfg StandbyConfig) *Standby {
	return &Standby{
		cfg:   cfg,
		epoch: cfg.Epoch,
		conns: make(map[net.Conn]struct{}),
	}
}

// Seed primes the standby with a locally loaded checkpoint (warm
// restart from Store), so the first Hello resumes from its generation
// instead of asking for a full. crcs must be the wire-byte entry CRCs
// (store.DecodeWithCRCs); nil recomputes them from the blobs.
func (s *Standby) Seed(cp *store.Checkpoint, crcs []uint32) error {
	if cp == nil {
		return nil
	}
	if crcs == nil {
		var err error
		if crcs, err = store.EntryCRCs(cp); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cp, s.crcs = cp, crcs
	if cp.Epoch > s.epoch {
		s.epoch = cp.Epoch
	}
	return nil
}

// Epoch returns the highest fencing epoch this standby has seen.
func (s *Standby) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Gen returns the last applied generation (0 before first apply).
func (s *Standby) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cp == nil {
		return 0
	}
	return s.cp.Gen
}

// Applied returns the count of generations applied over the lifetime.
func (s *Standby) Applied() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Latest returns the newest applied checkpoint (nil before any).
func (s *Standby) Latest() *store.Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp
}

// Promoted reports whether Promote has run.
func (s *Standby) Promoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// logf logs through the configured sink.
func (s *Standby) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts replication connections until the listener closes.
// The owner closes ln to stop; Serve then returns nil.
func (s *Standby) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// handle speaks one replication connection: Hello first, then streamed
// generations until the peer drops, an epoch fences, or the chain
// breaks (which closes the connection so the reconnect renegotiates
// from a fresh Hello).
func (s *Standby) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	s.mu.Lock()
	h := Hello{Epoch: s.epoch}
	if s.cp != nil && !s.forceFull {
		h.Gen = s.cp.Gen
	}
	s.forceFull = false
	s.mu.Unlock()
	if _, err := conn.Write(EncodeHello(h)); err != nil {
		return
	}

	var seq uint64
	for {
		if s.cfg.ApplyTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ApplyTimeout))
		}
		msgType, payload, err := ReadMsg(conn)
		if err != nil {
			return
		}
		if msgType != MsgFull && msgType != MsgDelta {
			s.logf("replica: unexpected message type %d", msgType)
			return
		}
		st, err := DecodeState(payload)
		if err != nil {
			s.logf("replica: bad state message: %v", err)
			return
		}
		seq++
		if st.Seq != seq {
			s.logf("replica: sequence gap: got %d, want %d", st.Seq, seq)
			return
		}
		reply, ok := s.apply(msgType, st)
		if _, err := conn.Write(reply); err != nil {
			return
		}
		if !ok {
			return
		}
	}
}

// apply validates and applies one streamed generation, returning the
// wire reply and whether the connection should stay open.
func (s *Standby) apply(msgType uint8, st State) (reply []byte, keepOpen bool) {
	s.mu.Lock()
	if s.promoted || st.Epoch < s.epoch {
		epoch := s.epoch
		s.mu.Unlock()
		s.logf("replica: fencing stream at epoch %d (ours %d)", st.Epoch, epoch)
		return EncodeFenced(Fenced{Epoch: epoch}), false
	}
	if st.Epoch > s.epoch {
		s.epoch = st.Epoch
	}
	base, baseCRCs := s.cp, s.crcs
	s.mu.Unlock()

	var (
		next     *store.Checkpoint
		nextCRCs []uint32
		err      error
		kind     = "full"
	)
	switch msgType {
	case MsgFull:
		next, nextCRCs, err = store.DecodeWithCRCs(st.Payload)
	case MsgDelta:
		kind = "delta"
		var d *store.Delta
		if d, err = store.DecodeDelta(st.Payload); err == nil {
			if base == nil {
				err = fmt.Errorf("%w: delta with no base", store.ErrDeltaBase)
			} else {
				next, nextCRCs, err = store.ApplyDelta(base, baseCRCs, d)
			}
		}
	}
	if err != nil {
		s.logf("replica: apply %s gen %d: %v", kind, st.Gen, err)
		if errors.Is(err, store.ErrDeltaBase) {
			// The chain broke (base mismatch): renegotiate from a full.
			s.mu.Lock()
			s.forceFull = true
			gen := uint64(0)
			if s.cp != nil {
				gen = s.cp.Gen
			}
			s.mu.Unlock()
			return EncodeApplied(Applied{Gen: gen}), false
		}
		return EncodeFenced(Fenced{Epoch: st.Epoch}), false
	}
	if next.Gen != st.Gen {
		s.logf("replica: envelope gen %d disagrees with stream gen %d", next.Gen, st.Gen)
		return EncodeFenced(Fenced{Epoch: st.Epoch}), false
	}

	// Persist the exact wire bytes: the CRC chain later deltas verify
	// is over what the primary encoded, never a local re-encode.
	if s.cfg.Store != nil {
		if msgType == MsgFull {
			if _, err := s.cfg.Store.SaveEncoded(st.Payload); err != nil {
				s.logf("replica: persist full gen %d: %v", st.Gen, err)
			} else {
				s.cfg.Store.PruneDeltas(st.Gen)
			}
		} else {
			if _, err := s.cfg.Store.SaveDeltaEncoded(st.Gen, st.Payload); err != nil {
				s.logf("replica: persist delta gen %d: %v", st.Gen, err)
			}
		}
	}

	s.mu.Lock()
	s.cp, s.crcs = next, nextCRCs
	s.applied++
	s.mu.Unlock()
	s.cfg.Tracer.ReplicaDeltaApplied(st.Gen, st.Epoch, kind, len(st.Payload))
	if s.cfg.OnApply != nil {
		s.cfg.OnApply(next)
	}
	return EncodeApplied(Applied{Gen: st.Gen}), true
}

// Promote turns the standby into a primary-elect: it bumps the fencing
// epoch past every epoch seen, stamps it on the latest checkpoint,
// severs the replication stream (any reconnecting stale primary is
// answered with Fenced), and returns the checkpoint to build a live
// fleet from plus the new epoch. Promotion is terminal — the standby
// never applies another stream.
func (s *Standby) Promote(reason string) (*store.Checkpoint, uint64, error) {
	s.mu.Lock()
	if s.cp == nil {
		s.mu.Unlock()
		return nil, 0, ErrNoState
	}
	if !s.promoted {
		s.promoted = true
		s.epoch++
		s.cp.Epoch = s.epoch
	}
	cp, epoch := s.cp, s.epoch
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	s.logf("replica: promoted at gen %d, epoch %d (%s)", cp.Gen, epoch, reason)
	s.cfg.Tracer.ReplicaPromoted(cp.Gen, epoch, reason)
	return cp, epoch, nil
}

// Close severs every connection; Serve returns after its listener is
// closed by the owner.
func (s *Standby) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
