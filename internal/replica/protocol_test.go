package replica

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestProtocolRoundTrips(t *testing.T) {
	checkMsg := func(name string, wire []byte, wantType uint8) []byte {
		t.Helper()
		msgType, payload, err := ReadMsg(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if msgType != wantType {
			t.Fatalf("%s: type %d, want %d", name, msgType, wantType)
		}
		return payload
	}

	h := Hello{Epoch: 7, Gen: 42}
	if got, err := DecodeHello(checkMsg("hello", EncodeHello(h), MsgHello)); err != nil || got != h {
		t.Fatalf("hello round trip: %+v, %v", got, err)
	}

	st := State{Epoch: 7, Seq: 3, Gen: 43, BaseGen: 42, Payload: []byte("envelope bytes")}
	got, err := DecodeState(checkMsg("delta", EncodeState(MsgDelta, st), MsgDelta))
	if err != nil {
		t.Fatalf("state round trip: %v", err)
	}
	if got.Epoch != st.Epoch || got.Seq != st.Seq || got.Gen != st.Gen || got.BaseGen != st.BaseGen || !bytes.Equal(got.Payload, st.Payload) {
		t.Fatalf("state round trip: %+v, want %+v", got, st)
	}
	// Fulls share the State shape under a different message type.
	checkMsg("full", EncodeState(MsgFull, st), MsgFull)

	a := Applied{Gen: 43}
	if got, err := DecodeApplied(checkMsg("applied", EncodeApplied(a), MsgApplied)); err != nil || got != a {
		t.Fatalf("applied round trip: %+v, %v", got, err)
	}

	f := Fenced{Epoch: 9}
	if got, err := DecodeFenced(checkMsg("fenced", EncodeFenced(f), MsgFenced)); err != nil || got != f {
		t.Fatalf("fenced round trip: %+v, %v", got, err)
	}
}

func TestReadMsgRejectsDamage(t *testing.T) {
	valid := EncodeState(MsgDelta, State{Epoch: 1, Seq: 1, Gen: 2, BaseGen: 1, Payload: []byte("payload")})

	reject := func(name string, wire []byte, want error) {
		t.Helper()
		_, _, err := ReadMsg(bytes.NewReader(wire))
		if !errors.Is(err, want) {
			t.Fatalf("%s: err = %v, want %v", name, err, want)
		}
	}

	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xff
	reject("bad magic", badMagic, ErrBadMagic)

	badVersion := append([]byte(nil), valid...)
	badVersion[4] = Version + 1
	var verr *VersionError
	if _, _, err := ReadMsg(bytes.NewReader(badVersion)); !errors.As(err, &verr) || verr.Got != Version+1 {
		t.Fatalf("bad version: err = %v", err)
	}

	reject("truncated header", valid[:HeaderSize-1], ErrTruncated)
	reject("truncated payload", valid[:len(valid)-3], ErrTruncated)

	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0xff
	reject("payload corruption", badCRC, ErrChecksum)

	oversized := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(oversized[6:10], MaxPayload+1)
	reject("oversized declaration", oversized, ErrOversized)

	// Clean EOF between messages is io.EOF, not a damage error.
	if _, _, err := ReadMsg(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestDecodeStateRejectsLengthLies(t *testing.T) {
	wire := EncodeState(MsgDelta, State{Epoch: 1, Seq: 1, Gen: 2, BaseGen: 1, Payload: []byte("abcdef")})
	_, payload, err := ReadMsg(bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("read: %v", err)
	}

	if _, err := DecodeState(payload[:20]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short prefix: %v, want ErrTruncated", err)
	}
	lied := append([]byte(nil), payload...)
	binary.BigEndian.PutUint32(lied[32:36], uint32(len(payload))) // declares more than carried
	if _, err := DecodeState(lied); !errors.Is(err, ErrTruncated) {
		t.Fatalf("length lie: %v, want ErrTruncated", err)
	}
}

func TestDecodeMsg(t *testing.T) {
	wire := EncodeApplied(Applied{Gen: 11})
	msgType, payload, err := DecodeMsg(wire)
	if err != nil || msgType != MsgApplied {
		t.Fatalf("decode: type %d, %v", msgType, err)
	}
	if a, _ := DecodeApplied(payload); a.Gen != 11 {
		t.Fatalf("gen %d, want 11", a.Gen)
	}
	if _, _, err := DecodeMsg(wire[:4]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short buffer: %v, want ErrTruncated", err)
	}
}
