package replica

import (
	"bytes"
	"testing"
)

// FuzzReadStream throws arbitrary byte streams at the framing layer:
// ReadMsg must never panic and never allocate beyond the payload cap,
// and any State it accepts must survive a re-encode round trip.
func FuzzReadStream(f *testing.F) {
	f.Add(EncodeHello(Hello{Epoch: 1, Gen: 2}))
	f.Add(EncodeState(MsgFull, State{Epoch: 1, Seq: 1, Gen: 1, Payload: []byte("full envelope")}))
	f.Add(EncodeState(MsgDelta, State{Epoch: 2, Seq: 5, Gen: 9, BaseGen: 8, Payload: []byte("delta envelope")}))
	f.Add(EncodeApplied(Applied{Gen: 9}))
	f.Add(EncodeFenced(Fenced{Epoch: 3}))
	two := append(EncodeApplied(Applied{Gen: 1}), EncodeFenced(Fenced{Epoch: 2})...)
	f.Add(two)
	f.Add(two[:HeaderSize+3])
	f.Add([]byte("VDRP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		for i := 0; i < 64; i++ { // bounded: a stream can hold many messages
			msgType, payload, err := ReadMsg(r)
			if err != nil {
				return
			}
			switch msgType {
			case MsgHello:
				if h, err := DecodeHello(payload); err == nil {
					if _, _, err := DecodeMsg(EncodeHello(h)); err != nil {
						t.Fatalf("hello re-encode: %v", err)
					}
				}
			case MsgFull, MsgDelta:
				st, err := DecodeState(payload)
				if err != nil {
					continue
				}
				wire := EncodeState(msgType, st)
				msgType2, payload2, err := DecodeMsg(wire)
				if err != nil || msgType2 != msgType {
					t.Fatalf("state re-encode: type %d, %v", msgType2, err)
				}
				st2, err := DecodeState(payload2)
				if err != nil || st2.Gen != st.Gen || st2.Seq != st.Seq || !bytes.Equal(st2.Payload, st.Payload) {
					t.Fatalf("state re-encode changed the message: %v", err)
				}
			case MsgApplied:
				_, _ = DecodeApplied(payload)
			case MsgFenced:
				_, _ = DecodeFenced(payload)
			}
		}
	})
}
