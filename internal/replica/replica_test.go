package replica

import (
	"errors"
	"net"
	"sync"
	"testing"

	"videodrift/internal/conformal"
	"videodrift/internal/core"
	"videodrift/internal/store"
	"videodrift/internal/telemetry"
	"videodrift/internal/tensor"
)

func testEntry(name string) *core.ModelEntry {
	calib := []float64{0.5, 0.25, 0.75}
	return &core.ModelEntry{
		Name:        name,
		W:           2,
		H:           2,
		Samples:     []tensor.Vector{{0.1, 0.2, 0.3, 0.4}},
		SampleFeats: []tensor.Vector{{0.1, 0.2, 0.3, 0.4}},
		CalibRaw:    calib,
		Calib:       conformal.NewSortedCalib(calib),
	}
}

// testCheckpoint builds a checkpoint over the given (shared-pointer)
// entry table, so consecutive captures diff to pure-runtime deltas.
func testCheckpoint(t testing.TB, entries []*core.ModelEntry, frames int64) *store.Checkpoint {
	t.Helper()
	cfg := core.DefaultPipelineConfig(4, 2)
	cfg.Selector = core.SelectorMSBI
	pipe := core.NewPipeline(core.NewRegistry(entries...), nil, cfg)
	reg := make([]int, len(entries))
	for i := range reg {
		reg[i] = i
	}
	return &store.Checkpoint{
		CreatedUnixNano: 1700000000000000000,
		Frames:          frames,
		Entries:         entries,
		Shards:          []store.ShardState{{Registry: reg, Pipeline: pipe.Snapshot()}},
	}
}

// startStandby serves a standby on a loopback listener and returns it
// with its address. Cleanup closes the listener and waits for Serve.
func startStandby(t *testing.T, cfg StandbyConfig) (*Standby, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	sb := NewStandby(cfg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := sb.Serve(ln); err != nil {
			t.Errorf("standby serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		sb.Close()
		ln.Close()
		<-done
	})
	return sb, ln.Addr().String()
}

// TestReplicationStream drives a primary through several capture
// cycles against a live standby: one full snapshot to establish the
// base, deltas afterwards, a model-add carried inside a delta, and a
// torn write that resumes from the standby's Hello generation instead
// of re-shipping a full.
func TestReplicationStream(t *testing.T) {
	tr := telemetry.New(telemetry.Config{})
	sb, addr := startStandby(t, StandbyConfig{Tracer: tr})

	var (
		mu      sync.Mutex
		entries = []*core.ModelEntry{testEntry("m0")}
		frames  int64
		tearAt  = -1
	)
	prim := NewPrimary(PrimaryConfig{
		Addrs: []string{addr},
		Capture: func() *store.Checkpoint {
			mu.Lock()
			defer mu.Unlock()
			frames += 100
			return testCheckpoint(t, entries, frames)
		},
		TxFault: func(msg int, b []byte) ([]byte, bool) {
			mu.Lock()
			defer mu.Unlock()
			if msg == tearAt {
				return b[:10], true
			}
			return b, false
		},
		Logf: t.Logf,
	})
	defer prim.Close()

	for i := 0; i < 5; i++ {
		if err := prim.Cycle(); err != nil {
			t.Fatalf("cycle %d: %v", i+1, err)
		}
	}
	if got := sb.Gen(); got != 5 {
		t.Fatalf("standby at gen %d, want 5", got)
	}
	if got := sb.Applied(); got != 5 {
		t.Fatalf("standby applied %d generations, want 5", got)
	}
	if lag := prim.Lag(); lag != 0 {
		t.Fatalf("primary lag %d, want 0", lag)
	}

	// A torn write mid-stream: the primary reconnects within the same
	// cycle and resumes from the standby's Hello generation — the
	// retry is still a delta, not a full restart.
	mu.Lock()
	tearAt = 5 // the 6th message, i.e. cycle 6's first send
	mu.Unlock()
	if err := prim.Cycle(); err != nil {
		t.Fatalf("cycle after torn write: %v", err)
	}
	if got := sb.Gen(); got != 6 {
		t.Fatalf("standby at gen %d after torn write, want 6", got)
	}

	// A new model entry rides inside a delta.
	mu.Lock()
	entries = append(entries, testEntry("m1"))
	mu.Unlock()
	if err := prim.Cycle(); err != nil {
		t.Fatalf("cycle with new entry: %v", err)
	}
	cp := sb.Latest()
	if cp == nil || len(cp.Entries) != 2 {
		t.Fatalf("standby checkpoint entries = %v, want 2", cp)
	}
	if cp.Entries[0].Name != "m0" || cp.Entries[1].Name != "m1" {
		t.Fatalf("standby entries %q, %q", cp.Entries[0].Name, cp.Entries[1].Name)
	}
	if cp.Gen != 7 || cp.Epoch != 1 {
		t.Fatalf("standby checkpoint gen %d epoch %d, want 7, 1", cp.Gen, cp.Epoch)
	}

	snap := tr.Snapshot()
	if snap.ReplicaDeltasApplied != 7 {
		t.Fatalf("replica_deltas_applied = %d, want 7", snap.ReplicaDeltasApplied)
	}
}

// TestStandbyPersistsWireBytes checks the standby's on-disk chain: the
// persisted files are the exact streamed bytes, so LoadLatestChain on
// the standby's state dir reconstructs the primary's checkpoint.
func TestStandbyPersistsWireBytes(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	sb, addr := startStandby(t, StandbyConfig{Store: st})

	entries := []*core.ModelEntry{testEntry("m0")}
	var frames int64
	prim := NewPrimary(PrimaryConfig{
		Addrs: []string{addr},
		Capture: func() *store.Checkpoint {
			frames += 100
			return testCheckpoint(t, entries, frames)
		},
	})
	defer prim.Close()
	for i := 0; i < 4; i++ {
		if err := prim.Cycle(); err != nil {
			t.Fatalf("cycle %d: %v", i+1, err)
		}
	}
	if got := sb.Gen(); got != 4 {
		t.Fatalf("standby at gen %d, want 4", got)
	}

	cp, _, applied, err := st.LoadLatestChain()
	if err != nil {
		t.Fatalf("load chain from standby dir: %v", err)
	}
	if applied != 3 {
		t.Fatalf("chain applied %d deltas, want 3", applied)
	}
	if cp.Gen != 4 || cp.Frames != 400 {
		t.Fatalf("chained checkpoint gen %d frames %d, want 4, 400", cp.Gen, cp.Frames)
	}

	results, err := store.VerifyDir(dir)
	if err != nil {
		t.Fatalf("verify standby dir: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("verified %d files, want 4", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("replicated file %s damaged: %v", r.Path, r.Err)
		}
	}
}

// TestDeltaBaseRenegotiation hand-speaks the protocol to a standby:
// after a delta whose base digest does not match, the standby must
// keep its state, close the connection, and ask for a full snapshot on
// the next Hello.
func TestDeltaBaseRenegotiation(t *testing.T) {
	sb, addr := startStandby(t, StandbyConfig{Logf: t.Logf})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	msgType, payload, err := ReadMsg(conn)
	if err != nil || msgType != MsgHello {
		t.Fatalf("hello: type %d, %v", msgType, err)
	}
	h, err := DecodeHello(payload)
	if err != nil || h.Gen != 0 {
		t.Fatalf("hello %+v, %v (want gen 0)", h, err)
	}

	entries := []*core.ModelEntry{testEntry("m0")}
	cp := testCheckpoint(t, entries, 100)
	cp.Gen, cp.Epoch = 5, 1
	full, _, err := store.EncodeWithCRCs(cp)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := conn.Write(EncodeState(MsgFull, State{Epoch: 1, Seq: 1, Gen: 5, Payload: full})); err != nil {
		t.Fatalf("send full: %v", err)
	}
	msgType, payload, err = ReadMsg(conn)
	if err != nil || msgType != MsgApplied {
		t.Fatalf("ack: type %d, %v", msgType, err)
	}
	if a, _ := DecodeApplied(payload); a.Gen != 5 {
		t.Fatalf("applied gen %d, want 5", a.Gen)
	}

	// A delta claiming base gen 5 with a wrong base digest: the chain
	// is broken, the standby must not apply it.
	bad := &store.Delta{
		BaseGen: 5, Gen: 6, Epoch: 1,
		CreatedUnixNano: cp.CreatedUnixNano,
		Frames:          200,
		BaseEntries:     1,
		BaseDigest:      0xdeadbeef,
		Shards:          cp.Shards,
	}
	badBytes, err := store.EncodeDelta(bad)
	if err != nil {
		t.Fatalf("encode bad delta: %v", err)
	}
	if _, err := conn.Write(EncodeState(MsgDelta, State{Epoch: 1, Seq: 2, Gen: 6, BaseGen: 5, Payload: badBytes})); err != nil {
		t.Fatalf("send bad delta: %v", err)
	}
	msgType, payload, err = ReadMsg(conn)
	if err != nil || msgType != MsgApplied {
		t.Fatalf("reply to bad delta: type %d, %v", msgType, err)
	}
	if a, _ := DecodeApplied(payload); a.Gen != 5 {
		t.Fatalf("standby reports gen %d after rejected delta, want 5", a.Gen)
	}
	if _, _, err := ReadMsg(conn); err == nil {
		t.Fatal("standby kept the connection open after a chain break")
	}
	if got := sb.Gen(); got != 5 {
		t.Fatalf("standby state advanced to gen %d on a bad delta", got)
	}

	// The reconnect Hello asks for a full (gen 0), not a delta resume.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer conn2.Close()
	msgType, payload, err = ReadMsg(conn2)
	if err != nil || msgType != MsgHello {
		t.Fatalf("second hello: type %d, %v", msgType, err)
	}
	if h, _ := DecodeHello(payload); h.Gen != 0 {
		t.Fatalf("second hello gen %d, want 0 (force full)", h.Gen)
	}
}

// TestFencingEpochs proves the no-split-brain property: a standby that
// has seen a newer epoch rejects a staler primary's stream with a
// Fenced reply, the stale primary demotes itself permanently, and a
// promoted standby fences even the epoch it replicated from.
func TestFencingEpochs(t *testing.T) {
	tr := telemetry.New(telemetry.Config{})
	sb, addr := startStandby(t, StandbyConfig{Tracer: tr, Logf: t.Logf})

	newPrimary := func(epoch uint64, onFenced func(uint64)) *Primary {
		entries := []*core.ModelEntry{testEntry("m0")}
		var frames int64
		return NewPrimary(PrimaryConfig{
			Addrs: []string{addr},
			Epoch: epoch,
			Capture: func() *store.Checkpoint {
				frames += 100
				return testCheckpoint(t, entries, frames)
			},
			OnFenced: onFenced,
			Logf:     t.Logf,
		})
	}

	var fencedBy uint64
	stale := newPrimary(1, func(epoch uint64) { fencedBy = epoch })
	defer stale.Close()
	if err := stale.Cycle(); err != nil {
		t.Fatalf("stale primary first cycle: %v", err)
	}

	// A newer primary takes over the standby; the standby adopts its
	// epoch.
	newer := newPrimary(2, nil)
	defer newer.Close()
	if err := newer.Cycle(); err != nil {
		t.Fatalf("newer primary cycle: %v", err)
	}
	if got := sb.Epoch(); got != 2 {
		t.Fatalf("standby epoch %d, want 2", got)
	}

	// The stale primary's still-open connection streams epoch 1 and is
	// rejected in-band with a Fenced message.
	if err := stale.Cycle(); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale primary cycle = %v, want ErrFenced", err)
	}
	if !stale.Fenced() || fencedBy != 2 {
		t.Fatalf("stale primary fenced=%v by epoch %d, want true, 2", stale.Fenced(), fencedBy)
	}
	// Fencing is terminal: no capture, no dial, just ErrFenced.
	if err := stale.Cycle(); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced primary cycle = %v, want ErrFenced", err)
	}

	// Promotion bumps past everything seen and severs the stream; the
	// ex-primary is fenced at reconnect, before any state flows.
	cp, epoch, err := sb.Promote("probe failures")
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if epoch != 3 || cp.Epoch != 3 {
		t.Fatalf("promoted epoch %d, checkpoint epoch %d, want 3, 3", epoch, cp.Epoch)
	}
	var newerFenced uint64
	newer.cfg.OnFenced = func(e uint64) { newerFenced = e }
	if err := newer.Cycle(); !errors.Is(err, ErrFenced) {
		t.Fatalf("ex-primary cycle after promotion = %v, want ErrFenced", err)
	}
	if newerFenced != 3 {
		t.Fatalf("ex-primary fenced by epoch %d, want 3", newerFenced)
	}

	// Promote is idempotent and keeps the epoch.
	if _, again, err := sb.Promote("again"); err != nil || again != 3 {
		t.Fatalf("second promote = epoch %d, %v; want 3, nil", again, err)
	}
	if got := tr.Snapshot().Promotions; got != 2 {
		t.Fatalf("promotions counter %d, want 2", got)
	}
}

// TestPromoteWithoutState rejects promotion before any replication.
func TestPromoteWithoutState(t *testing.T) {
	sb := NewStandby(StandbyConfig{})
	if _, _, err := sb.Promote("too early"); !errors.Is(err, ErrNoState) {
		t.Fatalf("promote with no state = %v, want ErrNoState", err)
	}
}

// TestSeedResumesFromGeneration checks a warm-restarted standby greets
// with its loaded generation, so the primary resumes with a delta.
func TestSeedResumesFromGeneration(t *testing.T) {
	entries := []*core.ModelEntry{testEntry("m0")}
	cp := testCheckpoint(t, entries, 100)
	cp.Gen, cp.Epoch = 3, 2

	sb := NewStandby(StandbyConfig{})
	if err := sb.Seed(cp, nil); err != nil {
		t.Fatalf("seed: %v", err)
	}
	if sb.Gen() != 3 || sb.Epoch() != 2 {
		t.Fatalf("seeded standby gen %d epoch %d, want 3, 2", sb.Gen(), sb.Epoch())
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go sb.Serve(ln)
	defer sb.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	msgType, payload, err := ReadMsg(conn)
	if err != nil || msgType != MsgHello {
		t.Fatalf("hello: type %d, %v", msgType, err)
	}
	h, err := DecodeHello(payload)
	if err != nil {
		t.Fatalf("decode hello: %v", err)
	}
	if h.Gen != 3 || h.Epoch != 2 {
		t.Fatalf("seeded hello %+v, want gen 3 epoch 2", h)
	}
}
