package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"videodrift/internal/store"
	"videodrift/internal/telemetry"
)

// ErrFenced reports that a standby answered with a higher fencing
// epoch: a newer primary exists and this one must stop replicating
// (and, in driftserve, stop serving — split-brain prevention).
var ErrFenced = errors.New("replica: fenced by a newer epoch")

// PrimaryConfig parameterizes a replication primary.
type PrimaryConfig struct {
	// Addrs are the standby replication addresses the primary dials.
	Addrs []string
	// Epoch is the fencing epoch this primary streams under (≥ 1; a
	// warm-restarted primary resumes the epoch from its checkpoint).
	Epoch uint64
	// Capture produces a consistent checkpoint of the fleet between
	// batches; nil results skip the cycle. The primary stamps Gen and
	// Epoch on the returned checkpoint.
	Capture func() *store.Checkpoint
	// Interval is the steady-state replication cadence of Run
	// (default 1s).
	Interval time.Duration
	// DialTimeout bounds each standby dial (default 2s); ReplyTimeout
	// bounds each hello/ack round trip (default 10s).
	DialTimeout  time.Duration
	ReplyTimeout time.Duration
	// Tracer records replica_delta_sent events and the lag gauge.
	Tracer *telemetry.Tracer
	// Logf logs connection churn; nil is silent.
	Logf func(format string, args ...any)
	// OnFenced is called once, with the winning epoch, when any standby
	// fences this primary.
	OnFenced func(epoch uint64)
	// TxFault, when set, intercepts every outgoing message (the seeded
	// replication-fault seam, internal/faults.ReplicaInjector): it may
	// rewrite the bytes and report tear=true, in which case the primary
	// writes the mangled prefix and drops the connection — a torn
	// stream mid-generation.
	TxFault func(msg int, b []byte) ([]byte, bool)
}

// standbyLink is the primary's view of one standby connection. connMu
// guards the conn pointer only (so Close can sever a link mid-I/O);
// the generation bookkeeping is guarded by the primary's mu, and seq
// is touched only by the single Cycle goroutine.
type standbyLink struct {
	addr string

	connMu sync.Mutex
	conn   net.Conn

	seq uint64 // per-connection message sequence

	// heldGen is the generation the standby holds (from its Hello, then
	// from our successful sends); appliedGen is the last generation it
	// acknowledged. Guarded by Primary.mu.
	heldGen    uint64
	appliedGen uint64
}

// setConn swaps the link's connection under its lock.
func (l *standbyLink) setConn(c net.Conn) {
	l.connMu.Lock()
	l.conn = c
	l.connMu.Unlock()
}

// getConn reads the link's connection under its lock.
func (l *standbyLink) getConn() net.Conn {
	l.connMu.Lock()
	defer l.connMu.Unlock()
	return l.conn
}

// drop closes the link's connection; the next cycle reconnects.
func (l *standbyLink) drop() {
	l.connMu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.connMu.Unlock()
}

// Primary replicates captured checkpoints to the configured standbys:
// a full snapshot to establish each standby's base, then deltas while
// the standby keeps pace, with resume-from-generation on reconnect.
// Cycle is the synchronous unit (capture → diff → send → ack); Run
// drives it on a ticker. Cycle calls must be serialized (Run does);
// the observer methods (Gen, Lag, Fenced) are safe concurrently, and
// Close may sever connections from another goroutine.
type Primary struct {
	cfg   PrimaryConfig
	links []*standbyLink

	// last/crcs are the previous cycle's capture and entry fingerprint,
	// touched only by the Cycle goroutine.
	last *store.Checkpoint
	crcs []uint32

	mu       sync.Mutex
	gen      uint64
	fenced   bool
	fencedBy uint64
	txMsgs   int
	closed   bool
}

// NewPrimary builds a replication primary. It does not dial; the first
// Cycle does.
func NewPrimary(cfg PrimaryConfig) *Primary {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ReplyTimeout <= 0 {
		cfg.ReplyTimeout = 10 * time.Second
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	p := &Primary{cfg: cfg}
	for _, a := range cfg.Addrs {
		p.links = append(p.links, &standbyLink{addr: a})
	}
	return p
}

// Epoch returns the fencing epoch this primary streams under.
func (p *Primary) Epoch() uint64 { return p.cfg.Epoch }

// Gen returns the last generation captured.
func (p *Primary) Gen() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen
}

// Fenced reports whether a standby has fenced this primary.
func (p *Primary) Fenced() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fenced
}

// Lag returns the generation gap to the slowest standby.
func (p *Primary) Lag() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.gen - p.minAppliedGen())
}

// minAppliedGen returns the slowest standby's acknowledged generation.
// The caller holds p.mu.
func (p *Primary) minAppliedGen() uint64 {
	min := p.gen
	for _, l := range p.links {
		if l.appliedGen < min {
			min = l.appliedGen
		}
	}
	return min
}

// logf logs through the configured sink.
func (p *Primary) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// Run drives Cycle on the configured interval until stop closes or the
// primary is fenced.
func (p *Primary) Run(stop <-chan struct{}) {
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if err := p.Cycle(); err != nil {
				if errors.Is(err, ErrFenced) {
					return
				}
				p.logf("replica: cycle: %v", err)
			}
		}
	}
}

// Cycle captures one generation and ships it to every standby: a delta
// when the standby holds the previous generation, a full snapshot
// otherwise (first contact, lagging standby, unchainable diff). Send
// failures drop the connection and retry once within the cycle — a
// torn write costs a reconnect, not a generation — and a standby that
// stays unreachable simply lags until a later cycle. It returns
// ErrFenced permanently once any standby reports a newer epoch.
func (p *Primary) Cycle() error {
	p.mu.Lock()
	if p.fenced {
		p.mu.Unlock()
		return ErrFenced
	}
	if p.closed {
		p.mu.Unlock()
		return errors.New("replica: primary closed")
	}
	prevGen := p.gen
	p.mu.Unlock()

	cp := p.cfg.Capture()
	if cp == nil {
		return nil
	}
	cp.Epoch = p.cfg.Epoch
	cp.Gen = prevGen + 1

	// Diff against the previous cycle's capture. Model entries are
	// shared by pointer across captures, so the diff re-encodes nothing
	// in steady state and the delta is dominated by shard runtime.
	var (
		deltaBytes []byte
		fullBytes  []byte
		nextCRCs   []uint32
	)
	if p.last != nil {
		d, crcs, err := store.DiffCheckpoints(p.last, p.crcs, cp)
		if err == nil {
			if deltaBytes, err = store.EncodeDelta(d); err != nil {
				return fmt.Errorf("replica: encode delta: %w", err)
			}
			nextCRCs = crcs
		} else if !errors.Is(err, store.ErrDeltaBase) {
			return fmt.Errorf("replica: diff: %w", err)
		}
	}
	if nextCRCs == nil {
		// No base (first cycle) or unchainable: everyone gets a full.
		data, crcs, err := store.EncodeWithCRCs(cp)
		if err != nil {
			return fmt.Errorf("replica: encode: %w", err)
		}
		fullBytes, nextCRCs = data, crcs
	}

	p.last, p.crcs = cp, nextCRCs
	p.mu.Lock()
	p.gen = cp.Gen
	p.mu.Unlock()

	var firstErr error
	for _, l := range p.links {
		kind, sent, err := p.ship(l, cp, prevGen, deltaBytes, &fullBytes)
		if err != nil {
			if errors.Is(err, ErrFenced) {
				return err
			}
			if firstErr == nil {
				firstErr = err
			}
			p.logf("replica: standby %s: %v", l.addr, err)
			continue
		}
		p.mu.Lock()
		lag := int(p.gen - p.minAppliedGen())
		p.mu.Unlock()
		p.cfg.Tracer.ReplicaDeltaSent(cp.Gen, cp.Epoch, kind, sent, lag)
	}
	return firstErr
}

// ship sends generation cp to one standby, choosing delta versus full
// by what the standby holds, with one reconnect retry. fullBytes is
// lazily encoded on first need and cached for the other standbys. It
// returns the kind shipped and the wire payload size.
func (p *Primary) ship(l *standbyLink, cp *store.Checkpoint, prevGen uint64, deltaBytes []byte, fullBytes *[]byte) (string, int, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if l.getConn() == nil {
			if err := p.connect(l); err != nil {
				lastErr = err
				continue
			}
		}
		p.mu.Lock()
		held := l.heldGen
		p.mu.Unlock()
		kind := "full"
		var wire []byte
		if deltaBytes != nil && held == prevGen && prevGen > 0 {
			kind = "delta"
			wire = EncodeState(MsgDelta, State{
				Epoch: cp.Epoch, Seq: l.seq + 1, Gen: cp.Gen, BaseGen: prevGen, Payload: deltaBytes,
			})
		} else {
			if *fullBytes == nil {
				data, _, err := store.EncodeWithCRCs(cp)
				if err != nil {
					return "", 0, fmt.Errorf("replica: encode: %w", err)
				}
				*fullBytes = data
			}
			wire = EncodeState(MsgFull, State{
				Epoch: cp.Epoch, Seq: l.seq + 1, Gen: cp.Gen, Payload: *fullBytes,
			})
		}
		if err := p.send(l, wire); err != nil {
			lastErr = err
			l.drop()
			continue
		}
		l.seq++
		ack, err := p.readAck(l)
		if err != nil {
			lastErr = err
			if errors.Is(err, ErrFenced) {
				return "", 0, err
			}
			l.drop()
			continue
		}
		p.mu.Lock()
		l.heldGen = cp.Gen
		l.appliedGen = ack.Gen
		p.mu.Unlock()
		return kind, len(wire), nil
	}
	return "", 0, lastErr
}

// connect dials a standby and consumes its Hello, adopting the
// standby's applied generation as the resume point. A Hello carrying a
// newer epoch fences the primary before anything is streamed.
func (p *Primary) connect(l *standbyLink) error {
	conn, err := net.DialTimeout("tcp", l.addr, p.cfg.DialTimeout)
	if err != nil {
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(p.cfg.ReplyTimeout))
	msgType, payload, err := ReadMsg(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("replica: hello: %w", err)
	}
	if msgType != MsgHello {
		conn.Close()
		return fmt.Errorf("replica: expected hello, got message type %d", msgType)
	}
	h, err := DecodeHello(payload)
	if err != nil {
		conn.Close()
		return fmt.Errorf("replica: hello: %w", err)
	}
	if h.Epoch > p.cfg.Epoch {
		conn.Close()
		p.fence(h.Epoch)
		return ErrFenced
	}
	l.setConn(conn)
	l.seq = 0
	p.mu.Lock()
	l.heldGen = h.Gen
	l.appliedGen = h.Gen
	p.mu.Unlock()
	p.logf("replica: connected to standby %s (epoch %d, resume gen %d)", l.addr, h.Epoch, h.Gen)
	return nil
}

// send writes one message through the fault seam.
func (p *Primary) send(l *standbyLink, wire []byte) error {
	conn := l.getConn()
	if conn == nil {
		return errors.New("replica: connection closed")
	}
	if p.cfg.TxFault != nil {
		p.mu.Lock()
		msg := p.txMsgs
		p.txMsgs++
		p.mu.Unlock()
		out, tear := p.cfg.TxFault(msg, wire)
		if tear {
			if len(out) > 0 {
				_, _ = conn.Write(out)
			}
			return errors.New("replica: injected torn write")
		}
		wire = out
	}
	_ = conn.SetWriteDeadline(time.Now().Add(p.cfg.ReplyTimeout))
	if _, err := conn.Write(wire); err != nil {
		return err
	}
	return nil
}

// readAck reads the standby's reply to one streamed generation:
// Applied advances the lag accounting, Fenced demotes this primary.
func (p *Primary) readAck(l *standbyLink) (Applied, error) {
	conn := l.getConn()
	if conn == nil {
		return Applied{}, errors.New("replica: connection closed")
	}
	_ = conn.SetReadDeadline(time.Now().Add(p.cfg.ReplyTimeout))
	msgType, payload, err := ReadMsg(conn)
	if err != nil {
		return Applied{}, err
	}
	switch msgType {
	case MsgApplied:
		return DecodeApplied(payload)
	case MsgFenced:
		f, err := DecodeFenced(payload)
		if err != nil {
			return Applied{}, err
		}
		p.fence(f.Epoch)
		return Applied{}, ErrFenced
	default:
		return Applied{}, fmt.Errorf("replica: expected applied, got message type %d", msgType)
	}
}

// fence records a terminal demotion and notifies the owner once.
func (p *Primary) fence(epoch uint64) {
	p.mu.Lock()
	first := !p.fenced
	p.fenced = true
	if epoch > p.fencedBy {
		p.fencedBy = epoch
	}
	p.mu.Unlock()
	if first {
		p.logf("replica: fenced by epoch %d, stopping replication", epoch)
		if p.cfg.OnFenced != nil {
			p.cfg.OnFenced(epoch)
		}
	}
}

// Close drops every standby connection. Cycle fails afterwards.
func (p *Primary) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	for _, l := range p.links {
		l.drop()
	}
}
