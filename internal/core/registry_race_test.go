package core

import (
	"sync"
	"testing"

	"videodrift/internal/stats"
)

// TestRegistryConcurrentGrowth exercises the registry under the
// checkpointed multi-shard shape: reader goroutines continuously take
// registry snapshots and run MSBI selection over them (what shards do
// after a drift) while the main goroutine grows the registry with newly
// trained models. Run under -race, this pins down the Registry locking
// contract.
func TestRegistryConcurrentGrowth(t *testing.T) {
	f := getFixture()
	reg := NewRegistry(f.day)
	window := streamFrames(nightC(), 15, 91)

	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := stats.NewRNG(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				entries := reg.Entries()
				if len(entries) == 0 {
					t.Error("registry snapshot empty")
					return
				}
				MSBI(window, entries, DefaultMSBIConfig(), rng)
				_ = reg.Len()
				_ = reg.Names()
				_ = reg.Get("night")
				_ = reg.String()
			}
		}(int64(40 + w))
	}

	reg.Add(f.night)
	reg.Add(f.rain)
	close(stop)
	wg.Wait()

	if reg.Len() != 3 {
		t.Fatalf("registry has %d entries, want 3", reg.Len())
	}
	if got := reg.Names(); got[0] != "day" || got[1] != "night" || got[2] != "rain" {
		t.Errorf("insertion order lost: %v", got)
	}
	if reg.Get("rain") != f.rain {
		t.Error("Get(rain) returned the wrong entry")
	}
	// A snapshot taken before growth must not see later entries.
	snap := reg.Entries()
	reg.Add(f.day)
	if len(snap) != 3 {
		t.Errorf("snapshot mutated by a later Add: %d entries", len(snap))
	}
}

// TestRegistrySnapshotEpochs pins the copy-on-write contract the
// per-shard entry caches rely on: epochs increase by exactly one per
// Add, snapshots are immutable prefix-consistent views, and equal
// epochs mean identical entry lists.
func TestRegistrySnapshotEpochs(t *testing.T) {
	f := getFixture()
	reg := NewRegistry(f.day)
	s0 := reg.Snapshot()
	if s0.Epoch() != 0 || s0.Len() != 1 {
		t.Fatalf("fresh registry snapshot: epoch=%d len=%d, want 0/1", s0.Epoch(), s0.Len())
	}
	reg.Add(f.night)
	s1 := reg.Snapshot()
	reg.Add(f.rain)
	s2 := reg.Snapshot()
	if s1.Epoch() != 1 || s2.Epoch() != 2 {
		t.Fatalf("epochs after two Adds: %d, %d, want 1, 2", s1.Epoch(), s2.Epoch())
	}
	// Prefix stability: every older snapshot is a prefix of every newer
	// one, entry for entry.
	for _, pair := range [][2]*RegistrySnap{{s0, s1}, {s1, s2}, {s0, s2}} {
		old, new := pair[0], pair[1]
		if old.Len() >= new.Len() {
			t.Fatalf("older snapshot not shorter: %d vs %d", old.Len(), new.Len())
		}
		for i, e := range old.Entries() {
			if new.Entries()[i] != e {
				t.Fatalf("entry %d differs between epochs %d and %d", i, old.Epoch(), new.Epoch())
			}
		}
	}
	// Same-epoch snapshots are the same view.
	if again := reg.Snapshot(); again.Epoch() != s2.Epoch() || again.Len() != s2.Len() {
		t.Errorf("re-taken snapshot differs at same epoch: %d/%d vs %d/%d",
			again.Epoch(), again.Len(), s2.Epoch(), s2.Len())
	}
}

// TestRegistrySnapshotConcurrent grows the registry while readers
// continuously take lock-free snapshots, asserting epoch monotonicity
// and length consistency under -race.
func TestRegistrySnapshotConcurrent(t *testing.T) {
	f := getFixture()
	reg := NewRegistry(f.day)
	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastEpoch := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := reg.Snapshot()
				if s.Epoch() < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", s.Epoch(), lastEpoch)
					return
				}
				lastEpoch = s.Epoch()
				if int(s.Epoch()) != s.Len()-1 {
					t.Errorf("epoch %d inconsistent with %d entries", s.Epoch(), s.Len())
					return
				}
			}
		}()
	}
	for i := 0; i < 16; i++ {
		if i%2 == 0 {
			reg.Add(f.night)
		} else {
			reg.Add(f.rain)
		}
	}
	close(stop)
	wg.Wait()
	if got := reg.Snapshot(); got.Epoch() != 16 || got.Len() != 17 {
		t.Fatalf("final snapshot epoch=%d len=%d, want 16/17", got.Epoch(), got.Len())
	}
}
