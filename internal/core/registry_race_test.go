package core

import (
	"sync"
	"testing"

	"videodrift/internal/stats"
)

// TestRegistryConcurrentGrowth exercises the registry under the
// checkpointed multi-shard shape: reader goroutines continuously take
// registry snapshots and run MSBI selection over them (what shards do
// after a drift) while the main goroutine grows the registry with newly
// trained models. Run under -race, this pins down the Registry locking
// contract.
func TestRegistryConcurrentGrowth(t *testing.T) {
	f := getFixture()
	reg := NewRegistry(f.day)
	window := streamFrames(nightC(), 15, 91)

	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := stats.NewRNG(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				entries := reg.Entries()
				if len(entries) == 0 {
					t.Error("registry snapshot empty")
					return
				}
				MSBI(window, entries, DefaultMSBIConfig(), rng)
				_ = reg.Len()
				_ = reg.Names()
				_ = reg.Get("night")
				_ = reg.String()
			}
		}(int64(40 + w))
	}

	reg.Add(f.night)
	reg.Add(f.rain)
	close(stop)
	wg.Wait()

	if reg.Len() != 3 {
		t.Fatalf("registry has %d entries, want 3", reg.Len())
	}
	if got := reg.Names(); got[0] != "day" || got[1] != "night" || got[2] != "rain" {
		t.Errorf("insertion order lost: %v", got)
	}
	if reg.Get("rain") != f.rain {
		t.Error("Get(rain) returned the wrong entry")
	}
	// A snapshot taken before growth must not see later entries.
	snap := reg.Entries()
	reg.Add(f.day)
	if len(snap) != 3 {
		t.Errorf("snapshot mutated by a later Add: %d entries", len(snap))
	}
}
