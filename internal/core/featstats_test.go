package core

import (
	"math"
	"testing"

	"videodrift/internal/telemetry"
	"videodrift/internal/tensor"
	"videodrift/internal/vision"
)

// featRef builds a reference sample whose dimensions have distinct,
// known distributions: dim d is centered at d with spread 0.1·(d+1).
func featRef(n, dim int) []tensor.Vector {
	ref := make([]tensor.Vector, n)
	for i := range ref {
		v := make(tensor.Vector, dim)
		for d := range v {
			// Deterministic triangle wave in [-1, 1], no RNG needed.
			frac := float64((i*(d+3))%17)/8.0 - 1
			v[d] = float64(d) + 0.1*float64(d+1)*frac
		}
		ref[i] = v
	}
	return ref
}

// TestFeatStatsAttributionRanksShiftedDim shifts exactly one dimension of
// the recent window and checks that attribution ranks it first, with the
// per-dimension statistics pointing in the right direction.
func TestFeatStatsAttributionRanksShiftedDim(t *testing.T) {
	const dim = vision.AppearanceDim
	fw := NewFeatWindowStats(featRef(120, dim))
	if fw.Attribution() != nil {
		t.Fatal("attribution before any observation")
	}

	const shifted = 2
	for i := 0; i < 40; i++ {
		v := make(tensor.Vector, dim)
		for d := range v {
			frac := float64((i*(d+5))%17)/8.0 - 1
			v[d] = float64(d) + 0.1*float64(d+1)*frac
		}
		v[shifted] += 1.5 // well outside dim 2's ±0.3 reference spread
		fw.Observe(v)
	}
	if fw.Recent() != 40 {
		t.Fatalf("recent window holds %d", fw.Recent())
	}

	attr := fw.Attribution()
	if len(attr) != dim {
		t.Fatalf("attribution covers %d dims, want %d", len(attr), dim)
	}
	top := attr[0]
	if top.Dim != shifted {
		t.Fatalf("top attribution is dim %d (%s), want shifted dim %d: %+v",
			top.Dim, top.Name, shifted, attr)
	}
	if top.Name != vision.AppearanceDimNames[shifted] {
		t.Errorf("top dim named %q, want %q", top.Name, vision.AppearanceDimNames[shifted])
	}
	if top.JS <= attr[1].JS {
		t.Errorf("shifted dim JS %v does not dominate runner-up %v", top.JS, attr[1].JS)
	}
	if top.MeanShift < 1.0 {
		t.Errorf("shifted dim mean shift %v, want ≈ 1.5", top.MeanShift)
	}
	for _, ds := range attr {
		if ds.KL < 0 || ds.JS < 0 || math.IsNaN(ds.KL) || math.IsInf(ds.KL, 0) {
			t.Errorf("dim %d divergence not finite and non-negative: %+v", ds.Dim, ds)
		}
		if ds.JS > math.Ln2+1e-12 {
			t.Errorf("dim %d JS %v exceeds ln 2", ds.Dim, ds.JS)
		}
	}
	// Ranking is JS-descending with index tiebreak.
	for i := 1; i < len(attr); i++ {
		if attr[i-1].JS < attr[i].JS {
			t.Errorf("attribution not sorted at %d: %v < %v", i, attr[i-1].JS, attr[i].JS)
		}
	}
}

// TestFeatStatsDeterministicAndRestorable checks the two properties replay
// relies on: identical observation streams yield bit-identical
// attributions, and a State/SetState round-trip through a fresh
// accumulator (rebuilt from the same reference) does too — including when
// the ring has wrapped.
func TestFeatStatsDeterministicAndRestorable(t *testing.T) {
	const dim = 4
	ref := featRef(100, dim)
	obs := make([]tensor.Vector, featRecentCap+20) // force a ring wrap
	for i := range obs {
		v := make(tensor.Vector, dim)
		for d := range v {
			v[d] = float64(d) + 0.05*float64((i*(d+7))%23) - 0.5
		}
		obs[i] = v
	}

	a, b := NewFeatWindowStats(ref), NewFeatWindowStats(ref)
	for _, v := range obs {
		a.Observe(v)
		b.Observe(v)
	}
	attrEq := func(t *testing.T, x, y []telemetry.DimShift, what string) {
		t.Helper()
		if len(x) != len(y) {
			t.Fatalf("%s: %d vs %d dims", what, len(x), len(y))
		}
		for i := range x {
			if x[i].Dim != y[i].Dim ||
				math.Float64bits(x[i].KL) != math.Float64bits(y[i].KL) ||
				math.Float64bits(x[i].JS) != math.Float64bits(y[i].JS) ||
				math.Float64bits(x[i].MeanShift) != math.Float64bits(y[i].MeanShift) ||
				math.Float64bits(x[i].VarRatio) != math.Float64bits(y[i].VarRatio) {
				t.Fatalf("%s: rank %d differs: %+v vs %+v", what, i, x[i], y[i])
			}
		}
	}
	attrEq(t, a.Attribution(), b.Attribution(), "identical streams")

	st := a.State()
	if len(st.Recent) != featRecentCap {
		t.Fatalf("state holds %d vectors, want the full ring %d", len(st.Recent), featRecentCap)
	}
	restored := NewFeatWindowStats(ref)
	restored.SetState(st)
	attrEq(t, restored.Attribution(), a.Attribution(), "state round-trip")

	// The restored ring must also evolve identically from here on.
	next := make(tensor.Vector, dim)
	for d := range next {
		next[d] = float64(d) + 0.33
	}
	a.Observe(next)
	restored.Observe(next)
	attrEq(t, restored.Attribution(), a.Attribution(), "post-restore observation")

	// Reset drops the window but keeps the reference usable.
	restored.Reset()
	if restored.Recent() != 0 || restored.Attribution() != nil {
		t.Error("Reset left recent state behind")
	}
	restored.Observe(next)
	if restored.Recent() != 1 {
		t.Error("post-Reset observation not recorded")
	}
	// Mismatched vector lengths are ignored, not folded in.
	restored.Observe(make(tensor.Vector, dim+1))
	if restored.Recent() != 1 {
		t.Error("mismatched-length vector was folded into the window")
	}
}
