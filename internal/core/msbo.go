package core

import (
	"math"

	"videodrift/internal/classifier"
	"videodrift/internal/parallel"
	"videodrift/internal/stats"
	"videodrift/internal/telemetry"
)

// MSBOConfig carries the Model-Selection-Based-on-Output parameters
// (Algorithm 3).
type MSBOConfig struct {
	WT int // post-drift frames evaluated (§6.2)
	// Workers bounds the goroutines scoring candidate ensembles (<= 0
	// uses GOMAXPROCS). Brier scoring consumes no randomness, so the
	// selection is identical for any worker count.
	Workers int
}

// DefaultMSBOConfig returns the paper's W_T = 10.
func DefaultMSBOConfig() MSBOConfig { return MSBOConfig{WT: 10} }

// MSBOThresholds holds the calibrated per-model uncertainty baselines of
// §5.2.2: PCAvg[k] is the mean Brier score of model k's ensemble on the
// calibration samples of the *other* distributions (its typical
// off-distribution uncertainty) and Sigma[k] the standard deviation across
// those distributions. A candidate must beat PCAvg − Sigma to be deployed
// (Algorithm 3 line 15).
type MSBOThresholds struct {
	PCAvg map[string]float64
	Sigma map[string]float64
}

// Threshold returns the deployment threshold for the named model and
// whether calibration data for it exists. The margin below the
// off-distribution baseline is at least 15% of the baseline so that small
// registries (where the σ across other distributions is estimated from
// one or two values and can collapse to zero) still demand a clear
// improvement over "confidently wrong".
func (t MSBOThresholds) Threshold(name string) (float64, bool) {
	avg, ok := t.PCAvg[name]
	if !ok {
		return 0, false
	}
	margin := t.Sigma[name]
	if min := 0.15 * avg; margin < min {
		margin = min
	}
	return avg - margin, true
}

// CalibrateMSBO computes MSBOThresholds from the registry's retained
// calibration samples S_{T_i}. Entries without ensembles or calibration
// samples are skipped. With fewer than two supervised entries no
// calibration is possible and the thresholds are empty (MSBO then falls
// back to an absolute Brier bound).
func CalibrateMSBO(entries []*ModelEntry) MSBOThresholds {
	th := MSBOThresholds{PCAvg: map[string]float64{}, Sigma: map[string]float64{}}
	// The m×(m−1) cross-scores are independent; compute each model's row
	// concurrently and fold the results serially in registry order.
	rows := make([][]float64, len(entries))
	parallel.Shared(0).ForEach(len(entries), func(i int) {
		k := entries[i]
		if k.Ensemble == nil {
			return
		}
		var briers []float64
		for _, other := range entries {
			if other == k || len(other.CalibSample) == 0 {
				continue
			}
			briers = append(briers, k.Ensemble.AvgBrier(other.CalibSample))
		}
		rows[i] = briers
	})
	for i, k := range entries {
		if len(rows[i]) == 0 {
			continue
		}
		th.PCAvg[k.Name] = stats.Mean(rows[i])
		th.Sigma[k.Name] = stats.StdDev(rows[i])
	}
	return th
}

// fallbackBrier is the absolute acceptance bound used when no calibrated
// threshold exists (single-model registries): anything better than a
// maximally uncertain two-way prediction.
const fallbackBrier = 0.25

// MSBOResult reports one MSBO run.
type MSBOResult struct {
	Selected   *ModelEntry // nil when a new model must be trained
	Briers     map[string]float64
	BestBrier  float64
	FramesUsed int
	// Candidates records every scored ensemble's Brier on the window in
	// registry order; Rejected marks the best candidate when it failed
	// the calibrated deployment threshold (the train-new-model path).
	Candidates []telemetry.Candidate
}

// MSBO is Algorithm 3: it scores every provisioned ensemble's predictive
// uncertainty (Brier score, the proper scoring rule of §5.2.1) on the
// labeled post-drift window W_T and deploys the least-uncertain model if
// its score clears the calibrated baseline; otherwise it signals that a
// new model must be trained (Selected = nil).
func MSBO(window []classifier.Sample, entries []*ModelEntry, th MSBOThresholds, cfg MSBOConfig) MSBOResult {
	res := MSBOResult{Briers: map[string]float64{}, BestBrier: math.Inf(1)}
	if len(window) == 0 || len(entries) == 0 {
		return res
	}
	n := cfg.WT
	if n <= 0 || n > len(window) {
		n = len(window)
	}
	frames := window[:n]
	res.FramesUsed = n

	// Score every ensemble concurrently, then fold serially in registry
	// order so best-candidate ties resolve exactly as a serial scan.
	briers := make([]float64, len(entries))
	scored := make([]bool, len(entries))
	parallel.Shared(cfg.Workers).ForEach(len(entries), func(i int) {
		if entries[i].Ensemble == nil {
			return
		}
		briers[i] = entries[i].Ensemble.AvgBrier(frames)
		scored[i] = true
	})
	var best *ModelEntry
	for i, e := range entries {
		if !scored[i] {
			continue
		}
		b := briers[i]
		res.Briers[e.Name] = b
		res.Candidates = append(res.Candidates, telemetry.Candidate{Model: e.Name, Brier: b})
		if b < res.BestBrier {
			res.BestBrier = b
			best = e
		}
	}
	if best == nil {
		return res
	}
	limit, ok := th.Threshold(best.Name)
	if !ok {
		limit = fallbackBrier
	}
	if res.BestBrier <= limit {
		res.Selected = best
	} else {
		for i := range res.Candidates {
			if res.Candidates[i].Model == best.Name {
				res.Candidates[i].Rejected = true
			}
		}
	}
	return res
}
