package core

import "testing"

// TestProcessBatchMatchesSerial pins the micro-batching contract at the
// pipeline layer: ProcessBatch over any partition of the stream yields
// bit-identical outcomes, metrics and deployments to per-frame Process.
func TestProcessBatchMatchesSerial(t *testing.T) {
	f := getFixture()
	stream := append(streamFrames(dayC(), 120, 71), streamFrames(nightC(), 140, 72)...)
	build := func() *Pipeline {
		cfg := DefaultPipelineConfig(testDim, testNumClasses)
		cfg.Provision = quickProvision(41)
		return NewPipeline(NewRegistry(f.day, f.night), testLabeler, cfg)
	}
	ref := build()
	want := make([]Outcome, 0, len(stream))
	for _, fr := range stream {
		want = append(want, ref.Process(fr))
	}
	for _, size := range []int{1, 7, 32} {
		p := build()
		got := make([]Outcome, 0, len(stream))
		for at := 0; at < len(stream); at += size {
			got = append(got, p.ProcessBatch(stream[at:min(at+size, len(stream))])...)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d frame %d: outcome %+v, serial %+v", size, i, got[i], want[i])
			}
		}
		if p.Metrics() != ref.Metrics() {
			t.Errorf("batch=%d: metrics %+v, serial %+v", size, p.Metrics(), ref.Metrics())
		}
		if p.Current().Name != ref.Current().Name {
			t.Errorf("batch=%d: deployed %q, serial %q", size, p.Current().Name, ref.Current().Name)
		}
	}
}
