package core

import (
	"fmt"

	"videodrift/internal/stats"
	"videodrift/internal/vidsim"
)

// PipelineSnapshot is a serializable copy of a pipeline's mutable
// runtime state. Together with the registry (persisted separately, since
// entries are shared across shards), the labeler and the PipelineConfig,
// RestorePipeline rebuilds a pipeline whose every subsequent Process
// call returns exactly what the snapshotted pipeline would have
// returned — drift declarations, selections and trained models included.
//
//driftlint:snapshot encode=Pipeline.Snapshot decode=RestorePipeline
type PipelineSnapshot struct {
	// Current is the registry index (insertion order) of the deployed
	// entry.
	Current int
	// State is the processing mode (0 monitoring, 1 selecting,
	// 2 training), mirroring pipelineState.
	State int
	// Buffer holds the frames collected so far in the selecting or
	// training state.
	Buffer []vidsim.Frame
	// Novel is the counter naming mid-stream-trained models.
	Novel   int
	Metrics Metrics
	// TrainFails and RetryWait are the degraded-mode training-retry
	// state (failed attempts for the current window; frames left of the
	// current backoff).
	TrainFails int
	RetryWait  int
	// RNG is the pipeline's tie-break generator position; DI is the
	// deployed inspector's state.
	RNG stats.RNGState
	DI  DISnapshot
}

// Snapshot captures the pipeline's runtime state for checkpointing. The
// buffer is copied, so the snapshot stays consistent while the pipeline
// keeps processing frames afterwards.
func (p *Pipeline) Snapshot() PipelineSnapshot {
	cur := -1
	for i, e := range p.reg.Snapshot().Entries() {
		if e == p.current {
			cur = i
			break
		}
	}
	return PipelineSnapshot{
		Current:    cur,
		State:      int(p.state),
		Buffer:     append([]vidsim.Frame(nil), p.buffer...),
		Novel:      p.novel,
		Metrics:    p.metrics,
		TrainFails: p.trainFails,
		RetryWait:  p.retryWait,
		RNG:        p.rng.State(),
		DI:         p.di.Snapshot(),
	}
}

// RestorePipeline rebuilds a pipeline from a snapshot over the given
// registry (which must contain the same entries, in the same order, as
// when the snapshot was taken — the checkpoint store guarantees this).
// The labeler and config play the same roles as in NewPipeline; the
// config's Tracer may differ from the original run's (telemetry is
// observational and restarts fresh).
func RestorePipeline(reg *Registry, labeler Labeler, cfg PipelineConfig, snap PipelineSnapshot) (*Pipeline, error) {
	if reg == nil || reg.Len() == 0 {
		return nil, fmt.Errorf("core: RestorePipeline needs a non-empty registry")
	}
	if cfg.Selector == SelectorMSBO && labeler == nil {
		return nil, fmt.Errorf("core: SelectorMSBO requires a labeler for the W_T window")
	}
	entries := reg.Entries()
	if snap.Current < 0 || snap.Current >= len(entries) {
		return nil, fmt.Errorf("core: snapshot deploys entry %d, registry has %d", snap.Current, len(entries))
	}
	if snap.State < int(stateMonitoring) || snap.State > int(stateTraining) {
		return nil, fmt.Errorf("core: snapshot has unknown pipeline state %d", snap.State)
	}
	p := &Pipeline{
		cfg:        cfg,
		reg:        reg,
		labeler:    labeler,
		rng:        stats.ResumeRNG(snap.RNG),
		current:    entries[snap.Current],
		state:      pipelineState(snap.State),
		buffer:     append([]vidsim.Frame(nil), snap.Buffer...),
		novel:      snap.Novel,
		metrics:    snap.Metrics,
		trainFails: snap.TrainFails,
		retryWait:  snap.RetryWait,
	}
	// MSBO thresholds are a pure function of the (bit-exactly restored)
	// ensembles and calibration samples; recomputing reproduces them
	// exactly instead of widening the checkpoint format.
	p.th = CalibrateMSBO(entries)
	di, err := RestoreDriftInspector(p.current, cfg.DI, snap.DI)
	if err != nil {
		return nil, err
	}
	p.di = di
	p.di.SetTracer(cfg.Tracer)
	return p, nil
}
