package core

import (
	"fmt"
	"time"

	"videodrift/internal/classifier"
	"videodrift/internal/stats"
	"videodrift/internal/telemetry"
	"videodrift/internal/vidsim"
)

// SelectorKind picks the model-selection algorithm the pipeline runs on a
// drift.
type SelectorKind int

// Selector kinds.
const (
	SelectorMSBI SelectorKind = iota
	SelectorMSBO
)

// String returns the selector's paper name.
func (s SelectorKind) String() string {
	if s == SelectorMSBO {
		return "MSBO"
	}
	return "MSBI"
}

// PipelineConfig configures the end-to-end drift-aware pipeline.
type PipelineConfig struct {
	DI       DIConfig
	MSBI     MSBIConfig
	MSBO     MSBOConfig
	Selector SelectorKind

	// Provision is used to train a new model when no provisioned model
	// fits the post-drift data (the trainNewModel path of §5.4).
	Provision ProvisionConfig
	// NewModelFrames is how many post-drift frames are collected before
	// training a new model (paper: 5k; scaled down by default here).
	NewModelFrames int
	// TrainAttempts is how many times a failed post-drift training is
	// retried before the pipeline gives up and degrades to the deployed
	// model (<=0 means 1: no retries). Failures include panics inside
	// Provision, which are caught and converted to errors.
	TrainAttempts int
	// TrainBackoffFrames is the backoff before the first training retry,
	// measured in frames rather than wall time so replay stays
	// deterministic (no clock). Doubles per attempt, capped at
	// TrainBackoffCap.
	TrainBackoffFrames int
	// TrainBackoffCap bounds the frame backoff growth (<=0 means no
	// cap).
	TrainBackoffCap int
	// TrainFault, when non-nil, is consulted before each training
	// attempt; a non-nil error fails the attempt. It is the
	// fault-injection hook (internal/faults) and must be deterministic
	// for replayable runs.
	TrainFault func() error
	// Seed drives the pipeline's tie-break randomness.
	Seed int64
	// Tracer receives structured events and stage latencies. Nil (the
	// default) disables tracing; the per-frame cost is then a pointer
	// compare per instrumented call site.
	Tracer *telemetry.Tracer
}

// DefaultPipelineConfig returns paper-parameter defaults scaled to the
// repo's synthetic frames.
func DefaultPipelineConfig(frameDim, numClasses int) PipelineConfig {
	return PipelineConfig{
		DI:             DefaultDIConfig(),
		MSBI:           DefaultMSBIConfig(),
		MSBO:           DefaultMSBOConfig(),
		Selector:       SelectorMSBO,
		Provision:      DefaultProvisionConfig(frameDim, numClasses),
		NewModelFrames: 256,

		TrainAttempts:      3,
		TrainBackoffFrames: 32,
		TrainBackoffCap:    256,

		Seed: 7,
	}
}

// pipelineState is the pipeline's processing mode.
type pipelineState int

const (
	stateMonitoring pipelineState = iota // DI watches every frame
	stateSelecting                       // collecting the selection window
	stateTraining                        // collecting frames for a new model
)

// Outcome reports what the pipeline did with one frame.
type Outcome struct {
	Prediction  int    // deployed model's query prediction for this frame
	Drift       bool   // a drift was declared on this frame
	SwitchedTo  string // non-empty when a model was deployed this frame
	TrainedNew  bool   // the switch deployed a freshly trained model
	Invocations int    // model invocations spent on this frame (1, or 0 when quarantined)
	Quarantined bool   // the admission gate rejected the frame before any processing
}

// Metrics accumulates pipeline statistics for the end-to-end evaluation
// (§6.3). SelectingFrames and TrainingFrames count the frames spent in
// the post-drift recovery states, so time-to-recover after a drift (the
// paper's §6.2 lag metric) is computable from metrics alone:
// recovery frames = SelectingFrames + TrainingFrames.
type Metrics struct {
	Frames            int
	ModelInvocations  int
	DriftsDetected    int
	ModelsSelected    int
	ModelsTrained     int
	SelectingFrames   int // frames spent collecting a selection window
	TrainingFrames    int // frames spent collecting new-model training data
	QuarantinedFrames int // malformed frames rejected by the admission gate
	TrainingFailures  int // failed post-drift training attempts (retried with backoff)
}

// Pipeline is the operational architecture of Figure 1: frames flow
// through the deployed model and the Drift Inspector; on a drift the Model
// Selector picks a provisioned model or triggers new-model training, the
// winner is deployed, and monitoring resumes. It is not safe for
// concurrent use.
type Pipeline struct {
	cfg     PipelineConfig
	reg     *Registry
	labeler Labeler
	rng     *stats.RNG

	current *ModelEntry
	di      *DriftInspector
	th      MSBOThresholds

	state  pipelineState
	buffer []vidsim.Frame
	novel  int // counter for naming trained models

	// Degraded-mode training-retry state: consecutive failed attempts
	// for the current training window, and how many more frames to wait
	// before the next attempt (frame-count backoff — deterministic, no
	// clock).
	trainFails int
	retryWait  int

	metrics Metrics
}

// NewPipeline deploys the registry's first entry and starts monitoring.
// The labeler (the annotation oracle) is required for SelectorMSBO and for
// the new-model training path; it may be nil for an unsupervised
// MSBI-only pipeline whose entries were provisioned without classifiers.
func NewPipeline(reg *Registry, labeler Labeler, cfg PipelineConfig) *Pipeline {
	if reg == nil || reg.Len() == 0 {
		panic("core: NewPipeline needs a non-empty registry")
	}
	if cfg.Selector == SelectorMSBO && labeler == nil {
		panic("core: SelectorMSBO requires a labeler for the W_T window")
	}
	p := &Pipeline{
		cfg:     cfg,
		reg:     reg,
		labeler: labeler,
		rng:     stats.NewRNG(cfg.Seed),
	}
	p.th = CalibrateMSBO(reg.Entries())
	p.deploy(reg.Entries()[0])
	return p
}

// Current returns the deployed model entry.
func (p *Pipeline) Current() *ModelEntry { return p.current }

// Metrics returns the accumulated pipeline statistics.
func (p *Pipeline) Metrics() Metrics { return p.metrics }

// Registry returns the pipeline's model registry (it grows when novel
// distributions force new models).
func (p *Pipeline) Registry() *Registry { return p.reg }

// Tracer returns the pipeline's telemetry tracer (nil when tracing is
// off).
func (p *Pipeline) Tracer() *telemetry.Tracer { return p.cfg.Tracer }

// Config returns a copy of the pipeline's configuration (forensics
// replay rebuilds a pipeline with the same monitoring parameters).
func (p *Pipeline) Config() PipelineConfig { return p.cfg }

// Monitoring reports whether the pipeline is in its monitoring state
// (the Drift Inspector watching every frame, as opposed to collecting a
// post-drift selection or training window).
func (p *Pipeline) Monitoring() bool { return p.state == stateMonitoring }

// Inspector returns the deployed model's Drift Inspector. It is replaced
// on every deployment; callers should not retain it across frames.
func (p *Pipeline) Inspector() *DriftInspector { return p.di }

func (p *Pipeline) deploy(e *ModelEntry) {
	p.current = e
	p.di = NewDriftInspector(e, p.cfg.DI, p.rng.Split())
	p.di.SetTracer(p.cfg.Tracer)
	p.state = stateMonitoring
	p.buffer = nil
	p.trainFails = 0
	p.retryWait = 0
	p.cfg.Tracer.ModelDeployed(e.Name)
	// A successful deployment is full recovery; the tracer drops the
	// transition when health was already ok.
	p.cfg.Tracer.HealthChanged(telemetry.HealthOK, "model deployed: "+e.Name)
}

// selectionWindow returns how many frames the active selector needs.
func (p *Pipeline) selectionWindow() int {
	if p.cfg.Selector == SelectorMSBO {
		return p.cfg.MSBO.WT
	}
	return p.cfg.MSBI.WN
}

// Process runs one frame through the pipeline and returns what happened.
// The deployed model predicts on every frame regardless of state (the
// stream keeps being served during selection and training, as in the
// paper's end-to-end evaluation).
func (p *Pipeline) Process(f vidsim.Frame) Outcome {
	tr := p.cfg.Tracer
	p.metrics.Frames++
	tr.FrameObserved(telemetryState(p.state))
	// Admission gate: a malformed frame (wrong dimensions, non-finite
	// pixels) is quarantined before it can reach the classifier, the
	// Drift Inspector's martingale, or a selection/training buffer — a
	// run over the surviving frames is bit-identical to one that never
	// saw the bad frames.
	if reason := FrameProblem(f, p.current.W, p.current.H); reason != "" {
		p.metrics.QuarantinedFrames++
		tr.FrameQuarantined(reason)
		return Outcome{Quarantined: true}
	}
	p.metrics.ModelInvocations++
	out := Outcome{Invocations: 1}
	// Stage timestamps come from the tracer's injected clock (see
	// DriftInspector.Observe): time.Now here would break deterministic
	// replay under a test clock, and driftlint's determinism analyzer
	// rejects it.
	if p.current.Classifier != nil {
		if tr != nil {
			t0 := tr.Now()
			out.Prediction = p.current.Predict(f)
			tr.ObserveStage(telemetry.StageClassify, tr.Now().Sub(t0))
		} else {
			out.Prediction = p.current.Predict(f)
		}
	}

	switch p.state {
	case stateMonitoring:
		if p.di.ObserveFrame(f) {
			p.metrics.DriftsDetected++
			out.Drift = true
			p.state = stateSelecting
			p.buffer = p.buffer[:0]
			tr.SelectionStarted(p.cfg.Selector.String())
		}

	case stateSelecting:
		p.metrics.SelectingFrames++
		p.buffer = append(p.buffer, f)
		if len(p.buffer) >= p.selectionWindow() {
			var t0 time.Time
			if tr != nil {
				t0 = tr.Now()
			}
			selected, candidates, used := p.runSelector()
			if tr != nil {
				tr.ObserveStage(telemetry.StageSelect, tr.Now().Sub(t0))
				name := ""
				if selected != nil {
					name = selected.Name
				}
				tr.SelectionResolved(p.cfg.Selector.String(), name, used, candidates)
			}
			if selected != nil {
				p.metrics.ModelsSelected++
				p.deploy(selected)
				out.SwitchedTo = selected.Name
			} else {
				p.state = stateTraining
			}
		}

	case stateTraining:
		p.metrics.TrainingFrames++
		p.buffer = append(p.buffer, f)
		if p.retryWait > 0 {
			p.retryWait--
			break
		}
		if len(p.buffer) >= p.cfg.NewModelFrames {
			var t0 time.Time
			if tr != nil {
				t0 = tr.Now()
			}
			e, err := p.trainNewModel()
			if tr != nil {
				tr.ObserveStage(telemetry.StageTrain, tr.Now().Sub(t0))
			}
			if err != nil {
				p.trainingFailed(err)
				break
			}
			tr.ModelTrained(e.Name, len(p.buffer))
			p.metrics.ModelsTrained++
			p.reg.Add(e)
			p.th = CalibrateMSBO(p.reg.Snapshot().Entries())
			p.deploy(e)
			out.SwitchedTo = e.Name
			out.TrainedNew = true
		}
	}
	return out
}

// ProcessBatch runs a micro-batch of consecutive frames through the
// pipeline and returns one outcome per frame. It is exactly equivalent
// to calling Process on each frame in order — same state evolution,
// bit-identical outcomes under any batch size — packaged as one call so
// supervised callers (the sharded monitor) can amortize per-call
// snapshot and scheduling cost over the batch.
func (p *Pipeline) ProcessBatch(frames []vidsim.Frame) []Outcome {
	out := make([]Outcome, len(frames))
	for i, f := range frames {
		out[i] = p.Process(f)
	}
	return out
}

// trainingFailed handles one failed training attempt: retry with capped
// frame-count backoff while attempts remain, then degrade — abandon the
// window, keep serving the deployed model, and resume monitoring so a
// persisting drift re-fires and re-enters selection.
func (p *Pipeline) trainingFailed(err error) {
	tr := p.cfg.Tracer
	p.metrics.TrainingFailures++
	p.trainFails++
	name := fmt.Sprintf("novel-%d", p.novel+1)
	tr.TrainingFailed(name, p.trainFails, err.Error())
	attempts := p.cfg.TrainAttempts
	if attempts <= 0 {
		attempts = 1
	}
	if p.trainFails < attempts {
		backoff := p.cfg.TrainBackoffFrames << (p.trainFails - 1)
		if p.cfg.TrainBackoffCap > 0 && backoff > p.cfg.TrainBackoffCap {
			backoff = p.cfg.TrainBackoffCap
		}
		p.retryWait = backoff
		tr.HealthChanged(telemetry.HealthDegraded,
			fmt.Sprintf("training %s failed (attempt %d/%d), retrying in %d frames", name, p.trainFails, attempts, backoff))
		return
	}
	// Degraded mode: the deployed model keeps serving; monitoring
	// restarts so a persisting drift is re-declared and re-enters
	// selection instead of wedging the pipeline in stateTraining.
	tr.HealthChanged(telemetry.HealthDegraded,
		fmt.Sprintf("training %s failed %d times, serving %s degraded", name, p.trainFails, p.current.Name))
	p.state = stateMonitoring
	p.buffer = nil
	p.trainFails = 0
	p.retryWait = 0
	p.di.Reset()
}

// telemetryState maps the pipeline state onto the telemetry taxonomy.
func telemetryState(s pipelineState) telemetry.State {
	switch s {
	case stateSelecting:
		return telemetry.StateSelecting
	case stateTraining:
		return telemetry.StateTraining
	default:
		return telemetry.StateMonitoring
	}
}

// runSelector executes the configured model-selection algorithm on the
// buffered post-drift window, returning the winner (nil = train new),
// the per-candidate outcomes and the number of window frames consumed.
func (p *Pipeline) runSelector() (*ModelEntry, []telemetry.Candidate, int) {
	if p.cfg.Selector == SelectorMSBO {
		labeled := make([]classifier.Sample, len(p.buffer))
		for i, f := range p.buffer {
			labeled[i] = p.current.QuerySample(f, p.labeler(f))
		}
		res := MSBO(labeled, p.reg.Snapshot().Entries(), p.th, p.cfg.MSBO)
		return res.Selected, res.Candidates, res.FramesUsed
	}
	res := MSBI(p.buffer, p.reg.Snapshot().Entries(), p.cfg.MSBI, p.rng.Split())
	return res.Selected, res.Candidates, res.FramesUsed
}

// trainNewModel provisions a model from the buffered post-drift frames
// (§5.4: collect frames, annotate them, train the VAE and classifiers).
// Failures — the injected fault hook or a panic inside Provision — are
// returned as errors for the retry/degrade path. The fault hook runs
// before the RNG seed draw and the novel-counter bump, so a failed
// attempt leaves the pipeline's replay-critical state untouched.
func (p *Pipeline) trainNewModel() (e *ModelEntry, err error) {
	defer func() {
		if r := recover(); r != nil {
			e, err = nil, fmt.Errorf("training panic: %v", r)
		}
	}()
	if p.cfg.TrainFault != nil {
		if ferr := p.cfg.TrainFault(); ferr != nil {
			return nil, ferr
		}
	}
	name := fmt.Sprintf("novel-%d", p.novel+1)
	cfg := p.cfg.Provision
	cfg.Seed = p.rng.Int63()
	e = Provision(name, p.buffer, p.labeler, cfg)
	p.novel++
	return e, nil
}
