package core

import (
	"fmt"
	"math"

	"videodrift/internal/tensor"
	"videodrift/internal/vidsim"
)

// PixelsProblem reports why a pixel vector cannot be admitted against a
// model expecting w×h pixels, or "" when it is well-formed. A malformed
// vector — wrong length or a NaN/Inf component — would flow straight
// into the featurizer and the kNN scorer and could poison
// calibration-relative p-values permanently (NaN distances sort
// arbitrarily), so the admission gate rejects it before any statistical
// state is touched.
func PixelsProblem(pixels tensor.Vector, w, h int) string {
	if len(pixels) != w*h {
		return fmt.Sprintf("bad dimensions: got %d pixels, want %d×%d=%d", len(pixels), w, h, w*h)
	}
	for i, v := range pixels {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Sprintf("non-finite pixel at index %d", i)
		}
	}
	return ""
}

// FrameProblem is PixelsProblem over a full frame: it additionally
// rejects frames whose declared geometry disagrees with the model's.
func FrameProblem(f vidsim.Frame, w, h int) string {
	if (f.W != 0 || f.H != 0) && (f.W != w || f.H != h) {
		return fmt.Sprintf("bad dimensions: frame is %d×%d, model expects %d×%d", f.W, f.H, w, h)
	}
	return PixelsProblem(f.Pixels, w, h)
}
