package core

import (
	"errors"
	"math"
	"testing"

	"videodrift/internal/stats"
	"videodrift/internal/tensor"
	"videodrift/internal/vidsim"
)

// fuzzPixels decodes arbitrary fuzz bytes into a pixel vector,
// deliberately mapping some byte values onto the adversarial floats the
// admission gate exists for.
func fuzzPixels(raw []byte) tensor.Vector {
	px := make(tensor.Vector, len(raw))
	for i, b := range raw {
		switch b {
		case 0xFF:
			px[i] = math.NaN()
		case 0xFE:
			px[i] = math.Inf(1)
		case 0xFD:
			px[i] = math.Inf(-1)
		case 0xFC:
			px[i] = math.MaxFloat64
		default:
			px[i] = float64(b) / 255.0
		}
	}
	return px
}

// FuzzObserveFrame drives arbitrary frames through the admission gate →
// featurizer → kNN path, both via Pipeline.Process (the facade route)
// and DriftInspector.Observe directly. Invariants: no panics, and no
// NaN/Inf ever reaches the martingale or the p-value accumulator.
func FuzzObserveFrame(f *testing.F) {
	good := streamFrames(dayC(), 1, 601)[0]
	seed := make([]byte, len(good.Pixels))
	for i, v := range good.Pixels {
		seed[i] = byte(v * 255)
	}
	f.Add(seed, uint8(testW), uint8(testH))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{0xFF, 0x10, 0xFE}, uint8(testW), uint8(testH))
	f.Add(seed[:len(seed)/2], uint8(testW), uint8(testH))

	entry := getFixture().day
	f.Fuzz(func(t *testing.T, raw []byte, w, h uint8) {
		if len(raw) > 4*testDim {
			raw = raw[:4*testDim]
		}
		px := fuzzPixels(raw)
		frame := vidsim.Frame{W: int(w), H: int(h), Pixels: px}

		cfg := DefaultPipelineConfig(testDim, testNumClasses)
		cfg.Selector = SelectorMSBI
		cfg.DI.SampleEvery = 1
		// Keep the fuzz loop fast: never actually train on garbage.
		cfg.TrainFault = func() error { return errors.New("fuzz: training disabled") }
		p := NewPipeline(NewRegistry(entry), testLabeler, cfg)

		out := p.Process(frame)
		if wellFormed := FrameProblem(frame, testW, testH) == ""; wellFormed == out.Quarantined {
			t.Fatalf("gate verdict inconsistent: wellFormed=%v but outcome %+v", wellFormed, out)
		}
		p.Process(good) // a good frame must still flow after any input

		di := NewDriftInspector(entry, cfg.DI, stats.NewRNG(1))
		di.Observe(px)
		di.Observe(good.Pixels)
		for name, v := range map[string]float64{
			"martingale":   di.MartingaleValue(),
			"window delta": di.WindowDelta(),
			"mean p":       di.MeanP(),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s is non-finite after fuzzed input", name)
			}
		}
		if snap := di.Snapshot(); math.IsNaN(snap.PSum) {
			t.Fatal("NaN leaked into the p-value accumulator")
		}
	})
}
