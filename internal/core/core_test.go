package core

import (
	"sync"
	"testing"

	"videodrift/internal/classifier"
	"videodrift/internal/stats"
	"videodrift/internal/vae"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

const (
	testW          = 16
	testH          = 16
	testDim        = testW * testH
	testNumClasses = 6
)

// testLabeler labels frames with their exact car count, capped — the
// paper's count query at core-test scale, with the oracle-annotator role
// played by ground truth (experiments wire the real detector here). Exact
// counts keep a constant-output model from ever matching a window, which
// is what MSBO's Brier separation relies on.
func testLabeler(f vidsim.Frame) int {
	c := f.CountClass(vidsim.Car)
	if c >= testNumClasses {
		c = testNumClasses - 1
	}
	return c
}

// lightTraffic scales a condition's vehicle rates down for the 16×16 test
// frames: at full Table-5 rates objects would cover ~40% of so small a
// frame and ordinary traffic bursts would dominate every frame statistic.
// (Experiments run 32×32 frames at full rates.)
func lightTraffic(c vidsim.Condition) vidsim.Condition {
	// Enough cars that empty-road frames are rare (rare modes need K
	// nearest neighbours in Σ to score as ordinary), few enough that the
	// 16×16 frames stay uncluttered. No buses: they confound
	// occupancy-based counting (1 bus ≈ 2.7 cars of pixel mass); the
	// experiments exercise the full mix.
	c.CarRate = 5.5
	c.BusRate = 0
	return c
}

func dayC() vidsim.Condition   { return lightTraffic(vidsim.Day()) }
func nightC() vidsim.Condition { return lightTraffic(vidsim.Night()) }
func rainC() vidsim.Condition  { return lightTraffic(vidsim.RainCond()) }

// quickProvision is a scaled-down ProvisionConfig that keeps test training
// fast.
func quickProvision(seed int64) ProvisionConfig {
	return ProvisionConfig{
		VAE:          vae.Config{InputDim: testDim, HiddenDim: 32, LatentDim: 6, Beta: 0.5, LR: 2e-3},
		VAEEpochs:    4,
		SampleCount:  80,
		K:            5,
		Classifier:   classifier.Config{InputDim: vision.QueryDim, HiddenDim: 24, NumClasses: testNumClasses, LR: 5e-3, Epochs: 30},
		EnsembleSize: 3,
		Seed:         seed,
	}
}

// fixture holds the expensive shared test setup: provisioned entries for
// day and night conditions.
type fixture struct {
	day, night, rain *ModelEntry
}

var (
	fixOnce sync.Once
	fix     fixture
)

func getFixture() fixture {
	fixOnce.Do(func() {
		dayFrames := vidsim.GenerateTraining(dayC(), testW, testH, 200, 11)
		nightFrames := vidsim.GenerateTraining(nightC(), testW, testH, 200, 12)
		rainFrames := vidsim.GenerateTraining(rainC(), testW, testH, 200, 13)
		fix.day = Provision("day", dayFrames, testLabeler, quickProvision(21))
		fix.night = Provision("night", nightFrames, testLabeler, quickProvision(22))
		fix.rain = Provision("rain", rainFrames, testLabeler, quickProvision(23))
	})
	return fix
}

// streamFrames renders a consecutive live clip (stride 1: full temporal
// correlation, unlike training data which is strided).
// fogCond is a condition genuinely novel relative to the fixture's three:
// objects are nearly invisible in fog (contrast ~= 0.05), so no fixture
// classifier's count features transfer (counting hidden objects from
// pixels is impossible), while the pixel distribution itself (uniform
// mid-gray, no dark-object mass) is distinct from day, night and rain.
func fogCond() vidsim.Condition {
	return vidsim.Condition{
		Name: "fog", Background: 0.50, BgNoise: 0.05, BgDrift: 0.004,
		CarRate: 5.5, BusRate: 0, Burst: 0.5,
		CarIntensity: 0.55, BusIntensity: 0.44, ObjNoise: 0.03,
		ObjScale: 1.2, BandLo: 0.2, BandHi: 0.6, SpeedX: 0.7, SpeedVar: 0.3,
	}
}

func streamFrames(cond vidsim.Condition, n int, seed int64) []vidsim.Frame {
	return vidsim.GenerateTrainingStride(cond, testW, testH, n, 1, seed)
}

func TestProvisionBuildsEntry(t *testing.T) {
	f := getFixture()
	e := f.day
	if e.Name != "day" {
		t.Errorf("name = %q", e.Name)
	}
	if len(e.Samples) != 80 {
		t.Errorf("|Σ| = %d", len(e.Samples))
	}
	if len(e.CalibRaw) != 120 || e.Calib.Len() != 120 {
		t.Errorf("calibration scores = %d/%d", len(e.CalibRaw), e.Calib.Len())
	}
	if e.Classifier == nil || e.Ensemble == nil {
		t.Error("supervised entry missing classifier or ensemble")
	}
	if e.Ensemble.Size() != 3 {
		t.Errorf("ensemble size = %d", e.Ensemble.Size())
	}
	if len(e.CalibSample) == 0 || len(e.CalibSample) > 32 {
		t.Errorf("calibration sample = %d", len(e.CalibSample))
	}
}

func TestProvisionUnsupervised(t *testing.T) {
	frames := streamFrames(dayC(), 60, 13)
	e := Provision("unsup", frames, nil, quickProvision(23))
	if e.Classifier != nil || e.Ensemble != nil || e.CalibSample != nil {
		t.Error("unsupervised entry has supervised artifacts")
	}
	if len(e.Samples) == 0 {
		t.Error("unsupervised entry missing Σ samples")
	}
}

func TestProvisionEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Provision with no frames did not panic")
		}
	}()
	Provision("x", nil, nil, quickProvision(1))
}

func TestRegistry(t *testing.T) {
	f := getFixture()
	r := NewRegistry(f.day)
	r.Add(f.night)
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Get("night") != f.night || r.Get("missing") != nil {
		t.Error("Get wrong")
	}
	names := r.Names()
	if names[0] != "day" || names[1] != "night" {
		t.Errorf("Names = %v", names)
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}

func TestDriftInspectorNoFalsePositivesInDistribution(t *testing.T) {
	f := getFixture()
	di := NewDriftInspector(f.day, DefaultDIConfig(), stats.NewRNG(31))
	for i, frame := range streamFrames(dayC(), 400, 14) {
		if di.ObserveFrame(frame) {
			t.Fatalf("false drift on in-distribution frame %d", i)
		}
	}
	if di.Observed() != 400 {
		t.Errorf("Observed = %d", di.Observed())
	}
}

func TestDriftInspectorDetectsConditionSwitch(t *testing.T) {
	f := getFixture()
	di := NewDriftInspector(f.day, DefaultDIConfig(), stats.NewRNG(32))
	for _, frame := range streamFrames(dayC(), 100, 15) {
		if di.ObserveFrame(frame) {
			t.Fatal("false positive during day phase")
		}
	}
	lag := -1
	for i, frame := range streamFrames(nightC(), 60, 16) {
		if di.ObserveFrame(frame) {
			lag = i + 1
			break
		}
	}
	if lag < 0 {
		t.Fatal("drift never detected after day→night switch")
	}
	if lag > 55 {
		t.Errorf("detection lag = %d frames, want detection within ~W×SampleEvery", lag)
	}
	di.Reset()
	if di.Observed() != 0 || di.MartingaleValue() != 0 {
		t.Error("Reset left state behind")
	}
}

func TestDriftInspectorValidation(t *testing.T) {
	f := getFixture()
	for i, fn := range []func(){
		func() { NewDriftInspector(nil, DefaultDIConfig(), stats.NewRNG(1)) },
		func() { NewDriftInspector(f.day, DIConfig{W: 0, R: 0.5, K: 5, Kappa: 4}, stats.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMSBISelectsMatchingModel(t *testing.T) {
	f := getFixture()
	entries := []*ModelEntry{f.day, f.night, f.rain}
	window := streamFrames(nightC(), 40, 17)
	res := MSBI(window, entries, DefaultMSBIConfig(), stats.NewRNG(33))
	if res.Selected != f.night {
		name := "<nil>"
		if res.Selected != nil {
			name = res.Selected.Name
		}
		t.Errorf("MSBI selected %s, want night", name)
	}
	if res.FramesUsed == 0 {
		t.Error("FramesUsed = 0")
	}
}

func TestMSBIFlagsNovelDistribution(t *testing.T) {
	f := getFixture()
	entries := []*ModelEntry{f.day, f.night, f.rain}
	window := streamFrames(fogCond(), 40, 18)
	res := MSBI(window, entries, DefaultMSBIConfig(), stats.NewRNG(34))
	if res.Selected != nil {
		t.Errorf("MSBI selected %s for a novel distribution, want nil", res.Selected.Name)
	}
}

func TestMSBIEmptyInputs(t *testing.T) {
	f := getFixture()
	if res := MSBI(nil, []*ModelEntry{f.day}, DefaultMSBIConfig(), stats.NewRNG(35)); res.Selected != nil {
		t.Error("MSBI on empty window selected a model")
	}
	window := streamFrames(dayC(), 5, 19)
	if res := MSBI(window, nil, DefaultMSBIConfig(), stats.NewRNG(36)); res.Selected != nil {
		t.Error("MSBI with no entries selected a model")
	}
}

func labeledWindow(cond vidsim.Condition, n int, seed int64) []classifier.Sample {
	frames := streamFrames(cond, n, seed)
	out := make([]classifier.Sample, len(frames))
	for i, f := range frames {
		out[i] = classifier.Sample{X: vision.QueryFeatures(f.Pixels, testW, testH), Label: testLabeler(f)}
	}
	return out
}

func TestCalibrateMSBOThresholds(t *testing.T) {
	f := getFixture()
	th := CalibrateMSBO([]*ModelEntry{f.day, f.night, f.rain})
	for _, name := range []string{"day", "night", "rain"} {
		limit, ok := th.Threshold(name)
		if !ok {
			t.Fatalf("no threshold for %s", name)
		}
		if avg := th.PCAvg[name]; avg <= 0 || avg > 2 {
			t.Errorf("%s PCAvg = %v", name, avg)
		}
		if limit <= 0 {
			t.Errorf("%s threshold = %v — off-distribution baseline should be clearly positive", name, limit)
		}
	}
	if _, ok := th.Threshold("missing"); ok {
		t.Error("threshold for unknown model")
	}
}

func TestMSBOSelectsMatchingModel(t *testing.T) {
	f := getFixture()
	entries := []*ModelEntry{f.day, f.night, f.rain}
	th := CalibrateMSBO(entries)
	res := MSBO(labeledWindow(nightC(), 10, 20), entries, th, DefaultMSBOConfig())
	if res.Selected != f.night {
		t.Errorf("MSBO selected %+v, want night (briers %v)", res.Selected, res.Briers)
	}
	if res.Briers["night"] >= res.Briers["day"] {
		t.Errorf("night brier %v >= day brier %v on night data", res.Briers["night"], res.Briers["day"])
	}
}

func TestMSBOFlagsNovelDistribution(t *testing.T) {
	f := getFixture()
	entries := []*ModelEntry{f.day, f.night, f.rain}
	th := CalibrateMSBO(entries)
	// A strided window: consecutive frames can share one sticky count and
	// accidentally match a constant prediction; a representative sample
	// is what the decision is really about.
	window := make([]classifier.Sample, 0, 20)
	for _, f := range vidsim.GenerateTraining(fogCond(), testW, testH, 20, 21) {
		window = append(window, classifier.Sample{X: vision.QueryFeatures(f.Pixels, testW, testH), Label: testLabeler(f)})
	}
	cfg := DefaultMSBOConfig()
	cfg.WT = 20
	res := MSBO(window, entries, th, cfg)
	if res.Selected != nil {
		t.Errorf("MSBO selected %s for novel fog data (briers %v)", res.Selected.Name, res.Briers)
	}
}

func TestMSBOSingleModelFallback(t *testing.T) {
	f := getFixture()
	entries := []*ModelEntry{f.day}
	th := CalibrateMSBO(entries) // empty: no other distributions
	if len(th.PCAvg) != 0 {
		t.Fatalf("single-model calibration should be empty, got %v", th.PCAvg)
	}
	// In-distribution window: accepted via the absolute fallback bound.
	res := MSBO(labeledWindow(dayC(), 10, 22), entries, th, DefaultMSBOConfig())
	if res.Selected != f.day {
		t.Errorf("fallback did not accept the matching model (brier %v)", res.BestBrier)
	}
}

func TestMSBOEmptyInputs(t *testing.T) {
	f := getFixture()
	th := MSBOThresholds{PCAvg: map[string]float64{}, Sigma: map[string]float64{}}
	if res := MSBO(nil, []*ModelEntry{f.day}, th, DefaultMSBOConfig()); res.Selected != nil {
		t.Error("MSBO on empty window selected a model")
	}
}

func TestPipelineSwitchesOnDrift(t *testing.T) {
	f := getFixture()
	reg := NewRegistry(f.day, f.night)
	cfg := DefaultPipelineConfig(testDim, testNumClasses)
	cfg.Provision = quickProvision(41)
	p := NewPipeline(reg, testLabeler, cfg)
	if p.Current() != f.day {
		t.Fatal("pipeline did not deploy the first entry")
	}

	for _, frame := range streamFrames(dayC(), 150, 23) {
		out := p.Process(frame)
		if out.Drift {
			t.Fatal("false drift during day phase")
		}
	}
	switched := false
	for _, frame := range streamFrames(nightC(), 120, 24) {
		out := p.Process(frame)
		if out.SwitchedTo == "night" {
			switched = true
			break
		}
		if out.TrainedNew {
			t.Fatal("pipeline trained a new model although the night model exists")
		}
	}
	if !switched {
		t.Fatal("pipeline never switched to the night model")
	}
	m := p.Metrics()
	if m.DriftsDetected < 1 || m.ModelsSelected < 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.ModelInvocations != m.Frames {
		t.Errorf("invocations %d != frames %d — pipeline must use exactly one model per frame", m.ModelInvocations, m.Frames)
	}
}

func TestPipelineTrainsNewModelOnNovelDrift(t *testing.T) {
	f := getFixture()
	reg := NewRegistry(f.day, f.night)
	cfg := DefaultPipelineConfig(testDim, testNumClasses)
	cfg.Provision = quickProvision(42)
	cfg.NewModelFrames = 100
	p := NewPipeline(reg, testLabeler, cfg)

	for _, frame := range streamFrames(dayC(), 100, 25) {
		p.Process(frame)
	}
	trained := false
	for _, frame := range streamFrames(fogCond(), 300, 26) {
		out := p.Process(frame)
		if out.TrainedNew {
			trained = true
			if out.SwitchedTo != "novel-1" {
				t.Errorf("new model name = %q", out.SwitchedTo)
			}
			break
		}
	}
	if !trained {
		t.Fatal("pipeline never trained a model for the novel distribution")
	}
	if p.Registry().Len() != 3 {
		t.Errorf("registry size = %d, want 3", p.Registry().Len())
	}
	if p.Metrics().ModelsTrained != 1 {
		t.Errorf("ModelsTrained = %d", p.Metrics().ModelsTrained)
	}
	// The new model now covers fog: continued fog frames should not
	// immediately re-trigger training.
	before := p.Metrics().ModelsTrained
	for _, frame := range streamFrames(fogCond(), 100, 27) {
		p.Process(frame)
	}
	if p.Metrics().ModelsTrained != before {
		t.Error("pipeline retrained on the distribution it just learned")
	}
}

func TestPipelineMSBISelector(t *testing.T) {
	f := getFixture()
	reg := NewRegistry(f.day, f.night)
	cfg := DefaultPipelineConfig(testDim, testNumClasses)
	cfg.Selector = SelectorMSBI
	cfg.Provision = quickProvision(43)
	cfg.NewModelFrames = 120
	p := NewPipeline(reg, testLabeler, cfg)
	for _, frame := range streamFrames(dayC(), 120, 28) {
		p.Process(frame)
	}
	switched := false
	for _, frame := range streamFrames(nightC(), 250, 29) {
		if out := p.Process(frame); out.SwitchedTo == "night" {
			switched = true
			break
		}
	}
	if !switched {
		t.Fatal("MSBI pipeline never switched to the night model")
	}
}

func TestPipelineValidation(t *testing.T) {
	f := getFixture()
	cfg := DefaultPipelineConfig(testDim, testNumClasses)
	for i, fn := range []func(){
		func() { NewPipeline(NewRegistry(), testLabeler, cfg) },
		func() { NewPipeline(NewRegistry(f.day), nil, cfg) }, // MSBO needs labeler
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSelectorKindString(t *testing.T) {
	if SelectorMSBI.String() != "MSBI" || SelectorMSBO.String() != "MSBO" {
		t.Error("SelectorKind.String wrong")
	}
}
