package core

import (
	"testing"

	"videodrift/internal/classifier"
	"videodrift/internal/stats"
	"videodrift/internal/vidsim"
)

// TestMSBIParallelDeterminism is the serial/parallel decision-identity
// contract: for every drift scenario and any worker count, MSBI under a
// fixed seed must select the same model, escalate the same number of
// times, and report identical candidate outcomes — p-value tie-break
// draws included.
func TestMSBIParallelDeterminism(t *testing.T) {
	f := getFixture()
	entries := []*ModelEntry{f.day, f.night, f.rain}
	scenarios := []struct {
		name string
		cond vidsim.Condition
	}{
		{"to-day", dayC()},
		{"to-night", nightC()},
		{"to-rain", rainC()},
		{"to-novel-fog", fogCond()},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			window := streamFrames(sc.cond, 40, 101)
			run := func(workers int) MSBIResult {
				cfg := DefaultMSBIConfig()
				cfg.Workers = workers
				return MSBI(window, entries, cfg, stats.NewRNG(55))
			}
			serial := run(1)
			for _, workers := range []int{2, 3, 8} {
				got := run(workers)
				if got.Selected != serial.Selected {
					t.Fatalf("workers=%d: Selected = %v, serial = %v",
						workers, name(got.Selected), name(serial.Selected))
				}
				if got.Escalations != serial.Escalations {
					t.Fatalf("workers=%d: Escalations = %d, serial = %d",
						workers, got.Escalations, serial.Escalations)
				}
				if len(got.Candidates) != len(serial.Candidates) {
					t.Fatalf("workers=%d: %d candidates, serial %d",
						workers, len(got.Candidates), len(serial.Candidates))
				}
				for i := range got.Candidates {
					if got.Candidates[i] != serial.Candidates[i] {
						t.Fatalf("workers=%d: candidate %d = %+v, serial %+v",
							workers, i, got.Candidates[i], serial.Candidates[i])
					}
				}
			}
		})
	}
}

// TestMSBOParallelDeterminism checks the output-side selector the same
// way: Brier scoring consumes no randomness, so every worker count must
// produce identical briers and the same winner.
func TestMSBOParallelDeterminism(t *testing.T) {
	f := getFixture()
	entries := []*ModelEntry{f.day, f.night, f.rain}
	th := CalibrateMSBO(entries)
	for _, sc := range []struct {
		name string
		cond vidsim.Condition
	}{
		{"to-night", nightC()},
		{"to-novel-fog", fogCond()},
	} {
		t.Run(sc.name, func(t *testing.T) {
			frames := streamFrames(sc.cond, 12, 77)
			labeled := make([]classifier.Sample, len(frames))
			for i, fr := range frames {
				labeled[i] = f.day.QuerySample(fr, testLabeler(fr))
			}
			run := func(workers int) MSBOResult {
				cfg := DefaultMSBOConfig()
				cfg.Workers = workers
				return MSBO(labeled, entries, th, cfg)
			}
			serial := run(1)
			for _, workers := range []int{2, 8} {
				got := run(workers)
				if got.Selected != serial.Selected {
					t.Fatalf("workers=%d: Selected = %v, serial = %v",
						workers, name(got.Selected), name(serial.Selected))
				}
				if got.BestBrier != serial.BestBrier {
					t.Fatalf("workers=%d: BestBrier = %v, serial = %v",
						workers, got.BestBrier, serial.BestBrier)
				}
				for k, v := range serial.Briers {
					if got.Briers[k] != v {
						t.Fatalf("workers=%d: brier[%s] = %v, serial %v",
							workers, k, got.Briers[k], v)
					}
				}
			}
		})
	}
}

func name(e *ModelEntry) string {
	if e == nil {
		return "<train-new>"
	}
	return e.Name
}
