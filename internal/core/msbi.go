package core

import (
	"videodrift/internal/stats"
	"videodrift/internal/telemetry"
	"videodrift/internal/vidsim"
)

// MSBIConfig carries the Model-Selection-Based-on-Input parameters
// (Algorithm 2).
type MSBIConfig struct {
	DI    DIConfig
	WN    int     // post-drift frames examined (§6.2 / §6.2.2)
	RStep float64 // significance escalation step for tie-breaking
	RMax  float64 // escalation cap (thresholds need r < 2)
	// MeanPFloor rescues marginal rejections: when every model's
	// martingale fires on the window, the model with the highest mean
	// conformal p-value is still selected if that mean clears this floor.
	// Matching models keep near-uniform p-values (mean ≈ 0.5, dipping
	// under transient scene cohorts) while genuinely mismatched models
	// sit near zero, so the floor separates "marginally strange" from
	// "novel distribution".
	MeanPFloor float64
}

// DefaultMSBIConfig returns the paper's MSBI parameters. W_N follows the
// §6.2.2 time analysis (30 frames examined). The selection window's Drift
// Inspectors sample every third frame: the window is short, but object
// appearance statistics persist for an object's lifetime (~25 frames), so
// per-frame testing would let one odd scene configuration masquerade as a
// rejection of the matching model.
func DefaultMSBIConfig() MSBIConfig {
	di := DefaultDIConfig()
	di.SampleEvery = 3
	return MSBIConfig{DI: di, WN: 30, RStep: 0.1, RMax: 1.9, MeanPFloor: 0.1}
}

// MSBIResult reports one MSBI run.
type MSBIResult struct {
	Selected    *ModelEntry // nil when a new model must be trained
	FramesUsed  int
	Escalations int // tie-break rounds (r increases)
	// Candidates records every model's first-round outcome at the base
	// significance level: whether its i.i.d. hypothesis was rejected,
	// its final martingale value and its mean conformal p-value on the
	// window (the telemetry payload of a SelectionResolved event).
	Candidates []telemetry.Candidate
}

// MSBI is Algorithm 2: it replays the post-drift window through a fresh
// Drift Inspector per provisioned model at significance r. Models whose
// i.i.d. hypothesis is rejected (drift declared) are dropped. If every
// model rejects, the data is novel and a new model must be trained
// (Selected = nil). Ties between surviving models are broken by escalating
// r (shrinking the threshold) and, if several still survive at the cap, by
// the smallest final martingale value — the least-drifted match.
func MSBI(window []vidsim.Frame, entries []*ModelEntry, cfg MSBIConfig, rng *stats.RNG) MSBIResult {
	if len(window) == 0 || len(entries) == 0 {
		return MSBIResult{}
	}
	n := cfg.WN
	if n <= 0 || n > len(window) {
		n = len(window)
	}
	frames := window[:n]

	res := MSBIResult{FramesUsed: n}
	candidates := entries
	r := cfg.DI.R
	for {
		type outcome struct {
			entry *ModelEntry
			delta float64 // final martingale value, the tie-break key
			meanP float64
		}
		var survivors []outcome
		bestMeanP := 0.0
		var bestEntry *ModelEntry
		for _, e := range candidates {
			diCfg := cfg.DI
			diCfg.R = r
			di := NewDriftInspector(e, diCfg, rng.Split())
			drifted := false
			for _, f := range frames {
				if di.ObserveFrame(f) && !drifted {
					drifted = true
				}
			}
			if mp := di.MeanP(); mp > bestMeanP {
				bestMeanP = mp
				bestEntry = e
			}
			if res.Escalations == 0 {
				res.Candidates = append(res.Candidates, telemetry.Candidate{
					Model:      e.Name,
					Rejected:   drifted,
					Martingale: di.MartingaleValue(),
					MeanP:      di.MeanP(),
				})
			}
			if !drifted {
				survivors = append(survivors, outcome{e, di.MartingaleValue(), di.MeanP()})
			}
		}
		switch {
		case len(survivors) == 0:
			// All models reject. If the best model's p-values were merely
			// dented (a transient scene cohort) rather than collapsed,
			// retain it; a genuinely novel distribution collapses every
			// model's p-values to ~0 (trainNewModel path). After
			// escalation rounds, the last surviving set ties and the
			// least-drifted candidate wins.
			switch {
			case res.Escalations > 0 && len(candidates) > 0:
				res.Selected = leastDrifted(frames, candidates, cfg, rng)
			case bestMeanP >= cfg.MeanPFloor:
				res.Selected = bestEntry
			}
			return res
		case len(survivors) == 1:
			res.Selected = survivors[0].entry
			return res
		}
		// Multiple survivors: escalate the significance level and retest
		// only them (Algorithm 2 line 14).
		next := make([]*ModelEntry, len(survivors))
		for i, s := range survivors {
			next[i] = s.entry
		}
		candidates = next
		r += cfg.RStep
		res.Escalations++
		if r >= cfg.RMax {
			res.Selected = leastDrifted(frames, candidates, cfg, rng)
			return res
		}
	}
}

// leastDrifted returns the candidate whose martingale ends lowest on the
// window — the closest distributional match.
func leastDrifted(frames []vidsim.Frame, candidates []*ModelEntry, cfg MSBIConfig, rng *stats.RNG) *ModelEntry {
	var best *ModelEntry
	bestVal := 0.0
	for _, e := range candidates {
		di := NewDriftInspector(e, cfg.DI, rng.Split())
		for _, f := range frames {
			di.ObserveFrame(f)
		}
		if best == nil || di.MartingaleValue() < bestVal {
			best = e
			bestVal = di.MartingaleValue()
		}
	}
	return best
}
