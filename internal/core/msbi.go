package core

import (
	"videodrift/internal/conformal"
	"videodrift/internal/parallel"
	"videodrift/internal/stats"
	"videodrift/internal/telemetry"
	"videodrift/internal/tensor"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

// MSBIConfig carries the Model-Selection-Based-on-Input parameters
// (Algorithm 2).
type MSBIConfig struct {
	DI    DIConfig
	WN    int     // post-drift frames examined (§6.2 / §6.2.2)
	RStep float64 // significance escalation step for tie-breaking
	RMax  float64 // escalation cap (thresholds need r < 2)
	// MeanPFloor rescues marginal rejections: when every model's
	// martingale fires on the window, the model with the highest mean
	// conformal p-value is still selected if that mean clears this floor.
	// Matching models keep near-uniform p-values (mean ≈ 0.5, dipping
	// under transient scene cohorts) while genuinely mismatched models
	// sit near zero, so the floor separates "marginally strange" from
	// "novel distribution".
	MeanPFloor float64
	// Workers bounds the goroutines scoring candidate models (<= 0 uses
	// GOMAXPROCS). The decision is independent of the worker count: every
	// model's RNG stream is forked serially in registry order before the
	// fan-out, and escalation rounds replay memoized p-values instead of
	// consuming fresh randomness.
	Workers int
}

// DefaultMSBIConfig returns the paper's MSBI parameters. W_N follows the
// §6.2.2 time analysis (30 frames examined). The selection window's Drift
// Inspectors sample every third frame: the window is short, but object
// appearance statistics persist for an object's lifetime (~25 frames), so
// per-frame testing would let one odd scene configuration masquerade as a
// rejection of the matching model.
func DefaultMSBIConfig() MSBIConfig {
	di := DefaultDIConfig()
	di.SampleEvery = 3
	return MSBIConfig{DI: di, WN: 30, RStep: 0.1, RMax: 1.9, MeanPFloor: 0.1}
}

// MSBIResult reports one MSBI run.
type MSBIResult struct {
	Selected    *ModelEntry // nil when a new model must be trained
	FramesUsed  int
	Escalations int // tie-break rounds (r increases)
	// Candidates records every model's first-round outcome at the base
	// significance level: whether its i.i.d. hypothesis was rejected,
	// its final martingale value and its mean conformal p-value on the
	// window (the telemetry payload of a SelectionResolved event).
	Candidates []telemetry.Candidate
}

// modelTrace is one model's memoized evidence on the selection window:
// the conformal p-values of the sampled frames (with their tie-break
// draws already consumed) plus the derived final martingale value and
// mean p-value. Escalation rounds and the least-drifted tie-break replay
// the martingale over ps at a different significance level instead of
// re-scoring frames — scores and p-values are computed exactly once per
// (model, frame).
type modelTrace struct {
	ps        []float64
	meanP     float64
	finalMart float64 // martingale value after the full window (r-independent)
}

// buildTrace scores one model over the pre-featurized sampled frames.
// RNG draw order matches a serial Drift Inspector replay: one uniform
// tie-break per sampled frame, in frame order.
func buildTrace(e *ModelEntry, feats []tensor.Vector, cfg DIConfig, rng *stats.RNG) *modelTrace {
	scorer := conformal.NewKNNScorer(cfg.K, e.FeatMatrix())
	tr := &modelTrace{ps: make([]float64, len(feats))}
	mart := conformal.NewCUSUM(conformal.ShiftedOdd(cfg.Kappa), cfg.Kappa/2, cfg.W)
	sum := 0.0
	for i, feat := range feats {
		a := scorer.Score(feat)
		p := e.Calib.PValue(a, rng.Float64())
		tr.ps[i] = p
		sum += p
		mart.Update(p)
	}
	if len(feats) > 0 {
		tr.meanP = sum / float64(len(feats))
	}
	tr.finalMart = mart.Value()
	return tr
}

// replayDrifted re-runs the martingale over a memoized p-value trace at
// significance r and reports whether the windowed test fires anywhere.
func replayDrifted(ps []float64, cfg DIConfig, r float64) bool {
	mart := conformal.NewCUSUM(conformal.ShiftedOdd(cfg.Kappa), cfg.Kappa/2, cfg.W)
	test := conformal.DriftTest{W: cfg.W, R: r, Mode: cfg.Mode}
	for _, p := range ps {
		mart.Update(p)
		if test.Check(mart) {
			return true
		}
	}
	return false
}

// MSBI is Algorithm 2: it replays the post-drift window through each
// provisioned model's conformal martingale at significance r. Models
// whose i.i.d. hypothesis is rejected (drift declared) are dropped. If
// every model rejects, the data is novel and a new model must be trained
// (Selected = nil). Ties between surviving models are broken by
// escalating r (shrinking the threshold) and, if several still survive
// at the cap, by the smallest final martingale value — the least-drifted
// match.
//
// The expensive work — featurizing the window and scoring it against
// every model's reference sample — happens exactly once: frames are
// featurized up front (features are model-independent), models are
// scored concurrently on a bounded worker pool, and the escalation
// rounds replay the memoized p-value traces through fresh martingales.
// Under a fixed seed the result is identical for any Workers setting.
func MSBI(window []vidsim.Frame, entries []*ModelEntry, cfg MSBIConfig, rng *stats.RNG) MSBIResult {
	if len(window) == 0 || len(entries) == 0 {
		return MSBIResult{}
	}
	n := cfg.WN
	if n <= 0 || n > len(window) {
		n = len(window)
	}
	frames := window[:n]
	res := MSBIResult{FramesUsed: n}

	di := cfg.DI
	if di.SampleEvery <= 0 {
		di.SampleEvery = 1
	}

	// Featurize the sampled frames once — appearance features depend only
	// on the frame, not on the model being tested.
	var fz vision.Featurizer
	feats := make([]tensor.Vector, 0, (n+di.SampleEvery-1)/di.SampleEvery)
	for i := 0; i < n; i += di.SampleEvery {
		f := frames[i]
		feats = append(feats, fz.Appearance(f.Pixels, f.W, f.H).Clone())
	}

	// Score every model concurrently. RNG streams are forked in registry
	// order before the fan-out, so traces[i] is the same for any worker
	// count.
	traces := make([]*modelTrace, len(entries))
	pool := parallel.Shared(cfg.Workers)
	pool.ForEachSeeded(len(entries), rng, func(i int, r *stats.RNG) {
		traces[i] = buildTrace(entries[i], feats, di, r)
	})

	active := make([]int, len(entries))
	for i := range active {
		active[i] = i
	}
	r := di.R
	for {
		survivors := active[:0:0]
		bestMeanP := 0.0
		var bestEntry *ModelEntry
		for _, ci := range active {
			tr := traces[ci]
			drifted := replayDrifted(tr.ps, di, r)
			if tr.meanP > bestMeanP {
				bestMeanP = tr.meanP
				bestEntry = entries[ci]
			}
			if res.Escalations == 0 {
				res.Candidates = append(res.Candidates, telemetry.Candidate{
					Model:      entries[ci].Name,
					Rejected:   drifted,
					Martingale: tr.finalMart,
					MeanP:      tr.meanP,
				})
			}
			if !drifted {
				survivors = append(survivors, ci)
			}
		}
		switch {
		case len(survivors) == 0:
			// All models reject. If the best model's p-values were merely
			// dented (a transient scene cohort) rather than collapsed,
			// retain it; a genuinely novel distribution collapses every
			// model's p-values to ~0 (trainNewModel path). After
			// escalation rounds, the last surviving set ties and the
			// least-drifted candidate wins.
			switch {
			case res.Escalations > 0 && len(active) > 0:
				res.Selected = entries[leastDriftedIdx(traces, active)]
			case bestMeanP >= cfg.MeanPFloor:
				res.Selected = bestEntry
			}
			return res
		case len(survivors) == 1:
			res.Selected = entries[survivors[0]]
			return res
		}
		// Multiple survivors: escalate the significance level and retest
		// only them (Algorithm 2 line 14) over the memoized traces.
		active = survivors
		r += cfg.RStep
		res.Escalations++
		if r >= cfg.RMax {
			res.Selected = entries[leastDriftedIdx(traces, active)]
			return res
		}
	}
}

// leastDriftedIdx returns the candidate whose martingale ends lowest on
// the window — the closest distributional match. The final martingale
// value is significance-independent, so the memoized trace answers this
// directly.
func leastDriftedIdx(traces []*modelTrace, active []int) int {
	best := -1
	bestVal := 0.0
	for _, ci := range active {
		if v := traces[ci].finalMart; best < 0 || v < bestVal {
			best = ci
			bestVal = v
		}
	}
	return best
}
