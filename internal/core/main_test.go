package core

import (
	"testing"

	"videodrift/internal/analysis/leakcheck"
)

// TestMain gates the sharded-monitor tests on the leakcheck harness
// (DESIGN.md §15): shard workers, supervisors and selection goroutines
// must all be stopped when their tests finish. The shared parallel
// pools' parked workers are process-lifetime by design and are waived
// by name.
func TestMain(m *testing.M) {
	leakcheck.Main(m,
		leakcheck.Allow("videodrift/internal/parallel.(*Pool).spawn.func1"))
}
