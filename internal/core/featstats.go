package core

import (
	"sort"

	"videodrift/internal/stats"
	"videodrift/internal/telemetry"
	"videodrift/internal/tensor"
	"videodrift/internal/vision"
)

const (
	// featBins is the per-dimension bin count of the attribution
	// histograms. The binning is FIXED at construction from the reference
	// sample — bin edges never depend on the recent window — so the
	// divergences are a deterministic function of the observed features
	// and replay bit-identically (the driftlint determinism analyzer
	// covers this package).
	featBins = 16
	// featRecentCap bounds the recent window, in sampled frames. At the
	// default SampleEvery=10 it spans ~640 stream frames, comfortably
	// covering the detection lag of any drift it is asked to explain.
	featRecentCap = 64
	// featPad widens the reference range on each side by this fraction of
	// the reference span, so moderately out-of-range drifted values land
	// in interior bins instead of piling onto the clamped edge bins.
	featPad = 0.25
)

// FeatWindowStats maintains streaming reference-versus-recent statistics
// over the featurizer's appearance dimensions — the "what moved" half of
// drift forensics. The reference distribution (per-dimension histogram,
// mean and variance) is frozen at construction from the model entry's
// reference sample; Observe folds the recent sampled frames into a
// bounded ring; Attribution compares the two and ranks the dimensions by
// divergence. It is not safe for concurrent use (the owning
// DriftInspector serializes access).
type FeatWindowStats struct {
	dim     int
	lo, hi  []float64   // per-dim fixed bin range, reference-derived
	refProb [][]float64 // per-dim smoothed reference bin probabilities
	refMean []float64
	refVar  []float64

	recent  []float64 // flat ring of recent feature vectors, featRecentCap×dim
	n, head int
}

// NewFeatWindowStats builds the accumulator against a non-empty
// reference feature sample (one vector per reference frame, equal
// lengths).
func NewFeatWindowStats(ref []tensor.Vector) *FeatWindowStats {
	if len(ref) == 0 {
		panic("core: NewFeatWindowStats with empty reference")
	}
	dim := len(ref[0])
	fw := &FeatWindowStats{
		dim:     dim,
		lo:      make([]float64, dim),
		hi:      make([]float64, dim),
		refProb: make([][]float64, dim),
		refMean: make([]float64, dim),
		refVar:  make([]float64, dim),
		recent:  make([]float64, featRecentCap*dim),
	}
	col := make([]float64, len(ref))
	for d := 0; d < dim; d++ {
		for i, v := range ref {
			col[i] = v[d]
		}
		mn, mx := stats.Min(col), stats.Max(col)
		pad := featPad * (mx - mn)
		if pad < 1e-9 {
			pad = 1e-9
		}
		fw.lo[d], fw.hi[d] = mn-pad, mx+pad
		fw.refProb[d] = fw.histProb(d, col)
		fw.refMean[d] = stats.Mean(col)
		fw.refVar[d] = stats.Variance(col)
	}
	return fw
}

// histProb bins xs over dimension d's fixed range and returns the
// additive-smoothed probabilities (strictly positive, so divergences
// stay finite).
func (fw *FeatWindowStats) histProb(d int, xs []float64) []float64 {
	h := stats.NewHistogram(fw.lo[d], fw.hi[d], featBins)
	for _, x := range xs {
		h.Add(x)
	}
	return h.Probabilities()
}

// Observe folds one sampled frame's feature vector into the recent ring.
// The vector is copied (the featurizer reuses its output buffer).
func (fw *FeatWindowStats) Observe(feat tensor.Vector) {
	if len(feat) != fw.dim {
		return
	}
	copy(fw.recent[fw.head*fw.dim:(fw.head+1)*fw.dim], feat)
	fw.head = (fw.head + 1) % featRecentCap
	if fw.n < featRecentCap {
		fw.n++
	}
}

// Recent returns how many sampled frames the recent window holds.
func (fw *FeatWindowStats) Recent() int { return fw.n }

// Reset clears the recent window (after a model switch); the reference
// statistics are immutable and survive.
func (fw *FeatWindowStats) Reset() {
	fw.n = 0
	fw.head = 0
}

// Attribution compares the recent window against the reference and
// returns every dimension's divergence, ranked most-moved first (by JS
// divergence, ties broken by dimension index so the order is
// deterministic). Returns nil when no frames have been observed yet.
func (fw *FeatWindowStats) Attribution() []telemetry.DimShift {
	if fw.n == 0 {
		return nil
	}
	col := make([]float64, fw.n)
	start := (fw.head - fw.n + featRecentCap) % featRecentCap
	out := make([]telemetry.DimShift, fw.dim)
	mix := make([]float64, featBins)
	for d := 0; d < fw.dim; d++ {
		for i := 0; i < fw.n; i++ {
			col[i] = fw.recent[((start+i)%featRecentCap)*fw.dim+d]
		}
		p := fw.histProb(d, col)
		q := fw.refProb[d]
		for b := range mix {
			mix[b] = 0.5 * (p[b] + q[b])
		}
		denom := fw.refVar[d]
		if denom < 1e-18 {
			denom = 1e-18
		}
		ds := telemetry.DimShift{
			Dim:       d,
			KL:        stats.KLDivergence(p, q),
			JS:        0.5*stats.KLDivergence(p, mix) + 0.5*stats.KLDivergence(q, mix),
			MeanShift: stats.Mean(col) - fw.refMean[d],
			VarRatio:  stats.Variance(col) / denom,
		}
		if fw.dim == vision.AppearanceDim {
			ds.Name = vision.AppearanceDimNames[d]
		}
		out[d] = ds
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].JS > out[j].JS {
			return true
		}
		if out[i].JS < out[j].JS {
			return false
		}
		return out[i].Dim < out[j].Dim
	})
	return out
}

// FeatStatsState is the serializable recent window of a FeatWindowStats
// (the reference statistics are recomputed from the model entry on
// restore, so only the mutable ring is persisted). Vectors are stored
// oldest first.
//
//driftlint:snapshot encode=FeatWindowStats.State decode=FeatWindowStats.SetState
type FeatStatsState struct {
	Recent []tensor.Vector
}

// State captures the recent window for checkpointing.
func (fw *FeatWindowStats) State() FeatStatsState {
	out := make([]tensor.Vector, 0, fw.n)
	start := (fw.head - fw.n + featRecentCap) % featRecentCap
	for i := 0; i < fw.n; i++ {
		row := (start + i) % featRecentCap
		out = append(out, append(tensor.Vector(nil), fw.recent[row*fw.dim:(row+1)*fw.dim]...))
	}
	return FeatStatsState{Recent: out}
}

// SetState replaces the recent window with one captured by State against
// the same reference: subsequent Attribution calls return exactly what
// the snapshotted accumulator would have returned.
func (fw *FeatWindowStats) SetState(s FeatStatsState) {
	fw.Reset()
	for _, v := range s.Recent {
		fw.Observe(v)
	}
}
