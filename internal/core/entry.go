// Package core implements the paper's contribution: the Drift Inspector
// (Algorithm 1), the MSBI and MSBO model-selection algorithms (Algorithms
// 2 and 3), and the end-to-end drift-aware pipeline of Figure 1 that ties
// them to a registry of provisioned models.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"videodrift/internal/classifier"
	"videodrift/internal/conformal"
	"videodrift/internal/stats"
	"videodrift/internal/tensor"
	"videodrift/internal/vae"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

// Labeler maps a frame to its query label (e.g. the car count bucket) —
// the role Mask R-CNN annotation plays in the paper (§5.4).
type Labeler func(f vidsim.Frame) int

// SampleSource selects where an entry's reference sample Σ_{T_i} comes
// from.
type SampleSource int

const (
	// SourceHeldOut draws Σ_{T_i} from the training frames themselves
	// (temporally strided, so approximately independent). It skips VAE
	// training and preserves full appearance detail — the default,
	// because decoded VAE samples are blurry enough to blunt the
	// non-conformity measure on subtle drifts (see DESIGN.md §2; the
	// ablation benchmark quantifies the gap).
	SourceHeldOut SampleSource = iota
	// SourceVAE is the paper-faithful mode: train the VAE A_{T_i} and
	// decode z ~ N(0,I) into Σ_{T_i}.
	SourceVAE
)

// ProvisionConfig controls how a ModelEntry is built from training frames.
type ProvisionConfig struct {
	Source       SampleSource
	VAE          vae.Config
	VAEEpochs    int
	SampleCount  int // |Σ_Ti|, the size of the reference sample
	K            int // kNN parameter for the calibration scores
	Classifier   classifier.Config
	EnsembleSize int // L, the MSBO deep-ensemble size
	Seed         int64
	// QueryFn is the classifier front-end mapping frame pixels to the
	// query model's input (vision.QueryFeatures when nil; use
	// vision.SpatialFeatures for spatial-constrained queries). The
	// classifier's InputDim is derived from it.
	QueryFn vision.FeatureFunc
}

// DefaultProvisionConfig returns the repo's scaled-down defaults for the
// paper's training setup (§6: VAE per distribution, VGG-style classifier,
// ensemble of L members).
func DefaultProvisionConfig(frameDim, numClasses int) ProvisionConfig {
	return ProvisionConfig{
		VAE:          vae.DefaultConfig(frameDim),
		VAEEpochs:    8,
		SampleCount:  100,
		K:            5,
		Classifier:   classifier.Config{HiddenDim: 48, NumClasses: numClasses, LR: 5e-3, Epochs: 60},
		EnsembleSize: 5,
		Seed:         1,
	}
}

// ModelEntry bundles everything provisioned alongside one model M_i: the
// VAE A_{T_i}, the i.i.d. sample Σ_{T_i} it generated, the precomputed
// non-conformity calibration scores A_i, the query classifier, and the
// MSBO uncertainty ensemble (Table 1 of the paper).
type ModelEntry struct {
	Name string
	W, H int // frame geometry the entry was provisioned for

	VAE         *vae.VAE
	Samples     []tensor.Vector // Σ_{T_i}, decoded pixel-space samples
	SampleFeats []tensor.Vector // Featurize(Σ_{T_i}) — what DI measures against
	CalibRaw    []float64       // A_i, scores of training frames against Σ
	Calib       *conformal.SortedCalib

	Classifier *classifier.Classifier // query model (nil when unsupervised)
	Ensemble   *classifier.Ensemble   // MSBO ensemble (nil when unsupervised)
	queryFn    vision.FeatureFunc     // classifier front-end

	// featMat is SampleFeats flattened for the kNN fast path, built
	// lazily because replayed/ad-hoc entries may never be scored. The
	// sync.Once makes the build safe when shards share one entry.
	featMat     *tensor.RefMatrix
	featMatOnce sync.Once

	// CalibSample is a labeled random sample S_{T_i} of the training data
	// retained for MSBO threshold calibration (§5.2.2).
	CalibSample []classifier.Sample
}

// Provision builds a ModelEntry from training frames: trains the VAE,
// draws the i.i.d. sample Σ_{T_i}, precomputes calibration scores, and —
// when a labeler is supplied — trains the query classifier and the MSBO
// ensemble on labeler-annotated frames (§5.4). A nil labeler produces an
// unsupervised entry usable by DI and MSBI only.
func Provision(name string, frames []vidsim.Frame, labeler Labeler, cfg ProvisionConfig) *ModelEntry {
	if len(frames) == 0 {
		panic("core: Provision with no training frames")
	}
	rng := stats.NewRNG(cfg.Seed)
	dim := len(frames[0].Pixels)
	if cfg.VAE.InputDim != dim {
		cfg.VAE.InputDim = dim
	}
	w, h := frames[0].W, frames[0].H
	if cfg.SampleCount > len(frames) {
		cfg.SampleCount = len(frames)
	}

	// Calibration scores A_i must come from real frames DISJOINT from the
	// reference sample Σ: a frame scored against a sample containing
	// itself gets a deflated kNN score, which would bias every live
	// p-value small and flood the martingale with false drifts. (The
	// paper precomputes A_i from the Σ elements themselves; decoded VAE
	// samples are mutually smoother than real frames, so we calibrate on
	// real frames instead — the standard inductive-conformal recipe. See
	// DESIGN.md §2.)
	var v *vae.VAE
	var samples []tensor.Vector
	perm := rng.Perm(len(frames))
	calIdx := perm // frames used for calibration (all of them, in VAE mode)
	switch cfg.Source {
	case SourceVAE:
		v = vae.New(cfg.VAE, rng.Split())
		data := make([]tensor.Vector, len(frames))
		for i, f := range frames {
			data[i] = f.Pixels
		}
		v.Fit(data, cfg.VAEEpochs)
		samples = v.Sample(cfg.SampleCount)
	default: // SourceHeldOut
		nSamp := cfg.SampleCount
		if max := (len(frames) + 1) / 2; nSamp > max {
			nSamp = max
		}
		samples = make([]tensor.Vector, nSamp)
		for i, idx := range perm[:nSamp] {
			samples[i] = frames[idx].Pixels
		}
		if rest := perm[nSamp:]; len(rest) > 0 {
			calIdx = rest
		}
	}
	feats := vision.FeaturizeFrames(samples, w, h)
	nCal := len(calIdx)
	if nCal > 256 {
		nCal = 256
	}
	scorer := conformal.NewKNNScorer(cfg.K, tensor.FlattenVectors(feats))
	var fz vision.Featurizer
	calib := make([]float64, nCal)
	for i := 0; i < nCal; i++ {
		calib[i] = scorer.Score(fz.Appearance(frames[calIdx[i]].Pixels, w, h))
	}

	e := &ModelEntry{
		Name:        name,
		W:           w,
		H:           h,
		VAE:         v,
		Samples:     samples,
		SampleFeats: feats,
		CalibRaw:    calib,
		Calib:       conformal.NewSortedCalib(calib),
	}

	if labeler != nil {
		if cfg.QueryFn == nil {
			cfg.QueryFn = vision.QueryFeatures
		}
		e.queryFn = cfg.QueryFn
		labeled := make([]classifier.Sample, len(frames))
		for i, f := range frames {
			labeled[i] = classifier.Sample{X: cfg.QueryFn(f.Pixels, w, h), Label: labeler(f)}
		}
		cfg.Classifier.InputDim = len(labeled[0].X)
		e.Classifier = classifier.New(cfg.Classifier, rng.Split())
		e.Classifier.Fit(labeled, rng.Split())
		e.Ensemble = classifier.NewEnsemble(cfg.EnsembleSize, cfg.Classifier, rng.Split())
		e.Ensemble.Fit(labeled, rng.Split())
		// Retain a fixed-size labeled sample for MSBO calibration.
		n := len(labeled)
		if n > 32 {
			n = 32
		}
		perm := rng.Perm(len(labeled))
		e.CalibSample = make([]classifier.Sample, n)
		for i := 0; i < n; i++ {
			e.CalibSample[i] = labeled[perm[i]]
		}
	}
	return e
}

// FeatMatrix returns the entry's reference features Σ_{T_i} flattened
// into the contiguous matrix the kNN fast path streams over. It is built
// on first use and shared by every inspector (and every stream shard)
// monitoring this entry; concurrent first calls are safe.
func (e *ModelEntry) FeatMatrix() *tensor.RefMatrix {
	e.featMatOnce.Do(func() {
		e.featMat = tensor.FlattenVectors(e.SampleFeats)
	})
	return e.featMat
}

// Registry is the collection of provisioned models M_1 … M_m the Model
// Selector chooses from. A registry may be read by many goroutines (and,
// with checkpointing, outlive the process that built it) while new
// models trained after novel drifts are appended; every method is safe
// for concurrent use. Entries themselves are immutable once provisioned.
//
// Reads are lock-free: the entry list lives in an immutable
// RegistrySnap published through an atomic pointer (copy-on-write), so
// the per-frame hot path never contends with a concurrent Add. Writers
// serialize on mu, copy the entry slice, and publish a new snapshot
// with a bumped epoch — readers holding the old snapshot keep a
// consistent prefix view, and epoch comparison lets per-shard caches
// refresh only when the registry actually grew.
//
//driftlint:locked
type Registry struct {
	mu   sync.Mutex // serializes writers; readers go through snap only
	snap atomic.Pointer[RegistrySnap]
}

// RegistrySnap is one immutable registry generation: the entry list as
// of a particular epoch. Neither the snapshot nor its slice is ever
// mutated after publication; callers may hold or iterate it freely
// without copying.
type RegistrySnap struct {
	epoch   uint64
	entries []*ModelEntry
}

// Epoch returns the snapshot's generation counter. It increases by one
// per Add, so two snapshots with equal epochs hold identical entry
// lists.
func (s *RegistrySnap) Epoch() uint64 { return s.epoch }

// Entries returns the snapshot's entry list in insertion order. The
// slice is the snapshot's own immutable storage — callers must not
// mutate it.
func (s *RegistrySnap) Entries() []*ModelEntry { return s.entries }

// Len returns the number of entries in the snapshot.
func (s *RegistrySnap) Len() int { return len(s.entries) }

// NewRegistry builds a registry from entries.
func NewRegistry(entries ...*ModelEntry) *Registry {
	r := &Registry{}
	r.snap.Store(&RegistrySnap{entries: append([]*ModelEntry(nil), entries...)})
	return r
}

// Snapshot returns the current registry generation, lock-free. The
// result is immutable: an Add after the call publishes a NEW snapshot
// and never mutates outstanding ones.
func (r *Registry) Snapshot() *RegistrySnap { return r.snap.Load() }

// Add appends an entry (e.g. a freshly trained model after a novel
// drift) by publishing a copy-on-write snapshot with the epoch bumped.
func (r *Registry) Add(e *ModelEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	next := &RegistrySnap{
		epoch:   cur.epoch + 1,
		entries: append(append(make([]*ModelEntry, 0, len(cur.entries)+1), cur.entries...), e),
	}
	r.snap.Store(next)
}

// Entries returns a copy of the registry's entries in insertion order.
// The returned slice is the caller's own; for the allocation-free hot
// path use Snapshot().Entries() instead.
func (r *Registry) Entries() []*ModelEntry {
	return append([]*ModelEntry(nil), r.Snapshot().entries...)
}

// Len returns the number of provisioned models.
func (r *Registry) Len() int { return len(r.Snapshot().entries) }

// Get returns the entry with the given name, or nil.
func (r *Registry) Get(name string) *ModelEntry {
	for _, e := range r.Snapshot().entries {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// Names returns the entry names in insertion order.
func (r *Registry) Names() []string {
	entries := r.Snapshot().entries
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names
}

// Predict runs the entry's query classifier on a frame (through the
// shared query-feature front-end). It panics on unsupervised entries.
func (e *ModelEntry) Predict(f vidsim.Frame) int {
	if e.Classifier == nil {
		panic("core: Predict on an unsupervised entry")
	}
	return e.Classifier.Predict(e.queryFn(f.Pixels, e.W, e.H))
}

// QuerySample converts a frame and its label into the classifier sample
// format (query features + label) used for MSBO windows.
func (e *ModelEntry) QuerySample(f vidsim.Frame, label int) classifier.Sample {
	return classifier.Sample{X: e.queryFn(f.Pixels, e.W, e.H), Label: label}
}

// QueryFn returns the classifier front-end the entry was provisioned
// with (nil for unsupervised entries) — the checkpoint codec persists it
// by registered name.
func (e *ModelEntry) QueryFn() vision.FeatureFunc { return e.queryFn }

// SetQueryFn installs the classifier front-end on a restored entry.
func (e *ModelEntry) SetQueryFn(fn vision.FeatureFunc) { e.queryFn = fn }

// String implements fmt.Stringer for diagnostics.
func (r *Registry) String() string {
	names := r.Names()
	return fmt.Sprintf("Registry(%d models: %v)", len(names), names)
}
