package core

import (
	"fmt"
	"time"

	"videodrift/internal/conformal"
	"videodrift/internal/stats"
	"videodrift/internal/telemetry"
	"videodrift/internal/tensor"
	"videodrift/internal/vidsim"
	"videodrift/internal/vision"
)

// DIConfig carries the Drift Inspector parameters of Algorithm 1 /
// Table 1.
type DIConfig struct {
	W     int     // martingale observation window
	R     float64 // significance level r
	K     int     // nearest neighbours for the non-conformity score
	Kappa float64 // betting-function gain: g(p) = κ(1/2 − p)
	Mode  conformal.ThresholdMode
	// SampleEvery monitors only every Nth frame (1 = every frame). The
	// paper monitors "by sampling the video stream" (§3); sampling both
	// cuts per-frame cost and decorrelates the martingale's increments, so
	// short in-distribution excursions (traffic bursts, exposure wander)
	// do not masquerade as drifts. Detection lag in frames is roughly
	// W × SampleEvery, matching the paper's reported ≈28-frame lags.
	SampleEvery int
}

// DefaultDIConfig returns the monitoring parameters: the paper's r=0.5 and
// K=5 (§6.1), W=4 rather than 3 (with the corrected Hoeffding threshold,
// W=3 leaves under 4% headroom between the threshold and the maximum
// attainable windowed growth — see DESIGN.md §2), a stream-sampling stride
// of 10 (spanning past in-distribution appearance excursions, which last up to ~25 frames), and a betting gain sized so the windowed test is satisfiable.
func DefaultDIConfig() DIConfig {
	return DIConfig{W: 4, R: 0.5, K: 5, Kappa: 4, Mode: conformal.ThresholdHoeffding, SampleEvery: 10}
}

// DriftInspector is Algorithm 1: an online conformal-martingale monitor
// for one model's distribution. Feed it every frame; it returns true when
// the windowed martingale growth exceeds the Eq. 15 threshold. It is not
// safe for concurrent use.
type DriftInspector struct {
	entry  *ModelEntry
	cfg    DIConfig
	scorer *conformal.KNNScorer // kNN fast path over the entry's FeatMatrix
	fz     vision.Featurizer    // reusable featurization scratch
	mart   *conformal.CUSUM
	test   conformal.DriftTest
	rng    *stats.RNG
	tracer *telemetry.Tracer
	fstats *FeatWindowStats // reference-vs-recent attribution statistics

	seen        int     // frames offered, including skipped ones
	sampled     int     // frames actually folded into the martingale
	quarantined int     // sampled frames rejected as malformed
	pSum        float64 // running sum of computed p-values
}

// NewDriftInspector builds a monitor for the distribution captured by
// entry, using the entry's precomputed Σ_{T_i} and A_i.
func NewDriftInspector(entry *ModelEntry, cfg DIConfig, rng *stats.RNG) *DriftInspector {
	if entry == nil {
		panic("core: NewDriftInspector with nil entry")
	}
	if cfg.W <= 0 || cfg.K <= 0 || cfg.Kappa <= 0 {
		panic("core: NewDriftInspector with invalid config")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 1
	}
	return &DriftInspector{
		entry:  entry,
		cfg:    cfg,
		scorer: conformal.NewKNNScorer(cfg.K, entry.FeatMatrix()),
		mart:   conformal.NewCUSUM(conformal.ShiftedOdd(cfg.Kappa), cfg.Kappa/2, cfg.W),
		test:   conformal.DriftTest{W: cfg.W, R: cfg.R, Mode: cfg.Mode},
		rng:    rng,
		fstats: NewFeatWindowStats(entry.SampleFeats),
	}
}

// Entry returns the model entry the inspector monitors.
func (di *DriftInspector) Entry() *ModelEntry { return di.entry }

// SetTracer attaches a telemetry tracer. A nil tracer (the default)
// keeps the untraced fast path: one pointer compare per sampled frame.
func (di *DriftInspector) SetTracer(tr *telemetry.Tracer) { di.tracer = tr }

// Observe offers one frame's pixels to the monitor and reports whether a
// drift is declared. Only every SampleEvery-th frame is folded into the
// martingale (Algorithm 1 end to end: non-conformity score, p-value with
// uniform tie-break, betting-function update, windowed threshold test);
// skipped frames are free.
func (di *DriftInspector) Observe(pixels tensor.Vector) bool {
	di.seen++
	if (di.seen-1)%di.cfg.SampleEvery != 0 {
		return false
	}
	// Boundary validation (defense in depth behind the pipeline's
	// admission gate, and the only gate for callers driving Observe
	// directly): a malformed vector never reaches the featurizer, the
	// kNN scorer or the martingale. Only sampled frames are scanned, so
	// stride-skipped frames stay free.
	if reason := PixelsProblem(pixels, di.entry.W, di.entry.H); reason != "" {
		di.quarantined++
		di.tracer.FrameQuarantined(reason)
		return false
	}
	di.sampled++
	// Stage timestamps come from the tracer's injected clock, never
	// time.Now: the untraced path reads no clock at all, and traced
	// deterministic replays stay bit-identical under a test clock (the
	// driftlint determinism analyzer enforces this).
	tr := di.tracer
	var t0 time.Time
	if tr != nil {
		t0 = tr.Now()
	}
	feat := di.fz.Appearance(pixels, di.entry.W, di.entry.H)
	di.fstats.Observe(feat) // copies; the featurizer reuses its buffer
	if tr != nil {
		t1 := tr.Now()
		tr.ObserveStage(telemetry.StageFeaturize, t1.Sub(t0))
		t0 = t1
	}
	a := di.scorer.Score(feat)
	if tr != nil {
		t1 := tr.Now()
		tr.ObserveStage(telemetry.StageKNNScore, t1.Sub(t0))
		t0 = t1
	}
	p := di.entry.Calib.PValue(a, di.rng.Float64())
	if tr != nil {
		t1 := tr.Now()
		tr.ObserveStage(telemetry.StagePValue, t1.Sub(t0))
		t0 = t1
	}
	di.pSum += p
	di.mart.Update(p)
	fired := di.test.Check(di.mart)
	if tr != nil {
		tr.ObserveStage(telemetry.StageMartingale, tr.Now().Sub(t0))
		tr.MartingaleUpdate(p, di.mart.Value(), di.mart.WindowDelta(), di.MeanP())
		if fired {
			tr.DriftDeclared(di.entry.Name, di.seen, di.sampled, di.mart.Value(), di.mart.WindowDelta(), di.MeanP(),
				di.fstats.Attribution())
		}
	}
	return fired
}

// Attribution returns the ranked per-dimension reference-vs-recent
// divergences of the inspector's feature statistics (nil before the
// first sampled frame). It is a pure read: calling it does not perturb
// the replay-critical state.
func (di *DriftInspector) Attribution() []telemetry.DimShift { return di.fstats.Attribution() }

// SetProbe attaches an observational probe to the inspector's martingale
// (see conformal.Probe); forensics replay uses it to trace every update
// of a restored inspector.
func (di *DriftInspector) SetProbe(fn conformal.Probe) { di.mart.SetProbe(fn) }

// ObserveFrame is Observe on a vidsim frame.
func (di *DriftInspector) ObserveFrame(f vidsim.Frame) bool { return di.Observe(f.Pixels) }

// MartingaleValue returns the current martingale value S_l.
func (di *DriftInspector) MartingaleValue() float64 { return di.mart.Value() }

// WindowDelta returns the current windowed growth |S_l − S_{l−W}|.
func (di *DriftInspector) WindowDelta() float64 { return di.mart.WindowDelta() }

// Observed returns the number of frames offered since the last reset
// (including frames the sampling stride skipped).
func (di *DriftInspector) Observed() int { return di.seen }

// Sampled returns the number of frames actually folded into the
// martingale since the last reset.
func (di *DriftInspector) Sampled() int { return di.sampled }

// Quarantined returns the number of sampled frames rejected as
// malformed since the last reset.
func (di *DriftInspector) Quarantined() int { return di.quarantined }

// MeanP returns the mean conformal p-value of the sampled frames since
// the last reset (0.5 in expectation when the stream matches the model's
// distribution — Theorem 4.1 — and near 0 under drift).
func (di *DriftInspector) MeanP() float64 {
	if di.sampled == 0 {
		return 0
	}
	return di.pSum / float64(di.sampled)
}

// Reset clears the martingale and the recent feature window (called
// after a model switch).
func (di *DriftInspector) Reset() {
	di.mart.Reset()
	di.fstats.Reset()
	di.seen = 0
	di.sampled = 0
	di.quarantined = 0
	di.pSum = 0
}

// DISnapshot is a serializable copy of a Drift Inspector's mutable
// state: the martingale, the tie-break RNG's stream position, and the
// frame counters. Together with the (externally supplied) DIConfig and
// model entry it reconstructs the inspector bit-exactly.
//
//driftlint:snapshot encode=DriftInspector.Snapshot decode=RestoreDriftInspector
type DISnapshot struct {
	Mart        conformal.CUSUMState
	RNG         stats.RNGState
	Seen        int
	Sampled     int
	Quarantined int
	PSum        float64
	// FStats is the attribution accumulator's recent feature window (its
	// reference half is recomputed from the entry on restore).
	FStats FeatStatsState
}

// Snapshot captures the inspector's current state for checkpointing.
func (di *DriftInspector) Snapshot() DISnapshot {
	return DISnapshot{
		Mart:        di.mart.State(),
		RNG:         di.rng.State(),
		Seen:        di.seen,
		Sampled:     di.sampled,
		Quarantined: di.quarantined,
		PSum:        di.pSum,
		FStats:      di.fstats.State(),
	}
}

// RestoreDriftInspector rebuilds an inspector from a snapshot taken
// against the same entry and config: every subsequent Observe returns
// exactly what the snapshotted inspector would have returned.
func RestoreDriftInspector(entry *ModelEntry, cfg DIConfig, snap DISnapshot) (*DriftInspector, error) {
	if snap.Seen < 0 || snap.Sampled < 0 || snap.Sampled > snap.Seen || snap.Quarantined < 0 {
		return nil, fmt.Errorf("core: drift-inspector snapshot has inconsistent counters (seen=%d sampled=%d quarantined=%d)", snap.Seen, snap.Sampled, snap.Quarantined)
	}
	di := NewDriftInspector(entry, cfg, stats.ResumeRNG(snap.RNG))
	if err := di.mart.SetState(snap.Mart); err != nil {
		return nil, err
	}
	di.seen = snap.Seen
	di.sampled = snap.Sampled
	di.quarantined = snap.Quarantined
	di.pSum = snap.PSum
	di.fstats.SetState(snap.FStats)
	return di, nil
}
