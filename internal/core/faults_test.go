package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"videodrift/internal/stats"
	"videodrift/internal/telemetry"
	"videodrift/internal/vidsim"
)

// corruptNaN returns a copy of the frame with one NaN pixel.
func corruptNaN(f vidsim.Frame) vidsim.Frame {
	f.Pixels = append([]float64(nil), f.Pixels...)
	f.Pixels[len(f.Pixels)/2] = math.NaN()
	return f
}

// corruptShort returns a copy of the frame with a truncated pixel
// vector.
func corruptShort(f vidsim.Frame) vidsim.Frame {
	f.Pixels = append([]float64(nil), f.Pixels[:len(f.Pixels)/2]...)
	f.W, f.H = 0, 0 // geometry metadata lost too
	return f
}

// corruptDims returns a copy of the frame declaring the wrong geometry.
func corruptDims(f vidsim.Frame) vidsim.Frame {
	f.W *= 2
	return f
}

func TestFrameProblem(t *testing.T) {
	good := streamFrames(dayC(), 1, 301)[0]
	if reason := FrameProblem(good, testW, testH); reason != "" {
		t.Fatalf("well-formed frame rejected: %s", reason)
	}
	inf := good
	inf.Pixels = append([]float64(nil), inf.Pixels...)
	inf.Pixels[0] = math.Inf(-1)
	for name, bad := range map[string]vidsim.Frame{
		"nan":   corruptNaN(good),
		"short": corruptShort(good),
		"dims":  corruptDims(good),
		"inf":   inf,
	} {
		if FrameProblem(bad, testW, testH) == "" {
			t.Errorf("%s frame admitted", name)
		}
	}
}

// TestAdmissionGateEquivalence is the quarantine invariant: a pipeline
// fed good frames interleaved with malformed ones ends bit-identical —
// martingale, RNG position, deployments — to a pipeline that never saw
// the bad frames.
func TestAdmissionGateEquivalence(t *testing.T) {
	fx := getFixture()
	mkPipe := func() *Pipeline {
		cfg := DefaultPipelineConfig(testDim, testNumClasses)
		cfg.Provision = quickProvision(51)
		return NewPipeline(NewRegistry(fx.day, fx.night), testLabeler, cfg)
	}
	dirty, clean := mkPipe(), mkPipe()

	tr := telemetry.New(telemetry.Config{})
	dirtyTraced := func() *Pipeline {
		cfg := DefaultPipelineConfig(testDim, testNumClasses)
		cfg.Provision = quickProvision(51)
		cfg.Tracer = tr
		return NewPipeline(NewRegistry(fx.day, fx.night), testLabeler, cfg)
	}()

	stream := append(streamFrames(dayC(), 80, 302), streamFrames(nightC(), 120, 303)...)
	quarantined := 0
	for i, f := range stream {
		bad := f
		switch i % 7 {
		case 2:
			bad = corruptNaN(f)
		case 5:
			bad = corruptShort(f)
		}
		if i%7 == 2 || i%7 == 5 {
			for _, p := range []*Pipeline{dirty, dirtyTraced} {
				out := p.Process(bad)
				if !out.Quarantined || out.Invocations != 0 {
					t.Fatalf("frame %d: malformed frame not quarantined: %+v", i, out)
				}
			}
			quarantined++
		}
		a, b, c := dirty.Process(f), clean.Process(f), dirtyTraced.Process(f)
		if a != b || c.Quarantined != a.Quarantined || c.SwitchedTo != a.SwitchedTo || c.Drift != a.Drift {
			t.Fatalf("frame %d: outcomes diverge: dirty=%+v clean=%+v traced=%+v", i, a, b, c)
		}
	}
	if dirty.Current() != clean.Current() {
		t.Errorf("deployed models diverge: %q vs %q", dirty.Current().Name, clean.Current().Name)
	}
	if !reflect.DeepEqual(dirty.Snapshot().DI, clean.Snapshot().DI) {
		t.Error("drift-inspector state diverges after quarantined frames")
	}
	md, mc := dirty.Metrics(), clean.Metrics()
	if md.QuarantinedFrames != quarantined {
		t.Errorf("QuarantinedFrames = %d, want %d", md.QuarantinedFrames, quarantined)
	}
	if md.Frames != mc.Frames+quarantined || md.ModelInvocations != mc.ModelInvocations {
		t.Errorf("metrics diverge: dirty=%+v clean=%+v", md, mc)
	}
	s := tr.Snapshot()
	if s.Quarantined != uint64(quarantined) {
		t.Errorf("telemetry Quarantined = %d, want %d", s.Quarantined, quarantined)
	}
}

// TestDIObserveRejectsMalformed covers the DriftInspector.Observe
// boundary directly (the only gate for callers not going through a
// pipeline).
func TestDIObserveRejectsMalformed(t *testing.T) {
	fx := getFixture()
	cfg := DefaultDIConfig()
	cfg.SampleEvery = 1
	di := NewDriftInspector(fx.day, cfg, stats.NewRNG(9))
	for _, f := range streamFrames(dayC(), 20, 304) {
		di.Observe(f.Pixels)
	}
	before := di.Snapshot()

	bad := append([]float64(nil), streamFrames(dayC(), 1, 305)[0].Pixels...)
	bad[3] = math.NaN()
	if di.Observe(bad) {
		t.Fatal("malformed pixels declared a drift")
	}
	if di.Observe(bad[:10]) {
		t.Fatal("short pixels declared a drift")
	}
	if di.Quarantined() != 2 {
		t.Errorf("Quarantined = %d, want 2", di.Quarantined())
	}
	after := di.Snapshot()
	if !reflect.DeepEqual(before.Mart, after.Mart) || before.Sampled != after.Sampled ||
		before.PSum != after.PSum || before.RNG != after.RNG {
		t.Errorf("malformed pixels touched martingale state: before=%+v after=%+v", before, after)
	}
	if math.IsNaN(di.MartingaleValue()) || math.IsNaN(di.MeanP()) {
		t.Error("NaN leaked into martingale state")
	}
}

// TestTrainingRetryThenRecovery injects two training failures and
// asserts the pipeline retries with frame-count backoff, trains on the
// third attempt, and reports degraded → ok health transitions.
func TestTrainingRetryThenRecovery(t *testing.T) {
	fx := getFixture()
	tr := telemetry.New(telemetry.Config{})
	cfg := DefaultPipelineConfig(testDim, testNumClasses)
	cfg.Selector = SelectorMSBI
	cfg.Provision = quickProvision(52)
	cfg.NewModelFrames = 100
	cfg.TrainAttempts = 3
	cfg.TrainBackoffFrames = 8
	cfg.TrainBackoffCap = 16
	cfg.Tracer = tr
	failures := 0
	cfg.TrainFault = func() error {
		if failures < 2 {
			failures++
			return errors.New("injected training fault")
		}
		return nil
	}
	p := NewPipeline(NewRegistry(fx.day), testLabeler, cfg)
	for _, f := range streamFrames(dayC(), 60, 306) {
		p.Process(f)
	}
	trained := false
	for _, f := range streamFrames(nightC(), 600, 307) {
		if out := p.Process(f); out.TrainedNew {
			trained = true
			break
		}
	}
	if !trained {
		t.Fatal("pipeline never recovered from injected training failures")
	}
	m := p.Metrics()
	if m.TrainingFailures != 2 || m.ModelsTrained != 1 {
		t.Errorf("metrics = %+v, want 2 failures then 1 trained", m)
	}
	s := tr.Snapshot()
	if s.TrainingFailures != 2 {
		t.Errorf("telemetry TrainingFailures = %d", s.TrainingFailures)
	}
	if s.Health != telemetry.HealthOK {
		t.Errorf("health = %v after recovery, want ok", s.Health)
	}
	degraded := false
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindHealthChanged && e.Health == "degraded" {
			degraded = true
		}
	}
	if !degraded {
		t.Error("no degraded health transition was traced")
	}
}

// TestTrainingDegradedMode exhausts all training attempts and asserts
// the pipeline degrades instead of wedging: the deployed model keeps
// serving, monitoring resumes (the state machine leaves stateTraining),
// and health reports degraded.
func TestTrainingDegradedMode(t *testing.T) {
	fx := getFixture()
	tr := telemetry.New(telemetry.Config{})
	cfg := DefaultPipelineConfig(testDim, testNumClasses)
	cfg.Selector = SelectorMSBI
	cfg.Provision = quickProvision(53)
	cfg.NewModelFrames = 80
	cfg.TrainAttempts = 2
	cfg.TrainBackoffFrames = 4
	cfg.TrainBackoffCap = 8
	cfg.Tracer = tr
	cfg.TrainFault = func() error { return errors.New("persistent training fault") }
	p := NewPipeline(NewRegistry(fx.day), testLabeler, cfg)
	for _, f := range streamFrames(dayC(), 60, 308) {
		p.Process(f)
	}
	for _, f := range streamFrames(nightC(), 800, 309) {
		if out := p.Process(f); out.TrainedNew {
			t.Fatal("training succeeded despite a persistent fault")
		}
	}
	if p.Current() != fx.day {
		t.Errorf("deployed model = %q, want the original day model still serving", p.Current().Name)
	}
	m := p.Metrics()
	if m.TrainingFailures < 2 || m.ModelsTrained != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if p.Registry().Len() != 1 {
		t.Errorf("registry grew to %d entries despite failed training", p.Registry().Len())
	}
	if tr.Health() != telemetry.HealthDegraded {
		t.Errorf("health = %v, want degraded", tr.Health())
	}
	// Degraded mode resumed monitoring: the drift must have re-fired
	// after the first abandoned window (DI reset + persisting night
	// stream), proving the pipeline is not wedged in training.
	if m.DriftsDetected < 2 {
		t.Errorf("DriftsDetected = %d, want >= 2 (monitoring resumed after degrade)", m.DriftsDetected)
	}
}

// TestTrainingPanicIsCaught routes a panic out of the training path into
// the retry machinery.
func TestTrainingPanicIsCaught(t *testing.T) {
	fx := getFixture()
	cfg := DefaultPipelineConfig(testDim, testNumClasses)
	cfg.Selector = SelectorMSBI
	cfg.Provision = quickProvision(54)
	cfg.NewModelFrames = 80
	cfg.TrainAttempts = 1
	calls := 0
	cfg.TrainFault = func() error { calls++; panic("injected panic in training") }
	p := NewPipeline(NewRegistry(fx.day), testLabeler, cfg)
	for _, f := range streamFrames(dayC(), 60, 310) {
		p.Process(f)
	}
	for _, f := range streamFrames(nightC(), 400, 311) {
		p.Process(f)
	}
	if calls == 0 {
		t.Fatal("training path never reached")
	}
	if p.Metrics().TrainingFailures != calls {
		t.Errorf("TrainingFailures = %d, want %d", p.Metrics().TrainingFailures, calls)
	}
}

// TestSnapshotRoundTripMidRetry proves the training-retry state
// (TrainFails, RetryWait) survives a checkpoint: a restored pipeline
// behaves identically to the original from the snapshot point on.
func TestSnapshotRoundTripMidRetry(t *testing.T) {
	fx := getFixture()
	mkCfg := func() PipelineConfig {
		cfg := DefaultPipelineConfig(testDim, testNumClasses)
		cfg.Selector = SelectorMSBI
		cfg.Provision = quickProvision(55)
		cfg.NewModelFrames = 80
		cfg.TrainAttempts = 3
		cfg.TrainBackoffFrames = 16
		cfg.TrainBackoffCap = 64
		cfg.TrainFault = func() error { return errors.New("always failing") }
		return cfg
	}
	p := NewPipeline(NewRegistry(fx.day), testLabeler, mkCfg())
	stream := append(streamFrames(dayC(), 60, 312), streamFrames(nightC(), 500, 313)...)
	cut := -1
	for i, f := range stream {
		p.Process(f)
		if p.Metrics().TrainingFailures == 1 && cut < 0 {
			cut = i + 1
			break
		}
	}
	if cut < 0 {
		t.Fatal("never reached a mid-retry state")
	}
	snap := p.Snapshot()
	if snap.TrainFails != 1 || snap.RetryWait == 0 {
		t.Fatalf("snapshot retry state = fails %d wait %d, want mid-backoff", snap.TrainFails, snap.RetryWait)
	}
	q, err := RestorePipeline(p.Registry(), testLabeler, mkCfg(), snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range stream[cut:] {
		a, b := p.Process(f), q.Process(f)
		if a != b {
			t.Fatalf("restored pipeline diverges: %+v vs %+v", a, b)
		}
	}
	if p.Metrics() != q.Metrics() {
		t.Errorf("metrics diverge: %+v vs %+v", p.Metrics(), q.Metrics())
	}
}
