package faults

import (
	"fmt"
	iofs "io/fs"
	"sync"

	"videodrift/internal/store"
)

// FlakyFS wraps a store.FS and fails scheduled checkpoint writes: the
// i-th CreateTemp'd file (0-based) listed in Schedule.CheckpointFaults
// returns an injected error once its write reaches the scheduled byte
// offset, leaving exactly the partial temp file a real crash would.
// Reads, renames of successful writes, and unscheduled saves pass
// through untouched, so store.LoadLatest recovery is exercised against
// realistic wreckage. Safe for concurrent use.
type FlakyFS struct {
	base    store.FS
	mu      sync.Mutex
	saves   int
	failAt  map[int]int
	injured int // failed saves so far
}

// NewFlakyFS builds a FlakyFS over base from the schedule's
// checkpoint-fault plan. A schedule with no checkpoint faults yields a
// transparent wrapper.
func NewFlakyFS(base store.FS, s Schedule) *FlakyFS {
	return &FlakyFS{base: base, failAt: s.CheckpointFaults}
}

// Injured returns how many saves have been failed so far.
func (f *FlakyFS) Injured() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injured
}

func (f *FlakyFS) MkdirAll(dir string, perm iofs.FileMode) error { return f.base.MkdirAll(dir, perm) }
func (f *FlakyFS) ReadDir(dir string) ([]iofs.DirEntry, error)   { return f.base.ReadDir(dir) }
func (f *FlakyFS) ReadFile(path string) ([]byte, error)          { return f.base.ReadFile(path) }
func (f *FlakyFS) Rename(oldPath, newPath string) error          { return f.base.Rename(oldPath, newPath) }
func (f *FlakyFS) Remove(path string) error                      { return f.base.Remove(path) }
func (f *FlakyFS) SyncDir(dir string) error                      { return f.base.SyncDir(dir) }

func (f *FlakyFS) CreateTemp(dir, pattern string) (store.File, error) {
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	idx := f.saves
	f.saves++
	offset, scheduled := f.failAt[idx]
	if scheduled {
		f.injured++
	}
	f.mu.Unlock()
	if !scheduled {
		return file, nil
	}
	return &tornWriteFile{File: file, remaining: offset, save: idx}, nil
}

// tornWriteFile accepts `remaining` bytes, then fails.
type tornWriteFile struct {
	store.File
	remaining int
	save      int
}

func (t *tornWriteFile) Write(p []byte) (int, error) {
	if len(p) <= t.remaining {
		t.remaining -= len(p)
		return t.File.Write(p)
	}
	n := t.remaining
	if n > 0 {
		if _, err := t.File.Write(p[:n]); err != nil {
			return 0, err
		}
		t.remaining = 0
	}
	return n, fmt.Errorf("%w: checkpoint write torn (save %d)", ErrInjected, t.save)
}
