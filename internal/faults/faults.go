// Package faults is the repo's deterministic fault-injection harness.
// A seeded Schedule describes frame-level corruption (NaN/Inf pixels,
// wrong dimensions, dropped and duplicated frames) and infrastructure
// faults (worker panics and stalls, training failures, checkpoint-write
// failures); an Injector replays it bit-for-bit, so a chaos run is as
// reproducible as a clean one — the same determinism invariant
// driftlint enforces on the drift machinery itself. The package never
// reads a wall clock or global randomness: every choice derives from
// the schedule seed.
package faults

import (
	"fmt"
	"sort"
	"time"

	"videodrift/internal/stats"
)

// Kind enumerates the injectable fault types.
type Kind uint8

// Fault kinds. The first four corrupt a frame in flight; the last four
// hit the infrastructure around the pipeline.
const (
	// KindNaNPixel sets one pixel to NaN.
	KindNaNPixel Kind = iota
	// KindInfPixel sets one pixel to ±Inf.
	KindInfPixel
	// KindShortFrame truncates the pixel vector.
	KindShortFrame
	// KindWrongDims corrupts the frame's declared geometry.
	KindWrongDims
	// KindDropFrame drops the frame before the monitor sees it.
	KindDropFrame
	// KindDuplicateFrame delivers the frame twice.
	KindDuplicateFrame
	// KindWorkerPanic panics inside the shard worker before Process.
	KindWorkerPanic
	// KindWorkerStall blocks the shard worker for Fault.Stall.
	KindWorkerStall

	kindCount
)

var kindNames = [kindCount]string{
	"nan_pixel",
	"inf_pixel",
	"short_frame",
	"wrong_dims",
	"drop_frame",
	"duplicate_frame",
	"worker_panic",
	"worker_stall",
}

// String returns the kind's snake_case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled fault: Kind fires when shard Shard reaches
// per-shard stream index Frame.
type Fault struct {
	Shard int
	Frame int
	Kind  Kind
	// Times is how many times a worker panic/stall re-fires at this
	// frame (0 means once). Re-fires hit the supervisor's restart of
	// the same frame, which is how a crash loop is provoked.
	Times int
	// Stall is the block duration for KindWorkerStall.
	Stall time.Duration
}

// Schedule is a seeded, replayable fault plan. Identical schedules
// yield identical injected faults, byte for byte.
type Schedule struct {
	// Seed derives every data-dependent choice an injector makes (which
	// pixel to corrupt, the corrupted value, truncation length).
	Seed int64
	// Faults holds the frame- and worker-level faults, sorted by
	// (shard, frame, kind).
	Faults []Fault
	// TrainFailures is how many training attempts fail per shard before
	// training is allowed to succeed.
	TrainFailures int
	// CheckpointFaults maps a 0-based checkpoint-save index to the byte
	// offset at which that save's write fails (see FlakyFS).
	CheckpointFaults map[int]int
}

// GenConfig parameterizes Generate.
type GenConfig struct {
	Shards int // shard count (>=1)
	Frames int // per-shard stream length

	// Per-frame fault probabilities.
	CorruptRate float64 // one of NaN/Inf/short/wrong-dims
	DropRate    float64
	DupRate     float64

	// Worker faults: total panics and stalls spread uniformly over
	// (shard, frame) pairs.
	Panics   int
	Stalls   int
	StallFor time.Duration

	// Infrastructure faults.
	TrainFailures    int // failed training attempts per shard
	CheckpointFaults int // number of initial checkpoint saves that fail
}

// Generate builds a schedule from a seed: same seed and config, same
// schedule. Draw order is fixed (frame sweep first, then worker faults,
// then checkpoint faults), so schedules are stable across runs and
// platforms.
func Generate(seed int64, cfg GenConfig) Schedule {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	r := stats.NewRNG(seed)
	s := Schedule{Seed: seed, TrainFailures: cfg.TrainFailures}
	for shard := 0; shard < cfg.Shards; shard++ {
		for frame := 0; frame < cfg.Frames; frame++ {
			if cfg.CorruptRate > 0 && r.Float64() < cfg.CorruptRate {
				s.Faults = append(s.Faults, Fault{Shard: shard, Frame: frame, Kind: Kind(r.Intn(4))})
			}
			if cfg.DropRate > 0 && r.Float64() < cfg.DropRate {
				s.Faults = append(s.Faults, Fault{Shard: shard, Frame: frame, Kind: KindDropFrame})
			}
			if cfg.DupRate > 0 && r.Float64() < cfg.DupRate {
				s.Faults = append(s.Faults, Fault{Shard: shard, Frame: frame, Kind: KindDuplicateFrame})
			}
		}
	}
	for i := 0; i < cfg.Panics; i++ {
		s.Faults = append(s.Faults, Fault{
			Shard: r.Intn(cfg.Shards), Frame: r.Intn(max(cfg.Frames, 1)), Kind: KindWorkerPanic,
		})
	}
	for i := 0; i < cfg.Stalls; i++ {
		s.Faults = append(s.Faults, Fault{
			Shard: r.Intn(cfg.Shards), Frame: r.Intn(max(cfg.Frames, 1)), Kind: KindWorkerStall,
			Stall: cfg.StallFor,
		})
	}
	if cfg.CheckpointFaults > 0 {
		s.CheckpointFaults = make(map[int]int, cfg.CheckpointFaults)
		for i := 0; i < cfg.CheckpointFaults; i++ {
			s.CheckpointFaults[i] = r.Intn(4096)
		}
	}
	sortFaults(s.Faults)
	return s
}

// sortFaults orders faults by (shard, frame, kind) — the canonical
// order Injector and tests rely on.
func sortFaults(fs []Fault) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Shard != fs[j].Shard {
			return fs[i].Shard < fs[j].Shard
		}
		if fs[i].Frame != fs[j].Frame {
			return fs[i].Frame < fs[j].Frame
		}
		return fs[i].Kind < fs[j].Kind
	})
}
