package faults

import (
	"fmt"
	"sort"
	"sync"

	"videodrift/internal/stats"
)

// ReplicaFaultKind enumerates the injectable replication-stream faults.
type ReplicaFaultKind uint8

const (
	// ReplicaTornStream cuts a streamed generation short mid-message and
	// drops the connection — the torn delta stream a crashing or
	// partitioned primary produces. The standby's framing (or CRC) layer
	// rejects the fragment and the reconnect resumes from its Hello
	// generation.
	ReplicaTornStream ReplicaFaultKind = iota
	// ReplicaDropConn tears the connection before any byte of the
	// message is written — a partition between generations, so the
	// standby simply lags until the primary reconnects.
	ReplicaDropConn

	replicaKindCount
)

var replicaKindNames = [replicaKindCount]string{
	"replica_torn_stream",
	"replica_drop_conn",
}

// String returns the kind's snake_case name.
func (k ReplicaFaultKind) String() string {
	if int(k) < len(replicaKindNames) {
		return replicaKindNames[k]
	}
	return fmt.Sprintf("replicakind(%d)", int(k))
}

// ReplicaFault is one scheduled replication fault: Kind fires on the
// Msg-th generation the primary ships (0-based, counting retries — the
// in-cycle retry of a torn send is a new transmission, so a faulted
// generation's resend eventually lands clean).
type ReplicaFault struct {
	Msg  int
	Kind ReplicaFaultKind
}

// ReplicaSchedule is a seeded, replayable replication-fault plan, the
// replication sibling of NetSchedule: identical schedules tear the
// stream at identical offsets.
type ReplicaSchedule struct {
	// Seed derives every data-dependent choice (where to cut the write).
	Seed int64
	// Faults holds the per-transmission faults, sorted by (msg, kind).
	Faults []ReplicaFault
}

// GenerateReplica builds a replication-fault schedule: over the first
// msgs shipped generations, each independently suffers a torn stream
// with probability tornRate and a dropped connection with probability
// dropRate. Same seed and arguments, same schedule.
func GenerateReplica(seed int64, msgs int, tornRate, dropRate float64) ReplicaSchedule {
	r := stats.NewRNG(seed)
	s := ReplicaSchedule{Seed: seed}
	for m := 0; m < msgs; m++ {
		if tornRate > 0 && r.Float64() < tornRate {
			s.Faults = append(s.Faults, ReplicaFault{Msg: m, Kind: ReplicaTornStream})
		}
		if dropRate > 0 && r.Float64() < dropRate {
			s.Faults = append(s.Faults, ReplicaFault{Msg: m, Kind: ReplicaDropConn})
		}
	}
	sort.Slice(s.Faults, func(i, j int) bool {
		if s.Faults[i].Msg != s.Faults[j].Msg {
			return s.Faults[i].Msg < s.Faults[j].Msg
		}
		return s.Faults[i].Kind < s.Faults[j].Kind
	})
	return s
}

// ReplicaStats counts the replication faults an injector has fired.
type ReplicaStats struct {
	Fired [replicaKindCount]int
}

// Count returns the fired count for one kind.
func (s ReplicaStats) Count(k ReplicaFaultKind) int {
	if int(k) < len(s.Fired) {
		return s.Fired[k]
	}
	return 0
}

// Total returns the total replication faults fired.
func (s ReplicaStats) Total() int {
	n := 0
	for _, c := range s.Fired {
		n += c
	}
	return n
}

// ReplicaInjector replays a ReplicaSchedule against a primary's
// outgoing replication messages; its Tx method matches the
// replica.PrimaryConfig.TxFault seam. All methods are safe on a nil
// receiver (no-ops) and for concurrent use. Cut offsets derive only
// from (Seed, msg), never from call order.
type ReplicaInjector struct {
	sched ReplicaSchedule

	mu    sync.Mutex
	at    map[int][]ReplicaFaultKind
	stats ReplicaStats
}

// NewReplicaInjector builds an injector over a replication-fault
// schedule.
func NewReplicaInjector(s ReplicaSchedule) *ReplicaInjector {
	in := &ReplicaInjector{sched: s, at: make(map[int][]ReplicaFaultKind, len(s.Faults))}
	for _, f := range s.Faults {
		in.at[f.Msg] = append(in.at[f.Msg], f.Kind)
	}
	return in
}

// Schedule returns the injector's schedule.
func (in *ReplicaInjector) Schedule() ReplicaSchedule {
	if in == nil {
		return ReplicaSchedule{}
	}
	return in.sched
}

// Stats returns the counts of replication faults fired so far.
func (in *ReplicaInjector) Stats() ReplicaStats {
	if in == nil {
		return ReplicaStats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Tx runs the faults scheduled for transmission msg on the encoded
// replication message b. It returns the bytes to actually write and
// whether the sender should drop the connection after writing them.
// The input is never mutated; with no fault scheduled the original
// slice comes back unchanged.
func (in *ReplicaInjector) Tx(msg int, b []byte) ([]byte, bool) {
	if in == nil {
		return b, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	kinds := in.at[msg]
	if len(kinds) == 0 {
		return b, false
	}
	out, tear := b, false
	r := stats.NewRNG(in.sched.Seed ^ int64(msg)*7_919)
	for _, k := range kinds {
		switch k {
		case ReplicaTornStream:
			if len(out) > 1 {
				cut := 1 + r.Intn(len(out)-1)
				out = out[:cut]
			}
			tear = true
			in.stats.Fired[ReplicaTornStream]++
		case ReplicaDropConn:
			out = nil
			tear = true
			in.stats.Fired[ReplicaDropConn]++
		}
	}
	return out, tear
}
