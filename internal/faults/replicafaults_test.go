package faults

import (
	"bytes"
	"reflect"
	"testing"
)

func TestGenerateReplicaDeterministic(t *testing.T) {
	a := GenerateReplica(99, 200, 0.2, 0.1)
	b := GenerateReplica(99, 200, 0.2, 0.1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different replica schedules")
	}
	if len(a.Faults) == 0 {
		t.Fatal("rates 0.2/0.1 over 200 messages produced no faults")
	}
	c := GenerateReplica(100, 200, 0.2, 0.1)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("different seeds produced identical replica schedules")
	}
	for i := 1; i < len(a.Faults); i++ {
		p, q := a.Faults[i-1], a.Faults[i]
		if p.Msg > q.Msg || (p.Msg == q.Msg && p.Kind >= q.Kind) {
			t.Fatalf("schedule not sorted at %d: %+v then %+v", i, p, q)
		}
	}
}

func TestReplicaInjectorTx(t *testing.T) {
	sched := ReplicaSchedule{Seed: 7, Faults: []ReplicaFault{
		{Msg: 1, Kind: ReplicaTornStream},
		{Msg: 3, Kind: ReplicaDropConn},
	}}
	wire := bytes.Repeat([]byte{0xab}, 256)

	in := NewReplicaInjector(sched)
	out, tear := in.Tx(0, wire)
	if tear || !bytes.Equal(out, wire) {
		t.Fatalf("unscheduled message mangled: tear=%v len=%d", tear, len(out))
	}
	out, tear = in.Tx(1, wire)
	if !tear || len(out) == 0 || len(out) >= len(wire) {
		t.Fatalf("torn stream: tear=%v len=%d, want a proper prefix", tear, len(out))
	}
	// Replay determinism: a second injector over the same schedule cuts
	// at the same offset.
	out2, _ := NewReplicaInjector(sched).Tx(1, wire)
	if !bytes.Equal(out, out2) {
		t.Fatal("same (seed, msg) cut at different offsets")
	}
	out, tear = in.Tx(3, wire)
	if !tear || len(out) != 0 {
		t.Fatalf("dropped conn: tear=%v len=%d, want tear with no bytes", tear, len(out))
	}
	if !bytes.Equal(wire, bytes.Repeat([]byte{0xab}, 256)) {
		t.Fatal("Tx mutated the input slice")
	}

	st := in.Stats()
	if st.Count(ReplicaTornStream) != 1 || st.Count(ReplicaDropConn) != 1 || st.Total() != 2 {
		t.Fatalf("stats %+v, want one of each", st)
	}
	if ReplicaTornStream.String() != "replica_torn_stream" || ReplicaDropConn.String() != "replica_drop_conn" {
		t.Fatalf("kind names %q, %q", ReplicaTornStream, ReplicaDropConn)
	}
}

func TestNilReplicaInjectorIsSafe(t *testing.T) {
	var in *ReplicaInjector
	out, tear := in.Tx(0, []byte("abc"))
	if tear || string(out) != "abc" {
		t.Fatalf("nil injector: %q tear=%v", out, tear)
	}
	if in.Stats().Total() != 0 || len(in.Schedule().Faults) != 0 {
		t.Fatal("nil injector reported state")
	}
}
