package faults

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"videodrift/internal/store"
	"videodrift/internal/vidsim"
)

func testFrame(n int) vidsim.Frame {
	px := make([]float64, 16)
	for i := range px {
		px[i] = float64(n+i) / 100
	}
	return vidsim.Frame{Index: n, W: 4, H: 4, Pixels: px}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{
		Shards: 4, Frames: 200,
		CorruptRate: 0.05, DropRate: 0.02, DupRate: 0.02,
		Panics: 3, Stalls: 2, StallFor: time.Millisecond,
		TrainFailures: 2, CheckpointFaults: 3,
	}
	a, b := Generate(99, cfg), Generate(99, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := Generate(100, cfg)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("different seeds produced identical fault lists")
	}
	if len(a.Faults) == 0 || len(a.CheckpointFaults) != 3 {
		t.Fatalf("schedule empty or missing checkpoint faults: %+v", a)
	}
	for i := 1; i < len(a.Faults); i++ {
		p, q := a.Faults[i-1], a.Faults[i]
		if p.Shard > q.Shard || (p.Shard == q.Shard && p.Frame > q.Frame) {
			t.Fatalf("faults not sorted at %d: %+v then %+v", i, p, q)
		}
	}
}

func TestApplyReplayDeterminism(t *testing.T) {
	sched := Schedule{Seed: 7, Faults: []Fault{
		{Shard: 0, Frame: 3, Kind: KindNaNPixel},
		{Shard: 0, Frame: 5, Kind: KindDropFrame},
		{Shard: 0, Frame: 8, Kind: KindDuplicateFrame},
		{Shard: 1, Frame: 3, Kind: KindShortFrame},
		{Shard: 1, Frame: 4, Kind: KindWrongDims},
	}}
	run := func() [][]vidsim.Frame {
		in := NewInjector(sched)
		var out [][]vidsim.Frame
		for shard := 0; shard < 2; shard++ {
			for frame := 0; frame < 10; frame++ {
				out = append(out, in.Apply(shard, frame, testFrame(frame)))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("slot %d: lengths differ", i)
		}
		for j := range a[i] {
			fa, fb := a[i][j], b[i][j]
			if fa.W != fb.W || fa.H != fb.H || len(fa.Pixels) != len(fb.Pixels) {
				t.Fatalf("slot %d: frames differ: %+v vs %+v", i, fa, fb)
			}
			for k := range fa.Pixels {
				va, vb := fa.Pixels[k], fb.Pixels[k]
				if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
					t.Fatalf("slot %d pixel %d: %v vs %v", i, k, va, vb)
				}
			}
		}
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	in := NewInjector(Schedule{Seed: 1, Faults: []Fault{{Shard: 0, Frame: 0, Kind: KindNaNPixel}}})
	f := testFrame(0)
	orig := append([]float64(nil), f.Pixels...)
	out := in.Apply(0, 0, f)
	if len(out) != 1 {
		t.Fatalf("Apply returned %d frames", len(out))
	}
	if !reflect.DeepEqual([]float64(f.Pixels), orig) {
		t.Fatal("Apply mutated the input frame's pixels")
	}
	nan := false
	for _, v := range out[0].Pixels {
		if math.IsNaN(v) {
			nan = true
		}
	}
	if !nan {
		t.Fatal("scheduled NaN corruption did not fire")
	}
	if in.Stats().Count(KindNaNPixel) != 1 {
		t.Errorf("stats = %+v", in.Stats())
	}
}

func TestDropAndDuplicate(t *testing.T) {
	in := NewInjector(Schedule{Seed: 2, Faults: []Fault{
		{Shard: 0, Frame: 1, Kind: KindDropFrame},
		{Shard: 0, Frame: 2, Kind: KindDuplicateFrame},
	}})
	if got := in.Apply(0, 0, testFrame(0)); len(got) != 1 {
		t.Errorf("clean frame: %d outputs", len(got))
	}
	if got := in.Apply(0, 1, testFrame(1)); got != nil {
		t.Errorf("dropped frame: %d outputs, want nil", len(got))
	}
	if got := in.Apply(0, 2, testFrame(2)); len(got) != 2 {
		t.Errorf("duplicated frame: %d outputs, want 2", len(got))
	}
}

func TestBeforeProcessPanicAndRepeat(t *testing.T) {
	in := NewInjector(Schedule{Seed: 3, Faults: []Fault{
		{Shard: 0, Frame: 4, Kind: KindWorkerPanic, Times: 1}, // fires twice
	}})
	fires := 0
	attempt := func() {
		defer func() {
			if r := recover(); r != nil {
				pf, ok := r.(PanicFault)
				if !ok || pf.Shard != 0 || pf.Frame != 4 {
					t.Fatalf("unexpected panic value %v", r)
				}
				fires++
			}
		}()
		in.BeforeProcess(0, 4)
	}
	attempt()
	attempt()
	attempt() // exhausted: must not fire
	if fires != 2 {
		t.Fatalf("panic fired %d times, want 2 (Times=1)", fires)
	}
	if in.Stats().Count(KindWorkerPanic) != 2 {
		t.Errorf("stats = %+v", in.Stats())
	}
}

func TestBeforeProcessStallUsesInjectedSleeper(t *testing.T) {
	in := NewInjector(Schedule{Seed: 4, Faults: []Fault{
		{Shard: 1, Frame: 0, Kind: KindWorkerStall, Stall: 5 * time.Second},
	}})
	var slept time.Duration
	in.sleep = func(d time.Duration) { slept = d }
	in.BeforeProcess(1, 0)
	if slept != 5*time.Second {
		t.Fatalf("slept %v, want 5s via injected sleeper", slept)
	}
}

func TestTrainFaultPerShard(t *testing.T) {
	in := NewInjector(Schedule{Seed: 5, TrainFailures: 2})
	hook0, hook1 := in.TrainFault(0), in.TrainFault(1)
	for i := 0; i < 2; i++ {
		if err := hook0(); !errors.Is(err, ErrInjected) {
			t.Fatalf("shard 0 attempt %d: %v", i, err)
		}
	}
	if err := hook0(); err != nil {
		t.Fatalf("shard 0 attempt 3 should succeed: %v", err)
	}
	if err := hook1(); !errors.Is(err, ErrInjected) {
		t.Fatal("shard 1 has its own failure budget")
	}
	if in.TrainingFailuresFired() != 3 {
		t.Errorf("fired = %d, want 3", in.TrainingFailuresFired())
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var in *Injector
	if got := in.Apply(0, 0, testFrame(0)); len(got) != 1 {
		t.Error("nil injector altered the stream")
	}
	in.BeforeProcess(0, 0)
	if in.TrainFault(0) != nil {
		t.Error("nil injector returned a training hook")
	}
	if in.Stats().Total() != 0 || in.TrainingFailuresFired() != 0 {
		t.Error("nil injector has stats")
	}
}

func TestFlakyFSFailsScheduledSaves(t *testing.T) {
	sched := Schedule{Seed: 6, CheckpointFaults: map[int]int{1: 4}}
	ffs := NewFlakyFS(store.NewMemFS(), sched)
	write := func() error {
		f, err := ffs.CreateTemp("/d", "t-*.tmp")
		if err != nil {
			return err
		}
		_, err = f.Write([]byte("0123456789"))
		return err
	}
	if err := write(); err != nil {
		t.Fatalf("save 0 should pass: %v", err)
	}
	if err := write(); !errors.Is(err, ErrInjected) {
		t.Fatalf("save 1 should fail injected: %v", err)
	}
	if err := write(); err != nil {
		t.Fatalf("save 2 should pass: %v", err)
	}
	if ffs.Injured() != 1 {
		t.Errorf("Injured = %d", ffs.Injured())
	}
}

func TestRetryPolicy(t *testing.T) {
	var sleeps []time.Duration
	p := Policy{Attempts: 4, Base: time.Second, Cap: 2 * time.Second,
		Sleep: func(d time.Duration) { sleeps = append(sleeps, d) }}
	calls, failures := 0, 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return ErrInjected
		}
		return nil
	}, func(attempt int, err error) { failures++ })
	if err != nil || calls != 3 || failures != 2 {
		t.Fatalf("err=%v calls=%d failures=%d", err, calls, failures)
	}
	want := []time.Duration{time.Second, 2 * time.Second}
	if !reflect.DeepEqual(sleeps, want) {
		t.Errorf("backoffs = %v, want %v", sleeps, want)
	}

	calls = 0
	err = p.Do(func() error { calls++; return ErrInjected }, nil)
	if !errors.Is(err, ErrInjected) || calls != 4 {
		t.Errorf("exhausted policy: err=%v calls=%d", err, calls)
	}
}
