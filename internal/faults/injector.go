package faults

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"videodrift/internal/stats"
	"videodrift/internal/vidsim"
)

// ErrInjected is the root of every error the harness injects; callers
// distinguish injected faults from real ones with errors.Is.
var ErrInjected = errors.New("faults: injected")

// PanicFault is the value an injected worker panic throws; the shard
// supervisor recovers it like any other panic and restarts the worker.
type PanicFault struct {
	Shard int
	Frame int
}

// Error satisfies error so recovered panic values format cleanly.
func (p PanicFault) Error() string {
	return fmt.Sprintf("faults: injected worker panic (shard %d, frame %d)", p.Shard, p.Frame)
}

// Stats counts the faults an injector has actually fired, by kind.
type Stats struct {
	Fired [kindCount]int
}

// Count returns the fired count for one kind.
func (s Stats) Count(k Kind) int {
	if int(k) < len(s.Fired) {
		return s.Fired[k]
	}
	return 0
}

// Total returns the total faults fired.
func (s Stats) Total() int {
	n := 0
	for _, c := range s.Fired {
		n += c
	}
	return n
}

// Injector replays a Schedule. All methods are safe on a nil receiver
// (no-ops), so wiring is unconditional, and safe for concurrent use by
// parallel shard workers. Replay determinism: corruption values derive
// only from (Schedule.Seed, shard, frame), never from call order across
// shards.
type Injector struct {
	sched Schedule

	mu         sync.Mutex
	at         map[[2]int][]*scheduledFault // (shard, frame) → its faults
	trained    map[int]int                  // shard → failed training attempts so far
	trainFired int                          // injected training failures across all shards
	stats      Stats

	sleep func(time.Duration) // test seam; nil means time.Sleep
}

type scheduledFault struct {
	Fault
	fired int
}

// NewInjector builds an injector over a schedule.
func NewInjector(s Schedule) *Injector {
	in := &Injector{
		sched:   s,
		at:      make(map[[2]int][]*scheduledFault, len(s.Faults)),
		trained: make(map[int]int),
	}
	for i := range s.Faults {
		f := s.Faults[i]
		key := [2]int{f.Shard, f.Frame}
		in.at[key] = append(in.at[key], &scheduledFault{Fault: f})
	}
	return in
}

// Schedule returns the injector's schedule.
func (in *Injector) Schedule() Schedule {
	if in == nil {
		return Schedule{}
	}
	return in.sched
}

// Stats returns the counts of faults fired so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// SetSleeper replaces the stall sleeper (default time.Sleep). Chaos
// tests install a channel-blocking sleeper so stalls block workers for
// exactly as long as the test dictates, with no wall-clock waiting.
func (in *Injector) SetSleeper(sleep func(time.Duration)) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sleep = sleep
}

// frameRNG derives the corruption generator for one (shard, frame):
// a pure function of the schedule seed, independent of firing order.
func (in *Injector) frameRNG(shard, frame int) *stats.RNG {
	return stats.NewRNG(in.sched.Seed ^ int64(shard)*1_000_003 ^ int64(frame)*7_919)
}

// Apply runs the frame-level faults scheduled for (shard, frame) on f
// and returns the frames the monitor should actually receive: nil for a
// dropped frame, two entries for a duplicated one, a corrupted clone
// for pixel/dimension faults. The input frame is never mutated.
func (in *Injector) Apply(shard, frame int, f vidsim.Frame) []vidsim.Frame {
	if in == nil {
		return []vidsim.Frame{f}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := []vidsim.Frame{f}
	for _, sf := range in.at[[2]int{shard, frame}] {
		switch sf.Kind {
		case KindDropFrame:
			in.stats.Fired[KindDropFrame]++
			sf.fired++
			return nil
		case KindDuplicateFrame:
			in.stats.Fired[KindDuplicateFrame]++
			sf.fired++
			out = append(out, out[0])
		case KindNaNPixel, KindInfPixel, KindShortFrame, KindWrongDims:
			in.stats.Fired[sf.Kind]++
			sf.fired++
			out[0] = corruptFrame(out[0], sf.Kind, in.frameRNG(shard, frame))
		}
	}
	return out
}

// corruptFrame clones f and applies one corruption kind.
func corruptFrame(f vidsim.Frame, k Kind, r *stats.RNG) vidsim.Frame {
	px := append([]float64(nil), f.Pixels...)
	f.Pixels = px
	switch k {
	case KindNaNPixel:
		if len(px) > 0 {
			px[r.Intn(len(px))] = math.NaN()
		}
	case KindInfPixel:
		if len(px) > 0 {
			sign := 1.0
			if r.Float64() < 0.5 {
				sign = -1
			}
			px[r.Intn(len(px))] = math.Inf(int(sign))
		}
	case KindShortFrame:
		if len(px) > 1 {
			f.Pixels = px[:1+r.Intn(len(px)-1)]
		} else {
			f.Pixels = nil
		}
	case KindWrongDims:
		f.W = f.W + 1 + r.Intn(7)
	}
	return f
}

// BeforeProcess fires the worker-level faults scheduled for
// (shard, frame): a stall blocks the calling goroutine, a panic throws
// PanicFault. Each fault fires Times+1 times, so the supervisor's
// re-feed of the same frame after a restart hits it again exactly as
// scheduled — how crash loops are provoked deterministically.
func (in *Injector) BeforeProcess(shard, frame int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	var panicking bool
	for _, sf := range in.at[[2]int{shard, frame}] {
		if sf.fired > sf.Times {
			continue
		}
		switch sf.Kind {
		case KindWorkerStall:
			sf.fired++
			in.stats.Fired[KindWorkerStall]++
			sleep := in.sleep
			if sleep == nil {
				sleep = time.Sleep
			}
			d := sf.Stall
			in.mu.Unlock()
			sleep(d)
			in.mu.Lock()
		case KindWorkerPanic:
			sf.fired++
			in.stats.Fired[KindWorkerPanic]++
			panicking = true
		}
	}
	in.mu.Unlock()
	if panicking {
		panic(PanicFault{Shard: shard, Frame: frame})
	}
}

// TrainFault returns the training fault hook for one shard, wired into
// core.PipelineConfig.TrainFault: the shard's first
// Schedule.TrainFailures attempts fail, later ones succeed.
func (in *Injector) TrainFault(shard int) func() error {
	if in == nil {
		return nil
	}
	return func() error {
		in.mu.Lock()
		defer in.mu.Unlock()
		if in.trained[shard] >= in.sched.TrainFailures {
			return nil
		}
		in.trained[shard]++
		in.trainFired++
		return fmt.Errorf("%w: training failure %d (shard %d)", ErrInjected, in.trained[shard], shard)
	}
}

// TrainingFailuresFired returns how many injected training failures
// have fired across all shards.
func (in *Injector) TrainingFailuresFired() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.trainFired
}
