package faults

import (
	"bytes"
	"testing"
)

// TestGenerateNetDeterministic pins the schedule generator: same seed
// and arguments, byte-identical schedule; a different seed lands the
// faults on different transmissions.
func TestGenerateNetDeterministic(t *testing.T) {
	a := GenerateNet(42, 500, 0.05, 0.02)
	b := GenerateNet(42, 500, 0.05, 0.02)
	if len(a.Faults) == 0 {
		t.Fatal("500 transmissions at 5%/2% produced no faults")
	}
	if len(a.Faults) != len(b.Faults) {
		t.Fatalf("same seed, %d vs %d faults", len(a.Faults), len(b.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d: %+v vs %+v", i, a.Faults[i], b.Faults[i])
		}
	}
	for i := 1; i < len(a.Faults); i++ {
		p, q := a.Faults[i-1], a.Faults[i]
		if p.Msg > q.Msg || (p.Msg == q.Msg && p.Kind >= q.Kind) {
			t.Fatalf("schedule not sorted at %d: %+v then %+v", i, p, q)
		}
	}
	c := GenerateNet(43, 500, 0.05, 0.02)
	same := len(a.Faults) == len(c.Faults)
	if same {
		for i := range a.Faults {
			if a.Faults[i] != c.Faults[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	if got := GenerateNet(1, 100, 0, 0); len(got.Faults) != 0 {
		t.Fatalf("zero rates scheduled %d faults", len(got.Faults))
	}
}

// TestNetInjectorCorrupt pins corruption mechanics: exactly one bit of
// one byte flips, strictly past the protocol header, the input slice is
// never mutated, and replaying the same transmission flips the same
// bit.
func TestNetInjectorCorrupt(t *testing.T) {
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i)
	}
	orig := append([]byte(nil), msg...)
	in := NewNetInjector(NetSchedule{Seed: 9, Faults: []NetFault{{Msg: 3, Kind: NetCorruptByte}}})

	// Un-faulted transmissions pass the original slice through.
	if out, tear := in.Tx(0, msg); &out[0] != &msg[0] || tear {
		t.Fatal("clean transmission was copied or torn")
	}
	out, tear := in.Tx(3, msg)
	if tear {
		t.Fatal("corruption must not tear the connection")
	}
	if !bytes.Equal(msg, orig) {
		t.Fatal("Tx mutated the caller's buffer")
	}
	diff := -1
	for i := range out {
		if out[i] != msg[i] {
			if diff >= 0 {
				t.Fatalf("bytes %d and %d both corrupted", diff, i)
			}
			diff = i
		}
	}
	if diff < NetHeaderBytes {
		t.Fatalf("corruption at byte %d, must land past the %d-byte header", diff, NetHeaderBytes)
	}
	if x := out[diff] ^ msg[diff]; x&(x-1) != 0 {
		t.Fatalf("byte %d changed by %#x, want a single bit flip", diff, x)
	}
	in2 := NewNetInjector(in.Schedule())
	out2, _ := in2.Tx(3, msg)
	if !bytes.Equal(out, out2) {
		t.Fatal("replaying the schedule corrupted a different bit")
	}
	if got := in.Stats().Count(NetCorruptByte); got != 1 {
		t.Fatalf("corrupt count = %d, want 1", got)
	}
}

// TestNetInjectorTornWrite pins tear mechanics: the output is a proper
// non-empty prefix and the sender is told to drop the connection.
func TestNetInjectorTornWrite(t *testing.T) {
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	in := NewNetInjector(NetSchedule{Seed: 9, Faults: []NetFault{{Msg: 0, Kind: NetTornWrite}}})
	out, tear := in.Tx(0, msg)
	if !tear {
		t.Fatal("torn write did not request a connection drop")
	}
	if len(out) == 0 || len(out) >= len(msg) {
		t.Fatalf("torn write kept %d of %d bytes, want a proper non-empty prefix", len(out), len(msg))
	}
	if !bytes.Equal(out, msg[:len(out)]) {
		t.Fatal("torn write altered the bytes it kept")
	}
	if got := in.Stats().Total(); got != 1 {
		t.Fatalf("fired total = %d, want 1", got)
	}
}

// TestNetInjectorNil pins the nil-receiver contract the client relies
// on: a fault-free run passes a nil *NetInjector whose Tx is still a
// valid passthrough.
func TestNetInjectorNil(t *testing.T) {
	var in *NetInjector
	msg := []byte{1, 2, 3}
	if out, tear := in.Tx(0, msg); &out[0] != &msg[0] || tear {
		t.Fatal("nil injector is not a passthrough")
	}
	if in.Stats().Total() != 0 || len(in.Schedule().Faults) != 0 {
		t.Fatal("nil injector reported state")
	}
}

// TestNetFaultKindString pins the snake_case names used in logs.
func TestNetFaultKindString(t *testing.T) {
	if NetCorruptByte.String() != "net_corrupt_byte" || NetTornWrite.String() != "net_torn_write" {
		t.Fatalf("kind names %q, %q", NetCorruptByte, NetTornWrite)
	}
	if got := NetFaultKind(250).String(); got != "netkind(250)" {
		t.Fatalf("out-of-range kind name %q", got)
	}
}
