package faults

import "time"

// Policy is a capped-exponential retry policy: Attempts tries, sleeping
// Base, 2·Base, 4·Base … (capped at Cap) between them. The sleeper is
// injectable so tests and deterministic replays never touch the wall
// clock; the zero value of Sleep means time.Sleep. Frame-count backoff
// inside the pipeline (core.PipelineConfig.TrainBackoffFrames) covers
// the replay-critical path; Policy is for the operational edges —
// checkpoint writes in driftserve — where real sleeping is fine.
type Policy struct {
	Attempts int
	Base     time.Duration
	Cap      time.Duration
	Sleep    func(time.Duration)
}

// DefaultRetry is the checkpoint-write policy driftserve uses.
func DefaultRetry() Policy {
	return Policy{Attempts: 3, Base: 100 * time.Millisecond, Cap: 2 * time.Second}
}

// Do runs op up to Attempts times, invoking onFail (if non-nil) after
// each failed attempt with the 1-based attempt number, and returns the
// last error (nil on success).
func (p Policy) Do(op func() error, onFail func(attempt int, err error)) error {
	attempts := p.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	backoff := p.Base
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if onFail != nil {
			onFail(attempt, err)
		}
		if attempt == attempts {
			break
		}
		if backoff > 0 {
			sleep(backoff)
			backoff *= 2
			if p.Cap > 0 && backoff > p.Cap {
				backoff = p.Cap
			}
		}
	}
	return err
}
