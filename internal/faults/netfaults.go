package faults

import (
	"fmt"
	"sort"
	"sync"

	"videodrift/internal/stats"
)

// NetHeaderBytes is the fixed header size of the ingest wire protocol
// (internal/ingest keeps its headerSize equal to this; a test pins the
// agreement). Injected byte corruption lands strictly past the header so
// the receiver still frames the message correctly and the payload CRC —
// not a desynced stream — catches the damage.
const NetHeaderBytes = 14

// NetFaultKind enumerates the injectable wire-level faults.
type NetFaultKind uint8

const (
	// NetCorruptByte flips one bit of one payload byte in flight, so the
	// receiver's CRC check rejects the message.
	NetCorruptByte NetFaultKind = iota
	// NetTornWrite cuts the write short mid-message and drops the
	// connection — the classic torn write a crashing sender produces.
	NetTornWrite

	netKindCount
)

var netKindNames = [netKindCount]string{
	"net_corrupt_byte",
	"net_torn_write",
}

// String returns the kind's snake_case name.
func (k NetFaultKind) String() string {
	if int(k) < len(netKindNames) {
		return netKindNames[k]
	}
	return fmt.Sprintf("netkind(%d)", int(k))
}

// NetFault is one scheduled wire fault: Kind fires on the Msg-th
// transmission the injector sees (0-based, counting retries — a resend
// of the same frame is a new transmission, so a faulted message's retry
// eventually goes through clean).
type NetFault struct {
	Msg  int
	Kind NetFaultKind
}

// NetSchedule is a seeded, replayable wire-fault plan, the network
// sibling of Schedule: identical schedules mangle identical bytes.
type NetSchedule struct {
	// Seed derives every data-dependent choice (which byte to flip,
	// where to tear the write).
	Seed int64
	// Faults holds the transmission-level faults, sorted by (msg, kind).
	Faults []NetFault
}

// GenerateNet builds a wire-fault schedule: over the first msgs
// transmissions, each independently suffers byte corruption with
// probability corruptRate and a torn write with probability tornRate.
// Same seed and arguments, same schedule.
func GenerateNet(seed int64, msgs int, corruptRate, tornRate float64) NetSchedule {
	r := stats.NewRNG(seed)
	s := NetSchedule{Seed: seed}
	for m := 0; m < msgs; m++ {
		if corruptRate > 0 && r.Float64() < corruptRate {
			s.Faults = append(s.Faults, NetFault{Msg: m, Kind: NetCorruptByte})
		}
		if tornRate > 0 && r.Float64() < tornRate {
			s.Faults = append(s.Faults, NetFault{Msg: m, Kind: NetTornWrite})
		}
	}
	sort.Slice(s.Faults, func(i, j int) bool {
		if s.Faults[i].Msg != s.Faults[j].Msg {
			return s.Faults[i].Msg < s.Faults[j].Msg
		}
		return s.Faults[i].Kind < s.Faults[j].Kind
	})
	return s
}

// NetStats counts the wire faults an injector has fired, by kind.
type NetStats struct {
	Fired [netKindCount]int
}

// Count returns the fired count for one kind.
func (s NetStats) Count(k NetFaultKind) int {
	if int(k) < len(s.Fired) {
		return s.Fired[k]
	}
	return 0
}

// Total returns the total wire faults fired.
func (s NetStats) Total() int {
	n := 0
	for _, c := range s.Fired {
		n += c
	}
	return n
}

// NetInjector replays a NetSchedule against a client's outgoing
// messages. All methods are safe on a nil receiver (no-ops) and for
// concurrent use. Mangled bytes derive only from (Seed, msg), never
// from call order.
type NetInjector struct {
	sched NetSchedule

	mu    sync.Mutex
	at    map[int][]NetFaultKind // transmission index → its faults
	stats NetStats
}

// NewNetInjector builds an injector over a wire-fault schedule.
func NewNetInjector(s NetSchedule) *NetInjector {
	in := &NetInjector{sched: s, at: make(map[int][]NetFaultKind, len(s.Faults))}
	for _, f := range s.Faults {
		in.at[f.Msg] = append(in.at[f.Msg], f.Kind)
	}
	return in
}

// Schedule returns the injector's schedule.
func (in *NetInjector) Schedule() NetSchedule {
	if in == nil {
		return NetSchedule{}
	}
	return in.sched
}

// Stats returns the counts of wire faults fired so far.
func (in *NetInjector) Stats() NetStats {
	if in == nil {
		return NetStats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Tx runs the faults scheduled for transmission msg on the encoded wire
// message b. It returns the bytes to actually write and whether the
// sender should drop the connection immediately after writing them (a
// torn write). The input is never mutated; with no fault scheduled the
// original slice comes back unchanged.
func (in *NetInjector) Tx(msg int, b []byte) ([]byte, bool) {
	if in == nil {
		return b, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	kinds := in.at[msg]
	if len(kinds) == 0 {
		return b, false
	}
	out, tear := b, false
	r := stats.NewRNG(in.sched.Seed ^ int64(msg)*7_919)
	for _, k := range kinds {
		switch k {
		case NetCorruptByte:
			if len(b) > NetHeaderBytes {
				c := append([]byte(nil), out...)
				i := NetHeaderBytes + r.Intn(len(c)-NetHeaderBytes)
				c[i] ^= 1 << uint(r.Intn(8))
				out = c
				in.stats.Fired[NetCorruptByte]++
			}
		case NetTornWrite:
			if len(out) > 1 {
				cut := 1 + r.Intn(len(out)-1)
				out = out[:cut]
			}
			tear = true
			in.stats.Fired[NetTornWrite]++
		}
	}
	return out, tear
}
